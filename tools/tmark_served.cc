// tmark_served — warm-operator serving daemon for T-Mark (docs/SERVING.md).
//
//   tmark_served --hin net.hin --serve-socket /tmp/tmark.sock
//   tmark_served --hin net.hin --serve-port 7421 --batch-window-us 200
//
// Loads the HIN once, fits the classifier, pins the prepared operators,
// and answers classify/rank/topk/update requests over the length-prefixed
// line protocol (serve/protocol.h). Concurrent rank/topk queries are
// coalesced into panel kernels by the batching scheduler; `update` applies
// a HinDelta in the background while queries keep being served from the
// previous bundle, flagged stale.
//
// Error contract (docs/ERRORS.md): flag errors print usage and exit 2;
// load/fit errors print a single `error:` line and exit 2. Per-request
// errors go back to the client as `error <CODE> <message>` frames and
// never bring the daemon down.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "tmark/common/status.h"
#include "tmark/common/strict_parse.h"
#include "tmark/eval/experiment.h"
#include "tmark/hin/hin_io.h"
#include "tmark/obs/json_export.h"
#include "tmark/obs/logging.h"
#include "tmark/obs/metrics.h"
#include "tmark/parallel/thread_pool.h"
#include "tmark/serve/daemon.h"
#include "tmark/serve/server.h"

namespace {

using namespace tmark;

class FlagError : public std::runtime_error {
 public:
  explicit FlagError(const std::string& what) : std::runtime_error(what) {}
};

struct Args {
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    const Result<double> v = ParseFiniteDouble(it->second);
    if (!v.ok()) {
      throw FlagError("invalid value '" + it->second + "' for --" + key +
                      " (expected a finite number)");
    }
    return *v;
  }
  std::size_t GetSize(const std::string& key, std::size_t fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    const Result<std::size_t> v = ParseIndex(it->second);
    if (!v.ok()) {
      throw FlagError("invalid value '" + it->second + "' for --" + key +
                      " (expected a non-negative integer)");
    }
    return *v;
  }
};

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; i += 2) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw FlagError("expected --flag, got '" + key + "'");
    }
    if (i + 1 >= argc) {
      throw FlagError("missing value for " + key);
    }
    args.flags[key.substr(2)] = argv[i + 1];
  }
  return args;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: tmark_served --hin FILE --serve-socket PATH | --serve-port N\n"
      "  --hin FILE            network to serve (tmark-hin format)\n"
      "  --serve-socket PATH   Unix-domain listening socket\n"
      "  --serve-port N        loopback TCP port (0 = kernel-assigned)\n"
      "  --train-fraction F    training split for the initial fit "
      "(default 0.3)\n"
      "  --alpha A --gamma G   T-Mark hyper-parameters (defaults 0.8, 0.6)\n"
      "  --seed S              split seed (default 13)\n"
      "  --batch-window-us U   coalescing window (default 200; 0 = off)\n"
      "  --max-batch B         panel width cap per batch (default 16)\n"
      "  --max-queue Q         admission bound before kResourceExhausted\n"
      "                        rejections (default 256)\n"
      "  --max-requests R      exit after R requests (default 0 = run "
      "until SIGINT)\n"
      "  --log-level L         debug|info|warn|error|off\n"
      "  --metrics-json FILE   dump serve.* metrics snapshot on exit\n"
      "  --threads N           worker threads for fit kernels\n"
      "protocol: docs/SERVING.md (length-prefixed frames;\n"
      "  classify <node> | rank <node> <k> | topk <node> <k> | "
      "update <delta-file>)\n");
  return 2;
}

std::string OneLine(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  return out;
}

serve::SocketServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestStop();
}

Status Run(const Args& args) {
  const std::string hin_path = args.Get("hin", "");
  if (hin_path.empty()) {
    return InvalidArgumentError(
        "tmark_served requires --hin FILE (tmark-hin format)");
  }
  const std::string socket_path = args.Get("serve-socket", "");
  const std::size_t port = args.GetSize("serve-port", 0);
  if (socket_path.empty() && args.flags.count("serve-port") == 0) {
    return InvalidArgumentError(
        "tmark_served requires --serve-socket PATH or --serve-port N");
  }
  if (port > 65535) {
    return InvalidArgumentError("--serve-port must be at most 65535");
  }
  const double fraction = args.GetDouble("train-fraction", 0.3);
  if (fraction <= 0.0 || fraction > 1.0) {
    return InvalidArgumentError("--train-fraction must be in (0, 1]");
  }
  serve::DaemonOptions options;
  options.config.alpha = args.GetDouble("alpha", 0.8);
  options.config.gamma = args.GetDouble("gamma", 0.6);
  options.batcher.batch_window_us = args.GetSize("batch-window-us", 200);
  options.batcher.max_batch = args.GetSize("max-batch", 16);
  options.batcher.max_queue = args.GetSize("max-queue", 256);
  if (options.batcher.max_batch == 0) {
    return InvalidArgumentError("--max-batch must be >= 1");
  }
  if (options.batcher.max_queue == 0) {
    return InvalidArgumentError("--max-queue must be >= 1");
  }
  options.query = serve::MakeQueryOptions(options.config);

  TMARK_ASSIGN_OR_RETURN(hin::Hin hin, hin::LoadHinFromFile(hin_path));
  Rng rng(args.GetSize("seed", 13));
  const std::vector<std::size_t> labeled =
      eval::StratifiedSplit(hin, fraction, &rng);
  serve::ServingDaemon daemon(std::move(hin), labeled, options);
  TMARK_RETURN_IF_ERROR(daemon.Init());

  serve::ServerOptions server_options;
  server_options.unix_socket = socket_path;
  server_options.tcp_port = static_cast<int>(port);
  server_options.max_requests = args.GetSize("max-requests", 0);
  serve::SocketServer server(&daemon, server_options);
  TMARK_RETURN_IF_ERROR(server.Start());
  const std::string endpoint =
      socket_path.empty() ? "127.0.0.1:" + std::to_string(server.port())
                          : socket_path;
  std::printf("tmark_served: %zu nodes, %zu classes; listening on %s\n",
              daemon.hin().num_nodes(), daemon.hin().num_classes(),
              endpoint.c_str());
  std::fflush(stdout);

  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  server.Wait();
  g_server = nullptr;
  server.Stop();
  return daemon.WaitForUpdate();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = Parse(argc, argv);
    const std::string level = args.Get("log-level", "");
    if (!level.empty()) {
      const auto parsed = obs::ParseLogLevel(level);
      if (!parsed.has_value()) {
        throw FlagError("invalid value '" + level +
                        "' for --log-level (expected "
                        "debug|info|warn|error|off)");
      }
      obs::Logger::Instance().set_level(*parsed);
    }
    const std::string metrics_json = args.Get("metrics-json", "");
    if (!metrics_json.empty()) obs::Registry::Instance().set_enabled(true);
    if (args.flags.count("threads") != 0) {
      const std::string& raw = args.flags.at("threads");
      const std::size_t threads = parallel::ParseThreadCount(raw.c_str());
      if (threads == 0) {
        throw FlagError("invalid value '" + raw +
                        "' for --threads (expected a positive integer)");
      }
      parallel::SetNumThreads(threads);
    }

    const Status status = Run(args);
    int rc = 0;
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", OneLine(status.ToString()).c_str());
      rc = 2;
    }
    if (!metrics_json.empty()) {
      const std::string doc =
          obs::MetricsToJson(obs::Registry::Instance().Snapshot());
      if (!obs::WriteTextFile(metrics_json, doc)) {
        std::fprintf(stderr, "error: cannot write %s\n", metrics_json.c_str());
        if (rc == 0) rc = 1;
      }
    }
    return rc;
  } catch (const FlagError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return Usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", OneLine(e.what()).c_str());
    return 1;
  }
}
