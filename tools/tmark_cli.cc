// tmark_cli — command-line front end for the T-Mark library.
//
//   tmark_cli generate --preset dblp --nodes 500 --seed 7 --out net.hin
//   tmark_cli info     --hin net.hin
//   tmark_cli classify --hin net.hin --method T-Mark --train-fraction 0.3
//   tmark_cli rank     --hin net.hin --alpha 0.8 --gamma 0.6 --top 5
//
// `generate` writes a synthetic HIN in the tmark-hin text format; the other
// commands load any file in that format, so real corpora can be converted
// once and then driven entirely from here.
//
// Observability (any command): --log-level debug|info|warn|error|off,
// --metrics-json FILE (dump the metrics-registry snapshot on exit),
// --trace-json FILE (dump the trace-span tree on exit). See
// docs/OBSERVABILITY.md.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "tmark/baselines/registry.h"
#include "tmark/common/check.h"
#include "tmark/core/model_io.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/acm.h"
#include "tmark/datasets/dblp.h"
#include "tmark/datasets/movies.h"
#include "tmark/datasets/nus.h"
#include "tmark/datasets/paper_example.h"
#include "tmark/eval/experiment.h"
#include "tmark/hin/hin_io.h"
#include "tmark/obs/json_export.h"
#include "tmark/obs/logging.h"
#include "tmark/obs/metrics.h"
#include "tmark/obs/trace.h"
#include "tmark/parallel/thread_pool.h"

namespace {

using namespace tmark;

/// Bad command-line input (unknown flag value, malformed number, ...);
/// reported as a usage error, exit code 2, instead of a raw exception.
class FlagError : public std::runtime_error {
 public:
  explicit FlagError(const std::string& what) : std::runtime_error(what) {}
};

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    try {
      std::size_t consumed = 0;
      const double v = std::stod(it->second, &consumed);
      if (consumed != it->second.size()) throw std::invalid_argument("");
      return v;
    } catch (const std::exception&) {
      throw FlagError("invalid value '" + it->second + "' for --" + key +
                      " (expected a number)");
    }
  }
  std::size_t GetSize(const std::string& key, std::size_t fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    try {
      std::size_t consumed = 0;
      const unsigned long v = std::stoul(it->second, &consumed);
      if (consumed != it->second.size() || it->second[0] == '-') {
        throw std::invalid_argument("");
      }
      return static_cast<std::size_t>(v);
    } catch (const std::exception&) {
      throw FlagError("invalid value '" + it->second + "' for --" + key +
                      " (expected a non-negative integer)");
    }
  }
};

Args Parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; i += 2) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw FlagError("expected --flag, got '" + key + "'");
    }
    if (i + 1 >= argc) {
      throw FlagError("missing value for " + key);
    }
    args.flags[key.substr(2)] = argv[i + 1];
  }
  return args;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tmark_cli <command> [--flag value ...]\n"
               "  generate --preset dblp|movies|nus1|nus2|acm|example\n"
               "           [--nodes N] [--seed S] --out FILE\n"
               "  info     --hin FILE\n"
               "  classify --hin FILE [--method NAME] [--train-fraction F]\n"
               "           [--alpha A] [--gamma G] [--seed S]\n"
               "  rank     --hin FILE [--train-fraction F] [--alpha A]\n"
               "           [--gamma G] [--top K] [--seed S]\n"
               "           [--save-model FILE | --model FILE]\n"
               "global flags (any command):\n"
               "  --log-level debug|info|warn|error|off\n"
               "  --metrics-json FILE   dump metrics snapshot on exit\n"
               "  --trace-json FILE     dump trace spans on exit\n"
               "  --threads N           worker threads for fit kernels\n"
               "                        (default: TMARK_NUM_THREADS or all "
               "cores)\n");
  return 2;
}

/// Applies --log-level and switches the obs subsystem on when a JSON dump
/// was requested. Returns after the command so main can write the files.
struct ObsFlags {
  std::string metrics_json;
  std::string trace_json;

  explicit ObsFlags(const Args& args)
      : metrics_json(args.Get("metrics-json", "")),
        trace_json(args.Get("trace-json", "")) {
    const std::string level = args.Get("log-level", "");
    if (!level.empty()) {
      const auto parsed = obs::ParseLogLevel(level);
      if (!parsed.has_value()) {
        throw FlagError("invalid value '" + level +
                        "' for --log-level (expected "
                        "debug|info|warn|error|off)");
      }
      obs::Logger::Instance().set_level(*parsed);
    }
    if (!metrics_json.empty()) obs::Registry::Instance().set_enabled(true);
    if (!trace_json.empty()) {
      obs::Registry::Instance().set_enabled(true);
      obs::Tracer::Instance().set_enabled(true);
    }
    if (args.flags.count("threads") != 0) {
      const std::string& raw = args.flags.at("threads");
      const std::size_t threads = parallel::ParseThreadCount(raw.c_str());
      if (threads == 0) {
        throw FlagError("invalid value '" + raw +
                        "' for --threads (expected a positive integer)");
      }
      parallel::SetNumThreads(threads);
    }
    // Recorded after the registry toggles so JSON dumps carry it.
    obs::SetGauge("parallel.threads",
                  static_cast<double>(parallel::NumThreads()));
  }

  /// Writes the requested dumps; true unless a file could not be written.
  bool Flush() const {
    bool ok = true;
    if (!metrics_json.empty()) {
      const std::string doc =
          obs::MetricsToJson(obs::Registry::Instance().Snapshot());
      if (!obs::WriteTextFile(metrics_json, doc)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     metrics_json.c_str());
        ok = false;
      }
    }
    if (!trace_json.empty()) {
      const std::string doc =
          obs::SpansToJson(obs::Tracer::Instance().FinishedCopy());
      if (!obs::WriteTextFile(trace_json, doc)) {
        std::fprintf(stderr, "error: cannot write %s\n", trace_json.c_str());
        ok = false;
      }
    }
    return ok;
  }
};

hin::Hin GeneratePreset(const Args& args) {
  const std::string preset = args.Get("preset", "dblp");
  const std::uint64_t seed = args.GetSize("seed", 7);
  if (preset == "dblp") {
    datasets::DblpOptions options;
    options.num_authors = args.GetSize("nodes", 500);
    options.seed = seed;
    return datasets::MakeDblp(options);
  }
  if (preset == "movies") {
    datasets::MoviesOptions options;
    options.num_movies = args.GetSize("nodes", 700);
    options.seed = seed;
    return datasets::MakeMovies(options);
  }
  if (preset == "nus1" || preset == "nus2") {
    datasets::NusOptions options;
    options.tagset = preset == "nus1" ? datasets::NusTagset::kTagset1
                                      : datasets::NusTagset::kTagset2;
    options.num_images = args.GetSize("nodes", 900);
    options.seed = seed;
    return datasets::MakeNus(options);
  }
  if (preset == "acm") {
    datasets::AcmOptions options;
    options.num_publications = args.GetSize("nodes", 550);
    options.seed = seed;
    return datasets::MakeAcm(options);
  }
  if (preset == "example") return datasets::MakePaperExample();
  TMARK_CHECK_MSG(false, "unknown preset: " << preset);
}

int Generate(const Args& args) {
  const std::string out = args.Get("out", "");
  TMARK_CHECK_MSG(!out.empty(), "generate requires --out FILE");
  const hin::Hin hin = GeneratePreset(args);
  TMARK_CHECK_MSG(hin::SaveHinToFile(hin, out), "cannot write " << out);
  std::printf("wrote %s: %zu nodes, %zu relations, %zu classes, %zu links\n",
              out.c_str(), hin.num_nodes(), hin.num_relations(),
              hin.num_classes(), hin.NumLinks());
  return 0;
}

int Info(const Args& args) {
  const hin::Hin hin = hin::LoadHinFromFile(args.Get("hin", ""));
  std::printf("nodes:       %zu\n", hin.num_nodes());
  std::printf("relations:   %zu\n", hin.num_relations());
  std::printf("classes:     %zu\n", hin.num_classes());
  std::printf("feature dim: %zu\n", hin.feature_dim());
  std::printf("links:       %zu stored entries\n", hin.NumLinks());
  std::printf("labeled:     %zu nodes\n", hin.NodesWithLabels().size());
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < hin.num_nodes(); ++i) {
      if (hin.HasLabel(i, c)) ++count;
    }
    std::printf("  class %-28s %zu nodes\n",
                (hin.class_name(c) + ":").c_str(), count);
  }
  return 0;
}

int Classify(const Args& args) {
  const hin::Hin hin = hin::LoadHinFromFile(args.Get("hin", ""));
  const std::string method = args.Get("method", "T-Mark");
  const double fraction = args.GetDouble("train-fraction", 0.3);
  Rng rng(args.GetSize("seed", 13));
  const auto labeled = eval::StratifiedSplit(hin, fraction, &rng);
  auto clf = baselines::MakeClassifier(method,
                                       args.GetDouble("alpha", 0.8),
                                       args.GetDouble("gamma", 0.6));
  const double acc =
      eval::EvaluateClassifier(hin, clf.get(), labeled, false, 0.5);
  std::printf("%s: held-out accuracy %.4f  (%zu labeled of %zu)\n",
              method.c_str(), acc, labeled.size(), hin.num_nodes());
  return 0;
}

int Rank(const Args& args) {
  const hin::Hin hin = hin::LoadHinFromFile(args.Get("hin", ""));
  const double fraction = args.GetDouble("train-fraction", 0.3);
  const std::size_t top = args.GetSize("top", 5);
  const std::string model_path = args.Get("model", "");
  core::TMarkConfig config;
  config.alpha = args.GetDouble("alpha", 0.8);
  config.gamma = args.GetDouble("gamma", 0.6);
  core::TMarkClassifier clf =
      model_path.empty() ? core::TMarkClassifier(config)
                         : core::LoadTMarkModelFromFile(model_path);
  if (model_path.empty()) {
    Rng rng(args.GetSize("seed", 13));
    const auto labeled = eval::StratifiedSplit(hin, fraction, &rng);
    clf.Fit(hin, labeled);
  }
  const std::string save_path = args.Get("save-model", "");
  if (!save_path.empty()) {
    TMARK_CHECK_MSG(core::SaveTMarkModelToFile(clf, save_path),
                    "cannot write " << save_path);
    std::printf("saved fitted model to %s\n", save_path.c_str());
  }
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    std::printf("%s:\n", hin.class_name(c).c_str());
    const auto ranking = clf.RankRelationsForClass(c);
    for (std::size_t r = 0; r < top && r < ranking.size(); ++r) {
      std::printf("  %2zu. %-24s z = %.4f\n", r + 1,
                  hin.relation_name(ranking[r]).c_str(),
                  clf.LinkImportance().At(ranking[r], c));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = Parse(argc, argv);
    const ObsFlags obs_flags(args);
    int rc;
    if (args.command == "generate") {
      rc = Generate(args);
    } else if (args.command == "info") {
      rc = Info(args);
    } else if (args.command == "classify") {
      rc = Classify(args);
    } else if (args.command == "rank") {
      rc = Rank(args);
    } else {
      return Usage();
    }
    if (!obs_flags.Flush() && rc == 0) rc = 1;
    return rc;
  } catch (const FlagError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return Usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
