// tmark_cli — command-line front end for the T-Mark library.
//
//   tmark_cli generate --preset dblp --nodes 500 --seed 7 --out net.hin
//   tmark_cli info     --hin net.hin
//   tmark_cli classify --hin net.hin --method T-Mark --train-fraction 0.3
//   tmark_cli rank     --hin net.hin --alpha 0.8 --gamma 0.6 --top 5
//
// `generate` writes a synthetic HIN in the tmark-hin text format; the other
// commands load any file in that format, so real corpora can be converted
// once and then driven entirely from here.
//
// Error contract (docs/ERRORS.md): every untrusted input — flags, HIN
// files, model files — is validated through the tmark::Status layer. A bad
// flag prints `error: ...` plus usage and exits 2; an unreadable or
// malformed file prints a single `error: ...` line to stderr and exits 2.
// No input can abort the process or leak a raw exception. Failed loads are
// counted in the `io.errors{code}` metrics, visible via --metrics-json.
//
// Observability (any command): --log-level debug|info|warn|error|off,
// --metrics-json FILE (dump the metrics-registry snapshot on exit),
// --trace-json FILE (dump the trace-span tree on exit), --trace-chrome
// FILE (dump the span tree as a Perfetto-loadable Chrome trace), and
// --profile-json FILE (dump a tmark-profile-v1 kernel-attribution
// document). The trace sinks compose: one run can write any subset. See
// docs/OBSERVABILITY.md.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "tmark/baselines/registry.h"
#include "tmark/common/status.h"
#include "tmark/common/strict_parse.h"
#include "tmark/core/model_io.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/presets.h"
#include "tmark/eval/experiment.h"
#include "tmark/hin/hin_io.h"
#include "tmark/obs/chrome_trace.h"
#include "tmark/obs/json_export.h"
#include "tmark/obs/logging.h"
#include "tmark/obs/prof.h"
#include "tmark/obs/metrics.h"
#include "tmark/obs/trace.h"
#include "tmark/parallel/thread_pool.h"
#include "tmark/serve/daemon.h"
#include "tmark/serve/server.h"

#include <csignal>

namespace {

using namespace tmark;

/// Bad command-line input (unknown flag value, malformed number, ...);
/// reported as a usage error, exit code 2, instead of a raw exception.
class FlagError : public std::runtime_error {
 public:
  explicit FlagError(const std::string& what) : std::runtime_error(what) {}
};

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    const Result<double> v = ParseFiniteDouble(it->second);
    if (!v.ok()) {
      throw FlagError("invalid value '" + it->second + "' for --" + key +
                      " (expected a finite number)");
    }
    return *v;
  }
  std::size_t GetSize(const std::string& key, std::size_t fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    const Result<std::size_t> v = ParseIndex(it->second);
    if (!v.ok()) {
      throw FlagError("invalid value '" + it->second + "' for --" + key +
                      " (expected a non-negative integer)");
    }
    return *v;
  }
};

Args Parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; i += 2) {
    const std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw FlagError("expected --flag, got '" + key + "'");
    }
    if (i + 1 >= argc) {
      throw FlagError("missing value for " + key);
    }
    args.flags[key.substr(2)] = argv[i + 1];
  }
  return args;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tmark_cli <command> [--flag value ...]\n"
               "  generate --preset "
               "dblp|movies|nus1|nus2|acm|example|synthetic:<n>\n"
               "           [--nodes N] [--seed S] --out FILE\n"
               "  info     --hin FILE\n"
               "  classify --hin FILE [--method NAME] [--train-fraction F]\n"
               "           [--alpha A] [--gamma G] [--seed S]\n"
               "           [--fit-mode per_class|batched] "
               "[--fp32-panels on|off]\n"
               "  rank     --hin FILE [--train-fraction F] [--alpha A]\n"
               "           [--gamma G] [--top K] [--seed S]\n"
               "           [--fit-mode per_class|batched] "
               "[--fp32-panels on|off]\n"
               "           [--save-model FILE | --model FILE]\n"
               "  serve    --hin FILE --serve-socket PATH | --serve-port N\n"
               "           [--train-fraction F] [--alpha A] [--gamma G]\n"
               "           [--seed S] [--batch-window-us U] [--max-batch B]\n"
               "           [--max-queue Q] [--max-requests R]\n"
               "           (see docs/SERVING.md; tmark_served is the\n"
               "            standalone daemon with the same protocol)\n"
               "global flags (any command):\n"
               "  --log-level debug|info|warn|error|off\n"
               "  --metrics-json FILE   dump metrics snapshot on exit\n"
               "  --trace-json FILE     dump trace spans on exit\n"
               "  --trace-chrome FILE   dump Chrome trace (Perfetto) on "
               "exit\n"
               "  --profile-json FILE   dump tmark-profile-v1 attribution "
               "on exit\n"
               "  --threads N           worker threads for fit kernels\n"
               "                        (default: TMARK_NUM_THREADS or all "
               "cores)\n");
  return 2;
}

/// Collapses control characters so the `error:` contract stays one line
/// even if a hostile path or token sneaks one in.
std::string OneLine(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  return out;
}

/// Applies --log-level and switches the obs subsystem on when a JSON dump
/// was requested. Returns after the command so main can write the files.
struct ObsFlags {
  std::string metrics_json;
  std::string trace_json;
  std::string trace_chrome;
  std::string profile_json;

  explicit ObsFlags(const Args& args)
      : metrics_json(args.Get("metrics-json", "")),
        trace_json(args.Get("trace-json", "")),
        trace_chrome(args.Get("trace-chrome", "")),
        profile_json(args.Get("profile-json", "")) {
    // --profile-json is the only --profile-* flag; catch typos like
    // --profile-out under the usage-error contract instead of silently
    // ignoring them.
    for (const auto& [key, value] : args.flags) {
      if (key.rfind("profile-", 0) == 0 && key != "profile-json") {
        throw FlagError("unknown flag --" + key);
      }
    }
    const std::string level = args.Get("log-level", "");
    if (!level.empty()) {
      const auto parsed = obs::ParseLogLevel(level);
      if (!parsed.has_value()) {
        throw FlagError("invalid value '" + level +
                        "' for --log-level (expected "
                        "debug|info|warn|error|off)");
      }
      obs::Logger::Instance().set_level(*parsed);
    }
    if (!metrics_json.empty()) obs::Registry::Instance().set_enabled(true);
    if (!trace_json.empty() || !trace_chrome.empty()) {
      obs::Registry::Instance().set_enabled(true);
      obs::Tracer::Instance().set_enabled(true);
    }
    if (!profile_json.empty()) {
      obs::Registry::Instance().set_enabled(true);
      obs::Tracer::Instance().set_enabled(true);
      obs::prof::Profiler::Instance().set_enabled(true);
    }
    if (args.flags.count("threads") != 0) {
      const std::string& raw = args.flags.at("threads");
      const std::size_t threads = parallel::ParseThreadCount(raw.c_str());
      if (threads == 0) {
        throw FlagError("invalid value '" + raw +
                        "' for --threads (expected a positive integer)");
      }
      parallel::SetNumThreads(threads);
    }
    // Recorded after the registry toggles so JSON dumps carry it.
    obs::SetGauge("parallel.threads",
                  static_cast<double>(parallel::NumThreads()));
  }

  /// Writes the requested dumps; true unless a file could not be written.
  bool Flush() const {
    bool ok = true;
    if (!metrics_json.empty()) {
      const std::string doc =
          obs::MetricsToJson(obs::Registry::Instance().Snapshot());
      if (!obs::WriteTextFile(metrics_json, doc)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     metrics_json.c_str());
        ok = false;
      }
    }
    if (!trace_json.empty()) {
      const std::string doc =
          obs::SpansToJson(obs::Tracer::Instance().FinishedCopy());
      if (!obs::WriteTextFile(trace_json, doc)) {
        std::fprintf(stderr, "error: cannot write %s\n", trace_json.c_str());
        ok = false;
      }
    }
    if (!trace_chrome.empty()) {
      const std::string doc =
          obs::SpansToChromeTrace(obs::Tracer::Instance().FinishedCopy());
      if (!obs::WriteTextFile(trace_chrome, doc)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     trace_chrome.c_str());
        ok = false;
      }
    }
    if (!profile_json.empty()) {
      const obs::prof::ProfileSnapshot profile =
          obs::prof::Profiler::Instance().Snapshot();
      const std::vector<obs::SpanNode> spans =
          obs::Tracer::Instance().FinishedCopy();
      obs::ProfileOverhead overhead;
      for (const obs::prof::RegionTotals& region : profile.regions) {
        overhead.region_calls += region.calls;
      }
      // Workload = total fit time, when this run fitted anything.
      const obs::MetricsSnapshot metrics = obs::Registry::Instance().Snapshot();
      for (const obs::HistogramSnapshot& h : metrics.histograms) {
        if (h.name == "tmark.fit.total_ms") overhead.workload_ms = h.sum;
      }
      overhead.disabled_ns_per_region =
          obs::prof::MeasureDisabledRegionCostNs(2'000'000);
      const std::string doc = obs::ProfileToJson(
          "tmark_cli", static_cast<std::uint64_t>(parallel::NumThreads()),
          profile, obs::prof::ComputeAttribution(spans), overhead);
      if (!obs::WriteTextFile(profile_json, doc)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     profile_json.c_str());
        ok = false;
      }
    }
    return ok;
  }
};

/// Parses --fit-mode (default: the batched engine — both engines are
/// bit-identical, see docs/PERFORMANCE.md).
core::FitMode GetFitMode(const Args& args) {
  const std::string raw = args.Get("fit-mode", "");
  if (raw.empty()) return core::FitMode::kBatched;
  core::FitMode mode;
  if (!core::TryParseFitMode(raw, &mode)) {
    throw FlagError("invalid value '" + raw +
                    "' for --fit-mode (expected per_class|batched)");
  }
  return mode;
}

/// Parses --fp32-panels (default off — the opt-in fp32 panel-storage mode
/// of the batched engine, core/tmark.h).
bool GetFp32Panels(const Args& args) {
  const std::string raw = args.Get("fp32-panels", "");
  if (raw.empty() || raw == "off") return false;
  if (raw == "on") return true;
  throw FlagError("invalid value '" + raw +
                  "' for --fp32-panels (expected on|off)");
}

/// Loads --hin through the Status boundary; the flag is required.
Result<hin::Hin> LoadHinFlag(const Args& args) {
  const std::string path = args.Get("hin", "");
  if (path.empty()) {
    return InvalidArgumentError(args.command +
                                " requires --hin FILE (tmark-hin format)");
  }
  return hin::LoadHinFromFile(path);
}

Status Generate(const Args& args) {
  const std::string out = args.Get("out", "");
  if (out.empty()) {
    return InvalidArgumentError("generate requires --out FILE");
  }
  datasets::PresetOptions options;
  options.num_nodes = args.GetSize("nodes", 0);  // 0 = preset default
  options.seed = args.GetSize("seed", 7);
  TMARK_ASSIGN_OR_RETURN(const hin::Hin hin,
                         datasets::MakePreset(args.Get("preset", "dblp"),
                                              options));
  TMARK_RETURN_IF_ERROR(hin::SaveHinToFile(hin, out));
  std::printf("wrote %s: %zu nodes, %zu relations, %zu classes, %zu links\n",
              out.c_str(), hin.num_nodes(), hin.num_relations(),
              hin.num_classes(), hin.NumLinks());
  return Status::Ok();
}

Status Info(const Args& args) {
  TMARK_ASSIGN_OR_RETURN(const hin::Hin hin, LoadHinFlag(args));
  std::printf("nodes:       %zu\n", hin.num_nodes());
  std::printf("relations:   %zu\n", hin.num_relations());
  std::printf("classes:     %zu\n", hin.num_classes());
  std::printf("feature dim: %zu\n", hin.feature_dim());
  std::printf("links:       %zu stored entries\n", hin.NumLinks());
  std::printf("labeled:     %zu nodes\n", hin.NodesWithLabels().size());
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < hin.num_nodes(); ++i) {
      if (hin.HasLabel(i, c)) ++count;
    }
    std::printf("  class %-28s %zu nodes\n",
                (hin.class_name(c) + ":").c_str(), count);
  }
  return Status::Ok();
}

Status Classify(const Args& args) {
  TMARK_ASSIGN_OR_RETURN(const hin::Hin hin, LoadHinFlag(args));
  const std::string method = args.Get("method", "T-Mark");
  const double fraction = args.GetDouble("train-fraction", 0.3);
  if (fraction <= 0.0 || fraction > 1.0) {
    return InvalidArgumentError("--train-fraction must be in (0, 1]");
  }
  auto clf = baselines::TryMakeClassifier(method,
                                          args.GetDouble("alpha", 0.8),
                                          args.GetDouble("gamma", 0.6),
                                          0.7, GetFitMode(args),
                                          GetFp32Panels(args));
  if (clf == nullptr) {
    return InvalidArgumentError("unknown method '" + method + "'");
  }
  Rng rng(args.GetSize("seed", 13));
  const auto labeled = eval::StratifiedSplit(hin, fraction, &rng);
  const double acc =
      eval::EvaluateClassifier(hin, clf.get(), labeled, false, 0.5);
  std::printf("%s: held-out accuracy %.4f  (%zu labeled of %zu)\n",
              method.c_str(), acc, labeled.size(), hin.num_nodes());
  return Status::Ok();
}

Status Rank(const Args& args) {
  TMARK_ASSIGN_OR_RETURN(const hin::Hin hin, LoadHinFlag(args));
  const double fraction = args.GetDouble("train-fraction", 0.3);
  const std::size_t top = args.GetSize("top", 5);
  const std::string model_path = args.Get("model", "");
  core::TMarkConfig config;
  config.alpha = args.GetDouble("alpha", 0.8);
  config.gamma = args.GetDouble("gamma", 0.6);
  config.fit_mode = GetFitMode(args);
  config.fp32_panels = GetFp32Panels(args);
  core::TMarkClassifier clf(config);
  if (!model_path.empty()) {
    TMARK_ASSIGN_OR_RETURN(clf, core::LoadTMarkModelFromFile(model_path));
  } else {
    Rng rng(args.GetSize("seed", 13));
    const auto labeled = eval::StratifiedSplit(hin, fraction, &rng);
    clf.Fit(hin, labeled);
  }
  const std::string save_path = args.Get("save-model", "");
  if (!save_path.empty()) {
    TMARK_RETURN_IF_ERROR(core::SaveTMarkModelToFile(clf, save_path));
    std::printf("saved fitted model to %s\n", save_path.c_str());
  }
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    std::printf("%s:\n", hin.class_name(c).c_str());
    const auto ranking = clf.RankRelationsForClass(c);
    for (std::size_t r = 0; r < top && r < ranking.size(); ++r) {
      std::printf("  %2zu. %-24s z = %.4f\n", r + 1,
                  hin.relation_name(ranking[r]).c_str(),
                  clf.LinkImportance().At(ranking[r], c));
    }
  }
  return Status::Ok();
}

serve::SocketServer* g_server = nullptr;

void HandleSigint(int) {
  if (g_server != nullptr) g_server->RequestStop();
}

Status Serve(const Args& args) {
  TMARK_ASSIGN_OR_RETURN(hin::Hin hin, LoadHinFlag(args));
  const std::string socket_path = args.Get("serve-socket", "");
  const std::size_t port = args.GetSize("serve-port", 0);
  if (socket_path.empty() && args.flags.count("serve-port") == 0) {
    return InvalidArgumentError(
        "serve requires --serve-socket PATH or --serve-port N");
  }
  if (port > 65535) {
    return InvalidArgumentError("--serve-port must be at most 65535");
  }
  const double fraction = args.GetDouble("train-fraction", 0.3);
  if (fraction <= 0.0 || fraction > 1.0) {
    return InvalidArgumentError("--train-fraction must be in (0, 1]");
  }
  serve::DaemonOptions options;
  options.config.alpha = args.GetDouble("alpha", 0.8);
  options.config.gamma = args.GetDouble("gamma", 0.6);
  options.config.fit_mode = GetFitMode(args);
  options.batcher.batch_window_us = args.GetSize("batch-window-us", 200);
  options.batcher.max_batch = args.GetSize("max-batch", 16);
  options.batcher.max_queue = args.GetSize("max-queue", 256);
  if (options.batcher.max_batch == 0) {
    return InvalidArgumentError("--max-batch must be >= 1");
  }
  if (options.batcher.max_queue == 0) {
    return InvalidArgumentError("--max-queue must be >= 1");
  }
  options.query = serve::MakeQueryOptions(options.config);
  Rng rng(args.GetSize("seed", 13));
  const auto labeled = eval::StratifiedSplit(hin, fraction, &rng);
  serve::ServingDaemon daemon(std::move(hin), labeled, options);
  TMARK_RETURN_IF_ERROR(daemon.Init());
  serve::ServerOptions server_options;
  server_options.unix_socket = socket_path;
  server_options.tcp_port = static_cast<int>(port);
  server_options.max_requests = args.GetSize("max-requests", 0);
  serve::SocketServer server(&daemon, server_options);
  TMARK_RETURN_IF_ERROR(server.Start());
  const std::string endpoint =
      socket_path.empty() ? "127.0.0.1:" + std::to_string(server.port())
                          : socket_path;
  std::printf("serving on %s (batch window %zu us, max batch %zu, "
              "max queue %zu)\n",
              endpoint.c_str(), options.batcher.batch_window_us,
              options.batcher.max_batch, options.batcher.max_queue);
  std::fflush(stdout);
  g_server = &server;
  std::signal(SIGINT, HandleSigint);
  std::signal(SIGTERM, HandleSigint);
  server.Wait();
  g_server = nullptr;
  server.Stop();
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = Parse(argc, argv);
    const ObsFlags obs_flags(args);
    Status status;
    if (args.command == "generate") {
      status = Generate(args);
    } else if (args.command == "info") {
      status = Info(args);
    } else if (args.command == "classify") {
      status = Classify(args);
    } else if (args.command == "rank") {
      status = Rank(args);
    } else if (args.command == "serve") {
      status = Serve(args);
    } else {
      return Usage();
    }
    int rc = 0;
    if (!status.ok()) {
      // The single-line error contract for untrusted input: exit 2.
      std::fprintf(stderr, "error: %s\n",
                   OneLine(status.ToString()).c_str());
      rc = 2;
    }
    // Requested telemetry dumps are written even when the command failed —
    // that is precisely when the io.errors counters matter.
    if (!obs_flags.Flush() && rc == 0) rc = 1;
    return rc;
  } catch (const FlagError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return Usage();
  } catch (const std::exception& e) {
    // Internal bug (contract violation) — not an input error: exit 1.
    std::fprintf(stderr, "error: %s\n", OneLine(e.what()).c_str());
    return 1;
  }
}
