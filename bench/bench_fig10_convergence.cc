// Fig. 10: convergence of the T-Mark iteration on all four datasets — the
// residual rho_t = |x_t - x_{t-1}|_1 + |z_t - z_{t-1}|_1 against the
// iteration number. Paper shape: rho drops to (near) zero within ~10
// iterations on every dataset.

#include <algorithm>
#include <iostream>

#include "bench/common.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/acm.h"
#include "tmark/datasets/dblp.h"
#include "tmark/datasets/movies.h"
#include "tmark/datasets/nus.h"
#include "tmark/eval/table_printer.h"

namespace {

using namespace tmark;

/// Residual trace of class 0 (unpadded — callers pad for the table).
std::vector<double> Trace(const hin::Hin& hin, double alpha, double gamma) {
  Rng rng(41);
  const auto labeled = eval::StratifiedSplit(hin, 0.3, &rng);
  core::TMarkConfig config;
  config.alpha = alpha;
  config.gamma = gamma;
  core::TMarkClassifier clf(config);
  clf.Fit(hin, labeled);
  return clf.Traces()[0].residuals;
}

std::vector<double> Padded(std::vector<double> trace, std::size_t length) {
  trace.resize(length, 0.0);
  return trace;
}

std::size_t Settled(const std::vector<double>& trace) {
  for (std::size_t t = 0; t < trace.size(); ++t) {
    if (trace[t] < 1e-3) return t + 1;
  }
  return trace.size();
}

}  // namespace

int main() {
  tmark::bench::BenchObsSession obs_session("bench_fig10_convergence");
  const std::size_t kIters = 20;

  datasets::DblpOptions dblp_options;
  dblp_options.num_authors = bench::ScaledNodes(400);
  datasets::MoviesOptions movies_options;
  movies_options.num_movies = bench::ScaledNodes(500);
  datasets::NusOptions nus_options;
  nus_options.num_images = bench::ScaledNodes(500);
  datasets::AcmOptions acm_options;
  acm_options.num_publications = bench::ScaledNodes(400);

  const std::vector<double> dblp_raw =
      Trace(datasets::MakeDblp(dblp_options), 0.8, 0.6);
  const std::vector<double> movies_raw =
      Trace(datasets::MakeMovies(movies_options), 0.9, 0.6);
  const std::vector<double> nus_raw =
      Trace(datasets::MakeNus(nus_options), 0.9, 0.4);
  const std::vector<double> acm_raw =
      Trace(datasets::MakeAcm(acm_options), 0.9, 0.6);
  const std::vector<double> dblp = Padded(dblp_raw, kIters);
  const std::vector<double> movies = Padded(movies_raw, kIters);
  const std::vector<double> nus = Padded(nus_raw, kIters);
  const std::vector<double> acm = Padded(acm_raw, kIters);

  std::cout << "== Fig. 10: convergence (residual rho per iteration, "
               "class 0) ==\n";
  eval::TablePrinter table({"iter", "DBLP", "Movies", "NUS", "ACM"});
  for (std::size_t t = 0; t < kIters; ++t) {
    table.AddRow({std::to_string(t + 1), FormatDouble(dblp[t], 6),
                  FormatDouble(movies[t], 6), FormatDouble(nus[t], 6),
                  FormatDouble(acm[t], 6)});
  }
  table.Print(std::cout);

  std::cout << "\niterations to rho < 1e-3 — DBLP: " << Settled(dblp)
            << ", Movies: " << Settled(movies) << ", NUS: " << Settled(nus)
            << ", ACM: " << Settled(acm)
            << " (paper: stable past ~10 iterations on all datasets)\n";

  // Contraction diagnostics (Theorems 1-3): the geometric-mean contraction
  // rate of each residual trace, and the iterations-to-tolerance predicted
  // from only the first five residuals at that early rate, against the
  // actual count — a sanity check that the rate estimate is usable for
  // sizing warm-started refits. Five residuals span the first ICA restart
  // refresh (t = 3), whose transient residual spike would otherwise push
  // a shorter prefix's rate estimate past 1.
  std::cout << "\n== contraction diagnostics (class 0, tolerance 1e-3) "
               "==\n";
  eval::TablePrinter diag({"dataset", "contraction rate", "predicted iters",
                           "actual iters"});
  std::vector<std::vector<std::string>> diag_rows;
  const std::vector<std::pair<std::string, const std::vector<double>*>>
      traces = {{"DBLP", &dblp_raw},
                {"Movies", &movies_raw},
                {"NUS", &nus_raw},
                {"ACM", &acm_raw}};
  for (const auto& [name, residuals] : traces) {
    const double rate = core::EstimateContractionRate(*residuals);
    std::vector<double> head(*residuals);
    if (head.size() > 5) head.resize(5);
    const double early_rate = core::EstimateContractionRate(head);
    const double remaining =
        core::PredictIterationsToTolerance(head, early_rate, 1e-3);
    const std::string predicted =
        remaining >= 0.0
            ? std::to_string(
                  head.size() + static_cast<std::size_t>(remaining))
            : std::string("n/a");
    std::vector<std::string> row = {name, FormatDouble(rate, 4), predicted,
                                    std::to_string(Settled(*residuals))};
    diag_rows.push_back(row);
    diag.AddRow(std::move(row));
  }
  diag.Print(std::cout);
  if (bench::BenchObsSession* session = bench::BenchObsSession::active()) {
    session->RecordTable(
        {"contraction diagnostics",
         {"dataset", "contraction rate", "predicted iters", "actual iters"},
         std::move(diag_rows)});
  }
  return 0;
}
