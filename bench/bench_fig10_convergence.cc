// Fig. 10: convergence of the T-Mark iteration on all four datasets — the
// residual rho_t = |x_t - x_{t-1}|_1 + |z_t - z_{t-1}|_1 against the
// iteration number. Paper shape: rho drops to (near) zero within ~10
// iterations on every dataset.

#include <algorithm>
#include <iostream>

#include "bench/common.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/acm.h"
#include "tmark/datasets/dblp.h"
#include "tmark/datasets/movies.h"
#include "tmark/datasets/nus.h"
#include "tmark/eval/table_printer.h"

namespace {

using namespace tmark;

/// Residual trace of class 0, padded with trailing zeros once converged.
std::vector<double> Trace(const hin::Hin& hin, double alpha, double gamma,
                          std::size_t length) {
  Rng rng(41);
  const auto labeled = eval::StratifiedSplit(hin, 0.3, &rng);
  core::TMarkConfig config;
  config.alpha = alpha;
  config.gamma = gamma;
  core::TMarkClassifier clf(config);
  clf.Fit(hin, labeled);
  std::vector<double> out = clf.Traces()[0].residuals;
  out.resize(length, 0.0);
  return out;
}

}  // namespace

int main() {
  tmark::bench::BenchObsSession obs_session("bench_fig10_convergence");
  const std::size_t kIters = 20;

  datasets::DblpOptions dblp_options;
  dblp_options.num_authors = bench::ScaledNodes(400);
  datasets::MoviesOptions movies_options;
  movies_options.num_movies = bench::ScaledNodes(500);
  datasets::NusOptions nus_options;
  nus_options.num_images = bench::ScaledNodes(500);
  datasets::AcmOptions acm_options;
  acm_options.num_publications = bench::ScaledNodes(400);

  const std::vector<double> dblp =
      Trace(datasets::MakeDblp(dblp_options), 0.8, 0.6, kIters);
  const std::vector<double> movies =
      Trace(datasets::MakeMovies(movies_options), 0.9, 0.6, kIters);
  const std::vector<double> nus =
      Trace(datasets::MakeNus(nus_options), 0.9, 0.4, kIters);
  const std::vector<double> acm =
      Trace(datasets::MakeAcm(acm_options), 0.9, 0.6, kIters);

  std::cout << "== Fig. 10: convergence (residual rho per iteration, "
               "class 0) ==\n";
  eval::TablePrinter table({"iter", "DBLP", "Movies", "NUS", "ACM"});
  for (std::size_t t = 0; t < kIters; ++t) {
    table.AddRow({std::to_string(t + 1), FormatDouble(dblp[t], 6),
                  FormatDouble(movies[t], 6), FormatDouble(nus[t], 6),
                  FormatDouble(acm[t], 6)});
  }
  table.Print(std::cout);

  auto settled = [](const std::vector<double>& trace) {
    for (std::size_t t = 0; t < trace.size(); ++t) {
      if (trace[t] < 1e-3) return t + 1;
    }
    return trace.size();
  };
  std::cout << "\niterations to rho < 1e-3 — DBLP: " << settled(dblp)
            << ", Movies: " << settled(movies) << ", NUS: " << settled(nus)
            << ", ACM: " << settled(acm)
            << " (paper: stable past ~10 iterations on all datasets)\n";
  return 0;
}
