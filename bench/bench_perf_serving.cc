// Closed-loop serving bench (docs/SERVING.md "Throughput"): drives the
// in-process ServingDaemon — the same object tmark_served wraps in a
// socket — with `width` concurrent clients, each issuing seed-walk `rank`
// requests back to back. The batching scheduler coalesces whatever arrives
// within one straggler window into a row-major panel, so the per-request
// cost falls as the width grows: every coalesced column shares one
// streaming pass over the O/R/W operators instead of paying for its own.
//
// One table goes into the TMARK_BENCH_JSON dump (and stdout):
//   * "serving latency" — per (dataset, width) the closed-loop wall time
//     (min over TMARK_BENCH_REPEATS), throughput (qps), the per-request
//     cost wall_ms/requests (single-core wall approximates CPU cost, which
//     is what coalescing amortizes), and client-observed latency
//     percentiles p50/p95/p99 across every timed request.
//     scripts/check_serving_bench.py gates width 8 at >= 2x lower
//     per-request cost than width 1 (with slack) on the DBLP preset.
//
// Knobs: TMARK_SERVING_REQUESTS (total requests per width, default 480)
// and TMARK_SERVING_WINDOW_US (batch window, default 200 — the tmark_served
// default). The ctest gate runs a reduced request count; the committed
// docs/bench/perf_serving.json uses the defaults.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"

#include "tmark/common/check.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/dblp.h"
#include "tmark/hin/hin.h"
#include "tmark/serve/daemon.h"
#include "tmark/serve/protocol.h"

namespace {

using namespace tmark;

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  const unsigned long long v = std::strtoull(env, nullptr, 10);
  return v == 0 ? fallback : static_cast<std::size_t>(v);
}

std::vector<std::size_t> LabeledThirds(const hin::Hin& hin) {
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 3) {
    if (!hin.labels(i).empty()) labeled.push_back(i);
  }
  return labeled;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/// One closed-loop run: `width` clients, `requests` rank queries total,
/// per-request latencies appended to `latencies_ms`. Returns the wall time.
double RunClosedLoop(serve::ServingDaemon* daemon, std::size_t width,
                     std::size_t requests, std::size_t num_nodes,
                     std::vector<double>* latencies_ms) {
  const std::size_t per_client = requests / width;
  std::vector<std::vector<double>> per_thread(width);
  std::vector<std::thread> clients;
  clients.reserve(width);
  obs::Stopwatch wall;
  for (std::size_t t = 0; t < width; ++t) {
    clients.emplace_back([daemon, t, per_client, num_nodes, &per_thread] {
      per_thread[t].reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        serve::Request request;
        request.kind = serve::RequestKind::kRank;
        request.node = (t * 7919 + i * 131) % num_nodes;
        request.top_k = 10;
        obs::Stopwatch watch;
        const Result<serve::Response> response = daemon->Execute(request);
        per_thread[t].push_back(watch.ElapsedMs());
        TMARK_CHECK_MSG(response.ok(), response.status().ToString().c_str());
        benchmark::DoNotOptimize(response->entries);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  const double wall_ms = wall.ElapsedMs();
  for (const std::vector<double>& lat : per_thread) {
    latencies_ms->insert(latencies_ms->end(), lat.begin(), lat.end());
  }
  return wall_ms;
}

void RunServingStudy() {
  const std::size_t base_requests = EnvSize("TMARK_SERVING_REQUESTS", 480);
  const std::size_t window_us = EnvSize("TMARK_SERVING_WINDOW_US", 200);
  const int repeats = std::max(1, bench::BenchTimer::Repeats());

  hin::Hin dblp = datasets::MakeDblp();
  const std::size_t num_nodes = dblp.num_nodes();
  const std::vector<std::size_t> labeled = LabeledThirds(dblp);
  TMARK_CHECK(!labeled.empty());

  const std::vector<std::string> headers = {
      "dataset", "width",          "requests", "batch_window_us",
      "wall_ms", "qps",            "cost_ms_per_req",
      "p50_ms",  "p95_ms",         "p99_ms"};
  std::vector<std::vector<std::string>> rows;

  for (const std::size_t width : {1u, 2u, 4u, 8u, 16u}) {
    // Fresh daemon per width so each row starts from an identical bundle
    // (generation 1) and an empty scheduler queue.
    serve::DaemonOptions options;
    options.batcher.batch_window_us = window_us;
    options.batcher.max_batch = 16;
    options.batcher.max_queue = 1024;  // closed loop never fills this
    options.query = serve::MakeQueryOptions(options.config);
    serve::ServingDaemon daemon(dblp, labeled, options);
    {
      const Status status = daemon.Init();
      TMARK_CHECK_MSG(status.ok(), status.ToString().c_str());
    }

    const std::size_t requests =
        std::max<std::size_t>(width, base_requests / width * width);
    // Warm-up pass outside the timed region (page-in, pool spin-up).
    {
      std::vector<double> discard;
      RunClosedLoop(&daemon, width, width * 2, num_nodes, &discard);
    }
    double wall_ms = -1.0;
    std::vector<double> latencies_ms;
    for (int r = 0; r < repeats; ++r) {
      const double ms =
          RunClosedLoop(&daemon, width, requests, num_nodes, &latencies_ms);
      if (wall_ms < 0.0 || ms < wall_ms) wall_ms = ms;
    }
    std::sort(latencies_ms.begin(), latencies_ms.end());

    const double qps = static_cast<double>(requests) / (wall_ms / 1000.0);
    const double cost = wall_ms / static_cast<double>(requests);
    rows.push_back({"dblp", std::to_string(width), std::to_string(requests),
                    std::to_string(window_us), FormatDouble(wall_ms, 3),
                    FormatDouble(qps, 1), FormatDouble(cost, 4),
                    FormatDouble(Percentile(latencies_ms, 0.50), 3),
                    FormatDouble(Percentile(latencies_ms, 0.95), 3),
                    FormatDouble(Percentile(latencies_ms, 0.99), 3)});
  }

  std::cout << "serving latency\n";
  eval::TablePrinter printer(headers);
  for (const std::vector<std::string>& row : rows) {
    printer.AddRow(std::vector<std::string>(row));
  }
  printer.Print(std::cout);
  std::cout << "(closed loop, min wall over " << repeats
            << " repeats; cost = wall_ms / requests on one daemon; "
               "percentiles over every timed request)\n";
  if (bench::BenchObsSession* session = bench::BenchObsSession::active()) {
    session->RecordTable({"serving latency", headers, rows});
  }
}

}  // namespace

int main(int argc, char** argv) {
  tmark::bench::BenchObsSession obs_session(argv[0]);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  RunServingStudy();
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
