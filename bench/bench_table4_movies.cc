// Table 4: node classification accuracy on Movies. The paper's headline on
// this dataset inverts the usual order: per-director links are so sparse
// that EMR's indiscriminate aggregation wins, while T-Mark still beats the
// other collective baselines (Hcc/Hcc-ss/wvRN+RL/ICA) and absolute numbers
// stay low (0.44-0.63) because the tag features are noisy.

#include <iostream>

#include "bench/common.h"
#include "tmark/baselines/registry.h"
#include "tmark/datasets/movies.h"

int main() {
  tmark::bench::BenchObsSession obs_session("bench_table4_movies");
  using namespace tmark;
  datasets::MoviesOptions options;
  options.num_movies = bench::ScaledNodes(700);
  const hin::Hin hin = datasets::MakeMovies(options);
  std::cout << "== Table 4: accuracy on Movies (synthetic, n = "
            << hin.num_nodes() << ", m = " << hin.num_relations()
            << " director link types) ==\n";

  eval::SweepConfig config;
  config.trials = eval::BenchTrials(3);
  config.alpha = 0.9;  // Sec. 6.5: Movies uses alpha = 0.9
  config.gamma = 0.6;
  config.lambda = 0.98;  // noisy genres: accept only near-certain nodes
  // Paper Table 4, T-Mark column.
  const std::vector<double> paper = {0.441, 0.483, 0.511, 0.518, 0.529,
                                     0.546, 0.549, 0.553, 0.560};
  bench::PrintSweepTable(hin, baselines::PaperMethodNames(), config, paper,
                         "accuracy");
  return 0;
}
