// Fig. 5: relative importance of the six ACM link types per class, from the
// stationary z of T-Mark. Paper shape: "concept" and "conference" dominate
// every class; the distributions are similar across classes; "year" is the
// least informative.

#include <iostream>

#include "bench/common.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/acm.h"
#include "tmark/eval/table_printer.h"

int main() {
  tmark::bench::BenchObsSession obs_session("bench_fig5_acm_links");
  using namespace tmark;
  datasets::AcmOptions options;
  options.num_publications = bench::ScaledNodes(550);
  const hin::Hin hin = datasets::MakeAcm(options);
  std::cout << "== Fig. 5: relative importance of link types on ACM "
               "(stationary z per class) ==\n";

  Rng rng(24);
  const auto labeled = eval::StratifiedSplit(hin, 0.3, &rng);
  core::TMarkConfig config;
  config.alpha = 0.9;  // Sec. 6.5: ACM uses alpha = 0.9
  core::TMarkClassifier clf(config);
  clf.Fit(hin, labeled);

  std::vector<std::string> headers = {"Class"};
  for (std::size_t k = 0; k < hin.num_relations(); ++k) {
    headers.push_back(hin.relation_name(k));
  }
  eval::TablePrinter table(headers);
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    std::vector<std::string> row = {hin.class_name(c)};
    for (std::size_t k = 0; k < hin.num_relations(); ++k) {
      row.push_back(FormatDouble(clf.LinkImportance().At(k, c), 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  // Paper check: concept (k=1) and conference (k=2) outrank the rest for
  // every class.
  std::size_t classes_where_top2 = 0;
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    const auto ranking = clf.RankRelationsForClass(c);
    if ((ranking[0] == 1 || ranking[0] == 2) &&
        (ranking[1] == 1 || ranking[1] == 2)) {
      ++classes_where_top2;
    }
  }
  std::cout << "\nclasses where {concepts, conferences} are the top-2 link "
               "types: " << classes_where_top2 << " / "
            << hin.num_classes()
            << " (paper: these two dominate every class)\n";
  return 0;
}
