// Table 11: multi-label collective classification on ACM, macro-F1 over
// index terms. Paper shape: T-Mark and TensorRrCc are far ahead at low
// label rates (0.94+ at 10%); Hcc-ss catches up from 30%; EMR and wvRN+RL
// stay poor throughout because they treat all link types equally.

#include <iostream>

#include "bench/common.h"
#include "tmark/baselines/registry.h"
#include "tmark/datasets/acm.h"

int main() {
  tmark::bench::BenchObsSession obs_session("bench_table11_acm");
  using namespace tmark;
  datasets::AcmOptions options;
  options.num_publications = bench::ScaledNodes(500);
  const hin::Hin hin = datasets::MakeAcm(options);
  std::cout << "== Table 11: Macro-F1 on ACM (multi-label, n = "
            << hin.num_nodes() << ", m = " << hin.num_relations()
            << ") ==\n";

  eval::SweepConfig config;
  config.trials = eval::BenchTrials(3);
  config.multi_label = true;
  config.multi_label_threshold = 0.5;
  config.alpha = 0.9;
  config.gamma = 0.6;
  // Paper Table 11, T-Mark column.
  const std::vector<double> paper = {0.940, 0.966, 0.978, 0.989, 0.992,
                                     0.995, 0.995, 0.995, 0.995};
  bench::PrintSweepTable(hin, baselines::PaperMethodNames(), config, paper,
                         "macro-F1");
  return 0;
}
