// Ablations of the design choices DESIGN.md calls out, beyond the paper's
// own parameter studies:
//   (a) similarity kernel behind the feature walk W (Sec. 4.2 mentions that
//       several metrics are possible; the paper uses cosine);
//   (b) the ICA acceptance threshold lambda of Eq. (12), including the
//       lambda -> 1 limit where T-Mark degenerates to TensorRrCc;
//   (c) the ICA update itself (T-Mark vs TensorRrCc on the same split).

#include <iostream>

#include "bench/common.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/dblp.h"
#include "tmark/datasets/movies.h"
#include "tmark/eval/table_printer.h"
#include "tmark/hin/similarity_kernel.h"

namespace {

using namespace tmark;

double Evaluate(const hin::Hin& hin, const core::TMarkConfig& config,
                double fraction, int trials) {
  Rng master(71);
  double acc = 0.0;
  Rng rng = master.Fork();
  for (int t = 0; t < trials; ++t) {
    const auto labeled = eval::StratifiedSplit(hin, fraction, &rng);
    core::TMarkClassifier clf(config);
    acc += eval::EvaluateClassifier(hin, &clf, labeled, false, 0.5);
  }
  return acc / trials;
}

}  // namespace

int main() {
  tmark::bench::BenchObsSession obs_session("bench_ablation_tmark");
  const int trials = eval::BenchTrials(3);
  datasets::DblpOptions dblp_options;
  dblp_options.num_authors = bench::ScaledNodes(400);
  const hin::Hin dblp = datasets::MakeDblp(dblp_options);
  datasets::MoviesOptions movies_options;
  movies_options.num_movies = bench::ScaledNodes(500);
  const hin::Hin movies = datasets::MakeMovies(movies_options);

  // (a) Similarity kernels.
  std::cout << "== Ablation (a): similarity kernel of the feature walk W "
               "==\n";
  {
    eval::TablePrinter table({"kernel", "DBLP @30%", "Movies @30%"});
    for (hin::SimilarityKernel kernel :
         {hin::SimilarityKernel::kCosine,
          hin::SimilarityKernel::kBinaryCosine,
          hin::SimilarityKernel::kTfIdfCosine,
          hin::SimilarityKernel::kDotProduct}) {
      core::TMarkConfig config;
      config.similarity = kernel;
      core::TMarkConfig mconfig = config;
      mconfig.alpha = 0.9;
      table.AddRow({ToString(kernel),
                    FormatDouble(Evaluate(dblp, config, 0.3, trials), 3),
                    FormatDouble(Evaluate(movies, mconfig, 0.3, trials), 3)});
    }
    table.Print(std::cout);
  }
  std::cout << "\n";

  // (b) Lambda sweep.
  std::cout << "== Ablation (b): ICA acceptance threshold lambda (Eq. 12) "
               "==\n";
  {
    eval::TablePrinter table({"lambda", "DBLP @10%", "DBLP @50%"});
    for (double lambda : {0.5, 0.7, 0.85, 0.95, 1.0}) {
      core::TMarkConfig config;
      config.lambda = lambda;
      table.AddRow({FormatDouble(lambda, 2),
                    FormatDouble(Evaluate(dblp, config, 0.1, trials), 3),
                    FormatDouble(Evaluate(dblp, config, 0.5, trials), 3)});
    }
    table.Print(std::cout);
  }
  std::cout << "\n";

  // (c) ICA update on/off.
  std::cout << "== Ablation (c): ICA label update (T-Mark) vs fixed restart "
               "(TensorRrCc) ==\n";
  {
    eval::TablePrinter table({"variant", "DBLP @10%", "Movies @10%"});
    for (bool ica : {true, false}) {
      core::TMarkConfig config;
      config.ica_update = ica;
      core::TMarkConfig mconfig = config;
      mconfig.alpha = 0.9;
      table.AddRow({ica ? "T-Mark (ICA on)" : "TensorRrCc (ICA off)",
                    FormatDouble(Evaluate(dblp, config, 0.1, trials), 3),
                    FormatDouble(Evaluate(movies, mconfig, 0.1, trials), 3)});
    }
    table.Print(std::cout);
  }
  return 0;
}
