// Fit-cost comparison across all methods on one fixed HIN — contextualizes
// the O(q T D) analysis of Sec. 4.5: the tensor methods cost a handful of
// sparse passes, the classifier-based baselines pay per-epoch training, and
// the neural baselines dominate the budget.

#include <benchmark/benchmark.h>

#include "bench/common.h"

#include "tmark/baselines/registry.h"
#include "tmark/datasets/dblp.h"
#include "tmark/eval/experiment.h"

namespace {

using namespace tmark;

const hin::Hin& SharedHin() {
  static const hin::Hin* hin = [] {
    datasets::DblpOptions options;
    options.num_authors = 300;
    return new hin::Hin(datasets::MakeDblp(options));
  }();
  return *hin;
}

const std::vector<std::size_t>& SharedSplit() {
  static const std::vector<std::size_t>* labeled = [] {
    Rng rng(5);
    return new std::vector<std::size_t>(
        eval::StratifiedSplit(SharedHin(), 0.3, &rng));
  }();
  return *labeled;
}

void FitMethod(benchmark::State& state, const std::string& name) {
  const hin::Hin& hin = SharedHin();
  const auto& labeled = SharedSplit();
  for (auto _ : state) {
    auto clf = baselines::MakeClassifier(name);
    clf->Fit(hin, labeled);
    benchmark::DoNotOptimize(clf->Confidences());
  }
}

void BM_Fit_TMark(benchmark::State& s) { FitMethod(s, "T-Mark"); }
void BM_Fit_TensorRrCc(benchmark::State& s) { FitMethod(s, "TensorRrCc"); }
void BM_Fit_ICA(benchmark::State& s) { FitMethod(s, "ICA"); }
void BM_Fit_Hcc(benchmark::State& s) { FitMethod(s, "Hcc"); }
void BM_Fit_WvrnRl(benchmark::State& s) { FitMethod(s, "wvRN+RL"); }
void BM_Fit_Emr(benchmark::State& s) { FitMethod(s, "EMR"); }
void BM_Fit_Hn(benchmark::State& s) { FitMethod(s, "HN"); }
void BM_Fit_Gi(benchmark::State& s) { FitMethod(s, "GI"); }
void BM_Fit_ZooBp(benchmark::State& s) { FitMethod(s, "ZooBP"); }
void BM_Fit_RankClass(benchmark::State& s) { FitMethod(s, "RankClass"); }
void BM_Fit_GNetMine(benchmark::State& s) { FitMethod(s, "GNetMine"); }

BENCHMARK(BM_Fit_TMark)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fit_TensorRrCc)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fit_ICA)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fit_Hcc)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fit_WvrnRl)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fit_Emr)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fit_Hn)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fit_Gi)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fit_ZooBp)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fit_RankClass)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fit_GNetMine)->Unit(benchmark::kMillisecond);

}  // namespace

TMARK_BENCH_MAIN();
