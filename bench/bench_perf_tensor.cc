// Micro-benchmarks for the Sec. 4.5 complexity claims: the contraction
// kernels O x1 x x3 z and R x1 x x2 x cost O(D) in the stored non-zeros D,
// independent of the dense n^2 m volume. The per-item time should stay
// roughly flat as D grows (linear total cost), and far below the dense
// reference.

#include <benchmark/benchmark.h>

#include "bench/common.h"

#include "tmark/common/random.h"
#include "tmark/tensor/transition_tensors.h"

namespace {

using namespace tmark;

tensor::SparseTensor3 RandomTensor(std::size_t n, std::size_t m,
                                   std::size_t entries_target,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<tensor::TensorEntry> entries;
  entries.reserve(entries_target);
  for (std::size_t e = 0; e < entries_target; ++e) {
    entries.push_back({static_cast<std::uint32_t>(rng.UniformInt(n)),
                       static_cast<std::uint32_t>(rng.UniformInt(n)),
                       static_cast<std::uint32_t>(rng.UniformInt(m)), 1.0});
  }
  return tensor::SparseTensor3::FromEntries(n, m, std::move(entries));
}

void BM_ApplyO(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 16;
  const std::size_t d = 8 * n;  // D scales linearly with n
  const tensor::TransitionTensors t =
      tensor::TransitionTensors::Build(RandomTensor(n, m, d, 7));
  const la::Vector x = la::UniformProbability(n);
  const la::Vector z = la::UniformProbability(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.ApplyO(x, z));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d));
}
BENCHMARK(BM_ApplyO)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_ApplyR(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 16;
  const std::size_t d = 8 * n;
  const tensor::TransitionTensors t =
      tensor::TransitionTensors::Build(RandomTensor(n, m, d, 11));
  const la::Vector x = la::UniformProbability(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.ApplyR(x, x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d));
}
BENCHMARK(BM_ApplyR)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_BuildTransitionTensors(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const tensor::SparseTensor3 a = RandomTensor(n, 16, 8 * n, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::TransitionTensors::Build(a));
  }
}
BENCHMARK(BM_BuildTransitionTensors)->Arg(1000)->Arg(8000);

void BM_DenseReferenceApplyO(benchmark::State& state) {
  // Dense n^2 m contraction for contrast with the O(D) kernel.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 16;
  const tensor::TransitionTensors t =
      tensor::TransitionTensors::Build(RandomTensor(n, m, 8 * n, 17));
  const la::Vector x = la::UniformProbability(n);
  const la::Vector z = la::UniformProbability(m);
  for (auto _ : state) {
    la::Vector y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < m; ++k) {
          acc += t.OEntry(i, j, k) * x[j] * z[k];
        }
      }
      y[i] = acc;
    }
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_DenseReferenceApplyO)->Arg(200);

void BM_Matricization(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const tensor::SparseTensor3 a = RandomTensor(n, 16, 8 * n, 19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.SumOverRelations());
  }
}
BENCHMARK(BM_Matricization)->Arg(2000);

}  // namespace

TMARK_BENCH_MAIN();
