// Per-kernel microbenchmarks for the register-blocked multi-RHS panel
// layer (la/microkernel.h, docs/PERFORMANCE.md):
//
//   * "kernel microbenchmarks" — each blocked panel kernel
//     (MatMulPanel, TransposeMatMulPanel, BilinearPanel, ContractMode1Panel,
//     FeatureSimilarity::ApplyPanel) at panel widths {1, 2, 4, 8, 16}
//     against two baselines over identical operands:
//       scalar_ms  — an unblocked reference of the SAME panel algorithm
//                    (plain runtime-width inner loops, implemented in this
//                    file); the gated baseline, isolating what the blocked
//                    dispatch + SIMD annotation buy;
//       vector_ms  — `width` single-vector kernel calls (the per-class
//                    engine's cost shape); informational, showing where the
//                    one-structure-pass panel form overtakes it.
//   * "fused-epilogue comparison" — the fused combine + normalize/residual
//     passes of the batched fit engine against the unfused sweep sequence
//     they replaced (scale, two axpys, L1 normalize, L1 distances).
//
// Both tables are recorded in the TMARK_BENCH_JSON dump and gated by
// scripts/check_kernel_bench.py (generous slack: the gate catches a blocked
// path that regressed past its scalar baseline, not noise). Run with
// --benchmark_filter=^$ to get just the tables.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"

#include "tmark/common/string_util.h"
#include "tmark/eval/table_printer.h"
#include "tmark/hin/feature_similarity.h"
#include "tmark/la/dense_matrix.h"
#include "tmark/la/panel.h"
#include "tmark/la/sparse_matrix.h"
#include "tmark/la/vector_ops.h"
#include "tmark/parallel/thread_pool.h"
#include "tmark/tensor/sparse_tensor3.h"

namespace {

using namespace tmark;

// DBLP-shaped synthetic operands: n nodes, a handful of relations, a sparse
// feature matrix. Sizes follow the dblp preset order of magnitude.
constexpr std::size_t kNodes = 800;
constexpr std::size_t kVocab = 160;
constexpr std::size_t kRelations = 3;
constexpr std::size_t kEntriesPerRow = 6;
constexpr std::size_t kMaxWidth = 16;
const std::size_t kWidths[] = {1, 2, 4, 8, 16};

la::SparseMatrix MakeSparse(std::size_t rows, std::size_t cols,
                            std::size_t salt) {
  std::vector<la::Triplet> triplets;
  triplets.reserve(rows * kEntriesPerRow);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t e = 0; e < kEntriesPerRow; ++e) {
      const std::size_t c = (r * 31 + e * 17 + salt * 7) % cols;
      triplets.push_back({static_cast<std::uint32_t>(r),
                          static_cast<std::uint32_t>(c),
                          0.25 + static_cast<double>((r + e + salt) % 8)});
    }
  }
  return la::SparseMatrix::FromTriplets(rows, cols, std::move(triplets));
}

la::Vector MakeProb(std::size_t n, std::size_t salt) {
  la::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 0.01 + static_cast<double>((i * 13 + salt) % 29);
  }
  la::NormalizeL1(&v);
  return v;
}

// Panels are built with exactly `width` physical columns — the batched
// engine's layout when all q classes are active (stride == width). A wider
// stride would charge the small-width rows for cache lines they never use.
la::DenseMatrix MakeProbPanel(std::size_t rows, std::size_t width,
                              std::size_t salt) {
  la::DenseMatrix p(rows, width);
  for (std::size_t c = 0; c < width; ++c) {
    const la::Vector v = MakeProb(rows, salt + c);
    for (std::size_t r = 0; r < rows; ++r) p.At(r, c) = v[r];
  }
  return p;
}

std::vector<la::Vector> PanelColumns(const la::DenseMatrix& panel) {
  std::vector<la::Vector> cols;
  for (std::size_t c = 0; c < panel.cols(); ++c) cols.push_back(panel.Col(c));
  return cols;
}

// ---- unblocked scalar references of the panel kernels --------------------
// Same one-structure-pass algorithms as the library kernels, with plain
// runtime-width inner loops instead of the mk:: fixed-width blocks. These
// are the `scalar_ms` baseline the gate compares the blocked kernels to.

void ScalarMatMulPanel(const la::SparseMatrix& a, const la::DenseMatrix& x,
                       std::size_t width, la::DenseMatrix* y) {
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double* yrow = y->RowPtr(r);
    for (std::size_t c = 0; c < width; ++c) yrow[c] = 0.0;
    for (std::size_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      const double v = values[p];
      const double* xrow = x.RowPtr(col_idx[p]);
      for (std::size_t c = 0; c < width; ++c) yrow[c] += v * xrow[c];
    }
  }
}

void ScalarTransposeMatMulPanel(const la::SparseMatrix& a,
                                const la::DenseMatrix& x, std::size_t width,
                                la::DenseMatrix* y) {
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  for (std::size_t r = 0; r < a.cols(); ++r) {
    double* yrow = y->RowPtr(r);
    for (std::size_t c = 0; c < width; ++c) yrow[c] = 0.0;
  }
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* xrow = x.RowPtr(r);
    for (std::size_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      const double v = values[p];
      double* yrow = y->RowPtr(col_idx[p]);
      for (std::size_t c = 0; c < width; ++c) yrow[c] += v * xrow[c];
    }
  }
}

void ScalarBilinearPanel(const la::SparseMatrix& a, const la::DenseMatrix& x,
                         const la::DenseMatrix& y, std::size_t width,
                         double* out) {
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  for (std::size_t c = 0; c < width; ++c) out[c] = 0.0;
  double inner[kMaxWidth];
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* xrow = x.RowPtr(r);
    for (std::size_t c = 0; c < width; ++c) inner[c] = 0.0;
    for (std::size_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      const double v = values[p];
      const double* yrow = y.RowPtr(col_idx[p]);
      for (std::size_t c = 0; c < width; ++c) inner[c] += v * yrow[c];
    }
    for (std::size_t c = 0; c < width; ++c) out[c] += xrow[c] * inner[c];
  }
}

void ScalarContractMode1Panel(const tensor::SparseTensor3& t,
                              const la::DenseMatrix& x,
                              const la::DenseMatrix& z, std::size_t width,
                              la::DenseMatrix* y) {
  double acc[kMaxWidth];
  for (std::size_t i = 0; i < t.num_nodes(); ++i) {
    double* yrow = y->RowPtr(i);
    for (std::size_t c = 0; c < width; ++c) yrow[c] = 0.0;
    for (std::size_t k = 0; k < t.num_relations(); ++k) {
      const la::SparseMatrix& slice = t.Slice(k);
      const auto& row_ptr = slice.row_ptr();
      const auto& col_idx = slice.col_idx();
      const auto& values = slice.values();
      for (std::size_t c = 0; c < width; ++c) acc[c] = 0.0;
      for (std::size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
        const double v = values[p];
        const double* xrow = x.RowPtr(col_idx[p]);
        for (std::size_t c = 0; c < width; ++c) acc[c] += v * xrow[c];
      }
      const double* zrow = z.RowPtr(k);
      for (std::size_t c = 0; c < width; ++c) yrow[c] += zrow[c] * acc[c];
    }
  }
}

/// Scalar reference of FeatureSimilarity::ApplyPanel, rebuilt from the same
/// public factorization: W x = F_hat (F_hat^T (x ./ colsums)) plus the
/// uniform spread of dangling mass.
struct ScalarSimilarity {
  la::SparseMatrix fhat;
  la::Vector col_sums;

  static ScalarSimilarity Build(const la::SparseMatrix& features) {
    const auto& row_ptr = features.row_ptr();
    const auto& values = features.values();
    la::Vector inv_norm(features.rows(), 0.0);
    for (std::size_t r = 0; r < features.rows(); ++r) {
      double sq = 0.0;
      for (std::size_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
        sq += values[p] * values[p];
      }
      if (sq > 0.0) inv_norm[r] = 1.0 / std::sqrt(sq);
    }
    ScalarSimilarity sim;
    sim.fhat = features.ScaleRows(inv_norm);
    la::Vector t = sim.fhat.ColumnSums();
    sim.col_sums = sim.fhat.MatVec(t);
    return sim;
  }

  void ApplyPanel(const la::DenseMatrix& x, std::size_t width,
                  la::DenseMatrix* y, la::DenseMatrix* u,
                  la::DenseMatrix* t) const {
    const std::size_t n = fhat.rows();
    double mass[kMaxWidth];
    for (std::size_t c = 0; c < width; ++c) mass[c] = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double* xrow = x.RowPtr(r);
      double* urow = u->RowPtr(r);
      if (col_sums[r] > 0.0) {
        for (std::size_t c = 0; c < width; ++c) {
          urow[c] = xrow[c] / col_sums[r];
        }
      } else {
        for (std::size_t c = 0; c < width; ++c) {
          urow[c] = 0.0;
          mass[c] += xrow[c];
        }
      }
    }
    ScalarTransposeMatMulPanel(fhat, *u, width, t);
    ScalarMatMulPanel(fhat, *t, width, y);
    bool any = false;
    for (std::size_t c = 0; c < width; ++c) any = any || mass[c] != 0.0;
    if (!any) return;
    for (std::size_t r = 0; r < n; ++r) {
      double* yrow = y->RowPtr(r);
      for (std::size_t c = 0; c < width; ++c) {
        yrow[c] += mass[c] / static_cast<double>(n);
      }
    }
  }
};

/// Shared sparse operators, built once. The dense operands are re-made per
/// width (see Fixture::SetWidth) so panel strides match the width under
/// test; the timed lambdas only touch warm caller-owned outputs and the
/// workspace.
struct Fixture {
  la::SparseMatrix a = MakeSparse(kNodes, kNodes, 1);
  tensor::SparseTensor3 tensor = [] {
    std::vector<la::SparseMatrix> slices;
    for (std::size_t k = 0; k < kRelations; ++k) {
      slices.push_back(MakeSparse(kNodes, kNodes, 3 + k));
    }
    return tensor::SparseTensor3::FromSlices(std::move(slices));
  }();
  la::SparseMatrix features = MakeSparse(kNodes, kVocab, 11);
  hin::FeatureSimilarity sim = hin::FeatureSimilarity::Build(features);
  ScalarSimilarity scalar_sim = ScalarSimilarity::Build(features);
  la::DenseMatrix xp, yp, zp, node_out, sim_u, sim_t;
  std::vector<la::Vector> xcols, ycols, zcols;
  la::Vector vec_out;
  la::Vector bilinear_out = la::Vector(kMaxWidth);
  la::PanelWorkspace ws;

  void SetWidth(std::size_t width) {
    xp = MakeProbPanel(kNodes, width, 20);
    yp = MakeProbPanel(kNodes, width, 40);
    zp = MakeProbPanel(kRelations, width, 60);
    xcols = PanelColumns(xp);
    ycols = PanelColumns(yp);
    zcols = PanelColumns(zp);
    node_out = la::DenseMatrix(kNodes, width);
    sim_u = la::DenseMatrix(kNodes, width);
    sim_t = la::DenseMatrix(kVocab, width);
  }
};

/// Inner repetitions per timing sample, scaled down with width so every row
/// costs a comparable (and measurable) amount of wall clock. Kept high
/// enough that each timed window is milliseconds-scale — sub-ms windows
/// pick up scheduler jitter that min-over-repeats cannot filter.
std::size_t RepsFor(std::size_t width) { return 384 / width; }

struct KernelRow {
  const char* name;
  // Runs the unblocked scalar reference of the panel kernel (gated).
  void (*scalar_fn)(Fixture&, std::size_t width);
  // Runs the blocked library panel kernel (gated against scalar_fn).
  void (*blocked_fn)(Fixture&, std::size_t width);
  // Runs `width` single-vector kernel calls (informational).
  void (*vector_fn)(Fixture&, std::size_t width);
};

const KernelRow kKernelRows[] = {
    {"matmul_panel",
     [](Fixture& f, std::size_t w) {
       ScalarMatMulPanel(f.a, f.xp, w, &f.node_out);
     },
     [](Fixture& f, std::size_t w) { f.a.MatMulPanel(f.xp, w, &f.node_out); },
     [](Fixture& f, std::size_t w) {
       for (std::size_t c = 0; c < w; ++c) {
         f.a.MatVecInto(f.xcols[c], &f.vec_out);
       }
     }},
    {"transpose_matmul_panel",
     [](Fixture& f, std::size_t w) {
       ScalarTransposeMatMulPanel(f.a, f.xp, w, &f.node_out);
     },
     [](Fixture& f, std::size_t w) {
       f.a.TransposeMatMulPanel(f.xp, w, &f.node_out, &f.ws);
     },
     [](Fixture& f, std::size_t w) {
       for (std::size_t c = 0; c < w; ++c) {
         f.a.TransposeMatVecInto(f.xcols[c], &f.vec_out, &f.ws);
       }
     }},
    {"bilinear_panel",
     [](Fixture& f, std::size_t w) {
       ScalarBilinearPanel(f.a, f.xp, f.yp, w, f.bilinear_out.data());
     },
     [](Fixture& f, std::size_t w) {
       f.a.BilinearPanel(f.xp, f.yp, w, f.bilinear_out.data(), &f.ws);
     },
     [](Fixture& f, std::size_t w) {
       for (std::size_t c = 0; c < w; ++c) {
         benchmark::DoNotOptimize(f.a.Bilinear(f.xcols[c], f.ycols[c]));
       }
     }},
    {"contract_mode1_panel",
     [](Fixture& f, std::size_t w) {
       ScalarContractMode1Panel(f.tensor, f.xp, f.zp, w, &f.node_out);
     },
     [](Fixture& f, std::size_t w) {
       f.tensor.ContractMode1Panel(f.xp, f.zp, w, &f.node_out, &f.ws);
     },
     [](Fixture& f, std::size_t w) {
       for (std::size_t c = 0; c < w; ++c) {
         f.tensor.ContractMode1Into(f.xcols[c], f.zcols[c], &f.vec_out);
       }
     }},
    {"similarity_apply_panel",
     [](Fixture& f, std::size_t w) {
       f.scalar_sim.ApplyPanel(f.xp, w, &f.node_out, &f.sim_u, &f.sim_t);
     },
     [](Fixture& f, std::size_t w) {
       f.sim.ApplyPanel(f.xp, w, &f.node_out, &f.ws);
     },
     [](Fixture& f, std::size_t w) {
       for (std::size_t c = 0; c < w; ++c) {
         f.sim.ApplyInto(f.xcols[c], &f.ws, &f.vec_out);
       }
     }},
};

// The comparison tables isolate register-blocking from threading: the
// blocked kernels are pool-partitioned while the scalar references here are
// plain serial loops, so at TMARK_NUM_THREADS > 1 on a small machine the
// chunk-dispatch overhead would pollute the blocked column. Tables run
// single-threaded; the BM_* entries below honor TMARK_NUM_THREADS for the
// threading view.
struct SingleThreadGuard {
  SingleThreadGuard() { parallel::SetNumThreads(1); }
  ~SingleThreadGuard() { parallel::SetNumThreads(0); }
};

void RunKernelMicrobench() {
  SingleThreadGuard pin;
  Fixture f;
  std::vector<std::string> headers = {"kernel",     "width",     "scalar_ms",
                                      "blocked_ms", "vector_ms", "speedup"};
  eval::TablePrinter table(headers);
  std::vector<std::vector<std::string>> rows;
  for (const KernelRow& kernel : kKernelRows) {
    for (const std::size_t width : kWidths) {
      f.SetWidth(width);
      const std::size_t reps = RepsFor(width);
      const auto scalar_timing = bench::BenchTimer::Time([&] {
        for (std::size_t i = 0; i < reps; ++i) kernel.scalar_fn(f, width);
      });
      const auto blocked_timing = bench::BenchTimer::Time([&] {
        for (std::size_t i = 0; i < reps; ++i) kernel.blocked_fn(f, width);
      });
      const auto vector_timing = bench::BenchTimer::Time([&] {
        for (std::size_t i = 0; i < reps; ++i) kernel.vector_fn(f, width);
      });
      std::vector<std::string> row = {
          kernel.name,
          std::to_string(width),
          FormatDouble(scalar_timing.min_ms, 3),
          FormatDouble(blocked_timing.min_ms, 3),
          FormatDouble(vector_timing.min_ms, 3),
          FormatDouble(scalar_timing.min_ms / blocked_timing.min_ms, 2)};
      rows.push_back(row);
      table.AddRow(std::move(row));
    }
  }
  std::cout << "kernel microbenchmarks (" << kNodes << " nodes, "
            << kRelations << " relations, min over "
            << std::max(1, bench::BenchTimer::Repeats())
            << " repeats; scalar_ms = unblocked panel reference, vector_ms = "
               "width single-vector calls, speedup = scalar/blocked)\n";
  table.Print(std::cout);
  if (bench::BenchObsSession* session = bench::BenchObsSession::active()) {
    session->RecordTable(
        {"kernel microbenchmarks", std::move(headers), std::move(rows)});
  }
}

void RunFusedComparison() {
  SingleThreadGuard pin;
  const double rel = 0.55, beta = 0.4, alpha = 0.05;

  std::vector<std::string> headers = {"width", "unfused_ms", "fused_ms",
                                      "speedup"};
  eval::TablePrinter table(headers);
  std::vector<std::vector<std::string>> rows;
  for (const std::size_t width : kWidths) {
    const std::size_t reps = RepsFor(width) * 4;
    const la::DenseMatrix wx = MakeProbPanel(kNodes, width, 80);
    const la::DenseMatrix l = MakeProbPanel(kNodes, width, 100);
    const la::DenseMatrix prev = MakeProbPanel(kNodes, width, 120);
    // Each variant owns its panel; repeated application keeps the columns
    // positive (normalize of a combined probability panel), so the sweeps
    // stay well-defined across reps.
    la::DenseMatrix unfused_panel = MakeProbPanel(kNodes, width, 140);
    la::DenseMatrix fused_panel = unfused_panel;
    la::Vector sums, rho;
    const auto unfused_timing = bench::BenchTimer::Time([&] {
      for (std::size_t i = 0; i < reps; ++i) {
        la::ScaleLeadingColumns(rel, width, &unfused_panel);
        la::AxpyLeadingColumns(beta, wx, width, &unfused_panel);
        la::AxpyLeadingColumns(alpha, l, width, &unfused_panel);
        la::NormalizeLeadingColumnsL1(width, &unfused_panel);
        la::LeadingColumnL1Distances(unfused_panel, prev, width, &rho);
      }
    });
    const auto fused_timing = bench::BenchTimer::Time([&] {
      for (std::size_t i = 0; i < reps; ++i) {
        la::FusedCombineColumns(rel, beta, wx, alpha, l, width, &fused_panel,
                                &sums);
        la::FusedNormalizeDistanceColumns(&sums, prev, width, &fused_panel,
                                          &rho);
      }
    });
    std::vector<std::string> row = {
        std::to_string(width), FormatDouble(unfused_timing.min_ms, 3),
        FormatDouble(fused_timing.min_ms, 3),
        FormatDouble(unfused_timing.min_ms / fused_timing.min_ms, 2)};
    rows.push_back(row);
    table.AddRow(std::move(row));
  }
  std::cout << "fused-epilogue comparison (" << kNodes
            << " rows; unfused = scale + 2 axpy + L1 normalize + L1 "
               "distances)\n";
  table.Print(std::cout);
  if (bench::BenchObsSession* session = bench::BenchObsSession::active()) {
    session->RecordTable(
        {"fused-epilogue comparison", std::move(headers), std::move(rows)});
  }
}

// Interactive google-benchmark entry points over the same fixture shapes.

void BM_MatMulPanel(benchmark::State& state) {
  Fixture f;
  const auto width = static_cast<std::size_t>(state.range(0));
  f.SetWidth(width);
  for (auto _ : state) {
    f.a.MatMulPanel(f.xp, width, &f.node_out);
    benchmark::DoNotOptimize(f.node_out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.a.NumNonZeros() * width));
}
BENCHMARK(BM_MatMulPanel)->Arg(1)->Arg(4)->Arg(16);

void BM_SimilarityApplyPanel(benchmark::State& state) {
  Fixture f;
  const auto width = static_cast<std::size_t>(state.range(0));
  f.SetWidth(width);
  for (auto _ : state) {
    f.sim.ApplyPanel(f.xp, width, &f.node_out, &f.ws);
    benchmark::DoNotOptimize(f.node_out.data());
  }
}
BENCHMARK(BM_SimilarityApplyPanel)->Arg(1)->Arg(4)->Arg(16);

void BM_FusedEpilogue(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  const la::DenseMatrix wx = MakeProbPanel(kNodes, width, 80);
  const la::DenseMatrix l = MakeProbPanel(kNodes, width, 100);
  const la::DenseMatrix prev = MakeProbPanel(kNodes, width, 120);
  la::DenseMatrix panel = MakeProbPanel(kNodes, width, 140);
  la::Vector sums, rho;
  for (auto _ : state) {
    la::FusedCombineColumns(0.55, 0.4, wx, 0.05, l, width, &panel, &sums);
    la::FusedNormalizeDistanceColumns(&sums, prev, width, &panel, &rho);
    benchmark::DoNotOptimize(rho.data());
  }
}
BENCHMARK(BM_FusedEpilogue)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  tmark::bench::BenchObsSession obs_session(argv[0]);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  RunKernelMicrobench();
  RunFusedComparison();
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
