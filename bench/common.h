#ifndef TMARK_BENCH_COMMON_H_
#define TMARK_BENCH_COMMON_H_

// Shared helpers for the table/figure reproduction binaries. Each binary
// regenerates one table or figure of the paper; TMARK_BENCH_TRIALS and
// TMARK_BENCH_SCALE (see eval::BenchTrials / eval::BenchScale) trade
// fidelity for wall-clock.
//
// Setting TMARK_BENCH_JSON=<path> additionally enables the obs subsystem
// for the run and writes a machine-readable dump — every printed table's
// cells, the metrics-registry snapshot (per-phase fit timings, residual
// series, nnz gauges, ...), and the trace-span tree — as one JSON document
// (schema: docs/OBSERVABILITY.md, validated by scripts/check_bench_json.py).
// Each bench main() constructs one BenchObsSession to opt in; with the env
// var unset the session and all instrumentation are inert.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "tmark/common/string_util.h"
#include "tmark/eval/experiment.h"
#include "tmark/la/microkernel.h"
#include "tmark/eval/table_printer.h"
#include "tmark/hin/hin.h"
#include "tmark/obs/chrome_trace.h"
#include "tmark/obs/json_export.h"
#include "tmark/obs/logging.h"
#include "tmark/obs/mem.h"
#include "tmark/obs/metrics.h"
#include "tmark/obs/prof.h"
#include "tmark/obs/trace.h"
#include "tmark/parallel/thread_pool.h"

namespace tmark::bench {

/// One recorded table: the title plus the printed cells, verbatim.
struct RecordedTable {
  std::string title;
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;
};

/// Per-binary observability session. When TMARK_BENCH_JSON names a file,
/// the constructor turns the metrics registry and tracer on and the
/// destructor writes the bench JSON document there; otherwise the session
/// is a no-op. Construct exactly one, first thing in main().
///
/// Two sibling env vars ride on the same session: TMARK_TRACE_CHROME=<path>
/// writes the span tree as a Perfetto-loadable Chrome trace, and
/// TMARK_PROFILE_JSON=<path> enables the kernel profiler and writes a
/// tmark-profile-v1 document (regions, attribution, overhead estimate).
/// All three sinks compose.
class BenchObsSession {
 public:
  explicit BenchObsSession(const char* binary = "") : binary_(binary) {
    const char* path = std::getenv("TMARK_BENCH_JSON");
    if (path != nullptr && *path != '\0') path_ = path;
    const char* chrome = std::getenv("TMARK_TRACE_CHROME");
    if (chrome != nullptr && *chrome != '\0') chrome_path_ = chrome;
    const char* profile = std::getenv("TMARK_PROFILE_JSON");
    if (profile != nullptr && *profile != '\0') profile_path_ = profile;
    if (path_.empty() && chrome_path_.empty() && profile_path_.empty()) {
      return;
    }
    obs::Registry::Instance().set_enabled(true);
    obs::Tracer::Instance().set_enabled(true);
    if (!profile_path_.empty()) {
      obs::prof::Profiler::Instance().set_enabled(true);
    }
    obs::SetGauge("parallel.threads",
                  static_cast<double>(parallel::NumThreads()));
    active_instance_ = this;
  }

  ~BenchObsSession() {
    if (active_instance_ != this) return;
    active_instance_ = nullptr;
    if (!profile_path_.empty()) WriteProfileJson();
    if (!chrome_path_.empty()) {
      const std::string doc =
          obs::SpansToChromeTrace(obs::Tracer::Instance().FinishedCopy());
      if (!obs::WriteTextFile(chrome_path_, doc)) {
        obs::LogError("bench.chrome_trace_write_failed",
                      {{"path", chrome_path_}});
      }
    }
    if (!path_.empty()) WriteJson();
  }

  BenchObsSession(const BenchObsSession&) = delete;
  BenchObsSession& operator=(const BenchObsSession&) = delete;

  /// The session of this binary, or nullptr when JSON mode is off.
  static BenchObsSession* active() { return active_instance_; }

  void RecordTable(RecordedTable table) {
    tables_.push_back(std::move(table));
  }

 private:
  void WriteJson() {
    // Refresh the peak-RSS gauge just before the snapshot so the dump
    // carries the run's true memory high-water mark.
    obs::RecordPeakRss();
    obs::JsonWriter writer;
    writer.BeginObject();
    writer.Key("schema").Value("tmark-bench-v1");
    writer.Key("binary").Value(binary_);
    // Effective compile flags (from the build system) + the SIMD pragma
    // flavor, so committed dumps say what build produced them.
#ifdef TMARK_BUILD_FLAGS
    writer.Key("build_flags").Value(TMARK_BUILD_FLAGS);
#endif
    writer.Key("simd").Value(la::mk::SimdAnnotation());
    writer.Key("tables").BeginArray();
    for (const RecordedTable& table : tables_) {
      writer.BeginObject();
      writer.Key("title").Value(table.title);
      writer.Key("headers").BeginArray();
      for (const std::string& h : table.headers) writer.Value(h);
      writer.EndArray();
      writer.Key("rows").BeginArray();
      for (const std::vector<std::string>& row : table.rows) {
        writer.BeginArray();
        for (const std::string& cell : row) writer.Value(cell);
        writer.EndArray();
      }
      writer.EndArray();
      writer.EndObject();
    }
    writer.EndArray();
    writer.Key("metrics");
    obs::WriteMetrics(writer, obs::Registry::Instance().Snapshot());
    const std::vector<obs::SpanNode> spans =
        obs::Tracer::Instance().FinishedCopy();
    // Per-kernel exclusive-time table derived from the span tree: in a
    // single-threaded trace the self_ms of all rows sums to the total
    // root-span time, so fit costs can be attributed without
    // post-processing (concurrent sibling spans overlap, so at higher
    // thread counts the sum can exceed it).
    writer.Key("attribution");
    obs::WriteAttribution(writer, obs::prof::ComputeAttribution(spans));
    writer.Key("spans");
    obs::WriteSpans(writer, spans);
    writer.EndObject();
    if (!obs::WriteTextFile(path_, writer.TakeString())) {
      obs::LogError("bench.json_write_failed", {{"path", path_}});
    } else {
      obs::LogInfo("bench.json_written", {{"path", path_}});
    }
  }

  void WriteProfileJson() {
    const obs::prof::ProfileSnapshot profile =
        obs::prof::Profiler::Instance().Snapshot();
    obs::ProfileOverhead overhead;
    for (const obs::prof::RegionTotals& region : profile.regions) {
      overhead.region_calls += region.calls;
    }
    for (const obs::HistogramSnapshot& h :
         obs::Registry::Instance().Snapshot().histograms) {
      if (h.name == "tmark.fit.total_ms") overhead.workload_ms = h.sum;
    }
    // Per-call cost of a *disabled* region (profiling is forced off inside
    // the measurement), scaled by this run's region calls over its fit
    // time: the estimated always-on overhead the <2% gate checks.
    overhead.disabled_ns_per_region =
        obs::prof::MeasureDisabledRegionCostNs(2'000'000);
    const std::string doc = obs::ProfileToJson(
        binary_, static_cast<std::uint64_t>(parallel::NumThreads()), profile,
        obs::prof::ComputeAttribution(obs::Tracer::Instance().FinishedCopy()),
        overhead);
    if (!obs::WriteTextFile(profile_path_, doc)) {
      obs::LogError("bench.profile_write_failed", {{"path", profile_path_}});
    } else {
      obs::LogInfo("bench.profile_written", {{"path", profile_path_}});
    }
  }

  inline static BenchObsSession* active_instance_ = nullptr;
  std::string binary_;
  std::string path_;
  std::string chrome_path_;
  std::string profile_path_;
  std::vector<RecordedTable> tables_;
};

/// Prints the paper-style sweep table: one row per training fraction, one
/// column per method, plus (optionally) the paper's reported T-Mark column
/// for eyeball comparison. In JSON mode the cells are also recorded into
/// the active BenchObsSession.
inline void PrintSweepTable(const hin::Hin& hin,
                            const std::vector<std::string>& methods,
                            const eval::SweepConfig& config,
                            const std::vector<double>& paper_tmark,
                            const std::string& metric_name) {
  std::vector<eval::MethodSweep> sweeps;
  sweeps.reserve(methods.size());
  for (const std::string& method : methods) {
    obs::LogInfo("bench.fit", {{"method", method}});
    sweeps.push_back(eval::RunSweep(hin, method, config));
  }
  std::vector<std::string> headers = {"Percentage"};
  for (const std::string& m : methods) headers.push_back(m);
  if (!paper_tmark.empty()) headers.push_back("[paper T-Mark]");
  eval::TablePrinter table(headers);
  std::vector<std::vector<std::string>> recorded_rows;
  for (std::size_t f = 0; f < config.train_fractions.size(); ++f) {
    std::vector<std::string> row = {
        FormatDouble(config.train_fractions[f], 1)};
    for (const eval::MethodSweep& sweep : sweeps) {
      row.push_back(FormatDouble(sweep.cells[f].mean, 3));
    }
    if (!paper_tmark.empty()) {
      row.push_back(FormatDouble(paper_tmark[f], 3));
    }
    recorded_rows.push_back(row);
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "(" << metric_name << ", mean over " << config.trials
            << " trials; paper column: reported values for T-Mark)\n";
  if (BenchObsSession* session = BenchObsSession::active()) {
    session->RecordTable(
        {metric_name, std::move(headers), std::move(recorded_rows)});
  }
}

/// Scales a node count by TMARK_BENCH_SCALE with a sane floor.
inline std::size_t ScaledNodes(std::size_t base) {
  const double scaled = static_cast<double>(base) * eval::BenchScale();
  return scaled < 60.0 ? 60 : static_cast<std::size_t>(scaled);
}

/// Warm-up/repeat timing loop for the table benches: runs the workload
/// TMARK_BENCH_WARMUP times untimed (default 0), then TMARK_BENCH_REPEATS
/// times timed (default 1), and reports min and median wall-clock. Min and
/// median are stable across the fleet where a single run is not — speedup
/// claims in docs/PERFORMANCE.md quote them.
class BenchTimer {
 public:
  struct Timing {
    double min_ms = 0.0;
    double median_ms = 0.0;
    int repeats = 1;
  };

  static int Warmup() { return EnvCount("TMARK_BENCH_WARMUP", 0); }
  static int Repeats() { return EnvCount("TMARK_BENCH_REPEATS", 1); }

  template <typename Fn>
  static Timing Time(Fn&& fn) {
    const int warmup = Warmup();
    const int repeats = std::max(1, Repeats());
    for (int i = 0; i < warmup; ++i) fn();
    std::vector<double> runs;
    runs.reserve(static_cast<std::size_t>(repeats));
    for (int i = 0; i < repeats; ++i) {
      obs::Stopwatch watch;
      fn();
      runs.push_back(watch.ElapsedMs());
    }
    std::sort(runs.begin(), runs.end());
    const std::size_t mid = runs.size() / 2;
    Timing timing;
    timing.min_ms = runs.front();
    timing.median_ms = runs.size() % 2 == 1
                           ? runs[mid]
                           : 0.5 * (runs[mid - 1] + runs[mid]);
    timing.repeats = repeats;
    return timing;
  }

 private:
  static int EnvCount(const char* name, int fallback) {
    const char* env = std::getenv(name);
    if (env == nullptr) return fallback;
    const int v = std::atoi(env);
    return v >= 0 ? v : fallback;
  }
};

}  // namespace tmark::bench

/// Replacement for BENCHMARK_MAIN() that threads the google-benchmark run
/// through a BenchObsSession, so TMARK_BENCH_JSON also works for the perf
/// binaries. Requires <benchmark/benchmark.h> at the expansion site.
#define TMARK_BENCH_MAIN()                                                  \
  int main(int argc, char** argv) {                                         \
    tmark::bench::BenchObsSession obs_session(argv[0]);                     \
    ::benchmark::Initialize(&argc, argv);                                   \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;     \
    ::benchmark::RunSpecifiedBenchmarks();                                  \
    ::benchmark::Shutdown();                                                \
    return 0;                                                               \
  }                                                                         \
  static_assert(true, "require a trailing semicolon")

#endif  // TMARK_BENCH_COMMON_H_
