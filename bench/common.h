#ifndef TMARK_BENCH_COMMON_H_
#define TMARK_BENCH_COMMON_H_

// Shared helpers for the table/figure reproduction binaries. Each binary
// regenerates one table or figure of the paper; TMARK_BENCH_TRIALS and
// TMARK_BENCH_SCALE (see eval::BenchTrials / eval::BenchScale) trade
// fidelity for wall-clock.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "tmark/common/string_util.h"
#include "tmark/eval/experiment.h"
#include "tmark/eval/table_printer.h"
#include "tmark/hin/hin.h"

namespace tmark::bench {

/// Prints the paper-style sweep table: one row per training fraction, one
/// column per method, plus (optionally) the paper's reported T-Mark column
/// for eyeball comparison.
inline void PrintSweepTable(const hin::Hin& hin,
                            const std::vector<std::string>& methods,
                            const eval::SweepConfig& config,
                            const std::vector<double>& paper_tmark,
                            const std::string& metric_name) {
  std::vector<eval::MethodSweep> sweeps;
  sweeps.reserve(methods.size());
  for (const std::string& method : methods) {
    std::cerr << "  fitting " << method << " ..." << std::endl;
    sweeps.push_back(eval::RunSweep(hin, method, config));
  }
  std::vector<std::string> headers = {"Percentage"};
  for (const std::string& m : methods) headers.push_back(m);
  if (!paper_tmark.empty()) headers.push_back("[paper T-Mark]");
  eval::TablePrinter table(headers);
  for (std::size_t f = 0; f < config.train_fractions.size(); ++f) {
    std::vector<std::string> row = {
        FormatDouble(config.train_fractions[f], 1)};
    for (const eval::MethodSweep& sweep : sweeps) {
      row.push_back(FormatDouble(sweep.cells[f].mean, 3));
    }
    if (!paper_tmark.empty()) {
      row.push_back(FormatDouble(paper_tmark[f], 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "(" << metric_name << ", mean over " << config.trials
            << " trials; paper column: reported values for T-Mark)\n";
}

/// Scales a node count by TMARK_BENCH_SCALE with a sane floor.
inline std::size_t ScaledNodes(std::size_t base) {
  const double scaled = static_cast<double>(base) * eval::BenchScale();
  return scaled < 60.0 ? 60 : static_cast<std::size_t>(scaled);
}

}  // namespace tmark::bench

#endif  // TMARK_BENCH_COMMON_H_
