// End-to-end cost of T-Mark, validating the O(q T D) analysis of Sec. 4.5
// and the ablation of the design choices called out in DESIGN.md:
//   * runtime scales linearly in nodes (D ~ n for fixed density),
//   * linearly in the number of classes q,
//   * the ICA update (T-Mark) costs little over TensorRrCc.

#include <benchmark/benchmark.h>

#include "bench/common.h"

#include "tmark/core/tensor_rrcc.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/synthetic_hin.h"
#include "tmark/eval/experiment.h"

namespace {

using namespace tmark;

hin::Hin MakeHin(std::size_t n, std::size_t q, std::uint64_t seed) {
  datasets::SyntheticHinConfig config;
  config.num_nodes = n;
  for (std::size_t c = 0; c < q; ++c) {
    config.class_names.push_back("C" + std::to_string(c));
  }
  config.vocab_size = 40 * q;
  config.words_per_node = 15.0;
  config.feature_signal = 0.75;
  config.seed = seed;
  for (int k = 0; k < 4; ++k) {
    datasets::RelationSpec spec;
    spec.name = "r" + std::to_string(k);
    spec.same_class_prob = 0.8;
    spec.edges_per_member = 3.0;
    config.relations.push_back(spec);
  }
  return datasets::GenerateSyntheticHin(config);
}

std::vector<std::size_t> ThirdLabeled(const hin::Hin& hin) {
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 3) labeled.push_back(i);
  return labeled;
}

void BM_TMarkFit_Nodes(benchmark::State& state) {
  const hin::Hin hin =
      MakeHin(static_cast<std::size_t>(state.range(0)), 3, 51);
  const auto labeled = ThirdLabeled(hin);
  for (auto _ : state) {
    core::TMarkClassifier clf;
    clf.Fit(hin, labeled);
    benchmark::DoNotOptimize(clf.Confidences());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(hin.NumLinks()));
}
BENCHMARK(BM_TMarkFit_Nodes)->Arg(250)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_TMarkFit_Classes(benchmark::State& state) {
  const hin::Hin hin =
      MakeHin(600, static_cast<std::size_t>(state.range(0)), 53);
  const auto labeled = ThirdLabeled(hin);
  for (auto _ : state) {
    core::TMarkClassifier clf;
    clf.Fit(hin, labeled);
    benchmark::DoNotOptimize(clf.Confidences());
  }
}
BENCHMARK(BM_TMarkFit_Classes)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_TensorRrCcFit(benchmark::State& state) {
  // Ablation: T-Mark without the ICA update (the ICDM'17 predecessor).
  const hin::Hin hin =
      MakeHin(static_cast<std::size_t>(state.range(0)), 3, 51);
  const auto labeled = ThirdLabeled(hin);
  for (auto _ : state) {
    core::TensorRrCcClassifier clf;
    clf.Fit(hin, labeled);
    benchmark::DoNotOptimize(clf.Confidences());
  }
}
BENCHMARK(BM_TensorRrCcFit)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_StratifiedSplit(benchmark::State& state) {
  const hin::Hin hin = MakeHin(2000, 4, 55);
  Rng rng(57);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::StratifiedSplit(hin, 0.3, &rng));
  }
}
BENCHMARK(BM_StratifiedSplit);

}  // namespace

TMARK_BENCH_MAIN();
