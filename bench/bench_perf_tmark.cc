// End-to-end cost of T-Mark, validating the O(q T D) analysis of Sec. 4.5
// and the ablation of the design choices called out in DESIGN.md:
//   * runtime scales linearly in nodes (D ~ n for fixed density),
//   * linearly in the number of classes q,
//   * the ICA update (T-Mark) costs little over TensorRrCc,
//   * the batched panel engine is at least as fast per iteration as the
//     per-class engine (docs/PERFORMANCE.md; gated by
//     scripts/check_fit_engine.py).
//
// Besides the google-benchmark timings, main() always runs the fit-engine
// comparison on the DBLP synthetic preset and records it as the
// "fit-engine comparison" table of the TMARK_BENCH_JSON dump — run with
// --benchmark_filter=^$ to get just that section.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <vector>

#include "bench/common.h"

#include "tmark/common/string_util.h"
#include "tmark/core/prepared_operators.h"
#include "tmark/core/tensor_rrcc.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/presets.h"
#include "tmark/datasets/synthetic_hin.h"
#include "tmark/eval/experiment.h"

namespace {

using namespace tmark;

hin::Hin MakeHin(std::size_t n, std::size_t q, std::uint64_t seed) {
  datasets::SyntheticHinConfig config;
  config.num_nodes = n;
  for (std::size_t c = 0; c < q; ++c) {
    config.class_names.push_back("C" + std::to_string(c));
  }
  config.vocab_size = 40 * q;
  config.words_per_node = 15.0;
  config.feature_signal = 0.75;
  config.seed = seed;
  for (int k = 0; k < 4; ++k) {
    datasets::RelationSpec spec;
    spec.name = "r" + std::to_string(k);
    spec.same_class_prob = 0.8;
    spec.edges_per_member = 3.0;
    config.relations.push_back(spec);
  }
  return datasets::GenerateSyntheticHin(config);
}

std::vector<std::size_t> ThirdLabeled(const hin::Hin& hin) {
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 3) labeled.push_back(i);
  return labeled;
}

void BM_TMarkFit_Nodes(benchmark::State& state) {
  const hin::Hin hin =
      MakeHin(static_cast<std::size_t>(state.range(0)), 3, 51);
  const auto labeled = ThirdLabeled(hin);
  for (auto _ : state) {
    core::TMarkClassifier clf;
    clf.Fit(hin, labeled);
    benchmark::DoNotOptimize(clf.Confidences());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(hin.NumLinks()));
}
BENCHMARK(BM_TMarkFit_Nodes)->Arg(250)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_TMarkFit_Classes(benchmark::State& state) {
  const hin::Hin hin =
      MakeHin(600, static_cast<std::size_t>(state.range(0)), 53);
  const auto labeled = ThirdLabeled(hin);
  for (auto _ : state) {
    core::TMarkClassifier clf;
    clf.Fit(hin, labeled);
    benchmark::DoNotOptimize(clf.Confidences());
  }
}
BENCHMARK(BM_TMarkFit_Classes)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_TensorRrCcFit(benchmark::State& state) {
  // Ablation: T-Mark without the ICA update (the ICDM'17 predecessor).
  const hin::Hin hin =
      MakeHin(static_cast<std::size_t>(state.range(0)), 3, 51);
  const auto labeled = ThirdLabeled(hin);
  for (auto _ : state) {
    core::TensorRrCcClassifier clf;
    clf.Fit(hin, labeled);
    benchmark::DoNotOptimize(clf.Confidences());
  }
}
BENCHMARK(BM_TensorRrCcFit)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_StratifiedSplit(benchmark::State& state) {
  const hin::Hin hin = MakeHin(2000, 4, 55);
  Rng rng(57);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::StratifiedSplit(hin, 0.3, &rng));
  }
}
BENCHMARK(BM_StratifiedSplit);

// Per-engine fit timing on the DBLP synthetic preset with prebuilt
// operators, so the iteration loop (not the O/R/W build) is what is timed.
void BM_TMarkFit_Engine(benchmark::State& state) {
  const auto hin_result = datasets::MakePreset("dblp", {});
  const hin::Hin& hin = *hin_result;
  const auto labeled = ThirdLabeled(hin);
  core::TMarkConfig config;
  config.fit_mode = state.range(0) == 0 ? core::FitMode::kPerClass
                                        : core::FitMode::kBatched;
  const core::PreparedOperators ops =
      core::PreparedOperators::Build(hin, config.similarity);
  for (auto _ : state) {
    core::TMarkClassifier clf(config);
    clf.Fit(hin, ops, labeled);
    benchmark::DoNotOptimize(clf.Confidences());
  }
  state.SetLabel(state.range(0) == 0 ? "per_class" : "batched");
}
BENCHMARK(BM_TMarkFit_Engine)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// The batched-vs-per-class comparison section: one warm-up then
/// TMARK_BENCH_REPEATS (>= 3) timed fits per engine on the DBLP synthetic
/// preset, recorded as a table in the TMARK_BENCH_JSON dump. Both engines
/// produce bit-identical traces, so the total column-iteration count is the
/// same and ms_per_iter is directly comparable.
void RunFitEngineComparison() {
  datasets::PresetOptions options;
  const hin::Hin hin = *datasets::MakePreset("dblp", options);
  const auto labeled = ThirdLabeled(hin);
  const core::PreparedOperators ops =
      core::PreparedOperators::Build(hin, hin::SimilarityKernel::kCosine);

  std::vector<std::string> headers = {"engine",    "threads",
                                      "fit_ms_min", "fit_ms_median",
                                      "iterations", "ms_per_iter"};
  eval::TablePrinter table(headers);
  std::vector<std::vector<std::string>> rows;
  for (const core::FitMode mode :
       {core::FitMode::kPerClass, core::FitMode::kBatched}) {
    core::TMarkConfig config;
    config.fit_mode = mode;
    core::TMarkClassifier clf(config);
    clf.Fit(hin, ops, labeled);  // warm-up, also yields the trace lengths
    std::size_t iterations = 0;
    for (const core::ConvergenceTrace& trace : clf.Traces()) {
      iterations += trace.residuals.size();
    }
    const int repeats = std::max(3, bench::BenchTimer::Repeats());
    std::vector<double> runs;
    runs.reserve(static_cast<std::size_t>(repeats));
    for (int r = 0; r < repeats; ++r) {
      obs::Stopwatch watch;
      core::TMarkClassifier timed(config);
      timed.Fit(hin, ops, labeled);
      runs.push_back(watch.ElapsedMs());
      benchmark::DoNotOptimize(timed.Confidences());
    }
    std::sort(runs.begin(), runs.end());
    const std::size_t mid = runs.size() / 2;
    const double median = runs.size() % 2 == 1
                              ? runs[mid]
                              : 0.5 * (runs[mid - 1] + runs[mid]);
    std::vector<std::string> row = {
        core::ToString(mode),
        std::to_string(parallel::NumThreads()),
        FormatDouble(runs.front(), 3),
        FormatDouble(median, 3),
        std::to_string(iterations),
        FormatDouble(runs.front() / static_cast<double>(iterations), 5)};
    rows.push_back(row);
    table.AddRow(std::move(row));
  }
  std::cout << "fit-engine comparison (dblp synthetic preset, " << hin.num_nodes()
            << " nodes, prebuilt operators, min over "
            << std::max(3, bench::BenchTimer::Repeats()) << " runs)\n";
  table.Print(std::cout);
  if (bench::BenchObsSession* session = bench::BenchObsSession::active()) {
    session->RecordTable(
        {"fit-engine comparison", std::move(headers), std::move(rows)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  tmark::bench::BenchObsSession obs_session(argv[0]);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  RunFitEngineComparison();
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
