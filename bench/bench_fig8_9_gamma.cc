// Figs. 8-9: T-Mark accuracy as the scale parameter gamma sweeps 0 .. 1 on
// DBLP (Fig. 8) and NUS (Fig. 9). gamma = 0 uses only relational
// information, gamma = 1 only features. Paper shape: on DBLP the mix beats
// both extremes (best near 0.6, features-only worst); on NUS the curve is
// flat up to ~0.4 and then degrades as the weak features take over.

#include <iostream>

#include "bench/common.h"
#include "tmark/core/prepared_operators.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/dblp.h"
#include "tmark/datasets/nus.h"
#include "tmark/eval/table_printer.h"

namespace {

using namespace tmark;

std::vector<double> SweepGamma(const hin::Hin& hin, double alpha,
                               const std::vector<double>& gammas,
                               int trials) {
  std::vector<double> out;
  // Gamma only reweights the walks; the O/R/W operators are shared across
  // the whole sweep through one prepared build.
  core::OperatorCache operator_cache;
  Rng master(37);
  for (double gamma : gammas) {
    double acc = 0.0;
    Rng rng = master.Fork();
    for (int t = 0; t < trials; ++t) {
      const auto labeled = eval::StratifiedSplit(hin, 0.3, &rng);
      core::TMarkConfig config;
      config.alpha = alpha;
      config.gamma = gamma;
      core::TMarkClassifier clf(config);
      clf.SetPreparedOperators(
          operator_cache.GetOrBuild(hin, config.similarity));
      acc += eval::EvaluateClassifier(hin, &clf, labeled, false, 0.5);
    }
    out.push_back(acc / trials);
  }
  return out;
}

}  // namespace

int main() {
  tmark::bench::BenchObsSession obs_session("bench_fig8_9_gamma");
  const std::vector<double> gammas = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                                      0.6, 0.7, 0.8, 0.9, 1.0};
  const int trials = eval::BenchTrials(3);

  datasets::DblpOptions dblp_options;
  dblp_options.num_authors = bench::ScaledNodes(400);
  const hin::Hin dblp = datasets::MakeDblp(dblp_options);
  tmark::obs::LogInfo("bench.sweep", {{"param", "gamma"}, {"dataset", "dblp"}});
  std::vector<double> dblp_acc;
  const bench::BenchTimer::Timing dblp_time = bench::BenchTimer::Time(
      [&] { dblp_acc = SweepGamma(dblp, 0.8, gammas, trials); });

  datasets::NusOptions nus_options;
  nus_options.num_images = bench::ScaledNodes(600);
  const hin::Hin nus = datasets::MakeNus(nus_options);
  tmark::obs::LogInfo("bench.sweep", {{"param", "gamma"}, {"dataset", "nus"}});
  std::vector<double> nus_acc;
  const bench::BenchTimer::Timing nus_time = bench::BenchTimer::Time(
      [&] { nus_acc = SweepGamma(nus, 0.9, gammas, trials); });

  std::cout << "== Figs. 8-9: accuracy vs scale parameter gamma ==\n";
  eval::TablePrinter table({"gamma", "DBLP (Fig. 8)", "NUS (Fig. 9)"});
  for (std::size_t i = 0; i < gammas.size(); ++i) {
    table.AddRow({FormatDouble(gammas[i], 1), FormatDouble(dblp_acc[i], 3),
                  FormatDouble(nus_acc[i], 3)});
  }
  table.Print(std::cout);
  std::cout << "(paper: DBLP best around gamma = 0.6, worst at gamma = 1; "
               "NUS flat to ~0.4 then degrades)\n";
  std::printf(
      "sweep wall-clock: dblp min %.1f ms / median %.1f ms, "
      "nus min %.1f ms / median %.1f ms (%d repeats)\n",
      dblp_time.min_ms, dblp_time.median_ms, nus_time.min_ms,
      nus_time.median_ms, dblp_time.repeats);
  if (auto* session = bench::BenchObsSession::active()) {
    session->RecordTable(
        {"sweep wall-clock (ms)",
         {"dataset", "min_ms", "median_ms", "repeats"},
         {{"dblp", FormatDouble(dblp_time.min_ms, 2),
           FormatDouble(dblp_time.median_ms, 2),
           std::to_string(dblp_time.repeats)},
          {"nus", FormatDouble(nus_time.min_ms, 2),
           FormatDouble(nus_time.median_ms, 2),
           std::to_string(nus_time.repeats)}}});
  }
  return 0;
}
