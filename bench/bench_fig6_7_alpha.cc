// Figs. 6-7: T-Mark accuracy as the restart parameter alpha sweeps 0.1 ..
// 0.99, on DBLP (Fig. 6) and NUS (Fig. 7). Paper shape: on DBLP accuracy
// rises then dips past ~0.8 (the chosen default); on NUS it keeps rising
// with diminishing gains past ~0.6 (default 0.9).

#include <iostream>

#include "bench/common.h"
#include "tmark/core/prepared_operators.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/dblp.h"
#include "tmark/datasets/nus.h"
#include "tmark/eval/table_printer.h"

namespace {

using namespace tmark;

std::vector<double> SweepAlpha(const hin::Hin& hin, double gamma,
                               const std::vector<double>& alphas,
                               int trials) {
  std::vector<double> out;
  // Alpha only affects the iteration, not the O/R/W operators: every trial
  // of the sweep shares one prepared build for this HIN.
  core::OperatorCache operator_cache;
  Rng master(31);
  for (double alpha : alphas) {
    double acc = 0.0;
    Rng rng = master.Fork();
    for (int t = 0; t < trials; ++t) {
      const auto labeled = eval::StratifiedSplit(hin, 0.3, &rng);
      core::TMarkConfig config;
      config.alpha = alpha;
      config.gamma = gamma;
      core::TMarkClassifier clf(config);
      clf.SetPreparedOperators(
          operator_cache.GetOrBuild(hin, config.similarity));
      acc += eval::EvaluateClassifier(hin, &clf, labeled, false, 0.5);
    }
    out.push_back(acc / trials);
  }
  return out;
}

}  // namespace

int main() {
  tmark::bench::BenchObsSession obs_session("bench_fig6_7_alpha");
  const std::vector<double> alphas = {0.1, 0.2, 0.3, 0.4, 0.5,
                                      0.6, 0.7, 0.8, 0.9, 0.99};
  const int trials = eval::BenchTrials(3);

  datasets::DblpOptions dblp_options;
  dblp_options.num_authors = bench::ScaledNodes(400);
  const hin::Hin dblp = datasets::MakeDblp(dblp_options);
  tmark::obs::LogInfo("bench.sweep", {{"param", "alpha"}, {"dataset", "dblp"}});
  std::vector<double> dblp_acc;
  const bench::BenchTimer::Timing dblp_time = bench::BenchTimer::Time(
      [&] { dblp_acc = SweepAlpha(dblp, 0.6, alphas, trials); });

  datasets::NusOptions nus_options;
  nus_options.num_images = bench::ScaledNodes(600);
  const hin::Hin nus = datasets::MakeNus(nus_options);
  tmark::obs::LogInfo("bench.sweep", {{"param", "alpha"}, {"dataset", "nus"}});
  std::vector<double> nus_acc;
  const bench::BenchTimer::Timing nus_time = bench::BenchTimer::Time(
      [&] { nus_acc = SweepAlpha(nus, 0.4, alphas, trials); });

  std::cout << "== Figs. 6-7: accuracy vs restart parameter alpha ==\n";
  eval::TablePrinter table({"alpha", "DBLP (Fig. 6)", "NUS (Fig. 7)"});
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    table.AddRow({FormatDouble(alphas[i], 2), FormatDouble(dblp_acc[i], 3),
                  FormatDouble(nus_acc[i], 3)});
  }
  table.Print(std::cout);
  std::cout << "(paper: DBLP peaks near alpha = 0.8; NUS keeps improving "
               "toward alpha = 0.9)\n";
  std::printf(
      "sweep wall-clock: dblp min %.1f ms / median %.1f ms, "
      "nus min %.1f ms / median %.1f ms (%d repeats)\n",
      dblp_time.min_ms, dblp_time.median_ms, nus_time.min_ms,
      nus_time.median_ms, dblp_time.repeats);
  if (auto* session = bench::BenchObsSession::active()) {
    session->RecordTable(
        {"sweep wall-clock (ms)",
         {"dataset", "min_ms", "median_ms", "repeats"},
         {{"dblp", FormatDouble(dblp_time.min_ms, 2),
           FormatDouble(dblp_time.median_ms, 2),
           std::to_string(dblp_time.repeats)},
          {"nus", FormatDouble(nus_time.min_ms, 2),
           FormatDouble(nus_time.median_ms, 2),
           std::to_string(nus_time.repeats)}}});
  }
  return 0;
}
