// Table 2: top-5 conferences of each research area, ranked by the
// stationary link-importance distribution z of T-Mark. The paper's shape:
// each area's own conferences fill the top of its column, with the
// characteristic cross-area entries (CIKM into DB's top-5, ICDE into DM's,
// SIGIR into AI's, IJCAI into IR's) and CVPR / WSDM ranking low in their
// home areas.

#include <iostream>

#include "bench/common.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/dblp.h"
#include "tmark/eval/table_printer.h"

int main() {
  tmark::bench::BenchObsSession obs_session("bench_table2_dblp_ranking");
  using namespace tmark;
  datasets::DblpOptions options;
  options.num_authors = bench::ScaledNodes(600);
  const hin::Hin hin = datasets::MakeDblp(options);
  std::cout << "== Table 2: top-5 conferences per research area (T-Mark "
               "link ranking) ==\n";

  Rng rng(21);
  const auto labeled = eval::StratifiedSplit(hin, 0.3, &rng);
  core::TMarkClassifier clf;
  clf.Fit(hin, labeled);

  const std::size_t kTop = 5;
  std::vector<std::string> headers;
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    headers.push_back(hin.class_name(c));
  }
  eval::TablePrinter table(headers);
  std::vector<std::vector<std::size_t>> rankings;
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    rankings.push_back(clf.RankRelationsForClass(c));
  }
  for (std::size_t r = 0; r < kTop; ++r) {
    std::vector<std::string> row;
    for (std::size_t c = 0; c < hin.num_classes(); ++c) {
      row.push_back(hin.relation_name(rankings[c][r]));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  // The paper also reports where the stragglers land: PODS rank 6 in DB,
  // PKDD 6 in DM, CVPR 11 in AI, WSDM 19 in IR.
  auto rank_of = [&](std::size_t area, const std::string& name) {
    for (std::size_t r = 0; r < rankings[area].size(); ++r) {
      if (hin.relation_name(rankings[area][r]) == name) return r + 1;
    }
    return std::size_t{0};
  };
  std::cout << "\nstraggler ranks (paper: PODS 6 in DB, PKDD 6 in DM, CVPR "
               "11 in AI, WSDM 19 in IR):\n";
  std::cout << "  PODS in DB: " << rank_of(0, "PODS")
            << "   PKDD in DM: " << rank_of(1, "PKDD")
            << "   CVPR in AI: " << rank_of(2, "CVPR")
            << "   WSDM in IR: " << rank_of(3, "WSDM") << "\n";
  return 0;
}
