// Sec. 6.3 link-selection analysis on NUS: Tables 6-10.
//   Table 6/7: the two 41-tag link sets (relevance-ranked vs frequency-
//              ranked);
//   Table 8:   T-Mark accuracy on both HINs across labeled fractions —
//              Tagset1 reaches ~0.95 with only 10% labels while Tagset2
//              saturates below ~0.7;
//   Table 9/10: top-12 tags per class from the stationary z — distinct and
//              semantically aligned for Tagset1, nearly identical across
//              classes for Tagset2.

#include <iostream>

#include "bench/common.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/nus.h"
#include "tmark/eval/table_printer.h"

namespace {

using namespace tmark;

void PrintTagList(const char* title, const std::vector<std::string>& tags) {
  std::cout << title << "\n  ";
  for (std::size_t i = 0; i < tags.size(); ++i) {
    std::cout << tags[i] << (i + 1 == tags.size() ? "\n" : ", ");
    if ((i + 1) % 8 == 0 && i + 1 < tags.size()) std::cout << "\n  ";
  }
}

void PrintTop12PerClass(const char* title, const hin::Hin& hin,
                        const core::TMarkClassifier& clf) {
  std::cout << title << "\n";
  eval::TablePrinter table({"Class", "top-12 tags"});
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    const auto ranking = clf.RankRelationsForClass(c);
    std::string tags;
    for (std::size_t r = 0; r < 12; ++r) {
      if (r > 0) tags += ", ";
      tags += hin.relation_name(ranking[r]);
    }
    table.AddRow({hin.class_name(c), tags});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  tmark::bench::BenchObsSession obs_session("bench_table8_nus_tagsets");
  datasets::NusOptions options;
  options.num_images = bench::ScaledNodes(900);

  PrintTagList("== Table 6: Tagset1 (relevance-selected tags) ==",
               datasets::NusTagNames(datasets::NusTagset::kTagset1));
  std::cout << "\n";
  PrintTagList("== Table 7: Tagset2 (frequency-selected tags) ==",
               datasets::NusTagNames(datasets::NusTagset::kTagset2));
  std::cout << "\n";

  const hin::Hin hin1 = datasets::MakeNus(options);
  options.tagset = datasets::NusTagset::kTagset2;
  const hin::Hin hin2 = datasets::MakeNus(options);

  // Table 8: T-Mark accuracy on both HINs.
  eval::SweepConfig config;
  config.train_fractions = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
  config.trials = eval::BenchTrials(3);
  config.alpha = 0.9;  // Fig. 7: NUS default
  config.gamma = 0.4;  // Fig. 9: NUS default
  config.lambda = 0.95;  // weak tags: accept only near-certain nodes
  tmark::obs::LogInfo("bench.sweep", {{"dataset", "nus-tagset1"}});
  const eval::MethodSweep s1 = eval::RunSweep(hin1, "T-Mark", config);
  tmark::obs::LogInfo("bench.sweep", {{"dataset", "nus-tagset2"}});
  const eval::MethodSweep s2 = eval::RunSweep(hin2, "T-Mark", config);

  std::cout << "== Table 8: T-Mark accuracy, Tagset1 vs Tagset2 (n = "
            << hin1.num_nodes() << ") ==\n";
  eval::TablePrinter table(
      {"Percentage", "Tagset1", "Tagset2", "[paper T1]", "[paper T2]"});
  const std::vector<double> paper1 = {0.955, 0.954, 0.958, 0.956, 0.959,
                                      0.959, 0.960, 0.959, 0.961};
  const std::vector<double> paper2 = {0.664, 0.672, 0.683, 0.684, 0.682,
                                      0.692, 0.688, 0.686, 0.692};
  for (std::size_t f = 0; f < config.train_fractions.size(); ++f) {
    table.AddRow({FormatDouble(config.train_fractions[f], 1),
                  FormatDouble(s1.cells[f].mean, 3),
                  FormatDouble(s2.cells[f].mean, 3),
                  FormatDouble(paper1[f], 3), FormatDouble(paper2[f], 3)});
  }
  table.Print(std::cout);
  std::cout << "\n";

  // Tables 9/10: top-12 tags per class under each tag set.
  Rng rng(23);
  core::TMarkConfig tconfig;
  tconfig.alpha = 0.9;
  tconfig.gamma = 0.4;
  core::TMarkClassifier clf1(tconfig), clf2(tconfig);
  clf1.Fit(hin1, eval::StratifiedSplit(hin1, 0.3, &rng));
  clf2.Fit(hin2, eval::StratifiedSplit(hin2, 0.3, &rng));
  PrintTop12PerClass(
      "== Table 9: top-12 Tagset1 tags per class (distinct, semantic) ==",
      hin1, clf1);
  std::cout << "\n";
  PrintTop12PerClass(
      "== Table 10: top-12 Tagset2 tags per class (nearly identical) ==",
      hin2, clf2);
  return 0;
}
