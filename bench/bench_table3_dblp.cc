// Table 3: node classification accuracy on DBLP for 9 methods as the
// labeled fraction sweeps 10%..90%. Expected shape (per the paper): T-Mark
// and TensorRrCc lead at every fraction; GI collapses at low label rates;
// HN (content-only) trails the collective methods; ICA/wvRN+RL degrade
// hardest below 20% labels.

#include <iostream>

#include "bench/common.h"
#include "tmark/baselines/registry.h"
#include "tmark/datasets/dblp.h"

int main() {
  tmark::bench::BenchObsSession obs_session("bench_table3_dblp");
  using namespace tmark;
  datasets::DblpOptions options;
  options.num_authors = bench::ScaledNodes(500);
  const hin::Hin hin = datasets::MakeDblp(options);
  std::cout << "== Table 3: accuracy on DBLP (synthetic, n = "
            << hin.num_nodes() << ", m = " << hin.num_relations()
            << ") ==\n";

  eval::SweepConfig config;
  config.trials = eval::BenchTrials(3);
  config.alpha = 0.8;  // Fig. 6: the DBLP default
  config.gamma = 0.6;  // Fig. 8: the DBLP default
  // Paper Table 3, T-Mark column.
  const std::vector<double> paper = {0.928, 0.933, 0.935, 0.935, 0.939,
                                     0.939, 0.940, 0.940, 0.940};
  bench::PrintSweepTable(hin, baselines::PaperMethodNames(), config, paper,
                         "accuracy");
  return 0;
}
