// Incremental-update bench (docs/PERFORMANCE.md "Incremental updates"):
// end-to-end latency of TMarkClassifier::Update — operator patch + warm-
// started refresh — against the from-scratch alternative (full operator
// rebuild + cold fit on the mutated network), for mixed edge/feature/label
// deltas of growing size on the DBLP preset and the constant-degree
// synthetic scaling family.
//
// One table goes into the TMARK_BENCH_JSON dump (and stdout):
//   * "update latency" — per (dataset, delta kind, delta size) patched and
//     rebuilt wall time (min over TMARK_BENCH_REPEATS), their ratio, and
//     both paths' iteration counts. Three delta kinds:
//       - "labels": an annotation wave — new (node, class) labels recorded
//         on nodes outside the training set. The operators are untouched
//         (labels never enter O/R/W) and the restart vectors are unchanged,
//         so Update proves the fixed point stands with one fingerprint and
//         a refresh whose classes all retire immediately; the rebuild path
//         recomputes everything to discover the same thing.
//       - "labels_train": the wave also joins the training set, so every
//         class's restart vector renormalizes — the warm refresh pays most
//         of the cold contraction distance and the win comes from skipping
//         the operator rebuild.
//       - "mixed": edge removes/reweights/adds plus feature-row updates —
//         the operators are patched in place and the warm refresh starts at
//         the perturbation distance.
//     Both paths run ica_update=false so they share one unique fixed point
//     (Theorem 3) and the iteration counts are comparable;
//     scripts/check_update_bench.py gates the "labels" kind at >= 5x /
//     slack for the 0.1% row and every kind at patch_ms <= rebuild_ms *
//     slack up to 1%.
//
// Knobs: TMARK_UPDATE_NODES (synthetic node count, default 100000) and the
// usual TMARK_BENCH_REPEATS / TMARK_BENCH_WARMUP. The ctest gate runs a
// reduced node count; the committed docs/bench/perf_updates.json uses the
// default.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "bench/common.h"

#include "tmark/common/check.h"
#include "tmark/common/random.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/dblp.h"
#include "tmark/datasets/synthetic_hin.h"
#include "tmark/hin/hin_delta.h"
#include "tmark/la/sparse_matrix.h"

namespace {

using namespace tmark;

std::size_t EnvNodes() {
  const char* env = std::getenv("TMARK_UPDATE_NODES");
  if (env == nullptr || *env == '\0') return 100'000;
  const unsigned long long v = std::strtoull(env, nullptr, 10);
  return v == 0 ? 100'000 : static_cast<std::size_t>(v);
}

std::vector<std::size_t> LabeledThirds(const hin::Hin& hin) {
  std::vector<std::size_t> labeled;
  for (std::size_t i = 0; i < hin.num_nodes(); i += 3) {
    if (!hin.labels(i).empty()) labeled.push_back(i);
  }
  return labeled;
}

// A wave of `ops_target` label adds: (node, class) pairs the node does not
// already carry, drawn uniformly from nodes outside the current training
// set. With `join_train` the wave's nodes are also appended to `labeled`
// (they just joined the training set); without it the wave is annotation
// only. Deterministic given the seed.
hin::HinDelta MakeLabelDelta(const hin::Hin& hin, std::size_t ops_target,
                             std::uint64_t seed,
                             const std::set<std::size_t>& in_train,
                             bool join_train,
                             std::vector<std::size_t>* labeled) {
  hin::HinDelta delta;
  Rng rng(seed);
  std::set<std::size_t> used;
  const std::size_t n = hin.num_nodes();
  for (std::size_t guard = 0;
       delta.size() < ops_target && guard < ops_target * 64 + 4096; ++guard) {
    const std::size_t node = rng.UniformInt(n);
    const std::size_t cls = rng.UniformInt(hin.num_classes());
    if (in_train.count(node) != 0 || hin.HasLabel(node, cls)) continue;
    if (!used.insert(node).second) continue;
    delta.AddLabel(node, cls);
    if (join_train) labeled->push_back(node);
  }
  return delta;
}

// A mixed batch of `ops_target` edge mutations — removes, reweights, and
// adds in rotation, on uniformly drawn relations/entries — plus (for batches
// of >= 8 ops) a couple of feature-row rewrites and a label add, so every
// patch path is exercised. Deterministic given the seed.
hin::HinDelta MakeDelta(const hin::Hin& hin, std::size_t ops_target,
                        std::uint64_t seed) {
  hin::HinDelta delta;
  Rng rng(seed);
  std::set<std::tuple<std::size_t, std::size_t, std::size_t>> used;
  const std::size_t n = hin.num_nodes();
  std::size_t made = 0;
  std::size_t kind = 0;
  // The rejection loop re-draws on duplicates / absent entries; the guard
  // bounds it on degenerate inputs.
  for (std::size_t guard = 0; made < ops_target && guard < ops_target * 64 + 4096;
       ++guard) {
    const std::size_t k = rng.UniformInt(hin.num_relations());
    const la::SparseMatrix& rel = hin.relation(k);
    if (kind == 2) {  // add an absent edge
      const std::size_t i = rng.UniformInt(n);
      const std::size_t j = rng.UniformInt(n);
      if (i == j || rel.FindEntry(i, j) != la::SparseMatrix::npos) continue;
      if (!used.emplace(k, i, j).second) continue;
      delta.AddEdge(k, /*src=*/j, /*dst=*/i, 0.5 + rng.Uniform());
    } else {  // remove / reweight a stored edge
      const std::size_t nnz = rel.NumNonZeros();
      if (nnz == 0) continue;
      const std::size_t p = rng.UniformInt(nnz);
      std::size_t lo = 0, hi = rel.rows();  // row containing entry p
      while (lo + 1 < hi) {
        const std::size_t mid = (lo + hi) / 2;
        (rel.row_ptr()[mid] <= p ? lo : hi) = mid;
      }
      const std::size_t i = lo;
      const std::size_t j = rel.col_idx()[p];
      if (!used.emplace(k, i, j).second) continue;
      if (kind == 0) {
        delta.RemoveEdge(k, /*src=*/j, /*dst=*/i);
      } else {
        delta.ReweightEdge(k, /*src=*/j, /*dst=*/i, 0.5 + rng.Uniform());
      }
    }
    ++made;
    kind = (kind + 1) % 3;
  }
  if (ops_target >= 8) {
    for (std::size_t r = 0; r < 2; ++r) {
      const std::size_t node = rng.UniformInt(n);
      const std::size_t dim = rng.UniformInt(hin.feature_dim());
      delta.UpdateFeatureRow(node, {{dim, 1.0 + rng.Uniform()}});
    }
    for (std::size_t tries = 0; tries < 64; ++tries) {
      const std::size_t node = rng.UniformInt(n);
      const std::size_t cls = rng.UniformInt(hin.num_classes());
      if (hin.HasLabel(node, cls)) continue;
      delta.AddLabel(node, cls);
      break;
    }
  }
  return delta;
}

std::size_t TotalIterations(const core::TMarkClassifier& clf) {
  std::size_t iterations = 0;
  for (const core::ConvergenceTrace& t : clf.Traces()) {
    iterations += t.residuals.size();
  }
  return iterations;
}

void RunUpdateStudy() {
  struct Dataset {
    std::string name;
    hin::Hin hin;
  };
  std::vector<Dataset> datasets;
  datasets.push_back({"dblp", datasets::MakeDblp()});
  const std::size_t n = EnvNodes();
  datasets.push_back(
      {"synthetic:" + std::to_string(n),
       datasets::GenerateSyntheticHin(datasets::ScalingSyntheticConfig(
           n, /*seed=*/7))});

  core::TMarkConfig config;
  config.ica_update = false;  // unique fixed point: warm == cold (Theorem 3)

  const std::vector<std::string> headers = {
      "dataset",    "delta_kind", "n",          "edges",
      "delta_ops",  "delta_pct",  "patch_ms",   "rebuild_ms",
      "speedup",    "patch_iters", "rebuild_iters"};
  std::vector<std::vector<std::string>> rows;

  const int repeats = std::max(1, bench::BenchTimer::Repeats());
  for (Dataset& d : datasets) {
    const std::size_t edges = d.hin.NumLinks();
    const std::vector<std::size_t> base_labeled = LabeledThirds(d.hin);
    TMARK_CHECK(!base_labeled.empty());
    const std::set<std::size_t> in_train(base_labeled.begin(),
                                         base_labeled.end());

    // Base state shared by every delta: one cold fit, reused via copies so
    // each repeat starts from identical prior state.
    core::TMarkClassifier base_clf(config);
    base_clf.Fit(d.hin, base_labeled);

    for (const std::string kind : {"labels", "labels_train", "mixed"}) {
      for (const double pct : {0.01, 0.1, 1.0}) {
        std::size_t ops_target =
            static_cast<std::size_t>(static_cast<double>(edges) * pct /
                                     100.0);
        if (ops_target == 0) ops_target = 1;
        std::vector<std::size_t> labeled = base_labeled;
        const hin::HinDelta delta =
            kind == "mixed"
                ? MakeDelta(d.hin, ops_target, /*seed=*/17)
                : MakeLabelDelta(d.hin, ops_target, /*seed=*/41, in_train,
                                 /*join_train=*/kind == "labels_train",
                                 &labeled);
        if (delta.empty()) {
          std::cout << "skipping " << d.name << " " << kind << " " << pct
                    << "%: no eligible operations\n";
          continue;
        }

        // Patched path: Update end to end (delta application, operator
        // patch or reuse, warm refresh). The per-repeat copies of the
        // network and the fitted classifier are setup, outside the timed
        // region.
        double patch_ms = -1.0;
        std::size_t patch_iters = 0;
        for (int r = 0; r < repeats; ++r) {
          hin::Hin hin_copy = d.hin;
          core::TMarkClassifier clf = base_clf;
          obs::Stopwatch watch;
          const Status status = clf.Update(&hin_copy, delta, labeled);
          const double ms = watch.ElapsedMs();
          TMARK_CHECK_MSG(status.ok(), status.ToString().c_str());
          if (patch_ms < 0.0 || ms < patch_ms) patch_ms = ms;
          patch_iters = TotalIterations(clf);
          benchmark::DoNotOptimize(clf.Confidences());
        }

        // Rebuild path: the mutation is applied untimed (it is shared with
        // the patched path and negligible); the timed region is the full
        // operator rebuild + cold fit it forces.
        hin::Hin mutated = d.hin;
        TMARK_CHECK(mutated.ApplyDelta(delta).ok());
        double rebuild_ms = -1.0;
        std::size_t rebuild_iters = 0;
        for (int r = 0; r < repeats; ++r) {
          obs::Stopwatch watch;
          core::TMarkClassifier cold(config);
          cold.Fit(mutated, labeled);
          const double ms = watch.ElapsedMs();
          if (rebuild_ms < 0.0 || ms < rebuild_ms) rebuild_ms = ms;
          rebuild_iters = TotalIterations(cold);
          benchmark::DoNotOptimize(cold.Confidences());
        }

        rows.push_back({d.name, kind, std::to_string(d.hin.num_nodes()),
                        std::to_string(edges), std::to_string(delta.size()),
                        FormatDouble(pct, 2), FormatDouble(patch_ms, 3),
                        FormatDouble(rebuild_ms, 3),
                        FormatDouble(rebuild_ms / patch_ms, 2),
                        std::to_string(patch_iters),
                        std::to_string(rebuild_iters)});
      }
    }
  }

  std::cout << "update latency\n";
  eval::TablePrinter printer(headers);
  for (const std::vector<std::string>& row : rows) {
    printer.AddRow(std::vector<std::string>(row));
  }
  printer.Print(std::cout);
  std::cout << "(min over " << repeats
            << " repeats; patch = operator patch + warm refresh, rebuild = "
               "full operator rebuild + cold fit)\n";
  if (bench::BenchObsSession* session = bench::BenchObsSession::active()) {
    session->RecordTable({"update latency", headers, rows});
  }
}

}  // namespace

int main(int argc, char** argv) {
  tmark::bench::BenchObsSession obs_session(argv[0]);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  RunUpdateStudy();
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
