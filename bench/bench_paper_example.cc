// Reproduces the worked example of Sec. 3.2 / 4.3: the 4-publication
// bibliography HIN, its matricizations A_(1) (4 x 12) and A_(3) (3 x 16),
// the transition tensors O and R (Figs. 3-4), the cosine transition matrix
// W, and the stationary distributions the paper reports:
//
//   [x^DM, x^CV] ~ [[0.90, 0], [0, 0.90], [0, 0.10], [0.10, 0]]
//   [z^DM, z^CV] ~ [[0.33, 0.33], [0.30, 0.37], [0.37, 0.30]]

#include <cstdio>

#include "bench/common.h"

#include "tmark/core/tmark.h"
#include "tmark/datasets/paper_example.h"
#include "tmark/hin/feature_similarity.h"
#include "tmark/tensor/matricization.h"
#include "tmark/tensor/transition_tensors.h"

namespace {

void PrintDense(const char* title, const tmark::la::DenseMatrix& m) {
  std::printf("%s (%zu x %zu):\n", title, m.rows(), m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      std::printf(" %5.2f", m.At(r, c));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  tmark::bench::BenchObsSession obs_session("bench_paper_example");
  using namespace tmark;
  const hin::Hin hin = datasets::MakePaperExample();
  const tensor::SparseTensor3 a = hin.ToAdjacencyTensor();

  std::printf("== Worked example (Sec. 3.2 / 4.3) ==\n");
  std::printf("4 publications, 3 relations (%s / %s / %s), %zu tensor "
              "entries\n\n",
              hin.relation_name(0).c_str(), hin.relation_name(1).c_str(),
              hin.relation_name(2).c_str(), a.NumNonZeros());

  PrintDense("A_(1) mode-1 matricization",
             tensor::MatricizeMode1(a).ToDense());
  std::printf("\n");
  PrintDense("A_(3) mode-3 matricization",
             tensor::MatricizeMode3(a).ToDense());
  std::printf("\n");

  const tensor::TransitionTensors t = tensor::TransitionTensors::Build(a);
  for (std::size_t k = 0; k < 3; ++k) {
    char title[64];
    std::snprintf(title, sizeof(title), "O(:,:,%zu)  [%s]", k,
                  hin.relation_name(k).c_str());
    PrintDense(title, t.DenseOSlice(k));
  }
  std::printf("\n");
  for (std::size_t k = 0; k < 3; ++k) {
    char title[64];
    std::snprintf(title, sizeof(title), "R(:,:,%zu)  [%s]", k,
                  hin.relation_name(k).c_str());
    PrintDense(title, t.DenseRSlice(k));
  }
  std::printf("\n");

  PrintDense("W (column-normalized cosine similarities, Sec. 4.3)",
             hin::FeatureSimilarity::Build(hin.features()).Dense());
  std::printf("\n");

  core::TMarkClassifier clf;
  clf.Fit(hin, datasets::PaperExampleLabeledNodes());
  PrintDense("stationary [x^DM, x^CV]  (paper: ~[[0.90,0],[0,0.90],"
             "[0,0.10],[0.10,0]])",
             clf.Confidences());
  std::printf("\n");
  PrintDense("stationary [z^DM, z^CV]  (paper: ~[[0.33,0.33],[0.30,0.37],"
             "[0.37,0.30]])",
             clf.LinkImportance());

  const std::vector<std::size_t> pred = clf.PredictSingleLabel();
  std::printf("\npredictions: p3 -> %s (truth CV), p4 -> %s (truth DM)\n",
              hin.class_name(pred[2]).c_str(),
              hin.class_name(pred[3]).c_str());
  return 0;
}
