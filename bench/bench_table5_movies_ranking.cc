// Table 5: top-10 directors of each movie genre, ranked by the stationary
// link-importance distribution z of T-Mark (each director is one link
// type). Paper shape: named prolific directors dominate their home genres
// (Reitman tops Documentary; Hitchcock appears across Romance/Thriller/War;
// Kurosawa leads Adventure) and rankings differ across the five genres.

#include <iostream>
#include <set>

#include "bench/common.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/movies.h"
#include "tmark/eval/table_printer.h"

int main() {
  tmark::bench::BenchObsSession obs_session("bench_table5_movies_ranking");
  using namespace tmark;
  datasets::MoviesOptions options;
  options.num_movies = bench::ScaledNodes(700);
  const hin::Hin hin = datasets::MakeMovies(options);
  std::cout << "== Table 5: top-10 directors per genre (T-Mark link "
               "ranking over " << hin.num_relations()
            << " directors) ==\n";

  Rng rng(22);
  const auto labeled = eval::StratifiedSplit(hin, 0.3, &rng);
  core::TMarkConfig tconfig;
  tconfig.alpha = 0.9;
  core::TMarkClassifier clf(tconfig);
  clf.Fit(hin, labeled);

  const std::size_t kTop = 10;
  std::vector<std::string> headers = {"Rank"};
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    headers.push_back(hin.class_name(c));
  }
  eval::TablePrinter table(headers);
  std::vector<std::vector<std::size_t>> rankings;
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    rankings.push_back(clf.RankRelationsForClass(c));
  }
  for (std::size_t r = 0; r < kTop; ++r) {
    std::vector<std::string> row = {std::to_string(r + 1)};
    for (std::size_t c = 0; c < hin.num_classes(); ++c) {
      row.push_back(hin.relation_name(rankings[c][r]));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  // Quantify the paper's observation that genre rankings differ: count
  // distinct directors across the five top-10 columns.
  std::set<std::string> distinct;
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    for (std::size_t r = 0; r < kTop; ++r) {
      distinct.insert(hin.relation_name(rankings[c][r]));
    }
  }
  std::cout << "\ndistinct directors across the five top-10 lists: "
            << distinct.size() << " / " << 5 * kTop
            << " slots (paper: \"almost different rankings in five "
               "genres\")\n";
  return 0;
}
