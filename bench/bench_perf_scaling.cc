// Scaling-curve bench for the million-node regime (docs/PERFORMANCE.md
// "Scaling"): fixed-iteration fit cost and structure memory versus node
// count on the constant-average-degree synthetic family
// (datasets::ScalingSyntheticConfig — the same graphs `tmark_cli generate
// --preset synthetic:<n>` emits).
//
// Two tables go into the TMARK_BENCH_JSON dump (and stdout):
//   * "scaling curve"  — per (n, threads, dispatch) fit wall time and
//     ms/iter, with the LLC-sharded merged-view dispatch against the fixed
//     chunk-grid baseline (tensor/sharding.h). Both dispatches are
//     bit-identical, so iteration counts match and ms/iter is directly
//     comparable; scripts/check_scaling_bench.py gates sharded <= slack x
//     fixed.
//   * "scaling memory" — compact (adaptive 32-bit) vs forced-wide (64-bit)
//     structure bytes for the CSR slices and the merged view, from the
//     analytic byte accounting (StructureBytes / MergedViewStorageBytes).
//     The analytic numbers are the gated quantity because VmHWM is monotone
//     per process; the peak-RSS column is recorded as context only.
//
// Knobs: TMARK_SCALING_NODES (comma list, default "100000,1000000") and
// TMARK_SCALING_THREADS (comma list, default "1,4"). The ctest gate runs a
// reduced TMARK_SCALING_NODES so CI stays fast; the committed
// docs/bench/perf_scaling*.json dumps use the defaults.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"

#include "tmark/common/string_util.h"
#include "tmark/core/prepared_operators.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/synthetic_hin.h"
#include "tmark/la/index_array.h"
#include "tmark/obs/mem.h"
#include "tmark/tensor/sharding.h"
#include "tmark/tensor/transition_tensors.h"

namespace {

using namespace tmark;

std::vector<std::size_t> EnvSizeList(const char* name,
                                     std::vector<std::size_t> fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  std::vector<std::size_t> values;
  const char* p = env;
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p) return fallback;  // Unparsable: keep the defaults whole.
    values.push_back(static_cast<std::size_t>(v));
    p = *end == ',' ? end + 1 : end;
    if (end != p && *end != ',') return fallback;
  }
  return values.empty() ? fallback : values;
}

std::string MiB(std::size_t bytes) {
  return FormatDouble(static_cast<double>(bytes) / (1024.0 * 1024.0), 2);
}

/// Restores every global knob this bench sweeps.
struct KnobGuard {
  ~KnobGuard() {
    parallel::SetNumThreads(0);
    tensor::SetMergedShardingEnabled(true);
    la::SetForceWideIndexArrays(false);
  }
};

struct StructureBytesReport {
  std::size_t nnz = 0;
  std::size_t csr_bytes = 0;
  std::size_t merged_bytes = 0;
  std::size_t merged_index_bits = 0;
  std::size_t shards = 0;
};

StructureBytesReport MeasureStructures(const hin::Hin& hin) {
  const tensor::TransitionTensors tensors =
      tensor::TransitionTensors::Build(hin.ToAdjacencyTensor());
  StructureBytesReport report;
  for (const tensor::SparseTensor3* t :
       {&tensors.o_stored(), &tensors.r_stored()}) {
    report.nnz += t->NumNonZeros();
    for (std::size_t k = 0; k < t->num_relations(); ++k) {
      report.csr_bytes += t->Slice(k).StructureBytes();
    }
    report.merged_bytes += t->MergedViewStorageBytes();
    report.merged_index_bits =
        std::max(report.merged_index_bits, t->MergedViewIndexBits());
    report.shards += t->MergedShardCount();
  }
  return report;
}

void RunScalingStudy() {
  KnobGuard guard;
  const std::vector<std::size_t> sizes =
      EnvSizeList("TMARK_SCALING_NODES", {100'000, 1'000'000});
  const std::vector<std::size_t> thread_counts =
      EnvSizeList("TMARK_SCALING_THREADS", {1, 4});

  std::vector<std::string> curve_headers = {
      "n",      "threads",     "dispatch",    "shards",
      "fit_ms", "iterations",  "ms_per_iter", "peak_rss_mb"};
  std::vector<std::vector<std::string>> curve_rows;
  std::vector<std::string> mem_headers = {
      "n",     "nnz",
      "csr_compact_bytes",    "csr_wide_bytes",
      "merged_compact_bytes", "merged_wide_bytes",
      "merged_index_bits",    "shards"};
  std::vector<std::vector<std::string>> mem_rows;

  for (const std::size_t n : sizes) {
    const hin::Hin hin = datasets::GenerateSyntheticHin(
        datasets::ScalingSyntheticConfig(n, /*seed=*/7));
    std::vector<std::size_t> labeled;
    for (std::size_t i = 0; i < n; i += 3) labeled.push_back(i);

    // Memory: the same structures under compact (adaptive) and forced-wide
    // offsets. Analytic byte accounting, not RSS — see the header comment.
    // The HIN is regenerated under the force-wide knob because downstream
    // builds inherit structure arrays from the relation matrices, which are
    // assembled at generation time.
    const StructureBytesReport compact = MeasureStructures(hin);
    la::SetForceWideIndexArrays(true);
    const StructureBytesReport wide =
        MeasureStructures(datasets::GenerateSyntheticHin(
            datasets::ScalingSyntheticConfig(n, /*seed=*/7)));
    la::SetForceWideIndexArrays(false);
    mem_rows.push_back({std::to_string(n), std::to_string(compact.nnz),
                        std::to_string(compact.csr_bytes),
                        std::to_string(wide.csr_bytes),
                        std::to_string(compact.merged_bytes),
                        std::to_string(wide.merged_bytes),
                        std::to_string(compact.merged_index_bits),
                        std::to_string(compact.shards)});

    // Timing: prebuilt operators, fixed 8-iteration chains (epsilon below
    // any reachable residual) so every (dispatch, threads) cell runs the
    // identical workload — the dispatches are bit-identical anyway, but the
    // cap also keeps the million-node cells affordable.
    const core::PreparedOperators ops =
        core::PreparedOperators::Build(hin, hin::SimilarityKernel::kCosine);
    core::TMarkConfig config;
    config.max_iterations = 8;
    config.epsilon = 1e-300;
    for (const std::size_t threads : thread_counts) {
      parallel::SetNumThreads(threads);
      for (const bool sharded : {true, false}) {
        tensor::SetMergedShardingEnabled(sharded);
        std::size_t iterations = 0;
        const bench::BenchTimer::Timing timing =
            bench::BenchTimer::Time([&] {
              core::TMarkClassifier clf(config);
              clf.Fit(hin, ops, labeled);
              iterations = 0;
              for (const core::ConvergenceTrace& t : clf.Traces()) {
                iterations += t.residuals.size();
              }
              benchmark::DoNotOptimize(clf.Confidences());
            });
        const auto rss = obs::ReadPeakRssBytes();
        curve_rows.push_back(
            {std::to_string(n), std::to_string(threads),
             sharded ? "sharded" : "fixed",
             std::to_string(sharded ? compact.shards : 0),
             FormatDouble(timing.min_ms, 2), std::to_string(iterations),
             FormatDouble(timing.min_ms / static_cast<double>(iterations),
                          5),
             rss.ok() ? MiB(*rss) : "n/a"});
      }
      tensor::SetMergedShardingEnabled(true);
    }
  }

  const auto emit = [](const std::string& title,
                       const std::vector<std::string>& headers,
                       const std::vector<std::vector<std::string>>& rows) {
    std::cout << title << "\n";
    eval::TablePrinter printer(headers);
    for (const std::vector<std::string>& row : rows) {
      printer.AddRow(std::vector<std::string>(row));
    }
    printer.Print(std::cout);
    if (bench::BenchObsSession* session = bench::BenchObsSession::active()) {
      session->RecordTable({title, headers, rows});
    }
  };
  emit("scaling curve", curve_headers, curve_rows);
  emit("scaling memory", mem_headers, mem_rows);
}

}  // namespace

int main(int argc, char** argv) {
  tmark::bench::BenchObsSession obs_session(argv[0]);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  RunScalingStudy();
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
