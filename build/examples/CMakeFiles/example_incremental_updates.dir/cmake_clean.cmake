file(REMOVE_RECURSE
  "CMakeFiles/example_incremental_updates.dir/incremental_updates.cpp.o"
  "CMakeFiles/example_incremental_updates.dir/incremental_updates.cpp.o.d"
  "example_incremental_updates"
  "example_incremental_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_incremental_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
