# Empty dependencies file for example_incremental_updates.
# This may be replaced when dependencies are built.
