file(REMOVE_RECURSE
  "CMakeFiles/example_movie_genre_prediction.dir/movie_genre_prediction.cpp.o"
  "CMakeFiles/example_movie_genre_prediction.dir/movie_genre_prediction.cpp.o.d"
  "example_movie_genre_prediction"
  "example_movie_genre_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_movie_genre_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
