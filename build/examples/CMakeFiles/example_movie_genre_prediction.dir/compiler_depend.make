# Empty compiler generated dependencies file for example_movie_genre_prediction.
# This may be replaced when dependencies are built.
