file(REMOVE_RECURSE
  "CMakeFiles/example_acm_multilabel.dir/acm_multilabel.cpp.o"
  "CMakeFiles/example_acm_multilabel.dir/acm_multilabel.cpp.o.d"
  "example_acm_multilabel"
  "example_acm_multilabel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_acm_multilabel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
