# Empty compiler generated dependencies file for example_acm_multilabel.
# This may be replaced when dependencies are built.
