# Empty compiler generated dependencies file for example_nus_link_selection.
# This may be replaced when dependencies are built.
