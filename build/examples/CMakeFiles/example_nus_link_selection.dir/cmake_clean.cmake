file(REMOVE_RECURSE
  "CMakeFiles/example_nus_link_selection.dir/nus_link_selection.cpp.o"
  "CMakeFiles/example_nus_link_selection.dir/nus_link_selection.cpp.o.d"
  "example_nus_link_selection"
  "example_nus_link_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_nus_link_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
