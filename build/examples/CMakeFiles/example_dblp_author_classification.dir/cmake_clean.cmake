file(REMOVE_RECURSE
  "CMakeFiles/example_dblp_author_classification.dir/dblp_author_classification.cpp.o"
  "CMakeFiles/example_dblp_author_classification.dir/dblp_author_classification.cpp.o.d"
  "example_dblp_author_classification"
  "example_dblp_author_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dblp_author_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
