# Empty compiler generated dependencies file for example_dblp_author_classification.
# This may be replaced when dependencies are built.
