file(REMOVE_RECURSE
  "CMakeFiles/tmark_common.dir/tmark/common/random.cc.o"
  "CMakeFiles/tmark_common.dir/tmark/common/random.cc.o.d"
  "CMakeFiles/tmark_common.dir/tmark/common/string_util.cc.o"
  "CMakeFiles/tmark_common.dir/tmark/common/string_util.cc.o.d"
  "libtmark_common.a"
  "libtmark_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmark_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
