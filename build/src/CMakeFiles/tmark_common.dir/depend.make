# Empty dependencies file for tmark_common.
# This may be replaced when dependencies are built.
