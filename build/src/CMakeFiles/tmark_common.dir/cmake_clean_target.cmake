file(REMOVE_RECURSE
  "libtmark_common.a"
)
