file(REMOVE_RECURSE
  "libtmark_hin.a"
)
