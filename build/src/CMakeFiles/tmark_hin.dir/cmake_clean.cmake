file(REMOVE_RECURSE
  "CMakeFiles/tmark_hin.dir/tmark/hin/feature_similarity.cc.o"
  "CMakeFiles/tmark_hin.dir/tmark/hin/feature_similarity.cc.o.d"
  "CMakeFiles/tmark_hin.dir/tmark/hin/hin.cc.o"
  "CMakeFiles/tmark_hin.dir/tmark/hin/hin.cc.o.d"
  "CMakeFiles/tmark_hin.dir/tmark/hin/hin_builder.cc.o"
  "CMakeFiles/tmark_hin.dir/tmark/hin/hin_builder.cc.o.d"
  "CMakeFiles/tmark_hin.dir/tmark/hin/hin_io.cc.o"
  "CMakeFiles/tmark_hin.dir/tmark/hin/hin_io.cc.o.d"
  "CMakeFiles/tmark_hin.dir/tmark/hin/label_vector.cc.o"
  "CMakeFiles/tmark_hin.dir/tmark/hin/label_vector.cc.o.d"
  "CMakeFiles/tmark_hin.dir/tmark/hin/meta_path.cc.o"
  "CMakeFiles/tmark_hin.dir/tmark/hin/meta_path.cc.o.d"
  "CMakeFiles/tmark_hin.dir/tmark/hin/similarity_kernel.cc.o"
  "CMakeFiles/tmark_hin.dir/tmark/hin/similarity_kernel.cc.o.d"
  "libtmark_hin.a"
  "libtmark_hin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmark_hin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
