
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmark/hin/feature_similarity.cc" "src/CMakeFiles/tmark_hin.dir/tmark/hin/feature_similarity.cc.o" "gcc" "src/CMakeFiles/tmark_hin.dir/tmark/hin/feature_similarity.cc.o.d"
  "/root/repo/src/tmark/hin/hin.cc" "src/CMakeFiles/tmark_hin.dir/tmark/hin/hin.cc.o" "gcc" "src/CMakeFiles/tmark_hin.dir/tmark/hin/hin.cc.o.d"
  "/root/repo/src/tmark/hin/hin_builder.cc" "src/CMakeFiles/tmark_hin.dir/tmark/hin/hin_builder.cc.o" "gcc" "src/CMakeFiles/tmark_hin.dir/tmark/hin/hin_builder.cc.o.d"
  "/root/repo/src/tmark/hin/hin_io.cc" "src/CMakeFiles/tmark_hin.dir/tmark/hin/hin_io.cc.o" "gcc" "src/CMakeFiles/tmark_hin.dir/tmark/hin/hin_io.cc.o.d"
  "/root/repo/src/tmark/hin/label_vector.cc" "src/CMakeFiles/tmark_hin.dir/tmark/hin/label_vector.cc.o" "gcc" "src/CMakeFiles/tmark_hin.dir/tmark/hin/label_vector.cc.o.d"
  "/root/repo/src/tmark/hin/meta_path.cc" "src/CMakeFiles/tmark_hin.dir/tmark/hin/meta_path.cc.o" "gcc" "src/CMakeFiles/tmark_hin.dir/tmark/hin/meta_path.cc.o.d"
  "/root/repo/src/tmark/hin/similarity_kernel.cc" "src/CMakeFiles/tmark_hin.dir/tmark/hin/similarity_kernel.cc.o" "gcc" "src/CMakeFiles/tmark_hin.dir/tmark/hin/similarity_kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmark_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmark_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmark_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
