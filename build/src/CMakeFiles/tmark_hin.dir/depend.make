# Empty dependencies file for tmark_hin.
# This may be replaced when dependencies are built.
