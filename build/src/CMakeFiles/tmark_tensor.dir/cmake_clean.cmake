file(REMOVE_RECURSE
  "CMakeFiles/tmark_tensor.dir/tmark/tensor/matricization.cc.o"
  "CMakeFiles/tmark_tensor.dir/tmark/tensor/matricization.cc.o.d"
  "CMakeFiles/tmark_tensor.dir/tmark/tensor/sparse_tensor3.cc.o"
  "CMakeFiles/tmark_tensor.dir/tmark/tensor/sparse_tensor3.cc.o.d"
  "CMakeFiles/tmark_tensor.dir/tmark/tensor/transition_tensors.cc.o"
  "CMakeFiles/tmark_tensor.dir/tmark/tensor/transition_tensors.cc.o.d"
  "libtmark_tensor.a"
  "libtmark_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmark_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
