# Empty dependencies file for tmark_tensor.
# This may be replaced when dependencies are built.
