
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmark/tensor/matricization.cc" "src/CMakeFiles/tmark_tensor.dir/tmark/tensor/matricization.cc.o" "gcc" "src/CMakeFiles/tmark_tensor.dir/tmark/tensor/matricization.cc.o.d"
  "/root/repo/src/tmark/tensor/sparse_tensor3.cc" "src/CMakeFiles/tmark_tensor.dir/tmark/tensor/sparse_tensor3.cc.o" "gcc" "src/CMakeFiles/tmark_tensor.dir/tmark/tensor/sparse_tensor3.cc.o.d"
  "/root/repo/src/tmark/tensor/transition_tensors.cc" "src/CMakeFiles/tmark_tensor.dir/tmark/tensor/transition_tensors.cc.o" "gcc" "src/CMakeFiles/tmark_tensor.dir/tmark/tensor/transition_tensors.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmark_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmark_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
