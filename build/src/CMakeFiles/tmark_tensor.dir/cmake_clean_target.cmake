file(REMOVE_RECURSE
  "libtmark_tensor.a"
)
