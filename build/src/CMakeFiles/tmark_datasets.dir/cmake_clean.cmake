file(REMOVE_RECURSE
  "CMakeFiles/tmark_datasets.dir/tmark/datasets/acm.cc.o"
  "CMakeFiles/tmark_datasets.dir/tmark/datasets/acm.cc.o.d"
  "CMakeFiles/tmark_datasets.dir/tmark/datasets/dblp.cc.o"
  "CMakeFiles/tmark_datasets.dir/tmark/datasets/dblp.cc.o.d"
  "CMakeFiles/tmark_datasets.dir/tmark/datasets/movies.cc.o"
  "CMakeFiles/tmark_datasets.dir/tmark/datasets/movies.cc.o.d"
  "CMakeFiles/tmark_datasets.dir/tmark/datasets/nus.cc.o"
  "CMakeFiles/tmark_datasets.dir/tmark/datasets/nus.cc.o.d"
  "CMakeFiles/tmark_datasets.dir/tmark/datasets/paper_example.cc.o"
  "CMakeFiles/tmark_datasets.dir/tmark/datasets/paper_example.cc.o.d"
  "CMakeFiles/tmark_datasets.dir/tmark/datasets/synthetic_hin.cc.o"
  "CMakeFiles/tmark_datasets.dir/tmark/datasets/synthetic_hin.cc.o.d"
  "libtmark_datasets.a"
  "libtmark_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmark_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
