
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmark/datasets/acm.cc" "src/CMakeFiles/tmark_datasets.dir/tmark/datasets/acm.cc.o" "gcc" "src/CMakeFiles/tmark_datasets.dir/tmark/datasets/acm.cc.o.d"
  "/root/repo/src/tmark/datasets/dblp.cc" "src/CMakeFiles/tmark_datasets.dir/tmark/datasets/dblp.cc.o" "gcc" "src/CMakeFiles/tmark_datasets.dir/tmark/datasets/dblp.cc.o.d"
  "/root/repo/src/tmark/datasets/movies.cc" "src/CMakeFiles/tmark_datasets.dir/tmark/datasets/movies.cc.o" "gcc" "src/CMakeFiles/tmark_datasets.dir/tmark/datasets/movies.cc.o.d"
  "/root/repo/src/tmark/datasets/nus.cc" "src/CMakeFiles/tmark_datasets.dir/tmark/datasets/nus.cc.o" "gcc" "src/CMakeFiles/tmark_datasets.dir/tmark/datasets/nus.cc.o.d"
  "/root/repo/src/tmark/datasets/paper_example.cc" "src/CMakeFiles/tmark_datasets.dir/tmark/datasets/paper_example.cc.o" "gcc" "src/CMakeFiles/tmark_datasets.dir/tmark/datasets/paper_example.cc.o.d"
  "/root/repo/src/tmark/datasets/synthetic_hin.cc" "src/CMakeFiles/tmark_datasets.dir/tmark/datasets/synthetic_hin.cc.o" "gcc" "src/CMakeFiles/tmark_datasets.dir/tmark/datasets/synthetic_hin.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmark_hin.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmark_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmark_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmark_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
