# Empty compiler generated dependencies file for tmark_datasets.
# This may be replaced when dependencies are built.
