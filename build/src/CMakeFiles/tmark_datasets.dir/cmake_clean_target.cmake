file(REMOVE_RECURSE
  "libtmark_datasets.a"
)
