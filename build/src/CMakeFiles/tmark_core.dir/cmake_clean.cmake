file(REMOVE_RECURSE
  "CMakeFiles/tmark_core.dir/tmark/core/har.cc.o"
  "CMakeFiles/tmark_core.dir/tmark/core/har.cc.o.d"
  "CMakeFiles/tmark_core.dir/tmark/core/model_io.cc.o"
  "CMakeFiles/tmark_core.dir/tmark/core/model_io.cc.o.d"
  "CMakeFiles/tmark_core.dir/tmark/core/multirank.cc.o"
  "CMakeFiles/tmark_core.dir/tmark/core/multirank.cc.o.d"
  "CMakeFiles/tmark_core.dir/tmark/core/tensor_rrcc.cc.o"
  "CMakeFiles/tmark_core.dir/tmark/core/tensor_rrcc.cc.o.d"
  "CMakeFiles/tmark_core.dir/tmark/core/tmark.cc.o"
  "CMakeFiles/tmark_core.dir/tmark/core/tmark.cc.o.d"
  "libtmark_core.a"
  "libtmark_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmark_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
