# Empty dependencies file for tmark_core.
# This may be replaced when dependencies are built.
