file(REMOVE_RECURSE
  "libtmark_core.a"
)
