
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmark/core/har.cc" "src/CMakeFiles/tmark_core.dir/tmark/core/har.cc.o" "gcc" "src/CMakeFiles/tmark_core.dir/tmark/core/har.cc.o.d"
  "/root/repo/src/tmark/core/model_io.cc" "src/CMakeFiles/tmark_core.dir/tmark/core/model_io.cc.o" "gcc" "src/CMakeFiles/tmark_core.dir/tmark/core/model_io.cc.o.d"
  "/root/repo/src/tmark/core/multirank.cc" "src/CMakeFiles/tmark_core.dir/tmark/core/multirank.cc.o" "gcc" "src/CMakeFiles/tmark_core.dir/tmark/core/multirank.cc.o.d"
  "/root/repo/src/tmark/core/tensor_rrcc.cc" "src/CMakeFiles/tmark_core.dir/tmark/core/tensor_rrcc.cc.o" "gcc" "src/CMakeFiles/tmark_core.dir/tmark/core/tensor_rrcc.cc.o.d"
  "/root/repo/src/tmark/core/tmark.cc" "src/CMakeFiles/tmark_core.dir/tmark/core/tmark.cc.o" "gcc" "src/CMakeFiles/tmark_core.dir/tmark/core/tmark.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmark_hin.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmark_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmark_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmark_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmark_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
