file(REMOVE_RECURSE
  "libtmark_eval.a"
)
