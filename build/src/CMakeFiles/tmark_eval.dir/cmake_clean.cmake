file(REMOVE_RECURSE
  "CMakeFiles/tmark_eval.dir/tmark/eval/experiment.cc.o"
  "CMakeFiles/tmark_eval.dir/tmark/eval/experiment.cc.o.d"
  "CMakeFiles/tmark_eval.dir/tmark/eval/stats.cc.o"
  "CMakeFiles/tmark_eval.dir/tmark/eval/stats.cc.o.d"
  "CMakeFiles/tmark_eval.dir/tmark/eval/table_printer.cc.o"
  "CMakeFiles/tmark_eval.dir/tmark/eval/table_printer.cc.o.d"
  "libtmark_eval.a"
  "libtmark_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmark_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
