# Empty dependencies file for tmark_eval.
# This may be replaced when dependencies are built.
