# Empty dependencies file for tmark_ml.
# This may be replaced when dependencies are built.
