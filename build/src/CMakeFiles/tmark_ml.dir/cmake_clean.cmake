file(REMOVE_RECURSE
  "CMakeFiles/tmark_ml.dir/tmark/ml/graph_conv.cc.o"
  "CMakeFiles/tmark_ml.dir/tmark/ml/graph_conv.cc.o.d"
  "CMakeFiles/tmark_ml.dir/tmark/ml/linear_svm.cc.o"
  "CMakeFiles/tmark_ml.dir/tmark/ml/linear_svm.cc.o.d"
  "CMakeFiles/tmark_ml.dir/tmark/ml/logistic_regression.cc.o"
  "CMakeFiles/tmark_ml.dir/tmark/ml/logistic_regression.cc.o.d"
  "CMakeFiles/tmark_ml.dir/tmark/ml/metrics.cc.o"
  "CMakeFiles/tmark_ml.dir/tmark/ml/metrics.cc.o.d"
  "CMakeFiles/tmark_ml.dir/tmark/ml/mlp.cc.o"
  "CMakeFiles/tmark_ml.dir/tmark/ml/mlp.cc.o.d"
  "CMakeFiles/tmark_ml.dir/tmark/ml/optimizer.cc.o"
  "CMakeFiles/tmark_ml.dir/tmark/ml/optimizer.cc.o.d"
  "libtmark_ml.a"
  "libtmark_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmark_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
