file(REMOVE_RECURSE
  "libtmark_ml.a"
)
