
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmark/ml/graph_conv.cc" "src/CMakeFiles/tmark_ml.dir/tmark/ml/graph_conv.cc.o" "gcc" "src/CMakeFiles/tmark_ml.dir/tmark/ml/graph_conv.cc.o.d"
  "/root/repo/src/tmark/ml/linear_svm.cc" "src/CMakeFiles/tmark_ml.dir/tmark/ml/linear_svm.cc.o" "gcc" "src/CMakeFiles/tmark_ml.dir/tmark/ml/linear_svm.cc.o.d"
  "/root/repo/src/tmark/ml/logistic_regression.cc" "src/CMakeFiles/tmark_ml.dir/tmark/ml/logistic_regression.cc.o" "gcc" "src/CMakeFiles/tmark_ml.dir/tmark/ml/logistic_regression.cc.o.d"
  "/root/repo/src/tmark/ml/metrics.cc" "src/CMakeFiles/tmark_ml.dir/tmark/ml/metrics.cc.o" "gcc" "src/CMakeFiles/tmark_ml.dir/tmark/ml/metrics.cc.o.d"
  "/root/repo/src/tmark/ml/mlp.cc" "src/CMakeFiles/tmark_ml.dir/tmark/ml/mlp.cc.o" "gcc" "src/CMakeFiles/tmark_ml.dir/tmark/ml/mlp.cc.o.d"
  "/root/repo/src/tmark/ml/optimizer.cc" "src/CMakeFiles/tmark_ml.dir/tmark/ml/optimizer.cc.o" "gcc" "src/CMakeFiles/tmark_ml.dir/tmark/ml/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmark_hin.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmark_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmark_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmark_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
