# Empty compiler generated dependencies file for tmark_ml.
# This may be replaced when dependencies are built.
