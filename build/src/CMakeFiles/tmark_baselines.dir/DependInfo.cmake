
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmark/baselines/emr.cc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/emr.cc.o" "gcc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/emr.cc.o.d"
  "/root/repo/src/tmark/baselines/gnetmine.cc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/gnetmine.cc.o" "gcc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/gnetmine.cc.o.d"
  "/root/repo/src/tmark/baselines/graph_inception.cc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/graph_inception.cc.o" "gcc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/graph_inception.cc.o.d"
  "/root/repo/src/tmark/baselines/hcc.cc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/hcc.cc.o" "gcc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/hcc.cc.o.d"
  "/root/repo/src/tmark/baselines/highway_net.cc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/highway_net.cc.o" "gcc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/highway_net.cc.o.d"
  "/root/repo/src/tmark/baselines/ica.cc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/ica.cc.o" "gcc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/ica.cc.o.d"
  "/root/repo/src/tmark/baselines/rankclass.cc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/rankclass.cc.o" "gcc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/rankclass.cc.o.d"
  "/root/repo/src/tmark/baselines/registry.cc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/registry.cc.o" "gcc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/registry.cc.o.d"
  "/root/repo/src/tmark/baselines/relational_features.cc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/relational_features.cc.o" "gcc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/relational_features.cc.o.d"
  "/root/repo/src/tmark/baselines/wvrn_rl.cc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/wvrn_rl.cc.o" "gcc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/wvrn_rl.cc.o.d"
  "/root/repo/src/tmark/baselines/zoobp.cc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/zoobp.cc.o" "gcc" "src/CMakeFiles/tmark_baselines.dir/tmark/baselines/zoobp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmark_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmark_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmark_hin.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmark_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmark_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmark_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
