file(REMOVE_RECURSE
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/emr.cc.o"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/emr.cc.o.d"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/gnetmine.cc.o"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/gnetmine.cc.o.d"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/graph_inception.cc.o"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/graph_inception.cc.o.d"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/hcc.cc.o"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/hcc.cc.o.d"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/highway_net.cc.o"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/highway_net.cc.o.d"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/ica.cc.o"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/ica.cc.o.d"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/rankclass.cc.o"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/rankclass.cc.o.d"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/registry.cc.o"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/registry.cc.o.d"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/relational_features.cc.o"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/relational_features.cc.o.d"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/wvrn_rl.cc.o"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/wvrn_rl.cc.o.d"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/zoobp.cc.o"
  "CMakeFiles/tmark_baselines.dir/tmark/baselines/zoobp.cc.o.d"
  "libtmark_baselines.a"
  "libtmark_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmark_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
