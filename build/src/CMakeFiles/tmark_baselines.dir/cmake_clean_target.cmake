file(REMOVE_RECURSE
  "libtmark_baselines.a"
)
