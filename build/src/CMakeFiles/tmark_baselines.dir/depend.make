# Empty dependencies file for tmark_baselines.
# This may be replaced when dependencies are built.
