file(REMOVE_RECURSE
  "libtmark_la.a"
)
