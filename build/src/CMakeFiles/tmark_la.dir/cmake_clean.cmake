file(REMOVE_RECURSE
  "CMakeFiles/tmark_la.dir/tmark/la/dense_matrix.cc.o"
  "CMakeFiles/tmark_la.dir/tmark/la/dense_matrix.cc.o.d"
  "CMakeFiles/tmark_la.dir/tmark/la/sparse_matrix.cc.o"
  "CMakeFiles/tmark_la.dir/tmark/la/sparse_matrix.cc.o.d"
  "CMakeFiles/tmark_la.dir/tmark/la/vector_ops.cc.o"
  "CMakeFiles/tmark_la.dir/tmark/la/vector_ops.cc.o.d"
  "libtmark_la.a"
  "libtmark_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmark_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
