
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmark/la/dense_matrix.cc" "src/CMakeFiles/tmark_la.dir/tmark/la/dense_matrix.cc.o" "gcc" "src/CMakeFiles/tmark_la.dir/tmark/la/dense_matrix.cc.o.d"
  "/root/repo/src/tmark/la/sparse_matrix.cc" "src/CMakeFiles/tmark_la.dir/tmark/la/sparse_matrix.cc.o" "gcc" "src/CMakeFiles/tmark_la.dir/tmark/la/sparse_matrix.cc.o.d"
  "/root/repo/src/tmark/la/vector_ops.cc" "src/CMakeFiles/tmark_la.dir/tmark/la/vector_ops.cc.o" "gcc" "src/CMakeFiles/tmark_la.dir/tmark/la/vector_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmark_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
