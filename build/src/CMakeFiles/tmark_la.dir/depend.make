# Empty dependencies file for tmark_la.
# This may be replaced when dependencies are built.
