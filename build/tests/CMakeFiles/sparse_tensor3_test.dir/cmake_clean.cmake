file(REMOVE_RECURSE
  "CMakeFiles/sparse_tensor3_test.dir/tensor/sparse_tensor3_test.cc.o"
  "CMakeFiles/sparse_tensor3_test.dir/tensor/sparse_tensor3_test.cc.o.d"
  "sparse_tensor3_test"
  "sparse_tensor3_test.pdb"
  "sparse_tensor3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_tensor3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
