# Empty dependencies file for sparse_tensor3_test.
# This may be replaced when dependencies are built.
