file(REMOVE_RECURSE
  "CMakeFiles/logistic_regression_test.dir/ml/logistic_regression_test.cc.o"
  "CMakeFiles/logistic_regression_test.dir/ml/logistic_regression_test.cc.o.d"
  "logistic_regression_test"
  "logistic_regression_test.pdb"
  "logistic_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logistic_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
