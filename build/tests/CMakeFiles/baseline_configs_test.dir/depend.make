# Empty dependencies file for baseline_configs_test.
# This may be replaced when dependencies are built.
