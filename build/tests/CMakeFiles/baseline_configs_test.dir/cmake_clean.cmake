file(REMOVE_RECURSE
  "CMakeFiles/baseline_configs_test.dir/baselines/baseline_configs_test.cc.o"
  "CMakeFiles/baseline_configs_test.dir/baselines/baseline_configs_test.cc.o.d"
  "baseline_configs_test"
  "baseline_configs_test.pdb"
  "baseline_configs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_configs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
