# Empty compiler generated dependencies file for transition_tensors_test.
# This may be replaced when dependencies are built.
