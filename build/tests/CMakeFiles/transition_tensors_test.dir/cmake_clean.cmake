file(REMOVE_RECURSE
  "CMakeFiles/transition_tensors_test.dir/tensor/transition_tensors_test.cc.o"
  "CMakeFiles/transition_tensors_test.dir/tensor/transition_tensors_test.cc.o.d"
  "transition_tensors_test"
  "transition_tensors_test.pdb"
  "transition_tensors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transition_tensors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
