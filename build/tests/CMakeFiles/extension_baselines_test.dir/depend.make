# Empty dependencies file for extension_baselines_test.
# This may be replaced when dependencies are built.
