file(REMOVE_RECURSE
  "CMakeFiles/extension_baselines_test.dir/baselines/extension_baselines_test.cc.o"
  "CMakeFiles/extension_baselines_test.dir/baselines/extension_baselines_test.cc.o.d"
  "extension_baselines_test"
  "extension_baselines_test.pdb"
  "extension_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
