file(REMOVE_RECURSE
  "CMakeFiles/tmark_param_grid_test.dir/core/tmark_param_grid_test.cc.o"
  "CMakeFiles/tmark_param_grid_test.dir/core/tmark_param_grid_test.cc.o.d"
  "tmark_param_grid_test"
  "tmark_param_grid_test.pdb"
  "tmark_param_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmark_param_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
