# Empty compiler generated dependencies file for tmark_param_grid_test.
# This may be replaced when dependencies are built.
