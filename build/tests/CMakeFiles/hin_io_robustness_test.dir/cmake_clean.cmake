file(REMOVE_RECURSE
  "CMakeFiles/hin_io_robustness_test.dir/hin/hin_io_robustness_test.cc.o"
  "CMakeFiles/hin_io_robustness_test.dir/hin/hin_io_robustness_test.cc.o.d"
  "hin_io_robustness_test"
  "hin_io_robustness_test.pdb"
  "hin_io_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hin_io_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
