file(REMOVE_RECURSE
  "CMakeFiles/tmark_refit_test.dir/core/tmark_refit_test.cc.o"
  "CMakeFiles/tmark_refit_test.dir/core/tmark_refit_test.cc.o.d"
  "tmark_refit_test"
  "tmark_refit_test.pdb"
  "tmark_refit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmark_refit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
