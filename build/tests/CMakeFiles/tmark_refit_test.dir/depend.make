# Empty dependencies file for tmark_refit_test.
# This may be replaced when dependencies are built.
