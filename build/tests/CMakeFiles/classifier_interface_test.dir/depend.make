# Empty dependencies file for classifier_interface_test.
# This may be replaced when dependencies are built.
