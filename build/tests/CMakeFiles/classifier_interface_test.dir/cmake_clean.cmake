file(REMOVE_RECURSE
  "CMakeFiles/classifier_interface_test.dir/hin/classifier_interface_test.cc.o"
  "CMakeFiles/classifier_interface_test.dir/hin/classifier_interface_test.cc.o.d"
  "classifier_interface_test"
  "classifier_interface_test.pdb"
  "classifier_interface_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classifier_interface_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
