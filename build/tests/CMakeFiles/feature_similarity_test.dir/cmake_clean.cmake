file(REMOVE_RECURSE
  "CMakeFiles/feature_similarity_test.dir/hin/feature_similarity_test.cc.o"
  "CMakeFiles/feature_similarity_test.dir/hin/feature_similarity_test.cc.o.d"
  "feature_similarity_test"
  "feature_similarity_test.pdb"
  "feature_similarity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_similarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
