# Empty dependencies file for feature_similarity_test.
# This may be replaced when dependencies are built.
