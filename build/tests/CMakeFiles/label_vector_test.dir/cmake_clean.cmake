file(REMOVE_RECURSE
  "CMakeFiles/label_vector_test.dir/hin/label_vector_test.cc.o"
  "CMakeFiles/label_vector_test.dir/hin/label_vector_test.cc.o.d"
  "label_vector_test"
  "label_vector_test.pdb"
  "label_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/label_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
