# Empty compiler generated dependencies file for label_vector_test.
# This may be replaced when dependencies are built.
