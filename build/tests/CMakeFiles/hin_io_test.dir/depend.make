# Empty dependencies file for hin_io_test.
# This may be replaced when dependencies are built.
