# Empty dependencies file for meta_path_test.
# This may be replaced when dependencies are built.
