# Empty dependencies file for relational_features_test.
# This may be replaced when dependencies are built.
