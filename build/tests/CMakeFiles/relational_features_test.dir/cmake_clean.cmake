file(REMOVE_RECURSE
  "CMakeFiles/relational_features_test.dir/baselines/relational_features_test.cc.o"
  "CMakeFiles/relational_features_test.dir/baselines/relational_features_test.cc.o.d"
  "relational_features_test"
  "relational_features_test.pdb"
  "relational_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
