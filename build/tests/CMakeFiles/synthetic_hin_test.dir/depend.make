# Empty dependencies file for synthetic_hin_test.
# This may be replaced when dependencies are built.
