file(REMOVE_RECURSE
  "CMakeFiles/synthetic_hin_test.dir/datasets/synthetic_hin_test.cc.o"
  "CMakeFiles/synthetic_hin_test.dir/datasets/synthetic_hin_test.cc.o.d"
  "synthetic_hin_test"
  "synthetic_hin_test.pdb"
  "synthetic_hin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_hin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
