# Empty dependencies file for multirank_test.
# This may be replaced when dependencies are built.
