file(REMOVE_RECURSE
  "CMakeFiles/multirank_test.dir/core/multirank_test.cc.o"
  "CMakeFiles/multirank_test.dir/core/multirank_test.cc.o.d"
  "multirank_test"
  "multirank_test.pdb"
  "multirank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
