# Empty compiler generated dependencies file for baseline_classifiers_test.
# This may be replaced when dependencies are built.
