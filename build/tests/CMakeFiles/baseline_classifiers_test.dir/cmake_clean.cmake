file(REMOVE_RECURSE
  "CMakeFiles/baseline_classifiers_test.dir/baselines/baseline_classifiers_test.cc.o"
  "CMakeFiles/baseline_classifiers_test.dir/baselines/baseline_classifiers_test.cc.o.d"
  "baseline_classifiers_test"
  "baseline_classifiers_test.pdb"
  "baseline_classifiers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_classifiers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
