file(REMOVE_RECURSE
  "CMakeFiles/hin_builder_test.dir/hin/hin_builder_test.cc.o"
  "CMakeFiles/hin_builder_test.dir/hin/hin_builder_test.cc.o.d"
  "hin_builder_test"
  "hin_builder_test.pdb"
  "hin_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hin_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
