file(REMOVE_RECURSE
  "CMakeFiles/zoobp_test.dir/baselines/zoobp_test.cc.o"
  "CMakeFiles/zoobp_test.dir/baselines/zoobp_test.cc.o.d"
  "zoobp_test"
  "zoobp_test.pdb"
  "zoobp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoobp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
