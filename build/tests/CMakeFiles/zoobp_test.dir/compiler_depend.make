# Empty compiler generated dependencies file for zoobp_test.
# This may be replaced when dependencies are built.
