# Empty compiler generated dependencies file for weighted_hin_test.
# This may be replaced when dependencies are built.
