file(REMOVE_RECURSE
  "CMakeFiles/weighted_hin_test.dir/integration/weighted_hin_test.cc.o"
  "CMakeFiles/weighted_hin_test.dir/integration/weighted_hin_test.cc.o.d"
  "weighted_hin_test"
  "weighted_hin_test.pdb"
  "weighted_hin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_hin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
