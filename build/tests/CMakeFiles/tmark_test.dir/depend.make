# Empty dependencies file for tmark_test.
# This may be replaced when dependencies are built.
