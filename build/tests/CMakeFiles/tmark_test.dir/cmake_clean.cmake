file(REMOVE_RECURSE
  "CMakeFiles/tmark_test.dir/core/tmark_test.cc.o"
  "CMakeFiles/tmark_test.dir/core/tmark_test.cc.o.d"
  "tmark_test"
  "tmark_test.pdb"
  "tmark_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmark_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
