# Empty compiler generated dependencies file for graph_conv_test.
# This may be replaced when dependencies are built.
