file(REMOVE_RECURSE
  "CMakeFiles/graph_conv_test.dir/ml/graph_conv_test.cc.o"
  "CMakeFiles/graph_conv_test.dir/ml/graph_conv_test.cc.o.d"
  "graph_conv_test"
  "graph_conv_test.pdb"
  "graph_conv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_conv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
