file(REMOVE_RECURSE
  "CMakeFiles/matricization_test.dir/tensor/matricization_test.cc.o"
  "CMakeFiles/matricization_test.dir/tensor/matricization_test.cc.o.d"
  "matricization_test"
  "matricization_test.pdb"
  "matricization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matricization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
