# Empty compiler generated dependencies file for matricization_test.
# This may be replaced when dependencies are built.
