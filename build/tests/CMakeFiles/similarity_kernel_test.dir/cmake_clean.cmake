file(REMOVE_RECURSE
  "CMakeFiles/similarity_kernel_test.dir/hin/similarity_kernel_test.cc.o"
  "CMakeFiles/similarity_kernel_test.dir/hin/similarity_kernel_test.cc.o.d"
  "similarity_kernel_test"
  "similarity_kernel_test.pdb"
  "similarity_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
