file(REMOVE_RECURSE
  "../bench/bench_perf_tmark"
  "../bench/bench_perf_tmark.pdb"
  "CMakeFiles/bench_perf_tmark.dir/bench_perf_tmark.cc.o"
  "CMakeFiles/bench_perf_tmark.dir/bench_perf_tmark.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_tmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
