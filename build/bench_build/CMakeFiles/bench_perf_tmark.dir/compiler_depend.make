# Empty compiler generated dependencies file for bench_perf_tmark.
# This may be replaced when dependencies are built.
