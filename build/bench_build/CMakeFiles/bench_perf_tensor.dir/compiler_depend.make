# Empty compiler generated dependencies file for bench_perf_tensor.
# This may be replaced when dependencies are built.
