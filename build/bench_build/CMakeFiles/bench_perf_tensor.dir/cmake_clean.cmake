file(REMOVE_RECURSE
  "../bench/bench_perf_tensor"
  "../bench/bench_perf_tensor.pdb"
  "CMakeFiles/bench_perf_tensor.dir/bench_perf_tensor.cc.o"
  "CMakeFiles/bench_perf_tensor.dir/bench_perf_tensor.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
