# Empty dependencies file for bench_table3_dblp.
# This may be replaced when dependencies are built.
