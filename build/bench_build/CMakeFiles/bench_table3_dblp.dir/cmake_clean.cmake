file(REMOVE_RECURSE
  "../bench/bench_table3_dblp"
  "../bench/bench_table3_dblp.pdb"
  "CMakeFiles/bench_table3_dblp.dir/bench_table3_dblp.cc.o"
  "CMakeFiles/bench_table3_dblp.dir/bench_table3_dblp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_dblp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
