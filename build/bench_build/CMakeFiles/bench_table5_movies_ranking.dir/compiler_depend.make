# Empty compiler generated dependencies file for bench_table5_movies_ranking.
# This may be replaced when dependencies are built.
