file(REMOVE_RECURSE
  "../bench/bench_paper_example"
  "../bench/bench_paper_example.pdb"
  "CMakeFiles/bench_paper_example.dir/bench_paper_example.cc.o"
  "CMakeFiles/bench_paper_example.dir/bench_paper_example.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paper_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
