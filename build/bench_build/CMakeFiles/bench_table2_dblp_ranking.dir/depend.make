# Empty dependencies file for bench_table2_dblp_ranking.
# This may be replaced when dependencies are built.
