file(REMOVE_RECURSE
  "../bench/bench_table2_dblp_ranking"
  "../bench/bench_table2_dblp_ranking.pdb"
  "CMakeFiles/bench_table2_dblp_ranking.dir/bench_table2_dblp_ranking.cc.o"
  "CMakeFiles/bench_table2_dblp_ranking.dir/bench_table2_dblp_ranking.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_dblp_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
