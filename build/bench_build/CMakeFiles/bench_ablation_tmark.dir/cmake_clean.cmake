file(REMOVE_RECURSE
  "../bench/bench_ablation_tmark"
  "../bench/bench_ablation_tmark.pdb"
  "CMakeFiles/bench_ablation_tmark.dir/bench_ablation_tmark.cc.o"
  "CMakeFiles/bench_ablation_tmark.dir/bench_ablation_tmark.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
