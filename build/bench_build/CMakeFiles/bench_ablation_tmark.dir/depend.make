# Empty dependencies file for bench_ablation_tmark.
# This may be replaced when dependencies are built.
