# Empty dependencies file for bench_fig8_9_gamma.
# This may be replaced when dependencies are built.
