file(REMOVE_RECURSE
  "../bench/bench_fig8_9_gamma"
  "../bench/bench_fig8_9_gamma.pdb"
  "CMakeFiles/bench_fig8_9_gamma.dir/bench_fig8_9_gamma.cc.o"
  "CMakeFiles/bench_fig8_9_gamma.dir/bench_fig8_9_gamma.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_9_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
