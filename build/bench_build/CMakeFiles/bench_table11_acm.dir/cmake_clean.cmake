file(REMOVE_RECURSE
  "../bench/bench_table11_acm"
  "../bench/bench_table11_acm.pdb"
  "CMakeFiles/bench_table11_acm.dir/bench_table11_acm.cc.o"
  "CMakeFiles/bench_table11_acm.dir/bench_table11_acm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_acm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
