file(REMOVE_RECURSE
  "../bench/bench_table4_movies"
  "../bench/bench_table4_movies.pdb"
  "CMakeFiles/bench_table4_movies.dir/bench_table4_movies.cc.o"
  "CMakeFiles/bench_table4_movies.dir/bench_table4_movies.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_movies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
