file(REMOVE_RECURSE
  "../bench/bench_perf_baselines"
  "../bench/bench_perf_baselines.pdb"
  "CMakeFiles/bench_perf_baselines.dir/bench_perf_baselines.cc.o"
  "CMakeFiles/bench_perf_baselines.dir/bench_perf_baselines.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
