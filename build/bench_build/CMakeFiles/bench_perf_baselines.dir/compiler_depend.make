# Empty compiler generated dependencies file for bench_perf_baselines.
# This may be replaced when dependencies are built.
