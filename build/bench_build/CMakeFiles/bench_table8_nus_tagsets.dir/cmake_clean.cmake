file(REMOVE_RECURSE
  "../bench/bench_table8_nus_tagsets"
  "../bench/bench_table8_nus_tagsets.pdb"
  "CMakeFiles/bench_table8_nus_tagsets.dir/bench_table8_nus_tagsets.cc.o"
  "CMakeFiles/bench_table8_nus_tagsets.dir/bench_table8_nus_tagsets.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_nus_tagsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
