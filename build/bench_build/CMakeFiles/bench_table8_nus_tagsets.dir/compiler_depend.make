# Empty compiler generated dependencies file for bench_table8_nus_tagsets.
# This may be replaced when dependencies are built.
