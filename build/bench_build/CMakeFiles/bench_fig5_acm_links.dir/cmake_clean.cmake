file(REMOVE_RECURSE
  "../bench/bench_fig5_acm_links"
  "../bench/bench_fig5_acm_links.pdb"
  "CMakeFiles/bench_fig5_acm_links.dir/bench_fig5_acm_links.cc.o"
  "CMakeFiles/bench_fig5_acm_links.dir/bench_fig5_acm_links.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_acm_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
