# Empty dependencies file for tmark_cli.
# This may be replaced when dependencies are built.
