file(REMOVE_RECURSE
  "CMakeFiles/tmark_cli.dir/tmark_cli.cc.o"
  "CMakeFiles/tmark_cli.dir/tmark_cli.cc.o.d"
  "tmark_cli"
  "tmark_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmark_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
