// Extension example: incremental (warm-start) refitting. A live HIN keeps
// acquiring labels — rerunning T-Mark from scratch wastes the work the
// chain already did. TMarkClassifier::Refit seeds Algorithm 1 from the
// previous stationary distributions, cutting iterations while landing on
// the same unique fixed point (Theorem 3 guarantees uniqueness for a fixed
// restart vector).

#include <cstdio>

#include "tmark/core/tmark.h"
#include "tmark/datasets/dblp.h"
#include "tmark/eval/experiment.h"

namespace {

using namespace tmark;

std::size_t TotalIterations(const core::TMarkClassifier& clf) {
  std::size_t total = 0;
  for (const core::ConvergenceTrace& trace : clf.Traces()) {
    total += trace.residuals.size();
  }
  return total;
}

}  // namespace

int main() {
  datasets::DblpOptions options;
  options.num_authors = 400;
  const hin::Hin hin = datasets::MakeDblp(options);

  // Labels arrive in waves: 10% -> 20% -> 40% of the authors.
  Rng rng(99);
  const auto wave1 = eval::StratifiedSplit(hin, 0.10, &rng);
  const auto wave2 = eval::StratifiedSplit(hin, 0.20, &rng);
  const auto wave3 = eval::StratifiedSplit(hin, 0.40, &rng);

  core::TMarkConfig config;
  config.ica_update = false;  // fixed restart -> unique fixed point
  core::TMarkClassifier incremental(config);

  std::printf("%-28s %-12s %-10s\n", "stage", "iterations", "accuracy");
  incremental.Fit(hin, wave1);
  std::printf("%-28s %-12zu %.3f\n", "cold fit @10% labels",
              TotalIterations(incremental),
              eval::EvaluateClassifier(hin, &incremental, wave1, false, 0.5));

  // Same problem, warm start: the chain is already at its fixed point.
  {
    core::TMarkClassifier same = incremental;
    same.Refit(hin, wave1);
    std::printf("%-28s %-12zu (already stationary)\n",
                "refit, unchanged problem", TotalIterations(same));
  }

  for (const auto* wave : {&wave2, &wave3}) {
    // Warm-started update as new labels arrive.
    core::TMarkClassifier cold(config);
    cold.Fit(hin, *wave);
    const std::size_t cold_iters = TotalIterations(cold);

    incremental.Refit(hin, *wave);
    const std::size_t warm_iters = TotalIterations(incremental);
    const double drift =
        incremental.Confidences().MaxAbsDiff(cold.Confidences());
    std::printf("refit @%2.0f%% labels             %zu (cold: %zu)   "
                "max drift vs cold fit: %.2e\n",
                100.0 * static_cast<double>(wave->size()) /
                    static_cast<double>(hin.num_nodes()),
                warm_iters, cold_iters, drift);
  }
  std::printf("\nwarm starts land on the same unique fixed point; when the "
              "problem is unchanged they are\nalready stationary, and when labels shift they converge from nearby.\n");
  return 0;
}
