// Extension example: incremental (warm-start) refitting. A live HIN keeps
// acquiring labels — rerunning T-Mark from scratch wastes the work the
// chain already did. TMarkClassifier::Refit seeds Algorithm 1 from the
// previous stationary distributions, cutting iterations while landing on
// the same unique fixed point (Theorem 3 guarantees uniqueness for a fixed
// restart vector).
//
// The second half goes further: the *network itself* changes. A HinDelta
// batches edge adds/removes/reweights, feature-row updates, and new labels;
// TMarkClassifier::Update applies it, patches the prepared operators in
// place (renormalizing only the touched O columns / R rows), and warm-starts
// the refresh — instead of rebuilding every operator and refitting cold.

#include <cstddef>
#include <cstdio>
#include <utility>
#include <vector>

#include "tmark/core/tmark.h"
#include "tmark/datasets/dblp.h"
#include "tmark/eval/experiment.h"
#include "tmark/hin/hin_delta.h"
#include "tmark/la/sparse_matrix.h"
#include "tmark/obs/trace.h"

namespace {

using namespace tmark;

std::size_t TotalIterations(const core::TMarkClassifier& clf) {
  std::size_t total = 0;
  for (const core::ConvergenceTrace& trace : clf.Traces()) {
    total += trace.residuals.size();
  }
  return total;
}

}  // namespace

int main() {
  datasets::DblpOptions options;
  options.num_authors = 400;
  const hin::Hin hin = datasets::MakeDblp(options);

  // Labels arrive in waves: 10% -> 20% -> 40% of the authors.
  Rng rng(99);
  const auto wave1 = eval::StratifiedSplit(hin, 0.10, &rng);
  const auto wave2 = eval::StratifiedSplit(hin, 0.20, &rng);
  const auto wave3 = eval::StratifiedSplit(hin, 0.40, &rng);

  core::TMarkConfig config;
  config.ica_update = false;  // fixed restart -> unique fixed point
  core::TMarkClassifier incremental(config);

  std::printf("%-28s %-12s %-10s\n", "stage", "iterations", "accuracy");
  incremental.Fit(hin, wave1);
  std::printf("%-28s %-12zu %.3f\n", "cold fit @10% labels",
              TotalIterations(incremental),
              eval::EvaluateClassifier(hin, &incremental, wave1, false, 0.5));

  // Same problem, warm start: the chain is already at its fixed point.
  {
    core::TMarkClassifier same = incremental;
    same.Refit(hin, wave1);
    std::printf("%-28s %-12zu (already stationary)\n",
                "refit, unchanged problem", TotalIterations(same));
  }

  for (const auto* wave : {&wave2, &wave3}) {
    // Warm-started update as new labels arrive.
    core::TMarkClassifier cold(config);
    cold.Fit(hin, *wave);
    const std::size_t cold_iters = TotalIterations(cold);

    incremental.Refit(hin, *wave);
    const std::size_t warm_iters = TotalIterations(incremental);
    const double drift =
        incremental.Confidences().MaxAbsDiff(cold.Confidences());
    std::printf("refit @%2.0f%% labels             %zu (cold: %zu)   "
                "max drift vs cold fit: %.2e\n",
                100.0 * static_cast<double>(wave->size()) /
                    static_cast<double>(hin.num_nodes()),
                warm_iters, cold_iters, drift);
  }
  // --- The network itself changes: patch, don't rebuild. -----------------
  // A small delta touching every mutation kind: reweight and remove two
  // stored edges of relation 0, add an absent edge to relation 1, replace a
  // feature row, and label one more author.
  hin::Hin live = hin;
  hin::HinDelta delta;
  {
    const la::SparseMatrix& r0 = live.relation(0);
    std::vector<std::pair<std::size_t, std::size_t>> stored;  // (dst, src)
    for (std::size_t i = 0; i < r0.rows() && stored.size() < 2; ++i) {
      for (std::size_t p = r0.row_ptr()[i];
           p < r0.row_ptr()[i + 1] && stored.size() < 2; ++p) {
        stored.emplace_back(i, r0.col_idx()[p]);
      }
    }
    delta.ReweightEdge(0, stored[0].second, stored[0].first, 2.0);
    delta.RemoveEdge(0, stored[1].second, stored[1].first);
    const la::SparseMatrix& r1 = live.relation(1);
    for (std::size_t i = 0; i < r1.rows(); ++i) {
      const std::size_t j = (i + 11) % live.num_nodes();
      if (i != j && r1.FindEntry(i, j) == la::SparseMatrix::npos) {
        delta.AddEdge(1, j, i, 1.0);
        break;
      }
    }
    delta.UpdateFeatureRow(2, {{0, 1.5}, {3, 0.5}});
    // The preset labels every author, so grow a label set instead: give the
    // first author without class 0 that class as a secondary label.
    for (std::size_t node = 0; node < live.num_nodes(); ++node) {
      if (!live.HasLabel(node, 0)) {
        delta.AddLabel(node, 0);
        break;
      }
    }
  }

  obs::Stopwatch patch_watch;
  if (const Status status = incremental.Update(&live, delta, wave3);
      !status.ok()) {
    std::printf("Update failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const double patch_ms = patch_watch.ElapsedMs();
  const std::size_t patch_iters = TotalIterations(incremental);

  // The alternative: rebuild every operator and refit cold on the mutated
  // network. Same fixed point, much more work.
  obs::Stopwatch rebuild_watch;
  core::TMarkClassifier rebuilt(config);
  rebuilt.Fit(live, wave3);
  const double rebuild_ms = rebuild_watch.ElapsedMs();
  const std::size_t rebuild_iters = TotalIterations(rebuilt);

  std::printf("\nedge/feature/label delta (%zu ops):\n", delta.size());
  std::printf("  Update (patch + warm refresh)   %8.2f ms   %zu iterations\n",
              patch_ms, patch_iters);
  std::printf("  rebuild + cold fit              %8.2f ms   %zu iterations\n",
              rebuild_ms, rebuild_iters);
  std::printf("  max drift patched vs rebuilt: %.2e\n",
              incremental.Confidences().MaxAbsDiff(rebuilt.Confidences()));

  std::printf("\nwarm starts land on the same unique fixed point; when the "
              "problem is unchanged they are\nalready stationary, and when "
              "labels or the network shift they converge from nearby.\n");
  return 0;
}
