// Domain example: predict movie genres from director links and user tags —
// the *sparse-link* regime of the paper's Movies experiment (Table 4),
// where ensembling all link types (EMR) is competitive with tensor-based
// propagation, and link ranking surfaces each genre's signature directors
// (Table 5).

#include <cstdio>

#include "tmark/baselines/emr.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/movies.h"
#include "tmark/eval/experiment.h"

int main() {
  using namespace tmark;

  datasets::MoviesOptions options;
  options.num_movies = 500;
  options.num_directors = 300;
  const hin::Hin hin = datasets::MakeMovies(options);
  std::printf("movie HIN: %zu movies, %zu director link types, %zu "
              "genres, %zu stored links (sparse!)\n\n",
              hin.num_nodes(), hin.num_relations(), hin.num_classes(),
              hin.NumLinks());

  Rng rng(7);
  const std::vector<std::size_t> labeled =
      eval::StratifiedSplit(hin, 0.3, &rng);

  // T-Mark with the paper's Movies settings.
  core::TMarkConfig config;
  config.alpha = 0.9;
  config.gamma = 0.6;
  core::TMarkClassifier tmark(config);
  const double acc_tmark =
      eval::EvaluateClassifier(hin, &tmark, labeled, false, 0.5);

  // EMR: the method the paper reports as strongest on this dataset.
  baselines::EmrClassifier emr;
  const double acc_emr =
      eval::EvaluateClassifier(hin, &emr, labeled, false, 0.5);

  std::printf("held-out accuracy with 30%% labels:  T-Mark %.3f   EMR "
              "%.3f\n", acc_tmark, acc_emr);
  std::printf("(the paper's Table 4 regime: sparse director links favor "
              "EMR's aggregation)\n\n");

  // Genre-defining directors from the stationary link importance.
  std::printf("top-5 directors per genre (T-Mark link ranking):\n");
  for (std::size_t genre = 0; genre < hin.num_classes(); ++genre) {
    const std::vector<std::size_t> ranking =
        tmark.RankRelationsForClass(genre);
    std::printf("  %-12s:", hin.class_name(genre).c_str());
    for (std::size_t r = 0; r < 5; ++r) {
      std::printf("%s%s", r == 0 ? " " : ", ",
                  hin.relation_name(ranking[r]).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
