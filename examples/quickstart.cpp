// Quickstart: build a tiny heterogeneous information network by hand,
// classify its unlabeled nodes with T-Mark, and read off the link ranking.
//
// The scenario is a six-person collaboration network with two link types —
// "co-author" (strongly tied to research community) and "same-building"
// (where people sit, nearly unrelated to community) — and bag-of-words
// profiles. Two people per community are labeled; T-Mark labels the rest
// and reports which link type actually mattered.

#include <cstdio>

#include "tmark/core/tmark.h"
#include "tmark/hin/hin_builder.h"

int main() {
  using namespace tmark;

  // 1. Assemble the HIN: 6 nodes, 2 link types, 4-word vocabulary.
  hin::HinBuilder builder(/*num_nodes=*/6, /*feature_dim=*/4);
  const std::size_t ml = builder.AddClass("machine-learning");
  const std::size_t db = builder.AddClass("databases");
  const std::size_t coauthor = builder.AddRelation("co-author");
  const std::size_t building = builder.AddRelation("same-building");

  // Co-authorship follows communities: {0,1,2} are ML folks, {3,4,5} DB.
  builder.AddUndirectedEdge(coauthor, 0, 1);
  builder.AddUndirectedEdge(coauthor, 1, 2);
  builder.AddUndirectedEdge(coauthor, 0, 2);
  builder.AddUndirectedEdge(coauthor, 3, 4);
  builder.AddUndirectedEdge(coauthor, 4, 5);
  // Office assignment is mixed — a noisy link type.
  builder.AddUndirectedEdge(building, 0, 3);
  builder.AddUndirectedEdge(building, 1, 4);
  builder.AddUndirectedEdge(building, 2, 3);
  builder.AddUndirectedEdge(building, 2, 5);

  // Word counts: dims {0,1} are ML jargon, {2,3} DB jargon.
  const double profiles[6][4] = {
      {3, 2, 0, 0}, {2, 2, 1, 0}, {3, 1, 0, 1},
      {0, 1, 2, 3}, {0, 0, 3, 2}, {1, 0, 2, 2},
  };
  for (std::size_t node = 0; node < 6; ++node) {
    for (std::size_t d = 0; d < 4; ++d) {
      if (profiles[node][d] > 0) {
        builder.AddFeature(node, d, profiles[node][d]);
      }
    }
  }

  // Ground truth for everyone (the classifier only sees the labeled split).
  for (std::size_t node : {0, 1, 2}) builder.SetLabel(node, ml);
  for (std::size_t node : {3, 4, 5}) builder.SetLabel(node, db);
  const hin::Hin hin = std::move(builder).Build();

  // 2. Fit T-Mark with one labeled node per community.
  core::TMarkConfig config;
  config.alpha = 0.8;   // restart strength (trust in the labels)
  config.gamma = 0.5;   // balance between links and features
  core::TMarkClassifier classifier(config);
  classifier.Fit(hin, /*labeled=*/{0, 4});

  // 3. Read predictions and confidences.
  std::printf("node  predicted           truth               conf(ML) "
              "conf(DB)\n");
  const std::vector<std::size_t> predicted =
      classifier.PredictSingleLabel();
  for (std::size_t node = 0; node < hin.num_nodes(); ++node) {
    std::printf("%4zu  %-18s  %-18s  %.4f   %.4f\n", node,
                hin.class_name(predicted[node]).c_str(),
                hin.class_name(hin.PrimaryLabel(node)).c_str(),
                classifier.Confidences().At(node, ml),
                classifier.Confidences().At(node, db));
  }

  // 4. The simultaneous link ranking: co-author should dominate.
  std::printf("\nlink importance (class %s):\n",
              hin.class_name(ml).c_str());
  for (std::size_t rank_pos : classifier.RankRelationsForClass(ml)) {
    std::printf("  %-14s z = %.4f\n",
                hin.relation_name(rank_pos).c_str(),
                classifier.LinkImportance().At(rank_pos, ml));
  }
  return 0;
}
