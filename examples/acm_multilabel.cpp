// Domain example: multi-label index-term prediction on the ACM-style
// publication HIN (Sec. 6.4). Shows the multi-label prediction API, the
// macro-F1 evaluation, the per-class link-importance profile of Fig. 5,
// and a comparison against the related-work extension baselines
// (RankClass, GNetMine, ZooBP) that share T-Mark's propagation flavor.

#include <cstdio>

#include "tmark/baselines/registry.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/acm.h"
#include "tmark/eval/experiment.h"
#include "tmark/ml/metrics.h"

int main() {
  using namespace tmark;

  datasets::AcmOptions options;
  options.num_publications = 450;
  const hin::Hin hin = datasets::MakeAcm(options);
  std::printf("ACM HIN: %zu publications, %zu link types, %zu index "
              "terms (multi-label)\n\n",
              hin.num_nodes(), hin.num_relations(), hin.num_classes());

  Rng rng(42);
  const auto labeled = eval::StratifiedSplit(hin, 0.2, &rng);

  // Macro-F1 of T-Mark against propagation-style alternatives.
  std::printf("macro-F1 with 20%% labels:\n");
  for (const char* method : {"T-Mark", "RankClass", "GNetMine", "ZooBP"}) {
    auto clf = baselines::MakeClassifier(method, /*alpha=*/0.9, 0.6);
    const double f1 = eval::EvaluateClassifier(hin, clf.get(), labeled,
                                               /*multi_label=*/true, 0.5);
    std::printf("  %-10s %.3f\n", method, f1);
  }

  // Fig. 5's question: which link types matter for which index terms?
  core::TMarkConfig config;
  config.alpha = 0.9;
  core::TMarkClassifier tmark(config);
  tmark.Fit(hin, labeled);
  std::printf("\nlink importance per index term (stationary z):\n  %-36s",
              "");
  for (std::size_t k = 0; k < hin.num_relations(); ++k) {
    std::printf(" %-11s", hin.relation_name(k).c_str());
  }
  std::printf("\n");
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    std::printf("  %-36s", hin.class_name(c).c_str());
    for (std::size_t k = 0; k < hin.num_relations(); ++k) {
      std::printf(" %-11.3f", tmark.LinkImportance().At(k, c));
    }
    std::printf("\n");
  }

  // Multi-label prediction for one unlabeled publication.
  std::vector<bool> is_labeled(hin.num_nodes(), false);
  for (std::size_t node : labeled) is_labeled[node] = true;
  const auto sets = tmark.PredictMultiLabel(0.5);
  for (std::size_t node = 0; node < hin.num_nodes(); ++node) {
    if (is_labeled[node] || hin.labels(node).size() < 2) continue;
    std::printf("\nexample publication %zu — predicted terms:", node);
    for (std::size_t c : sets[node]) {
      std::printf(" [%s]", hin.class_name(c).c_str());
    }
    std::printf("\n  ground truth:");
    for (std::uint32_t c : hin.labels(node)) {
      std::printf(" [%s]", hin.class_name(c).c_str());
    }
    std::printf("\n");
    break;
  }
  return 0;
}
