// Domain example: the link-selection workflow of the paper's Sec. 6.3,
// applied to image tagging. Given a pool of candidate tag link types, use
// T-Mark's stationary link importance to identify the tags that actually
// discriminate the classes, then show that a HIN restricted to relevant
// tags (Tagset1) classifies far better than one built from merely popular
// tags (Tagset2) — no matter how much labeled data the popular-tag HIN
// gets.

#include <cstdio>

#include "tmark/core/tmark.h"
#include "tmark/datasets/nus.h"
#include "tmark/eval/experiment.h"

namespace {

using namespace tmark;

double Evaluate(const hin::Hin& hin, double fraction, std::uint64_t seed,
                core::TMarkClassifier* clf) {
  Rng rng(seed);
  const std::vector<std::size_t> labeled =
      eval::StratifiedSplit(hin, fraction, &rng);
  return eval::EvaluateClassifier(hin, clf, labeled, false, 0.5);
}

}  // namespace

int main() {
  datasets::NusOptions options;
  options.num_images = 700;
  const hin::Hin relevant = datasets::MakeNus(options);
  options.tagset = datasets::NusTagset::kTagset2;
  const hin::Hin popular = datasets::MakeNus(options);

  core::TMarkConfig config;
  config.alpha = 0.9;
  config.gamma = 0.4;

  std::printf("accuracy by labeled fraction (T-Mark):\n");
  std::printf("  %%labeled   relevant-tags HIN   popular-tags HIN\n");
  core::TMarkClassifier clf1(config), clf2(config);
  for (double fraction : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double acc1 = Evaluate(relevant, fraction, 17, &clf1);
    const double acc2 = Evaluate(popular, fraction, 17, &clf2);
    std::printf("  %5.0f%%      %.3f               %.3f\n",
                100.0 * fraction, acc1, acc2);
  }
  std::printf("\nthe popular-tag HIN stalls: its links are frequent but "
              "class-blind (Sec. 6.3).\n\n");

  // Which tags did T-Mark rank as class-defining on the relevant HIN?
  std::printf("tag relevance ranking from the stationary z (top 8 per "
              "class):\n");
  for (std::size_t c = 0; c < relevant.num_classes(); ++c) {
    std::printf("  %-7s:", relevant.class_name(c).c_str());
    const std::vector<std::size_t> ranking = clf1.RankRelationsForClass(c);
    for (std::size_t r = 0; r < 8; ++r) {
      std::printf("%s%s", r == 0 ? " " : ", ",
                  relevant.relation_name(ranking[r]).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
