// Domain example: classify DBLP authors into research areas from their
// conference links and publication-title words, then compare T-Mark against
// a classical ICA baseline under scarce supervision — the regime the paper
// highlights (Table 3, <= 20% labels).
//
// Also demonstrates the serialization API: the generated HIN is written to
// and reloaded from a file, as a downstream user would do with real data.

#include <cstdio>
#include <string>

#include "tmark/baselines/ica.h"
#include "tmark/core/tmark.h"
#include "tmark/datasets/dblp.h"
#include "tmark/eval/experiment.h"
#include "tmark/hin/hin_io.h"

int main() {
  using namespace tmark;

  // 1. Build (or in real use: load) the author HIN.
  datasets::DblpOptions options;
  options.num_authors = 400;
  const hin::Hin generated = datasets::MakeDblp(options);
  const std::string path = "/tmp/tmark_dblp_example.hin";
  const Status save_status = hin::SaveHinToFile(generated, path);
  if (!save_status.ok()) {
    std::fprintf(stderr, "%s\n", save_status.ToString().c_str());
    return 1;
  }
  const Result<hin::Hin> loaded = hin::LoadHinFromFile(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const hin::Hin& hin = *loaded;
  std::printf("loaded %zu authors, %zu conference link types, %zu areas "
              "from %s\n\n",
              hin.num_nodes(), hin.num_relations(), hin.num_classes(),
              path.c_str());

  // 2. Label only 10%% of the authors, stratified by area.
  Rng rng(2026);
  const std::vector<std::size_t> labeled =
      eval::StratifiedSplit(hin, 0.10, &rng);
  std::printf("labeled %zu / %zu authors (10%%)\n", labeled.size(),
              hin.num_nodes());

  // 3. T-Mark vs ICA on the held-out authors.
  core::TMarkClassifier tmark;
  const double acc_tmark =
      eval::EvaluateClassifier(hin, &tmark, labeled, false, 0.5);
  baselines::IcaClassifier ica;
  const double acc_ica =
      eval::EvaluateClassifier(hin, &ica, labeled, false, 0.5);
  std::printf("\nheld-out accuracy:  T-Mark %.3f   ICA %.3f\n", acc_tmark,
              acc_ica);

  // 4. Which conferences define each area? (Table 2's question.)
  std::printf("\ntop-3 conferences per area (T-Mark link ranking):\n");
  for (std::size_t area = 0; area < hin.num_classes(); ++area) {
    const std::vector<std::size_t> ranking =
        tmark.RankRelationsForClass(area);
    std::printf("  %-3s:", hin.class_name(area).c_str());
    for (std::size_t r = 0; r < 3; ++r) {
      std::printf(" %s", hin.relation_name(ranking[r]).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
