#include "tmark/tensor/transition_tensors.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

#include "tmark/common/check.h"
#include "tmark/la/microkernel.h"
#include "tmark/obs/metrics.h"
#include "tmark/obs/prof.h"
#include "tmark/obs/trace.h"

namespace tmark::tensor {

TransitionTensors TransitionTensors::Build(const SparseTensor3& adjacency) {
  TMARK_CHECK_MSG(adjacency.IsNonNegative(),
                  "adjacency tensor must be non-negative");
  obs::TraceSpan span("tensor.transition.build");
  obs::ScopedTimer timer("tensor.transition.build_ms");
  const std::size_t n = adjacency.num_nodes();
  const std::size_t m = adjacency.num_relations();
  TransitionTensors t;
  t.n_ = n;
  t.m_ = m;
  t.dangling_cols_.resize(m);

  // O: column-normalize each slice; remember which (j,k) columns were empty.
  std::vector<la::SparseMatrix> o_slices;
  o_slices.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    std::vector<bool> dangling;
    o_slices.push_back(adjacency.Slice(k).NormalizeColumnsSparse(&dangling));
    for (std::size_t j = 0; j < n; ++j) {
      if (dangling[j]) {
        t.dangling_cols_[k].push_back(static_cast<std::uint32_t>(j));
      }
    }
  }
  t.o_ = SparseTensor3::FromSlices(std::move(o_slices));

  // R: normalize each (i,j) fiber over k. totals[i][j] = sum_k A[i,j,k]
  // is only needed on the union support, which is SumOverRelations().
  const la::SparseMatrix totals = adjacency.SumOverRelations();
  const la::IndexArray& totals_row_ptr = totals.row_ptr();
  const std::vector<std::uint32_t>& totals_cols = totals.col_idx();
  const std::vector<double>& totals_vals = totals.values();
  std::vector<la::SparseMatrix> r_slices;
  r_slices.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    la::SparseMatrix slice = adjacency.Slice(k);  // copy, then scale in place
    std::vector<double>& vals = slice.mutable_values();
    for (std::size_t i = 0; i < n; ++i) {
      // Merged CSR row walk: both rows are column-sorted and the totals row
      // supports a superset of the slice row, so one forward cursor finds
      // every divisor in O(nnz) total (vs. a binary search per entry). The
      // fetched divisor is the same double as before, so R is unchanged.
      std::size_t t_pos = totals_row_ptr[i];
      const std::size_t t_end = totals_row_ptr[i + 1];
      for (std::size_t p = slice.row_ptr()[i]; p < slice.row_ptr()[i + 1];
           ++p) {
        const std::uint32_t j = slice.col_idx()[p];
        while (t_pos < t_end && totals_cols[t_pos] < j) ++t_pos;
        // The total is > 0 because this (i,j) pair has a stored entry in
        // slice k; the cursor must land on it while still inside row i.
        TMARK_CHECK_MSG(t_pos < t_end && totals_cols[t_pos] == j,
                        "R-normalization: totals row " << i
                            << " is missing column " << j
                            << " (superset invariant violated)");
        vals[p] /= totals_vals[t_pos];
      }
    }
    r_slices.push_back(std::move(slice));
  }
  t.r_ = SparseTensor3::FromSlices(std::move(r_slices));

  // Linked mask: 1.0 wherever any relation links (i, j).
  {
    std::vector<la::Triplet> trips;
    trips.reserve(totals.NumNonZeros());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t p = totals.row_ptr()[i]; p < totals.row_ptr()[i + 1];
           ++p) {
        if (totals.values()[p] > 0.0) {
          trips.push_back(
              {static_cast<std::uint32_t>(i), totals.col_idx()[p], 1.0});
        }
      }
    }
    t.linked_mask_ = la::SparseMatrix::FromTriplets(n, n, std::move(trips));
  }
  // Build the merged panel-contraction views up front: the operators are
  // immutable from here on, and preparing them now keeps the panel kernels
  // safe to call from several fits concurrently (lazy build mutates).
  t.o_.PrepareMergedView();
  t.r_.PrepareMergedView();
  if (obs::MetricsEnabled()) {
    obs::IncrCounter("tensor.transition.builds");
    obs::SetGauge("tensor.transition.nnz_o",
                  static_cast<double>(t.o_.NumNonZeros()));
    obs::SetGauge("tensor.transition.nnz_r",
                  static_cast<double>(t.r_.NumNonZeros()));
    // Scaling telemetry: structure footprint of the merged views, the
    // offset width the IndexArrays picked, and the LLC shard plan size
    // (docs/PERFORMANCE.md "Scaling").
    obs::SetGauge("tensor.merged.bytes",
                  static_cast<double>(t.o_.MergedViewStorageBytes() +
                                      t.r_.MergedViewStorageBytes()));
    obs::SetGauge("tensor.merged.index_bits",
                  static_cast<double>(std::max(t.o_.MergedViewIndexBits(),
                                               t.r_.MergedViewIndexBits())));
    obs::SetGauge("tensor.merged.shards",
                  static_cast<double>(t.o_.MergedShardCount() +
                                      t.r_.MergedShardCount()));
  }
  if (span.active()) {
    span.AddField("nodes", n);
    span.AddField("relations", m);
    span.AddField("nnz", adjacency.NumNonZeros());
  }
  return t;
}

std::size_t TransitionTensors::ApplyPatch(
    const std::vector<const la::SparseMatrix*>& adjacency,
    const AdjacencyDelta& delta) {
  TMARK_CHECK(adjacency.size() == m_);
  obs::TraceSpan span("tensor.transition.patch");
  obs::ScopedTimer timer("tensor.transition.patch_ms");
  std::size_t rows_touched = 0;
  std::size_t reshards = 0;

  // O: renormalize the edited slices through the full-build kernel
  // (NormalizeColumnsSparse on the mutated adjacency slice — the identical
  // computation Build runs, so the slice is bit-identical by construction),
  // and rebuild their dangling-column lists wholesale.
  std::vector<char> edited(m_, 0);
  for (std::size_t k : delta.relations) {
    TMARK_CHECK(k < m_);
    edited[k] = 1;
    std::vector<bool> dangling;
    la::SparseMatrix o_new = adjacency[k]->NormalizeColumnsSparse(&dangling);
    dangling_cols_[k].clear();
    for (std::size_t j = 0; j < n_; ++j) {
      if (dangling[j]) {
        dangling_cols_[k].push_back(static_cast<std::uint32_t>(j));
      }
    }
    bool reshard = false;
    rows_touched += o_.ReplaceSlice(k, std::move(o_new), &reshard);
    if (reshard) ++reshards;
  }

  // Totals sum_k A[i,j,k] for the pairs that need one, accumulated over
  // relations in ascending k — the same sequential chain (and therefore the
  // same doubles) as the full build's SumOverRelations. Relations without
  // the entry contribute +0.0, a bit-level no-op on the positive partials.
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> totals;
  const auto total_of = [&](std::uint32_t i, std::uint32_t j) {
    const auto it = totals.find({i, j});
    if (it != totals.end()) return it->second;
    double total = 0.0;
    for (std::size_t k = 0; k < m_; ++k) total += adjacency[k]->At(i, j);
    totals.emplace(std::make_pair(i, j), total);
    return total;
  };

  // R: rows whose stored structure changed are regenerated wholesale (every
  // entry re-divided — unchanged pairs fetch the same totals, hence the
  // same doubles); every other affected pair gets a value-only edit at the
  // entry position the aligned adjacency structure dictates.
  for (std::size_t k = 0; k < m_; ++k) {
    const la::SparseMatrix& adj = *adjacency[k];
    std::vector<std::uint32_t> structural_rows;
    if (edited[k]) {
      const la::SparseMatrix& old_r = r_.Slice(k);
      std::vector<la::RowEdit> row_edits;
      for (std::size_t i = 0; i < n_; ++i) {
        const std::size_t ob = old_r.row_ptr()[i];
        const std::size_t oe = old_r.row_ptr()[i + 1];
        const std::size_t nb = adj.row_ptr()[i];
        const std::size_t ne = adj.row_ptr()[i + 1];
        bool structural = (oe - ob) != (ne - nb);
        if (!structural && oe != ob) {
          structural = std::memcmp(old_r.col_idx().data() + ob,
                                   adj.col_idx().data() + nb,
                                   (oe - ob) * sizeof(std::uint32_t)) != 0;
        }
        if (!structural) continue;
        structural_rows.push_back(static_cast<std::uint32_t>(i));
        la::RowEdit e;
        e.row = i;
        e.cols.assign(adj.col_idx().begin() + nb, adj.col_idx().begin() + ne);
        e.values.reserve(ne - nb);
        for (std::size_t p = nb; p < ne; ++p) {
          e.values.push_back(
              adj.values()[p] /
              total_of(static_cast<std::uint32_t>(i), adj.col_idx()[p]));
        }
        row_edits.push_back(std::move(e));
      }
      if (!row_edits.empty()) {
        bool reshard = false;
        rows_touched += r_.PatchSliceRows(k, std::move(row_edits), &reshard);
        if (reshard) ++reshards;
      }
    }
    std::vector<std::pair<std::size_t, double>> value_edits;
    for (const std::pair<std::uint32_t, std::uint32_t>& pr : delta.pairs) {
      if (std::binary_search(structural_rows.begin(), structural_rows.end(),
                             pr.first)) {
        continue;
      }
      const std::size_t pos = adj.FindEntry(pr.first, pr.second);
      if (pos == la::SparseMatrix::npos) continue;
      value_edits.emplace_back(pos,
                               adj.values()[pos] /
                                   total_of(pr.first, pr.second));
    }
    if (!value_edits.empty()) {
      rows_touched += r_.PatchSliceValues(k, value_edits);
    }
  }

  // Linked mask: splice the pairs that transitioned linked <-> unlinked
  // (values all 1.0, columns kept sorted — the content FromTriplets on the
  // mutated totals support would assemble).
  {
    std::map<std::uint32_t, std::vector<std::pair<std::uint32_t, bool>>>
        changes;
    for (const std::pair<std::uint32_t, std::uint32_t>& pr : delta.pairs) {
      const bool now = total_of(pr.first, pr.second) > 0.0;
      const bool was =
          linked_mask_.FindEntry(pr.first, pr.second) != la::SparseMatrix::npos;
      if (now != was) changes[pr.first].emplace_back(pr.second, now);
    }
    if (!changes.empty()) {
      std::vector<la::RowEdit> edits;
      edits.reserve(changes.size());
      for (auto& change : changes) {
        const std::uint32_t i = change.first;
        std::vector<std::pair<std::uint32_t, bool>>& mods = change.second;
        std::sort(mods.begin(), mods.end());
        la::RowEdit e;
        e.row = i;
        std::size_t mp = 0;
        for (std::size_t p = linked_mask_.row_ptr()[i];
             p < linked_mask_.row_ptr()[i + 1]; ++p) {
          const std::uint32_t c = linked_mask_.col_idx()[p];
          while (mp < mods.size() && mods[mp].first < c) {
            if (mods[mp].second) {
              e.cols.push_back(mods[mp].first);
              e.values.push_back(1.0);
            }
            ++mp;
          }
          if (mp < mods.size() && mods[mp].first == c) {
            ++mp;  // A stored column in the change list is a removal.
            continue;
          }
          e.cols.push_back(c);
          e.values.push_back(1.0);
        }
        for (; mp < mods.size(); ++mp) {
          if (mods[mp].second) {
            e.cols.push_back(mods[mp].first);
            e.values.push_back(1.0);
          }
        }
        edits.push_back(std::move(e));
      }
      linked_mask_.ApplyRowEdits(std::move(edits));
    }
  }

  obs::IncrCounter("update.rows_touched",
                   static_cast<std::int64_t>(rows_touched));
  if (reshards > 0) {
    obs::IncrCounter("update.reshards", static_cast<std::int64_t>(reshards));
  }
  if (obs::MetricsEnabled()) {
    obs::SetGauge("tensor.merged.bytes",
                  static_cast<double>(o_.MergedViewStorageBytes() +
                                      r_.MergedViewStorageBytes()));
    obs::SetGauge("tensor.merged.index_bits",
                  static_cast<double>(std::max(o_.MergedViewIndexBits(),
                                               r_.MergedViewIndexBits())));
    obs::SetGauge("tensor.merged.shards",
                  static_cast<double>(o_.MergedShardCount() +
                                      r_.MergedShardCount()));
  }
  if (span.active()) {
    span.AddField("relations", delta.relations.size());
    span.AddField("pairs", delta.pairs.size());
    span.AddField("rows", rows_touched);
  }
  return rows_touched;
}

la::Vector TransitionTensors::ApplyO(const la::Vector& x,
                                     const la::Vector& z) const {
  la::Vector y;
  ApplyOInto(x, z, &y);
  return y;
}

void TransitionTensors::ApplyOInto(const la::Vector& x, const la::Vector& z,
                                   la::Vector* y) const {
  TMARK_PROF_REGION("tensor.apply_o");
  TMARK_CHECK(y != nullptr && x.size() == n_ && z.size() == m_);
  o_.ContractMode1Into(x, z, y);
  // Dangling correction: every empty column (j,k) contributes
  // x_j * z_k * (1/n) to every output coordinate.
  double dangling_mass = 0.0;
  for (std::size_t k = 0; k < m_; ++k) {
    if (dangling_cols_[k].empty() || z[k] == 0.0) continue;
    double colsum = 0.0;
    for (std::uint32_t j : dangling_cols_[k]) colsum += x[j];
    dangling_mass += z[k] * colsum;
  }
  if (dangling_mass != 0.0) {
    const double add = dangling_mass / static_cast<double>(n_);
    for (double& v : *y) v += add;
  }
}

la::Vector TransitionTensors::ApplyR(const la::Vector& x,
                                     const la::Vector& y) const {
  la::Vector w;
  ApplyRInto(x, y, &w);
  return w;
}

void TransitionTensors::ApplyRInto(const la::Vector& x, const la::Vector& y,
                                   la::Vector* w) const {
  TMARK_PROF_REGION("tensor.apply_r");
  TMARK_CHECK(w != nullptr && x.size() == n_ && y.size() == n_);
  r_.ContractMode3Into(x, y, w);
  // Dangling correction: unlinked (i,j) pairs carry the uniform fiber 1/m.
  // sum_{unlinked} x_i y_j = Sum(x) * Sum(y) - sum_{linked} x_i y_j.
  const double linked = linked_mask_.Bilinear(x, y);
  const double unlinked = la::Sum(x) * la::Sum(y) - linked;
  const double add = unlinked / static_cast<double>(m_);
  for (double& v : *w) v += add;
}

void TransitionTensors::ApplyOPanel(const la::DenseMatrix& x,
                                    const la::DenseMatrix& z,
                                    std::size_t width, la::DenseMatrix* y,
                                    la::PanelWorkspace* ws) const {
  TMARK_PROF_REGION("tensor.apply_o_panel");
  TMARK_CHECK(y != nullptr && ws != nullptr);
  TMARK_CHECK(x.rows() == n_ && z.rows() == m_ && y->rows() == n_);
  TMARK_CHECK(width <= x.cols());
  o_.ContractMode1Panel(x, z, width, y, ws);
  // Dangling correction, column-wise: per column the per-relation terms
  // z(k, c) * colsum accumulate in ascending k and each colsum in ascending
  // dangling-node order — the exact ApplyO sequence. A column with
  // z(k, c) == 0 picks up a 0 * colsum term, leaving its mass unchanged.
  la::Vector& mass = ws->Buffer(0, width);
  la::Vector& colsum = ws->Buffer(1, width);
  for (std::size_t k = 0; k < m_; ++k) {
    if (dangling_cols_[k].empty()) continue;
    const double* zrow = z.RowPtr(k);
    if (!la::mk::AnyNonZero(zrow, width)) continue;
    la::mk::Zero(colsum.data(), width);
    for (std::uint32_t j : dangling_cols_[k]) {
      la::mk::Add(colsum.data(), x.RowPtr(j), width);
    }
    la::mk::MulAdd(mass.data(), zrow, colsum.data(), width);
  }
  if (!la::mk::AnyNonZero(mass.data(), width)) return;
  // Columns with zero mass receive a + 0.0 — the value ApplyO's skip keeps.
  for (std::size_t c = 0; c < width; ++c) {
    mass[c] /= static_cast<double>(n_);
  }
  for (std::size_t i = 0; i < n_; ++i) {
    la::mk::Add(y->RowPtr(i), mass.data(), width);
  }
}

void TransitionTensors::ApplyOPanelF32(const la::PanelF32& x,
                                       const la::DenseMatrix& z,
                                       std::size_t width, la::DenseMatrix* y,
                                       la::PanelWorkspace* ws) const {
  TMARK_PROF_REGION("tensor.apply_o_panel_f32");
  TMARK_CHECK(y != nullptr && ws != nullptr);
  TMARK_CHECK(x.rows() == n_ && z.rows() == m_ && y->rows() == n_);
  TMARK_CHECK(width <= x.cols());
  o_.ContractMode1PanelF32(x, z, width, y, ws);
  // The dangling correction mirrors ApplyOPanel step for step; the gathered
  // x rows are float (widened exactly into the double column sums), so the
  // correction carries the same demotion error as the contraction and
  // nothing more.
  la::Vector& mass = ws->Buffer(0, width);
  la::Vector& colsum = ws->Buffer(1, width);
  for (std::size_t k = 0; k < m_; ++k) {
    if (dangling_cols_[k].empty()) continue;
    const double* zrow = z.RowPtr(k);
    if (!la::mk::AnyNonZero(zrow, width)) continue;
    la::mk::Zero(colsum.data(), width);
    for (std::uint32_t j : dangling_cols_[k]) {
      la::mk::Add(colsum.data(), x.RowPtr(j), width);
    }
    la::mk::MulAdd(mass.data(), zrow, colsum.data(), width);
  }
  if (!la::mk::AnyNonZero(mass.data(), width)) return;
  for (std::size_t c = 0; c < width; ++c) {
    mass[c] /= static_cast<double>(n_);
  }
  for (std::size_t i = 0; i < n_; ++i) {
    la::mk::Add(y->RowPtr(i), mass.data(), width);
  }
}

void TransitionTensors::ApplyRPanel(const la::DenseMatrix& x,
                                    const la::DenseMatrix& y,
                                    std::size_t width, la::DenseMatrix* w,
                                    la::PanelWorkspace* ws,
                                    const la::Vector* x_sums,
                                    const la::Vector* y_sums,
                                    la::Vector* w_sums) const {
  TMARK_PROF_REGION("tensor.apply_r_panel");
  TMARK_CHECK(w != nullptr && ws != nullptr);
  TMARK_CHECK(x.rows() == n_ && y.rows() == n_ && w->rows() == m_);
  TMARK_CHECK(width <= x.cols());
  TMARK_CHECK(x_sums == nullptr || x_sums->size() >= width);
  TMARK_CHECK(y_sums == nullptr || y_sums->size() >= width);
  r_.ContractMode3Panel(x, y, width, w, ws);
  // Dangling-fiber correction per column, same formula as ApplyR:
  // add = (Sum(x) * Sum(y) - linked) / m, applied to every w entry. The
  // column sums come from the caller when it already has them (the fused
  // combine pass accumulates them in the same ascending row order).
  la::Vector& add = ws->Buffer(0, width);
  linked_mask_.BilinearPanel(x, y, width, add.data(), ws);
  const double* sumx;
  const double* sumy;
  if (x_sums != nullptr) {
    sumx = x_sums->data();
  } else {
    la::Vector& sx = ws->Buffer(1, width);
    la::LeadingColumnSums(x, width, &sx);
    sumx = sx.data();
  }
  if (y_sums != nullptr) {
    sumy = y_sums->data();
  } else if (&y == &x && x_sums != nullptr) {
    sumy = x_sums->data();
  } else {
    la::Vector& sy = ws->Buffer(2, width);
    la::LeadingColumnSums(y, width, &sy);
    sumy = sy.data();
  }
  for (std::size_t c = 0; c < width; ++c) {
    add[c] = (sumx[c] * sumy[c] - add[c]) / static_cast<double>(m_);
  }
  if (w_sums != nullptr) w_sums->assign(width, 0.0);
  for (std::size_t k = 0; k < m_; ++k) {
    double* wrow = w->RowPtr(k);
    la::mk::Add(wrow, add.data(), width);
    // Ascending-k accumulation = the row order LeadingColumnSums would use.
    if (w_sums != nullptr) la::mk::Add(w_sums->data(), wrow, width);
  }
}

double TransitionTensors::OEntry(std::size_t i, std::size_t j,
                                 std::size_t k) const {
  TMARK_CHECK(i < n_ && j < n_ && k < m_);
  const std::vector<std::uint32_t>& cols = dangling_cols_[k];
  if (std::binary_search(cols.begin(), cols.end(),
                         static_cast<std::uint32_t>(j))) {
    return 1.0 / static_cast<double>(n_);
  }
  return o_.At(i, j, k);
}

double TransitionTensors::REntry(std::size_t i, std::size_t j,
                                 std::size_t k) const {
  TMARK_CHECK(i < n_ && j < n_ && k < m_);
  if (linked_mask_.At(i, j) == 0.0) return 1.0 / static_cast<double>(m_);
  return r_.At(i, j, k);
}

la::DenseMatrix TransitionTensors::DenseOSlice(std::size_t k) const {
  la::DenseMatrix out(n_, n_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) out.At(i, j) = OEntry(i, j, k);
  }
  return out;
}

la::DenseMatrix TransitionTensors::DenseRSlice(std::size_t k) const {
  la::DenseMatrix out(n_, n_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) out.At(i, j) = REntry(i, j, k);
  }
  return out;
}

}  // namespace tmark::tensor
