#ifndef TMARK_TENSOR_MATRICIZATION_H_
#define TMARK_TENSOR_MATRICIZATION_H_

#include "tmark/la/sparse_matrix.h"
#include "tmark/tensor/sparse_tensor3.h"

namespace tmark::tensor {

/// Mode-1 matricization A_(1) of an (n x n x m) tensor: an n x (n*m) sparse
/// matrix whose column index is j + k*n (mode-2 fastest, matching the
/// worked example of Sec. 3.2 where A_(1) is 4 x 12). Column c of A_(1)
/// corresponds to the tensor column (·, j, k); normalizing its columns is
/// exactly the node-normalization of Eq. (1).
la::SparseMatrix MatricizeMode1(const SparseTensor3& a);

/// Mode-3 matricization A_(3): an m x (n*n) sparse matrix whose column index
/// is i + j*n (mode-1 fastest; A_(3) is 3 x 16 in the worked example).
/// Normalizing its columns is the relation-normalization of Eq. (2).
la::SparseMatrix MatricizeMode3(const SparseTensor3& a);

/// Inverse of MatricizeMode1: rebuilds the (n x n x m) tensor from its
/// mode-1 unfolding. Requires unfolded.cols() == n * m.
SparseTensor3 FoldMode1(const la::SparseMatrix& unfolded, std::size_t n,
                        std::size_t m);

}  // namespace tmark::tensor

#endif  // TMARK_TENSOR_MATRICIZATION_H_
