#include "tmark/tensor/matricization.h"

#include "tmark/common/check.h"

namespace tmark::tensor {

la::SparseMatrix MatricizeMode1(const SparseTensor3& a) {
  const std::size_t n = a.num_nodes();
  const std::size_t m = a.num_relations();
  std::vector<la::Triplet> trips;
  trips.reserve(a.NumNonZeros());
  for (const TensorEntry& e : a.Entries()) {
    trips.push_back({e.i, static_cast<std::uint32_t>(e.j + e.k * n), e.value});
  }
  return la::SparseMatrix::FromTriplets(n, n * m, std::move(trips));
}

la::SparseMatrix MatricizeMode3(const SparseTensor3& a) {
  const std::size_t n = a.num_nodes();
  const std::size_t m = a.num_relations();
  std::vector<la::Triplet> trips;
  trips.reserve(a.NumNonZeros());
  for (const TensorEntry& e : a.Entries()) {
    trips.push_back({e.k, static_cast<std::uint32_t>(e.i + e.j * n), e.value});
  }
  return la::SparseMatrix::FromTriplets(m, n * n, std::move(trips));
}

SparseTensor3 FoldMode1(const la::SparseMatrix& unfolded, std::size_t n,
                        std::size_t m) {
  TMARK_CHECK(unfolded.rows() == n && unfolded.cols() == n * m);
  std::vector<TensorEntry> entries;
  entries.reserve(unfolded.NumNonZeros());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t p = unfolded.row_ptr()[i]; p < unfolded.row_ptr()[i + 1];
         ++p) {
      const std::size_t c = unfolded.col_idx()[p];
      entries.push_back({static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(c % n),
                         static_cast<std::uint32_t>(c / n),
                         unfolded.values()[p]});
    }
  }
  return SparseTensor3::FromEntries(n, m, std::move(entries));
}

}  // namespace tmark::tensor
