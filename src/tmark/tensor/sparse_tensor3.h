#ifndef TMARK_TENSOR_SPARSE_TENSOR3_H_
#define TMARK_TENSOR_SPARSE_TENSOR3_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "tmark/la/panel_f32.h"
#include "tmark/la/sparse_matrix.h"

namespace tmark::tensor {

/// One (i, j, k, value) entry of a 3-way tensor.
struct TensorEntry {
  std::uint32_t i;  ///< First node index (destination of a walk step).
  std::uint32_t j;  ///< Second node index (source of a walk step).
  std::uint32_t k;  ///< Relation (link type) index.
  double value;
};

/// Sparse non-negative 3-way tensor A of size (n x n x m) representing a
/// multi-relational HIN: A[i,j,k] > 0 iff node j links to node i through the
/// k-th relation (Sec. 3.1 of the paper).
///
/// Storage is slice-major: one CSR matrix per relation k (the "front slices"
/// of Fig. 1(b)). This gives O(D) contraction kernels where D is the number
/// of stored non-zeros, matching the complexity analysis of Sec. 4.5.
class SparseTensor3 {
 public:
  /// Empty tensor (0 x 0 x 0).
  SparseTensor3() : n_(0), m_(0) {}

  /// All-zero tensor with n nodes and m relations.
  SparseTensor3(std::size_t n, std::size_t m);

  /// Assembles from entries; duplicates are summed. All values must index
  /// within (n, n, m).
  static SparseTensor3 FromEntries(std::size_t n, std::size_t m,
                                   std::vector<TensorEntry> entries);

  /// Builds from per-relation adjacency slices (all n x n).
  static SparseTensor3 FromSlices(std::vector<la::SparseMatrix> slices);

  /// Number of nodes n (modes 1 and 2).
  std::size_t num_nodes() const { return n_; }
  /// Number of relations m (mode 3).
  std::size_t num_relations() const { return m_; }
  /// Total stored non-zeros D across all slices.
  std::size_t NumNonZeros() const;

  /// Front slice A(:,:,k) as a CSR matrix over (i, j).
  const la::SparseMatrix& Slice(std::size_t k) const;
  la::SparseMatrix& MutableSlice(std::size_t k);

  /// Entry A[i,j,k]; zero when not stored.
  double At(std::size_t i, std::size_t j, std::size_t k) const;

  /// All stored entries (i, j, k, value), slice by slice.
  std::vector<TensorEntry> Entries() const;

  /// sum_k A[i,j,k] for every stored (i,j) pair, as a sparse n x n matrix.
  /// This is the aggregated single-relational graph used by several
  /// baselines, and the support of the relation-normalization in Eq. (2).
  la::SparseMatrix SumOverRelations() const;

  /// True iff every stored value is non-negative.
  bool IsNonNegative() const;

  /// True iff the aggregated graph, viewed as undirected, is connected —
  /// a practical proxy for the irreducibility assumption of Sec. 3.1.
  bool IsConnectedAggregate() const;

  /// mode-1 contraction: y_i = sum_{j,k} A[i,j,k] * x[j] * z[k]
  /// (the paper's A x1_bar x x3_bar z). Requires |x| = n and |z| = m.
  la::Vector ContractMode1(const la::Vector& x, const la::Vector& z) const;

  /// ContractMode1 into a caller-owned vector (warm calls allocate nothing).
  void ContractMode1Into(const la::Vector& x, const la::Vector& z,
                         la::Vector* y) const;

  /// mode-3 contraction: w_k = sum_{i,j} A[i,j,k] * x[i] * y[j]
  /// (the paper's A x1_bar x x2_bar y with x applied on mode 1 and y on
  /// mode 2). Requires |x| = |y| = n.
  la::Vector ContractMode3(const la::Vector& x, const la::Vector& y) const;

  /// ContractMode3 into a caller-owned vector (warm calls allocate nothing).
  void ContractMode3Into(const la::Vector& x, const la::Vector& y,
                         la::Vector* w) const;

  // Multi-RHS panel kernels (la/panel.h): one structure pass over the
  // stored slices updates the leading `width` columns of the output panel,
  // bit-identical per column to the single-vector contractions.

  /// y(i, c) = sum_{j,k} A[i,j,k] * x(j, c) * z(k, c) for c in [0, width).
  /// Requires x: n rows, z: m rows, y: n rows, all with equal column
  /// strides >= width. `ws` backs the per-chunk accumulator scratch.
  void ContractMode1Panel(const la::DenseMatrix& x, const la::DenseMatrix& z,
                          std::size_t width, la::DenseMatrix* y,
                          la::PanelWorkspace* ws) const;

  /// ContractMode1Panel with fp32 panel storage: gathers float x rows,
  /// accumulates in double (the opt-in TMarkConfig::fp32_panels mode). Same
  /// traversal and shard plan as the fp64 kernel; NOT bit-identical to it —
  /// the panel was demoted when mirrored (error bound in la/panel_f32.h).
  void ContractMode1PanelF32(const la::PanelF32& x, const la::DenseMatrix& z,
                             std::size_t width, la::DenseMatrix* y,
                             la::PanelWorkspace* ws) const;

  /// w(k, c) = sum_{i,j} A[i,j,k] * x(i, c) * y(j, c) for c in [0, width).
  /// Requires x, y: n rows, w: m rows. `ws` backs the per-slice bilinear
  /// reduction partials.
  void ContractMode3Panel(const la::DenseMatrix& x, const la::DenseMatrix& y,
                          std::size_t width, la::DenseMatrix* w,
                          la::PanelWorkspace* ws) const;

  /// Builds the merged row-major view the panel contractions traverse (see
  /// MergedView below). Idempotent; invalidated by MutableSlice. The panel
  /// kernels build it lazily on first use from the calling thread, so only
  /// callers that may invoke panel kernels on the same tensor from several
  /// threads concurrently need to prepare it up front
  /// (tensor::TransitionTensors::Build does).
  void PrepareMergedView() const;

  /// Recomputes only the shard plan of an already-built merged view against
  /// the currently resolved budget (tensor/sharding.h) — the structure
  /// arrays are untouched. The scaling bench uses this to sweep budgets
  /// without rebuilding operators; results are bit-identical across plans.
  /// Builds the view first when necessary.
  void ReshardMergedView() const;

  /// Bytes held by the merged view's structure arrays (row_ptr, segments,
  /// col, val). Builds the view when necessary.
  std::size_t MergedViewStorageBytes() const;

  /// Widest offset storage the merged view picked: 32 or 64.
  std::size_t MergedViewIndexBits() const;

  /// Number of contiguous row blocks in the mode-1 shard plan (>= 1 for a
  /// non-empty tensor).
  std::size_t MergedShardCount() const;

  // The merged-view type is public so the file-local shard planner can name
  // it; the instance itself stays private behind MergedSlices().
  // Row-major merge of all slices: for each row i, one segment per relation
  // k that stores entries in that row (segments ascending in k, entries
  // within a segment in the slice's column order). Both panel contractions
  // iterate (row, relation, column) — mode-1 as y_i += z_k * (sum_j v*x_j),
  // mode-3 as w_k += x_i * (sum_j v*y_j) — so one contiguous stream serves
  // both, replacing m interleaved CSR row probes per row with a single
  // sequential walk (the m ~= 20-relation presets are bound by exactly that
  // probing). The entry values duplicate the slices' storage; the slices
  // stay authoritative for the single-vector kernels and Slice() readers.
  // Offsets live in adaptive-width IndexArrays (32-bit whenever the segment
  // / entry counts permit — la/index_array.h), roughly halving structure
  // bytes at million-node scale.
  //
  // The shard plan partitions the view into contiguous row blocks whose
  // streamed structure fits the LLC budget of tensor/sharding.h. It shapes
  // work *assignment* only: mode-1 output rows are disjoint (any row
  // partition is bit-identical) and mode-3 keeps its budget-independent
  // fixed-chunk accumulation layout, with shards grouping whole consecutive
  // chunks and the merge folding in global chunk order — so results are
  // bit-identical across budgets and thread counts.
  struct MergedView {
    la::IndexArray row_ptr;            ///< n + 1 offsets into seg_k/seg_end.
    std::vector<std::uint32_t> seg_k;  ///< Relation index per segment.
    la::IndexArray seg_end;            ///< Exclusive entry end per segment
                                       ///< (begin = previous segment's end).
    std::vector<std::uint32_t> col;    ///< Column index j per entry.
    std::vector<double> val;           ///< Stored value per entry.
    /// Mode-1 shard s covers rows [shard_rows[s], shard_rows[s+1]).
    std::vector<std::size_t> shard_rows;
    /// Mode-3 shard s covers fixed reduce chunks
    /// [reduce_chunk_bounds[s], reduce_chunk_bounds[s+1]); empty when the
    /// reduction collapses to <= 1 chunk.
    std::vector<std::size_t> reduce_chunk_bounds;
    /// Budget the current plan was built against (diagnostics).
    std::size_t shard_budget_bytes = 0;
    bool built = false;
  };

  // --- Incremental patch support (hin::HinDelta) --------------------------
  // Unlike MutableSlice, these mutate a slice WITHOUT invalidating a built
  // merged view: only the affected view rows are refreshed. When the edited
  // rows keep their segment layout (same relations, same per-segment entry
  // counts) the col/val spans are overwritten in place; otherwise the
  // structure arrays are gap-copied around the edited rows, with the
  // row_ptr offsets patched through the IndexArray in-place mutators and
  // seg_end re-assembled at the width a from-scratch build would pick. The
  // shard plan is kept unless a mode-1 shard's byte budget is now violated
  // (or the plan is missing), in which case the plan — and only the plan —
  // is rebuilt and *resharded is set to true (never cleared). Each returns
  // the number of merged-view rows refreshed. The patched view is
  // byte-identical to PrepareMergedView on the patched slices.

  /// Replaces slice k wholesale, refreshing every merged-view row whose
  /// stored bytes differ between the old and new slice.
  std::size_t ReplaceSlice(std::size_t k, la::SparseMatrix slice,
                           bool* resharded = nullptr);

  /// Applies full-row edits to slice k (la::SparseMatrix::ApplyRowEdits)
  /// and refreshes those merged-view rows.
  std::size_t PatchSliceRows(std::size_t k, std::vector<la::RowEdit> edits,
                             bool* resharded = nullptr);

  /// Value-only edits: overwrites slice k's stored values at the given
  /// (entry position, new value) pairs and mirrors them into the merged
  /// view in place (no structure or plan change possible).
  std::size_t PatchSliceValues(
      std::size_t k,
      const std::vector<std::pair<std::size_t, double>>& edits);

  /// Read access to the merged view (prepared on demand) — the patched-vs-
  /// rebuilt equivalence tests compare these arrays byte for byte. Shard
  /// plans are excluded from that contract (correctness-neutral).
  const MergedView& merged_view() const { return MergedSlices(); }

 private:
  const MergedView& MergedSlices() const;
  std::size_t RefreshMergedRows(std::vector<std::uint32_t> rows,
                                bool* resharded);

  std::size_t n_;
  std::size_t m_;
  std::vector<la::SparseMatrix> slices_;
  mutable MergedView merged_;
};

}  // namespace tmark::tensor

#endif  // TMARK_TENSOR_SPARSE_TENSOR3_H_
