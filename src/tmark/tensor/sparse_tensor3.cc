#include "tmark/tensor/sparse_tensor3.h"

#include <algorithm>
#include <cstring>

#include "tmark/common/check.h"
#include "tmark/la/microkernel.h"
#include "tmark/obs/prof.h"
#include "tmark/parallel/parallel_for.h"
#include "tmark/tensor/sharding.h"

namespace tmark::tensor {
namespace {

// Row grain for the mode-1 contraction; small inputs collapse to a single
// chunk and run the exact serial loop on the calling thread.
constexpr std::size_t kContractRowGrain = 512;

// Bytes of structure streamed per merged-view entry (col + val).
constexpr std::size_t kEntryStreamBytes =
    sizeof(std::uint32_t) + sizeof(double);

}  // namespace

SparseTensor3::SparseTensor3(std::size_t n, std::size_t m) : n_(n), m_(m) {
  slices_.reserve(m);
  for (std::size_t k = 0; k < m; ++k) slices_.emplace_back(n, n);
}

SparseTensor3 SparseTensor3::FromEntries(std::size_t n, std::size_t m,
                                         std::vector<TensorEntry> entries) {
  std::vector<std::vector<la::Triplet>> per_slice(m);
  for (const TensorEntry& e : entries) {
    TMARK_CHECK_MSG(e.i < n && e.j < n && e.k < m,
                    "tensor entry (" << e.i << "," << e.j << "," << e.k
                                     << ") out of bounds");
    per_slice[e.k].push_back({e.i, e.j, e.value});
  }
  SparseTensor3 t(n, m);
  for (std::size_t k = 0; k < m; ++k) {
    t.slices_[k] =
        la::SparseMatrix::FromTriplets(n, n, std::move(per_slice[k]));
  }
  return t;
}

SparseTensor3 SparseTensor3::FromSlices(std::vector<la::SparseMatrix> slices) {
  TMARK_CHECK(!slices.empty());
  const std::size_t n = slices[0].rows();
  for (const la::SparseMatrix& s : slices) {
    TMARK_CHECK_MSG(s.rows() == n && s.cols() == n,
                    "all tensor slices must be square with equal size");
  }
  SparseTensor3 t;
  t.n_ = n;
  t.m_ = slices.size();
  t.slices_ = std::move(slices);
  return t;
}

std::size_t SparseTensor3::NumNonZeros() const {
  std::size_t d = 0;
  for (const la::SparseMatrix& s : slices_) d += s.NumNonZeros();
  return d;
}

const la::SparseMatrix& SparseTensor3::Slice(std::size_t k) const {
  TMARK_CHECK(k < m_);
  return slices_[k];
}

la::SparseMatrix& SparseTensor3::MutableSlice(std::size_t k) {
  TMARK_CHECK(k < m_);
  merged_.built = false;  // Slice edits invalidate the merged view.
  return slices_[k];
}

namespace {

// Streamed structure bytes of one merged-view row: its row_ptr slot, the
// seg_k/seg_end pair per segment, and the col/val pair per entry.
struct RowBytes {
  std::size_t row_fixed;
  std::size_t per_segment;

  explicit RowBytes(const SparseTensor3::MergedView& mv)
      : row_fixed(mv.row_ptr.index_bits() / 8),
        per_segment(sizeof(std::uint32_t) + mv.seg_end.index_bits() / 8) {}

  std::size_t operator()(const SparseTensor3::MergedView& mv,
                         std::size_t i) const {
    const std::size_t seg_begin = mv.row_ptr[i];
    const std::size_t seg_end = mv.row_ptr[i + 1];
    const std::size_t entry_begin =
        seg_begin == 0 ? 0 : mv.seg_end[seg_begin - 1];
    const std::size_t entry_end =
        seg_end == 0 ? 0 : mv.seg_end[seg_end - 1];
    return row_fixed + (seg_end - seg_begin) * per_segment +
           (entry_end - entry_begin) * kEntryStreamBytes;
  }
};

// Builds both shard plans against the currently resolved budget. Boundaries
// depend only on the structure and the budget — never on the thread count —
// and neither plan changes any accumulation grouping, so every plan yields
// bit-identical results (mode-1 rows are disjoint; mode-3 shards group whole
// fixed reduce chunks and partials still merge in global chunk order).
void BuildShardPlan(std::size_t n, SparseTensor3::MergedView* mv) {
  const RowBytes row_bytes(*mv);
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += row_bytes(*mv, i);
  mv->shard_budget_bytes = MergedShardBudgetBytes();
  // Backstop: raise the effective budget until the plan fits kMaxMergedShards
  // (a degenerate budget must not explode the task count).
  const std::size_t budget =
      EffectiveMergedShardBudget(mv->shard_budget_bytes, total);

  // Mode-1: contiguous row blocks, each streaming <= budget structure bytes
  // (single oversized rows get a shard of their own).
  mv->shard_rows.clear();
  if (n > 0) {
    mv->shard_rows.push_back(0);
    std::size_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t cost = row_bytes(*mv, i);
      if (acc > 0 && acc + cost > budget) {
        mv->shard_rows.push_back(i);
        acc = 0;
      }
      acc += cost;
    }
    mv->shard_rows.push_back(n);
  }

  // Mode-3: group whole consecutive fixed reduce chunks. The chunk grid
  // (NumFixedChunks at kBilinearReduceGrain) is the bit-identity contract's
  // accumulation layout and must not depend on the budget; only the grouping
  // into pool tasks does.
  mv->reduce_chunk_bounds.clear();
  const std::size_t chunks =
      parallel::NumFixedChunks(n, la::SparseMatrix::kBilinearReduceGrain);
  if (chunks > 1) {
    const std::size_t base = n / chunks;
    const std::size_t extra = n % chunks;
    mv->reduce_chunk_bounds.push_back(0);
    std::size_t acc = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * base + (c < extra ? c : extra);
      const std::size_t end = begin + base + (c < extra ? 1 : 0);
      std::size_t cost = 0;
      for (std::size_t i = begin; i < end; ++i) cost += row_bytes(*mv, i);
      if (acc > 0 && acc + cost > budget) {
        mv->reduce_chunk_bounds.push_back(c);
        acc = 0;
      }
      acc += cost;
    }
    mv->reduce_chunk_bounds.push_back(chunks);
  }
}

// Shared mode-1 traversal + dispatch, templated on the x panel type so the
// fp64 path (DenseMatrix) and the fp32 panel-storage path (PanelF32) run the
// identical structure walk — only the mk::Axpy overload the gather resolves
// to differs.
//
// Dispatch: the LLC shard plan (tensor/sharding.h) assigns one contiguous
// row block per pool task so each task streams at most ~budget structure
// bytes, keeping the gathered x-panel rows cache-resident. With one shard
// (or sharding disabled) this falls back to the pre-shard fixed-chunk
// dispatch. Either way output rows are disjoint, so every plan, budget, and
// thread count produces bit-identical output.
template <typename XPanel>
void Mode1PanelDispatch(const SparseTensor3::MergedView& mv, std::size_t m,
                        const XPanel& x, const la::DenseMatrix& z,
                        std::size_t width, la::DenseMatrix* y,
                        la::PanelWorkspace* ws) {
  const std::size_t n = x.rows();
  la::Vector& z_live = ws->Buffer(0, m);
  for (std::size_t k = 0; k < m; ++k) {
    z_live[k] = la::mk::AnyNonZero(z.RowPtr(k), width) ? 1.0 : 0.0;
  }
  auto process_rows = [&](std::size_t begin, std::size_t end, double* acc) {
    for (std::size_t i = begin; i < end; ++i) {
      double* yrow = y->RowPtr(i);
      la::mk::Zero(yrow, width);
      std::size_t entry = mv.row_ptr[i] == 0 ? 0
                                             : mv.seg_end[mv.row_ptr[i] - 1];
      for (std::size_t s = mv.row_ptr[i]; s < mv.row_ptr[i + 1]; ++s) {
        const std::size_t seg_end = mv.seg_end[s];
        const std::uint32_t k = mv.seg_k[s];
        if (z_live[k] == 0.0) {
          entry = seg_end;
          continue;
        }
        la::mk::Zero(acc, width);
        for (; entry < seg_end; ++entry) {
          la::mk::Axpy(acc, mv.val[entry], x.RowPtr(mv.col[entry]), width);
        }
        la::mk::MulAdd(yrow, z.RowPtr(k), acc, width);
      }
    }
  };
  const std::size_t shards =
      mv.shard_rows.size() >= 2 ? mv.shard_rows.size() - 1 : 0;
  if (MergedShardingEnabled() && shards > 1) {
    ws->PrepareChunks(shards, width);
    parallel::ParallelBoundedRanges(
        mv.shard_rows,
        [&](std::size_t shard, std::size_t begin, std::size_t end) {
          process_rows(begin, end, ws->Chunk(shard).data());
        });
    return;
  }
  const std::size_t grain =
      width > 0 ? std::max<std::size_t>(64, kContractRowGrain / width)
                : kContractRowGrain;
  const std::size_t chunks = parallel::NumFixedChunks(n, grain);
  ws->PrepareChunks(chunks == 0 ? 1 : chunks, width);
  parallel::ParallelChunks(
      n, chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        process_rows(begin, end, ws->Chunk(chunk).data());
      });
}

}  // namespace

void SparseTensor3::PrepareMergedView() const {
  if (merged_.built) return;
  std::vector<std::size_t> row_ptr(n_ + 1, 0);
  std::vector<std::size_t> seg_end;
  merged_.seg_k.clear();
  merged_.col.clear();
  merged_.val.clear();
  const std::size_t nnz = NumNonZeros();
  merged_.col.reserve(nnz);
  merged_.val.reserve(nnz);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = 0; k < m_; ++k) {
      const la::SparseMatrix& s = slices_[k];
      const std::size_t begin = s.row_ptr()[i];
      const std::size_t end = s.row_ptr()[i + 1];
      if (begin == end) continue;
      merged_.seg_k.push_back(static_cast<std::uint32_t>(k));
      merged_.col.insert(merged_.col.end(), s.col_idx().begin() + begin,
                         s.col_idx().begin() + end);
      merged_.val.insert(merged_.val.end(), s.values().begin() + begin,
                         s.values().begin() + end);
      seg_end.push_back(merged_.col.size());
    }
    row_ptr[i + 1] = merged_.seg_k.size();
  }
  // Offsets assemble wide, then shrink to the narrowest width that holds
  // them (32-bit for every realistic input — see la/index_array.h).
  merged_.row_ptr = la::IndexArray::FromOffsets(std::move(row_ptr));
  merged_.seg_end = la::IndexArray::FromOffsets(std::move(seg_end));
  BuildShardPlan(n_, &merged_);
  merged_.built = true;
}

void SparseTensor3::ReshardMergedView() const {
  PrepareMergedView();
  BuildShardPlan(n_, &merged_);
}

std::size_t SparseTensor3::MergedViewStorageBytes() const {
  const MergedView& mv = MergedSlices();
  return mv.row_ptr.StorageBytes() + mv.seg_end.StorageBytes() +
         mv.seg_k.size() * sizeof(std::uint32_t) +
         mv.col.size() * sizeof(std::uint32_t) +
         mv.val.size() * sizeof(double);
}

std::size_t SparseTensor3::MergedViewIndexBits() const {
  const MergedView& mv = MergedSlices();
  return std::max(mv.row_ptr.index_bits(), mv.seg_end.index_bits());
}

std::size_t SparseTensor3::MergedShardCount() const {
  const MergedView& mv = MergedSlices();
  return mv.shard_rows.size() >= 2 ? mv.shard_rows.size() - 1 : 0;
}

const SparseTensor3::MergedView& SparseTensor3::MergedSlices() const {
  PrepareMergedView();
  return merged_;
}

std::size_t SparseTensor3::ReplaceSlice(std::size_t k, la::SparseMatrix slice,
                                        bool* resharded) {
  TMARK_CHECK(k < m_);
  TMARK_CHECK(slice.rows() == n_ && slice.cols() == n_);
  const la::SparseMatrix& old = slices_[k];
  std::vector<std::uint32_t> rows;
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t ob = old.row_ptr()[i];
    const std::size_t oe = old.row_ptr()[i + 1];
    const std::size_t nb = slice.row_ptr()[i];
    bool differs = (oe - ob) != (slice.row_ptr()[i + 1] - nb);
    if (!differs && oe != ob) {
      differs =
          std::memcmp(old.col_idx().data() + ob, slice.col_idx().data() + nb,
                      (oe - ob) * sizeof(std::uint32_t)) != 0 ||
          std::memcmp(old.values().data() + ob, slice.values().data() + nb,
                      (oe - ob) * sizeof(double)) != 0;
    }
    if (differs) rows.push_back(static_cast<std::uint32_t>(i));
  }
  slices_[k] = std::move(slice);
  return RefreshMergedRows(std::move(rows), resharded);
}

std::size_t SparseTensor3::PatchSliceRows(std::size_t k,
                                          std::vector<la::RowEdit> edits,
                                          bool* resharded) {
  TMARK_CHECK(k < m_);
  std::vector<std::uint32_t> rows;
  rows.reserve(edits.size());
  for (const la::RowEdit& e : edits) {
    rows.push_back(static_cast<std::uint32_t>(e.row));
  }
  slices_[k].ApplyRowEdits(std::move(edits));
  return RefreshMergedRows(std::move(rows), resharded);
}

std::size_t SparseTensor3::PatchSliceValues(
    std::size_t k, const std::vector<std::pair<std::size_t, double>>& edits) {
  TMARK_CHECK(k < m_);
  if (edits.empty()) return 0;
  la::SparseMatrix& slice = slices_[k];
  std::vector<std::pair<std::size_t, double>> sorted(edits.begin(),
                                                     edits.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const std::pair<std::size_t, double>& a,
               const std::pair<std::size_t, double>& b) {
              return a.first < b.first;
            });
  std::vector<double>& vals = slice.mutable_values();
  std::size_t rows_touched = 0;
  std::size_t row = 0;
  std::size_t cur_row = static_cast<std::size_t>(-1);
  std::size_t merged_base = 0;  // Merged entry index of slice row begin.
  bool have_segment = false;
  for (const std::pair<std::size_t, double>& edit : sorted) {
    const std::size_t pos = edit.first;
    TMARK_CHECK(pos < vals.size());
    while (slice.row_ptr()[row + 1] <= pos) ++row;
    if (row != cur_row) {
      ++rows_touched;
      cur_row = row;
      have_segment = false;
    }
    vals[pos] = edit.second;
    if (!merged_.built) continue;
    if (!have_segment) {
      std::size_t entry = merged_.row_ptr[row] == 0
                              ? 0
                              : merged_.seg_end[merged_.row_ptr[row] - 1];
      for (std::size_t s = merged_.row_ptr[row];
           s < merged_.row_ptr[row + 1]; ++s) {
        if (merged_.seg_k[s] == k) {
          merged_base = entry;
          have_segment = true;
          break;
        }
        entry = merged_.seg_end[s];
      }
      TMARK_CHECK(have_segment);
    }
    merged_.val[merged_base + (pos - slice.row_ptr()[row])] = edit.second;
  }
  return rows_touched;
}

std::size_t SparseTensor3::RefreshMergedRows(std::vector<std::uint32_t> rows,
                                             bool* resharded) {
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  if (rows.empty()) return 0;
  if (!merged_.built) return rows.size();
  MergedView& mv = merged_;

  // Regenerate the affected rows' segment lists from the (already patched)
  // slices and compare layout with the stored view. Old per-row segment
  // counts are captured here, before any mutation.
  struct NewRow {
    std::vector<std::uint32_t> seg_k;
    std::vector<std::size_t> seg_len;
    std::size_t entries = 0;
  };
  std::vector<NewRow> fresh(rows.size());
  std::vector<std::size_t> old_segs(rows.size());
  bool structural = false;
  for (std::size_t idx = 0; idx < rows.size(); ++idx) {
    const std::size_t i = rows[idx];
    TMARK_CHECK(i < n_);
    NewRow& nr = fresh[idx];
    for (std::size_t k = 0; k < m_; ++k) {
      const la::SparseMatrix& s = slices_[k];
      const std::size_t len = s.row_ptr()[i + 1] - s.row_ptr()[i];
      if (len == 0) continue;
      nr.seg_k.push_back(static_cast<std::uint32_t>(k));
      nr.seg_len.push_back(len);
      nr.entries += len;
    }
    const std::size_t sb = mv.row_ptr[i];
    const std::size_t se = mv.row_ptr[i + 1];
    old_segs[idx] = se - sb;
    if (se - sb != nr.seg_k.size()) {
      structural = true;
      continue;
    }
    std::size_t entry = sb == 0 ? 0 : mv.seg_end[sb - 1];
    for (std::size_t s = 0; s < nr.seg_k.size(); ++s) {
      const std::size_t seg_entries = mv.seg_end[sb + s] - entry;
      entry = mv.seg_end[sb + s];
      if (mv.seg_k[sb + s] != nr.seg_k[s] || seg_entries != nr.seg_len[s]) {
        structural = true;
        break;
      }
    }
  }

  if (!structural) {
    // Layout unchanged: overwrite the affected rows' col/val spans in place.
    for (std::size_t idx = 0; idx < rows.size(); ++idx) {
      const std::size_t i = rows[idx];
      const std::size_t sb = mv.row_ptr[i];
      std::size_t entry = sb == 0 ? 0 : mv.seg_end[sb - 1];
      for (std::size_t s = 0; s < fresh[idx].seg_k.size(); ++s) {
        const la::SparseMatrix& src = slices_[fresh[idx].seg_k[s]];
        const std::size_t begin = src.row_ptr()[i];
        const std::size_t len = fresh[idx].seg_len[s];
        std::copy_n(src.col_idx().begin() + begin, len,
                    mv.col.begin() + entry);
        std::copy_n(src.values().begin() + begin, len,
                    mv.val.begin() + entry);
        entry += len;
      }
    }
    return rows.size();
  }

  // Structural change: gap-copy seg_k/col/val with bulk runs for untouched
  // rows and regenerated spans for the edited ones, rebuilding the seg_end
  // offsets in the same pass. Every read of the old offsets happens before
  // row_ptr is patched below.
  const auto old_entry_at = [&mv](std::size_t seg) {
    return seg == 0 ? std::size_t{0} : mv.seg_end[seg - 1];
  };
  std::ptrdiff_t seg_delta = 0;
  std::ptrdiff_t entry_delta = 0;
  for (std::size_t idx = 0; idx < rows.size(); ++idx) {
    const std::size_t i = rows[idx];
    const std::size_t old_entries =
        old_entry_at(mv.row_ptr[i + 1]) - old_entry_at(mv.row_ptr[i]);
    seg_delta += static_cast<std::ptrdiff_t>(fresh[idx].seg_k.size()) -
                 static_cast<std::ptrdiff_t>(old_segs[idx]);
    entry_delta += static_cast<std::ptrdiff_t>(fresh[idx].entries) -
                   static_cast<std::ptrdiff_t>(old_entries);
  }
  std::vector<std::uint32_t> new_seg_k;
  std::vector<std::size_t> new_seg_end;
  std::vector<std::uint32_t> new_col;
  std::vector<double> new_val;
  new_seg_k.reserve(static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(mv.seg_k.size()) + seg_delta));
  new_seg_end.reserve(new_seg_k.capacity());
  new_col.reserve(static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(mv.col.size()) + entry_delta));
  new_val.reserve(new_col.capacity());
  const auto bulk_copy = [&](std::size_t row_begin, std::size_t row_end) {
    const std::size_t a = mv.row_ptr[row_begin];
    const std::size_t b = mv.row_ptr[row_end];
    if (b <= a) return;
    const std::size_t ea = old_entry_at(a);
    const std::size_t eb = old_entry_at(b);
    const std::ptrdiff_t shift = static_cast<std::ptrdiff_t>(new_col.size()) -
                                 static_cast<std::ptrdiff_t>(ea);
    new_seg_k.insert(new_seg_k.end(), mv.seg_k.begin() + a,
                     mv.seg_k.begin() + b);
    for (std::size_t s = a; s < b; ++s) {
      new_seg_end.push_back(static_cast<std::size_t>(
          static_cast<std::ptrdiff_t>(mv.seg_end[s]) + shift));
    }
    new_col.insert(new_col.end(), mv.col.begin() + ea, mv.col.begin() + eb);
    new_val.insert(new_val.end(), mv.val.begin() + ea, mv.val.begin() + eb);
  };
  std::size_t src_row = 0;
  for (std::size_t idx = 0; idx < rows.size(); ++idx) {
    const std::size_t i = rows[idx];
    bulk_copy(src_row, i);
    const NewRow& nr = fresh[idx];
    for (std::size_t s = 0; s < nr.seg_k.size(); ++s) {
      const la::SparseMatrix& sl = slices_[nr.seg_k[s]];
      const std::size_t begin = sl.row_ptr()[i];
      const std::size_t len = nr.seg_len[s];
      new_seg_k.push_back(nr.seg_k[s]);
      new_col.insert(new_col.end(), sl.col_idx().begin() + begin,
                     sl.col_idx().begin() + begin + len);
      new_val.insert(new_val.end(), sl.values().begin() + begin,
                     sl.values().begin() + begin + len);
      new_seg_end.push_back(new_col.size());
    }
    src_row = i + 1;
  }
  bulk_copy(src_row, n_);
  // Patch row_ptr in place: offsets past an edited row shift by the
  // cumulative segment-count delta. Old counts were captured above, so the
  // ascending Set pass never re-reads an offset it already rewrote.
  std::ptrdiff_t cum = 0;
  std::size_t ri = 0;
  for (std::size_t r = rows.front() + 1; r <= n_; ++r) {
    while (ri < rows.size() && rows[ri] < r) {
      cum += static_cast<std::ptrdiff_t>(fresh[ri].seg_k.size()) -
             static_cast<std::ptrdiff_t>(old_segs[ri]);
      ++ri;
    }
    mv.row_ptr.Set(r, static_cast<std::size_t>(
                          static_cast<std::ptrdiff_t>(mv.row_ptr[r]) + cum));
  }
  mv.row_ptr.FitWidth();
  mv.seg_k = std::move(new_seg_k);
  mv.seg_end = la::IndexArray::FromOffsets(std::move(new_seg_end));
  mv.col = std::move(new_col);
  mv.val = std::move(new_val);

  // Keep the existing shard plan unless a multi-row mode-1 shard now
  // streams more than the budget the plan was built against (raised to the
  // kMaxMergedShards floor, as the planner does); then rebuild the plan —
  // and only the plan.
  bool need_reshard = n_ > 0 && mv.shard_rows.size() < 2;
  if (!need_reshard && n_ > 0) {
    const RowBytes row_bytes(mv);
    const std::size_t shards = mv.shard_rows.size() - 1;
    std::vector<std::size_t> shard_cost(shards, 0);
    std::size_t total = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      for (std::size_t i = mv.shard_rows[s]; i < mv.shard_rows[s + 1]; ++i) {
        shard_cost[s] += row_bytes(mv, i);
      }
      total += shard_cost[s];
    }
    const std::size_t budget =
        EffectiveMergedShardBudget(mv.shard_budget_bytes, total);
    for (std::size_t s = 0; s < shards; ++s) {
      if (mv.shard_rows[s + 1] - mv.shard_rows[s] > 1 &&
          shard_cost[s] > budget) {
        need_reshard = true;
        break;
      }
    }
  }
  if (need_reshard) {
    BuildShardPlan(n_, &mv);
    if (resharded != nullptr) *resharded = true;
  }
  return rows.size();
}

double SparseTensor3::At(std::size_t i, std::size_t j, std::size_t k) const {
  TMARK_CHECK(k < m_);
  return slices_[k].At(i, j);
}

std::vector<TensorEntry> SparseTensor3::Entries() const {
  std::vector<TensorEntry> out;
  out.reserve(NumNonZeros());
  for (std::size_t k = 0; k < m_; ++k) {
    const la::SparseMatrix& s = slices_[k];
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t p = s.row_ptr()[i]; p < s.row_ptr()[i + 1]; ++p) {
        out.push_back({static_cast<std::uint32_t>(i), s.col_idx()[p],
                       static_cast<std::uint32_t>(k), s.values()[p]});
      }
    }
  }
  return out;
}

la::SparseMatrix SparseTensor3::SumOverRelations() const {
  la::SparseMatrix sum(n_, n_);
  for (const la::SparseMatrix& s : slices_) sum = sum.Add(s);
  return sum;
}

bool SparseTensor3::IsNonNegative() const {
  return std::all_of(slices_.begin(), slices_.end(),
                     [](const la::SparseMatrix& s) { return s.IsNonNegative(); });
}

bool SparseTensor3::IsConnectedAggregate() const {
  if (n_ == 0) return true;
  const la::SparseMatrix agg = SumOverRelations();
  const la::SparseMatrix agg_t = agg.Transpose();
  std::vector<bool> seen(n_, false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t count = 1;
  auto visit = [&](const la::SparseMatrix& g, std::size_t u) {
    for (std::size_t p = g.row_ptr()[u]; p < g.row_ptr()[u + 1]; ++p) {
      const std::size_t v = g.col_idx()[p];
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        stack.push_back(v);
      }
    }
  };
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    visit(agg, u);
    visit(agg_t, u);
  }
  return count == n_;
}

la::Vector SparseTensor3::ContractMode1(const la::Vector& x,
                                        const la::Vector& z) const {
  la::Vector y;
  ContractMode1Into(x, z, &y);
  return y;
}

void SparseTensor3::ContractMode1Into(const la::Vector& x, const la::Vector& z,
                                      la::Vector* y) const {
  TMARK_PROF_REGION("tensor.contract.mode1");
  TMARK_CHECK(y != nullptr && x.size() == n_ && z.size() == m_);
  y->assign(n_, 0.0);
  // Row-partitioned: each row accumulates its per-slice contributions in
  // ascending k, exactly the per-element order of the serial k-outer loop,
  // and rows are disjoint — bit-identical at any thread count.
  parallel::ParallelForRanges(
      n_, kContractRowGrain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = 0; k < m_; ++k) {
          const double zk = z[k];
          if (zk == 0.0) continue;
          const la::SparseMatrix& s = slices_[k];
          for (std::size_t i = begin; i < end; ++i) {
            double acc = 0.0;
            for (std::size_t p = s.row_ptr()[i]; p < s.row_ptr()[i + 1]; ++p) {
              acc += s.values()[p] * x[s.col_idx()[p]];
            }
            (*y)[i] += zk * acc;
          }
        }
      });
}

la::Vector SparseTensor3::ContractMode3(const la::Vector& x,
                                        const la::Vector& y) const {
  la::Vector w;
  ContractMode3Into(x, y, &w);
  return w;
}

void SparseTensor3::ContractMode3Into(const la::Vector& x, const la::Vector& y,
                                      la::Vector* w) const {
  TMARK_PROF_REGION("tensor.contract.mode3");
  TMARK_CHECK(w != nullptr && x.size() == n_ && y.size() == n_);
  w->resize(m_);
  // One independent bilinear form per slice; w entries are disjoint.
  parallel::ParallelFor(m_, /*grain=*/1, [&](std::size_t k) {
    (*w)[k] = slices_[k].Bilinear(x, y);
  });
}

void SparseTensor3::ContractMode1Panel(const la::DenseMatrix& x,
                                       const la::DenseMatrix& z,
                                       std::size_t width,
                                       la::DenseMatrix* y,
                                       la::PanelWorkspace* ws) const {
  TMARK_PROF_REGION("tensor.contract.mode1_panel");
  TMARK_CHECK(y != nullptr && ws != nullptr);
  TMARK_CHECK(x.rows() == n_ && z.rows() == m_ && y->rows() == n_);
  TMARK_CHECK(x.cols() == y->cols() && z.cols() == x.cols());
  TMARK_CHECK(width <= x.cols());
  // Walks the merged row-major view: per row i, segments ascending in k —
  // exactly the per-element order of the single-vector k-outer loop
  // (regrouping the traversal changes which entries stream together, never
  // the order the per-slice terms z(k, c) * acc are added to y(i, c)). A
  // segment is skipped when every active z(k, :) entry is zero — the same
  // predicate the hoisted per-slice check applies, precomputed once per
  // call into a liveness table — and rows/slices without stored entries
  // have no segments at all: the skipped contribution is z(k, c) * 0.0, and
  // a Zero-initialized accumulator can never hold -0.0 (IEEE:
  // +0.0 + -0.0 == +0.0 and a + (-a) == +0.0), so adding the +-0.0 term is
  // a bit-level no-op. The merged view turns the m interleaved CSR row
  // probes per row — what the m ~= 20-relation presets are bound by — into
  // one contiguous stream. Output rows are disjoint so any row partition is
  // bit-identical.
  Mode1PanelDispatch(MergedSlices(), m_, x, z, width, y, ws);
}

void SparseTensor3::ContractMode1PanelF32(const la::PanelF32& x,
                                          const la::DenseMatrix& z,
                                          std::size_t width,
                                          la::DenseMatrix* y,
                                          la::PanelWorkspace* ws) const {
  TMARK_PROF_REGION("tensor.contract.mode1_panel_f32");
  TMARK_CHECK(y != nullptr && ws != nullptr);
  TMARK_CHECK(x.rows() == n_ && z.rows() == m_ && y->rows() == n_);
  TMARK_CHECK(x.cols() == y->cols() && z.cols() == x.cols());
  TMARK_CHECK(width <= x.cols());
  // Same traversal, dispatch, and shard plan as ContractMode1Panel — only
  // the gathered x rows are float (widened exactly; accumulation stays
  // double, see la/panel_f32.h). Not bit-identical to the fp64 path: the
  // panel elements themselves were demoted when the mirror was refreshed.
  Mode1PanelDispatch(MergedSlices(), m_, x, z, width, y, ws);
}

void SparseTensor3::ContractMode3Panel(const la::DenseMatrix& x,
                                       const la::DenseMatrix& y,
                                       std::size_t width, la::DenseMatrix* w,
                                       la::PanelWorkspace* ws) const {
  TMARK_PROF_REGION("tensor.contract.mode3_panel");
  TMARK_CHECK(w != nullptr && ws != nullptr);
  TMARK_CHECK(x.rows() == n_ && y.rows() == n_ && w->rows() == m_);
  TMARK_CHECK(x.cols() == y.cols() && w->cols() == x.cols());
  TMARK_CHECK(width <= x.cols());
  // All m bilinear forms in one traversal of the merged row-major view
  // instead of m independent BilinearPanel sweeps: the x-row liveness check
  // hoists out of the slice loop (once per row, not once per (slice, row))
  // and the per-row segment walk replaces m interleaved CSR row probes with
  // one contiguous stream — what the m ~= 20-relation presets are bound by.
  // Bit-identity with the per-slice BilinearPanel results holds element for
  // element: per slice k the partial w(k, c) accumulates over rows in the
  // same ascending order, the chunk boundaries reuse BilinearPanel's exact
  // reduce grain so the per-chunk partial-sum folds group identically, and
  // rows without stored entries in a slice have no segment: the skipped
  // xrow[c] * 0.0 term cannot change a Zero-initialized accumulator (which
  // can never hold -0.0; IEEE +0.0 + -0.0 == +0.0 and a + (-a) == +0.0).
  //
  // Each chunk buffer holds [m x width partial sums | width inner scratch].
  const MergedView& mv = MergedSlices();
  auto accumulate = [&](std::size_t begin, std::size_t end, double* buf) {
    double* inner = buf + m_ * width;
    for (std::size_t i = begin; i < end; ++i) {
      const double* xrow = x.RowPtr(i);
      if (!la::mk::AnyNonZero(xrow, width)) continue;
      std::size_t entry = mv.row_ptr[i] == 0 ? 0
                                             : mv.seg_end[mv.row_ptr[i] - 1];
      for (std::size_t s = mv.row_ptr[i]; s < mv.row_ptr[i + 1]; ++s) {
        const std::size_t seg_end = mv.seg_end[s];
        la::mk::Zero(inner, width);
        for (; entry < seg_end; ++entry) {
          la::mk::Axpy(inner, mv.val[entry], y.RowPtr(mv.col[entry]), width);
        }
        la::mk::MulAdd(buf + mv.seg_k[s] * width, xrow, inner, width);
      }
    }
  };
  const std::size_t chunks =
      parallel::NumFixedChunks(n_, la::SparseMatrix::kBilinearReduceGrain);
  const std::size_t buffers = chunks == 0 ? 1 : chunks;
  ws->PrepareChunks(buffers, m_ * width + width);
  if (chunks <= 1) {
    if (n_ > 0) accumulate(0, n_, ws->Chunk(0).data());
  } else if (MergedShardingEnabled() && mv.reduce_chunk_bounds.size() > 2) {
    // LLC-sharded work assignment: each shard walks a run of whole fixed
    // chunks whose streamed structure fits the budget. Every chunk still
    // accumulates into its own buffer and the merge below folds partials in
    // global chunk order, so the grouping — unlike the chunk grid itself —
    // is free to vary with the budget without touching a single bit.
    const std::size_t base = n_ / chunks;
    const std::size_t extra = n_ % chunks;
    parallel::ParallelBoundedRanges(
        mv.reduce_chunk_bounds,
        [&](std::size_t, std::size_t cbegin, std::size_t cend) {
          for (std::size_t c = cbegin; c < cend; ++c) {
            const std::size_t begin = c * base + (c < extra ? c : extra);
            const std::size_t end = begin + base + (c < extra ? 1 : 0);
            accumulate(begin, end, ws->Chunk(c).data());
          }
        });
  } else {
    parallel::ParallelChunks(
        n_, chunks,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          accumulate(begin, end, ws->Chunk(chunk).data());
        });
  }
  for (std::size_t k = 0; k < m_; ++k) {
    la::mk::Zero(w->RowPtr(k), width);
  }
  for (std::size_t chunk = 0; chunk < buffers; ++chunk) {
    const double* partial = ws->Chunk(chunk).data();
    for (std::size_t k = 0; k < m_; ++k) {
      la::mk::Add(w->RowPtr(k), partial + k * width, width);
    }
  }
}

}  // namespace tmark::tensor
