#include "tmark/tensor/sparse_tensor3.h"

#include <algorithm>

#include "tmark/common/check.h"
#include "tmark/parallel/parallel_for.h"

namespace tmark::tensor {
namespace {

// Row grain for the mode-1 contraction; small inputs collapse to a single
// chunk and run the exact serial loop on the calling thread.
constexpr std::size_t kContractRowGrain = 512;

}  // namespace

SparseTensor3::SparseTensor3(std::size_t n, std::size_t m) : n_(n), m_(m) {
  slices_.reserve(m);
  for (std::size_t k = 0; k < m; ++k) slices_.emplace_back(n, n);
}

SparseTensor3 SparseTensor3::FromEntries(std::size_t n, std::size_t m,
                                         std::vector<TensorEntry> entries) {
  std::vector<std::vector<la::Triplet>> per_slice(m);
  for (const TensorEntry& e : entries) {
    TMARK_CHECK_MSG(e.i < n && e.j < n && e.k < m,
                    "tensor entry (" << e.i << "," << e.j << "," << e.k
                                     << ") out of bounds");
    per_slice[e.k].push_back({e.i, e.j, e.value});
  }
  SparseTensor3 t(n, m);
  for (std::size_t k = 0; k < m; ++k) {
    t.slices_[k] =
        la::SparseMatrix::FromTriplets(n, n, std::move(per_slice[k]));
  }
  return t;
}

SparseTensor3 SparseTensor3::FromSlices(std::vector<la::SparseMatrix> slices) {
  TMARK_CHECK(!slices.empty());
  const std::size_t n = slices[0].rows();
  for (const la::SparseMatrix& s : slices) {
    TMARK_CHECK_MSG(s.rows() == n && s.cols() == n,
                    "all tensor slices must be square with equal size");
  }
  SparseTensor3 t;
  t.n_ = n;
  t.m_ = slices.size();
  t.slices_ = std::move(slices);
  return t;
}

std::size_t SparseTensor3::NumNonZeros() const {
  std::size_t d = 0;
  for (const la::SparseMatrix& s : slices_) d += s.NumNonZeros();
  return d;
}

const la::SparseMatrix& SparseTensor3::Slice(std::size_t k) const {
  TMARK_CHECK(k < m_);
  return slices_[k];
}

la::SparseMatrix& SparseTensor3::MutableSlice(std::size_t k) {
  TMARK_CHECK(k < m_);
  return slices_[k];
}

double SparseTensor3::At(std::size_t i, std::size_t j, std::size_t k) const {
  TMARK_CHECK(k < m_);
  return slices_[k].At(i, j);
}

std::vector<TensorEntry> SparseTensor3::Entries() const {
  std::vector<TensorEntry> out;
  out.reserve(NumNonZeros());
  for (std::size_t k = 0; k < m_; ++k) {
    const la::SparseMatrix& s = slices_[k];
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t p = s.row_ptr()[i]; p < s.row_ptr()[i + 1]; ++p) {
        out.push_back({static_cast<std::uint32_t>(i), s.col_idx()[p],
                       static_cast<std::uint32_t>(k), s.values()[p]});
      }
    }
  }
  return out;
}

la::SparseMatrix SparseTensor3::SumOverRelations() const {
  la::SparseMatrix sum(n_, n_);
  for (const la::SparseMatrix& s : slices_) sum = sum.Add(s);
  return sum;
}

bool SparseTensor3::IsNonNegative() const {
  return std::all_of(slices_.begin(), slices_.end(),
                     [](const la::SparseMatrix& s) { return s.IsNonNegative(); });
}

bool SparseTensor3::IsConnectedAggregate() const {
  if (n_ == 0) return true;
  const la::SparseMatrix agg = SumOverRelations();
  const la::SparseMatrix agg_t = agg.Transpose();
  std::vector<bool> seen(n_, false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t count = 1;
  auto visit = [&](const la::SparseMatrix& g, std::size_t u) {
    for (std::size_t p = g.row_ptr()[u]; p < g.row_ptr()[u + 1]; ++p) {
      const std::size_t v = g.col_idx()[p];
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        stack.push_back(v);
      }
    }
  };
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    visit(agg, u);
    visit(agg_t, u);
  }
  return count == n_;
}

la::Vector SparseTensor3::ContractMode1(const la::Vector& x,
                                        const la::Vector& z) const {
  TMARK_CHECK(x.size() == n_ && z.size() == m_);
  la::Vector y(n_, 0.0);
  // Row-partitioned: each row accumulates its per-slice contributions in
  // ascending k, exactly the per-element order of the serial k-outer loop,
  // and rows are disjoint — bit-identical at any thread count.
  parallel::ParallelForRanges(
      n_, kContractRowGrain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = 0; k < m_; ++k) {
          const double zk = z[k];
          if (zk == 0.0) continue;
          const la::SparseMatrix& s = slices_[k];
          for (std::size_t i = begin; i < end; ++i) {
            double acc = 0.0;
            for (std::size_t p = s.row_ptr()[i]; p < s.row_ptr()[i + 1]; ++p) {
              acc += s.values()[p] * x[s.col_idx()[p]];
            }
            y[i] += zk * acc;
          }
        }
      });
  return y;
}

la::Vector SparseTensor3::ContractMode3(const la::Vector& x,
                                        const la::Vector& y) const {
  TMARK_CHECK(x.size() == n_ && y.size() == n_);
  la::Vector w(m_, 0.0);
  // One independent bilinear form per slice; w entries are disjoint.
  parallel::ParallelFor(m_, /*grain=*/1, [&](std::size_t k) {
    w[k] = slices_[k].Bilinear(x, y);
  });
  return w;
}

void SparseTensor3::ContractMode1Panel(const la::DenseMatrix& x,
                                       const la::DenseMatrix& z,
                                       std::size_t width,
                                       la::DenseMatrix* y,
                                       la::PanelWorkspace* ws) const {
  TMARK_CHECK(y != nullptr && ws != nullptr);
  TMARK_CHECK(x.rows() == n_ && z.rows() == m_ && y->rows() == n_);
  TMARK_CHECK(x.cols() == y->cols() && z.cols() == x.cols());
  TMARK_CHECK(width <= x.cols());
  // Row-partitioned like ContractMode1, with the grain shrunk by the panel
  // width; output rows are disjoint so any partition is bit-identical. Per
  // element y(i, c) the per-slice terms z(k, c) * acc are added in
  // ascending k — exactly the order of the single-vector k-outer loop. A
  // slice is skipped only when every active z entry is zero; a column with
  // z(k, c) == 0 in a live slice adds 0 * acc, leaving it unchanged.
  const std::size_t grain =
      width > 0 ? std::max<std::size_t>(64, kContractRowGrain / width)
                : kContractRowGrain;
  const std::size_t chunks = parallel::NumFixedChunks(n_, grain);
  ws->PrepareChunks(chunks == 0 ? 1 : chunks, width);
  parallel::ParallelChunks(
      n_, chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        double* acc = ws->Chunk(chunk).data();
        for (std::size_t i = begin; i < end; ++i) {
          double* yrow = y->RowPtr(i);
          for (std::size_t c = 0; c < width; ++c) yrow[c] = 0.0;
          for (std::size_t k = 0; k < m_; ++k) {
            const double* zrow = z.RowPtr(k);
            bool any = false;
            for (std::size_t c = 0; c < width; ++c) any |= zrow[c] != 0.0;
            if (!any) continue;
            const la::SparseMatrix& s = slices_[k];
            for (std::size_t c = 0; c < width; ++c) acc[c] = 0.0;
            for (std::size_t p = s.row_ptr()[i]; p < s.row_ptr()[i + 1];
                 ++p) {
              const double v = s.values()[p];
              const double* xrow = x.RowPtr(s.col_idx()[p]);
              for (std::size_t c = 0; c < width; ++c) acc[c] += v * xrow[c];
            }
            for (std::size_t c = 0; c < width; ++c) {
              yrow[c] += zrow[c] * acc[c];
            }
          }
        }
      });
}

void SparseTensor3::ContractMode3Panel(const la::DenseMatrix& x,
                                       const la::DenseMatrix& y,
                                       std::size_t width, la::DenseMatrix* w,
                                       la::PanelWorkspace* ws) const {
  TMARK_CHECK(w != nullptr && ws != nullptr);
  TMARK_CHECK(x.rows() == n_ && y.rows() == n_ && w->rows() == m_);
  TMARK_CHECK(x.cols() == y.cols() && w->cols() == x.cols());
  TMARK_CHECK(width <= x.cols());
  // Serial over the m slices (m is small); each bilinear form is itself
  // row-parallel and writes its own output row, matching ContractMode3's
  // per-slice Bilinear results column for column.
  for (std::size_t k = 0; k < m_; ++k) {
    slices_[k].BilinearPanel(x, y, width, w->RowPtr(k), ws);
  }
}

}  // namespace tmark::tensor
