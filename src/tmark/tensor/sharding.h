#ifndef TMARK_TENSOR_SHARDING_H_
#define TMARK_TENSOR_SHARDING_H_

// LLC shard-budget configuration for the merged tensor-slice traversal.
//
// The panel contractions stream the merged view's structure (col/val/segment
// arrays) while repeatedly gathering rows of the x panel. Once the structure
// slab of one work unit outgrows the last-level cache, every streamed line
// evicts panel rows that are about to be gathered again, and the kernel
// degrades to memory bandwidth. PrepareMergedView therefore splits the view
// into contiguous row blocks whose streamed structure fits a byte budget —
// one block per thread-pool task. The budget only shapes work *assignment*,
// never accumulation grouping, so results stay bit-identical across budgets
// and thread counts (see SparseTensor3::ContractMode1Panel).
//
// Resolution order: SetMergedShardBudgetBytes(value > 0) wins, else the
// TMARK_LLC_BUDGET_BYTES environment variable, else
// kDefaultMergedShardBudgetBytes. Pick roughly half the LLC so the streamed
// structure and the gathered panel rows can coexist.

#include <cstddef>

namespace tmark::tensor {

/// Default per-shard structure budget: 24 MiB, about half a contemporary
/// server LLC.
inline constexpr std::size_t kDefaultMergedShardBudgetBytes =
    24ull * 1024 * 1024;

/// Upper bound on shards per merged view — a backstop so a degenerate budget
/// (e.g. a typo'd TMARK_LLC_BUDGET_BYTES=1) cannot explode the task count;
/// the effective budget is raised until the plan fits.
inline constexpr std::size_t kMaxMergedShards = 4096;

/// The resolved per-shard byte budget (override, env, or default).
std::size_t MergedShardBudgetBytes();

/// The effective budget a shard plan over `total_bytes` of streamed
/// structure is held to: `budget` raised to the kMaxMergedShards floor (and
/// to at least 1). Shared by the planner and the incremental merged-view
/// patch, which checks an existing plan against this bound before falling
/// back to a reshard.
inline std::size_t EffectiveMergedShardBudget(std::size_t budget,
                                              std::size_t total_bytes) {
  const std::size_t floor_budget =
      (total_bytes + kMaxMergedShards - 1) / kMaxMergedShards;
  if (budget < floor_budget) budget = floor_budget;
  return budget == 0 ? 1 : budget;
}

/// Overrides the budget; 0 restores env/default resolution. Takes effect the
/// next time a merged view is prepared or resharded — not thread-safe
/// against concurrent builds.
void SetMergedShardBudgetBytes(std::size_t bytes);

/// When disabled, the panel contractions fall back to the fixed-chunk
/// dispatch that predates sharding (the scaling bench's baseline). On by
/// default; consulted at contraction time, so toggling needs no rebuild.
bool MergedShardingEnabled();
void SetMergedShardingEnabled(bool enabled);

}  // namespace tmark::tensor

#endif  // TMARK_TENSOR_SHARDING_H_
