#include "tmark/tensor/sharding.h"

#include <cstdlib>
#include <string>

namespace tmark::tensor {
namespace {

std::size_t g_budget_override = 0;
bool g_sharding_enabled = true;

// TMARK_LLC_BUDGET_BYTES is operator-supplied tuning, not untrusted input:
// unparsable or non-positive values silently fall back to the default, the
// same contract TMARK_NUM_THREADS follows.
std::size_t ParseBudget(const char* text) {
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return 0;
  return static_cast<std::size_t>(v);
}

}  // namespace

std::size_t MergedShardBudgetBytes() {
  if (g_budget_override > 0) return g_budget_override;
  const std::size_t env = ParseBudget(std::getenv("TMARK_LLC_BUDGET_BYTES"));
  return env > 0 ? env : kDefaultMergedShardBudgetBytes;
}

void SetMergedShardBudgetBytes(std::size_t bytes) {
  g_budget_override = bytes;
}

bool MergedShardingEnabled() { return g_sharding_enabled; }

void SetMergedShardingEnabled(bool enabled) { g_sharding_enabled = enabled; }

}  // namespace tmark::tensor
