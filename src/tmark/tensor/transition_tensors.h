#ifndef TMARK_TENSOR_TRANSITION_TENSORS_H_
#define TMARK_TENSOR_TRANSITION_TENSORS_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "tmark/la/dense_matrix.h"
#include "tmark/la/sparse_matrix.h"
#include "tmark/la/vector_ops.h"
#include "tmark/tensor/sparse_tensor3.h"

namespace tmark::tensor {

/// Markov transition probability tensors O and R derived from a non-negative
/// HIN adjacency tensor A (Eqs. (1)-(2) of the paper):
///
///   O[i,j,k] = A[i,j,k] / sum_i A[i,j,k]   — probability of visiting node i
///              given the walk is at node j and uses relation k;
///   R[i,j,k] = A[i,j,k] / sum_k A[i,j,k]   — probability of using relation k
///              given a step from node j to node i.
///
/// Dangling handling follows the paper: a (j,k) column of O whose sum is
/// zero becomes the uniform column 1/n, and an (i,j) fiber of R with no link
/// in any relation becomes the uniform fiber 1/m. Neither uniform block is
/// materialized — the contraction kernels add their contribution as a rank-1
/// correction, keeping every operation O(D) in the stored non-zeros D
/// (Sec. 4.5 complexity analysis).
class TransitionTensors {
 public:
  /// Builds O and R from a non-negative adjacency tensor.
  static TransitionTensors Build(const SparseTensor3& adjacency);

  std::size_t num_nodes() const { return n_; }
  std::size_t num_relations() const { return m_; }

  /// The contraction (O x1_bar x x3_bar z)_i = sum_{j,k} O[i,j,k] x_j z_k,
  /// including the dangling-column correction. When x and z are probability
  /// vectors the result is again a probability vector (Theorem 1).
  la::Vector ApplyO(const la::Vector& x, const la::Vector& z) const;

  /// ApplyO into a caller-owned vector (warm calls allocate nothing).
  void ApplyOInto(const la::Vector& x, const la::Vector& z,
                  la::Vector* y) const;

  /// The contraction (R x1_bar x x2_bar y)_k = sum_{i,j} R[i,j,k] x_i y_j,
  /// including the dangling-fiber correction. The paper's Eq. (8) uses
  /// y = x; the two-argument form also supports the general bilinear case.
  la::Vector ApplyR(const la::Vector& x, const la::Vector& y) const;

  /// ApplyR into a caller-owned vector (warm calls allocate nothing).
  void ApplyRInto(const la::Vector& x, const la::Vector& y,
                  la::Vector* w) const;

  // Panel forms (la/panel.h): one structure pass for all leading `width`
  // columns, including the implicit dangling corrections column-wise;
  // bit-identical per column to ApplyO / ApplyR.

  /// y(:, c) = O x1 x(:, c) x3 z(:, c) for c in [0, width).
  void ApplyOPanel(const la::DenseMatrix& x, const la::DenseMatrix& z,
                   std::size_t width, la::DenseMatrix* y,
                   la::PanelWorkspace* ws) const;

  /// ApplyOPanel with fp32 panel storage (TMarkConfig::fp32_panels): the
  /// gathered x rows — contraction and dangling correction alike — are
  /// float, every accumulation double. Same structure walk as ApplyOPanel;
  /// not bit-identical to it (see la/panel_f32.h for the error bound).
  void ApplyOPanelF32(const la::PanelF32& x, const la::DenseMatrix& z,
                      std::size_t width, la::DenseMatrix* y,
                      la::PanelWorkspace* ws) const;

  /// w(:, c) = R x1 x(:, c) x2 y(:, c) for c in [0, width).
  ///
  /// The optional sum arguments let the fused fit engine avoid extra panel
  /// sweeps: `x_sums` / `y_sums`, when non-null, supply the leading column
  /// sums of x / y (they MUST equal la::LeadingColumnSums of the panel —
  /// i.e. be accumulated in ascending row order — for bit-identity; the
  /// fused combine pass produces exactly that). `w_sums`, when non-null,
  /// receives the leading column sums of the finished w, accumulated in
  /// ascending k order during the final correction sweep — the same order
  /// la::LeadingColumnSums / la::Sum would read them.
  void ApplyRPanel(const la::DenseMatrix& x, const la::DenseMatrix& y,
                   std::size_t width, la::DenseMatrix* w,
                   la::PanelWorkspace* ws,
                   const la::Vector* x_sums = nullptr,
                   const la::Vector* y_sums = nullptr,
                   la::Vector* w_sums = nullptr) const;

  /// Entry O[i,j,k] including the implicit dangling value (1/n when column
  /// (j,k) has no links). Intended for tests and the worked example.
  double OEntry(std::size_t i, std::size_t j, std::size_t k) const;

  /// Entry R[i,j,k] including the implicit dangling value (1/m when the
  /// (i,j) pair has no link in any relation).
  double REntry(std::size_t i, std::size_t j, std::size_t k) const;

  /// Dense n x n materialization of slice O(:,:,k), dangling columns filled
  /// in. Small problems / tests / worked example only.
  la::DenseMatrix DenseOSlice(std::size_t k) const;

  /// Dense n x n materialization of slice R(:,:,k).
  la::DenseMatrix DenseRSlice(std::size_t k) const;

  /// Stored (sparse) part of O — excludes the implicit dangling columns.
  const SparseTensor3& o_stored() const { return o_; }
  /// Stored (sparse) part of R — excludes the implicit dangling fibers.
  const SparseTensor3& r_stored() const { return r_; }

  /// Per-relation list of dangling source columns j (sum_i A[i,j,k] == 0).
  const std::vector<std::vector<std::uint32_t>>& dangling_columns() const {
    return dangling_cols_;
  }

  /// 0/1 sparse mask of linked (i,j) pairs: sum_k A[i,j,k] > 0.
  const la::SparseMatrix& linked_mask() const { return linked_mask_; }

  /// Names the parts of an adjacency mutation for ApplyPatch: every
  /// relation whose slice changed at all, and every (i, j) pair whose total
  /// link weight sum_k A[i,j,k] changed (each edge add/remove/reweight
  /// lands its pair here). Both lists sorted and unique.
  struct AdjacencyDelta {
    std::vector<std::size_t> relations;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;  ///< (i, j).
  };

  /// Incrementally re-derives O, R, the dangling-column lists, and the
  /// linked mask after the adjacency mutated: the edited O slices
  /// renormalize through the exact full-build kernel, affected R rows
  /// re-divide against totals recomputed in the full build's accumulation
  /// order, and the merged views patch in place (resharding only on budget
  /// violation — see SparseTensor3). `adjacency` holds the POST-mutation
  /// relation slices (one per relation, all n x n); requires this operator
  /// set was built from the pre-mutation adjacency and `delta` covers every
  /// change. The patched operators are bit-identical to Build() on the
  /// mutated adjacency. Returns the number of merged-view rows refreshed
  /// (also added to the "update.rows_touched" counter, with plan rebuilds
  /// counted by "update.reshards").
  std::size_t ApplyPatch(const std::vector<const la::SparseMatrix*>& adjacency,
                         const AdjacencyDelta& delta);

 private:
  TransitionTensors() : n_(0), m_(0) {}

  std::size_t n_;
  std::size_t m_;
  SparseTensor3 o_;
  SparseTensor3 r_;
  /// For each relation k, the columns j with no stored entry (dangling).
  std::vector<std::vector<std::uint32_t>> dangling_cols_;
  /// 1.0 at every (i,j) that is linked through at least one relation.
  la::SparseMatrix linked_mask_;
};

}  // namespace tmark::tensor

#endif  // TMARK_TENSOR_TRANSITION_TENSORS_H_
