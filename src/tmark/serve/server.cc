#include "tmark/serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>

#include <netinet/in.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <streambuf>
#include <string>
#include <utility>

#include "tmark/obs/logging.h"
#include "tmark/obs/metrics.h"

namespace tmark::serve {
namespace {

/// Minimal streambuf over a connection fd so the istream/ostream-based
/// protocol functions (ReadFrame/WriteFrame) work on sockets unchanged.
/// Unbuffered writes, small read buffer; not seekable.
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(buffer_, buffer_, buffer_);
  }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ssize_t n;
    do {
      n = ::read(fd_, buffer_, sizeof(buffer_));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return traits_type::eof();
    setg(buffer_, buffer_, buffer_ + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof())) return 0;
    const char c = traits_type::to_char_type(ch);
    return WriteAll(&c, 1) ? ch : traits_type::eof();
  }

  std::streamsize xsputn(const char* data, std::streamsize count) override {
    return WriteAll(data, static_cast<std::size_t>(count))
               ? count
               : std::streamsize{0};
  }

 private:
  bool WriteAll(const char* data, std::size_t count) {
    std::size_t written = 0;
    while (written < count) {
      const ssize_t n = ::write(fd_, data + written, count - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      written += static_cast<std::size_t>(n);
    }
    return true;
  }

  const int fd_;
  char buffer_[4096];
};

void CountIoError(const Status& status) {
  obs::IncrCounter("io.errors");
  obs::IncrCounter("io.errors." +
                   std::string(StatusCodeMetricSuffix(status.code())));
}

}  // namespace

SocketServer::SocketServer(ServingDaemon* daemon, ServerOptions options)
    : daemon_(daemon), options_(std::move(options)) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  int fd = -1;
  if (!options_.unix_socket.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket.size() >= sizeof(addr.sun_path)) {
      return InvalidArgumentError("socket path too long: " +
                                  options_.unix_socket);
    }
    std::memcpy(addr.sun_path, options_.unix_socket.c_str(),
                options_.unix_socket.size() + 1);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return InternalError(std::string("socket(): ") + std::strerror(errno));
    }
    // A previous run's socket file would make bind fail with EADDRINUSE;
    // the path is ours to claim, so clear it first.
    ::unlink(options_.unix_socket.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const int err = errno;
      ::close(fd);
      return InvalidArgumentError("bind(" + options_.unix_socket +
                                  "): " + std::strerror(err));
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return InternalError(std::string("socket(): ") + std::strerror(errno));
    }
    const int reuse = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const int err = errno;
      ::close(fd);
      return InvalidArgumentError(
          "bind(127.0.0.1:" + std::to_string(options_.tcp_port) +
          "): " + std::strerror(err));
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
        0) {
      port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  }
  if (::listen(fd, SOMAXCONN) < 0) {
    const int err = errno;
    ::close(fd);
    return InternalError(std::string("listen(): ") + std::strerror(err));
  }
  listen_fd_.store(fd, std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  obs::LogInfo("serve.listening",
               {{"endpoint", options_.unix_socket.empty()
                                 ? "127.0.0.1:" + std::to_string(port_)
                                 : options_.unix_socket}});
  return Status::Ok();
}

void SocketServer::RequestStop() {
  stopping_.store(true, std::memory_order_release);
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() unblocks a thread parked in accept(); close() alone is
    // not guaranteed to on Linux.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

void SocketServer::Stop() {
  RequestStop();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections.swap(connections_);
  }
  for (std::thread& connection : connections) {
    if (connection.joinable()) connection.join();
  }
  if (!options_.unix_socket.empty()) {
    ::unlink(options_.unix_socket.c_str());
  }
}

void SocketServer::Wait() {
  if (acceptor_.joinable()) acceptor_.join();
}

void SocketServer::AcceptLoop() {
  for (;;) {
    const int fd = listen_fd_.load(std::memory_order_acquire);
    if (fd < 0 || stopping_.load(std::memory_order_acquire)) break;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;  // Listener closed (shutdown) or fatally broken.
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(conn);
      break;
    }
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections_.emplace_back([this, conn] { ServeConnection(conn); });
  }
}

void SocketServer::ServeConnection(int fd) {
  FdStreambuf buf(fd);
  std::istream in(&buf);
  std::ostream out(&buf);
  std::string payload;
  while (!stopping_.load(std::memory_order_acquire)) {
    Result<bool> got = ReadFrame(in, options_.limits, &payload);
    if (!got.ok()) {
      CountIoError(got.status());
      // The stream position is untrustworthy after a framing error; answer
      // once and drop the connection.
      WriteFrame(out, FormatError(got.status()));
      break;
    }
    if (!got.value()) break;  // Clean EOF at a frame boundary.

    std::string reply;
    Result<Request> request = ParseRequest(payload);
    if (!request.ok()) {
      CountIoError(request.status());
      reply = FormatError(request.status());
    } else {
      Result<Response> response = daemon_->Execute(request.value());
      reply = response.ok() ? FormatResponse(response.value())
                            : FormatError(response.status());
    }
    if (!WriteFrame(out, reply).ok()) break;

    const std::size_t served =
        served_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (options_.max_requests > 0 && served >= options_.max_requests) {
      RequestStop();
      break;
    }
  }
  ::close(fd);
}

}  // namespace tmark::serve
