#ifndef TMARK_SERVE_BATCHER_H_
#define TMARK_SERVE_BATCHER_H_

// Request coalescing for the serving daemon (docs/SERVING.md).
//
// Seed queries (rank/topk) pay one sparse-structure sweep per fixed-point
// iteration whether the panel carries 1 column or 16 — so the scheduler
// holds the first request of a burst for a small window
// (`batch_window_us`) and folds every request that arrives in the
// meantime into one PanelQueryEngine batch, up to `max_batch` columns.
// Under load the window never waits: the queue refills while a batch
// computes, and the next batch departs full. Classify lookups bypass the
// queue entirely (they are O(q) reads of the bundle).
//
// Backpressure: at most `max_queue` requests wait for the worker; beyond
// that, Execute refuses immediately with kResourceExhausted so overload
// degrades into fast typed rejections instead of unbounded latency.
//
// Observability: serve.requests / serve.batched / serve.rejected /
// serve.stale counters, the serve.request_ms end-to-end latency histogram
// (queue wait included), serve.batch_exec_ms per batch, and the
// serve.batch_width series.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "tmark/common/status.h"
#include "tmark/serve/bundle.h"
#include "tmark/serve/protocol.h"
#include "tmark/serve/query_engine.h"

namespace tmark::serve {

struct BatcherOptions {
  /// How long the worker holds an under-full batch open for stragglers.
  /// 0 disables coalescing-by-time (batches still merge whatever already
  /// queued).
  std::size_t batch_window_us = 200;
  /// Panel width cap per batch.
  std::size_t max_batch = 16;
  /// Admission bound: requests waiting for the worker beyond this are
  /// rejected with kResourceExhausted.
  std::size_t max_queue = 256;
};

/// Coalescing scheduler over one BundleHolder. Start() spawns the worker
/// thread; Execute blocks the calling (connection) thread until its
/// request is served. Thread-safe.
class BatchingScheduler {
 public:
  BatchingScheduler(BatcherOptions options, QueryEngineOptions engine_options,
                    BundleHolder* bundles);
  ~BatchingScheduler();

  BatchingScheduler(const BatchingScheduler&) = delete;
  BatchingScheduler& operator=(const BatchingScheduler&) = delete;

  void Start();

  /// Stops the worker; queued requests fail with kFailedPrecondition.
  void Stop();

  /// Serves one classify/rank/topk request (update is routed by the
  /// daemon, not here). Typed failures: kFailedPrecondition before the
  /// first bundle publish or after Stop, kInvalidArgument for an
  /// out-of-range node, kResourceExhausted when the admission queue is
  /// full.
  Result<Response> Execute(const Request& request);

 private:
  struct Pending {
    Request request;
    Response response;
    Status status;
    bool done = false;
  };

  void WorkerLoop();
  void ServeBatch(std::deque<std::shared_ptr<Pending>>* batch);
  Result<Response> ServeClassify(const Request& request);

  const BatcherOptions options_;
  PanelQueryEngine engine_;  ///< Worker-thread only.
  BundleHolder* const bundles_;

  std::mutex mu_;
  std::condition_variable queue_cv_;  ///< Worker wake-ups.
  std::condition_variable done_cv_;   ///< Completion broadcasts.
  std::deque<std::shared_ptr<Pending>> queue_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread worker_;
};

}  // namespace tmark::serve

#endif  // TMARK_SERVE_BATCHER_H_
