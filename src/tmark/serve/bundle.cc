#include "tmark/serve/bundle.h"

#include <utility>

namespace tmark::serve {

BundleHolder::View BundleHolder::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return View{bundle_, refreshing_};
}

void BundleHolder::Publish(std::shared_ptr<const ServingBundle> bundle) {
  std::lock_guard<std::mutex> lock(mu_);
  bundle_ = std::move(bundle);
  refreshing_ = false;
}

void BundleHolder::BeginRefresh() {
  std::lock_guard<std::mutex> lock(mu_);
  refreshing_ = true;
}

void BundleHolder::AbortRefresh() {
  std::lock_guard<std::mutex> lock(mu_);
  refreshing_ = false;
}

bool BundleHolder::refreshing() const {
  std::lock_guard<std::mutex> lock(mu_);
  return refreshing_;
}

std::uint64_t BundleHolder::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bundle_ == nullptr ? 0 : bundle_->generation;
}

}  // namespace tmark::serve
