#include "tmark/serve/daemon.h"

#include <string>
#include <utility>

#include "tmark/obs/logging.h"
#include "tmark/obs/metrics.h"

namespace tmark::serve {

QueryEngineOptions MakeQueryOptions(const core::TMarkConfig& config) {
  QueryEngineOptions options;
  options.alpha = config.alpha;
  options.gamma = config.gamma;
  options.epsilon = config.epsilon;
  options.max_iterations = config.max_iterations;
  return options;
}

ServingDaemon::ServingDaemon(hin::Hin hin, std::vector<std::size_t> labeled,
                             DaemonOptions options)
    : hin_(std::move(hin)),
      labeled_(std::move(labeled)),
      options_(options),
      classifier_(options.config),
      scheduler_(options.batcher, options.query, &bundles_) {}

ServingDaemon::~ServingDaemon() {
  WaitForUpdate();
  // scheduler_ (declared after bundles_) stops its worker in its own
  // destructor before bundles_ goes away.
}

Status ServingDaemon::Init() {
  std::lock_guard<std::mutex> lock(update_mu_);
  if (initialized_) {
    return FailedPreconditionError("daemon is already initialized");
  }
  if (labeled_.empty()) {
    return InvalidArgumentError("serving needs a non-empty training set");
  }
  for (const std::size_t node : labeled_) {
    if (node >= hin_.num_nodes()) {
      return InvalidArgumentError("labeled node " + std::to_string(node) +
                                  " out of range [0, " +
                                  std::to_string(hin_.num_nodes()) + ")");
    }
  }
  classifier_.Fit(hin_, labeled_);
  bundles_.Publish(MakeBundle());
  scheduler_.Start();
  initialized_ = true;
  obs::LogInfo("serve.daemon_ready",
               {{"nodes", std::to_string(hin_.num_nodes())},
                {"classes", std::to_string(hin_.num_classes())},
                {"generation", std::to_string(bundles_.generation())}});
  return Status::Ok();
}

std::shared_ptr<const ServingBundle> ServingDaemon::MakeBundle() {
  auto bundle = std::make_shared<ServingBundle>();
  bundle->ops = classifier_.prepared_operators();
  bundle->confidences = classifier_.Confidences();
  bundle->link_importance = classifier_.LinkImportance();
  bundle->fingerprint = bundle->ops->fingerprint();
  bundle->generation = next_generation_++;
  return bundle;
}

Result<Response> ServingDaemon::Execute(const Request& request) {
  if (request.kind != RequestKind::kUpdate) {
    return scheduler_.Execute(request);
  }
  obs::IncrCounter("serve.requests");
  TMARK_ASSIGN_OR_RETURN(hin::HinDelta delta,
                         hin::LoadHinDeltaFromFile(request.path));
  TMARK_RETURN_IF_ERROR(BeginUpdate(std::move(delta)));
  // Answer with the generation the background refresh is about to replace;
  // stale = true tells the client a refresh window is open.
  const BundleHolder::View view = bundles_.Acquire();
  Response response;
  response.kind = RequestKind::kUpdate;
  response.stale = view.stale;
  response.generation = view.bundle->generation;
  response.fingerprint = view.bundle->fingerprint;
  return response;
}

Status ServingDaemon::ApplyUpdate(const hin::HinDelta& delta) {
  std::lock_guard<std::mutex> lock(update_mu_);
  if (!initialized_) {
    return FailedPreconditionError("daemon is not initialized");
  }
  if (update_running_) {
    return FailedPreconditionError("an update is already running");
  }
  if (update_thread_.joinable()) update_thread_.join();
  bundles_.BeginRefresh();
  const Status status = classifier_.Update(&hin_, delta, labeled_);
  if (!status.ok()) {
    bundles_.AbortRefresh();
    obs::IncrCounter("serve.update.failed");
    return status;
  }
  bundles_.Publish(MakeBundle());
  obs::IncrCounter("serve.update.applied");
  return Status::Ok();
}

Status ServingDaemon::BeginUpdate(hin::HinDelta delta) {
  std::lock_guard<std::mutex> lock(update_mu_);
  if (!initialized_) {
    return FailedPreconditionError("daemon is not initialized");
  }
  if (update_running_) {
    return FailedPreconditionError("an update is already running");
  }
  // Validate synchronously so the caller gets the typed error; the
  // background thread then re-validates inside TMarkClassifier::Update
  // against the same (quiescent) network.
  TMARK_RETURN_IF_ERROR(delta.Validate(hin_));
  if (update_thread_.joinable()) update_thread_.join();
  update_running_ = true;
  bundles_.BeginRefresh();
  update_thread_ = std::thread([this, moved = std::move(delta)] {
    // hin_/classifier_/next_generation_ are exclusively this thread's
    // until update_running_ flips back under the mutex: every other writer
    // checks update_running_ under update_mu_ first.
    Status status = classifier_.Update(&hin_, moved, labeled_);
    if (status.ok()) {
      bundles_.Publish(MakeBundle());
      obs::IncrCounter("serve.update.applied");
    } else {
      bundles_.AbortRefresh();
      obs::IncrCounter("serve.update.failed");
      obs::LogWarn("serve.update_failed", {{"status", status.ToString()}});
    }
    std::lock_guard<std::mutex> inner(update_mu_);
    last_update_status_ = std::move(status);
    update_running_ = false;
  });
  return Status::Ok();
}

Status ServingDaemon::WaitForUpdate() {
  std::thread finished;
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    if (update_thread_.joinable()) finished = std::move(update_thread_);
  }
  if (finished.joinable()) finished.join();
  std::lock_guard<std::mutex> lock(update_mu_);
  return last_update_status_;
}

}  // namespace tmark::serve
