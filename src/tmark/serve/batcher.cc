#include "tmark/serve/batcher.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "tmark/common/check.h"
#include "tmark/obs/metrics.h"
#include "tmark/obs/trace.h"

namespace tmark::serve {
namespace {

/// Top-k (index, score) entries of `values`, scores descending, ties by
/// ascending index (the same order la::ArgSortDescending yields, so
/// truncated rankings match the full ones the CLI prints).
std::vector<ScoredEntry> TopKEntries(const la::Vector& values,
                                     std::size_t top_k) {
  std::vector<std::size_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  const std::size_t k = std::min(top_k, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      if (values[a] != values[b]) return values[a] > values[b];
                      return a < b;
                    });
  std::vector<ScoredEntry> entries(k);
  for (std::size_t i = 0; i < k; ++i) {
    entries[i] = ScoredEntry{idx[i], values[idx[i]]};
  }
  return entries;
}

}  // namespace

BatchingScheduler::BatchingScheduler(BatcherOptions options,
                                     QueryEngineOptions engine_options,
                                     BundleHolder* bundles)
    : options_(options), engine_(engine_options), bundles_(bundles) {
  TMARK_CHECK(bundles != nullptr);
  TMARK_CHECK_MSG(options.max_batch > 0, "max_batch must be >= 1");
  TMARK_CHECK_MSG(options.max_queue > 0, "max_queue must be >= 1");
}

BatchingScheduler::~BatchingScheduler() { Stop(); }

void BatchingScheduler::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  worker_ = std::thread([this] { WorkerLoop(); });
}

void BatchingScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
    queue_cv_.notify_all();
  }
  worker_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

Result<Response> BatchingScheduler::Execute(const Request& request) {
  obs::Stopwatch stopwatch;
  obs::IncrCounter("serve.requests");
  if (request.kind == RequestKind::kUpdate) {
    return InvalidArgumentError(
        "update requests are routed by the daemon, not the scheduler");
  }
  if (request.kind == RequestKind::kClassify) {
    Result<Response> response = ServeClassify(request);
    if (response.ok()) {
      obs::ObserveHistogram("serve.request_ms", stopwatch.ElapsedMs());
    }
    return response;
  }

  auto pending = std::make_shared<Pending>();
  pending->request = request;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_ || stopping_) {
      return FailedPreconditionError("scheduler is not running");
    }
    if (queue_.size() >= options_.max_queue) {
      obs::IncrCounter("serve.rejected");
      return ResourceExhaustedError(
          "admission queue full (" + std::to_string(options_.max_queue) +
          " requests waiting); retry after backoff");
    }
    queue_.push_back(pending);
    queue_cv_.notify_all();
    done_cv_.wait(lock, [&] { return pending->done; });
  }
  if (!pending->status.ok()) return pending->status;
  obs::ObserveHistogram("serve.request_ms", stopwatch.ElapsedMs());
  return std::move(pending->response);
}

Result<Response> BatchingScheduler::ServeClassify(const Request& request) {
  const BundleHolder::View view = bundles_->Acquire();
  if (view.bundle == nullptr) {
    return FailedPreconditionError("no serving bundle published yet");
  }
  const ServingBundle& bundle = *view.bundle;
  if (request.node >= bundle.num_nodes()) {
    return InvalidArgumentError(
        "node " + std::to_string(request.node) + " out of range [0, " +
        std::to_string(bundle.num_nodes()) + ")");
  }
  Response response;
  response.kind = RequestKind::kClassify;
  response.node = request.node;
  response.stale = view.stale;
  response.generation = bundle.generation;
  response.fingerprint = bundle.fingerprint;
  la::Vector row(bundle.num_classes());
  for (std::size_t c = 0; c < bundle.num_classes(); ++c) {
    row[c] = bundle.confidences.At(request.node, c);
  }
  response.entries = TopKEntries(row, row.size());
  if (view.stale) obs::IncrCounter("serve.stale");
  return response;
}

void BatchingScheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (stopping_) break;
    if (options_.batch_window_us > 0 && queue_.size() < options_.max_batch) {
      // Hold the batch open for stragglers. Under sustained load the queue
      // already holds a full batch and this never sleeps.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(options_.batch_window_us);
      while (!stopping_ && queue_.size() < options_.max_batch) {
        if (queue_cv_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      if (stopping_) break;
    }
    std::deque<std::shared_ptr<Pending>> batch;
    const std::size_t take = std::min(queue_.size(), options_.max_batch);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    ServeBatch(&batch);
    lock.lock();
    for (const std::shared_ptr<Pending>& pending : batch) {
      pending->done = true;
    }
    done_cv_.notify_all();
  }
  // Stopping: fail whatever is still queued so no caller blocks forever.
  while (!queue_.empty()) {
    const std::shared_ptr<Pending> pending = std::move(queue_.front());
    queue_.pop_front();
    pending->status = FailedPreconditionError("scheduler stopped");
    pending->done = true;
  }
  done_cv_.notify_all();
}

void BatchingScheduler::ServeBatch(
    std::deque<std::shared_ptr<Pending>>* batch) {
  obs::Stopwatch stopwatch;
  const BundleHolder::View view = bundles_->Acquire();
  std::vector<std::size_t> seeds;
  std::vector<Pending*> active;
  seeds.reserve(batch->size());
  active.reserve(batch->size());
  for (const std::shared_ptr<Pending>& pending : *batch) {
    if (view.bundle == nullptr) {
      pending->status =
          FailedPreconditionError("no serving bundle published yet");
      continue;
    }
    if (pending->request.node >= view.bundle->num_nodes()) {
      pending->status = InvalidArgumentError(
          "node " + std::to_string(pending->request.node) +
          " out of range [0, " + std::to_string(view.bundle->num_nodes()) +
          ")");
      continue;
    }
    seeds.push_back(pending->request.node);
    active.push_back(pending.get());
  }
  if (active.empty()) return;

  const ServingBundle& bundle = *view.bundle;
  std::vector<SeedQueryResult> results;
  engine_.Run(*bundle.ops, seeds, &results);
  for (std::size_t i = 0; i < active.size(); ++i) {
    Pending* pending = active[i];
    Response& response = pending->response;
    response.kind = pending->request.kind;
    response.node = pending->request.node;
    response.stale = view.stale;
    response.generation = bundle.generation;
    response.fingerprint = bundle.fingerprint;
    const SeedQueryResult& result = results[i];
    response.entries =
        TopKEntries(pending->request.kind == RequestKind::kRank ? result.z
                                                                : result.x,
                    pending->request.top_k);
    if (view.stale) obs::IncrCounter("serve.stale");
  }
  if (active.size() >= 2) {
    obs::IncrCounter("serve.batched",
                     static_cast<std::int64_t>(active.size()));
  }
  obs::AppendSeries("serve.batch_width",
                    static_cast<double>(active.size()));
  obs::ObserveHistogram("serve.batch_exec_ms", stopwatch.ElapsedMs());
}

}  // namespace tmark::serve
