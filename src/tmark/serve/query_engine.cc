#include "tmark/serve/query_engine.h"

#include <algorithm>
#include <utility>

#include "tmark/common/check.h"
#include "tmark/obs/metrics.h"

namespace tmark::serve {

PanelQueryEngine::PanelQueryEngine(QueryEngineOptions options)
    : options_(options) {
  TMARK_CHECK_MSG(options.alpha > 0.0 && options.alpha < 1.0,
                  "alpha must lie in (0, 1)");
  TMARK_CHECK_MSG(options.gamma >= 0.0 && options.gamma <= 1.0,
                  "gamma must lie in [0, 1]");
  TMARK_CHECK(options.alpha + options.beta() <= 1.0 + 1e-12);
}

void PanelQueryEngine::EnsureCapacity(std::size_t n, std::size_t m,
                                      std::size_t width) {
  if (x_panel_.rows() != n || x_panel_.cols() < width) {
    const std::size_t cols = std::max(width, x_panel_.cols());
    x_panel_ = la::DenseMatrix(n, cols);
    l_panel_ = la::DenseMatrix(n, cols);
    x_next_ = la::DenseMatrix(n, cols);
    wx_panel_ = la::DenseMatrix(n, cols);
  }
  if (z_panel_.rows() != m || z_panel_.cols() < x_panel_.cols()) {
    z_panel_ = la::DenseMatrix(m, x_panel_.cols());
    z_next_ = la::DenseMatrix(m, x_panel_.cols());
  }
}

void PanelQueryEngine::Run(const core::PreparedOperators& ops,
                           const std::vector<std::size_t>& seeds,
                           std::vector<SeedQueryResult>* results) {
  TMARK_CHECK(results != nullptr);
  results->clear();
  results->resize(seeds.size());
  if (seeds.empty()) return;

  const std::size_t n = ops.num_nodes();
  const std::size_t m = ops.num_relations();
  const tensor::TransitionTensors& tensors = ops.tensors();
  const hin::FeatureSimilarity& similarity = ops.similarity();
  const double alpha = options_.alpha;
  const double beta = options_.beta();
  const double rel_weight = 1.0 - alpha - beta;

  EnsureCapacity(n, m, seeds.size());
  std::size_t width = seeds.size();
  slot_result_.resize(width);
  const double uniform_z = 1.0 / static_cast<double>(m);
  for (std::size_t s = 0; s < width; ++s) {
    const std::size_t seed = seeds[s];
    TMARK_CHECK_MSG(seed < n, "seed out of range");
    slot_result_[s] = s;
    // Restart vector and starting point: all mass on the seed node.
    for (std::size_t i = 0; i < n; ++i) {
      const double e = i == seed ? 1.0 : 0.0;
      l_panel_.At(i, s) = e;
      x_panel_.At(i, s) = e;
    }
    for (std::size_t k = 0; k < m; ++k) z_panel_.At(k, s) = uniform_z;
  }

  // Same per-iteration pass structure as TMarkClassifier::FitBatched, sans
  // the ICA refresh: the bit-identity argument in la/panel.h carries over
  // unchanged, which is what makes coalescing invisible to clients.
  for (int t = 1; t <= options_.max_iterations && width > 0; ++t) {
    tensors.ApplyOPanel(x_panel_, z_panel_, width, &x_next_, &ws_);
    similarity.ApplyPanel(x_panel_, width, &wx_panel_, &ws_);
    la::FusedCombineColumns(rel_weight, beta, wx_panel_, alpha, l_panel_,
                            width, &x_next_, &x_sums_);
    tensors.ApplyRPanel(x_next_, x_next_, width, &z_next_, &ws_, &x_sums_,
                        &x_sums_, &z_sums_);
    la::FusedNormalizeDistanceColumns(&x_sums_, x_panel_, width, &x_next_,
                                      &rho_x_);
    la::FusedNormalizeDistanceColumns(&z_sums_, z_panel_, width, &z_next_,
                                      &rho_z_);
    std::swap(x_panel_, x_next_);
    std::swap(z_panel_, z_next_);
    obs::IncrCounter("serve.query.iterations",
                     static_cast<std::int64_t>(width));

    // Retire converged columns by compaction (la/panel.h MoveColumn): the
    // surviving columns' values are untouched, so retirement order cannot
    // leak into any other query's answer.
    std::size_t s = 0;
    while (s < width) {
      SeedQueryResult& result = (*results)[slot_result_[s]];
      ++result.iterations;
      if (rho_x_[s] + rho_z_[s] < options_.epsilon) {
        result.converged = true;
        la::ExtractColumn(x_panel_, s, &result.x);
        la::ExtractColumn(z_panel_, s, &result.z);
        const std::size_t last = width - 1;
        if (s != last) {
          la::MoveColumn(last, s, &x_panel_);
          la::MoveColumn(last, s, &z_panel_);
          la::MoveColumn(last, s, &l_panel_);
          slot_result_[s] = slot_result_[last];
          rho_x_[s] = rho_x_[last];
          rho_z_[s] = rho_z_[last];
        }
        --width;
      } else {
        ++s;
      }
    }
  }

  // Columns that hit the iteration cap: hand back the best available
  // state, flagged unconverged.
  for (std::size_t s = 0; s < width; ++s) {
    SeedQueryResult& result = (*results)[slot_result_[s]];
    la::ExtractColumn(x_panel_, s, &result.x);
    la::ExtractColumn(z_panel_, s, &result.z);
  }
}

}  // namespace tmark::serve
