#ifndef TMARK_SERVE_BUNDLE_H_
#define TMARK_SERVE_BUNDLE_H_

// The serving side of the fingerprint honesty rule (docs/SERVING.md).
//
// A ServingBundle is one immutable snapshot of everything a query needs:
// the prepared operators, the fitted posteriors, and the link-importance
// panel, stamped with the operators' content fingerprint and a serving
// generation. Queries acquire a shared_ptr snapshot and keep computing on
// it even while an update publishes a successor — a bundle is never
// mutated after Publish, so readers can be lock-free after the one
// acquisition and can never observe a torn mix of old and new state.
//
// BundleHolder is the swap point: Acquire() hands out the current bundle
// plus a `stale` flag that is true while a background refresh is running
// (graceful degradation — the daemon keeps answering from the previous
// stationary state instead of blocking or failing).

#include <cstdint>
#include <memory>
#include <mutex>

#include "tmark/core/prepared_operators.h"
#include "tmark/la/dense_matrix.h"

namespace tmark::serve {

/// One immutable generation of serving state. `ops` is shared with the
/// fitting classifier, which is what makes updates copy-on-write: while a
/// query holds this bundle, TMarkClassifier::Update sees use_count > 1 and
/// patches a copy, leaving the served operators untouched.
struct ServingBundle {
  std::shared_ptr<const core::PreparedOperators> ops;
  la::DenseMatrix confidences;      ///< n x q stationary posteriors.
  la::DenseMatrix link_importance;  ///< m x q stationary z panels.
  std::uint64_t fingerprint = 0;    ///< == ops->fingerprint().
  std::uint64_t generation = 0;     ///< 1 on first publish, +1 per swap.

  std::size_t num_nodes() const { return confidences.rows(); }
  std::size_t num_classes() const { return confidences.cols(); }
  std::size_t num_relations() const { return link_importance.rows(); }
};

/// Thread-safe holder of the current bundle. Publish is atomic with
/// respect to Acquire: a reader sees either the whole old bundle or the
/// whole new one.
class BundleHolder {
 public:
  struct View {
    std::shared_ptr<const ServingBundle> bundle;
    /// True when a refresh was running at acquisition time: the answer is
    /// correct for the pre-update network, flagged so clients can tell.
    bool stale = false;
  };

  /// Snapshot of the current bundle (null before the first Publish).
  View Acquire() const;

  /// Swaps in `bundle` and ends any running refresh window.
  void Publish(std::shared_ptr<const ServingBundle> bundle);

  /// Marks the start of a background refresh: views acquired from now
  /// until the next Publish (or AbortRefresh) report stale = true.
  void BeginRefresh();

  /// Ends a refresh window without publishing (the update failed; the
  /// current bundle stays authoritative and is no longer stale).
  void AbortRefresh();

  bool refreshing() const;

  /// Generation of the current bundle (0 before the first Publish).
  std::uint64_t generation() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ServingBundle> bundle_;
  bool refreshing_ = false;
};

}  // namespace tmark::serve

#endif  // TMARK_SERVE_BUNDLE_H_
