#ifndef TMARK_SERVE_SERVER_H_
#define TMARK_SERVE_SERVER_H_

// Socket front end of the serving daemon (docs/SERVING.md): accepts
// connections on a Unix-domain socket or a loopback TCP port, reads
// length-prefixed request frames, routes them through ServingDaemon (and
// thus the batching scheduler), and writes response frames back. One
// thread per connection — the concurrency that matters is the scheduler's
// coalescing, not the socket loop.
//
// Failed frame reads and request parses are answered with an
// `error <CODE> <message>` frame (when the stream is still writable) and
// counted in the io.errors{,.<code>} counters; a kDataLoss or
// kResourceExhausted framing error closes the connection, because the
// stream position can no longer be trusted.

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "tmark/common/status.h"
#include "tmark/serve/daemon.h"
#include "tmark/serve/protocol.h"

namespace tmark::serve {

struct ServerOptions {
  /// Path of the Unix-domain listening socket; empty selects TCP.
  std::string unix_socket;
  /// Loopback TCP port when `unix_socket` is empty; 0 lets the kernel
  /// pick (the bound port is readable via SocketServer::port()).
  int tcp_port = 0;
  ProtocolLimits limits;
  /// Stop after serving this many requests (0 = run until Stop) — lets
  /// tests and smoke runs bound the daemon's lifetime.
  std::size_t max_requests = 0;
};

/// Blocking accept loop over a ServingDaemon. Start() binds and spawns the
/// acceptor; Stop() (or reaching max_requests) shuts it down and joins
/// every connection thread.
class SocketServer {
 public:
  SocketServer(ServingDaemon* daemon, ServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds + listens + spawns the acceptor thread. Typed errors for an
  /// unusable socket path/port.
  Status Start();

  /// Closes the listener, joins the acceptor and all connections.
  /// Idempotent; safe from a signal-triggered path via RequestStop.
  void Stop();

  /// Async-signal-safe stop request: flips the shutdown flag and closes
  /// the listening socket so the acceptor unblocks. Call Stop() (from a
  /// normal context) afterwards to join.
  void RequestStop();

  /// Blocks until the server stopped (max_requests reached or Stop).
  void Wait();

  /// The bound TCP port (after Start, TCP mode only).
  int port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  ServingDaemon* const daemon_;
  const ServerOptions options_;
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> served_{0};
  int port_ = 0;
  std::thread acceptor_;
  std::vector<std::thread> connections_;
  std::mutex connections_mu_;
};

}  // namespace tmark::serve

#endif  // TMARK_SERVE_SERVER_H_
