#include "tmark/serve/protocol.h"

#include <cstdio>
#include <istream>
#include <ostream>

#include "tmark/common/check.h"
#include "tmark/common/strict_parse.h"
#include "tmark/common/string_util.h"

namespace tmark::serve {
namespace {

/// Longest accepted length prefix: 2^64-1 has 20 digits; anything longer
/// is hostile regardless of the configured frame limit.
constexpr std::size_t kMaxLengthDigits = 20;

std::string FormatScore(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

Result<double> ParseScoreToken(std::string_view token) {
  return ParseFiniteDouble(token);
}

}  // namespace

std::string_view ToString(RequestKind kind) {
  switch (kind) {
    case RequestKind::kClassify:
      return "classify";
    case RequestKind::kRank:
      return "rank";
    case RequestKind::kTopK:
      return "topk";
    case RequestKind::kUpdate:
      return "update";
  }
  TMARK_CHECK_MSG(false, "unknown RequestKind");
  return "";
}

Status WriteFrame(std::ostream& out, std::string_view payload) {
  out << payload.size() << '\n';
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
  if (!out.good()) {
    return DataLossError("stream rejected a " +
                         std::to_string(payload.size()) + "-byte frame");
  }
  return Status::Ok();
}

Result<bool> ReadFrame(std::istream& in, const ProtocolLimits& limits,
                       std::string* payload) {
  TMARK_CHECK(payload != nullptr);
  payload->clear();
  std::string digits;
  for (;;) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof()) {
      if (digits.empty()) return false;  // clean EOF at a frame boundary
      return DataLossError("stream ended inside a frame length prefix");
    }
    if (c == '\n') break;
    digits.push_back(static_cast<char>(c));
    if (digits.size() > kMaxLengthDigits) {
      return ParseError("frame length prefix longer than " +
                        std::to_string(kMaxLengthDigits) + " digits");
    }
  }
  const Result<std::size_t> length = ParseIndex(digits);
  if (!length.ok()) {
    return length.status().WithContext("frame length prefix");
  }
  if (*length > limits.max_frame_bytes) {
    return ResourceExhaustedError(
        "frame of " + std::to_string(*length) + " bytes exceeds the " +
        std::to_string(limits.max_frame_bytes) + "-byte limit");
  }
  payload->resize(*length);
  in.read(payload->data(), static_cast<std::streamsize>(*length));
  if (static_cast<std::size_t>(in.gcount()) != *length) {
    payload->clear();
    return DataLossError("stream ended inside a " + std::to_string(*length) +
                         "-byte frame payload");
  }
  return true;
}

Result<Request> ParseRequest(std::string_view payload) {
  if (payload.empty()) return ParseError("empty request");
  const std::vector<std::string> tokens = Split(payload, ' ');
  for (const std::string& token : tokens) {
    if (token.empty()) return ParseError("request has empty tokens");
  }
  const std::string& verb = tokens[0];
  Request request;
  if (verb == "classify") {
    if (tokens.size() != 2) {
      return ParseError("classify takes exactly one argument: <node>");
    }
    request.kind = RequestKind::kClassify;
    TMARK_ASSIGN_OR_RETURN(request.node, ParseIndex(tokens[1]));
    return request;
  }
  if (verb == "rank" || verb == "topk") {
    if (tokens.size() != 3) {
      return ParseError(verb + " takes exactly two arguments: <seed> <k>");
    }
    request.kind = verb == "rank" ? RequestKind::kRank : RequestKind::kTopK;
    TMARK_ASSIGN_OR_RETURN(request.node, ParseIndex(tokens[1]));
    TMARK_ASSIGN_OR_RETURN(request.top_k, ParseIndex(tokens[2]));
    if (request.top_k == 0) {
      return ParseError(verb + " needs k >= 1");
    }
    return request;
  }
  if (verb == "update") {
    // The path is the rest of the line (server-side paths may hold spaces).
    const std::string path =
        Strip(payload.substr(std::string_view("update").size()));
    if (path.empty()) {
      return ParseError("update takes a server-side delta file path");
    }
    request.kind = RequestKind::kUpdate;
    request.path = path;
    return request;
  }
  return ParseError("unknown verb '" + verb +
                    "' (expected classify|rank|topk|update)");
}

std::string FormatRequest(const Request& request) {
  std::string out(ToString(request.kind));
  switch (request.kind) {
    case RequestKind::kClassify:
      out += " " + std::to_string(request.node);
      break;
    case RequestKind::kRank:
    case RequestKind::kTopK:
      out += " " + std::to_string(request.node) + " " +
             std::to_string(request.top_k);
      break;
    case RequestKind::kUpdate:
      out += " " + request.path;
      break;
  }
  return out;
}

std::string FormatResponse(const Response& response) {
  std::string out = "ok ";
  out += ToString(response.kind);
  out += " " + std::to_string(response.node);
  out += response.stale ? " 1" : " 0";
  out += " " + std::to_string(response.generation);
  out += " " + std::to_string(response.fingerprint);
  for (const ScoredEntry& entry : response.entries) {
    out += " " + std::to_string(entry.index) + ":" + FormatScore(entry.score);
  }
  return out;
}

std::string FormatError(const Status& status) {
  TMARK_CHECK_MSG(!status.ok(), "FormatError needs a non-OK status");
  std::string out = "error ";
  out += StatusCodeToString(status.code());
  if (!status.message().empty()) {
    // The payload is one line by construction; strip embedded breaks.
    std::string message = status.message();
    for (char& c : message) {
      if (c == '\n' || c == '\r') c = ' ';
    }
    out += " " + message;
  }
  return out;
}

Result<Response> ParseResponse(std::string_view payload) {
  const std::vector<std::string> tokens = Split(payload, ' ');
  if (tokens.empty() || tokens[0].empty()) {
    return ParseError("empty response");
  }
  if (tokens[0] == "error") {
    if (tokens.size() < 2) return ParseError("error response without a code");
    StatusCode code = StatusCode::kInternal;
    bool known = false;
    for (const StatusCode candidate :
         {StatusCode::kInvalidArgument, StatusCode::kParseError,
          StatusCode::kNotFound, StatusCode::kFailedPrecondition,
          StatusCode::kDataLoss, StatusCode::kResourceExhausted,
          StatusCode::kInternal}) {
      if (tokens[1] == StatusCodeToString(candidate)) {
        code = candidate;
        known = true;
        break;
      }
    }
    if (!known) {
      return ParseError("unknown error code '" + tokens[1] + "'");
    }
    std::vector<std::string> rest(tokens.begin() + 2, tokens.end());
    return Status(code, Join(rest, " "));
  }
  if (tokens[0] != "ok" || tokens.size() < 6) {
    return ParseError("malformed response header");
  }
  Response response;
  bool verb_known = false;
  for (const RequestKind kind :
       {RequestKind::kClassify, RequestKind::kRank, RequestKind::kTopK,
        RequestKind::kUpdate}) {
    if (tokens[1] == ToString(kind)) {
      response.kind = kind;
      verb_known = true;
      break;
    }
  }
  if (!verb_known) {
    return ParseError("unknown response verb '" + tokens[1] + "'");
  }
  TMARK_ASSIGN_OR_RETURN(response.node, ParseIndex(tokens[2]));
  if (tokens[3] != "0" && tokens[3] != "1") {
    return ParseError("stale flag must be 0 or 1");
  }
  response.stale = tokens[3] == "1";
  TMARK_ASSIGN_OR_RETURN(response.generation, ParseIndex(tokens[4]));
  TMARK_ASSIGN_OR_RETURN(response.fingerprint, ParseIndex(tokens[5]));
  for (std::size_t i = 6; i < tokens.size(); ++i) {
    const std::vector<std::string> parts = Split(tokens[i], ':');
    if (parts.size() != 2) {
      return ParseError("malformed entry '" + tokens[i] + "'");
    }
    ScoredEntry entry;
    TMARK_ASSIGN_OR_RETURN(entry.index, ParseIndex(parts[0]));
    TMARK_ASSIGN_OR_RETURN(entry.score, ParseScoreToken(parts[1]));
    response.entries.push_back(entry);
  }
  return response;
}

}  // namespace tmark::serve
