#ifndef TMARK_SERVE_DAEMON_H_
#define TMARK_SERVE_DAEMON_H_

// In-process serving daemon: owns the HIN, the fitted TMarkClassifier, the
// published ServingBundle, and the batching scheduler. The socket server
// (server.h), the CLI `serve` command, and the closed-loop serving bench
// all drive this one class; the socket layer only adds framing.
//
// Lifecycle: Init() builds the operators once (via the classifier's
// fingerprint cache), fits, publishes generation 1, and starts the
// scheduler. Queries then flow through Execute. An `update` request loads
// a HinDelta, validates it synchronously, and refreshes in the background
// (TMarkClassifier::Update — operator patch + warm restart with
// delta-aware retirement hints) while queries keep being served from the
// previous bundle, flagged stale; the refreshed bundle is published
// atomically, fingerprint-stamped from the post-delta operators
// (docs/SERVING.md "Degradation").

#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "tmark/common/status.h"
#include "tmark/core/tmark.h"
#include "tmark/hin/hin.h"
#include "tmark/hin/hin_delta.h"
#include "tmark/serve/batcher.h"
#include "tmark/serve/bundle.h"
#include "tmark/serve/protocol.h"
#include "tmark/serve/query_engine.h"

namespace tmark::serve {

struct DaemonOptions {
  core::TMarkConfig config;  ///< Fit hyper-parameters + engine choice.
  BatcherOptions batcher;
  /// Seed-walk knobs; alpha/gamma default to `config`'s values when the
  /// caller leaves them at their own defaults (see MakeQueryOptions).
  QueryEngineOptions query;
};

class ServingDaemon {
 public:
  /// Takes ownership of the network; `labeled` is the training set every
  /// (re)fit uses.
  ServingDaemon(hin::Hin hin, std::vector<std::size_t> labeled,
                DaemonOptions options);
  ~ServingDaemon();

  ServingDaemon(const ServingDaemon&) = delete;
  ServingDaemon& operator=(const ServingDaemon&) = delete;

  /// Cold fit + first publish + scheduler start. Must be called (once)
  /// before Execute.
  Status Init();

  /// Serves one request of any kind. classify/rank/topk go to the
  /// scheduler; update loads + validates the delta file synchronously
  /// (typed errors come back on this call), then refreshes in the
  /// background and answers immediately with the generation the refresh
  /// will replace.
  Result<Response> Execute(const Request& request);

  /// Synchronous update: apply `delta`, warm-refresh, publish. Queries
  /// served meanwhile (from other threads) see the previous bundle with
  /// stale = true.
  Status ApplyUpdate(const hin::HinDelta& delta);

  /// Background update; kFailedPrecondition when one is already running.
  Status BeginUpdate(hin::HinDelta delta);

  /// Joins a running background update (no-op otherwise) and returns its
  /// status (OK when none ran).
  Status WaitForUpdate();

  const BundleHolder& bundles() const { return bundles_; }
  BatchingScheduler& scheduler() { return scheduler_; }
  const hin::Hin& hin() const { return hin_; }

 private:
  /// Snapshot of the classifier's current state as the next generation.
  std::shared_ptr<const ServingBundle> MakeBundle();

  hin::Hin hin_;
  const std::vector<std::size_t> labeled_;
  DaemonOptions options_;
  core::TMarkClassifier classifier_;

  BundleHolder bundles_;
  BatchingScheduler scheduler_;

  /// Serializes updates: hin_ and classifier_ are only touched by Init and
  /// by the (single) update in flight. Queries never read them — they read
  /// the immutable published bundle.
  std::mutex update_mu_;
  std::thread update_thread_;
  bool update_running_ = false;  ///< Guarded by update_mu_.
  Status last_update_status_;    ///< Guarded by update_mu_.
  std::uint64_t next_generation_ = 1;  ///< Guarded by update_mu_.
  bool initialized_ = false;
};

/// QueryEngineOptions matching a fit config (alpha/gamma/epsilon/
/// max_iterations carried over).
QueryEngineOptions MakeQueryOptions(const core::TMarkConfig& config);

}  // namespace tmark::serve

#endif  // TMARK_SERVE_DAEMON_H_
