#ifndef TMARK_SERVE_PROTOCOL_H_
#define TMARK_SERVE_PROTOCOL_H_

// Wire protocol of the tmark_served daemon (docs/SERVING.md).
//
// Framing: every message — request or response — is one frame
//
//   <len>\n<payload>
//
// where <len> is the decimal byte length of <payload> (no sign, no
// leading zeros required) and <payload> is a single line of UTF-8 text
// without a trailing newline. Length-prefixing keeps the reader O(len)
// with a hard ceiling: a frame whose declared length exceeds
// ProtocolLimits::max_frame_bytes is refused with kResourceExhausted
// before any payload byte is read.
//
// Request grammar (one verb per frame):
//
//   classify <node>            posterior class distribution of <node>
//   rank <seed> <k>            top-k link types for a walk seeded at <seed>
//   topk <seed> <k>            top-k nodes for a walk seeded at <seed>
//   update <path>              apply a HinDelta file, refresh in background
//
// Response grammar:
//
//   ok <verb> <node> <stale> <generation> <fingerprint> [<i>:<score> ...]
//   error <CODE> <message>
//
// `stale` is 1 when the answer came from the previous bundle while a
// background update was running (graceful degradation). Scores use %.17g
// so they round-trip exactly through the strict parsers.
//
// Everything here is an untrusted-input boundary: all readers and parsers
// return tmark::Status / tmark::Result (docs/ERRORS.md; error_policy_lint
// checks this file's sources for lenient parsers). Failed frame reads and
// request parses are counted in the io.errors{,.<code>} counters by the
// server loop, not here.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "tmark/common/status.h"

namespace tmark::serve {

/// Hard ceilings the frame reader enforces before touching payload bytes.
struct ProtocolLimits {
  /// Longest accepted payload. Every legitimate request is tens of bytes;
  /// the default leaves room for long update paths.
  std::size_t max_frame_bytes = 4096;
};

enum class RequestKind {
  kClassify,
  kRank,
  kTopK,
  kUpdate,
};

/// "classify", "rank", "topk", "update".
std::string_view ToString(RequestKind kind);

/// One parsed client request.
struct Request {
  RequestKind kind = RequestKind::kClassify;
  /// Target node (classify) or walk seed (rank/topk). Unused for update.
  std::size_t node = 0;
  /// Result-list size for rank/topk; must be >= 1.
  std::size_t top_k = 0;
  /// Server-side HinDelta file for update.
  std::string path;
};

/// One (index, score) result entry: class index for classify, relation
/// index for rank, node index for topk.
struct ScoredEntry {
  std::size_t index = 0;
  double score = 0.0;
};

/// One served answer.
struct Response {
  RequestKind kind = RequestKind::kClassify;
  std::size_t node = 0;
  /// True when served from the previous bundle during a background update.
  bool stale = false;
  /// Bundle generation (starts at 1, +1 per hot swap).
  std::uint64_t generation = 0;
  /// Content fingerprint of the operators the answer came from
  /// (core::FingerprintOperators) — the serving side of the fingerprint
  /// honesty rule.
  std::uint64_t fingerprint = 0;
  std::vector<ScoredEntry> entries;
};

/// Writes one frame around `payload`. Returns kDataLoss when the stream
/// rejects bytes.
Status WriteFrame(std::ostream& out, std::string_view payload);

/// Reads one frame into `payload`. Returns false on clean end-of-stream at
/// a frame boundary (no bytes read), true on a full frame. Errors:
/// kParseError for a malformed length prefix, kResourceExhausted when the
/// declared length exceeds `limits`, kDataLoss when the stream ends inside
/// the declared payload.
Result<bool> ReadFrame(std::istream& in, const ProtocolLimits& limits,
                       std::string* payload);

/// Parses a request payload against the grammar above. Index and k tokens
/// go through the strict parsers; `k` must be >= 1. Range checks against
/// the served model happen later, in the scheduler.
Result<Request> ParseRequest(std::string_view payload);

/// Serializes `request` to its payload line (inverse of ParseRequest).
std::string FormatRequest(const Request& request);

/// Serializes an ok-response to its payload line.
std::string FormatResponse(const Response& response);

/// Serializes a non-OK status to an `error <CODE> <message>` payload.
std::string FormatError(const Status& status);

/// Parses a response payload: an `ok ...` line yields the Response, an
/// `error ...` line yields the transported Status, anything else is
/// kParseError. Used by the load generator and the tests; the daemon only
/// formats.
Result<Response> ParseResponse(std::string_view payload);

}  // namespace tmark::serve

#endif  // TMARK_SERVE_PROTOCOL_H_
