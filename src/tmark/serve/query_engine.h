#ifndef TMARK_SERVE_QUERY_ENGINE_H_
#define TMARK_SERVE_QUERY_ENGINE_H_

// Panel fixed-point engine behind the rank/topk verbs (docs/SERVING.md).
//
// A seed query runs the paper's fixed point (Eqs. 8 and 10) personalized
// to one node: the restart vector is e_seed instead of a class label
// vector, and the ICA refresh is off (there is no class to refresh
// toward). The stationary x ranks every node by relevance to the seed and
// the stationary z ranks the link types the seed's neighborhood leans on —
// the same two headline outputs the paper reports per class, specialized
// to one walker.
//
// The perf point: a batch of seeds advances on one row-major n x width
// panel through the same fused kernels as the batched fit engine
// (ApplyOPanel -> ApplyPanel + FusedCombineColumns -> ApplyRPanel ->
// FusedNormalizeDistanceColumns), so each sparse structure is streamed
// once per iteration for the whole batch and serving cost scales with
// panel width. Every panel kernel performs, per column, exactly the
// floating-point operations of its single-vector counterpart in the same
// order (la/panel.h), and converged columns retire by compaction without
// touching their neighbors — so a query's answer is bit-identical no
// matter which batch the scheduler coalesced it into (pinned by
// tests/serve/batcher_test.cc).

#include <cstddef>
#include <vector>

#include "tmark/core/prepared_operators.h"
#include "tmark/la/dense_matrix.h"
#include "tmark/la/panel.h"
#include "tmark/la/vector_ops.h"

namespace tmark::serve {

/// Fixed-point knobs of the seed walk; same semantics as TMarkConfig
/// (alpha restarts to e_seed, beta = gamma * (1 - alpha) weights the
/// feature walk).
struct QueryEngineOptions {
  double alpha = 0.8;
  double gamma = 0.6;
  double epsilon = 1e-8;
  int max_iterations = 100;

  double beta() const { return gamma * (1.0 - alpha); }
};

/// One converged seed walk.
struct SeedQueryResult {
  la::Vector x;  ///< n: stationary node relevance to the seed.
  la::Vector z;  ///< m: stationary link-type importance for the seed.
  std::size_t iterations = 0;
  bool converged = false;
};

/// Runs batches of seed walks on shared panels. Not thread-safe: the
/// batching scheduler owns one instance on its worker thread, which is
/// what lets the panel buffers persist across batches without locking.
class PanelQueryEngine {
 public:
  explicit PanelQueryEngine(QueryEngineOptions options);

  /// Runs one walk per seed (all seeds must be < ops.num_nodes()), batch
  /// width = seeds.size(). `results` is resized to match; results[i]
  /// belongs to seeds[i].
  void Run(const core::PreparedOperators& ops,
           const std::vector<std::size_t>& seeds,
           std::vector<SeedQueryResult>* results);

 private:
  /// (Re)sizes the panel buffers for `n` x `m` operators at `width`
  /// columns; keeps capacity across batches of the same shape.
  void EnsureCapacity(std::size_t n, std::size_t m, std::size_t width);

  QueryEngineOptions options_;
  la::PanelWorkspace ws_;
  la::DenseMatrix x_panel_;
  la::DenseMatrix z_panel_;
  la::DenseMatrix l_panel_;
  la::DenseMatrix x_next_;
  la::DenseMatrix z_next_;
  la::DenseMatrix wx_panel_;
  std::vector<std::size_t> slot_result_;
  la::Vector rho_x_;
  la::Vector rho_z_;
  la::Vector x_sums_;
  la::Vector z_sums_;
};

}  // namespace tmark::serve

#endif  // TMARK_SERVE_QUERY_ENGINE_H_
