#include "tmark/datasets/acm.h"

#include "tmark/datasets/synthetic_hin.h"

namespace tmark::datasets {

std::vector<std::string> AcmLinkTypeNames() {
  return {"authors", "concepts", "conferences",
          "keywords", "year",    "citations"};
}

std::vector<std::string> AcmIndexTermNames() {
  // ACM CCS top-level index terms covering the KDD/SIGIR corpus.
  return {"Database Management",
          "Information Storage and Retrieval",
          "Artificial Intelligence",
          "Pattern Recognition",
          "Information Systems Applications",
          "Software Engineering",
          "Theory of Computation",
          "Computing Methodologies"};
}

hin::Hin MakeAcm(const AcmOptions& options) {
  SyntheticHinConfig config;
  config.num_nodes = options.num_publications;
  config.class_names = AcmIndexTermNames();
  config.vocab_size = 320;
  config.words_per_node = 22.0;
  config.feature_signal = 0.72;
  config.secondary_label_prob = 0.35;  // multi-label index terms
  config.seed = options.seed;

  // Link-type profiles: concept and conference links are most class-aligned
  // (Fig. 5); year links are nearly class-blind; citations are directed.
  struct Profile {
    const char* name;
    double affinity;
    double volume;
    bool directed;
  };
  constexpr Profile kProfiles[] = {
      {"authors", 0.74, 3.0, false},   {"concepts", 0.93, 5.0, false},
      {"conferences", 0.90, 4.6, false}, {"keywords", 0.76, 3.6, false},
      {"year", 0.72, 1.2, false},      {"citations", 0.80, 2.8, true},
  };
  for (const Profile& p : kProfiles) {
    RelationSpec spec;
    spec.name = p.name;
    spec.same_class_prob = p.affinity;
    spec.edges_per_member = p.volume;
    spec.directed = p.directed;
    config.relations.push_back(std::move(spec));
  }
  return GenerateSyntheticHin(config);
}

}  // namespace tmark::datasets
