#include "tmark/datasets/synthetic_hin.h"

#include <algorithm>
#include <cmath>

#include "tmark/common/check.h"
#include "tmark/common/random.h"
#include "tmark/hin/hin_builder.h"

namespace tmark::datasets {

SyntheticHinConfig ScalingSyntheticConfig(std::size_t num_nodes,
                                          std::uint64_t seed) {
  SyntheticHinConfig config;
  config.num_nodes = num_nodes;
  config.class_names = {"A", "B", "C"};
  config.relations.resize(3);
  config.relations[0].name = "r0";
  config.relations[0].same_class_prob = 0.8;
  config.relations[1].name = "r1";
  config.relations[1].same_class_prob = 0.6;
  config.relations[2].name = "r2";
  config.relations[2].same_class_prob = 0.2;
  for (RelationSpec& spec : config.relations) spec.edges_per_member = 2.0;
  config.vocab_size = 90;
  config.words_per_node = 6.0;
  config.seed = seed;
  return config;
}

hin::Hin GenerateSyntheticHin(const SyntheticHinConfig& config) {
  const std::size_t n = config.num_nodes;
  const std::size_t q = config.class_names.size();
  TMARK_CHECK(n > 0 && q >= 2);
  TMARK_CHECK(!config.relations.empty());
  TMARK_CHECK(config.vocab_size >= q);
  Rng rng(config.seed);

  hin::HinBuilder builder(n, config.vocab_size);
  for (const std::string& name : config.class_names) builder.AddClass(name);

  // Labels: latent primary class drives links/features; the observed label
  // is the latent one except for a label_noise fraction of nodes.
  std::vector<std::size_t> primary(n);
  std::vector<std::vector<std::size_t>> by_class(q);
  // Class sizes are Binomial(n, 1/q); 2n/q + 64 covers the tail many sigmas
  // out, so the per-class pools never reallocate. Reservations only — the
  // RNG call sequence below is part of the preset contract and must not
  // change.
  for (std::vector<std::size_t>& pool : by_class) {
    pool.reserve(2 * n / q + 64);
  }
  for (std::size_t i = 0; i < n; ++i) {
    primary[i] = static_cast<std::size_t>(rng.UniformInt(q));
    by_class[primary[i]].push_back(i);
    std::size_t observed = primary[i];
    if (config.label_noise > 0.0 && rng.Bernoulli(config.label_noise)) {
      observed = static_cast<std::size_t>(rng.UniformInt(q));
    }
    builder.SetLabel(i, observed);
    if (config.secondary_label_prob > 0.0 &&
        rng.Bernoulli(config.secondary_label_prob)) {
      std::size_t extra = static_cast<std::size_t>(rng.UniformInt(q - 1));
      if (extra >= observed) ++extra;
      builder.SetLabel(i, extra);
    }
  }
  for (std::size_t c = 0; c < q; ++c) {
    TMARK_CHECK_MSG(!by_class[c].empty(),
                    "class " << config.class_names[c]
                             << " received no nodes; increase num_nodes");
  }

  // Features: class topic blocks + uniform noise. The record count is
  // Poisson-concentrated around n * words_per_node; reserve the mean plus
  // slack so assembly stays O(nodes + edges).
  builder.ReserveFeatures(static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * config.words_per_node * 1.1)) +
      64);
  const std::size_t block = config.vocab_size / q;
  for (std::size_t i = 0; i < n; ++i) {
    const int words = rng.Poisson(config.words_per_node);
    for (int w = 0; w < words; ++w) {
      std::size_t word;
      if (rng.Bernoulli(config.feature_signal)) {
        word = primary[i] * block +
               static_cast<std::size_t>(rng.UniformInt(block));
      } else {
        word = static_cast<std::size_t>(rng.UniformInt(config.vocab_size));
      }
      builder.AddFeature(i, word, 1.0);
    }
  }

  // Relations.
  for (const RelationSpec& spec : config.relations) {
    TMARK_CHECK_MSG(spec.class_preference.empty() ||
                        spec.class_preference.size() == q,
                    "class_preference of relation "
                        << spec.name << " must be empty or size q");
    TMARK_CHECK_MSG(spec.same_class_prob + spec.cross_class_prob <= 1.0,
                    "same_class_prob + cross_class_prob must be <= 1 for "
                        << spec.name);
    const std::size_t k = builder.AddRelation(spec.name);

    // Source sampling weights per class.
    std::vector<double> class_weights(q, 1.0);
    if (!spec.class_preference.empty()) {
      class_weights = spec.class_preference;
    }
    // Participation mass: sum over classes of |class| * weight, used to set
    // the edge budget so edges_per_member means "per participating node".
    double mass = 0.0;
    double max_w = 0.0;
    for (std::size_t c = 0; c < q; ++c) {
      mass += static_cast<double>(by_class[c].size()) * class_weights[c];
      max_w = std::max(max_w, class_weights[c]);
    }
    TMARK_CHECK_MSG(max_w > 0.0, "relation " << spec.name
                                             << " has all-zero preference");
    const std::size_t num_edges = static_cast<std::size_t>(
        std::llround(spec.edges_per_member * mass / max_w));

    std::vector<double> pick_class(q);
    for (std::size_t c = 0; c < q; ++c) {
      pick_class[c] =
          class_weights[c] * static_cast<double>(by_class[c].size());
    }
    // Each undirected edge buffers two directed records.
    builder.ReserveEdges(k, num_edges * (spec.directed ? 1 : 2));
    for (std::size_t e = 0; e < num_edges; ++e) {
      const std::size_t sc = rng.Categorical(pick_class);
      const std::vector<std::size_t>& pool = by_class[sc];
      const std::size_t src = pool[rng.UniformInt(pool.size())];
      std::size_t dst;
      const double roll = rng.Uniform();
      if (roll < spec.same_class_prob && pool.size() > 1) {
        do {
          dst = pool[rng.UniformInt(pool.size())];
        } while (dst == src);
      } else if (roll < spec.same_class_prob + spec.cross_class_prob) {
        // Deliberately cross-class: pick a class other than the source's.
        std::size_t other = static_cast<std::size_t>(rng.UniformInt(q - 1));
        if (other >= sc) ++other;
        const std::vector<std::size_t>& opool = by_class[other];
        dst = opool[rng.UniformInt(opool.size())];
      } else {
        do {
          dst = static_cast<std::size_t>(rng.UniformInt(n));
        } while (dst == src);
      }
      if (spec.directed) {
        builder.AddDirectedEdge(k, src, dst);
      } else {
        builder.AddUndirectedEdge(k, src, dst);
      }
    }
  }
  return std::move(builder).Build();
}

}  // namespace tmark::datasets
