#ifndef TMARK_DATASETS_ACM_H_
#define TMARK_DATASETS_ACM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tmark/hin/hin.h"

namespace tmark::datasets {

/// Options for the synthetic ACM publication network (Sec. 6.4).
struct AcmOptions {
  std::size_t num_publications = 700;
  std::uint64_t seed = 1999;
};

/// Synthetic stand-in for the ACM digital-library HIN (KDD 1999-2010 +
/// SIGIR 2000-2010): publications as nodes, ACM CCS index terms as
/// *multi-label* classes, title bag-of-words features, and the paper's six
/// link types — authors, concepts, conferences, keywords, published year,
/// citations (the only directed one). Concept and conference links are the
/// most class-aligned, reproducing Fig. 5's finding that those two types
/// dominate the per-class link importance.
hin::Hin MakeAcm(const AcmOptions& options = {});

/// The six link-type names in relation-index order.
std::vector<std::string> AcmLinkTypeNames();

/// The index-term class names.
std::vector<std::string> AcmIndexTermNames();

}  // namespace tmark::datasets

#endif  // TMARK_DATASETS_ACM_H_
