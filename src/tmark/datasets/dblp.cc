#include "tmark/datasets/dblp.h"

#include "tmark/datasets/synthetic_hin.h"

namespace tmark::datasets {
namespace {

// Class order: DB = 0, DM = 1, AI = 2, IR = 3.
constexpr std::size_t kDb = 0;
constexpr std::size_t kDm = 1;
constexpr std::size_t kAi = 2;
constexpr std::size_t kIr = 3;

/// One conference's planted profile.
struct ConferenceSpec {
  const char* name;
  std::size_t area;            ///< Home area (Table 1).
  double home_weight;          ///< Preference weight on the home area.
  std::size_t cross_area;      ///< Secondary area (or same as `area`).
  double cross_weight;         ///< Preference weight on the secondary area.
  double affinity;             ///< Same-class probability of its links.
  double volume;               ///< edges_per_member (publication volume).
};

/// Profiles mirror the ranking behaviour reported around Table 2: the top-4
/// venues of each area are strongly aligned; CIKM bleeds into DB, ICDE into
/// DM, SIGIR into AI and IJCAI into IR (their cross-area top-5 entries);
/// PODS/PKDD are lower-volume (rank 6 in their areas); CVPR and WSDM are
/// diffuse (rank 11 in AI and 19 in IR respectively).
constexpr ConferenceSpec kConferences[] = {
    // DB (Table 1 column 1)
    {"VLDB", kDb, 1.00, kDb, 0.00, 0.70, 3.0},
    {"SIGMOD", kDb, 1.00, kDb, 0.00, 0.70, 2.8},
    {"ICDE", kDb, 1.00, kDm, 0.45, 0.66, 2.6},
    {"EDBT", kDb, 1.00, kDb, 0.00, 0.68, 2.4},
    {"PODS", kDb, 0.70, kDb, 0.00, 0.66, 1.5},
    // DM
    {"KDD", kDm, 1.00, kDm, 0.00, 0.70, 3.0},
    {"ICDM", kDm, 1.00, kDm, 0.00, 0.70, 2.8},
    {"PAKDD", kDm, 1.00, kDm, 0.00, 0.68, 2.5},
    {"SDM", kDm, 1.00, kDm, 0.00, 0.68, 2.4},
    {"PKDD", kDm, 0.70, kDm, 0.00, 0.66, 1.5},
    // AI
    {"IJCAI", kAi, 1.00, kIr, 0.35, 0.70, 3.0},
    {"AAAI", kAi, 1.00, kAi, 0.00, 0.70, 2.8},
    {"ICML", kAi, 1.00, kAi, 0.00, 0.69, 2.6},
    {"ECML", kAi, 0.85, kDm, 0.20, 0.66, 2.0},
    {"CVPR", kAi, 0.45, kAi, 0.00, 0.00, 3.0},
    // IR
    {"SIGIR", kIr, 1.00, kAi, 0.35, 0.70, 3.0},
    {"CIKM", kIr, 1.00, kDb, 0.45, 0.66, 2.7},
    {"ECIR", kIr, 1.00, kIr, 0.00, 0.68, 2.4},
    {"WWW", kIr, 1.00, kDm, 0.25, 0.67, 2.5},
    {"WSDM", kIr, 0.40, kIr, 0.00, 0.00, 2.5},
};

}  // namespace

std::vector<std::string> DblpAreaNames() { return {"DB", "DM", "AI", "IR"}; }

std::vector<std::vector<std::string>> DblpAreaConferences() {
  std::vector<std::vector<std::string>> out(4);
  for (const ConferenceSpec& conf : kConferences) {
    out[conf.area].push_back(conf.name);
  }
  return out;
}

hin::Hin MakeDblp(const DblpOptions& options) {
  SyntheticHinConfig config;
  config.num_nodes = options.num_authors;
  config.class_names = DblpAreaNames();
  config.vocab_size = 400;
  config.words_per_node = 14.0;
  config.feature_signal = 0.45;
  config.label_noise = 0.08;
  config.seed = options.seed;
  for (const ConferenceSpec& conf : kConferences) {
    RelationSpec spec;
    spec.name = conf.name;
    spec.same_class_prob = conf.affinity;
    // Interdisciplinary venues (CVPR, WSDM in this author population)
    // actively bridge research areas: their links mostly cross classes.
    if (conf.affinity < 0.1) spec.cross_class_prob = 0.85;
    spec.edges_per_member = conf.volume;
    spec.class_preference.assign(4, conf.affinity < 0.1 ? 0.8 : 0.05);  // noisy venues draw from all areas
    spec.class_preference[conf.area] =
        std::max(spec.class_preference[conf.area], conf.home_weight);
    spec.class_preference[conf.cross_area] =
        std::max(spec.class_preference[conf.cross_area], conf.cross_weight);
    config.relations.push_back(std::move(spec));
  }
  return GenerateSyntheticHin(config);
}

}  // namespace tmark::datasets
