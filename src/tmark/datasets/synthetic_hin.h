#ifndef TMARK_DATASETS_SYNTHETIC_HIN_H_
#define TMARK_DATASETS_SYNTHETIC_HIN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tmark/hin/hin.h"

namespace tmark::datasets {

/// Specification of one synthetic link type.
struct RelationSpec {
  std::string name;
  /// Probability that a generated edge connects two nodes sharing the source
  /// node's primary class — the link type's discriminative power. The paper
  /// calls links with high values "relevant links" (Sec. 6.3).
  double same_class_prob = 0.8;
  /// Probability that an edge deliberately crosses classes (interdisciplinary
  /// link types). The remaining 1 - same_class_prob - cross_class_prob mass
  /// picks targets uniformly. Must satisfy same + cross <= 1.
  double cross_class_prob = 0.0;
  /// Expected number of generated edge records per participating node.
  double edges_per_member = 3.0;
  /// Optional per-class weights on the *source* node's class: relation k is
  /// used mostly by nodes of the classes it prefers. Empty = uniform. This
  /// is what plants the link/class alignment behind the ranking tables
  /// (Table 2 conferences, Table 5 directors, Fig. 5 ACM link types).
  std::vector<double> class_preference;
  bool directed = false;
};

/// Full generator configuration.
struct SyntheticHinConfig {
  std::size_t num_nodes = 500;
  std::vector<std::string> class_names;
  std::vector<RelationSpec> relations;
  /// Bag-of-words vocabulary. Each class owns a disjoint topic block of
  /// `vocab_size / num_classes` words.
  std::size_t vocab_size = 300;
  /// Expected words per node (Poisson).
  double words_per_node = 20.0;
  /// Probability a word is drawn from the node's class topic rather than
  /// uniformly from the whole vocabulary — the feature signal strength.
  double feature_signal = 0.7;
  /// Probability a node carries one extra label (multi-label tasks).
  double secondary_label_prob = 0.0;
  /// Probability that a node's *observed* primary label differs from the
  /// latent class driving its links and features — the irreducible labeling
  /// error of real corpora (mislabeled authors/genres). Caps achievable
  /// accuracy at roughly 1 - label_noise * (1 - 1/q) for every method.
  double label_noise = 0.0;
  std::uint64_t seed = 42;
};

/// Configuration of the scaling-study graph family behind the
/// `synthetic:<n>` preset and bench_perf_scaling: constant average degree
/// (so edges, features, and fit work all grow linearly in n — the regime of
/// the Sec. 4.5 complexity analysis), 3 classes, 3 relations of
/// 2 undirected edges per member, a 90-word vocabulary, and ~6 words per
/// node. Deterministic given (n, seed); generation is O(nodes + edges).
SyntheticHinConfig ScalingSyntheticConfig(std::size_t num_nodes,
                                          std::uint64_t seed);

/// Generates a HIN with planted class structure in both links and features.
///
/// Node labels are drawn uniformly; each relation generates edges whose
/// endpoints agree on class with its `same_class_prob`, with sources biased
/// by `class_preference`; features mix class-topic words with uniform noise.
/// Deterministic given the seed.
hin::Hin GenerateSyntheticHin(const SyntheticHinConfig& config);

}  // namespace tmark::datasets

#endif  // TMARK_DATASETS_SYNTHETIC_HIN_H_
