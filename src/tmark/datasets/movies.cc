#include "tmark/datasets/movies.h"

#include <array>
#include <string>

#include "tmark/common/check.h"
#include "tmark/common/random.h"
#include "tmark/hin/hin_builder.h"

namespace tmark::datasets {
namespace {

// Genre order matches Table 5's columns.
constexpr std::size_t kAdventure = 0;
constexpr std::size_t kDocumentary = 1;
constexpr std::size_t kRomance = 2;
constexpr std::size_t kThriller = 3;
constexpr std::size_t kWar = 4;

/// A named director with genre-preference weights (larger = more of their
/// films in that genre). Values reflect the placements in the paper's
/// Table 5 — e.g. Hitchcock tops Romance, Thriller and War; Reitman tops
/// Documentary; Kurosawa tops Adventure.
struct NamedDirector {
  const char* name;
  std::array<double, 5> preference;
  int films;  ///< Filmography size (named directors are prolific).
};

constexpr NamedDirector kNamedDirectors[] = {
    {"Akira Kurosawa", {9, 5, 3, 0, 0}, 9},
    {"Joel Schumacher", {7, 0, 4, 0, 0}, 8},
    {"William Wyler", {6, 0, 0, 2, 0}, 7},
    {"Renny Harlin", {5, 0, 0, 2, 0}, 6},
    {"George Miller", {5, 0, 0, 0, 0}, 6},
    {"Oliver Stone", {4, 0, 0, 0, 0}, 6},
    {"John Huston", {4, 0, 0, 0, 0}, 6},
    {"Phillip Noyce", {3, 0, 0, 0, 0}, 5},
    {"Billy Wilder", {3, 0, 0, 0, 0}, 5},
    {"Peter Jackson", {3, 0, 0, 0, 0}, 5},
    {"Ivan Reitman", {0, 9, 0, 0, 0}, 8},
    {"Woody Allen", {0, 7, 0, 3, 0}, 8},
    {"Martin Scorsese", {0, 6, 0, 0, 0}, 7},
    {"Sydney Pollack", {0, 5, 0, 0, 0}, 6},
    {"Stephen Hopkins", {0, 4, 0, 0, 0}, 6},
    {"John Woo", {0, 4, 0, 0, 0}, 6},
    {"Ethan Coen", {0, 3, 0, 0, 0}, 5},
    {"Sidney Lumet", {0, 3, 0, 0, 0}, 5},
    {"John Sturges", {0, 3, 0, 0, 0}, 5},
    {"Alfred Hitchcock", {0, 0, 9, 9, 9}, 12},
    {"Clint Eastwood", {0, 0, 7, 6, 0}, 9},
    {"Steven Spielberg", {0, 0, 6, 7, 2}, 10},
    {"Werner Herzog", {0, 0, 4, 0, 0}, 5},
    {"Ron Howard", {0, 0, 3, 0, 0}, 5},
    {"Don Siegel", {0, 0, 3, 0, 0}, 5},
    {"Terry Gilliam", {0, 0, 3, 0, 0}, 5},
    {"Kenneth Branagh", {0, 0, 3, 0, 0}, 5},
    {"Roger Donaldson", {0, 0, 0, 5, 0}, 6},
    {"Brian De Palma", {0, 0, 0, 4, 0}, 6},
    {"Richard Fleischer", {0, 0, 0, 3, 0}, 5},
    {"Michael Apted", {0, 0, 0, 3, 0}, 5},
    {"Howard Hawks", {0, 0, 0, 0, 8}, 7},
    {"John Badham", {0, 0, 0, 0, 6}, 6},
    {"Wes Craven", {0, 0, 0, 0, 5}, 6},
    {"Peter Howitt", {0, 0, 0, 0, 5}, 5},
    {"Michael Mann", {0, 0, 0, 0, 4}, 5},
    {"Oliver Hirschbiegel", {0, 0, 0, 0, 4}, 5},
    {"Jim Gillespie", {0, 0, 0, 0, 3}, 5},
    {"Christian Duguary", {0, 0, 0, 0, 3}, 5},
};

constexpr std::size_t kVocab = 300;

}  // namespace

std::vector<std::string> MovieGenreNames() {
  return {"adventure", "documentary", "romance", "thriller", "war"};
}

hin::Hin MakeMovies(const MoviesOptions& options) {
  const std::size_t n = options.num_movies;
  const std::size_t num_named =
      sizeof(kNamedDirectors) / sizeof(kNamedDirectors[0]);
  TMARK_CHECK(options.num_directors >= num_named);
  TMARK_CHECK(n >= 100);
  Rng rng(options.seed);

  hin::HinBuilder builder(n, kVocab);
  const std::vector<std::string> genres = MovieGenreNames();
  for (const std::string& g : genres) builder.AddClass(g);

  // Genres and tag features. Tags are noisy: weak per-genre topic plus a
  // heavy uniform tail — the paper attributes the low absolute accuracies
  // on Movies to exactly this.
  const std::size_t q = genres.size();
  std::vector<std::size_t> genre_of(n);
  std::vector<std::vector<std::size_t>> by_genre(q);
  const std::size_t block = kVocab / q;
  for (std::size_t i = 0; i < n; ++i) {
    genre_of[i] = static_cast<std::size_t>(rng.UniformInt(q));
    std::size_t observed = genre_of[i];
    if (options.label_noise > 0.0 && rng.Bernoulli(options.label_noise)) {
      observed = static_cast<std::size_t>(rng.UniformInt(q));
    }
    builder.SetLabel(i, observed);
    by_genre[genre_of[i]].push_back(i);
    const int words = rng.Poisson(18.0);
    for (int w = 0; w < words; ++w) {
      // Tag mix: genre topic words, uniform noise, and a heavy share of
      // ubiquitous popular tags ("dvd", "netflix", ...) occupying the last
      // dimensions. Popular tags swamp cosine similarity (hurting
      // similarity-propagation methods) while linear classifiers simply
      // learn to ignore those dimensions — the regime behind Table 4.
      const double roll = rng.Uniform();
      std::size_t word;
      if (roll < 0.34) {
        word = genre_of[i] * block +
               static_cast<std::size_t>(rng.UniformInt(block));
      } else if (roll < 0.82) {
        word = static_cast<std::size_t>(rng.UniformInt(kVocab));
      } else {
        word = kVocab - 1 - static_cast<std::size_t>(rng.UniformInt(8));
      }
      builder.AddFeature(i, word, 1.0);
    }
  }

  // Directors: one relation each; the director's movies form a clique.
  auto add_director = [&](const std::string& name,
                          const std::vector<double>& preference, int films) {
    const std::size_t k = builder.AddRelation(name);
    std::vector<std::size_t> filmography;
    for (int f = 0; f < films; ++f) {
      // Draw the film's genre from the director's preference, then a movie
      // of that genre (a small chance of a random movie keeps things noisy).
      std::size_t movie;
      if (rng.Bernoulli(0.55)) {
        const std::size_t g = rng.Categorical(preference);
        const std::vector<std::size_t>& pool = by_genre[g];
        movie = pool[rng.UniformInt(pool.size())];
      } else {
        movie = static_cast<std::size_t>(rng.UniformInt(n));
      }
      filmography.push_back(movie);
    }
    for (std::size_t a = 0; a < filmography.size(); ++a) {
      for (std::size_t b = a + 1; b < filmography.size(); ++b) {
        if (filmography[a] != filmography[b]) {
          builder.AddUndirectedEdge(k, filmography[a], filmography[b]);
        }
      }
    }
  };

  for (const NamedDirector& d : kNamedDirectors) {
    std::vector<double> pref(d.preference.begin(), d.preference.end());
    // Floor so every genre stays reachable.
    for (double& p : pref) p += 0.3;
    add_director(d.name, pref, d.films);
  }
  for (std::size_t d = num_named; d < options.num_directors; ++d) {
    std::vector<double> pref(q, 0.3);
    pref[rng.UniformInt(q)] += 1.2;
    const int films = 2 + static_cast<int>(rng.UniformInt(3));  // 2..4
    add_director("Director " + std::to_string(d + 1), pref, films);
  }
  return std::move(builder).Build();
}

}  // namespace tmark::datasets
