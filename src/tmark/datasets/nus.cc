#include "tmark/datasets/nus.h"

#include "tmark/common/check.h"
#include "tmark/datasets/synthetic_hin.h"

namespace tmark::datasets {
namespace {

constexpr std::size_t kScene = 0;
constexpr std::size_t kObject = 1;

struct TagSpec {
  const char* name;
  std::size_t concept_class;  ///< Dominant class of the images it links.
  double volume;        ///< edges_per_member (tag popularity).
};

/// Table 6 tags. Class assignment follows the Table 9 top-12 split (scene
/// tags: sky/clouds/sunset/...; object tags: portrait/cat/animals/...).
/// Volumes decay down the table so the T-Mark ranking lands near it.
constexpr TagSpec kTagset1[] = {
    {"sky", kScene, 5.0},        {"water", kScene, 4.6},
    {"clouds", kScene, 4.8},     {"landscape", kScene, 4.2},
    {"sunset", kScene, 4.4},     {"architecture", kScene, 4.0},
    {"portrait", kObject, 5.0},  {"reflection", kScene, 3.8},
    {"animal", kObject, 4.0},    {"building", kScene, 3.2},
    {"animals", kObject, 4.4},   {"lake", kScene, 3.4},
    {"mountains", kScene, 2.6},  {"cute", kObject, 2.8},
    {"abandoned", kScene, 3.6},  {"grass", kScene, 2.4},
    {"mountain", kScene, 2.4},   {"window", kScene, 3.0},
    {"cat", kObject, 4.6},       {"sunrise", kScene, 2.4},
    {"zoo", kObject, 3.6},       {"bridge", kScene, 3.6},
    {"cloud", kScene, 2.2},      {"dog", kObject, 3.0},
    {"fall", kObject, 2.2},      {"face", kObject, 4.2},
    {"square", kScene, 2.0},     {"rain", kObject, 3.4},
    {"airplane", kObject, 2.6},  {"eyes", kObject, 2.0},
    {"home", kScene, 1.8},       {"cold", kScene, 1.8},
    {"windows", kScene, 1.8},    {"sign", kScene, 1.6},
    {"flying", kObject, 1.8},    {"plane", kObject, 1.6},
    {"arizona", kScene, 1.4},    {"manhattan", kScene, 1.4},
    {"peace", kObject, 1.4},     {"rural", kScene, 1.4},
    {"sports", kObject, 3.2},
};

/// Table 7 tags: high-frequency, weakly class-aligned. The leading generic
/// tags (nature/sky/blue/...) are nearly class-blind, matching the Table 10
/// observation that both classes rank the same tags on top.
constexpr TagSpec kTagset2[] = {
    {"nature", kScene, 6.0},        {"sky", kScene, 6.0},
    {"blue", kScene, 5.6},          {"water", kScene, 5.4},
    {"clouds", kScene, 5.2},        {"red", kObject, 5.0},
    {"green", kScene, 4.8},         {"bravo", kScene, 4.8},
    {"landscape", kScene, 4.6},     {"explore", kObject, 4.4},
    {"sunset", kScene, 4.4},        {"white", kObject, 4.2},
    {"night", kScene, 4.0},         {"architecture", kScene, 3.8},
    {"portrait", kObject, 3.8},     {"city", kScene, 3.6},
    {"travel", kScene, 3.6},        {"trees", kScene, 3.4},
    {"california", kScene, 3.2},    {"reflection", kScene, 3.2},
    {"animal", kObject, 3.0},       {"girl", kObject, 3.0},
    {"interestingness", kScene, 2.8}, {"building", kScene, 2.8},
    {"river", kScene, 2.6},         {"animals", kObject, 2.6},
    {"lake", kScene, 2.4},          {"abandoned", kScene, 2.4},
    {"window", kScene, 2.2},        {"cat", kObject, 2.2},
    {"sunrise", kScene, 2.0},       {"zoo", kObject, 2.0},
    {"bridge", kScene, 1.8},        {"dog", kObject, 1.8},
    {"baby", kObject, 1.6},         {"buildings", kScene, 1.6},
    {"food", kObject, 1.4},         {"storm", kScene, 1.4},
    {"moon", kScene, 1.2},          {"skyline", kScene, 1.2},
    {"cats", kObject, 1.0},
};

}  // namespace

std::vector<std::string> NusClassNames() { return {"Scene", "Object"}; }

std::vector<std::string> NusTagNames(NusTagset tagset) {
  std::vector<std::string> out;
  if (tagset == NusTagset::kTagset1) {
    for (const TagSpec& t : kTagset1) out.push_back(t.name);
  } else {
    for (const TagSpec& t : kTagset2) out.push_back(t.name);
  }
  return out;
}

hin::Hin MakeNus(const NusOptions& options) {
  SyntheticHinConfig config;
  config.num_nodes = options.num_images;
  config.class_names = NusClassNames();
  config.vocab_size = 500;  // SIFT bag-of-words length 500 (Sec. 6.3).
  config.words_per_node = 30.0;
  config.feature_signal = 0.12;  // SIFT features are weak on this task
  config.label_noise = options.label_noise;
  config.seed = options.seed;

  const bool relevant = options.tagset == NusTagset::kTagset1;
  const TagSpec* tags = relevant ? kTagset1 : kTagset2;
  const std::size_t count = relevant
                                ? sizeof(kTagset1) / sizeof(kTagset1[0])
                                : sizeof(kTagset2) / sizeof(kTagset2[0]);
  for (std::size_t t = 0; t < count; ++t) {
    RelationSpec spec;
    spec.name = tags[t].name;
    spec.edges_per_member = tags[t].volume;
    if (relevant) {
      // Discriminative tags: strongly class-pure links.
      spec.same_class_prob = 0.88;
      spec.class_preference.assign(2, 0.06);
      spec.class_preference[tags[t].concept_class] = 1.0;
    } else {
      // Frequent tags: links barely better than chance.
      // Planted 0.04 realizes ~0.52 same-class purity once the uniform
      // fallback (50% same-class for q = 2) is accounted for.
      spec.same_class_prob = 0.04;
      spec.class_preference.assign(2, 0.49);
      spec.class_preference[tags[t].concept_class] = 0.51;
    }
    config.relations.push_back(std::move(spec));
  }
  return GenerateSyntheticHin(config);
}

}  // namespace tmark::datasets
