#ifndef TMARK_DATASETS_NUS_H_
#define TMARK_DATASETS_NUS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tmark/hin/hin.h"

namespace tmark::datasets {

/// Which tag set builds the links (the Sec. 6.3 link-selection ablation).
enum class NusTagset {
  /// Table 6: tags ranked by same-class connection probability — the
  /// *relevant* links. T-Mark reaches ~0.95 accuracy on this HIN.
  kTagset1,
  /// Table 7: tags ranked by raw frequency — popular but class-agnostic
  /// links. Accuracy stalls below ~0.7 no matter how much data is labeled.
  kTagset2,
};

/// Options for the synthetic NUS-WIDE image network.
struct NusOptions {
  NusTagset tagset = NusTagset::kTagset1;
  std::size_t num_images = 1500;
  /// Scene-vs-object is ambiguous for a slice of images (a landscape with a
  /// prominent animal); the observed concept label deviates from the latent
  /// one at this rate, putting the Tagset1 ceiling near the paper's ~0.96.
  double label_noise = 0.05;
  std::uint64_t seed = 5780;
};

/// Synthetic stand-in for the NUS-WIDE image HIN: images as nodes, two
/// high-level concepts ("Scene", "Object") as classes, a SIFT bag-of-words
/// as features, and 41 user tags as link types. The two tag sets plant the
/// paper's contrast: Tagset1 tags each strongly prefer one class (and link
/// same-class images), Tagset2 tags are frequent but nearly class-blind.
hin::Hin MakeNus(const NusOptions& options = {});

/// The 41 tag names of the requested tag set (Table 6 / Table 7 order).
std::vector<std::string> NusTagNames(NusTagset tagset);

/// The two concept class names, index order {Scene, Object}.
std::vector<std::string> NusClassNames();

}  // namespace tmark::datasets

#endif  // TMARK_DATASETS_NUS_H_
