#ifndef TMARK_DATASETS_DBLP_H_
#define TMARK_DATASETS_DBLP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tmark/hin/hin.h"

namespace tmark::datasets {

/// Options for the synthetic DBLP author network (Sec. 6.1).
struct DblpOptions {
  std::size_t num_authors = 800;
  std::uint64_t seed = 2023;
};

/// Synthetic stand-in for the DBLP author-classification HIN of Ji et al.
/// (2010): authors as nodes, four research areas (DB, DM, AI, IR) as
/// classes, and the paper's 20 conferences (Table 1) as link types — two
/// authors share a conference link when they published at that venue.
/// Conference/area alignment mirrors Table 1, with the cross-area bleed
/// (CIKM toward DB, ICDE toward DM, SIGIR toward AI, IJCAI toward IR,
/// diffuse CVPR and WSDM) that Table 2's ranking discussion reports.
hin::Hin MakeDblp(const DblpOptions& options = {});

/// The four research-area names in class-index order.
std::vector<std::string> DblpAreaNames();

/// Table 1: the five conferences of each research area, by area index.
std::vector<std::vector<std::string>> DblpAreaConferences();

}  // namespace tmark::datasets

#endif  // TMARK_DATASETS_DBLP_H_
