#include "tmark/datasets/presets.h"

#include "tmark/datasets/acm.h"
#include "tmark/datasets/dblp.h"
#include "tmark/datasets/movies.h"
#include "tmark/datasets/nus.h"
#include "tmark/datasets/paper_example.h"

namespace tmark::datasets {

const std::vector<std::string>& PresetNames() {
  static const std::vector<std::string> kNames = {
      "dblp", "movies", "nus1", "nus2", "acm", "example"};
  return kNames;
}

Result<hin::Hin> MakePreset(const std::string& name,
                            const PresetOptions& options) {
  if (options.num_nodes > kMaxPresetNodes) {
    return InvalidArgumentError(
        "preset size " + std::to_string(options.num_nodes) +
        " exceeds the maximum of " + std::to_string(kMaxPresetNodes));
  }
  const std::size_t nodes = options.num_nodes;
  if (name == "dblp") {
    DblpOptions dblp;
    if (nodes != 0) dblp.num_authors = nodes;
    dblp.seed = options.seed;
    return MakeDblp(dblp);
  }
  if (name == "movies") {
    MoviesOptions movies;
    if (nodes != 0) movies.num_movies = nodes;
    movies.seed = options.seed;
    return MakeMovies(movies);
  }
  if (name == "nus1" || name == "nus2") {
    NusOptions nus;
    nus.tagset = name == "nus1" ? NusTagset::kTagset1 : NusTagset::kTagset2;
    if (nodes != 0) nus.num_images = nodes;
    nus.seed = options.seed;
    return MakeNus(nus);
  }
  if (name == "acm") {
    AcmOptions acm;
    if (nodes != 0) acm.num_publications = nodes;
    acm.seed = options.seed;
    return MakeAcm(acm);
  }
  if (name == "example") {
    return MakePaperExample();
  }
  std::string known;
  for (const std::string& preset : PresetNames()) {
    if (!known.empty()) known += "|";
    known += preset;
  }
  return NotFoundError("unknown preset '" + name + "' (expected " + known +
                       ")");
}

}  // namespace tmark::datasets
