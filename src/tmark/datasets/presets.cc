#include "tmark/datasets/presets.h"

#include <string_view>

#include "tmark/common/strict_parse.h"
#include "tmark/datasets/acm.h"
#include "tmark/datasets/dblp.h"
#include "tmark/datasets/movies.h"
#include "tmark/datasets/nus.h"
#include "tmark/datasets/paper_example.h"
#include "tmark/datasets/synthetic_hin.h"

namespace tmark::datasets {

const std::vector<std::string>& PresetNames() {
  static const std::vector<std::string> kNames = {
      "dblp", "movies", "nus1", "nus2", "acm", "example"};
  return kNames;
}

Result<hin::Hin> MakePreset(const std::string& name,
                            const PresetOptions& options) {
  // The parameterized scaling family carries its size in the name and has
  // its own (larger) bound — check before the named-preset size gate.
  constexpr std::string_view kSyntheticPrefix = "synthetic:";
  if (name.rfind(kSyntheticPrefix, 0) == 0) {
    const std::string_view size_text =
        std::string_view(name).substr(kSyntheticPrefix.size());
    TMARK_ASSIGN_OR_RETURN(const std::size_t nodes, ParseIndex(size_text));
    if (nodes == 0 || nodes > kMaxSyntheticPresetNodes) {
      return InvalidArgumentError(
          "synthetic preset size " + std::string(size_text) +
          " must be in [1, " + std::to_string(kMaxSyntheticPresetNodes) +
          "]");
    }
    if (options.num_nodes != 0) {
      return InvalidArgumentError(
          "preset '" + name +
          "' carries its size in the name; leave num_nodes at 0");
    }
    return GenerateSyntheticHin(ScalingSyntheticConfig(nodes, options.seed));
  }
  if (options.num_nodes > kMaxPresetNodes) {
    return InvalidArgumentError(
        "preset size " + std::to_string(options.num_nodes) +
        " exceeds the maximum of " + std::to_string(kMaxPresetNodes));
  }
  const std::size_t nodes = options.num_nodes;
  if (name == "dblp") {
    DblpOptions dblp;
    if (nodes != 0) dblp.num_authors = nodes;
    dblp.seed = options.seed;
    return MakeDblp(dblp);
  }
  if (name == "movies") {
    MoviesOptions movies;
    if (nodes != 0) movies.num_movies = nodes;
    movies.seed = options.seed;
    return MakeMovies(movies);
  }
  if (name == "nus1" || name == "nus2") {
    NusOptions nus;
    nus.tagset = name == "nus1" ? NusTagset::kTagset1 : NusTagset::kTagset2;
    if (nodes != 0) nus.num_images = nodes;
    nus.seed = options.seed;
    return MakeNus(nus);
  }
  if (name == "acm") {
    AcmOptions acm;
    if (nodes != 0) acm.num_publications = nodes;
    acm.seed = options.seed;
    return MakeAcm(acm);
  }
  if (name == "example") {
    return MakePaperExample();
  }
  std::string known;
  for (const std::string& preset : PresetNames()) {
    if (!known.empty()) known += "|";
    known += preset;
  }
  return NotFoundError("unknown preset '" + name + "' (expected " + known +
                       ")");
}

}  // namespace tmark::datasets
