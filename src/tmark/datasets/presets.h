#ifndef TMARK_DATASETS_PRESETS_H_
#define TMARK_DATASETS_PRESETS_H_

// Status-typed boundary over the dataset generators.
//
// The Make* functions (MakeDblp, MakeMovies, ...) take trusted, typed
// option structs. Anything that starts from *strings* — a CLI flag, a
// config file, an HTTP parameter — goes through MakePreset here, which
// validates the preset name and size and returns Result<Hin> instead of
// throwing (docs/ERRORS.md).

#include <cstdint>
#include <string>
#include <vector>

#include "tmark/common/status.h"
#include "tmark/hin/hin.h"

namespace tmark::datasets {

/// Untrusted knobs for MakePreset, already converted from text by the
/// caller's flag layer.
struct PresetOptions {
  /// Target node count; 0 means the preset's own default. Bounded by
  /// kMaxPresetNodes.
  std::size_t num_nodes = 0;
  std::uint64_t seed = 7;
};

/// Upper bound on PresetOptions::num_nodes — generators are quadratic-ish
/// in places and a hostile size must not take the process down.
inline constexpr std::size_t kMaxPresetNodes = 1'000'000;

/// Upper bound on the `synthetic:<n>` preset's node count. The scaling
/// generator is strictly O(nodes + edges) with constant average degree, so
/// it can safely go an order of magnitude past the named presets.
inline constexpr std::size_t kMaxSyntheticPresetNodes = 10'000'000;

/// Names accepted by MakePreset, in display order:
/// {"dblp", "movies", "nus1", "nus2", "acm", "example"}. The
/// parameterized "synthetic:<n>" family is accepted too but not listed —
/// it is a spelling, not a name.
const std::vector<std::string>& PresetNames();

/// Builds the named synthetic HIN. kNotFound for an unknown preset name,
/// kInvalidArgument for an out-of-range size. The "example" preset is the
/// paper's fixed 4-node example and ignores num_nodes/seed.
///
/// "synthetic:<n>" builds the constant-average-degree scaling graph of
/// ScalingSyntheticConfig with n nodes (bench_perf_scaling uses the same
/// family, so CLI-generated graphs match the committed scaling curves).
/// `n` must be a positive integer <= kMaxSyntheticPresetNodes;
/// options.num_nodes must be 0 (the size lives in the name).
Result<hin::Hin> MakePreset(const std::string& name,
                            const PresetOptions& options = {});

}  // namespace tmark::datasets

#endif  // TMARK_DATASETS_PRESETS_H_
