#include "tmark/datasets/paper_example.h"

#include "tmark/hin/hin_builder.h"

namespace tmark::datasets {

hin::Hin MakePaperExample() {
  // Node indices: p1 = 0, p2 = 1, p3 = 2, p4 = 3.
  hin::HinBuilder builder(/*num_nodes=*/4, /*feature_dim=*/2);
  builder.AddClass("DM");
  builder.AddClass("CV");

  const std::size_t coauthor = builder.AddRelation("co-author");
  const std::size_t citation = builder.AddRelation("citation");
  const std::size_t same_conf = builder.AddRelation("same conference");

  builder.AddUndirectedEdge(coauthor, 0, 1);     // p1 -- p2 (Jiawei Han)
  builder.AddDirectedEdge(citation, 2, 1);       // p3 cites p2
  builder.AddDirectedEdge(citation, 2, 3);       // p3 cites p4
  builder.AddDirectedEdge(citation, 3, 0);       // p4 cites p1
  builder.AddUndirectedEdge(same_conf, 1, 2);    // p2 -- p3 (WWW)

  // Features realizing the Sec. 4.3 cosine matrix: f1 = f4, f2 = f3,
  // orthogonal across the two groups.
  builder.AddFeature(0, 0, 1.0);
  builder.AddFeature(3, 0, 1.0);
  builder.AddFeature(1, 1, 1.0);
  builder.AddFeature(2, 1, 1.0);

  builder.SetLabel(0, 0);  // p1 = DM
  builder.SetLabel(1, 1);  // p2 = CV
  builder.SetLabel(2, 1);  // p3 ground truth CV (held out in the example)
  builder.SetLabel(3, 0);  // p4 ground truth DM (held out in the example)
  return std::move(builder).Build();
}

std::vector<std::size_t> PaperExampleLabeledNodes() { return {0, 1}; }

std::vector<std::size_t> PaperExampleHeldOutTruth() { return {1, 0}; }

}  // namespace tmark::datasets
