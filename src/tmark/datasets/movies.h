#ifndef TMARK_DATASETS_MOVIES_H_
#define TMARK_DATASETS_MOVIES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tmark/hin/hin.h"

namespace tmark::datasets {

/// Options for the synthetic Movies network (Sec. 6.2).
struct MoviesOptions {
  std::size_t num_movies = 1200;
  std::size_t num_directors = 439;  ///< The paper's director count.
  /// Genre labels are genuinely ambiguous (a war romance, a documentary
  /// thriller): the observed genre differs from the latent one driving tags
  /// and director choices for this fraction of movies, capping achievable
  /// accuracy the way the paper's low absolute numbers (0.44-0.63) reflect.
  double label_noise = 0.25;
  std::uint64_t seed = 1107;
};

/// Synthetic stand-in for the IMDB / Rotten Tomatoes movie-genre HIN: movies
/// as nodes, five genres as classes, user tags as (noisy) content features,
/// and one link type per director — movies by the same director form a
/// clique in that director's relation. The regime is deliberately *sparse*:
/// each director touches only a handful of movies, so individual link types
/// carry little evidence. That is the condition under which the paper finds
/// EMR's indiscriminate link aggregation beating T-Mark (Table 4).
///
/// Directors named in the paper's Table 5 are included with genre
/// preferences matching their table placements (Hitchcock across Romance/
/// Thriller/War, Reitman in Documentary, ...), so the director-ranking bench
/// reproduces the table's shape; the remaining directors are synthetic.
hin::Hin MakeMovies(const MoviesOptions& options = {});

/// The five genre names in class-index order.
std::vector<std::string> MovieGenreNames();

}  // namespace tmark::datasets

#endif  // TMARK_DATASETS_MOVIES_H_
