#ifndef TMARK_DATASETS_PAPER_EXAMPLE_H_
#define TMARK_DATASETS_PAPER_EXAMPLE_H_

#include <cstddef>
#include <vector>

#include "tmark/hin/hin.h"

namespace tmark::datasets {

/// The worked example of Sec. 3.2 / 4.3: a 4-publication DBLP subgraph with
/// three relations —
///   "co-author":        p1 -- p2 (both by Jiawei Han)
///   "citation":         p3 -> p2, p3 -> p4, p4 -> p1
///   "same conference":  p2 -- p3 (both at WWW)
/// Features are 2-dimensional indicator vectors chosen so the cosine matrix
/// equals the C given in Sec. 4.3 (p1 ~ p4 and p2 ~ p3). Labels: p1 = DM,
/// p2 = CV; p3 and p4 are the unlabeled nodes whose ground truth is CV and
/// DM respectively.
///
/// (Sec. 4.3's prose places the co-author edge between p1 and p4, which
/// contradicts the Sec. 3.2 construction; we follow Sec. 3.2, see
/// EXPERIMENTS.md.)
hin::Hin MakePaperExample();

/// The labeled node indices of the example: {0 (=p1, DM), 1 (=p2, CV)}.
std::vector<std::size_t> PaperExampleLabeledNodes();

/// Ground-truth classes of the two unlabeled nodes: p3 = CV(1), p4 = DM(0).
std::vector<std::size_t> PaperExampleHeldOutTruth();

}  // namespace tmark::datasets

#endif  // TMARK_DATASETS_PAPER_EXAMPLE_H_
