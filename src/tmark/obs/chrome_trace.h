#ifndef TMARK_OBS_CHROME_TRACE_H_
#define TMARK_OBS_CHROME_TRACE_H_

// Chrome trace-event export of the span tree. The emitted document follows
// the Trace Event Format ("X" complete events with microsecond ts/dur), so
// it loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Span fields and hardware-counter deltas are attached as event args.
// Reached via `tmark_cli ... --trace-chrome <path>` and the
// TMARK_TRACE_CHROME environment variable for benches.

#include <string>
#include <vector>

#include "tmark/obs/trace.h"

namespace tmark::obs {

/// Serializes `spans` (a finished root-span forest, e.g.
/// Tracer::FinishedCopy()) as a JSON object {"traceEvents": [...],
/// "displayTimeUnit": "ms"}. Every span and its descendants become one
/// complete ("X") event; nesting is reconstructed by the viewer from the
/// ts/dur containment.
std::string SpansToChromeTrace(const std::vector<SpanNode>& spans);

}  // namespace tmark::obs

#endif  // TMARK_OBS_CHROME_TRACE_H_
