#ifndef TMARK_OBS_PROF_H_
#define TMARK_OBS_PROF_H_

// Profiling and attribution layer on top of the tracing subsystem.
//
// Three pieces live here:
//
//  1. TMARK_PROF_REGION("la.mk.matmul_panel") — a lightweight RAII kernel
//     region. Each region accumulates call count, wall time, and (when
//     available) hardware-counter deltas into a per-thread buffer; buffers
//     are merged in a deterministic order by Profiler::Snapshot(). Like the
//     tracer, profiling is compiled in but off by default: a disabled
//     region costs one relaxed atomic load + branch (enforced by the
//     overhead self-test and scripts/check_profile.py).
//
//  2. Hardware counters via Linux perf_event_open (cycles, instructions,
//     LLC misses, branch misses), opened lazily per thread as one event
//     group. When the counters cannot be opened (no perf permission,
//     missing PMU, non-Linux build) the failure is reported as a typed
//     Status from Profiler::counters_status() and everything degrades to
//     time-only profiling; no call site needs to care.
//
//  3. ComputeAttribution() — an exclusive-time/counter table derived from a
//     finished span forest: for every span name, total (inclusive) and
//     self (exclusive of children) milliseconds and counter deltas. This is
//     what the tmark-bench-v1 "attribution" key and the tmark-profile-v1
//     document export (docs/OBSERVABILITY.md).
//
// Thread-safety contract: regions may run concurrently on any thread, but
// Snapshot()/Reset() must be called from outside a parallel region, after
// the producing threads joined (ThreadPool::Run's join provides the
// happens-before edge). ThreadPool workers register a merge ordinal via
// RegisterWorkerThread() so the per-thread buffers merge in the same order
// regardless of OS scheduling; all accumulators are integers, so the
// merged call/counter totals are bit-identical across thread counts.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tmark/common/status.h"
#include "tmark/obs/trace.h"

namespace tmark::obs::prof {

/// Hardware counters sampled per region / span, in export order.
inline constexpr std::size_t kNumCounters = 4;

/// "cycles", "instructions", "llc_misses", "branch_misses".
std::string_view CounterName(std::size_t index);

/// Merged totals of one kernel region across all threads.
struct RegionTotals {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t time_ns = 0;
  std::array<std::uint64_t, kNumCounters> counters{};

  double time_ms() const { return static_cast<double>(time_ns) * 1e-6; }
};

/// Point-in-time merge of every thread's region buffer.
struct ProfileSnapshot {
  bool counters_available = false;
  /// counters_status().ToString() at snapshot time ("OK" when available).
  std::string counter_status;
  std::vector<RegionTotals> regions;  ///< Sorted by name.
};

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// Process-global profiler: the on/off switch, the per-thread region
/// buffers, and the counter-availability status.
class Profiler {
 public:
  static Profiler& Instance();

  bool enabled() const {
    return internal::g_enabled.load(std::memory_order_relaxed);
  }

  /// Enabling probes the hardware counters on the calling thread, so
  /// counters_status() is meaningful right away. Toggle only between
  /// parallel regions.
  void set_enabled(bool enabled);

  /// OK when hardware counters opened on at least one thread; otherwise
  /// the typed reason (kFailedPrecondition) for the time-only fallback.
  Status counters_status() const;
  bool counters_available() const;

  /// Merges all per-thread buffers in deterministic (ordinal, registration)
  /// order. Call only after producing threads joined.
  ProfileSnapshot Snapshot() const;

  /// Zeroes every thread's accumulators in place (buffers stay registered,
  /// so live threads keep their caches). Call between parallel regions.
  void Reset();

 private:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;
};

inline bool ProfilingEnabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// RAII kernel region. Construction and destruction are inline no-ops
/// (one relaxed load + branch) while profiling is disabled; when enabled
/// they stamp wall time and hardware-counter deltas into the calling
/// thread's buffer. Must be destroyed on the thread that created it.
class ProfRegion {
 public:
  /// `name` must outlive the region — pass a string literal.
  explicit ProfRegion(std::string_view name) {
    if (ProfilingEnabled()) Begin(name);
  }

  ~ProfRegion() {
    if (active_) End();
  }

  ProfRegion(const ProfRegion&) = delete;
  ProfRegion& operator=(const ProfRegion&) = delete;

  bool active() const { return active_; }

 private:
  void Begin(std::string_view name);
  void End();

  bool active_ = false;
  bool counters_active_ = false;
  std::uint32_t region_id_ = 0;
  void* buffer_ = nullptr;  ///< Owning thread's buffer (opaque).
  std::uint64_t start_ns_ = 0;
  std::array<std::uint64_t, kNumCounters> start_counters_{};
};

#define TMARK_PROF_CONCAT_INNER_(a, b) a##b
#define TMARK_PROF_CONCAT_(a, b) TMARK_PROF_CONCAT_INNER_(a, b)
/// Opens a profiling region for the rest of the enclosing scope.
#define TMARK_PROF_REGION(name)                 \
  ::tmark::obs::prof::ProfRegion TMARK_PROF_CONCAT_(tmark_prof_region_, \
                                                    __LINE__)(name)

/// Samples the calling thread's hardware counters. Returns false (leaving
/// *out untouched) when profiling is disabled or the counters are
/// unavailable. TraceSpan uses begin/end samples to attach deltas to spans.
bool SampleThreadCounters(std::array<std::uint64_t, kNumCounters>* out);

/// Called by ThreadPool workers before any region: fixes this thread's
/// position in the Snapshot() merge order (caller thread of a pool batch
/// sorts first, workers follow in lane order).
void RegisterWorkerThread(std::size_t ordinal);

/// One row of the exclusive-time attribution table: spans named `name`
/// cost `total_ms` inclusive and `self_ms` after subtracting their direct
/// children. Counter columns follow the same inclusive/exclusive split and
/// are present only when every contributing span carried counters.
struct AttributionRow {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double self_ms = 0.0;
  bool has_counters = false;
  std::array<std::uint64_t, kNumCounters> total_counters{};
  std::array<std::uint64_t, kNumCounters> self_counters{};
};

/// Aggregates a finished span forest (Tracer::FinishedCopy()) into
/// attribution rows, one per distinct span name, sorted by descending
/// self_ms (ties by name). In a single-threaded forest the self_ms of all
/// rows sums to the total duration of the root spans (up to clamping of
/// negative exclusive times caused by clock jitter); concurrent sibling
/// spans overlap in wall time, so at higher thread counts the sum can
/// legitimately exceed it.
std::vector<AttributionRow> ComputeAttribution(
    const std::vector<SpanNode>& spans);

/// Measures the per-call cost of a *disabled* TMARK_PROF_REGION by timing
/// `iterations` back-to-back regions (profiling is forced off during the
/// measurement and restored after). Feeds the overhead gate in
/// scripts/check_profile.py.
double MeasureDisabledRegionCostNs(std::size_t iterations);

}  // namespace tmark::obs::prof

#endif  // TMARK_OBS_PROF_H_
