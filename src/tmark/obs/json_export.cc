#include "tmark/obs/json_export.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <limits>

namespace tmark::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\b':
        out.append("\\b");
        break;
      case '\f':
        out.append("\\f");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

void JsonWriter::Prefix() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!container_has_items_.empty()) {
    if (container_has_items_.back()) out_ << ',';
    container_has_items_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Prefix();
  out_ << '{';
  container_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  container_has_items_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Prefix();
  out_ << '[';
  container_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  container_has_items_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  Prefix();
  out_ << '"' << JsonEscape(key) << "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  Prefix();
  out_ << '"' << JsonEscape(value) << '"';
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  if (!std::isfinite(value)) return Null();
  Prefix();
  out_ << std::setprecision(std::numeric_limits<double>::max_digits10)
       << value;
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t value) {
  Prefix();
  out_ << value;
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t value) {
  Prefix();
  out_ << value;
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  Prefix();
  out_ << (value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Prefix();
  out_ << "null";
  return *this;
}

void WriteMetrics(JsonWriter& writer, const MetricsSnapshot& snapshot) {
  writer.BeginObject();
  writer.Key("counters").BeginArray();
  for (const CounterSnapshot& c : snapshot.counters) {
    writer.BeginObject();
    writer.Key("name").Value(c.name);
    writer.Key("value").Value(c.value);
    writer.EndObject();
  }
  writer.EndArray();

  writer.Key("gauges").BeginArray();
  for (const GaugeSnapshot& g : snapshot.gauges) {
    writer.BeginObject();
    writer.Key("name").Value(g.name);
    writer.Key("value").Value(g.value);
    writer.EndObject();
  }
  writer.EndArray();

  writer.Key("histograms").BeginArray();
  for (const HistogramSnapshot& h : snapshot.histograms) {
    writer.BeginObject();
    writer.Key("name").Value(h.name);
    writer.Key("count").Value(h.count);
    writer.Key("sum").Value(h.sum);
    writer.Key("mean").Value(h.count > 0
                                 ? h.sum / static_cast<double>(h.count)
                                 : 0.0);
    writer.Key("min").Value(h.min);
    writer.Key("max").Value(h.max);
    writer.Key("p50").Value(h.p50);
    writer.Key("p95").Value(h.p95);
    writer.Key("p99").Value(h.p99);
    writer.Key("buckets").BeginArray();
    for (const HistogramBucket& bucket : h.buckets) {
      writer.BeginObject();
      // +inf upper bound serializes as null (JSON has no Infinity).
      writer.Key("le").Value(bucket.upper_bound);
      writer.Key("count").Value(bucket.count);
      writer.EndObject();
    }
    writer.EndArray();
    writer.EndObject();
  }
  writer.EndArray();

  writer.Key("series").BeginArray();
  for (const SeriesSnapshot& s : snapshot.series) {
    writer.BeginObject();
    writer.Key("name").Value(s.name);
    writer.Key("total_count").Value(s.total_count);
    writer.Key("values").BeginArray();
    for (double v : s.values) writer.Value(v);
    writer.EndArray();
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
}

namespace {

void WriteSpan(JsonWriter& writer, const SpanNode& span) {
  writer.BeginObject();
  writer.Key("name").Value(span.name);
  writer.Key("start_ms").Value(span.start_ms);
  writer.Key("duration_ms").Value(span.duration_ms);
  if (span.has_counters) {
    writer.Key("counters").BeginObject();
    for (std::size_t i = 0; i < kSpanCounters; ++i) {
      writer.Key(SpanCounterName(i)).Value(span.counters[i]);
    }
    writer.EndObject();
  }
  writer.Key("fields").BeginObject();
  for (const auto& [key, value] : span.fields) {
    writer.Key(key).Value(value);
  }
  writer.EndObject();
  writer.Key("children").BeginArray();
  for (const SpanNode& child : span.children) WriteSpan(writer, child);
  writer.EndArray();
  writer.EndObject();
}

}  // namespace

void WriteSpans(JsonWriter& writer, const std::vector<SpanNode>& spans) {
  writer.BeginArray();
  for (const SpanNode& span : spans) WriteSpan(writer, span);
  writer.EndArray();
}

void WriteAttribution(JsonWriter& writer,
                      const std::vector<prof::AttributionRow>& rows) {
  writer.BeginArray();
  for (const prof::AttributionRow& row : rows) {
    writer.BeginObject();
    writer.Key("name").Value(row.name);
    writer.Key("count").Value(row.count);
    writer.Key("total_ms").Value(row.total_ms);
    writer.Key("self_ms").Value(row.self_ms);
    if (row.has_counters) {
      writer.Key("total_counters").BeginObject();
      for (std::size_t i = 0; i < prof::kNumCounters; ++i) {
        writer.Key(prof::CounterName(i)).Value(row.total_counters[i]);
      }
      writer.EndObject();
      writer.Key("self_counters").BeginObject();
      for (std::size_t i = 0; i < prof::kNumCounters; ++i) {
        writer.Key(prof::CounterName(i)).Value(row.self_counters[i]);
      }
      writer.EndObject();
    }
    writer.EndObject();
  }
  writer.EndArray();
}

std::string ProfileToJson(std::string_view binary, std::uint64_t threads,
                          const prof::ProfileSnapshot& profile,
                          const std::vector<prof::AttributionRow>& attribution,
                          const ProfileOverhead& overhead) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema").Value("tmark-profile-v1");
  writer.Key("binary").Value(binary);
  writer.Key("threads").Value(threads);
  writer.Key("counters_available").Value(profile.counters_available);
  writer.Key("counter_status").Value(profile.counter_status);

  writer.Key("regions").BeginArray();
  for (const prof::RegionTotals& region : profile.regions) {
    writer.BeginObject();
    writer.Key("name").Value(region.name);
    writer.Key("calls").Value(region.calls);
    writer.Key("time_ms").Value(region.time_ms());
    for (std::size_t i = 0; i < prof::kNumCounters; ++i) {
      writer.Key(prof::CounterName(i)).Value(region.counters[i]);
    }
    writer.EndObject();
  }
  writer.EndArray();

  writer.Key("attribution");
  WriteAttribution(writer, attribution);

  writer.Key("overhead").BeginObject();
  writer.Key("disabled_ns_per_region").Value(overhead.disabled_ns_per_region);
  writer.Key("region_calls").Value(overhead.region_calls);
  writer.Key("workload_ms").Value(overhead.workload_ms);
  // null when no workload timing is available (e.g. a CLI run that made no
  // fit): the gate in check_profile.py requires a measured workload.
  const double pct =
      overhead.workload_ms > 0.0
          ? overhead.disabled_ns_per_region *
                static_cast<double>(overhead.region_calls) /
                (overhead.workload_ms * 1e6) * 100.0
          : std::numeric_limits<double>::quiet_NaN();
  writer.Key("estimated_disabled_overhead_pct").Value(pct);
  writer.EndObject();
  writer.EndObject();
  return writer.TakeString();
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  JsonWriter writer;
  WriteMetrics(writer, snapshot);
  return writer.TakeString();
}

std::string SpansToJson(const std::vector<SpanNode>& spans) {
  JsonWriter writer;
  WriteSpans(writer, spans);
  return writer.TakeString();
}

bool WriteTextFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return false;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  return out.good();
}

}  // namespace tmark::obs
