#ifndef TMARK_OBS_LOGGING_H_
#define TMARK_OBS_LOGGING_H_

// Leveled structured logging for the whole library. One process-global
// Logger writes `[LEVEL +elapsed] event key=value ...` lines to stderr and,
// optionally, to a file sink. Everything is off-by-default except warnings
// and errors; the environment overrides:
//
//   TMARK_LOG_LEVEL = debug | info | warn | error | off
//   TMARK_LOG_FILE  = <path>   (append; in addition to stderr)
//
// Call sites pay one atomic load + branch when the level is filtered out
// (field construction is cheap key=value pairs, so the convenience wrappers
// below are plain functions, not macros).

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>

#include "tmark/common/status.h"

namespace tmark::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// "debug" -> kDebug etc. (case-insensitive; accepts "warning"/"none" too).
std::optional<LogLevel> ParseLogLevel(std::string_view s);

/// Canonical lower-case name ("debug", "info", ...).
std::string_view LogLevelName(LogLevel level);

/// One key=value field of a structured log line. Numeric and boolean values
/// are formatted on construction so Write() only concatenates.
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string_view k, std::string_view v) : key(k), value(v) {}
  LogField(std::string_view k, const char* v) : key(k), value(v) {}
  LogField(std::string_view k, const std::string& v) : key(k), value(v) {}
  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  LogField(std::string_view k, T v) : key(k) {
    if constexpr (std::is_same_v<T, bool>) {
      value = v ? "true" : "false";
    } else {
      std::ostringstream os;
      os << v;
      value = os.str();
    }
  }
};

/// Process-global leveled logger. Thread-safe; line-buffered per Write.
class Logger {
 public:
  static Logger& Instance();

  LogLevel level() const;
  void set_level(LogLevel level);

  /// Mirrors every line to `path` (append). Empty path closes the sink.
  /// Returns kNotFound (and keeps the previous sink) when the file cannot
  /// be opened. Pure: no warning or counter side effects.
  Status OpenSinkFile(const std::string& path);

  /// OpenSinkFile plus the failure signal contract: an unopenable sink
  /// bumps the `obs.log.file_errors` counter and emits a one-shot
  /// Status-carrying warning to stderr, then returns false. Sink write
  /// failures at log time get the same treatment (every dropped line
  /// counts), so TMARK_LOG_FILE never drops lines silently.
  bool set_sink_file(const std::string& path);

  /// Disables the stderr sink (tests use this to keep output clean).
  void set_stderr_enabled(bool enabled);

  bool Enabled(LogLevel level) const { return level >= this->level(); }

  /// Emits one structured line. `event` is a dot-separated identifier
  /// (e.g. "bench.fit"); fields follow as key=value, values quoted when
  /// they contain whitespace, quotes, or '='.
  void Write(LogLevel level, std::string_view event,
             std::initializer_list<LogField> fields);

 private:
  Logger();
  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  struct Impl;
  Impl* impl_;
};

inline void LogDebug(std::string_view event,
                     std::initializer_list<LogField> fields = {}) {
  Logger& logger = Logger::Instance();
  if (logger.Enabled(LogLevel::kDebug)) {
    logger.Write(LogLevel::kDebug, event, fields);
  }
}

inline void LogInfo(std::string_view event,
                    std::initializer_list<LogField> fields = {}) {
  Logger& logger = Logger::Instance();
  if (logger.Enabled(LogLevel::kInfo)) {
    logger.Write(LogLevel::kInfo, event, fields);
  }
}

inline void LogWarn(std::string_view event,
                    std::initializer_list<LogField> fields = {}) {
  Logger& logger = Logger::Instance();
  if (logger.Enabled(LogLevel::kWarn)) {
    logger.Write(LogLevel::kWarn, event, fields);
  }
}

inline void LogError(std::string_view event,
                     std::initializer_list<LogField> fields = {}) {
  Logger& logger = Logger::Instance();
  if (logger.Enabled(LogLevel::kError)) {
    logger.Write(LogLevel::kError, event, fields);
  }
}

}  // namespace tmark::obs

#endif  // TMARK_OBS_LOGGING_H_
