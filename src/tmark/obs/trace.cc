#include "tmark/obs/trace.h"

#include <sstream>

#include "tmark/obs/prof.h"

namespace tmark::obs {
namespace {

// Innermost active span of this thread (children attach to it on close).
thread_local TraceSpan* g_current_span = nullptr;

// ~TraceSpan needs the open/close bookkeeping in one place.
struct SpanStack {
  static TraceSpan* Swap(TraceSpan* next) {
    TraceSpan* prev = g_current_span;
    g_current_span = next;
    return prev;
  }
};

}  // namespace

std::string_view SpanCounterName(std::size_t index) {
  return prof::CounterName(index);
}

Tracer& Tracer::Instance() {
  static Tracer* tracer = new Tracer;  // never destroyed (exit-safe)
  return *tracer;
}

double Tracer::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             Stopwatch::Clock::now() - epoch_)
      .count();
}

std::vector<SpanNode> Tracer::TakeFinished() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanNode> out = std::move(finished_);
  finished_.clear();
  return out;
}

std::vector<SpanNode> Tracer::FinishedCopy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  finished_.clear();
}

void Tracer::AddFinished(SpanNode node) {
  std::lock_guard<std::mutex> lock(mu_);
  finished_.push_back(std::move(node));
}

TraceSpan::TraceSpan(std::string_view name) {
  Tracer& tracer = Tracer::Instance();
  if (!tracer.enabled()) return;
  active_ = true;
  node_.name = std::string(name);
  SampleCountersAtOpen();
  node_.start_ms = tracer.NowMs();
  parent_ = SpanStack::Swap(this);
}

TraceSpan::TraceSpan(std::string_view name, SpanNode* sink) : sink_(sink) {
  Tracer& tracer = Tracer::Instance();
  if (!tracer.enabled()) return;
  active_ = true;
  node_.name = std::string(name);
  SampleCountersAtOpen();
  node_.start_ms = tracer.NowMs();
  parent_ = SpanStack::Swap(this);
}

void TraceSpan::SampleCountersAtOpen() {
  static_assert(kSpanCounters == prof::kNumCounters,
                "SpanNode counter slots must match the profiler's");
  counters_active_ = prof::SampleThreadCounters(&counters_begin_);
}

void TraceSpan::SampleCountersAtClose() {
  if (!counters_active_) return;
  std::array<std::uint64_t, kSpanCounters> end_counters;
  if (!prof::SampleThreadCounters(&end_counters)) return;
  node_.has_counters = true;
  for (std::size_t i = 0; i < kSpanCounters; ++i) {
    node_.counters[i] = end_counters[i] >= counters_begin_[i]
                            ? end_counters[i] - counters_begin_[i]
                            : 0;
  }
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  node_.duration_ms = Tracer::Instance().NowMs() - node_.start_ms;
  SampleCountersAtClose();
  SpanStack::Swap(parent_);
  if (sink_ != nullptr) {
    *sink_ = std::move(node_);
  } else if (parent_ != nullptr) {
    parent_->node_.children.push_back(std::move(node_));
  } else {
    Tracer::Instance().AddFinished(std::move(node_));
  }
}

void TraceSpan::AdoptChild(SpanNode child) {
  if (!active_ || child.name.empty()) return;
  node_.children.push_back(std::move(child));
}

void TraceSpan::AddField(std::string_view key, std::string_view value) {
  if (!active_) return;
  node_.fields.emplace_back(std::string(key), std::string(value));
}

void TraceSpan::AddField(std::string_view key, double value) {
  if (!active_) return;
  std::ostringstream os;
  os << value;
  node_.fields.emplace_back(std::string(key), os.str());
}

void TraceSpan::AddField(std::string_view key, std::size_t value) {
  if (!active_) return;
  node_.fields.emplace_back(std::string(key), std::to_string(value));
}

}  // namespace tmark::obs
