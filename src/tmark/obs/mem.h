#ifndef TMARK_OBS_MEM_H_
#define TMARK_OBS_MEM_H_

// Process memory introspection for the observability layer.
//
// Peak resident set size is the quantity the scaling study tracks
// (docs/PERFORMANCE.md "Scaling"): it captures the high-water mark of
// operator construction plus fit, which is what a capacity planner needs.
// Linux exposes it as the VmHWM line of /proc/self/status; platforms (or
// sandboxes) without that file get a typed Status instead of a crash or a
// silent zero.
//
// Note VmHWM is monotone within a process — it never goes back down — so
// comparative experiments (compact vs. wide indices) must use the analytic
// structure-byte accounting (la::SparseMatrix::StructureBytes,
// tensor::SparseTensor3::MergedViewStorageBytes) and record the RSS only as
// corroborating context.

#include <cstdint>

#include "tmark/common/status.h"

namespace tmark::obs {

/// Peak resident set size of the calling process in bytes (VmHWM of
/// /proc/self/status). kNotFound when the proc file cannot be opened (not
/// Linux, restricted sandbox), kParseError when it holds no parseable
/// VmHWM line.
Result<std::uint64_t> ReadPeakRssBytes();

/// Sets the `mem.peak_rss_bytes` gauge to the current peak RSS. No-op when
/// metrics are disabled or the reading is unavailable (the gauge is simply
/// absent from snapshots — consumers treat it as optional).
void RecordPeakRss();

}  // namespace tmark::obs

#endif  // TMARK_OBS_MEM_H_
