#ifndef TMARK_OBS_JSON_EXPORT_H_
#define TMARK_OBS_JSON_EXPORT_H_

// Dependency-free JSON serialization for the obs subsystem: a small
// streaming writer with correct string escaping, plus canned exporters for
// the metrics registry snapshot and the tracer span tree. The document
// layout is specified in docs/OBSERVABILITY.md and validated by
// scripts/check_bench_json.py.

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "tmark/obs/metrics.h"
#include "tmark/obs/prof.h"
#include "tmark/obs/trace.h"

namespace tmark::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included): ", \, and control characters below 0x20 become escape
/// sequences; everything else passes through byte-for-byte.
std::string JsonEscape(std::string_view s);

/// Streaming JSON writer. The caller provides the document shape through
/// Begin/End calls; commas are inserted automatically. Numbers that are not
/// finite are emitted as null so the output always parses.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value) {
    return Value(std::string_view(value));
  }
  JsonWriter& Value(double value);
  JsonWriter& Value(std::int64_t value);
  JsonWriter& Value(std::uint64_t value);
  JsonWriter& Value(bool value);
  JsonWriter& Null();

  /// The serialized document. Call once all Begin/End pairs are balanced.
  std::string TakeString() { return std::move(out_).str(); }

 private:
  void Prefix();

  std::ostringstream out_;
  std::vector<bool> container_has_items_;
  bool after_key_ = false;
};

/// Writes `snapshot` as an object with "counters", "gauges", "histograms",
/// and "series" arrays into an already-positioned writer (after Key() or at
/// an array/document position).
void WriteMetrics(JsonWriter& writer, const MetricsSnapshot& snapshot);

/// Writes `spans` as an array of {name, start_ms, duration_ms, fields,
/// children} objects (children recurse with the same shape).
void WriteSpans(JsonWriter& writer, const std::vector<SpanNode>& spans);

/// Writes attribution rows as an array of {name, count, total_ms, self_ms}
/// objects; rows whose spans carried hardware counters additionally get
/// "total_counters"/"self_counters" objects keyed by counter name.
void WriteAttribution(JsonWriter& writer,
                      const std::vector<prof::AttributionRow>& rows);

/// Inputs for the "overhead" section of a tmark-profile-v1 document: the
/// measured per-call cost of a disabled region, how many region calls the
/// profiled workload made, and the workload's wall time. The estimated
/// disabled-instrumentation overhead percentage is derived from the three
/// (null when the workload is unknown).
struct ProfileOverhead {
  double disabled_ns_per_region = 0.0;
  std::uint64_t region_calls = 0;
  double workload_ms = 0.0;
};

/// The standalone tmark-profile-v1 document (docs/OBSERVABILITY.md),
/// reached via `tmark_cli --profile-json` and TMARK_PROFILE_JSON, and
/// validated by scripts/check_profile.py.
std::string ProfileToJson(std::string_view binary, std::uint64_t threads,
                          const prof::ProfileSnapshot& profile,
                          const std::vector<prof::AttributionRow>& attribution,
                          const ProfileOverhead& overhead);

/// Standalone documents for the CLI --metrics-json / --trace-json flags.
std::string MetricsToJson(const MetricsSnapshot& snapshot);
std::string SpansToJson(const std::vector<SpanNode>& spans);

/// Overwrites `path` with `content`; false on any I/O failure.
bool WriteTextFile(const std::string& path, std::string_view content);

}  // namespace tmark::obs

#endif  // TMARK_OBS_JSON_EXPORT_H_
