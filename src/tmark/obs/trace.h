#ifndef TMARK_OBS_TRACE_H_
#define TMARK_OBS_TRACE_H_

// RAII trace spans and scoped timers.
//
// TraceSpan builds a per-thread span tree: spans opened while another span
// of the same thread is alive become its children; finished root spans are
// collected by the process-global Tracer and can be exported as JSON
// (json_export.h). Like the metrics registry, tracing is compiled in but
// disabled by default — an inactive span costs one atomic load + branch.
//
// ScopedTimer measures wall-clock between construction and destruction and
// feeds the duration (milliseconds) into a registry histogram; it is active
// only while the metrics registry is enabled.

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tmark/obs/metrics.h"

namespace tmark::obs {

/// Minimal monotonic stopwatch.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  Clock::time_point start_;
};

/// Hardware counters a span can carry, in export order. Mirrors
/// obs::prof::kNumCounters (static_assert'd in prof.h); names come from
/// SpanCounterName().
inline constexpr std::size_t kSpanCounters = 4;

/// "cycles", "instructions", "llc_misses", "branch_misses".
std::string_view SpanCounterName(std::size_t index);

/// One finished span: name, timing, key=value fields, nested children, and
/// (when the profiler's hardware counters are available) counter deltas
/// over the span's lifetime.
struct SpanNode {
  std::string name;
  double start_ms = 0.0;     ///< Offset from the tracer epoch.
  double duration_ms = 0.0;
  bool has_counters = false;
  std::array<std::uint64_t, kSpanCounters> counters{};
  std::vector<std::pair<std::string, std::string>> fields;
  std::vector<SpanNode> children;
};

/// Process-global collector of finished root spans.
class Tracer {
 public:
  static Tracer& Instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Toggle only between fits/requests: spans already open keep the
  /// activity state they were constructed with.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Milliseconds since the tracer singleton was created.
  double NowMs() const;

  /// Moves the finished root spans out (oldest first).
  std::vector<SpanNode> TakeFinished();

  /// Copies the finished root spans without draining them.
  std::vector<SpanNode> FinishedCopy() const;

  /// Drops all finished spans (tests, and between bench tables).
  void Reset();

  /// Internal: called by ~TraceSpan for spans with no active parent.
  void AddFinished(SpanNode node);

 private:
  Tracer() : epoch_(Stopwatch::Clock::now()) {}

  std::atomic<bool> enabled_{false};
  const Stopwatch::Clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanNode> finished_;
};

inline bool TracingEnabled() { return Tracer::Instance().enabled(); }

/// RAII span. Construction opens the span (when tracing is enabled) and
/// nests it under the innermost active span of the current thread;
/// destruction stamps the duration and attaches it to its parent, or hands
/// it to the Tracer when it is a root.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);

  /// Detached span for fork/join code: on destruction the finished node is
  /// moved into *sink instead of being attached to a parent span or the
  /// Tracer. A worker thread opens the span with the slot it owns as the
  /// sink; after the join the coordinating thread stitches the slots back
  /// under its own span with AdoptChild in a deterministic order. The sink
  /// must outlive the span; when tracing is disabled *sink is untouched.
  TraceSpan(std::string_view name, SpanNode* sink);

  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return active_; }

  void AddField(std::string_view key, std::string_view value);
  void AddField(std::string_view key, const char* value) {
    AddField(key, std::string_view(value));
  }
  void AddField(std::string_view key, double value);
  void AddField(std::string_view key, std::size_t value);
  void AddField(std::string_view key, bool value) {
    AddField(key, std::string_view(value ? "true" : "false"));
  }

  /// Appends an externally finished span (typically a sink-span filled on a
  /// worker thread) as a child of this span. Call only after the producing
  /// threads have joined; a node with an empty name (tracing was disabled
  /// when the sink-span opened) is ignored.
  void AdoptChild(SpanNode child);

 private:
  void SampleCountersAtOpen();
  void SampleCountersAtClose();

  bool active_ = false;
  bool counters_active_ = false;  ///< Hardware counters sampled at open.
  TraceSpan* parent_ = nullptr;  ///< Innermost active span at open time.
  SpanNode* sink_ = nullptr;     ///< Non-null for detached spans.
  std::array<std::uint64_t, kSpanCounters> counters_begin_{};
  SpanNode node_;
};

/// RAII wall-clock timer feeding `histogram_name` (milliseconds). The name
/// must outlive the timer — pass a string literal or a string that lives
/// across the timed scope. The clock is read only when the timer is active,
/// so an inactive timer costs a branch, not a syscall.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view histogram_name)
      : ScopedTimer(histogram_name, MetricsEnabled()) {}

  /// Caller-gated form for hot loops: hoist MetricsEnabled() out of the
  /// loop and pass it here, so the disabled path pays one predictable
  /// branch per timer instead of an atomic load plus two clock reads.
  ScopedTimer(std::string_view histogram_name, bool active)
      : active_(active), name_(histogram_name) {
    if (active_) start_ = Stopwatch::Clock::now();
  }

  ~ScopedTimer() {
    if (active_) {
      ObserveHistogram(name_, std::chrono::duration<double, std::milli>(
                                  Stopwatch::Clock::now() - start_)
                                  .count());
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  bool active_;
  std::string_view name_;
  Stopwatch::Clock::time_point start_;
};

}  // namespace tmark::obs

#endif  // TMARK_OBS_TRACE_H_
