#include "tmark/obs/mem.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tmark/obs/metrics.h"

namespace tmark::obs {

Result<std::uint64_t> ReadPeakRssBytes() {
  // /proc/self/status is a small pseudo-file; a single fgets loop over its
  // "Key:\tvalue" lines is the portable-across-libc way to find VmHWM
  // without pulling in an iostream.
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return NotFoundError("/proc/self/status is not readable on this system");
  }
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) != 0) continue;
    std::fclose(f);
    // Format: "VmHWM:   123456 kB".
    char* end = nullptr;
    const unsigned long long kb = std::strtoull(line + 6, &end, 10);
    if (end == line + 6) {
      return ParseError(std::string("unparseable VmHWM line: ") + line);
    }
    return static_cast<std::uint64_t>(kb) * 1024;
  }
  std::fclose(f);
  return ParseError("/proc/self/status has no VmHWM line");
}

void RecordPeakRss() {
  if (!MetricsEnabled()) return;
  const Result<std::uint64_t> rss = ReadPeakRssBytes();
  if (!rss.ok()) return;
  SetGauge("mem.peak_rss_bytes", static_cast<double>(*rss));
}

}  // namespace tmark::obs
