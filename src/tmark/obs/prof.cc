#include "tmark/obs/prof.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace tmark::obs::prof {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Hardware counters: one perf_event group per thread.
// ---------------------------------------------------------------------------

struct ThreadCounters {
  int fds[kNumCounters] = {-1, -1, -1, -1};
  bool ok = false;
};

#if defined(__linux__)

constexpr std::uint64_t kPerfConfigs[kNumCounters] = {
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

int PerfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                  unsigned long flags) {
  return static_cast<int>(
      syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags));
}

Status OpenThreadCounters(ThreadCounters* tc) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = PERF_TYPE_HARDWARE;
    attr.config = kPerfConfigs[i];
    attr.disabled = i == 0 ? 1 : 0;  // Group enabled as one unit below.
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP;
    const int group_fd = i == 0 ? -1 : tc->fds[0];
    const int fd = PerfEventOpen(&attr, 0, -1, group_fd, 0);
    if (fd < 0) {
      const int err = errno;
      for (std::size_t j = 0; j < i; ++j) {
        close(tc->fds[j]);
        tc->fds[j] = -1;
      }
      return FailedPreconditionError(
          std::string("perf_event_open(") + std::string(CounterName(i)) +
          ") failed: " + std::strerror(err) +
          " (hardware counters unavailable; falling back to time-only "
          "profiling)");
    }
    tc->fds[i] = fd;
  }
  ioctl(tc->fds[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(tc->fds[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  tc->ok = true;
  return Status::Ok();
}

bool ReadThreadCounters(const ThreadCounters& tc,
                        std::array<std::uint64_t, kNumCounters>* out) {
  struct {
    std::uint64_t nr;
    std::uint64_t values[kNumCounters];
  } data;
  const ssize_t n = read(tc.fds[0], &data, sizeof(data));
  if (n != static_cast<ssize_t>(sizeof(data)) || data.nr != kNumCounters) {
    return false;
  }
  for (std::size_t i = 0; i < kNumCounters; ++i) (*out)[i] = data.values[i];
  return true;
}

#else  // !defined(__linux__)

Status OpenThreadCounters(ThreadCounters* tc) {
  (void)tc;
  return FailedPreconditionError(
      "hardware counters require Linux perf_event_open; falling back to "
      "time-only profiling");
}

bool ReadThreadCounters(const ThreadCounters& tc,
                        std::array<std::uint64_t, kNumCounters>* out) {
  (void)tc;
  (void)out;
  return false;
}

#endif  // defined(__linux__)

// ---------------------------------------------------------------------------
// Per-thread region buffers.
// ---------------------------------------------------------------------------

struct RegionAccum {
  std::uint64_t calls = 0;
  std::uint64_t time_ns = 0;
  std::array<std::uint64_t, kNumCounters> counters{};
};

// Threads never free their buffer: the registry owns it so Snapshot() can
// merge buffers of threads that already exited. Sort key is (ordinal, seq):
// pool workers carry lane ordinals from RegisterWorkerThread(), everything
// else (the caller thread) sorts first by registration order.
struct ThreadBuffer {
  std::size_t ordinal = 0;
  std::uint64_t seq = 0;
  std::vector<RegionAccum> regions;            // indexed by region id
  std::map<std::string, std::uint32_t, std::less<>> name_cache;
  ThreadCounters counters;
  bool counters_attempted = false;
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::uint64_t next_seq = 0;
  std::map<std::string, std::uint32_t, std::less<>> region_ids;
  std::vector<std::string> region_names;
  Status counter_status;            // first probe result, latched
  bool counter_status_known = false;
  std::atomic<bool> counters_available{false};
};

Registry& GetRegistry() {
  static Registry* registry = new Registry;  // never destroyed (exit-safe)
  return *registry;
}

thread_local ThreadBuffer* t_buffer = nullptr;
thread_local std::size_t t_ordinal = 0;
thread_local bool t_has_ordinal = false;

// Opens this thread's counter group once; latches the first failure as the
// process-wide counter status. Caller holds registry.mu.
void ProbeCountersLocked(Registry& registry, ThreadBuffer* buffer) {
  if (buffer->counters_attempted) return;
  buffer->counters_attempted = true;
  Status status = OpenThreadCounters(&buffer->counters);
  if (status.ok()) {
    registry.counters_available.store(true, std::memory_order_relaxed);
  }
  if (!registry.counter_status_known) {
    registry.counter_status_known = true;
    registry.counter_status = std::move(status);
  }
}

ThreadBuffer* EnsureThreadBuffer() {
  if (t_buffer != nullptr) return t_buffer;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->ordinal = t_has_ordinal ? t_ordinal : 0;
  buffer->seq = registry.next_seq++;
  ProbeCountersLocked(registry, buffer.get());
  t_buffer = buffer.get();
  registry.buffers.push_back(std::move(buffer));
  return t_buffer;
}

std::uint32_t InternRegion(ThreadBuffer* buffer, std::string_view name) {
  const auto cached = buffer->name_cache.find(name);
  if (cached != buffer->name_cache.end()) return cached->second;
  Registry& registry = GetRegistry();
  std::uint32_t id = 0;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    const auto it = registry.region_ids.find(name);
    if (it != registry.region_ids.end()) {
      id = it->second;
    } else {
      id = static_cast<std::uint32_t>(registry.region_names.size());
      registry.region_names.emplace_back(name);
      registry.region_ids.emplace(std::string(name), id);
    }
  }
  buffer->name_cache.emplace(std::string(name), id);
  return id;
}

}  // namespace

std::string_view CounterName(std::size_t index) {
  switch (index) {
    case 0:
      return "cycles";
    case 1:
      return "instructions";
    case 2:
      return "llc_misses";
    case 3:
      return "branch_misses";
    default:
      return "unknown";
  }
}

Profiler& Profiler::Instance() {
  static Profiler* profiler = new Profiler;  // never destroyed (exit-safe)
  return *profiler;
}

void Profiler::set_enabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
  // Probe counters on the enabling thread so counters_status() answers
  // immediately, before any region runs.
  if (enabled) EnsureThreadBuffer();
}

Status Profiler::counters_status() const {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (!registry.counter_status_known) {
    return FailedPreconditionError(
        "hardware counters not probed yet (enable profiling first)");
  }
  return registry.counter_status;
}

bool Profiler::counters_available() const {
  return GetRegistry().counters_available.load(std::memory_order_relaxed);
}

ProfileSnapshot Profiler::Snapshot() const {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);

  ProfileSnapshot snapshot;
  snapshot.counters_available =
      registry.counters_available.load(std::memory_order_relaxed);
  snapshot.counter_status = registry.counter_status_known
                                ? registry.counter_status.ToString()
                                : std::string("UNPROBED");

  // Deterministic merge: (ordinal, seq) fixes the buffer order regardless
  // of OS scheduling; all accumulators are integers, so the merged totals
  // are bit-identical for any buffer order anyway — the sort makes the
  // iteration order itself reproducible.
  std::vector<const ThreadBuffer*> ordered;
  ordered.reserve(registry.buffers.size());
  for (const auto& buffer : registry.buffers) ordered.push_back(buffer.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const ThreadBuffer* a, const ThreadBuffer* b) {
              if (a->ordinal != b->ordinal) return a->ordinal < b->ordinal;
              return a->seq < b->seq;
            });

  std::vector<RegionAccum> merged(registry.region_names.size());
  for (const ThreadBuffer* buffer : ordered) {
    for (std::size_t id = 0; id < buffer->regions.size(); ++id) {
      const RegionAccum& accum = buffer->regions[id];
      merged[id].calls += accum.calls;
      merged[id].time_ns += accum.time_ns;
      for (std::size_t i = 0; i < kNumCounters; ++i) {
        merged[id].counters[i] += accum.counters[i];
      }
    }
  }

  for (std::size_t id = 0; id < merged.size(); ++id) {
    if (merged[id].calls == 0) continue;
    RegionTotals totals;
    totals.name = registry.region_names[id];
    totals.calls = merged[id].calls;
    totals.time_ns = merged[id].time_ns;
    totals.counters = merged[id].counters;
    snapshot.regions.push_back(std::move(totals));
  }
  std::sort(snapshot.regions.begin(), snapshot.regions.end(),
            [](const RegionTotals& a, const RegionTotals& b) {
              return a.name < b.name;
            });
  return snapshot;
}

void Profiler::Reset() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    for (RegionAccum& accum : buffer->regions) accum = RegionAccum{};
  }
}

void ProfRegion::Begin(std::string_view name) {
  ThreadBuffer* buffer = EnsureThreadBuffer();
  active_ = true;
  buffer_ = buffer;
  region_id_ = InternRegion(buffer, name);
  if (buffer->counters.ok) {
    counters_active_ = ReadThreadCounters(buffer->counters, &start_counters_);
  }
  start_ns_ = NowNs();
}

void ProfRegion::End() {
  const std::uint64_t end_ns = NowNs();
  ThreadBuffer* buffer = static_cast<ThreadBuffer*>(buffer_);
  if (buffer->regions.size() <= region_id_) {
    buffer->regions.resize(region_id_ + 1);
  }
  RegionAccum& accum = buffer->regions[region_id_];
  accum.calls += 1;
  accum.time_ns += end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  if (counters_active_) {
    std::array<std::uint64_t, kNumCounters> end_counters;
    if (ReadThreadCounters(buffer->counters, &end_counters)) {
      for (std::size_t i = 0; i < kNumCounters; ++i) {
        if (end_counters[i] >= start_counters_[i]) {
          accum.counters[i] += end_counters[i] - start_counters_[i];
        }
      }
    }
  }
}

bool SampleThreadCounters(std::array<std::uint64_t, kNumCounters>* out) {
  if (!ProfilingEnabled()) return false;
  ThreadBuffer* buffer = EnsureThreadBuffer();
  if (!buffer->counters.ok) return false;
  return ReadThreadCounters(buffer->counters, out);
}

void RegisterWorkerThread(std::size_t ordinal) {
  t_ordinal = ordinal;
  t_has_ordinal = true;
}

std::vector<AttributionRow> ComputeAttribution(
    const std::vector<SpanNode>& spans) {
  struct Accum {
    std::uint64_t count = 0;
    double total_ms = 0.0;
    double self_ms = 0.0;
    /// Counter columns are valid only when every span of this name — and
    /// all their direct children — carried counter deltas; an exclusive
    /// split against partially-counted children would be wrong.
    bool counters_valid = true;
    std::array<std::uint64_t, kNumCounters> total_counters{};
    std::array<std::uint64_t, kNumCounters> self_counters{};
  };
  std::map<std::string, Accum> by_name;

  // Recursive lambda over the forest; exclusive time/counters subtract the
  // direct children, clamped at zero (clock jitter can make a child nominally
  // outlast its parent by sub-microsecond amounts).
  const auto visit = [&by_name](const SpanNode& span, const auto& self) -> void {
    Accum& accum = by_name[span.name];
    accum.count += 1;
    accum.total_ms += span.duration_ms;
    double child_ms = 0.0;
    bool children_have_counters = true;
    std::array<std::uint64_t, kNumCounters> child_counters{};
    for (const SpanNode& child : span.children) {
      child_ms += child.duration_ms;
      if (child.has_counters) {
        for (std::size_t i = 0; i < kNumCounters; ++i) {
          child_counters[i] += child.counters[i];
        }
      } else {
        children_have_counters = false;
      }
      self(child, self);
    }
    accum.self_ms += std::max(0.0, span.duration_ms - child_ms);
    if (span.has_counters && children_have_counters) {
      for (std::size_t i = 0; i < kNumCounters; ++i) {
        accum.total_counters[i] += span.counters[i];
        if (span.counters[i] >= child_counters[i]) {
          accum.self_counters[i] += span.counters[i] - child_counters[i];
        }
      }
    } else {
      accum.counters_valid = false;
    }
  };
  for (const SpanNode& span : spans) visit(span, visit);

  std::vector<AttributionRow> rows;
  rows.reserve(by_name.size());
  for (auto& [name, accum] : by_name) {
    AttributionRow row;
    row.name = name;
    row.count = accum.count;
    row.total_ms = accum.total_ms;
    row.self_ms = accum.self_ms;
    row.has_counters = accum.counters_valid;
    if (accum.counters_valid) {
      row.total_counters = accum.total_counters;
      row.self_counters = accum.self_counters;
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const AttributionRow& a, const AttributionRow& b) {
              if (a.self_ms != b.self_ms) return a.self_ms > b.self_ms;
              return a.name < b.name;
            });
  return rows;
}

double MeasureDisabledRegionCostNs(std::size_t iterations) {
  if (iterations == 0) return 0.0;
  const bool was_enabled = Profiler::Instance().enabled();
  internal::g_enabled.store(false, std::memory_order_relaxed);
  Stopwatch stopwatch;
  for (std::size_t i = 0; i < iterations; ++i) {
    TMARK_PROF_REGION("obs.prof.overhead_probe");
#if defined(__GNUC__)
    asm volatile("" ::: "memory");  // Keep the loop from folding away.
#endif
  }
  const double elapsed_ms = stopwatch.ElapsedMs();
  internal::g_enabled.store(was_enabled, std::memory_order_relaxed);
  return elapsed_ms * 1e6 / static_cast<double>(iterations);
}

}  // namespace tmark::obs::prof
