#include "tmark/obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "tmark/common/check.h"

namespace tmark::obs {

std::vector<double> Histogram::DefaultTimingBucketsMs() {
  // 1-2-5 ladder from 1µs to 10s (values are milliseconds).
  std::vector<double> bounds;
  for (double decade = 1e-3; decade < 2e4; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  TMARK_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                      std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                          bounds_.end(),
                  "histogram bucket bounds must be strictly ascending");
}

void Histogram::Observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

double Histogram::PercentileLocked(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile among `count_` observations (1-based).
  const double rank = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const double below = static_cast<double>(cumulative);
    cumulative += counts_[b];
    if (static_cast<double>(cumulative) < rank) continue;
    // The quantile falls inside bucket b: interpolate linearly between its
    // bounds, then clamp to the observed range so sparse tails (and the
    // +inf overflow bucket) cannot report values never seen.
    const double lower = b == 0 ? 0.0 : bounds_[b - 1];
    const double upper =
        b < bounds_.size() ? bounds_[b] : max_;
    const double in_bucket = static_cast<double>(counts_[b]);
    const double frac =
        in_bucket > 0.0 ? (rank - below) / in_bucket : 0.0;
    const double est = lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
    return std::clamp(est, min_, max_);
  }
  return max_;
}

double Histogram::Percentile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return PercentileLocked(q);
}

HistogramSnapshot Histogram::Snapshot(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot snap;
  snap.name = std::string(name);
  snap.count = count_;
  snap.sum = sum_;
  snap.min = count_ > 0 ? min_ : 0.0;
  snap.max = count_ > 0 ? max_ : 0.0;
  snap.p50 = PercentileLocked(0.50);
  snap.p95 = PercentileLocked(0.95);
  snap.p99 = PercentileLocked(0.99);
  snap.buckets.reserve(counts_.size());
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    HistogramBucket bucket;
    bucket.upper_bound = b < bounds_.size()
                             ? bounds_[b]
                             : std::numeric_limits<double>::infinity();
    bucket.count = counts_[b];
    snap.buckets.push_back(bucket);
  }
  return snap;
}

void Series::Append(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_count_;
  if (values_.size() < kMaxPoints) values_.push_back(v);
}

SeriesSnapshot Series::Snapshot(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  SeriesSnapshot snap;
  snap.name = std::string(name);
  snap.total_count = total_count_;
  snap.values = values_;
  return snap;
}

Registry& Registry::Instance() {
  static Registry* registry = new Registry;  // never destroyed (exit-safe)
  return *registry;
}

namespace {

template <typename Map, typename Factory>
auto& GetOrCreate(Map& map, std::string_view name, Factory make) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), make()).first;
  }
  return *it->second;
}

}  // namespace

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(counters_, name,
                     [] { return std::make_unique<Counter>(); });
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(gauges_, name, [] { return std::make_unique<Gauge>(); });
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(histograms_, name, [&bounds] {
    return bounds.empty() ? std::make_unique<Histogram>()
                          : std::make_unique<Histogram>(std::move(bounds));
  });
}

Series& Registry::GetSeries(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(series_, name, [] { return std::make_unique<Series>(); });
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  series_.clear();
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back(histogram->Snapshot(name));
  }
  snap.series.reserve(series_.size());
  for (const auto& [name, s] : series_) {
    snap.series.push_back(s->Snapshot(name));
  }
  return snap;
}

}  // namespace tmark::obs
