#ifndef TMARK_OBS_METRICS_H_
#define TMARK_OBS_METRICS_H_

// Process-global metrics registry: named counters, gauges, fixed-bucket
// histograms (p50/p95/p99), and bounded series (for per-iteration traces
// such as the T-Mark residual rho_t). Everything is thread-safe.
//
// The registry is compiled in everywhere but DISABLED by default: the
// gated helpers at the bottom (IncrCounter, SetGauge, ObserveHistogram,
// AppendSeries) cost one relaxed atomic load + branch per call site while
// disabled. Enable with Registry::Instance().set_enabled(true) — the bench
// JSON mode (TMARK_BENCH_JSON) and the CLI --metrics-json flag do this.

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tmark::obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Increment(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins floating-point metric.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramBucket {
  double upper_bound = 0.0;  ///< Inclusive; +inf for the overflow bucket.
  std::uint64_t count = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<HistogramBucket> buckets;
};

/// Fixed-bucket histogram. Percentiles are estimated by linear
/// interpolation inside the bucket containing the requested rank, clamped
/// to the observed [min, max] range (so the overflow bucket reports max).
class Histogram {
 public:
  /// `bounds` must be strictly ascending; an implicit +inf overflow bucket
  /// is appended. Defaults to DefaultTimingBucketsMs().
  explicit Histogram(std::vector<double> bounds = DefaultTimingBucketsMs());

  void Observe(double v);

  /// Percentile estimate for q in [0, 1]; 0 when empty.
  double Percentile(double q) const;

  HistogramSnapshot Snapshot(std::string_view name) const;

  /// 1µs .. 10s in a 1-2-5 ladder — suits the ms-denominated timers.
  static std::vector<double> DefaultTimingBucketsMs();

 private:
  double PercentileLocked(double q) const;

  mutable std::mutex mu_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 (overflow).
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

struct SeriesSnapshot {
  std::string name;
  std::uint64_t total_count = 0;  ///< Appends seen, including dropped ones.
  std::vector<double> values;     ///< First kMaxPoints appends.
};

/// Append-only bounded sequence of doubles, e.g. one residual per fixed-
/// point iteration. Keeps the first kMaxPoints values and counts the rest.
class Series {
 public:
  static constexpr std::size_t kMaxPoints = 4096;

  void Append(double v);
  SeriesSnapshot Snapshot(std::string_view name) const;

 private:
  mutable std::mutex mu_;
  std::uint64_t total_count_ = 0;
  std::vector<double> values_;
};

struct CounterSnapshot {
  std::string name;
  std::int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

/// Point-in-time copy of every metric, sorted by name (deterministic JSON).
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<SeriesSnapshot> series;
};

/// The process-global registry. Metric objects live until Reset(); the
/// references returned by the Get* accessors are stable across lookups.
class Registry {
 public:
  static Registry& Instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// `bounds` applies only when the histogram is created by this call.
  Histogram& GetHistogram(std::string_view name,
                          std::vector<double> bounds = {});
  Series& GetSeries(std::string_view name);

  /// Drops every metric (tests). Invalidates previously returned refs.
  void Reset();

  MetricsSnapshot Snapshot() const;

 private:
  Registry() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Series>, std::less<>> series_;
};

inline bool MetricsEnabled() { return Registry::Instance().enabled(); }

// Enabled-gated instrumentation helpers: a branch when the registry is off.

inline void IncrCounter(std::string_view name, std::int64_t delta = 1) {
  Registry& registry = Registry::Instance();
  if (!registry.enabled()) return;
  registry.GetCounter(name).Increment(delta);
}

inline void SetGauge(std::string_view name, double value) {
  Registry& registry = Registry::Instance();
  if (!registry.enabled()) return;
  registry.GetGauge(name).Set(value);
}

inline void ObserveHistogram(std::string_view name, double value) {
  Registry& registry = Registry::Instance();
  if (!registry.enabled()) return;
  registry.GetHistogram(name).Observe(value);
}

inline void AppendSeries(std::string_view name, double value) {
  Registry& registry = Registry::Instance();
  if (!registry.enabled()) return;
  registry.GetSeries(name).Append(value);
}

}  // namespace tmark::obs

#endif  // TMARK_OBS_METRICS_H_
