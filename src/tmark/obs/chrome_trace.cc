#include "tmark/obs/chrome_trace.h"

#include "tmark/obs/json_export.h"

namespace tmark::obs {
namespace {

void WriteChromeEvent(JsonWriter& writer, const SpanNode& span) {
  writer.BeginObject();
  writer.Key("name").Value(span.name);
  writer.Key("cat").Value("tmark");
  writer.Key("ph").Value("X");
  // Trace-event timestamps are microseconds; span times are milliseconds
  // from the tracer epoch. Viewers tolerate fractional microseconds.
  writer.Key("ts").Value(span.start_ms * 1000.0);
  writer.Key("dur").Value(span.duration_ms * 1000.0);
  writer.Key("pid").Value(std::int64_t{1});
  writer.Key("tid").Value(std::int64_t{1});
  writer.Key("args").BeginObject();
  for (const auto& [key, value] : span.fields) {
    writer.Key(key).Value(value);
  }
  if (span.has_counters) {
    for (std::size_t i = 0; i < kSpanCounters; ++i) {
      writer.Key(SpanCounterName(i)).Value(span.counters[i]);
    }
  }
  writer.EndObject();
  writer.EndObject();
  for (const SpanNode& child : span.children) WriteChromeEvent(writer, child);
}

}  // namespace

std::string SpansToChromeTrace(const std::vector<SpanNode>& spans) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("displayTimeUnit").Value("ms");
  writer.Key("traceEvents").BeginArray();
  for (const SpanNode& span : spans) WriteChromeEvent(writer, span);
  writer.EndArray();
  writer.EndObject();
  return writer.TakeString();
}

}  // namespace tmark::obs
