#include "tmark/obs/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <mutex>

#include "tmark/obs/metrics.h"

namespace tmark::obs {
namespace {

bool NeedsQuoting(std::string_view v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '"' || c == '=') {
      return true;
    }
  }
  return false;
}

void AppendQuoted(std::string* out, std::string_view v) {
  out->push_back('"');
  for (char c : v) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

std::optional<LogLevel> ParseLogLevel(std::string_view s) {
  std::string lower;
  lower.reserve(s.size());
  for (char c : s) {
    lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a')
                                         : c);
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

struct Logger::Impl {
  std::atomic<int> level{static_cast<int>(LogLevel::kInfo)};
  std::atomic<bool> stderr_enabled{true};
  std::mutex mu;                     // guards file sink + line emission
  std::ofstream file;                // optional secondary sink
  bool sink_error_warned = false;    // one-shot warning latch (under mu)
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
};

namespace {

// One-shot Status-carrying warning for a failing file sink; the
// obs.log.file_errors counter keeps counting every subsequent failure.
void WarnSinkFailureLocked(bool* warned, const Status& status) {
  IncrCounter("obs.log.file_errors");
  if (*warned) return;
  *warned = true;
  std::fprintf(stderr, "[warn] tmark: log sink unavailable: %s\n",
               status.ToString().c_str());
}

}  // namespace

Logger::Logger() : impl_(new Impl) {
  if (const char* env = std::getenv("TMARK_LOG_LEVEL")) {
    if (const auto parsed = ParseLogLevel(env)) {
      impl_->level.store(static_cast<int>(*parsed),
                         std::memory_order_relaxed);
    } else {
      std::fprintf(stderr,
                   "[warn] tmark: unrecognized TMARK_LOG_LEVEL '%s' "
                   "(expected debug|info|warn|error|off)\n",
                   env);
    }
  }
  if (const char* env = std::getenv("TMARK_LOG_FILE")) {
    // set_sink_file already counts the failure and warns once with the
    // typed status, so nothing extra to do here.
    if (*env != '\0') set_sink_file(env);
  }
}

Logger::~Logger() { delete impl_; }

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

LogLevel Logger::level() const {
  return static_cast<LogLevel>(impl_->level.load(std::memory_order_relaxed));
}

void Logger::set_level(LogLevel level) {
  impl_->level.store(static_cast<int>(level), std::memory_order_relaxed);
}

Status Logger::OpenSinkFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (path.empty()) {
    impl_->file.close();
    impl_->file.clear();
    return Status::Ok();
  }
  std::ofstream next(path, std::ios::app);
  if (!next.is_open()) {
    return NotFoundError("cannot open log sink '" + path + "'");
  }
  impl_->file = std::move(next);
  return Status::Ok();
}

bool Logger::set_sink_file(const std::string& path) {
  const Status status = OpenSinkFile(path);
  if (status.ok()) return true;
  std::lock_guard<std::mutex> lock(impl_->mu);
  WarnSinkFailureLocked(&impl_->sink_error_warned, status);
  return false;
}

void Logger::set_stderr_enabled(bool enabled) {
  impl_->stderr_enabled.store(enabled, std::memory_order_relaxed);
}

void Logger::Write(LogLevel level, std::string_view event,
                   std::initializer_list<LogField> fields) {
  if (!Enabled(level)) return;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    impl_->start)
          .count();
  std::string line;
  line.reserve(64 + 24 * fields.size());
  line.push_back('[');
  const std::string_view name = LogLevelName(level);
  for (char c : name) {
    line.push_back(static_cast<char>(c >= 'a' && c <= 'z' ? c - 'a' + 'A'
                                                          : c));
  }
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), " +%.3fs] ", elapsed);
  line.append(stamp);
  line.append(event);
  for (const LogField& field : fields) {
    line.push_back(' ');
    line.append(field.key);
    line.push_back('=');
    if (NeedsQuoting(field.value)) {
      AppendQuoted(&line, field.value);
    } else {
      line.append(field.value);
    }
  }
  line.push_back('\n');

  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->stderr_enabled.load(std::memory_order_relaxed)) {
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
  if (impl_->file.is_open()) {
    impl_->file.write(line.data(),
                      static_cast<std::streamsize>(line.size()));
    impl_->file.flush();
    if (!impl_->file.good()) {
      WarnSinkFailureLocked(
          &impl_->sink_error_warned,
          DataLossError("log sink write failed; dropping log lines"));
      // Clear the error so later lines retry (and are counted when the
      // sink is still failing) instead of silently no-oping forever.
      impl_->file.clear();
    }
  }
}

}  // namespace tmark::obs
