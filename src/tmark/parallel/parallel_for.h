#ifndef TMARK_PARALLEL_PARALLEL_FOR_H_
#define TMARK_PARALLEL_PARALLEL_FOR_H_

// Deterministic data-parallel loops on top of the global ThreadPool.
//
// Chunk boundaries are computed from the element count and grain alone —
// never from the thread count — so a kernel that writes disjoint outputs is
// bit-identical at any parallelism degree, and a reduction that combines
// ordered per-chunk partials in chunk order is too. Callers pick grains
// large enough that small (test-sized) inputs collapse to a single chunk,
// which executes the exact serial loop on the calling thread.

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "tmark/parallel/thread_pool.h"

namespace tmark::parallel {

/// Default cap on the number of chunks a loop splits into. High enough for
/// dynamic load balancing across any realistic pool, low enough that the
/// per-chunk partial buffers of reductions stay cheap.
inline constexpr std::size_t kDefaultMaxChunks = 64;

/// Number of chunks for `count` elements at the given grain, capped at
/// `max_chunks`. Depends only on the inputs (deterministic across thread
/// counts). Returns 0 for an empty range, 1 when count <= grain.
inline std::size_t NumFixedChunks(std::size_t count, std::size_t grain,
                                  std::size_t max_chunks = kDefaultMaxChunks) {
  if (count == 0) return 0;
  if (grain == 0) grain = 1;
  if (max_chunks == 0) max_chunks = 1;
  const std::size_t chunks = (count + grain - 1) / grain;
  return chunks < max_chunks ? chunks : max_chunks;
}

/// Runs body(chunk, begin, end) for `num_chunks` contiguous, near-equal
/// slices of [0, count). With 0 or 1 chunks the body runs inline on the
/// calling thread (the guaranteed serial path). Templated on the body so
/// the common single-chunk case is a direct call — no std::function
/// allocation on the steady-state hot path; only the genuinely parallel
/// branch type-erases for ThreadPool::Run.
template <typename Body>
void ParallelChunks(std::size_t count, std::size_t num_chunks, Body&& body) {
  if (count == 0 || num_chunks == 0) return;
  if (num_chunks == 1) {
    body(std::size_t{0}, std::size_t{0}, count);
    return;
  }
  if (num_chunks > count) num_chunks = count;
  // The pool takes a std::function; keep the callable a single trivially
  // copyable pointer so it fits the small-buffer store and the multi-chunk
  // dispatch allocates nothing (steady-state kernel calls stay heap-free).
  struct Ctx {
    std::size_t base;
    std::size_t extra;
    std::remove_reference_t<Body>* body;
  } ctx{count / num_chunks, count % num_chunks, &body};
  Ctx* const p = &ctx;
  GlobalPool().Run(num_chunks, [p](std::size_t chunk) {
    // Chunks [0, p->extra) carry one extra element.
    const std::size_t begin =
        chunk * p->base + (chunk < p->extra ? chunk : p->extra);
    const std::size_t end = begin + p->base + (chunk < p->extra ? 1 : 0);
    (*p->body)(chunk, begin, end);
  });
}

/// Runs body(i, bounds[i], bounds[i+1]) for every i in
/// [0, bounds.size() - 1) — caller-chosen contiguous ranges (e.g. the
/// nnz-balanced LLC shards of the merged tensor view), one pool task each.
/// With fewer than two boundaries nothing runs; with exactly one range the
/// body runs inline on the calling thread (the guaranteed serial path). The
/// boundaries come from the caller's structure alone, so kernels with
/// disjoint per-range outputs stay bit-identical at any thread count. Like
/// ParallelChunks, dispatch captures a single pointer so steady-state calls
/// allocate nothing.
template <typename Body>
void ParallelBoundedRanges(const std::vector<std::size_t>& bounds,
                           Body&& body) {
  if (bounds.size() < 2) return;
  const std::size_t tasks = bounds.size() - 1;
  if (tasks == 1) {
    body(std::size_t{0}, bounds[0], bounds[1]);
    return;
  }
  struct Ctx {
    const std::size_t* bounds;
    std::remove_reference_t<Body>* body;
  } ctx{bounds.data(), &body};
  Ctx* const p = &ctx;
  GlobalPool().Run(tasks, [p](std::size_t i) {
    (*p->body)(i, p->bounds[i], p->bounds[i + 1]);
  });
}

/// Runs body(begin, end) over grain-sized ranges of [0, count).
template <typename Body>
void ParallelForRanges(std::size_t count, std::size_t grain, Body&& body) {
  ParallelChunks(count, NumFixedChunks(count, grain),
                 [&](std::size_t, std::size_t begin, std::size_t end) {
                   body(begin, end);
                 });
}

/// Runs body(i) for every i in [0, count), chunked by `grain`.
template <typename Body>
void ParallelFor(std::size_t count, std::size_t grain, Body&& body) {
  ParallelForRanges(count, grain,
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) body(i);
                    });
}

/// Deterministic reduction: map(begin, end) produces one partial per chunk,
/// combine folds the partials left-to-right in chunk order starting from
/// `identity`. With one chunk this degenerates to
/// combine(identity, map(0, count)) on the calling thread.
template <typename T, typename Map, typename Combine>
T ParallelReduce(std::size_t count, std::size_t grain, T identity, Map&& map,
                 Combine&& combine) {
  const std::size_t chunks = NumFixedChunks(count, grain);
  if (chunks == 0) return identity;
  if (chunks == 1) return combine(std::move(identity), map(0, count));
  std::vector<T> partials(chunks, identity);
  ParallelChunks(count, chunks,
                 [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                   partials[chunk] = map(begin, end);
                 });
  T result = std::move(identity);
  for (T& partial : partials) result = combine(std::move(result), partial);
  return result;
}

}  // namespace tmark::parallel

#endif  // TMARK_PARALLEL_PARALLEL_FOR_H_
