#include "tmark/parallel/thread_pool.h"

#include <cstdlib>
#include <memory>
#include <utility>

#include "tmark/obs/metrics.h"
#include "tmark/obs/prof.h"

namespace tmark::parallel {
namespace {

// True while the current thread executes inside a ThreadPool batch (as a
// worker or as the participating caller). Nested Run calls observe it and
// execute inline, which keeps run_mu_ non-reentrant and deadlock-free.
thread_local bool t_inside_parallel_region = false;

struct ScopedRegionFlag {
  ScopedRegionFlag() : previous(t_inside_parallel_region) {
    t_inside_parallel_region = true;
  }
  ~ScopedRegionFlag() { t_inside_parallel_region = previous; }
  bool previous;
};

std::mutex g_config_mu;
std::size_t g_num_threads = 0;  // 0 = not yet latched from the environment.
std::unique_ptr<ThreadPool> g_pool;

std::size_t DefaultNumThreads() {
  const std::size_t env = ParseThreadCount(std::getenv("TMARK_NUM_THREADS"));
  return env > 0 ? env : HardwareConcurrency();
}

std::size_t NumThreadsLocked() {
  if (g_num_threads == 0) g_num_threads = DefaultNumThreads();
  return g_num_threads;
}

}  // namespace

std::size_t HardwareConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

std::size_t ParseThreadCount(const char* text) {
  if (text == nullptr || *text == '\0') return 0;
  std::size_t value = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return 0;
    value = value * 10 + static_cast<std::size_t>(*p - '0');
    if (value > kMaxConfigurableThreads) return kMaxConfigurableThreads;
  }
  return value;
}

std::size_t NumThreads() {
  std::lock_guard<std::mutex> lock(g_config_mu);
  return NumThreadsLocked();
}

void SetNumThreads(std::size_t n) {
  std::lock_guard<std::mutex> lock(g_config_mu);
  if (n > kMaxConfigurableThreads) n = kMaxConfigurableThreads;
  g_num_threads = n == 0 ? DefaultNumThreads() : n;
  g_pool.reset();  // Rebuilt lazily with the new lane count.
  obs::SetGauge("parallel.threads", static_cast<double>(g_num_threads));
}

ThreadPool& GlobalPool() {
  std::lock_guard<std::mutex> lock(g_config_mu);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(NumThreadsLocked());
    obs::SetGauge("parallel.threads", static_cast<double>(g_num_threads));
  }
  return *g_pool;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 0; i + 1 < num_threads; ++i) {
    // Lane i+1: the caller participating in Run is lane 0, so the
    // profiler's per-thread buffers merge caller-first, then workers in
    // lane order (see obs/prof.h).
    workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Run(std::size_t num_tasks,
                     const std::function<void(std::size_t)>& task) {
  if (num_tasks == 0) return;
  if (workers_.empty() || num_tasks == 1 || t_inside_parallel_region) {
    RunSerial(num_tasks, task);
    return;
  }

  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &task;
    num_tasks_ = num_tasks;
    next_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    workers_remaining_ = workers_.size();
    ++epoch_;
  }
  work_cv_.notify_all();

  {
    ScopedRegionFlag region;
    Drain(task);
  }

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return workers_remaining_ == 0; });
    task_ = nullptr;
    error = std::exchange(error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::WorkerLoop(std::size_t lane) {
  t_inside_parallel_region = true;
  obs::prof::RegisterWorkerThread(lane);
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      task = task_;
    }
    Drain(*task);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_remaining_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::Drain(const std::function<void(std::size_t)>& task) {
  for (;;) {
    if (failed_.load(std::memory_order_acquire)) return;
    const std::size_t t = next_.fetch_add(1, std::memory_order_relaxed);
    if (t >= num_tasks_) return;
    try {
      task(t);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
      failed_.store(true, std::memory_order_release);
    }
  }
}

void ThreadPool::RunSerial(std::size_t num_tasks,
                           const std::function<void(std::size_t)>& task) {
  for (std::size_t t = 0; t < num_tasks; ++t) task(t);
}

}  // namespace tmark::parallel
