#ifndef TMARK_PARALLEL_THREAD_POOL_H_
#define TMARK_PARALLEL_THREAD_POOL_H_

// Fixed-size fork/join thread pool behind the contraction kernels and the
// per-class fit loop (docs/PERFORMANCE.md).
//
// The process-wide parallelism degree comes from, in order of precedence,
// SetNumThreads(), the TMARK_NUM_THREADS environment variable, and
// std::thread::hardware_concurrency(). At 1 thread every entry point runs
// the work inline on the calling thread, so the serial path is exactly the
// pre-pool code shape with no synchronization.
//
// Determinism contract: the algorithm helpers in parallel_for.h partition
// work by problem size only — never by thread count — so numerical results
// are bit-identical across thread counts (serial included). Kernels with
// disjoint outputs need nothing more; reductions and scatters additionally
// merge ordered per-chunk partial buffers in chunk order.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tmark::parallel {

/// std::thread::hardware_concurrency() with a floor of 1.
std::size_t HardwareConcurrency();

/// Parses a TMARK_NUM_THREADS-style value. Returns 0 (meaning "use the
/// default") when `text` is null, empty, non-numeric, zero, or has trailing
/// garbage; otherwise the parsed count clamped to kMaxConfigurableThreads.
std::size_t ParseThreadCount(const char* text);

/// Upper bound accepted from the env var / SetNumThreads (sanity clamp).
inline constexpr std::size_t kMaxConfigurableThreads = 1024;

/// The configured parallelism degree (>= 1). First call latches the
/// TMARK_NUM_THREADS / hardware default.
std::size_t NumThreads();

/// Overrides the parallelism degree; 0 restores the environment/hardware
/// default. Drops the current global pool, so call it between parallel
/// regions (e.g. at startup or between fits), never from inside one.
void SetNumThreads(std::size_t n);

/// A fixed-size pool of `num_threads - 1` worker threads; the thread that
/// calls Run participates as the extra lane. One batch runs at a time
/// (concurrent Run calls from different threads serialize), and a Run
/// issued from inside a task executes inline on the calling thread, so
/// nested parallel regions cannot deadlock.
class ThreadPool {
 public:
  /// `num_threads` is the total parallelism including the caller (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Executes task(t) for every t in [0, num_tasks), blocking until all
  /// complete. The first exception thrown by any task is rethrown here
  /// (remaining unclaimed tasks are skipped); the pool stays usable.
  void Run(std::size_t num_tasks, const std::function<void(std::size_t)>& task);

 private:
  /// `lane` is this worker's 1-based lane (the participating caller is
  /// lane 0); it fixes the worker's position in the profiler's
  /// deterministic buffer-merge order.
  void WorkerLoop(std::size_t lane);
  /// Claims and executes tasks of the current batch until it drains or a
  /// task fails.
  void Drain(const std::function<void(std::size_t)>& task);
  static void RunSerial(std::size_t num_tasks,
                        const std::function<void(std::size_t)>& task);

  std::mutex run_mu_;  ///< Serializes whole batches.

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t num_tasks_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
  std::uint64_t epoch_ = 0;          ///< Batch generation, bumped per Run.
  std::size_t workers_remaining_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// The process-global pool, lazily built with NumThreads() lanes.
ThreadPool& GlobalPool();

}  // namespace tmark::parallel

#endif  // TMARK_PARALLEL_THREAD_POOL_H_
