#include "tmark/baselines/relational_features.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tmark/common/check.h"

namespace tmark::baselines {

la::DenseMatrix ContentFeatures(const hin::Hin& hin) {
  const la::SparseMatrix& f = hin.features();
  la::DenseMatrix out = f.ToDense();
  for (std::size_t i = 0; i < out.rows(); ++i) {
    double* row = out.RowPtr(i);
    double sq = 0.0;
    for (std::size_t d = 0; d < out.cols(); ++d) sq += row[d] * row[d];
    if (sq > 0.0) {
      const double inv = 1.0 / std::sqrt(sq);
      for (std::size_t d = 0; d < out.cols(); ++d) row[d] *= inv;
    }
  }
  return out;
}

la::DenseMatrix NeighborLabelDistribution(const la::SparseMatrix& graph,
                                          const la::DenseMatrix& label_probs) {
  TMARK_CHECK(graph.cols() == label_probs.rows());
  la::DenseMatrix agg = graph.MatMulDense(label_probs);
  for (std::size_t i = 0; i < agg.rows(); ++i) {
    double* row = agg.RowPtr(i);
    double sum = 0.0;
    for (std::size_t c = 0; c < agg.cols(); ++c) sum += row[c];
    if (sum > 0.0) {
      for (std::size_t c = 0; c < agg.cols(); ++c) row[c] /= sum;
    }
  }
  return agg;
}

la::DenseMatrix ConcatColumns(
    const std::vector<const la::DenseMatrix*>& parts) {
  TMARK_CHECK(!parts.empty());
  const std::size_t rows = parts[0]->rows();
  std::size_t cols = 0;
  for (const la::DenseMatrix* p : parts) {
    TMARK_CHECK_MSG(p->rows() == rows, "all blocks must have equal height");
    cols += p->cols();
  }
  la::DenseMatrix out(rows, cols);
  std::size_t offset = 0;
  for (const la::DenseMatrix* p : parts) {
    for (std::size_t r = 0; r < rows; ++r) {
      std::copy(p->RowPtr(r), p->RowPtr(r) + p->cols(),
                out.RowPtr(r) + offset);
    }
    offset += p->cols();
  }
  return out;
}

la::DenseMatrix LabeledOneHot(const hin::Hin& hin,
                              const std::vector<std::size_t>& labeled) {
  la::DenseMatrix out(hin.num_nodes(), hin.num_classes());
  for (std::size_t node : labeled) {
    out.At(node, hin.PrimaryLabel(node)) = 1.0;
  }
  return out;
}

std::vector<la::SparseMatrix> SelectRelationChannels(
    const hin::Hin& hin, std::size_t max_channels) {
  TMARK_CHECK(max_channels >= 1);
  const std::size_t m = hin.num_relations();
  std::vector<la::SparseMatrix> out;
  if (m <= max_channels) {
    for (std::size_t k = 0; k < m; ++k) out.push_back(hin.relation(k));
    return out;
  }
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return hin.relation(a).NumNonZeros() > hin.relation(b).NumNonZeros();
  });
  la::SparseMatrix rest(hin.num_nodes(), hin.num_nodes());
  for (std::size_t r = 0; r < m; ++r) {
    if (r + 1 < max_channels) {
      out.push_back(hin.relation(order[r]));
    } else {
      rest = rest.Add(hin.relation(order[r]));
    }
  }
  out.push_back(std::move(rest));
  return out;
}

}  // namespace tmark::baselines
