#ifndef TMARK_BASELINES_GRAPH_INCEPTION_H_
#define TMARK_BASELINES_GRAPH_INCEPTION_H_

#include <string>
#include <vector>

#include "tmark/hin/classifier.h"
#include "tmark/ml/graph_conv.h"

namespace tmark::baselines {

/// Graph Inception baseline (GraphInception, Xiong et al. TKDE 2019): a
/// transductive graph-convolutional network mixing per-relation, multi-hop
/// propagated features. Its parameter count scales with the number of
/// relations, which reproduces the low-label-rate overfitting the paper
/// reports for GI in Tables 3, 4 and 11.
class GraphInceptionClassifier : public hin::CollectiveClassifier {
 public:
  explicit GraphInceptionClassifier(ml::GraphInceptionNetConfig config = {});

  void Fit(const hin::Hin& hin,
           const std::vector<std::size_t>& labeled) override;
  const la::DenseMatrix& Confidences() const override;
  std::string Name() const override { return "GI"; }

 private:
  ml::GraphInceptionNetConfig config_;
  la::DenseMatrix confidences_;
};

}  // namespace tmark::baselines

#endif  // TMARK_BASELINES_GRAPH_INCEPTION_H_
