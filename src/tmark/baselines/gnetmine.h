#ifndef TMARK_BASELINES_GNETMINE_H_
#define TMARK_BASELINES_GNETMINE_H_

#include <string>
#include <vector>

#include "tmark/hin/classifier.h"

namespace tmark::baselines {

/// GNetMine hyper-parameters.
struct GNetMineConfig {
  /// Trade-off mu between graph smoothness and fitting the labels: the
  /// fixed-point weight of the label injection term.
  double mu = 0.2;
  int iterations = 60;
};

/// GNetMine (Ji et al., ECML-PKDD 2010) — graph-regularized transductive
/// classification on heterogeneous information networks; the method whose
/// DBLP extraction the paper's Sec. 6.1 evaluation reuses. Minimizes the
/// per-relation quadratic smoothness penalty plus a label-fitting term,
/// solved by the standard fixed-point iteration
///
///   F <- (1 - mu) * (1/m) * sum_k S_k F + mu * Y
///
/// with S_k the symmetric-normalized adjacency of relation k and Y the
/// one-hot labeled matrix. All relations share one weight (the paper's
/// criticism: no relative importance of links).
class GNetMineClassifier : public hin::CollectiveClassifier {
 public:
  explicit GNetMineClassifier(GNetMineConfig config = {});

  void Fit(const hin::Hin& hin,
           const std::vector<std::size_t>& labeled) override;
  const la::DenseMatrix& Confidences() const override;
  std::string Name() const override { return "GNetMine"; }

 private:
  GNetMineConfig config_;
  la::DenseMatrix confidences_;
};

}  // namespace tmark::baselines

#endif  // TMARK_BASELINES_GNETMINE_H_
