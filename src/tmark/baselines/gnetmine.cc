#include "tmark/baselines/gnetmine.h"

#include "tmark/baselines/relational_features.h"
#include "tmark/common/check.h"
#include "tmark/ml/graph_conv.h"  // SymmetricNormalize

namespace tmark::baselines {

GNetMineClassifier::GNetMineClassifier(GNetMineConfig config)
    : config_(config) {
  TMARK_CHECK(config.mu > 0.0 && config.mu <= 1.0);
}

void GNetMineClassifier::Fit(const hin::Hin& hin,
                             const std::vector<std::size_t>& labeled) {
  TMARK_CHECK(!labeled.empty());
  const std::size_t n = hin.num_nodes();
  const std::size_t m = hin.num_relations();

  std::vector<la::SparseMatrix> smoothers;
  smoothers.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    smoothers.push_back(ml::SymmetricNormalize(hin.relation(k)));
  }
  const la::DenseMatrix y = LabeledOneHot(hin, labeled);
  la::DenseMatrix f = y;
  const double spread = (1.0 - config_.mu) / static_cast<double>(m);
  for (int it = 0; it < config_.iterations; ++it) {
    la::DenseMatrix next(n, hin.num_classes());
    for (const la::SparseMatrix& s : smoothers) {
      next.AddInPlace(s.MatMulDense(f));
    }
    next.ScaleInPlace(spread);
    la::DenseMatrix injected = y;
    injected.ScaleInPlace(config_.mu);
    next.AddInPlace(injected);
    f = std::move(next);
  }
  // Normalize rows into confidences (rows of isolated unlabeled nodes stay
  // uniform).
  confidences_ = la::DenseMatrix(n, hin.num_classes());
  const double uniform = 1.0 / static_cast<double>(hin.num_classes());
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = f.RowPtr(i);
    double sum = 0.0;
    for (std::size_t c = 0; c < hin.num_classes(); ++c) sum += row[c];
    double* out = confidences_.RowPtr(i);
    for (std::size_t c = 0; c < hin.num_classes(); ++c) {
      out[c] = sum > 0.0 ? row[c] / sum : uniform;
    }
  }
}

const la::DenseMatrix& GNetMineClassifier::Confidences() const {
  TMARK_CHECK_MSG(confidences_.rows() > 0, "classifier is not fitted");
  return confidences_;
}

}  // namespace tmark::baselines
