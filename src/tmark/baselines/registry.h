#ifndef TMARK_BASELINES_REGISTRY_H_
#define TMARK_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "tmark/core/tmark.h"
#include "tmark/hin/classifier.h"

namespace tmark::baselines {

/// Creates a classifier by its paper name. Recognized names:
/// "T-Mark", "TensorRrCc", "GI", "HN", "Hcc", "Hcc-ss", "wvRN+RL", "EMR",
/// "ICA", plus three extension baselines from the paper's related work
/// that are not in its comparison tables: "ZooBP" (linearized heterogeneous
/// belief propagation), "RankClass" (ranking-based classification) and
/// "GNetMine" (graph-regularized transduction). Throws CheckError on an
/// unknown name.
///
/// `alpha`, `gamma` and `lambda` configure the T-Mark family (ignored by
/// the baselines); the defaults are the paper's DBLP settings. `lambda` is
/// the ICA acceptance threshold — like alpha it is tuned per dataset
/// (lambda -> 1 disables acceptance, recovering TensorRrCc behaviour).
/// `fit_mode` selects the T-Mark fit engine (both are bit-identical —
/// docs/PERFORMANCE.md); `fp32_panels` opts the batched engine into fp32
/// panel storage (core/tmark.h). Both are ignored by the baselines.
std::unique_ptr<hin::CollectiveClassifier> MakeClassifier(
    const std::string& name, double alpha = 0.8, double gamma = 0.6,
    double lambda = 0.7, core::FitMode fit_mode = core::FitMode::kBatched,
    bool fp32_panels = false);

/// Non-throwing variant for untrusted method names (CLI flags, request
/// parameters): returns nullptr on an unknown name instead of throwing.
std::unique_ptr<hin::CollectiveClassifier> TryMakeClassifier(
    const std::string& name, double alpha = 0.8, double gamma = 0.6,
    double lambda = 0.7, core::FitMode fit_mode = core::FitMode::kBatched,
    bool fp32_panels = false);

/// The paper's method column order (Tables 3, 4, 11).
std::vector<std::string> PaperMethodNames();

}  // namespace tmark::baselines

#endif  // TMARK_BASELINES_REGISTRY_H_
