#include "tmark/baselines/ica.h"

#include "tmark/baselines/relational_features.h"
#include "tmark/common/check.h"

namespace tmark::baselines {
namespace {

/// Extracts the rows of `all` indexed by `rows`.
la::DenseMatrix SelectRows(const la::DenseMatrix& all,
                           const std::vector<std::size_t>& rows) {
  la::DenseMatrix out(rows.size(), all.cols());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::copy(all.RowPtr(rows[r]), all.RowPtr(rows[r]) + all.cols(),
              out.RowPtr(r));
  }
  return out;
}

std::vector<std::size_t> PrimaryLabels(const hin::Hin& hin,
                                       const std::vector<std::size_t>& nodes) {
  std::vector<std::size_t> out(nodes.size());
  for (std::size_t r = 0; r < nodes.size(); ++r) {
    out[r] = hin.PrimaryLabel(nodes[r]);
  }
  return out;
}

}  // namespace

IcaClassifier::IcaClassifier(IcaConfig config) : config_(config) {}

void IcaClassifier::Fit(const hin::Hin& hin,
                        const std::vector<std::size_t>& labeled) {
  TMARK_CHECK(!labeled.empty());
  const std::size_t q = hin.num_classes();
  const la::DenseMatrix content = ContentFeatures(hin);
  const la::SparseMatrix graph = hin.AggregatedRelation();
  const std::vector<std::size_t> y_train = PrimaryLabels(hin, labeled);

  // Bootstrap: content-only classifier.
  ml::LogisticRegression bootstrap(config_.base);
  bootstrap.Fit(SelectRows(content, labeled), y_train, q);
  la::DenseMatrix probs = bootstrap.PredictProba(content);

  // Clamp labeled nodes to their known labels throughout.
  auto clamp = [&](la::DenseMatrix* p) {
    for (std::size_t node : labeled) {
      double* row = p->RowPtr(node);
      std::fill(row, row + q, 0.0);
      row[hin.PrimaryLabel(node)] = 1.0;
    }
  };
  clamp(&probs);

  for (int it = 0; it < config_.iterations; ++it) {
    const la::DenseMatrix rel = NeighborLabelDistribution(graph, probs);
    const la::DenseMatrix x = ConcatColumns({&content, &rel});
    ml::LogisticRegression model(config_.base);
    model.Fit(SelectRows(x, labeled), y_train, q);
    probs = model.PredictProba(x);
    clamp(&probs);
  }
  confidences_ = std::move(probs);
}

const la::DenseMatrix& IcaClassifier::Confidences() const {
  TMARK_CHECK_MSG(confidences_.rows() > 0, "classifier is not fitted");
  return confidences_;
}

}  // namespace tmark::baselines
