#include "tmark/baselines/highway_net.h"

#include "tmark/baselines/relational_features.h"
#include "tmark/common/check.h"

namespace tmark::baselines {

HighwayNetClassifier::HighwayNetClassifier(ml::HighwayMlpConfig config)
    : config_(config) {}

void HighwayNetClassifier::Fit(const hin::Hin& hin,
                               const std::vector<std::size_t>& labeled) {
  TMARK_CHECK(!labeled.empty());
  const la::DenseMatrix content = ContentFeatures(hin);
  la::DenseMatrix train(labeled.size(), content.cols());
  std::vector<std::size_t> y(labeled.size());
  for (std::size_t r = 0; r < labeled.size(); ++r) {
    std::copy(content.RowPtr(labeled[r]),
              content.RowPtr(labeled[r]) + content.cols(), train.RowPtr(r));
    y[r] = hin.PrimaryLabel(labeled[r]);
  }
  ml::HighwayMlp net(config_);
  net.Fit(train, y, hin.num_classes());
  confidences_ = net.PredictProba(content);
}

const la::DenseMatrix& HighwayNetClassifier::Confidences() const {
  TMARK_CHECK_MSG(confidences_.rows() > 0, "classifier is not fitted");
  return confidences_;
}

}  // namespace tmark::baselines
