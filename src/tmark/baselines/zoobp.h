#ifndef TMARK_BASELINES_ZOOBP_H_
#define TMARK_BASELINES_ZOOBP_H_

#include <string>
#include <vector>

#include "tmark/hin/classifier.h"

namespace tmark::baselines {

/// ZooBP hyper-parameters.
struct ZooBpConfig {
  /// Interaction strength epsilon of the linearized propagation matrices.
  /// Convergence requires it small; the effective per-relation strength is
  /// epsilon / num_relations.
  double epsilon = 0.4;
  int iterations = 60;
  /// Homophily assumption per relation: +1 couples same classes (all the
  /// paper's link types are homophilous).
  double homophily = 1.0;
};

/// ZooBP-style linearized belief propagation on HINs (Eswaran et al., VLDB
/// 2017), cited in the paper's related work as the BP approach to
/// heterogeneous graphs. Beliefs are kept as residuals b = p - 1/q; labeled
/// nodes inject a constant prior residual and every relation propagates
/// through its symmetric-normalized adjacency:
///
///   b <- b0 + (epsilon * homophily / m) * sum_k S_k b
///
/// With small epsilon the affine map is a contraction, so the iteration
/// converges to the unique linearized-BP fixed point. Implemented here as
/// an optional extra baseline (not part of the paper's comparison tables).
class ZooBpClassifier : public hin::CollectiveClassifier {
 public:
  explicit ZooBpClassifier(ZooBpConfig config = {});

  void Fit(const hin::Hin& hin,
           const std::vector<std::size_t>& labeled) override;
  const la::DenseMatrix& Confidences() const override;
  std::string Name() const override { return "ZooBP"; }

 private:
  ZooBpConfig config_;
  la::DenseMatrix confidences_;
};

}  // namespace tmark::baselines

#endif  // TMARK_BASELINES_ZOOBP_H_
