#include "tmark/baselines/wvrn_rl.h"

#include <algorithm>
#include <cmath>

#include "tmark/common/check.h"
#include "tmark/hin/feature_similarity.h"

namespace tmark::baselines {
namespace {

/// Mined content links: top-k cosine neighbors per node, weighted by
/// similarity. Self-similarity is excluded.
la::SparseMatrix ContentKnnLinks(const hin::Hin& hin, std::size_t k) {
  const std::size_t n = hin.num_nodes();
  const hin::FeatureSimilarity sim =
      hin::FeatureSimilarity::Build(hin.features());
  std::vector<la::Triplet> trips;
  trips.reserve(n * k);
  for (std::size_t i = 0; i < n; ++i) {
    // Similarity of node i to everyone: column i of C (= row, symmetric).
    la::Vector e(n, 0.0);
    e[i] = 1.0;
    // C e_i = F_hat (F_hat^T e_i); reuse Apply's internals via cosine calls
    // would be O(n log) — instead compute through the public operator by
    // undoing its column normalization: Apply uses W = C D^{-1}; we want C.
    // Simpler and exact: use pairwise Cosine on the node's neighbors in
    // feature space via the two-pass product below.
    // (One sparse pass over F per node keeps the total cost O(n * nnz/n * k).)
    std::vector<std::pair<double, std::size_t>> scored;
    scored.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double c = sim.Cosine(i, j);
      if (c > 0.0) scored.emplace_back(c, j);
    }
    const std::size_t take = std::min(k, scored.size());
    std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                      [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    for (std::size_t t = 0; t < take; ++t) {
      trips.push_back({static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(scored[t].second),
                       scored[t].first});
      trips.push_back({static_cast<std::uint32_t>(scored[t].second),
                       static_cast<std::uint32_t>(i), scored[t].first});
    }
  }
  return la::SparseMatrix::FromTriplets(n, n, std::move(trips));
}

}  // namespace

WvrnRlClassifier::WvrnRlClassifier(WvrnRlConfig config) : config_(config) {}

void WvrnRlClassifier::Fit(const hin::Hin& hin,
                           const std::vector<std::size_t>& labeled) {
  TMARK_CHECK(!labeled.empty());
  const std::size_t n = hin.num_nodes();
  const std::size_t q = hin.num_classes();

  la::SparseMatrix graph = hin.AggregatedRelation();
  if (config_.content_knn > 0) {
    graph = graph.Add(ContentKnnLinks(hin, config_.content_knn));
  }
  const la::Vector wsum = graph.RowSums();

  // Class prior from the labeled set.
  la::Vector prior(q, 0.0);
  for (std::size_t node : labeled) prior[hin.PrimaryLabel(node)] += 1.0;
  la::NormalizeL1(&prior);

  la::DenseMatrix probs(n, q);
  std::vector<bool> is_labeled(n, false);
  for (std::size_t node : labeled) is_labeled[node] = true;
  for (std::size_t i = 0; i < n; ++i) {
    double* row = probs.RowPtr(i);
    if (is_labeled[i]) {
      row[hin.PrimaryLabel(i)] = 1.0;
    } else {
      std::copy(prior.begin(), prior.end(), row);
    }
  }

  double k_t = config_.k0;
  for (int it = 0; it < config_.iterations; ++it) {
    const la::DenseMatrix votes = graph.MatMulDense(probs);
    for (std::size_t i = 0; i < n; ++i) {
      if (is_labeled[i]) continue;
      double* row = probs.RowPtr(i);
      if (wsum[i] > 0.0) {
        const double* vrow = votes.RowPtr(i);
        double sum = 0.0;
        for (std::size_t c = 0; c < q; ++c) sum += vrow[c];
        if (sum > 0.0) {
          for (std::size_t c = 0; c < q; ++c) {
            row[c] = (1.0 - k_t) * row[c] + k_t * vrow[c] / sum;
          }
        }
      }
    }
    k_t *= config_.decay;
  }
  confidences_ = std::move(probs);
}

const la::DenseMatrix& WvrnRlClassifier::Confidences() const {
  TMARK_CHECK_MSG(confidences_.rows() > 0, "classifier is not fitted");
  return confidences_;
}

}  // namespace tmark::baselines
