#ifndef TMARK_BASELINES_RELATIONAL_FEATURES_H_
#define TMARK_BASELINES_RELATIONAL_FEATURES_H_

#include <cstddef>
#include <vector>

#include "tmark/hin/hin.h"
#include "tmark/la/dense_matrix.h"
#include "tmark/la/sparse_matrix.h"

namespace tmark::baselines {

/// Densified, row-L2-normalized content features of the HIN — the standard
/// input representation for the classifier-based baselines.
la::DenseMatrix ContentFeatures(const hin::Hin& hin);

/// Label-distribution aggregation over a link matrix: row i of the result is
/// the (L1-normalized) sum of `label_probs` rows over i's in-neighbors in
/// `graph` (graph convention: row = destination, column = source). Isolated
/// nodes get all-zero rows. This is the relational feature block of the
/// ICA / Hcc family (Sen et al. 2008; Kong et al. 2012).
la::DenseMatrix NeighborLabelDistribution(const la::SparseMatrix& graph,
                                          const la::DenseMatrix& label_probs);

/// Horizontal concatenation of equally-tall blocks.
la::DenseMatrix ConcatColumns(const std::vector<const la::DenseMatrix*>& parts);

/// One-hot matrix of training labels: row = node, one-hot at the primary
/// label for nodes in `labeled`, zeros elsewhere.
la::DenseMatrix LabeledOneHot(const hin::Hin& hin,
                              const std::vector<std::size_t>& labeled);

/// Channel selection shared by baselines that cannot afford one model per
/// relation on HINs with hundreds of link types: returns up to
/// `max_channels` link matrices — the largest relations verbatim, the
/// remainder (if any) pooled into a final aggregate channel.
std::vector<la::SparseMatrix> SelectRelationChannels(const hin::Hin& hin,
                                                     std::size_t max_channels);

}  // namespace tmark::baselines

#endif  // TMARK_BASELINES_RELATIONAL_FEATURES_H_
