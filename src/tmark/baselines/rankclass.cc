#include "tmark/baselines/rankclass.h"

#include "tmark/common/check.h"
#include "tmark/hin/label_vector.h"

namespace tmark::baselines {

RankClassClassifier::RankClassClassifier(RankClassConfig config)
    : config_(config) {
  TMARK_CHECK(config.alpha > 0.0 && config.alpha < 1.0);
  TMARK_CHECK(config.weight_smoothing >= 0.0);
}

void RankClassClassifier::Fit(const hin::Hin& hin,
                              const std::vector<std::size_t>& labeled) {
  TMARK_CHECK(!labeled.empty());
  const std::size_t n = hin.num_nodes();
  const std::size_t m = hin.num_relations();
  const std::size_t q = hin.num_classes();

  // Column-normalized relation matrices (random-walk transitions).
  std::vector<la::SparseMatrix> transitions;
  transitions.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    transitions.push_back(hin.relation(k).NormalizeColumnsSparse(nullptr));
  }

  confidences_ = la::DenseMatrix(n, q);
  relation_weights_ = la::DenseMatrix(m, q);

  for (std::size_t c = 0; c < q; ++c) {
    const la::Vector l = hin::InitialLabelVector(hin, labeled, c);
    la::Vector x = l;
    la::Vector w(m, 1.0 / static_cast<double>(m));
    for (int it = 0; it < config_.iterations; ++it) {
      // Ranking step under the current relation mixture.
      la::Vector next(n, 0.0);
      for (std::size_t k = 0; k < m; ++k) {
        if (w[k] == 0.0) continue;
        la::Axpy(w[k], transitions[k].MatVec(x), &next);
      }
      la::Scale(1.0 - config_.alpha, &next);
      la::Axpy(config_.alpha, l, &next);
      // Walk mass can leak through empty columns; re-project.
      const double total = la::Sum(next);
      if (total > 0.0) la::Scale(1.0 / total, &next);
      x = std::move(next);

      // Reweighting step: relations connecting high-ranked nodes gain.
      double wsum = 0.0;
      for (std::size_t k = 0; k < m; ++k) {
        w[k] = transitions[k].Bilinear(x, x) +
               config_.weight_smoothing / static_cast<double>(m);
        wsum += w[k];
      }
      TMARK_CHECK(wsum > 0.0);
      la::Scale(1.0 / wsum, &w);
    }
    for (std::size_t i = 0; i < n; ++i) confidences_.At(i, c) = x[i];
    for (std::size_t k = 0; k < m; ++k) relation_weights_.At(k, c) = w[k];
  }
}

const la::DenseMatrix& RankClassClassifier::Confidences() const {
  TMARK_CHECK_MSG(confidences_.rows() > 0, "classifier is not fitted");
  return confidences_;
}

const la::DenseMatrix& RankClassClassifier::RelationWeights() const {
  TMARK_CHECK_MSG(relation_weights_.rows() > 0, "classifier is not fitted");
  return relation_weights_;
}

}  // namespace tmark::baselines
