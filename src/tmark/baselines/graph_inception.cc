#include "tmark/baselines/graph_inception.h"

#include "tmark/common/check.h"

namespace tmark::baselines {

GraphInceptionClassifier::GraphInceptionClassifier(
    ml::GraphInceptionNetConfig config)
    : config_(config) {}

void GraphInceptionClassifier::Fit(const hin::Hin& hin,
                                   const std::vector<std::size_t>& labeled) {
  TMARK_CHECK(!labeled.empty());
  std::vector<la::SparseMatrix> adjacencies;
  adjacencies.reserve(hin.num_relations());
  for (std::size_t k = 0; k < hin.num_relations(); ++k) {
    adjacencies.push_back(hin.relation(k));
  }
  std::vector<std::size_t> y(hin.num_nodes(), 0);
  for (std::size_t node = 0; node < hin.num_nodes(); ++node) {
    if (!hin.labels(node).empty()) y[node] = hin.PrimaryLabel(node);
  }
  ml::GraphInceptionNet net(config_);
  net.Fit(hin.features(), adjacencies, y, labeled, hin.num_classes());
  confidences_ = net.Proba();
}

const la::DenseMatrix& GraphInceptionClassifier::Confidences() const {
  TMARK_CHECK_MSG(confidences_.rows() > 0, "classifier is not fitted");
  return confidences_;
}

}  // namespace tmark::baselines
