#include "tmark/baselines/zoobp.h"

#include "tmark/common/check.h"
#include "tmark/ml/graph_conv.h"  // SymmetricNormalize

namespace tmark::baselines {

ZooBpClassifier::ZooBpClassifier(ZooBpConfig config) : config_(config) {
  TMARK_CHECK_MSG(config.epsilon > 0.0 && config.epsilon < 1.0,
                  "epsilon must lie in (0, 1)");
}

void ZooBpClassifier::Fit(const hin::Hin& hin,
                          const std::vector<std::size_t>& labeled) {
  TMARK_CHECK(!labeled.empty());
  const std::size_t n = hin.num_nodes();
  const std::size_t q = hin.num_classes();
  const std::size_t m = hin.num_relations();

  // Symmetric-normalized propagation matrix per relation; spectral radius
  // <= 1, so scaling by epsilon/m keeps the total update a contraction.
  std::vector<la::SparseMatrix> channels;
  channels.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    channels.push_back(ml::SymmetricNormalize(hin.relation(k)));
  }

  // Residual prior beliefs: labeled nodes inject +-(1 - 1/q) centered
  // one-hot residuals; unlabeled start neutral.
  const double center = 1.0 / static_cast<double>(q);
  la::DenseMatrix prior(n, q);
  for (std::size_t node : labeled) {
    double* row = prior.RowPtr(node);
    for (std::size_t c = 0; c < q; ++c) row[c] = -center;
    row[hin.PrimaryLabel(node)] += 1.0;
  }

  const double strength =
      config_.epsilon * config_.homophily / static_cast<double>(m);
  la::DenseMatrix beliefs = prior;
  for (int it = 0; it < config_.iterations; ++it) {
    la::DenseMatrix propagated(n, q);
    for (const la::SparseMatrix& s : channels) {
      propagated.AddInPlace(s.MatMulDense(beliefs));
    }
    propagated.ScaleInPlace(strength);
    propagated.AddInPlace(prior);
    beliefs = std::move(propagated);
  }

  // Convert residuals back to per-node confidence rows (shift + clamp to
  // non-negative, renormalize).
  confidences_ = la::DenseMatrix(n, q);
  for (std::size_t i = 0; i < n; ++i) {
    double* out = confidences_.RowPtr(i);
    const double* b = beliefs.RowPtr(i);
    double sum = 0.0;
    for (std::size_t c = 0; c < q; ++c) {
      out[c] = b[c] + center;
      if (out[c] < 0.0) out[c] = 0.0;
      sum += out[c];
    }
    if (sum > 0.0) {
      for (std::size_t c = 0; c < q; ++c) out[c] /= sum;
    } else {
      for (std::size_t c = 0; c < q; ++c) out[c] = center;
    }
  }
}

const la::DenseMatrix& ZooBpClassifier::Confidences() const {
  TMARK_CHECK_MSG(confidences_.rows() > 0, "classifier is not fitted");
  return confidences_;
}

}  // namespace tmark::baselines
