#include "tmark/baselines/registry.h"

#include "tmark/baselines/emr.h"
#include "tmark/baselines/gnetmine.h"
#include "tmark/baselines/graph_inception.h"
#include "tmark/baselines/hcc.h"
#include "tmark/baselines/highway_net.h"
#include "tmark/baselines/ica.h"
#include "tmark/baselines/rankclass.h"
#include "tmark/baselines/wvrn_rl.h"
#include "tmark/baselines/zoobp.h"
#include "tmark/common/check.h"
#include "tmark/core/tensor_rrcc.h"
#include "tmark/core/tmark.h"

namespace tmark::baselines {

std::unique_ptr<hin::CollectiveClassifier> MakeClassifier(
    const std::string& name, double alpha, double gamma, double lambda,
    core::FitMode fit_mode, bool fp32_panels) {
  std::unique_ptr<hin::CollectiveClassifier> clf =
      TryMakeClassifier(name, alpha, gamma, lambda, fit_mode, fp32_panels);
  TMARK_CHECK_MSG(clf != nullptr, "unknown classifier name: " << name);
  return clf;
}

std::unique_ptr<hin::CollectiveClassifier> TryMakeClassifier(
    const std::string& name, double alpha, double gamma, double lambda,
    core::FitMode fit_mode, bool fp32_panels) {
  if (name == "T-Mark") {
    core::TMarkConfig config;
    config.alpha = alpha;
    config.gamma = gamma;
    config.lambda = lambda;
    config.fit_mode = fit_mode;
    config.fp32_panels = fp32_panels;
    return std::make_unique<core::TMarkClassifier>(config);
  }
  if (name == "TensorRrCc") {
    core::TMarkConfig config;
    config.alpha = alpha;
    config.gamma = gamma;
    config.fit_mode = fit_mode;
    config.fp32_panels = fp32_panels;
    return std::make_unique<core::TensorRrCcClassifier>(config);
  }
  if (name == "GI") return std::make_unique<GraphInceptionClassifier>();
  if (name == "HN") return std::make_unique<HighwayNetClassifier>();
  if (name == "Hcc") return std::make_unique<HccClassifier>();
  if (name == "Hcc-ss") {
    HccConfig config;
    config.semi_supervised = true;
    return std::make_unique<HccClassifier>(config);
  }
  if (name == "wvRN+RL") return std::make_unique<WvrnRlClassifier>();
  if (name == "EMR") return std::make_unique<EmrClassifier>();
  if (name == "ICA") return std::make_unique<IcaClassifier>();
  if (name == "ZooBP") return std::make_unique<ZooBpClassifier>();
  if (name == "RankClass") return std::make_unique<RankClassClassifier>();
  if (name == "GNetMine") return std::make_unique<GNetMineClassifier>();
  return nullptr;
}

std::vector<std::string> PaperMethodNames() {
  return {"T-Mark", "TensorRrCc", "GI",      "HN", "Hcc",
          "Hcc-ss", "wvRN+RL",    "EMR",     "ICA"};
}

}  // namespace tmark::baselines
