#ifndef TMARK_BASELINES_WVRN_RL_H_
#define TMARK_BASELINES_WVRN_RL_H_

#include <string>
#include <vector>

#include "tmark/hin/classifier.h"

namespace tmark::baselines {

/// wvRN+RL hyper-parameters.
struct WvrnRlConfig {
  int iterations = 50;
  /// Simulated-annealing schedule of relaxation labeling: the influence of
  /// the fresh estimate at round t is k0 * decay^t.
  double k0 = 1.0;
  double decay = 0.95;
  /// Content is transformed into structure by connecting each node to its
  /// `content_knn` most cosine-similar peers (Macskassy 2007's "mined
  /// links"), weighted by similarity.
  std::size_t content_knn = 5;
};

/// Weighted-vote relational neighbor classifier with relaxation labeling
/// (Macskassy & Provost 2007; Macskassy 2007). All explicit link types are
/// aggregated, content similarity is converted into additional mined links,
/// and label estimates relax to a fixed point:
///
///   wvRN(i) = sum_j w_ij P(j) / sum_j w_ij
///   P_{t+1}(i) = (1 - k_t) P_t(i) + k_t wvRN_t(i)   (unlabeled i)
///
/// Labeled nodes stay clamped at their known label.
class WvrnRlClassifier : public hin::CollectiveClassifier {
 public:
  explicit WvrnRlClassifier(WvrnRlConfig config = {});

  void Fit(const hin::Hin& hin,
           const std::vector<std::size_t>& labeled) override;
  const la::DenseMatrix& Confidences() const override;
  std::string Name() const override { return "wvRN+RL"; }

 private:
  WvrnRlConfig config_;
  la::DenseMatrix confidences_;
};

}  // namespace tmark::baselines

#endif  // TMARK_BASELINES_WVRN_RL_H_
