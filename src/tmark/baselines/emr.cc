#include "tmark/baselines/emr.h"

#include <algorithm>

#include "tmark/baselines/relational_features.h"
#include "tmark/common/check.h"

namespace tmark::baselines {
namespace {

la::DenseMatrix SelectRows(const la::DenseMatrix& all,
                           const std::vector<std::size_t>& rows) {
  la::DenseMatrix out(rows.size(), all.cols());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::copy(all.RowPtr(rows[r]), all.RowPtr(rows[r]) + all.cols(),
              out.RowPtr(r));
  }
  return out;
}

}  // namespace

EmrClassifier::EmrClassifier(EmrConfig config) : config_(config) {}

void EmrClassifier::Fit(const hin::Hin& hin,
                        const std::vector<std::size_t>& labeled) {
  TMARK_CHECK(!labeled.empty());
  const std::size_t n = hin.num_nodes();
  const std::size_t q = hin.num_classes();
  const la::DenseMatrix content = ContentFeatures(hin);
  const std::vector<la::SparseMatrix> members =
      SelectRelationChannels(hin, config_.max_members);

  std::vector<std::size_t> y_train;
  y_train.reserve(labeled.size());
  for (std::size_t node : labeled) y_train.push_back(hin.PrimaryLabel(node));

  auto clamp = [&](la::DenseMatrix* p) {
    for (std::size_t node : labeled) {
      double* row = p->RowPtr(node);
      std::fill(row, row + q, 0.0);
      row[hin.PrimaryLabel(node)] = 1.0;
    }
  };

  la::DenseMatrix vote_sum(n, q);
  for (const la::SparseMatrix& link : members) {
    // Per-member ICA with an SVM base on [content | member's neighbor block].
    ml::LinearSvm bootstrap(config_.base);
    bootstrap.Fit(SelectRows(content, labeled), y_train, q);
    la::DenseMatrix probs = bootstrap.PredictProba(content);
    clamp(&probs);
    for (int it = 0; it < config_.member_iterations; ++it) {
      const la::DenseMatrix rel = NeighborLabelDistribution(link, probs);
      const la::DenseMatrix x = ConcatColumns({&content, &rel});
      ml::LinearSvm model(config_.base);
      model.Fit(SelectRows(x, labeled), y_train, q);
      probs = model.PredictProba(x);
      clamp(&probs);
    }
    vote_sum.AddInPlace(probs);
  }
  vote_sum.ScaleInPlace(1.0 / static_cast<double>(members.size()));
  confidences_ = std::move(vote_sum);
}

const la::DenseMatrix& EmrClassifier::Confidences() const {
  TMARK_CHECK_MSG(confidences_.rows() > 0, "classifier is not fitted");
  return confidences_;
}

}  // namespace tmark::baselines
