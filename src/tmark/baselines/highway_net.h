#ifndef TMARK_BASELINES_HIGHWAY_NET_H_
#define TMARK_BASELINES_HIGHWAY_NET_H_

#include <string>
#include <vector>

#include "tmark/hin/classifier.h"
#include "tmark/ml/mlp.h"

namespace tmark::baselines {

/// Highway Network baseline (Srivastava et al. 2015): a content-only deep
/// classifier over the node features — it ignores the link structure
/// entirely, which is why it trails the collective methods on link-rich
/// HINs while staying competitive where features dominate (Movies).
class HighwayNetClassifier : public hin::CollectiveClassifier {
 public:
  explicit HighwayNetClassifier(ml::HighwayMlpConfig config = {});

  void Fit(const hin::Hin& hin,
           const std::vector<std::size_t>& labeled) override;
  const la::DenseMatrix& Confidences() const override;
  std::string Name() const override { return "HN"; }

 private:
  ml::HighwayMlpConfig config_;
  la::DenseMatrix confidences_;
};

}  // namespace tmark::baselines

#endif  // TMARK_BASELINES_HIGHWAY_NET_H_
