#include "tmark/baselines/hcc.h"

#include <algorithm>

#include "tmark/baselines/relational_features.h"
#include "tmark/common/check.h"
#include "tmark/hin/meta_path.h"

namespace tmark::baselines {
namespace {

la::DenseMatrix SelectRows(const la::DenseMatrix& all,
                           const std::vector<std::size_t>& rows) {
  la::DenseMatrix out(rows.size(), all.cols());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::copy(all.RowPtr(rows[r]), all.RowPtr(rows[r]) + all.cols(),
              out.RowPtr(r));
  }
  return out;
}

}  // namespace

HccClassifier::HccClassifier(HccConfig config) : config_(config) {}

void HccClassifier::Fit(const hin::Hin& hin,
                        const std::vector<std::size_t>& labeled) {
  TMARK_CHECK(!labeled.empty());
  const std::size_t q = hin.num_classes();
  const la::DenseMatrix content = ContentFeatures(hin);

  // Channels: per-relation links plus (optionally) composed meta-paths.
  std::vector<la::SparseMatrix> channels =
      SelectRelationChannels(hin, config_.max_channels);
  if (config_.use_meta_paths) {
    const std::vector<la::SparseMatrix> metas = hin::AllLength2MetaPaths(
        hin, /*min_links=*/hin.num_nodes(), config_.max_meta_paths);
    for (const la::SparseMatrix& mp : metas) {
      channels.push_back(hin::BinarizeLinks(mp));
    }
  }

  // Bootstrap with content only.
  std::vector<std::size_t> train_nodes = labeled;
  std::vector<std::size_t> train_labels;
  train_labels.reserve(labeled.size());
  for (std::size_t node : labeled) {
    train_labels.push_back(hin.PrimaryLabel(node));
  }
  ml::LogisticRegression bootstrap(config_.base);
  bootstrap.Fit(SelectRows(content, train_nodes), train_labels, q);
  la::DenseMatrix probs = bootstrap.PredictProba(content);

  auto clamp = [&](la::DenseMatrix* p) {
    for (std::size_t node : labeled) {
      double* row = p->RowPtr(node);
      std::fill(row, row + q, 0.0);
      row[hin.PrimaryLabel(node)] = 1.0;
    }
  };
  clamp(&probs);

  std::vector<bool> is_labeled(hin.num_nodes(), false);
  for (std::size_t node : labeled) is_labeled[node] = true;

  for (int it = 0; it < config_.iterations; ++it) {
    // Per-channel relational blocks.
    std::vector<la::DenseMatrix> blocks;
    blocks.reserve(channels.size());
    std::vector<const la::DenseMatrix*> parts{&content};
    for (const la::SparseMatrix& ch : channels) {
      blocks.push_back(NeighborLabelDistribution(ch, probs));
    }
    for (const la::DenseMatrix& b : blocks) parts.push_back(&b);
    const la::DenseMatrix x = ConcatColumns(parts);

    // Semi-supervised augmentation: adopt confident predictions.
    train_nodes = labeled;
    train_labels.clear();
    for (std::size_t node : labeled) {
      train_labels.push_back(hin.PrimaryLabel(node));
    }
    if (config_.semi_supervised && it > 0) {
      double top = 0.0;
      for (std::size_t node = 0; node < hin.num_nodes(); ++node) {
        if (is_labeled[node]) continue;
        const la::Vector row = probs.Row(node);
        top = std::max(top, row[la::ArgMax(row)]);
      }
      const double cutoff = config_.confidence_threshold * top;
      if (cutoff > 0.0) {
        for (std::size_t node = 0; node < hin.num_nodes(); ++node) {
          if (is_labeled[node]) continue;
          const la::Vector row = probs.Row(node);
          const std::size_t best = la::ArgMax(row);
          if (row[best] >= cutoff) {
            train_nodes.push_back(node);
            train_labels.push_back(best);
          }
        }
      }
    }

    ml::LogisticRegression model(config_.base);
    model.Fit(SelectRows(x, train_nodes), train_labels, q);
    probs = model.PredictProba(x);
    clamp(&probs);
  }
  confidences_ = std::move(probs);
}

const la::DenseMatrix& HccClassifier::Confidences() const {
  TMARK_CHECK_MSG(confidences_.rows() > 0, "classifier is not fitted");
  return confidences_;
}

}  // namespace tmark::baselines
