#ifndef TMARK_BASELINES_ICA_H_
#define TMARK_BASELINES_ICA_H_

#include <string>
#include <vector>

#include "tmark/hin/classifier.h"
#include "tmark/ml/logistic_regression.h"

namespace tmark::baselines {

/// ICA hyper-parameters.
struct IcaConfig {
  int iterations = 8;  ///< Collective-inference rounds after bootstrap.
  ml::LogisticRegressionConfig base;
};

/// Iterative Classification Algorithm (Sen et al. 2008), the classic
/// collective-classification baseline. Following the paper's protocol, all
/// link types are aggregated into a single graph. Each node is represented
/// by [content features | aggregated neighbor-label distribution]; a softmax
/// base classifier is bootstrapped on content only, then inference and
/// relational-feature refresh alternate for a fixed number of rounds.
class IcaClassifier : public hin::CollectiveClassifier {
 public:
  explicit IcaClassifier(IcaConfig config = {});

  void Fit(const hin::Hin& hin,
           const std::vector<std::size_t>& labeled) override;
  const la::DenseMatrix& Confidences() const override;
  std::string Name() const override { return "ICA"; }

 private:
  IcaConfig config_;
  la::DenseMatrix confidences_;
};

}  // namespace tmark::baselines

#endif  // TMARK_BASELINES_ICA_H_
