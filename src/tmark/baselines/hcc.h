#ifndef TMARK_BASELINES_HCC_H_
#define TMARK_BASELINES_HCC_H_

#include <string>
#include <vector>

#include "tmark/hin/classifier.h"
#include "tmark/ml/logistic_regression.h"

namespace tmark::baselines {

/// Hcc hyper-parameters.
struct HccConfig {
  int iterations = 8;
  /// Cap on per-relation feature channels (large-m HINs pool the tail).
  std::size_t max_channels = 12;
  /// Adds length-2 meta-path channels (Kong et al.'s meta path-based
  /// dependencies), bounded by `max_meta_paths`.
  bool use_meta_paths = true;
  std::size_t max_meta_paths = 6;
  /// Semi-supervised variant (Hcc-ss): between rounds, unlabeled nodes whose
  /// top confidence reaches `confidence_threshold` times the most confident
  /// unlabeled prediction join the training set with their predicted label
  /// (the semiICA mechanism of McDowell & Aha 2012). The relative rule keeps
  /// the augmentation meaningful regardless of the base model's calibration.
  bool semi_supervised = false;
  double confidence_threshold = 0.97;
  ml::LogisticRegressionConfig base;
};

/// Meta path-based collective classification in HINs (Kong et al., CIKM
/// 2012). Unlike ICA it keeps one relational feature block *per link type*
/// (and per selected meta-path), so the base classifier can weigh link types
/// — through learned weights, which is exactly the overfitting-prone
/// strategy the paper contrasts with T-Mark's probabilistic ranking.
class HccClassifier : public hin::CollectiveClassifier {
 public:
  explicit HccClassifier(HccConfig config = {});

  void Fit(const hin::Hin& hin,
           const std::vector<std::size_t>& labeled) override;
  const la::DenseMatrix& Confidences() const override;
  std::string Name() const override {
    return config_.semi_supervised ? "Hcc-ss" : "Hcc";
  }

 private:
  HccConfig config_;
  la::DenseMatrix confidences_;
};

}  // namespace tmark::baselines

#endif  // TMARK_BASELINES_HCC_H_
