#ifndef TMARK_BASELINES_EMR_H_
#define TMARK_BASELINES_EMR_H_

#include <string>
#include <vector>

#include "tmark/hin/classifier.h"
#include "tmark/ml/linear_svm.h"

namespace tmark::baselines {

/// EMR hyper-parameters.
struct EmrConfig {
  /// Collective-inference rounds inside each per-relation member.
  int member_iterations = 2;
  /// Cap on ensemble members; HINs with more relations pool the tail into
  /// one member (same channel rule as the other baselines).
  std::size_t max_members = 8;
  ml::LinearSvmConfig base;
};

/// Ensemble of relational classifiers (Preisach & Schmidt-Thieme 2008): one
/// ICA-style classifier per link type, each with a linear SVM base, voting
/// by averaged probability. The ensemble combines link types while ignoring
/// their relative importance — which is why it shines when individual link
/// types are too sparse to rank (the Movies result, Table 4) and lags when
/// link relevance matters (DBLP/ACM).
class EmrClassifier : public hin::CollectiveClassifier {
 public:
  explicit EmrClassifier(EmrConfig config = {});

  void Fit(const hin::Hin& hin,
           const std::vector<std::size_t>& labeled) override;
  const la::DenseMatrix& Confidences() const override;
  std::string Name() const override { return "EMR"; }

 private:
  EmrConfig config_;
  la::DenseMatrix confidences_;
};

}  // namespace tmark::baselines

#endif  // TMARK_BASELINES_EMR_H_
