#ifndef TMARK_BASELINES_RANKCLASS_H_
#define TMARK_BASELINES_RANKCLASS_H_

#include <string>
#include <vector>

#include "tmark/hin/classifier.h"

namespace tmark::baselines {

/// RankClass hyper-parameters.
struct RankClassConfig {
  double alpha = 0.85;     ///< Restart weight toward the class's labeled set.
  int iterations = 30;     ///< Outer rank/weight alternations.
  double weight_smoothing = 0.2;  ///< Uniform smoothing of relation weights.
};

/// RankClass (Ji, Han & Danilevsky, KDD 2011): ranking-based classification
/// of HINs, discussed in the paper's related work. Per class c it
/// alternates
///
///   x_c <- (1 - alpha) * sum_k w_{k,c} S_k x_c + alpha * l_c   (ranking)
///   w_{k,c} ∝ x_c^T S_k x_c + smoothing                        (reweighting)
///
/// where S_k is the column-normalized adjacency of relation k: nodes that
/// rank high inside a class pull up the relations that connect them, and
/// those relations in turn concentrate the ranking. Unlike T-Mark it uses
/// neither node features nor the tensor coupling of ranking and relevance —
/// exactly the contrast the paper draws ("assumed the important node within
/// each class played more important roles for classification").
class RankClassClassifier : public hin::CollectiveClassifier {
 public:
  explicit RankClassClassifier(RankClassConfig config = {});

  void Fit(const hin::Hin& hin,
           const std::vector<std::size_t>& labeled) override;
  const la::DenseMatrix& Confidences() const override;
  std::string Name() const override { return "RankClass"; }

  /// Per-class relation weights after fitting (m x q, columns sum to one).
  const la::DenseMatrix& RelationWeights() const;

 private:
  RankClassConfig config_;
  la::DenseMatrix confidences_;
  la::DenseMatrix relation_weights_;
};

}  // namespace tmark::baselines

#endif  // TMARK_BASELINES_RANKCLASS_H_
