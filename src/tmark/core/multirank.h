#ifndef TMARK_CORE_MULTIRANK_H_
#define TMARK_CORE_MULTIRANK_H_

#include <cstddef>
#include <vector>

#include "tmark/la/vector_ops.h"
#include "tmark/tensor/sparse_tensor3.h"
#include "tmark/tensor/transition_tensors.h"

namespace tmark::core {

/// Configuration for the MultiRank fixed-point iteration.
struct MultiRankConfig {
  double epsilon = 1e-10;   ///< L1 convergence tolerance on (x, z) jointly.
  int max_iterations = 500;
};

/// Result of a MultiRank run: the stationary co-ranking of nodes and
/// relations plus the residual trace.
struct MultiRankResult {
  la::Vector node_scores;       ///< Stationary x (length n, sums to 1).
  la::Vector relation_scores;   ///< Stationary z (length m, sums to 1).
  std::vector<double> residuals;  ///< rho_t per iteration.
  bool converged = false;
};

/// MultiRank (Ng, Li & Ye, KDD 2011): the *unsupervised* co-ranking scheme
/// T-Mark builds on. Solves the coupled stationary equations
///
///   x = O x1_bar x x3_bar z,     z = R x1_bar x x2_bar x
///
/// by fixed-point iteration from the uniform pair. T-Mark extends this with
/// feature similarities, label restart and the ICA update; MultiRank itself
/// is exposed both as a substrate test-bed and as a link-ranking utility.
MultiRankResult MultiRank(const tensor::TransitionTensors& tensors,
                          const MultiRankConfig& config = {});

/// Convenience overload building the transition tensors from adjacency.
MultiRankResult MultiRank(const tensor::SparseTensor3& adjacency,
                          const MultiRankConfig& config = {});

}  // namespace tmark::core

#endif  // TMARK_CORE_MULTIRANK_H_
