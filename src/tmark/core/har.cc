#include "tmark/core/har.h"

#include "tmark/common/check.h"
#include "tmark/tensor/transition_tensors.h"

namespace tmark::core {
namespace {

/// Per-slice transpose: entry (i, j, k) -> (j, i, k). The destination-
/// normalized tensor of the transpose is exactly the source-normalized
/// tensor H of the original.
tensor::SparseTensor3 TransposeSlices(const tensor::SparseTensor3& a) {
  std::vector<la::SparseMatrix> slices;
  slices.reserve(a.num_relations());
  for (std::size_t k = 0; k < a.num_relations(); ++k) {
    slices.push_back(a.Slice(k).Transpose());
  }
  return tensor::SparseTensor3::FromSlices(std::move(slices));
}

}  // namespace

HarResult HarRank(const tensor::SparseTensor3& adjacency,
                  const HarConfig& config) {
  const std::size_t n = adjacency.num_nodes();
  const std::size_t m = adjacency.num_relations();
  TMARK_CHECK(n > 0 && m > 0);
  TMARK_CHECK(config.alpha >= 0.0 && config.alpha < 1.0);
  TMARK_CHECK(config.beta >= 0.0 && config.beta < 1.0);
  TMARK_CHECK(config.gamma >= 0.0 && config.gamma < 1.0);

  const tensor::TransitionTensors fwd =
      tensor::TransitionTensors::Build(adjacency);
  const tensor::TransitionTensors bwd =
      tensor::TransitionTensors::Build(TransposeSlices(adjacency));

  const la::Vector x0 = la::UniformProbability(n);
  const la::Vector y0 = la::UniformProbability(n);
  const la::Vector z0 = la::UniformProbability(m);

  HarResult result;
  la::Vector x = x0, y = y0, z = z0;
  for (int t = 0; t < config.max_iterations; ++t) {
    // Authority from hubs, hubs from authorities, relevance from both.
    la::Vector x_next = fwd.ApplyO(y, z);
    la::Scale(1.0 - config.alpha, &x_next);
    la::Axpy(config.alpha, x0, &x_next);

    la::Vector y_next = bwd.ApplyO(x_next, z);
    la::Scale(1.0 - config.beta, &y_next);
    la::Axpy(config.beta, y0, &y_next);

    la::Vector z_next = fwd.ApplyR(x_next, y_next);
    la::Scale(1.0 - config.gamma, &z_next);
    la::Axpy(config.gamma, z0, &z_next);

    la::NormalizeL1(&x_next);
    la::NormalizeL1(&y_next);
    la::NormalizeL1(&z_next);

    const double rho = la::L1Distance(x_next, x) +
                       la::L1Distance(y_next, y) +
                       la::L1Distance(z_next, z);
    result.residuals.push_back(rho);
    x = std::move(x_next);
    y = std::move(y_next);
    z = std::move(z_next);
    if (rho < config.epsilon) {
      result.converged = true;
      break;
    }
  }
  result.authority = std::move(x);
  result.hub = std::move(y);
  result.relevance = std::move(z);
  return result;
}

}  // namespace tmark::core
