#include "tmark/core/multirank.h"

#include "tmark/common/check.h"

namespace tmark::core {

MultiRankResult MultiRank(const tensor::TransitionTensors& tensors,
                          const MultiRankConfig& config) {
  const std::size_t n = tensors.num_nodes();
  const std::size_t m = tensors.num_relations();
  TMARK_CHECK(n > 0 && m > 0);
  MultiRankResult result;
  la::Vector x = la::UniformProbability(n);
  la::Vector z = la::UniformProbability(m);
  for (int t = 0; t < config.max_iterations; ++t) {
    la::Vector x_next = tensors.ApplyO(x, z);
    la::Vector z_next = tensors.ApplyR(x_next, x_next);
    // Re-project onto the simplex: the updates preserve the sums exactly in
    // real arithmetic, but the z = (sum x)^2 coupling amplifies rounding
    // error cubically per iteration if left uncorrected.
    la::NormalizeL1(&x_next);
    la::NormalizeL1(&z_next);
    const double rho =
        la::L1Distance(x_next, x) + la::L1Distance(z_next, z);
    result.residuals.push_back(rho);
    x = std::move(x_next);
    z = std::move(z_next);
    if (rho < config.epsilon) {
      result.converged = true;
      break;
    }
  }
  result.node_scores = std::move(x);
  result.relation_scores = std::move(z);
  return result;
}

MultiRankResult MultiRank(const tensor::SparseTensor3& adjacency,
                          const MultiRankConfig& config) {
  return MultiRank(tensor::TransitionTensors::Build(adjacency), config);
}

}  // namespace tmark::core
