#ifndef TMARK_CORE_TMARK_H_
#define TMARK_CORE_TMARK_H_

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tmark/common/status.h"
#include "tmark/core/prepared_operators.h"
#include "tmark/hin/classifier.h"
#include "tmark/hin/feature_similarity.h"
#include "tmark/hin/similarity_kernel.h"
#include "tmark/hin/hin.h"
#include "tmark/la/dense_matrix.h"
#include "tmark/la/vector_ops.h"
#include "tmark/tensor/transition_tensors.h"

namespace tmark::obs {
class TraceSpan;
}  // namespace tmark::obs

namespace tmark::core {

/// Fit-engine selection (docs/PERFORMANCE.md). Both engines compute
/// bit-identical confidences, link importance, and residual traces; they
/// differ only in how the per-class chains are scheduled.
enum class FitMode {
  /// One independent (x, z) chain per class, parallelized over classes —
  /// the original engine; parallel speedup is capped at q.
  kPerClass,
  /// All q chains advance together on row-major n x q panels: each sparse
  /// structure (O, R, linked mask, F_hat) is streamed once per iteration
  /// for every class, and converged classes retire their columns early.
  kBatched,
};

/// "per_class" or "batched".
const char* ToString(FitMode mode);

/// Parses "per_class" / "batched" into `mode`; returns false otherwise.
bool TryParseFitMode(std::string_view text, FitMode* mode);

/// Hyper-parameters of Algorithm 1.
struct TMarkConfig {
  /// Restart weight alpha in (0, 1): probability of returning to the label
  /// distribution each step. Paper default 0.8 on DBLP, 0.9 elsewhere.
  double alpha = 0.8;
  /// Scale gamma in [0, 1] between relational and feature information;
  /// beta = gamma * (1 - alpha) is the weight of the feature walk W x.
  /// gamma = 0 uses only links, gamma = 1 only features.
  double gamma = 0.6;
  /// Relative confidence threshold lambda of the ICA update (Eq. 12): a node
  /// is accepted into the restart set when x_i > lambda * max(x).
  double lambda = 0.7;
  /// Convergence tolerance on rho_t = |x_t - x_{t-1}|_1 + |z_t - z_{t-1}|_1.
  double epsilon = 1e-8;
  int max_iterations = 100;
  /// Node-similarity kernel behind the feature walk W (Sec. 4.2). The
  /// paper uses cosine; the alternatives are ablated in
  /// bench_ablation_tmark.
  hin::SimilarityKernel similarity = hin::SimilarityKernel::kCosine;
  /// Enables the ICA label update between iterations. Disabling it recovers
  /// the ICDM'17 predecessor method (TensorRrCc), used as a baseline in
  /// every table of the paper.
  bool ica_update = true;
  /// Fit engine. Both produce bit-identical results; `kBatched` streams
  /// each sparse operator once per iteration for all classes and is the
  /// default. Engine choice, not model state — never serialized.
  FitMode fit_mode = FitMode::kBatched;
  /// Opt-in fp32 panel storage for the batched tensor product: the x panel
  /// is mirrored to float each iteration and the gather kernels read the
  /// mirror, halving the random-read traffic of the dominant kernel while
  /// accumulating in fp64. Trades the bit-identity guarantee for bandwidth —
  /// results differ from the fp64 path by at most the documented error
  /// bound (docs/PERFORMANCE.md "Scaling"; pinned by
  /// tests/parallel/fp32_fit_test.cc). Ignored by the per-class engine.
  /// Engine choice, not model state — never serialized.
  bool fp32_panels = false;

  /// The feature-walk weight beta = gamma * (1 - alpha) (Sec. 4.4).
  double beta() const { return gamma * (1.0 - alpha); }
};

/// Per-class convergence trace (residual rho per iteration — Fig. 10).
struct ConvergenceTrace {
  std::size_t class_index = 0;
  std::vector<double> residuals;
  bool converged = false;
};

/// Geometric-mean estimate of the contraction rate rho_{t+1}/rho_t over the
/// tail of `residuals` (up to the last 8 consecutive positive ratios). The
/// contraction-mapping theorems (Theorems 1-3) guarantee this rate is below
/// 1 for valid alpha/beta, which is what makes the prediction below sound.
/// Returns 0 when fewer than two positive residuals exist.
double EstimateContractionRate(const std::vector<double>& residuals);

/// Predicted number of further iterations until the residual drops below
/// `epsilon`, extrapolating geometrically from the last residual at `rate`:
/// ceil(log(epsilon / rho_last) / log(rate)). Returns 0 when the trace
/// already ends below tolerance, and -1 when no finite prediction exists
/// (rate outside (0, 1) or no positive residual).
double PredictIterationsToTolerance(const std::vector<double>& residuals,
                                    double rate, double epsilon);

/// The T-Mark collective classifier (Algorithm 1).
///
/// For each class c the fixed-point iteration
///
///   x_t = (1 - alpha - beta) * (O x1 x_{t-1} x3 z_{t-1})
///         + beta * W x_{t-1} + alpha * l_c                       (Eq. 10)
///   z_t = R x1 x_t x2 x_t                                        (Eq. 8)
///
/// is run to stationarity, with the restart vector l_c refreshed by the ICA
/// rule (Eq. 12) from iteration 3 onward. The stationary x vectors, stacked
/// over classes, are the classification confidences; the stationary z
/// vectors are the per-class relative importance of the link types.
class TMarkClassifier : public hin::CollectiveClassifier {
 public:
  explicit TMarkClassifier(TMarkConfig config = {});

  void Fit(const hin::Hin& hin,
           const std::vector<std::size_t>& labeled) override;

  /// Fit against operators the caller prepared (and possibly shares across
  /// classifiers); skips both the fingerprint check and any rebuild. `ops`
  /// must have been built from `hin` with this classifier's similarity
  /// kernel — shapes and kernel are checked, contents are trusted.
  void Fit(const hin::Hin& hin, const PreparedOperators& ops,
           const std::vector<std::size_t>& labeled);

  /// Pins shared prepared operators (e.g. from an OperatorCache) for
  /// subsequent Fit/Refit calls: they are used whenever their fingerprint
  /// still matches the HIN being fitted, and dropped otherwise.
  void SetPreparedOperators(std::shared_ptr<const PreparedOperators> ops);

  /// The operators the last Fit used (also populated by the internal
  /// fingerprint cache); null before the first fit.
  const std::shared_ptr<const PreparedOperators>& prepared_operators() const {
    return prepared_;
  }

  /// Incremental mode: re-runs Algorithm 1 initialized from the previous
  /// stationary distributions instead of the label vectors. After modest
  /// changes to the HIN (new edges, extra labels) the chain starts near its
  /// fixed point and converges in a fraction of the cold-start iterations
  /// while reaching the same unique solution (Theorem 3). Falls back to a
  /// cold Fit when no compatible previous state exists.
  void Refit(const hin::Hin& hin, const std::vector<std::size_t>& labeled);

  /// Incremental update, the fast path of docs/PERFORMANCE.md "Incremental
  /// updates": validates and applies `delta` to `hin` (Hin::ApplyDelta),
  /// patches the cached prepared operators in place instead of rebuilding
  /// them (copy-on-write when the bundle is shared with other holders), and
  /// re-runs the fixed point warm-started from the previous stationary
  /// panels. Warm starts put each class's chain at distance ~||delta|| from
  /// its fixed point, so the batched engine's per-class residual check
  /// retires columns the delta did not perturb after their first iteration.
  /// Label-only deltas skip the operator patch entirely — labels do not
  /// enter O/R/W, so a single post-mutation fingerprint both validates the
  /// held bundle and keeps it honest — which is why label waves see the
  /// largest end-to-end speedups (bench_perf_updates).
  /// Label-only deltas additionally compute *retirement hints*: a class
  /// whose restart vector provably cannot have moved (no label it reads
  /// changed, and any node joining the training set was neither the
  /// ICA-confidence maximum nor above the acceptance cutoff at the previous
  /// stationary point) keeps its previous stationary column outright and
  /// never enters the iteration loop ("update.hinted_classes").
  /// On a validation error the network, operators, and model state are all
  /// unchanged. The end-to-end path is timed as "update.total_ms"; the
  /// operator patch records "update.{edges,rows_touched,reshards}".
  Status Update(hin::Hin* hin, const hin::HinDelta& delta,
                const std::vector<std::size_t>& labeled);

  /// n x q stationary node probabilities; column c is x-bar for class c.
  const la::DenseMatrix& Confidences() const override;

  std::string Name() const override { return "T-Mark"; }

  /// m x q stationary relation probabilities; column c is z-bar for class c.
  const la::DenseMatrix& LinkImportance() const;

  /// Relation indices sorted by decreasing importance for class c.
  std::vector<std::size_t> RankRelationsForClass(std::size_t c) const;

  /// Per-class residual traces of the last Fit (Fig. 10 data).
  const std::vector<ConvergenceTrace>& Traces() const { return traces_; }

  const TMarkConfig& config() const { return config_; }

 protected:
  TMarkConfig config_;

 private:
  // Model deserialization restores the stationary matrices directly.
  friend Result<TMarkClassifier> LoadTMarkModel(std::istream& in);

  /// Shared implementation of Fit/Refit; `warm_start` seeds each class's
  /// iteration from the previous stationary vectors when available.
  /// `external_ops` (optional) bypasses the internal operator cache.
  /// Resolves operators, then dispatches on config_.fit_mode.
  void FitInternal(const hin::Hin& hin,
                   const std::vector<std::size_t>& labeled, bool warm_start,
                   const PreparedOperators* external_ops);

  /// Per-class engine: q independent chains, parallelized over classes.
  /// Worker-side spans are stitched back under `fit_span` in class order.
  /// `retired` (empty, or one flag per class) marks classes FitInternal
  /// already settled from retirement hints; their chains are skipped.
  void FitPerClass(const hin::Hin& hin,
                   const std::vector<std::size_t>& labeled, bool warm_start,
                   const PreparedOperators& ops, const la::DenseMatrix& prev_x,
                   const la::DenseMatrix& prev_z,
                   const std::vector<bool>& retired, obs::TraceSpan* fit_span);

  /// Batched engine: all chains advance on n x q panels with one structure
  /// pass per iteration; bit-identical to FitPerClass column for column.
  /// Hinted classes (`retired`) never occupy a panel slot.
  void FitBatched(const hin::Hin& hin,
                  const std::vector<std::size_t>& labeled, bool warm_start,
                  const PreparedOperators& ops, const la::DenseMatrix& prev_x,
                  const la::DenseMatrix& prev_z,
                  const std::vector<bool>& retired);

  /// Delta-aware retirement hints (Update, label-only deltas): fills
  /// retire_hints_ with one flag per class, true when the class's previous
  /// stationary solution is provably still stationary after `delta`.
  /// Conservative — any doubt (unconverged previous trace, shrunk training
  /// set, a joined node near the ICA cutoff) clears the flag or abandons
  /// the hints entirely.
  void ComputeRetireHints(const hin::Hin& hin, const hin::HinDelta& delta,
                          const std::vector<std::size_t>& labeled);

  la::DenseMatrix confidences_;      ///< n x q.
  la::DenseMatrix link_importance_;  ///< m x q.
  std::vector<ConvergenceTrace> traces_;
  /// Fingerprint-checked operator cache: reused by FitInternal while the
  /// HIN content is unchanged, rebuilt (and replaced) when it is not.
  std::shared_ptr<const PreparedOperators> prepared_;
  /// One-shot retirement hints for the next FitInternal (set by Update,
  /// consumed — and cleared — by the next fit). Empty means no hints.
  std::vector<bool> retire_hints_;
  /// The training set of the last fit, sorted; the hints above are only
  /// valid against a training set that grew from this one.
  std::vector<std::size_t> last_labeled_;
};

}  // namespace tmark::core

#endif  // TMARK_CORE_TMARK_H_
