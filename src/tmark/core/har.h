#ifndef TMARK_CORE_HAR_H_
#define TMARK_CORE_HAR_H_

#include <vector>

#include "tmark/la/vector_ops.h"
#include "tmark/tensor/sparse_tensor3.h"

namespace tmark::core {

/// Configuration of the HAR fixed-point iteration. The restart weights damp
/// each of the three coupled equations toward its prior distribution.
struct HarConfig {
  double alpha = 0.15;  ///< Authority restart weight.
  double beta = 0.15;   ///< Hub restart weight.
  double gamma = 0.15;  ///< Relevance restart weight.
  double epsilon = 1e-10;
  int max_iterations = 500;
};

/// Result of a HAR run.
struct HarResult {
  la::Vector authority;   ///< x: how strongly nodes are pointed to.
  la::Vector hub;         ///< y: how strongly nodes point to authorities.
  la::Vector relevance;   ///< z: how much each relation carries the above.
  std::vector<double> residuals;
  bool converged = false;
};

/// HAR — hub, authority and relevance scores in multi-relational data
/// (Li, Ng & Ye, SDM 2012), the directed sibling of MultiRank that the
/// paper's Sec. 2.2 builds its lineage on. Solves the coupled equations
///
///   x = (1 - alpha) * (O  x2 y x3 z) + alpha  * x0     (authority)
///   y = (1 - beta)  * (H  x1 x x3 z) + beta   * y0     (hub)
///   z = (1 - gamma) * (R  x1 x x2 y) + gamma  * z0     (relevance)
///
/// where O normalizes A over destinations, H over sources and R over
/// relations; all priors are uniform. With positive restart weights the
/// iteration contracts to a unique positive solution.
HarResult HarRank(const tensor::SparseTensor3& adjacency,
                  const HarConfig& config = {});

}  // namespace tmark::core

#endif  // TMARK_CORE_HAR_H_
