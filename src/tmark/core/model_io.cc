#include "tmark/core/model_io.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "tmark/common/check.h"
#include "tmark/common/string_util.h"

namespace tmark::core {
namespace {

constexpr char kHeader[] = "# tmark-model v1";

}  // namespace

void SaveTMarkModel(const TMarkClassifier& classifier, std::ostream& out) {
  const la::DenseMatrix& conf = classifier.Confidences();  // checks fitted
  const la::DenseMatrix& link = classifier.LinkImportance();
  const TMarkConfig& config = classifier.config();
  out << kHeader << "\n";
  out << std::setprecision(17);
  out << "alpha " << config.alpha << "\n";
  out << "gamma " << config.gamma << "\n";
  out << "lambda " << config.lambda << "\n";
  out << "ica " << (config.ica_update ? 1 : 0) << "\n";
  out << "kernel " << hin::ToString(config.similarity) << "\n";
  out << "shape " << conf.rows() << " " << link.rows() << " " << conf.cols()
      << "\n";
  for (std::size_t i = 0; i < conf.rows(); ++i) {
    out << "conf " << i;
    for (std::size_t c = 0; c < conf.cols(); ++c) {
      out << " " << conf.At(i, c);
    }
    out << "\n";
  }
  for (std::size_t k = 0; k < link.rows(); ++k) {
    out << "link " << k;
    for (std::size_t c = 0; c < link.cols(); ++c) {
      out << " " << link.At(k, c);
    }
    out << "\n";
  }
}

bool SaveTMarkModelToFile(const TMarkClassifier& classifier,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  SaveTMarkModel(classifier, out);
  return static_cast<bool>(out);
}

TMarkClassifier LoadTMarkModel(std::istream& in) {
  std::string line;
  TMARK_CHECK_MSG(std::getline(in, line) && Strip(line) == kHeader,
                  "missing tmark-model header");
  TMarkConfig config;
  std::size_t n = 0, m = 0, q = 0;
  la::DenseMatrix conf, link;
  bool have_shape = false;
  while (std::getline(in, line)) {
    line = Strip(line);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string directive;
    ls >> directive;
    if (directive == "alpha") {
      ls >> config.alpha;
    } else if (directive == "gamma") {
      ls >> config.gamma;
    } else if (directive == "lambda") {
      ls >> config.lambda;
    } else if (directive == "ica") {
      int v = 1;
      ls >> v;
      config.ica_update = v != 0;
    } else if (directive == "kernel") {
      std::string name;
      ls >> name;
      config.similarity = hin::SimilarityKernelFromString(name);
    } else if (directive == "shape") {
      ls >> n >> m >> q;
      TMARK_CHECK_MSG(!ls.fail() && n > 0 && m > 0 && q > 0,
                      "malformed shape line: " << line);
      conf = la::DenseMatrix(n, q);
      link = la::DenseMatrix(m, q);
      have_shape = true;
    } else if (directive == "conf") {
      TMARK_CHECK_MSG(have_shape, "conf before shape");
      std::size_t i;
      ls >> i;
      TMARK_CHECK_MSG(!ls.fail() && i < n, "conf row out of range: " << line);
      for (std::size_t c = 0; c < q; ++c) ls >> conf.At(i, c);
      TMARK_CHECK_MSG(!ls.fail(), "short conf row: " << line);
    } else if (directive == "link") {
      TMARK_CHECK_MSG(have_shape, "link before shape");
      std::size_t k;
      ls >> k;
      TMARK_CHECK_MSG(!ls.fail() && k < m, "link row out of range: " << line);
      for (std::size_t c = 0; c < q; ++c) ls >> link.At(k, c);
      TMARK_CHECK_MSG(!ls.fail(), "short link row: " << line);
    } else {
      TMARK_CHECK_MSG(false, "unknown directive: " << directive);
    }
  }
  TMARK_CHECK_MSG(have_shape, "model file missing shape line");
  TMarkClassifier classifier(config);
  classifier.confidences_ = std::move(conf);
  classifier.link_importance_ = std::move(link);
  return classifier;
}

TMarkClassifier LoadTMarkModelFromFile(const std::string& path) {
  std::ifstream in(path);
  TMARK_CHECK_MSG(static_cast<bool>(in), "cannot open " << path);
  return LoadTMarkModel(in);
}

}  // namespace tmark::core
