#include "tmark/core/model_io.h"

#include <cctype>
#include <fstream>
#include <iomanip>
#include <optional>
#include <ostream>
#include <set>
#include <vector>

#include "tmark/common/strict_parse.h"
#include "tmark/common/string_util.h"
#include "tmark/obs/metrics.h"

namespace tmark::core {
namespace {

constexpr char kHeader[] = "# tmark-model v1";

/// Cap on the total stored elements (n*q + m*q) a model file may declare:
/// bounds the allocation a hostile `shape` line can trigger to ~512 MB.
constexpr std::size_t kMaxModelElements = std::size_t{1} << 26;

std::vector<std::string> Fields(const std::string& line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    std::size_t j = i;
    while (j < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[j]))) {
      ++j;
    }
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string LineCtx(std::size_t line_no) {
  return "line " + std::to_string(line_no);
}

Status AtLine(std::size_t line_no, const Status& status) {
  return status.WithContext(LineCtx(line_no));
}

template <typename T>
Result<T> AtLine(std::size_t line_no, Result<T> result) {
  if (result.ok()) return result;
  return result.status().WithContext(LineCtx(line_no));
}

Status CountIoError(Status status) {
  if (!status.ok()) {
    obs::IncrCounter("io.errors");
    obs::IncrCounter(std::string("io.errors.") +
                     std::string(StatusCodeMetricSuffix(status.code())));
  }
  return status;
}

/// Parses a scalar hyper-parameter in [0, 1].
Result<double> ParseUnitInterval(const std::string& token,
                                 const std::string& what) {
  TMARK_ASSIGN_OR_RETURN(const double value, ParseFiniteDouble(token));
  if (value < 0.0 || value > 1.0) {
    return ParseError(what + " " + token + " outside [0, 1]");
  }
  return value;
}

/// The parsed-but-unassembled model; LoadTMarkModel (the class's friend)
/// moves these into a TMarkClassifier.
struct RawModel {
  TMarkConfig config;
  la::DenseMatrix conf;
  la::DenseMatrix link;
};

Result<RawModel> LoadRawModel(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || Strip(line) != kHeader) {
    return ParseError(std::string("line 1: missing '") + kHeader +
                      "' header");
  }
  std::size_t line_no = 1;
  TMarkConfig config;
  std::size_t n = 0, m = 0, q = 0;
  la::DenseMatrix conf, link;
  bool have_shape = false;
  std::vector<bool> conf_seen, link_seen;
  std::set<std::string> seen_scalars;
  const auto once = [&](const std::string& directive) -> Status {
    if (!seen_scalars.insert(directive).second) {
      return AtLine(line_no,
                    ParseError("duplicate '" + directive + "' directive"));
    }
    return Status::Ok();
  };

  while (std::getline(in, line)) {
    ++line_no;
    const std::string stripped = Strip(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const std::vector<std::string> f = Fields(stripped);
    const std::string& directive = f[0];
    if (directive == "alpha" || directive == "gamma" ||
        directive == "lambda") {
      if (f.size() != 2) {
        return AtLine(line_no,
                      ParseError("expected '" + directive + " <value>'"));
      }
      TMARK_RETURN_IF_ERROR(once(directive));
      TMARK_ASSIGN_OR_RETURN(
          const double value,
          AtLine(line_no, ParseUnitInterval(f[1], directive)));
      (directive == "alpha" ? config.alpha
                            : directive == "gamma" ? config.gamma
                                                   : config.lambda) = value;
    } else if (directive == "ica") {
      if (f.size() != 2) {
        return AtLine(line_no, ParseError("expected 'ica 0|1'"));
      }
      TMARK_RETURN_IF_ERROR(once(directive));
      if (f[1] != "0" && f[1] != "1") {
        return AtLine(line_no,
                      ParseError("invalid ica flag '" + f[1] +
                                 "' (expected 0 or 1)"));
      }
      config.ica_update = f[1] == "1";
    } else if (directive == "kernel") {
      if (f.size() != 2) {
        return AtLine(line_no, ParseError("expected 'kernel <name>'"));
      }
      TMARK_RETURN_IF_ERROR(once(directive));
      const std::optional<hin::SimilarityKernel> kernel =
          hin::TryParseSimilarityKernel(f[1]);
      if (!kernel.has_value()) {
        return AtLine(line_no,
                      ParseError("unknown similarity kernel '" + f[1] + "'"));
      }
      config.similarity = *kernel;
    } else if (directive == "shape") {
      if (f.size() != 4) {
        return AtLine(line_no, ParseError("expected 'shape <n> <m> <q>'"));
      }
      TMARK_RETURN_IF_ERROR(once(directive));
      TMARK_ASSIGN_OR_RETURN(n, AtLine(line_no, ParseIndex(f[1])));
      TMARK_ASSIGN_OR_RETURN(m, AtLine(line_no, ParseIndex(f[2])));
      TMARK_ASSIGN_OR_RETURN(q, AtLine(line_no, ParseIndex(f[3])));
      if (n == 0 || m == 0 || q == 0) {
        return AtLine(line_no,
                      ParseError("shape dimensions must be positive"));
      }
      // Bound n and m first so `n + m` cannot wrap around zero below.
      if (n > kMaxModelElements || m > kMaxModelElements ||
          q > kMaxModelElements / (n + m)) {
        return AtLine(line_no,
                      ParseError("shape exceeds the supported maximum of " +
                                 std::to_string(kMaxModelElements) +
                                 " stored elements"));
      }
      conf = la::DenseMatrix(n, q);
      link = la::DenseMatrix(m, q);
      conf_seen.assign(n, false);
      link_seen.assign(m, false);
      have_shape = true;
    } else if (directive == "conf" || directive == "link") {
      const bool is_conf = directive == "conf";
      if (!have_shape) {
        return AtLine(line_no, FailedPreconditionError(
                                   "'" + directive + "' before 'shape'"));
      }
      const std::size_t rows = is_conf ? n : m;
      if (f.size() != 2 + q) {
        return AtLine(line_no,
                      ParseError("expected '" + directive + " <row> ' + " +
                                 std::to_string(q) + " values, got " +
                                 std::to_string(f.size() - 2)));
      }
      TMARK_ASSIGN_OR_RETURN(
          const std::size_t row,
          AtLine(line_no,
                 ParseBoundedIndex(f[1], rows, directive + " row")));
      std::vector<bool>& seen = is_conf ? conf_seen : link_seen;
      if (seen[row]) {
        return AtLine(line_no,
                      ParseError("duplicate " + directive + " row " +
                                 std::to_string(row)));
      }
      seen[row] = true;
      la::DenseMatrix& target = is_conf ? conf : link;
      for (std::size_t c = 0; c < q; ++c) {
        TMARK_ASSIGN_OR_RETURN(target.At(row, c),
                               AtLine(line_no, ParseFiniteDouble(f[2 + c])));
      }
    } else {
      return AtLine(line_no,
                    ParseError("unknown directive '" + directive + "'"));
    }
  }
  if (in.bad()) {
    return DataLossError("read failed at " + LineCtx(line_no));
  }
  if (!have_shape) {
    return ParseError("model file missing shape line");
  }
  return RawModel{config, std::move(conf), std::move(link)};
}

}  // namespace

void SaveTMarkModel(const TMarkClassifier& classifier, std::ostream& out) {
  const la::DenseMatrix& conf = classifier.Confidences();  // checks fitted
  const la::DenseMatrix& link = classifier.LinkImportance();
  const TMarkConfig& config = classifier.config();
  out << kHeader << "\n";
  out << std::setprecision(17);
  out << "alpha " << config.alpha << "\n";
  out << "gamma " << config.gamma << "\n";
  out << "lambda " << config.lambda << "\n";
  out << "ica " << (config.ica_update ? 1 : 0) << "\n";
  out << "kernel " << hin::ToString(config.similarity) << "\n";
  out << "shape " << conf.rows() << " " << link.rows() << " " << conf.cols()
      << "\n";
  for (std::size_t i = 0; i < conf.rows(); ++i) {
    out << "conf " << i;
    for (std::size_t c = 0; c < conf.cols(); ++c) {
      out << " " << conf.At(i, c);
    }
    out << "\n";
  }
  for (std::size_t k = 0; k < link.rows(); ++k) {
    out << "link " << k;
    for (std::size_t c = 0; c < link.cols(); ++c) {
      out << " " << link.At(k, c);
    }
    out << "\n";
  }
}

Status SaveTMarkModelToFile(const TMarkClassifier& classifier,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return CountIoError(
        NotFoundError("cannot open " + path + " for writing"));
  }
  SaveTMarkModel(classifier, out);
  out.flush();
  if (!out) {
    return CountIoError(DataLossError("write to " + path + " failed"));
  }
  return Status::Ok();
}

Result<TMarkClassifier> LoadTMarkModel(std::istream& in) {
  Result<RawModel> raw = LoadRawModel(in);
  if (!raw.ok()) {
    return CountIoError(raw.status());
  }
  TMarkClassifier classifier(raw->config);
  classifier.confidences_ = std::move(raw->conf);
  classifier.link_importance_ = std::move(raw->link);
  return classifier;
}

Result<TMarkClassifier> LoadTMarkModelFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return CountIoError(NotFoundError("cannot open " + path));
  }
  Result<TMarkClassifier> result = LoadTMarkModel(in);
  if (!result.ok()) {
    // Already counted by LoadTMarkModel; just attach the path context.
    return result.status().WithContext(path);
  }
  return result;
}

}  // namespace tmark::core
