#include "tmark/core/tensor_rrcc.h"

// TensorRrCcClassifier is a pure configuration of TMarkClassifier; this
// translation unit anchors the class's vtable.
namespace tmark::core {}  // namespace tmark::core
