#include "tmark/core/tmark.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <string>
#include <utility>

#include "tmark/common/check.h"
#include "tmark/hin/hin_delta.h"
#include "tmark/hin/label_vector.h"
#include "tmark/la/panel.h"
#include "tmark/la/panel_f32.h"
#include "tmark/obs/metrics.h"
#include "tmark/obs/trace.h"
#include "tmark/parallel/parallel_for.h"

namespace tmark::core {

const char* ToString(FitMode mode) {
  switch (mode) {
    case FitMode::kPerClass:
      return "per_class";
    case FitMode::kBatched:
      return "batched";
  }
  TMARK_CHECK_MSG(false, "unknown FitMode");
  return "";
}

bool TryParseFitMode(std::string_view text, FitMode* mode) {
  TMARK_CHECK(mode != nullptr);
  if (text == "per_class") {
    *mode = FitMode::kPerClass;
    return true;
  }
  if (text == "batched") {
    *mode = FitMode::kBatched;
    return true;
  }
  return false;
}

TMarkClassifier::TMarkClassifier(TMarkConfig config) : config_(config) {
  TMARK_CHECK_MSG(config.alpha > 0.0 && config.alpha < 1.0,
                  "alpha must lie in (0, 1)");
  TMARK_CHECK_MSG(config.gamma >= 0.0 && config.gamma <= 1.0,
                  "gamma must lie in [0, 1]");
  TMARK_CHECK_MSG(config.lambda >= 0.0 && config.lambda <= 1.0,
                  "lambda must lie in [0, 1]");
  TMARK_CHECK(config.alpha + config.beta() <= 1.0 + 1e-12);
}

void TMarkClassifier::Fit(const hin::Hin& hin,
                          const std::vector<std::size_t>& labeled) {
  FitInternal(hin, labeled, /*warm_start=*/false, /*external_ops=*/nullptr);
}

void TMarkClassifier::Fit(const hin::Hin& hin, const PreparedOperators& ops,
                          const std::vector<std::size_t>& labeled) {
  FitInternal(hin, labeled, /*warm_start=*/false, &ops);
}

void TMarkClassifier::SetPreparedOperators(
    std::shared_ptr<const PreparedOperators> ops) {
  prepared_ = std::move(ops);
}

void TMarkClassifier::Refit(const hin::Hin& hin,
                            const std::vector<std::size_t>& labeled) {
  const bool compatible = confidences_.rows() == hin.num_nodes() &&
                          confidences_.cols() == hin.num_classes() &&
                          link_importance_.rows() == hin.num_relations();
  FitInternal(hin, labeled, /*warm_start=*/compatible,
              /*external_ops=*/nullptr);
}

Status TMarkClassifier::Update(hin::Hin* hin, const hin::HinDelta& delta,
                               const std::vector<std::size_t>& labeled) {
  TMARK_CHECK(hin != nullptr);
  obs::ScopedTimer update_timer("update.total_ms");
  // Label-only deltas cannot change the operators (labels are excluded from
  // the fingerprint), so one post-mutation fingerprint both validates the
  // held bundle and proves its honesty. Deltas that touch edges or features
  // need the pre-mutation fingerprint: patching a bundle that does not match
  // the network it claims to describe would stamp a fresh fingerprint onto
  // stale content.
  const bool ops_affected =
      !delta.edge_ops().empty() || !delta.feature_updates().empty();
  std::uint64_t pre_fingerprint = 0;
  if (ops_affected && prepared_ != nullptr) {
    pre_fingerprint = FingerprintOperators(*hin, config_.similarity);
  }
  TMARK_RETURN_IF_ERROR(hin->ApplyDelta(delta));
  const PreparedOperators* external = nullptr;
  if (prepared_ != nullptr) {
    if (!ops_affected) {
      if (prepared_->fingerprint() ==
          FingerprintOperators(*hin, config_.similarity)) {
        obs::IncrCounter("ops.cache.hit");
        external = prepared_.get();
      }
    } else if (prepared_->fingerprint() == pre_fingerprint) {
      // Patch instead of rebuild. Copy-on-write: a uniquely-held bundle is
      // patched in place; a shared one is copied first so other holders
      // keep the pre-mutation operators.
      std::shared_ptr<PreparedOperators> mutable_ops;
      if (prepared_.use_count() == 1) {
        mutable_ops = std::const_pointer_cast<PreparedOperators>(prepared_);
      } else {
        mutable_ops = std::make_shared<PreparedOperators>(*prepared_);
      }
      mutable_ops->ApplyDelta(*hin, delta);
      prepared_ = std::move(mutable_ops);
      obs::IncrCounter("ops.cache.hit");
      external = prepared_.get();
    }
  }
  // A stale (or absent) bundle is left for FitInternal, whose fingerprint
  // check rebuilds it and records the ops.cache.miss; a validated one is
  // passed through directly so the refresh skips the O(nnz) re-check.
  const bool compatible = confidences_.rows() == hin->num_nodes() &&
                          confidences_.cols() == hin->num_classes() &&
                          link_importance_.rows() == hin->num_relations();
  if (compatible && !ops_affected && external != nullptr) {
    // Label-only delta against a validated operator bundle: classes the
    // delta provably did not perturb keep their previous stationary
    // columns and skip the iteration loop entirely.
    ComputeRetireHints(*hin, delta, labeled);
  }
  FitInternal(*hin, labeled, /*warm_start=*/compatible, external);
  return Status::Ok();
}

void TMarkClassifier::ComputeRetireHints(
    const hin::Hin& hin, const hin::HinDelta& delta,
    const std::vector<std::size_t>& labeled) {
  retire_hints_.clear();
  const std::size_t n = hin.num_nodes();
  const std::size_t q = hin.num_classes();
  if (last_labeled_.empty() || traces_.size() != q) return;
  std::vector<std::size_t> sorted(labeled);
  std::sort(sorted.begin(), sorted.end());
  // Hints only hold when the training set grew: a node leaving it changes
  // every restart vector in ways the analysis below does not cover.
  if (!std::includes(sorted.begin(), sorted.end(), last_labeled_.begin(),
                     last_labeled_.end())) {
    return;
  }
  std::vector<std::size_t> joined;
  std::set_difference(sorted.begin(), sorted.end(), last_labeled_.begin(),
                      last_labeled_.end(), std::back_inserter(joined));
  // Joined nodes must be explained by the delta's label wave — a training
  // set rearranged for some other reason is outside the hints' contract.
  for (const std::size_t node : joined) {
    const bool in_delta = std::any_of(
        delta.label_adds().begin(), delta.label_adds().end(),
        [node](const hin::LabelAdd& add) { return add.node == node; });
    if (!in_delta) return;
  }

  // perturbed[c] — class c's restart vector may have moved. Conservative
  // union of everything InitialLabelVector / UpdatedLabelVector read.
  std::vector<bool> perturbed(q, false);
  for (std::size_t c = 0; c < q; ++c) {
    if (!traces_[c].converged) perturbed[c] = true;
  }
  // A label landing on a training node enters that class's restart vector.
  for (const hin::LabelAdd& add : delta.label_adds()) {
    if (std::binary_search(sorted.begin(), sorted.end(), add.node)) {
      perturbed[add.cls] = true;
    }
  }
  if (!joined.empty()) {
    // Per class, the previous stationary maximum over the *old* unlabeled
    // nodes — the reference of the ICA acceptance cutoff (Eq. 12).
    std::vector<bool> was_labeled(n, false);
    for (const std::size_t node : last_labeled_) was_labeled[node] = true;
    std::vector<double> max_unlabeled(q, 0.0);
    if (config_.ica_update) {
      for (std::size_t i = 0; i < n; ++i) {
        if (was_labeled[i]) continue;
        for (std::size_t c = 0; c < q; ++c) {
          max_unlabeled[c] = std::max(max_unlabeled[c], confidences_.At(i, c));
        }
      }
    }
    for (const std::size_t v : joined) {
      for (std::size_t c = 0; c < q; ++c) {
        if (hin.HasLabel(v, c)) {
          // v now contributes to l_c as a labeled carrier of c.
          perturbed[c] = true;
        } else if (config_.ica_update) {
          // v leaving the unlabeled pool keeps l_c intact only when it
          // neither set the unlabeled maximum (the cutoff would move) nor
          // sat above the cutoff (it was ICA-accepted and now is not).
          const double xv = confidences_.At(v, c);
          const bool safe = xv < max_unlabeled[c] &&
                            xv <= config_.lambda * max_unlabeled[c];
          if (!safe) perturbed[c] = true;
        }
      }
    }
  }
  bool any_hint = false;
  retire_hints_.assign(q, false);
  for (std::size_t c = 0; c < q; ++c) {
    if (!perturbed[c]) {
      retire_hints_[c] = true;
      any_hint = true;
    }
  }
  if (!any_hint) retire_hints_.clear();
}

void TMarkClassifier::FitInternal(const hin::Hin& hin,
                                  const std::vector<std::size_t>& labeled,
                                  bool warm_start,
                                  const PreparedOperators* external_ops) {
  const std::size_t n = hin.num_nodes();
  const std::size_t m = hin.num_relations();
  const std::size_t q = hin.num_classes();
  TMARK_CHECK(n > 0 && m > 0 && q > 0);
  TMARK_CHECK_MSG(!labeled.empty(), "T-Mark needs at least one labeled node");

  obs::TraceSpan fit_span("tmark.fit");
  fit_span.AddField("nodes", n);
  fit_span.AddField("relations", m);
  fit_span.AddField("classes", q);
  fit_span.AddField("warm_start", warm_start);
  fit_span.AddField("fit_mode", ToString(config_.fit_mode));
  obs::ScopedTimer fit_timer("tmark.fit.total_ms");
  obs::IncrCounter("tmark.fit.calls");

  const PreparedOperators* ops = external_ops;
  if (ops != nullptr) {
    TMARK_CHECK_MSG(ops->num_nodes() == n && ops->num_relations() == m &&
                        ops->kernel() == config_.similarity,
                    "prepared operators do not match the HIN / kernel");
  } else {
    // Fingerprint-checked cache: a repeated Fit on an unchanged HIN (sweep
    // trials, refits) reuses the previous O/R/W builds.
    obs::ScopedTimer prepare_timer("tmark.fit.prepare_ms");
    const std::uint64_t fingerprint =
        FingerprintOperators(hin, config_.similarity);
    if (prepared_ != nullptr && prepared_->fingerprint() == fingerprint) {
      obs::IncrCounter("tmark.fit.operator_cache_hits");
      obs::IncrCounter("ops.cache.hit");
    } else {
      obs::IncrCounter("ops.cache.miss");
      prepared_ = PreparedOperators::BuildShared(hin, config_.similarity);
    }
    ops = prepared_.get();
  }

  const la::DenseMatrix prev_x = std::move(confidences_);
  const la::DenseMatrix prev_z = std::move(link_importance_);
  confidences_ = la::DenseMatrix(n, q);
  link_importance_ = la::DenseMatrix(m, q);
  traces_.assign(q, ConvergenceTrace{});
  for (std::size_t c = 0; c < q; ++c) traces_[c].class_index = c;

  // Consume one-shot retirement hints (Update, label-only deltas): hinted
  // classes keep their previous stationary columns — converged, zero
  // iterations, empty residual trace — and never enter an engine.
  std::vector<bool> retired;
  if (warm_start && retire_hints_.size() == q) {
    retired = std::move(retire_hints_);
  }
  retire_hints_.clear();
  std::size_t hinted = 0;
  for (std::size_t c = 0; c < q; ++c) {
    if (retired.empty() || !retired[c]) continue;
    for (std::size_t i = 0; i < n; ++i) {
      confidences_.At(i, c) = prev_x.At(i, c);
    }
    for (std::size_t k = 0; k < m; ++k) {
      link_importance_.At(k, c) = prev_z.At(k, c);
    }
    traces_[c].converged = true;
    ++hinted;
  }
  if (hinted > 0) {
    obs::IncrCounter("update.hinted_classes",
                     static_cast<std::int64_t>(hinted));
    fit_span.AddField("hinted_classes", hinted);
  }

  if (config_.fit_mode == FitMode::kBatched) {
    FitBatched(hin, labeled, warm_start, *ops, prev_x, prev_z, retired);
  } else {
    FitPerClass(hin, labeled, warm_start, *ops, prev_x, prev_z, retired,
                &fit_span);
  }
  last_labeled_ = labeled;
  std::sort(last_labeled_.begin(), last_labeled_.end());

  // Convergence diagnostics (Theorems 1-3, Fig. 10): the per-iteration
  // contraction rate rho_{t+1}/rho_t, its geometric-mean estimate, and the
  // predicted iterations a refit at this rate would need to reach
  // tolerance. Engine-independent: computed from the finished traces.
  if (obs::MetricsEnabled()) {
    for (const ConvergenceTrace& trace : traces_) {
      const std::string suffix = ".c" + std::to_string(trace.class_index);
      for (std::size_t t = 1; t < trace.residuals.size(); ++t) {
        if (trace.residuals[t - 1] > 0.0) {
          obs::AppendSeries("tmark.fit.contraction" + suffix,
                            trace.residuals[t] / trace.residuals[t - 1]);
        }
      }
      const double rate = EstimateContractionRate(trace.residuals);
      if (rate > 0.0) {
        obs::SetGauge("tmark.fit.contraction_rate" + suffix, rate);
      }
      const double predicted =
          PredictIterationsToTolerance(trace.residuals, rate, config_.epsilon);
      if (predicted >= 0.0) {
        obs::SetGauge("tmark.fit.predicted_iters" + suffix, predicted);
      }
    }
  }
}

double EstimateContractionRate(const std::vector<double>& residuals) {
  // Walk the trace backwards collecting consecutive positive ratios; stop
  // at the first non-positive residual (a zero residual means exact
  // stationarity, and anything before it predates the contraction regime).
  double log_sum = 0.0;
  std::size_t count = 0;
  for (std::size_t t = residuals.size(); t-- > 1 && count < 8;) {
    if (residuals[t] <= 0.0 || residuals[t - 1] <= 0.0) break;
    log_sum += std::log(residuals[t] / residuals[t - 1]);
    ++count;
  }
  return count > 0 ? std::exp(log_sum / static_cast<double>(count)) : 0.0;
}

double PredictIterationsToTolerance(const std::vector<double>& residuals,
                                    double rate, double epsilon) {
  if (residuals.empty()) return -1.0;
  const double last = residuals.back();
  if (last < epsilon) return 0.0;
  if (!(rate > 0.0) || rate >= 1.0 || !(epsilon > 0.0)) return -1.0;
  return std::ceil(std::log(epsilon / last) / std::log(rate));
}

void TMarkClassifier::FitPerClass(const hin::Hin& hin,
                                  const std::vector<std::size_t>& labeled,
                                  bool warm_start,
                                  const PreparedOperators& ops,
                                  const la::DenseMatrix& prev_x,
                                  const la::DenseMatrix& prev_z,
                                  const std::vector<bool>& retired,
                                  obs::TraceSpan* fit_span) {
  const std::size_t n = hin.num_nodes();
  const std::size_t m = hin.num_relations();
  const std::size_t q = hin.num_classes();
  const tensor::TransitionTensors& tensors = ops.tensors();
  const hin::FeatureSimilarity& similarity = ops.similarity();

  const double alpha = config_.alpha;
  const double beta = config_.beta();
  const double rel_weight = 1.0 - alpha - beta;
  // Hoisted out of the iteration loops: the per-phase timers below branch
  // on this bool instead of re-reading the registry's atomic (metrics
  // toggles mid-fit are unsupported anyway — see obs::Tracer).
  const bool metrics = obs::MetricsEnabled();

  // The per-class chains are mutually independent (one (x_c, z_c) pair per
  // class) and write disjoint columns of confidences_/link_importance_ and
  // disjoint traces_ slots, so they run in parallel; results are identical
  // to the serial loop. Worker-side spans land in class_nodes and are
  // stitched back under fit_span in class order after the join.
  std::vector<obs::SpanNode> class_nodes(q);
  parallel::ParallelFor(q, /*grain=*/1, [&](std::size_t c) {
    if (!retired.empty() && retired[c]) return;  // Settled by FitInternal.
    obs::TraceSpan class_span("tmark.fit.class", &class_nodes[c]);
    class_span.AddField("class", c);
    obs::ScopedTimer class_timer("tmark.fit.class_ms");
    const std::string residual_series =
        "tmark.fit.residual.c" + std::to_string(c);

    la::Vector l = hin::InitialLabelVector(hin, labeled, c);
    la::Vector x = l;  // Start the walker on the labeled nodes (Sec. 4.3).
    la::Vector z = la::UniformProbability(m);
    if (warm_start) {
      // Seed from the previous stationary point (incremental mode).
      x = prev_x.Col(c);
      z = prev_z.Col(c);
    }

    // Iteration-loop state, hoisted so steady-state iterations reuse warm
    // buffers instead of allocating (swap replaces the old move-from-fresh).
    la::PanelWorkspace ws;
    la::Vector x_next;
    la::Vector z_next;
    la::Vector wx;
    std::vector<bool> ica_known;

    ConvergenceTrace trace;
    trace.class_index = c;
    trace.residuals.reserve(static_cast<std::size_t>(config_.max_iterations));
    for (int t = 1; t <= config_.max_iterations; ++t) {
      if (config_.ica_update && t > 2) {
        obs::ScopedTimer phase("tmark.fit.phase.ica_update_ms", metrics);
        hin::UpdatedLabelVectorInto(hin, labeled, c, x, config_.lambda, &l,
                                    &ica_known);
      }
      {
        obs::ScopedTimer phase("tmark.fit.phase.tensor_product_ms", metrics);
        tensors.ApplyOInto(x, z, &x_next);
        la::Scale(rel_weight, &x_next);
      }
      {
        obs::ScopedTimer phase("tmark.fit.phase.feature_walk_ms", metrics);
        similarity.ApplyInto(x, &ws, &wx);
        la::Axpy(beta, wx, &x_next);
        la::Axpy(alpha, l, &x_next);
      }
      {
        obs::ScopedTimer phase("tmark.fit.phase.z_update_ms", metrics);
        tensors.ApplyRInto(x_next, x_next, &z_next);
        // Simplex re-projection guards against the cubic amplification of
        // rounding error through the z = (sum x)^2 coupling (see MultiRank).
        la::NormalizeL1(&x_next);
        la::NormalizeL1(&z_next);
      }

      const double rho =
          la::L1Distance(x_next, x) + la::L1Distance(z_next, z);
      trace.residuals.push_back(rho);
      obs::IncrCounter("tmark.fit.iterations");
      obs::AppendSeries(residual_series, rho);
      std::swap(x, x_next);
      std::swap(z, z_next);
      if (rho < config_.epsilon) {
        trace.converged = true;
        break;
      }
    }
    class_span.AddField("iterations", trace.residuals.size());
    class_span.AddField("converged", trace.converged);
    for (std::size_t i = 0; i < n; ++i) confidences_.At(i, c) = x[i];
    for (std::size_t k = 0; k < m; ++k) link_importance_.At(k, c) = z[k];
    traces_[c] = std::move(trace);
  });
  for (std::size_t c = 0; c < q; ++c) {
    if (!retired.empty() && retired[c]) continue;  // No span was opened.
    fit_span->AdoptChild(std::move(class_nodes[c]));
  }
}

void TMarkClassifier::FitBatched(const hin::Hin& hin,
                                 const std::vector<std::size_t>& labeled,
                                 bool warm_start,
                                 const PreparedOperators& ops,
                                 const la::DenseMatrix& prev_x,
                                 const la::DenseMatrix& prev_z,
                                 const std::vector<bool>& retired) {
  const std::size_t n = hin.num_nodes();
  const std::size_t m = hin.num_relations();
  const std::size_t q = hin.num_classes();
  const tensor::TransitionTensors& tensors = ops.tensors();
  const hin::FeatureSimilarity& similarity = ops.similarity();

  const double alpha = config_.alpha;
  const double beta = config_.beta();
  const double rel_weight = 1.0 - alpha - beta;
  const bool metrics = obs::MetricsEnabled();

  obs::TraceSpan span("tmark.fit.batched");

  // All iteration state lives in panels sized once per fit: column slot s
  // of X/Z/L carries the chain of class cls[s]. Columns are compacted as
  // classes converge, so the kernels always work on the leading `width`
  // columns (physical stride q).
  la::PanelWorkspace ws;
  la::DenseMatrix x_panel(n, q);
  la::DenseMatrix z_panel(m, q);
  la::DenseMatrix l_panel(n, q);
  la::DenseMatrix x_next(n, q);
  la::DenseMatrix z_next(m, q);
  la::DenseMatrix wx_panel(n, q);
  la::PanelF32 x_f32;
  if (config_.fp32_panels) x_f32.Resize(n, q);
  // Retired classes (retirement hints, FitInternal) never occupy a slot:
  // the panel starts at the width of the still-active classes. Slot s
  // carries class cls[s]; without hints this is the identity layout.
  std::vector<std::size_t> cls;
  cls.reserve(q);
  for (std::size_t c = 0; c < q; ++c) {
    if (retired.empty() || !retired[c]) cls.push_back(c);
  }
  std::size_t width = cls.size();
  std::vector<std::string> series_names(q);
  std::vector<la::Vector> ica_cols(q);  // per-slot ICA extraction scratch
  for (std::size_t s = 0; s < width; ++s) {
    const std::size_t c = cls[s];
    series_names[c] = "tmark.fit.residual.c" + std::to_string(c);
    traces_[c].residuals.reserve(
        static_cast<std::size_t>(config_.max_iterations));
    const la::Vector l = hin::InitialLabelVector(hin, labeled, c);
    la::SetColumn(l, s, &l_panel);
    if (warm_start) {
      la::SetColumn(prev_x.Col(c), s, &x_panel);
      la::SetColumn(prev_z.Col(c), s, &z_panel);
    } else {
      la::SetColumn(l, s, &x_panel);
    }
  }
  if (!warm_start) {
    const double u = 1.0 / static_cast<double>(m);
    for (std::size_t k = 0; k < m; ++k) {
      for (std::size_t s = 0; s < width; ++s) z_panel.At(k, s) = u;
    }
  }

  std::size_t iterations = 0;
  la::Vector rho_x;
  la::Vector rho_z;
  la::Vector x_sums;
  la::Vector z_sums;
  std::vector<bool> ica_known;
  la::Vector ica_l;
  for (int t = 1; t <= config_.max_iterations && width > 0; ++t) {
    if (config_.ica_update && t > 2) {
      obs::ScopedTimer phase("tmark.fit.phase.ica_update_ms", metrics);
      // The ICA refresh is inherently per-class; slots are independent and
      // write disjoint columns of L. Serial over slots so the l/known
      // scratch can be reused (the refresh is a tiny fraction of an
      // iteration; per-slot cost is O(n)).
      for (std::size_t s = 0; s < width; ++s) {
        la::ExtractColumn(x_panel, s, &ica_cols[s]);
        hin::UpdatedLabelVectorInto(hin, labeled, cls[s], ica_cols[s],
                                    config_.lambda, &ica_l, &ica_known);
        la::SetColumn(ica_l, s, &l_panel);
      }
    }
    {
      obs::ScopedTimer phase("tmark.fit.phase.tensor_product_ms", metrics);
      if (config_.fp32_panels) {
        // Refresh the fp32 mirror from the authoritative fp64 panel (the
        // compaction moves above only touch the fp64 panel, so the mirror
        // is rebuilt for the current column layout) and gather from it.
        la::DemoteLeadingColumns(x_panel, width, &x_f32);
        tensors.ApplyOPanelF32(x_f32, z_panel, width, &x_next, &ws);
      } else {
        tensors.ApplyOPanel(x_panel, z_panel, width, &x_next, &ws);
      }
    }
    {
      obs::ScopedTimer phase("tmark.fit.phase.feature_walk_ms", metrics);
      similarity.ApplyPanel(x_panel, width, &wx_panel, &ws);
      // Fused combine: x_next = rel*Ox + beta*Wx + alpha*L plus its column
      // sums in one panel sweep (replaces one scale, two axpys, and the
      // sum pass of the x normalization; the rel scale now lands in this
      // phase's timer instead of tensor_product's).
      la::FusedCombineColumns(rel_weight, beta, wx_panel, alpha, l_panel,
                              width, &x_next, &x_sums);
    }
    {
      obs::ScopedTimer phase("tmark.fit.phase.z_update_ms", metrics);
      // ApplyRPanel consumes the unnormalized x_next (per-class order);
      // its column sums are handed in, and z_next's come back from the
      // final correction sweep — no extra panel passes.
      tensors.ApplyRPanel(x_next, x_next, width, &z_next, &ws, &x_sums,
                          &x_sums, &z_sums);
      // Simplex re-projection guards against the cubic amplification of
      // rounding error through the z = (sum x)^2 coupling (see MultiRank).
      // Fused normalize + residual: one sweep each for x and z.
      la::FusedNormalizeDistanceColumns(&x_sums, x_panel, width, &x_next,
                                        &rho_x);
      la::FusedNormalizeDistanceColumns(&z_sums, z_panel, width, &z_next,
                                        &rho_z);
    }
    std::swap(x_panel, x_next);
    std::swap(z_panel, z_next);
    ++iterations;
    obs::IncrCounter("tmark.fit.iterations",
                     static_cast<std::int64_t>(width));

    // Record residuals and retire converged columns. When slot s retires,
    // the last active column moves into it (with its residuals) and the
    // slot is re-processed, so every active column is handled exactly once.
    std::size_t s = 0;
    while (s < width) {
      const double rho = rho_x[s] + rho_z[s];
      const std::size_t c = cls[s];
      traces_[c].residuals.push_back(rho);
      obs::AppendSeries(series_names[c], rho);
      if (rho < config_.epsilon) {
        traces_[c].converged = true;
        for (std::size_t i = 0; i < n; ++i) {
          confidences_.At(i, c) = x_panel.At(i, s);
        }
        for (std::size_t k = 0; k < m; ++k) {
          link_importance_.At(k, c) = z_panel.At(k, s);
        }
        const std::size_t last = width - 1;
        if (s != last) {
          la::MoveColumn(last, s, &x_panel);
          la::MoveColumn(last, s, &z_panel);
          la::MoveColumn(last, s, &l_panel);
          cls[s] = cls[last];
          rho_x[s] = rho_x[last];
          rho_z[s] = rho_z[last];
        }
        --width;
      } else {
        ++s;
      }
    }
  }

  // Columns still active hit the iteration cap without converging.
  for (std::size_t s = 0; s < width; ++s) {
    const std::size_t c = cls[s];
    for (std::size_t i = 0; i < n; ++i) {
      confidences_.At(i, c) = x_panel.At(i, s);
    }
    for (std::size_t k = 0; k < m; ++k) {
      link_importance_.At(k, c) = z_panel.At(k, s);
    }
  }
  std::size_t converged = 0;
  for (const ConvergenceTrace& trace : traces_) converged += trace.converged;
  span.AddField("iterations", iterations);
  span.AddField("converged_classes", converged);
}

const la::DenseMatrix& TMarkClassifier::Confidences() const {
  TMARK_CHECK_MSG(confidences_.rows() > 0, "classifier is not fitted");
  return confidences_;
}

const la::DenseMatrix& TMarkClassifier::LinkImportance() const {
  TMARK_CHECK_MSG(link_importance_.rows() > 0, "classifier is not fitted");
  return link_importance_;
}

std::vector<std::size_t> TMarkClassifier::RankRelationsForClass(
    std::size_t c) const {
  const la::DenseMatrix& z = LinkImportance();
  TMARK_CHECK(c < z.cols());
  return la::ArgSortDescending(z.Col(c));
}

}  // namespace tmark::core
