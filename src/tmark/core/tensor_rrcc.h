#ifndef TMARK_CORE_TENSOR_RRCC_H_
#define TMARK_CORE_TENSOR_RRCC_H_

#include <string>

#include "tmark/core/tmark.h"

namespace tmark::core {

/// TensorRrCc — "tensor based relations ranking for multi-relational
/// collective classification" (Han et al., ICDM 2017), the direct
/// predecessor of T-Mark and a baseline column in every table of the paper.
///
/// It is exactly the T-Mark fixed point *without* the ICA label update: the
/// restart vector stays fixed at the Eq. (11) training distribution for the
/// whole iteration. Expressed here as a configuration of TMarkClassifier so
/// the two methods share one audited numeric core; the class exists so the
/// experiment registry and tables can name it.
class TensorRrCcClassifier : public TMarkClassifier {
 public:
  explicit TensorRrCcClassifier(TMarkConfig config = {})
      : TMarkClassifier(Disable(config)) {}

  std::string Name() const override { return "TensorRrCc"; }

 private:
  static TMarkConfig Disable(TMarkConfig config) {
    config.ica_update = false;
    return config;
  }
};

}  // namespace tmark::core

#endif  // TMARK_CORE_TENSOR_RRCC_H_
