#ifndef TMARK_CORE_MODEL_IO_H_
#define TMARK_CORE_MODEL_IO_H_

#include <iosfwd>
#include <string>

#include "tmark/core/tmark.h"

namespace tmark::core {

/// Serializes a fitted classifier — its configuration plus the stationary
/// confidence and link-importance matrices — in a line-oriented text format
/// (`# tmark-model v1`). Requires the classifier to be fitted.
///
/// A saved model serves predictions and rankings without refitting, and
/// because Refit warm-starts from the stored stationary point, it also
/// resumes incremental workflows across processes:
///
///   SaveTMarkModel(clf, out);             // process 1
///   TMarkClassifier clf = LoadTMarkModel(in);  // process 2
///   clf.Refit(hin, updated_labels);       // converges from the stored state
void SaveTMarkModel(const TMarkClassifier& classifier, std::ostream& out);

/// Convenience wrapper writing to `path`; returns false on I/O failure.
bool SaveTMarkModelToFile(const TMarkClassifier& classifier,
                          const std::string& path);

/// Parses the format written by SaveTMarkModel. Throws CheckError on
/// malformed input.
TMarkClassifier LoadTMarkModel(std::istream& in);

/// Convenience wrapper reading from `path`; throws CheckError if the file
/// cannot be opened or parsed.
TMarkClassifier LoadTMarkModelFromFile(const std::string& path);

}  // namespace tmark::core

#endif  // TMARK_CORE_MODEL_IO_H_
