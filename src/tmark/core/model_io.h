#ifndef TMARK_CORE_MODEL_IO_H_
#define TMARK_CORE_MODEL_IO_H_

#include <iosfwd>
#include <string>

#include "tmark/common/status.h"
#include "tmark/core/tmark.h"

namespace tmark::core {

/// Serializes a fitted classifier — its configuration plus the stationary
/// confidence and link-importance matrices — in a line-oriented text format
/// (`# tmark-model v1`). Requires the classifier to be fitted (contract:
/// TMARK_CHECK, since an unfitted save is a caller bug, not bad input).
///
/// A saved model serves predictions and rankings without refitting, and
/// because Refit warm-starts from the stored stationary point, it also
/// resumes incremental workflows across processes:
///
///   SaveTMarkModel(clf, out);                        // process 1
///   TMarkClassifier clf =
///       LoadTMarkModel(in).ValueOrThrow();           // process 2
///   clf.Refit(hin, updated_labels);   // converges from the stored state
void SaveTMarkModel(const TMarkClassifier& classifier, std::ostream& out);

/// Writes the SaveTMarkModel format to `path`. Returns kNotFound when the
/// file cannot be created and kDataLoss when the write fails midway.
Status SaveTMarkModelToFile(const TMarkClassifier& classifier,
                            const std::string& path);

/// Parses the format written by SaveTMarkModel. This is an untrusted-input
/// boundary: malformed headers, non-numeric or non-finite values,
/// hyper-parameters outside their documented domain, unknown kernels,
/// oversized or inconsistent shapes, and short/duplicate rows all yield a
/// typed Status (kParseError / kFailedPrecondition) with the offending line
/// number. Never throws on bad input.
Result<TMarkClassifier> LoadTMarkModel(std::istream& in);

/// LoadTMarkModel from `path`; kNotFound when the file cannot be opened,
/// and the path is prepended as context to any parse error.
Result<TMarkClassifier> LoadTMarkModelFromFile(const std::string& path);

}  // namespace tmark::core

#endif  // TMARK_CORE_MODEL_IO_H_
