#include "tmark/core/prepared_operators.h"

#include <algorithm>
#include <utility>

#include "tmark/obs/metrics.h"

namespace tmark::core {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(const void* data, std::size_t len, std::uint64_t* h) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t x = *h;
  for (std::size_t i = 0; i < len; ++i) {
    x ^= bytes[i];
    x *= kFnvPrime;
  }
  *h = x;
}

void HashValue(std::uint64_t value, std::uint64_t* h) {
  HashBytes(&value, sizeof(value), h);
}

void HashMatrix(const la::SparseMatrix& m, std::uint64_t* h) {
  HashValue(m.rows(), h);
  HashValue(m.cols(), h);
  HashValue(m.NumNonZeros(), h);
  // Hash row offsets as canonical 64-bit values so the fingerprint does not
  // depend on the adaptive storage width the IndexArray happened to pick
  // (compact and wide builds of the same structure must hit the same cache
  // entry).
  for (std::size_t i = 0; i < m.row_ptr().size(); ++i) {
    HashValue(m.row_ptr()[i], h);
  }
  HashBytes(m.col_idx().data(), m.col_idx().size() * sizeof(std::uint32_t), h);
  HashBytes(m.values().data(), m.values().size() * sizeof(double), h);
}

}  // namespace

std::uint64_t FingerprintOperators(const hin::Hin& hin,
                                   hin::SimilarityKernel kernel) {
  std::uint64_t h = kFnvOffset;
  HashValue(hin.num_nodes(), &h);
  HashValue(hin.num_relations(), &h);
  HashValue(static_cast<std::uint64_t>(kernel), &h);
  for (std::size_t k = 0; k < hin.num_relations(); ++k) {
    HashMatrix(hin.relation(k), &h);
  }
  HashMatrix(hin.features(), &h);
  return h;
}

PreparedOperators PreparedOperators::Build(const hin::Hin& hin,
                                           hin::SimilarityKernel kernel) {
  // No span of its own: the tensor / similarity build spans attach directly
  // to whatever span is open at the call site (e.g. tmark.fit).
  const std::uint64_t fingerprint = FingerprintOperators(hin, kernel);
  tensor::TransitionTensors tensors =
      tensor::TransitionTensors::Build(hin.ToAdjacencyTensor());
  hin::FeatureSimilarity similarity =
      hin::FeatureSimilarity::Build(hin.features(), kernel);
  obs::IncrCounter("core.prepared.builds");
  return PreparedOperators(std::move(tensors), std::move(similarity),
                           fingerprint, hin.num_nodes(), hin.num_relations(),
                           kernel);
}

std::shared_ptr<const PreparedOperators> PreparedOperators::BuildShared(
    const hin::Hin& hin, hin::SimilarityKernel kernel) {
  return std::make_shared<const PreparedOperators>(Build(hin, kernel));
}

OperatorCache::OperatorCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const PreparedOperators> OperatorCache::GetOrBuild(
    const hin::Hin& hin, hin::SimilarityKernel kernel) {
  const std::uint64_t fingerprint = FingerprintOperators(hin, kernel);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = std::find_if(
        entries_.begin(), entries_.end(),
        [fingerprint](const std::shared_ptr<const PreparedOperators>& e) {
          return e->fingerprint() == fingerprint;
        });
    if (it != entries_.end()) {
      std::shared_ptr<const PreparedOperators> hit = *it;
      entries_.erase(it);
      entries_.insert(entries_.begin(), hit);  // refresh MRU position
      obs::IncrCounter("core.prepared.cache_hits");
      return hit;
    }
  }
  // Build outside the lock: concurrent misses may build twice, but both
  // results are identical and the cache stays consistent.
  std::shared_ptr<const PreparedOperators> built =
      PreparedOperators::BuildShared(hin, kernel);
  std::lock_guard<std::mutex> lock(mu_);
  entries_.insert(entries_.begin(), built);
  if (entries_.size() > capacity_) entries_.resize(capacity_);
  return built;
}

std::size_t OperatorCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace tmark::core
