#include "tmark/core/prepared_operators.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "tmark/hin/hin_delta.h"
#include "tmark/obs/metrics.h"
#include "tmark/obs/trace.h"

namespace tmark::core {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void HashBytes(const void* data, std::size_t len, std::uint64_t* h) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t x = *h;
  for (std::size_t i = 0; i < len; ++i) {
    x ^= bytes[i];
    x *= kFnvPrime;
  }
  *h = x;
}

void HashValue(std::uint64_t value, std::uint64_t* h) {
  HashBytes(&value, sizeof(value), h);
}

void HashMatrix(const la::SparseMatrix& m, std::uint64_t* h) {
  HashValue(m.rows(), h);
  HashValue(m.cols(), h);
  HashValue(m.NumNonZeros(), h);
  // Hash row offsets as canonical 64-bit values so the fingerprint does not
  // depend on the adaptive storage width the IndexArray happened to pick
  // (compact and wide builds of the same structure must hit the same cache
  // entry).
  for (std::size_t i = 0; i < m.row_ptr().size(); ++i) {
    HashValue(m.row_ptr()[i], h);
  }
  HashBytes(m.col_idx().data(), m.col_idx().size() * sizeof(std::uint32_t), h);
  HashBytes(m.values().data(), m.values().size() * sizeof(double), h);
}

}  // namespace

std::uint64_t FingerprintOperators(const hin::Hin& hin,
                                   hin::SimilarityKernel kernel) {
  std::uint64_t h = kFnvOffset;
  HashValue(hin.num_nodes(), &h);
  HashValue(hin.num_relations(), &h);
  HashValue(static_cast<std::uint64_t>(kernel), &h);
  for (std::size_t k = 0; k < hin.num_relations(); ++k) {
    HashMatrix(hin.relation(k), &h);
  }
  HashMatrix(hin.features(), &h);
  return h;
}

PreparedOperators PreparedOperators::Build(const hin::Hin& hin,
                                           hin::SimilarityKernel kernel) {
  // No span of its own: the tensor / similarity build spans attach directly
  // to whatever span is open at the call site (e.g. tmark.fit).
  const std::uint64_t fingerprint = FingerprintOperators(hin, kernel);
  tensor::TransitionTensors tensors =
      tensor::TransitionTensors::Build(hin.ToAdjacencyTensor());
  hin::FeatureSimilarity similarity =
      hin::FeatureSimilarity::Build(hin.features(), kernel);
  obs::IncrCounter("core.prepared.builds");
  return PreparedOperators(std::move(tensors), std::move(similarity),
                           fingerprint, hin.num_nodes(), hin.num_relations(),
                           kernel);
}

std::shared_ptr<const PreparedOperators> PreparedOperators::BuildShared(
    const hin::Hin& hin, hin::SimilarityKernel kernel) {
  // The managed object is non-const so a uniquely-held bundle can be
  // patched in place through const_pointer_cast (TMarkClassifier::Update);
  // every handle handed out is still pointer-to-const.
  return std::make_shared<PreparedOperators>(Build(hin, kernel));
}

void PreparedOperators::ApplyDelta(const hin::Hin& hin,
                                   const hin::HinDelta& delta) {
  obs::ScopedTimer timer("update.operators_ms");
  obs::IncrCounter("update.edges",
                   static_cast<std::int64_t>(delta.edge_ops().size()));
  if (!delta.edge_ops().empty()) {
    std::vector<const la::SparseMatrix*> adjacency;
    adjacency.reserve(hin.num_relations());
    for (std::size_t k = 0; k < hin.num_relations(); ++k) {
      adjacency.push_back(&hin.relation(k));
    }
    tensor::TransitionTensors::AdjacencyDelta adelta;
    adelta.relations.reserve(delta.edge_ops().size());
    adelta.pairs.reserve(delta.edge_ops().size());
    for (const hin::EdgeOp& op : delta.edge_ops()) {
      adelta.relations.push_back(op.relation);
      adelta.pairs.emplace_back(static_cast<std::uint32_t>(op.dst),
                                static_cast<std::uint32_t>(op.src));
    }
    std::sort(adelta.relations.begin(), adelta.relations.end());
    adelta.relations.erase(
        std::unique(adelta.relations.begin(), adelta.relations.end()),
        adelta.relations.end());
    std::sort(adelta.pairs.begin(), adelta.pairs.end());
    adelta.pairs.erase(std::unique(adelta.pairs.begin(), adelta.pairs.end()),
                       adelta.pairs.end());
    tensors_.ApplyPatch(adjacency, adelta);
  }
  if (!delta.feature_updates().empty()) {
    std::vector<std::uint32_t> rows;
    rows.reserve(delta.feature_updates().size());
    for (const hin::FeatureRowUpdate& u : delta.feature_updates()) {
      rows.push_back(static_cast<std::uint32_t>(u.node));
    }
    similarity_.PatchRows(hin.features(), rows);
  }
  fingerprint_ = FingerprintOperators(hin, kernel_);
}

OperatorCache::OperatorCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const PreparedOperators> OperatorCache::GetOrBuild(
    const hin::Hin& hin, hin::SimilarityKernel kernel) {
  const std::uint64_t fingerprint = FingerprintOperators(hin, kernel);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = std::find_if(
        entries_.begin(), entries_.end(),
        [fingerprint](const std::shared_ptr<const PreparedOperators>& e) {
          return e->fingerprint() == fingerprint;
        });
    if (it != entries_.end()) {
      std::shared_ptr<const PreparedOperators> hit = *it;
      entries_.erase(it);
      entries_.insert(entries_.begin(), hit);  // refresh MRU position
      obs::IncrCounter("core.prepared.cache_hits");
      obs::IncrCounter("ops.cache.hit");
      return hit;
    }
  }
  // Build outside the lock: concurrent misses may build twice, but both
  // results are identical and the cache stays consistent.
  obs::IncrCounter("ops.cache.miss");
  std::shared_ptr<const PreparedOperators> built =
      PreparedOperators::BuildShared(hin, kernel);
  std::lock_guard<std::mutex> lock(mu_);
  entries_.insert(entries_.begin(), built);
  if (entries_.size() > capacity_) entries_.resize(capacity_);
  return built;
}

std::size_t OperatorCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace tmark::core
