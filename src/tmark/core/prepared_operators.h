#ifndef TMARK_CORE_PREPARED_OPERATORS_H_
#define TMARK_CORE_PREPARED_OPERATORS_H_

// Precomputed T-Mark operators and their reuse machinery.
//
// Building the transition tensors (O, R — Sec. 4.1) and the feature
// similarity walk (W — Sec. 4.2) costs O(D) + O(nnz(F)) and depends only on
// the HIN and the similarity kernel, not on the labeled set or the
// hyper-parameters alpha/gamma/lambda. PreparedOperators bundles both
// together with a content fingerprint of their inputs so that repeated
// Fit calls on an unchanged HIN — alpha/gamma sweeps, label-fraction
// trials, warm restarts — skip the rebuild entirely (docs/PERFORMANCE.md).

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "tmark/hin/feature_similarity.h"
#include "tmark/hin/hin.h"
#include "tmark/hin/similarity_kernel.h"
#include "tmark/tensor/transition_tensors.h"

namespace tmark::core {

/// 64-bit FNV-1a fingerprint of everything the operators are derived from:
/// node/relation counts, every relation's CSR arrays, the feature matrix,
/// and the similarity kernel. Equal fingerprints imply bit-identical
/// operators (the builds are deterministic functions of these inputs).
std::uint64_t FingerprintOperators(const hin::Hin& hin,
                                   hin::SimilarityKernel kernel);

/// Bundle of the label-independent fit operators. Consumers hold it through
/// `shared_ptr<const PreparedOperators>` and treat it as immutable; the one
/// sanctioned mutation is ApplyDelta on a uniquely-held (or copied) bundle,
/// which patches the operators in place after a HIN mutation.
class PreparedOperators {
 public:
  /// Builds O, R, and W from the HIN. Increments the "core.prepared.builds"
  /// counter (plus the per-operator build counters of the underlying
  /// subsystems).
  static PreparedOperators Build(const hin::Hin& hin,
                                 hin::SimilarityKernel kernel);

  /// Build wrapped in a shared_ptr, for caching / cross-classifier sharing.
  static std::shared_ptr<const PreparedOperators> BuildShared(
      const hin::Hin& hin, hin::SimilarityKernel kernel);

  /// Incrementally re-derives the bundle after `hin` absorbed `delta`
  /// (Hin::ApplyDelta already ran; this bundle must have been built from
  /// the pre-mutation network). Edge ops patch O, R, and the linked mask
  /// through TransitionTensors::ApplyPatch; feature updates patch W through
  /// FeatureSimilarity::PatchRows; the fingerprint is recomputed from the
  /// mutated network. A patched bundle is bit-identical to
  /// Build(hin, kernel()) — same fingerprint, same operator bytes. Timed as
  /// "update.operators_ms"; the edge-op count lands on "update.edges".
  void ApplyDelta(const hin::Hin& hin, const hin::HinDelta& delta);

  const tensor::TransitionTensors& tensors() const { return tensors_; }
  const hin::FeatureSimilarity& similarity() const { return similarity_; }
  std::uint64_t fingerprint() const { return fingerprint_; }
  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_relations() const { return num_relations_; }
  hin::SimilarityKernel kernel() const { return kernel_; }

 private:
  PreparedOperators(tensor::TransitionTensors tensors,
                    hin::FeatureSimilarity similarity,
                    std::uint64_t fingerprint, std::size_t num_nodes,
                    std::size_t num_relations, hin::SimilarityKernel kernel)
      : tensors_(std::move(tensors)),
        similarity_(std::move(similarity)),
        fingerprint_(fingerprint),
        num_nodes_(num_nodes),
        num_relations_(num_relations),
        kernel_(kernel) {}

  tensor::TransitionTensors tensors_;
  hin::FeatureSimilarity similarity_;
  std::uint64_t fingerprint_;
  std::size_t num_nodes_;
  std::size_t num_relations_;
  hin::SimilarityKernel kernel_;
};

/// Small bounded MRU cache of shared PreparedOperators keyed by
/// fingerprint. One instance per sweep/experiment lets every trial on the
/// same HIN + kernel share one build (counters: "core.prepared.cache_hits"
/// on reuse). Thread-safe.
class OperatorCache {
 public:
  explicit OperatorCache(std::size_t capacity = 4);

  /// Returns the cached operators for (hin, kernel), building on miss. The
  /// returned pointer stays valid independent of later evictions.
  std::shared_ptr<const PreparedOperators> GetOrBuild(
      const hin::Hin& hin, hin::SimilarityKernel kernel);

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<std::shared_ptr<const PreparedOperators>> entries_;  // MRU first
};

}  // namespace tmark::core

#endif  // TMARK_CORE_PREPARED_OPERATORS_H_
