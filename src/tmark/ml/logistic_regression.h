#ifndef TMARK_ML_LOGISTIC_REGRESSION_H_
#define TMARK_ML_LOGISTIC_REGRESSION_H_

#include <cstddef>
#include <vector>

#include "tmark/common/random.h"
#include "tmark/la/dense_matrix.h"

namespace tmark::ml {

/// Hyper-parameters for softmax regression training.
struct LogisticRegressionConfig {
  double learning_rate = 0.1;
  double l2 = 1e-4;          ///< L2 weight decay.
  int epochs = 60;
  std::size_t batch_size = 32;
  std::uint64_t seed = 7;
};

/// Multinomial (softmax) logistic regression with mini-batch SGD.
///
/// The default base learner of the ICA/Hcc family of baselines: fast,
/// convex, and well-behaved on the bag-of-words + relational-count feature
/// blocks those methods construct.
class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticRegressionConfig config = {});

  /// Trains on rows of X (num_samples x d) with integer targets in [0, q).
  /// `num_classes` fixes q (targets need not cover every class).
  void Fit(const la::DenseMatrix& x, const std::vector<std::size_t>& y,
           std::size_t num_classes);

  /// Class-probability rows (softmax) for each input row.
  la::DenseMatrix PredictProba(const la::DenseMatrix& x) const;

  /// Arg-max class per input row.
  std::vector<std::size_t> Predict(const la::DenseMatrix& x) const;

  /// Mean cross-entropy + L2 penalty on (x, y); exposed for tests.
  double Loss(const la::DenseMatrix& x, const std::vector<std::size_t>& y) const;

  std::size_t num_classes() const { return num_classes_; }
  const la::DenseMatrix& weights() const { return w_; }
  const la::Vector& bias() const { return b_; }

 private:
  la::Vector Logits(const la::DenseMatrix& x, std::size_t row) const;

  LogisticRegressionConfig config_;
  std::size_t num_classes_ = 0;
  la::DenseMatrix w_;  ///< q x d weight matrix.
  la::Vector b_;       ///< q bias vector.
};

/// Numerically stable in-place softmax of a logit vector.
void SoftmaxInPlace(la::Vector* logits);

}  // namespace tmark::ml

#endif  // TMARK_ML_LOGISTIC_REGRESSION_H_
