#include "tmark/ml/optimizer.h"

#include <cmath>

#include "tmark/common/check.h"

namespace tmark::ml {

SgdOptimizer::SgdOptimizer(std::size_t num_params, double learning_rate,
                           double momentum)
    : learning_rate_(learning_rate),
      momentum_(momentum),
      velocity_(num_params, 0.0) {
  TMARK_CHECK(learning_rate > 0.0);
  TMARK_CHECK(momentum >= 0.0 && momentum < 1.0);
}

void SgdOptimizer::Step(const std::vector<double>& grads,
                        std::vector<double>* params) {
  TMARK_CHECK(params != nullptr);
  TMARK_CHECK(grads.size() == velocity_.size() &&
              params->size() == velocity_.size());
  for (std::size_t i = 0; i < grads.size(); ++i) {
    velocity_[i] = momentum_ * velocity_[i] - learning_rate_ * grads[i];
    (*params)[i] += velocity_[i];
  }
}

void SgdOptimizer::Reset() {
  std::fill(velocity_.begin(), velocity_.end(), 0.0);
}

AdamOptimizer::AdamOptimizer(std::size_t num_params, double learning_rate,
                             double beta1, double beta2, double epsilon)
    : learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      t_(0),
      m_(num_params, 0.0),
      v_(num_params, 0.0) {
  TMARK_CHECK(learning_rate > 0.0);
}

void AdamOptimizer::Step(const std::vector<double>& grads,
                         std::vector<double>* params) {
  TMARK_CHECK(params != nullptr);
  TMARK_CHECK(grads.size() == m_.size() && params->size() == m_.size());
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < grads.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grads[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grads[i] * grads[i];
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    (*params)[i] -= learning_rate_ * mhat / (std::sqrt(vhat) + epsilon_);
  }
}

void AdamOptimizer::Reset() {
  t_ = 0;
  std::fill(m_.begin(), m_.end(), 0.0);
  std::fill(v_.begin(), v_.end(), 0.0);
}

}  // namespace tmark::ml
