#ifndef TMARK_ML_LINEAR_SVM_H_
#define TMARK_ML_LINEAR_SVM_H_

#include <cstddef>
#include <vector>

#include "tmark/common/random.h"
#include "tmark/la/dense_matrix.h"

namespace tmark::ml {

/// Hyper-parameters for linear SVM training.
struct LinearSvmConfig {
  double learning_rate = 0.05;
  double l2 = 1e-3;   ///< Regularization strength (1/C).
  int epochs = 60;
  std::uint64_t seed = 11;
};

/// One-vs-rest linear SVM trained with SGD on the L2-regularized hinge loss
/// (Pegasos-style). Stands in for the LibSVM base classifier the paper's EMR
/// baseline uses — linear kernels on bag-of-words features.
class LinearSvm {
 public:
  explicit LinearSvm(LinearSvmConfig config = {});

  /// Trains q one-vs-rest separators on rows of X with targets in [0, q).
  void Fit(const la::DenseMatrix& x, const std::vector<std::size_t>& y,
           std::size_t num_classes);

  /// Raw decision margins (n x q); larger means more confident.
  la::DenseMatrix DecisionFunction(const la::DenseMatrix& x) const;

  /// Margins squashed through a logistic link and renormalized per row —
  /// a pragmatic probability surrogate so SVM outputs can be ensembled.
  la::DenseMatrix PredictProba(const la::DenseMatrix& x) const;

  /// Arg-max class per input row.
  std::vector<std::size_t> Predict(const la::DenseMatrix& x) const;

  std::size_t num_classes() const { return num_classes_; }

 private:
  LinearSvmConfig config_;
  std::size_t num_classes_ = 0;
  la::DenseMatrix w_;  ///< q x d.
  la::Vector b_;       ///< q.
};

}  // namespace tmark::ml

#endif  // TMARK_ML_LINEAR_SVM_H_
