#include "tmark/ml/linear_svm.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tmark/common/check.h"

namespace tmark::ml {

LinearSvm::LinearSvm(LinearSvmConfig config) : config_(config) {}

void LinearSvm::Fit(const la::DenseMatrix& x,
                    const std::vector<std::size_t>& y,
                    std::size_t num_classes) {
  TMARK_CHECK(x.rows() == y.size());
  TMARK_CHECK(num_classes >= 2);
  for (std::size_t t : y) TMARK_CHECK(t < num_classes);
  num_classes_ = num_classes;
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  w_ = la::DenseMatrix(num_classes_, d);
  b_ = la::Vector(num_classes_, 0.0);

  Rng rng(config_.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    // Step size decays as 1/(1 + epoch) for Pegasos-style convergence.
    const double lr = config_.learning_rate / (1.0 + 0.1 * epoch);
    for (std::size_t i : order) {
      const double* xi = x.RowPtr(i);
      for (std::size_t c = 0; c < num_classes_; ++c) {
        const double target = (y[i] == c) ? 1.0 : -1.0;
        double* wc = w_.RowPtr(c);
        double margin = b_[c];
        for (std::size_t dd = 0; dd < d; ++dd) margin += wc[dd] * xi[dd];
        // Weight decay on every step; hinge subgradient when violating.
        const double decay = 1.0 - lr * config_.l2;
        for (std::size_t dd = 0; dd < d; ++dd) wc[dd] *= decay;
        if (target * margin < 1.0) {
          for (std::size_t dd = 0; dd < d; ++dd) {
            wc[dd] += lr * target * xi[dd];
          }
          b_[c] += lr * target;
        }
      }
    }
  }
}

la::DenseMatrix LinearSvm::DecisionFunction(const la::DenseMatrix& x) const {
  TMARK_CHECK_MSG(num_classes_ > 0, "model is not fitted");
  TMARK_CHECK(x.cols() == w_.cols());
  la::DenseMatrix out(x.rows(), num_classes_);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double* xi = x.RowPtr(i);
    for (std::size_t c = 0; c < num_classes_; ++c) {
      const double* wc = w_.RowPtr(c);
      double s = b_[c];
      for (std::size_t dd = 0; dd < x.cols(); ++dd) s += wc[dd] * xi[dd];
      out.At(i, c) = s;
    }
  }
  return out;
}

la::DenseMatrix LinearSvm::PredictProba(const la::DenseMatrix& x) const {
  la::DenseMatrix margins = DecisionFunction(x);
  for (std::size_t i = 0; i < margins.rows(); ++i) {
    double sum = 0.0;
    for (std::size_t c = 0; c < margins.cols(); ++c) {
      const double p = 1.0 / (1.0 + std::exp(-margins.At(i, c)));
      margins.At(i, c) = p;
      sum += p;
    }
    if (sum > 0.0) {
      for (std::size_t c = 0; c < margins.cols(); ++c) margins.At(i, c) /= sum;
    }
  }
  return margins;
}

std::vector<std::size_t> LinearSvm::Predict(const la::DenseMatrix& x) const {
  const la::DenseMatrix margins = DecisionFunction(x);
  std::vector<std::size_t> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out[i] = la::ArgMax(margins.Row(i));
  }
  return out;
}

}  // namespace tmark::ml
