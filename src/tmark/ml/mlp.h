#ifndef TMARK_ML_MLP_H_
#define TMARK_ML_MLP_H_

#include <cstddef>
#include <vector>

#include "tmark/common/random.h"
#include "tmark/la/dense_matrix.h"

namespace tmark::ml {

/// Hyper-parameters for the highway MLP.
struct HighwayMlpConfig {
  std::size_t hidden = 32;       ///< Width of the hidden representation.
  int num_highway_layers = 2;    ///< Stacked highway blocks after projection.
  double learning_rate = 0.02;
  double l2 = 1e-4;
  int epochs = 120;
  std::size_t batch_size = 32;
  std::uint64_t seed = 13;
};

/// Feed-forward network with highway layers (Srivastava et al. 2015), the
/// paper's HN baseline. Architecture:
///
///   h0 = tanh(W0 x + b0)                          (projection d -> hidden)
///   h_{l+1} = t_l * g_l + (1 - t_l) * h_l         (highway block)
///       g_l = tanh(Wh_l h_l + bh_l)
///       t_l = sigmoid(Wt_l h_l + bt_l)            (transform gate)
///   p = softmax(V h_L + c)
///
/// Trained with mini-batch SGD + momentum on cross-entropy. Gate biases are
/// initialized negative so blocks start close to identity, the trick that
/// makes deep highway stacks trainable.
class HighwayMlp {
 public:
  explicit HighwayMlp(HighwayMlpConfig config = {});

  /// Trains on rows of X with integer targets in [0, q).
  void Fit(const la::DenseMatrix& x, const std::vector<std::size_t>& y,
           std::size_t num_classes);

  /// Class-probability rows for each input row.
  la::DenseMatrix PredictProba(const la::DenseMatrix& x) const;

  /// Arg-max class per row.
  std::vector<std::size_t> Predict(const la::DenseMatrix& x) const;

  /// Mean cross-entropy on (x, y); exposed for training-progress tests.
  double Loss(const la::DenseMatrix& x, const std::vector<std::size_t>& y) const;

  std::size_t num_classes() const { return num_classes_; }

 private:
  struct HighwayLayer {
    la::DenseMatrix wh, wt;  ///< hidden x hidden.
    la::Vector bh, bt;       ///< hidden.
  };

  /// Forward pass for one sample; fills per-layer activations when asked.
  la::Vector Forward(const double* x, std::vector<la::Vector>* h,
                     std::vector<la::Vector>* g,
                     std::vector<la::Vector>* t) const;

  HighwayMlpConfig config_;
  std::size_t num_classes_ = 0;
  std::size_t input_dim_ = 0;
  la::DenseMatrix w0_;  ///< hidden x d projection.
  la::Vector b0_;
  std::vector<HighwayLayer> layers_;
  la::DenseMatrix v_;   ///< q x hidden output weights.
  la::Vector c_;
};

}  // namespace tmark::ml

#endif  // TMARK_ML_MLP_H_
