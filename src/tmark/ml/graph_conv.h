#ifndef TMARK_ML_GRAPH_CONV_H_
#define TMARK_ML_GRAPH_CONV_H_

#include <cstddef>
#include <vector>

#include "tmark/common/random.h"
#include "tmark/la/dense_matrix.h"
#include "tmark/la/sparse_matrix.h"

namespace tmark::ml {

/// Hyper-parameters for the graph-inception network.
struct GraphInceptionNetConfig {
  std::size_t hidden = 16;
  std::size_t max_channels = 8;  ///< Cap on relation-specific channels.
  int hops = 2;                  ///< Propagation depths mixed per channel.
  double learning_rate = 0.02;
  double l2 = 5e-4;
  int epochs = 80;
  std::uint64_t seed = 17;
};

/// Graph-convolution "inception" network, the paper's GI baseline
/// (GraphInception, Xiong et al. 2019): a transductive one-hidden-layer GCN
/// that mixes per-relation, multi-hop propagated signals:
///
///   H = ReLU( X W_0 + sum_{channel c, hop p} A_c^p (X W_{c,p}) + b )
///   P = softmax(H V + d)
///
/// Each A_c is a symmetric-normalized channel adjacency. When the HIN has
/// more relations than `max_channels`, the largest relations get their own
/// channel and the remainder is aggregated into one — keeping cost bounded
/// on HINs with hundreds of link types (e.g. the Movies director links).
/// The per-channel weight blocks give the model its large parameter count,
/// which is why it overfits at low label rates exactly as Table 3 reports.
class GraphInceptionNet {
 public:
  explicit GraphInceptionNet(GraphInceptionNetConfig config = {});

  /// Transductive fit: `features` holds all nodes (n x d), `adjacencies`
  /// the per-relation link matrices, `y` full-length targets of which only
  /// the `labeled` subset is used for the loss.
  void Fit(const la::SparseMatrix& features,
           const std::vector<la::SparseMatrix>& adjacencies,
           const std::vector<std::size_t>& y,
           const std::vector<std::size_t>& labeled, std::size_t num_classes);

  /// Class probabilities for all nodes (n x q); valid after Fit.
  const la::DenseMatrix& Proba() const { return proba_; }

  std::size_t num_channels() const { return channels_.size(); }

 private:
  void BuildChannels(const std::vector<la::SparseMatrix>& adjacencies);

  GraphInceptionNetConfig config_;
  std::vector<la::SparseMatrix> channels_;  ///< Normalized, incl. hops.
  la::DenseMatrix proba_;
};

/// Symmetric normalization D^{-1/2} (A + A^T + I) D^{-1/2} used for GCN
/// propagation. Exposed for tests.
la::SparseMatrix SymmetricNormalize(const la::SparseMatrix& a);

}  // namespace tmark::ml

#endif  // TMARK_ML_GRAPH_CONV_H_
