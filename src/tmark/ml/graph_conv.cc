#include "tmark/ml/graph_conv.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tmark/common/check.h"
#include "tmark/ml/logistic_regression.h"  // SoftmaxInPlace

namespace tmark::ml {

la::SparseMatrix SymmetricNormalize(const la::SparseMatrix& a) {
  TMARK_CHECK(a.rows() == a.cols());
  const std::size_t n = a.rows();
  la::SparseMatrix sym = a.Add(a.Transpose());
  // Add self-loops.
  std::vector<la::Triplet> eye;
  eye.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    eye.push_back({static_cast<std::uint32_t>(i),
                   static_cast<std::uint32_t>(i), 1.0});
  }
  sym = sym.Add(la::SparseMatrix::FromTriplets(n, n, std::move(eye)));
  la::Vector deg = sym.RowSums();
  la::Vector inv_sqrt(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (deg[i] > 0.0) inv_sqrt[i] = 1.0 / std::sqrt(deg[i]);
  }
  return sym.ScaleRows(inv_sqrt).ScaleColumns(inv_sqrt);
}

GraphInceptionNet::GraphInceptionNet(GraphInceptionNetConfig config)
    : config_(config) {}

void GraphInceptionNet::BuildChannels(
    const std::vector<la::SparseMatrix>& adjacencies) {
  channels_.clear();
  TMARK_CHECK(!adjacencies.empty());
  const std::size_t n = adjacencies[0].rows();
  std::vector<la::SparseMatrix> base;
  if (adjacencies.size() <= config_.max_channels) {
    base = adjacencies;
  } else {
    // Keep the largest relations as dedicated channels, pool the rest.
    std::vector<std::size_t> order(adjacencies.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return adjacencies[a].NumNonZeros() >
                              adjacencies[b].NumNonZeros();
                     });
    la::SparseMatrix rest(n, n);
    for (std::size_t r = 0; r < order.size(); ++r) {
      if (r + 1 < config_.max_channels) {
        base.push_back(adjacencies[order[r]]);
      } else {
        rest = rest.Add(adjacencies[order[r]]);
      }
    }
    base.push_back(std::move(rest));
  }
  for (const la::SparseMatrix& a : base) {
    la::SparseMatrix norm = SymmetricNormalize(a);
    la::SparseMatrix hop = norm;
    channels_.push_back(norm);
    for (int p = 2; p <= config_.hops; ++p) {
      hop = hop.MatMul(norm);
      channels_.push_back(hop);
    }
  }
}

void GraphInceptionNet::Fit(const la::SparseMatrix& features,
                            const std::vector<la::SparseMatrix>& adjacencies,
                            const std::vector<std::size_t>& y,
                            const std::vector<std::size_t>& labeled,
                            std::size_t num_classes) {
  TMARK_CHECK(features.rows() == y.size());
  TMARK_CHECK(!labeled.empty());
  TMARK_CHECK(num_classes >= 2);
  BuildChannels(adjacencies);

  const std::size_t n = features.rows();
  const std::size_t d = features.cols();
  const std::size_t h = config_.hidden;
  const std::size_t nc = channels_.size();
  Rng rng(config_.seed);

  // Weight blocks: W[0] is the skip (raw features) block, W[1..nc] per
  // channel; V maps hidden -> classes.
  std::vector<la::DenseMatrix> w(nc + 1, la::DenseMatrix(d, h));
  for (la::DenseMatrix& wm : w) {
    for (double& v : wm.data()) {
      v = rng.Normal(0.0, 1.0 / std::sqrt(static_cast<double>(d)));
    }
  }
  la::Vector b(h, 0.0);
  la::DenseMatrix v(h, num_classes);
  for (double& vv : v.data()) {
    vv = rng.Normal(0.0, 1.0 / std::sqrt(static_cast<double>(h)));
  }
  la::Vector c(num_classes, 0.0);

  const double inv_labeled = 1.0 / static_cast<double>(labeled.size());

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    // Forward.
    la::DenseMatrix z = features.MatMulDense(w[0]);  // n x h
    for (std::size_t ch = 0; ch < nc; ++ch) {
      la::DenseMatrix proj = features.MatMulDense(w[ch + 1]);
      la::DenseMatrix prop = channels_[ch].MatMulDense(proj);
      z.AddInPlace(prop);
    }
    for (std::size_t i = 0; i < n; ++i) {
      double* row = z.RowPtr(i);
      for (std::size_t j = 0; j < h; ++j) {
        row[j] += b[j];
        if (row[j] < 0.0) row[j] = 0.0;  // ReLU
      }
    }
    la::DenseMatrix logits = z.MatMul(v);  // n x q
    la::DenseMatrix dlogits(n, num_classes);
    for (std::size_t i = 0; i < n; ++i) {
      la::Vector row = logits.Row(i);
      for (std::size_t q = 0; q < num_classes; ++q) row[q] += c[q];
      SoftmaxInPlace(&row);
      std::copy(row.begin(), row.end(), logits.RowPtr(i));
    }
    for (std::size_t node : labeled) {
      double* drow = dlogits.RowPtr(node);
      const double* prow = logits.RowPtr(node);
      for (std::size_t q = 0; q < num_classes; ++q) {
        drow[q] = prow[q] * inv_labeled;
      }
      drow[y[node]] -= inv_labeled;
    }

    // Backward.
    la::DenseMatrix gv = z.Transpose().MatMul(dlogits);  // h x q
    la::Vector gc = dlogits.ColumnSums();
    la::DenseMatrix dz = dlogits.MatMul(v.Transpose());  // n x h
    for (std::size_t i = 0; i < n; ++i) {
      double* drow = dz.RowPtr(i);
      const double* zrow = z.RowPtr(i);
      for (std::size_t j = 0; j < h; ++j) {
        if (zrow[j] <= 0.0) drow[j] = 0.0;  // ReLU gate
      }
    }
    la::Vector gb = dz.ColumnSums();
    std::vector<la::DenseMatrix> gw;
    gw.reserve(nc + 1);
    gw.push_back(features.TransposeMatMulDense(dz));  // d x h (skip block)
    for (std::size_t ch = 0; ch < nc; ++ch) {
      // d(prop)/dW = X^T (A^T dz); channels are symmetric so A^T = A.
      la::DenseMatrix back = channels_[ch].TransposeMatMulDense(dz);
      gw.push_back(features.TransposeMatMulDense(back));
    }

    // SGD step with weight decay.
    const double lr = config_.learning_rate;
    const double decay = 1.0 - lr * config_.l2;
    for (std::size_t widx = 0; widx < w.size(); ++widx) {
      std::vector<double>& wd = w[widx].data();
      const std::vector<double>& gd = gw[widx].data();
      for (std::size_t idx = 0; idx < wd.size(); ++idx) {
        wd[idx] = wd[idx] * decay - lr * gd[idx];
      }
    }
    {
      std::vector<double>& vd = v.data();
      const std::vector<double>& gd = gv.data();
      for (std::size_t idx = 0; idx < vd.size(); ++idx) {
        vd[idx] = vd[idx] * decay - lr * gd[idx];
      }
    }
    for (std::size_t j = 0; j < h; ++j) b[j] -= lr * gb[j];
    for (std::size_t q = 0; q < num_classes; ++q) c[q] -= lr * gc[q];
  }

  // Final forward pass to expose probabilities for all nodes.
  la::DenseMatrix z = features.MatMulDense(w[0]);
  for (std::size_t ch = 0; ch < nc; ++ch) {
    la::DenseMatrix proj = features.MatMulDense(w[ch + 1]);
    z.AddInPlace(channels_[ch].MatMulDense(proj));
  }
  for (std::size_t i = 0; i < n; ++i) {
    double* row = z.RowPtr(i);
    for (std::size_t j = 0; j < h; ++j) {
      row[j] += b[j];
      if (row[j] < 0.0) row[j] = 0.0;
    }
  }
  proba_ = z.MatMul(v);
  for (std::size_t i = 0; i < n; ++i) {
    la::Vector row = proba_.Row(i);
    for (std::size_t q = 0; q < num_classes; ++q) row[q] += c[q];
    SoftmaxInPlace(&row);
    std::copy(row.begin(), row.end(), proba_.RowPtr(i));
  }
}

}  // namespace tmark::ml
