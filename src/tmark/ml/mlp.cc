#include "tmark/ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tmark/common/check.h"
#include "tmark/ml/logistic_regression.h"  // SoftmaxInPlace

namespace tmark::ml {
namespace {

double Sigmoid(double v) { return 1.0 / (1.0 + std::exp(-v)); }

/// y = W x + b for dense W (rows x cols), x of length cols.
la::Vector Affine(const la::DenseMatrix& w, const la::Vector& b,
                  const la::Vector& x) {
  la::Vector y = w.MatVec(x);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += b[i];
  return y;
}

void InitMatrix(la::DenseMatrix* m, double scale, Rng* rng) {
  for (double& v : m->data()) v = rng->Normal(0.0, scale);
}

}  // namespace

HighwayMlp::HighwayMlp(HighwayMlpConfig config) : config_(config) {}

la::Vector HighwayMlp::Forward(const double* x, std::vector<la::Vector>* h,
                               std::vector<la::Vector>* g,
                               std::vector<la::Vector>* t) const {
  const std::size_t hidden = config_.hidden;
  la::Vector cur(hidden, 0.0);
  for (std::size_t r = 0; r < hidden; ++r) {
    const double* wr = w0_.RowPtr(r);
    double s = b0_[r];
    for (std::size_t dd = 0; dd < input_dim_; ++dd) s += wr[dd] * x[dd];
    cur[r] = std::tanh(s);
  }
  if (h != nullptr) h->push_back(cur);
  for (const HighwayLayer& layer : layers_) {
    la::Vector gv = Affine(layer.wh, layer.bh, cur);
    la::Vector tv = Affine(layer.wt, layer.bt, cur);
    for (std::size_t i = 0; i < hidden; ++i) {
      gv[i] = std::tanh(gv[i]);
      tv[i] = Sigmoid(tv[i]);
    }
    la::Vector next(hidden);
    for (std::size_t i = 0; i < hidden; ++i) {
      next[i] = tv[i] * gv[i] + (1.0 - tv[i]) * cur[i];
    }
    if (g != nullptr) g->push_back(gv);
    if (t != nullptr) t->push_back(tv);
    cur = std::move(next);
    if (h != nullptr) h->push_back(cur);
  }
  la::Vector logits = Affine(v_, c_, cur);
  SoftmaxInPlace(&logits);
  return logits;
}

void HighwayMlp::Fit(const la::DenseMatrix& x,
                     const std::vector<std::size_t>& y,
                     std::size_t num_classes) {
  TMARK_CHECK(x.rows() == y.size());
  TMARK_CHECK(num_classes >= 2);
  num_classes_ = num_classes;
  input_dim_ = x.cols();
  const std::size_t hidden = config_.hidden;
  Rng rng(config_.seed);

  w0_ = la::DenseMatrix(hidden, input_dim_);
  InitMatrix(&w0_, 1.0 / std::sqrt(static_cast<double>(input_dim_)), &rng);
  b0_ = la::Vector(hidden, 0.0);
  layers_.assign(static_cast<std::size_t>(config_.num_highway_layers), {});
  for (HighwayLayer& layer : layers_) {
    layer.wh = la::DenseMatrix(hidden, hidden);
    layer.wt = la::DenseMatrix(hidden, hidden);
    InitMatrix(&layer.wh, 1.0 / std::sqrt(static_cast<double>(hidden)), &rng);
    InitMatrix(&layer.wt, 1.0 / std::sqrt(static_cast<double>(hidden)), &rng);
    layer.bh = la::Vector(hidden, 0.0);
    // Negative gate bias: start each block near the identity mapping.
    layer.bt = la::Vector(hidden, -1.0);
  }
  v_ = la::DenseMatrix(num_classes_, hidden);
  InitMatrix(&v_, 1.0 / std::sqrt(static_cast<double>(hidden)), &rng);
  c_ = la::Vector(num_classes_, 0.0);

  const std::size_t n = x.rows();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (std::size_t start = 0; start < n; start += config_.batch_size) {
      const std::size_t end = std::min(n, start + config_.batch_size);
      // Gradient accumulators.
      la::DenseMatrix gw0(hidden, input_dim_);
      la::Vector gb0(hidden, 0.0);
      std::vector<HighwayLayer> glayers(layers_.size());
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        glayers[l].wh = la::DenseMatrix(hidden, hidden);
        glayers[l].wt = la::DenseMatrix(hidden, hidden);
        glayers[l].bh = la::Vector(hidden, 0.0);
        glayers[l].bt = la::Vector(hidden, 0.0);
      }
      la::DenseMatrix gv(num_classes_, hidden);
      la::Vector gc(num_classes_, 0.0);

      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t i = order[bi];
        std::vector<la::Vector> h, g, t;
        la::Vector p = Forward(x.RowPtr(i), &h, &g, &t);
        p[y[i]] -= 1.0;  // dL/dlogits
        // Output layer gradients.
        const la::Vector& hlast = h.back();
        for (std::size_t c = 0; c < num_classes_; ++c) {
          double* row = gv.RowPtr(c);
          for (std::size_t j = 0; j < hidden; ++j) row[j] += p[c] * hlast[j];
          gc[c] += p[c];
        }
        la::Vector dh = v_.TransposeMatVec(p);
        // Backward through highway blocks.
        for (std::size_t l = layers_.size(); l-- > 0;) {
          const la::Vector& hin = h[l];
          const la::Vector& gl = g[l];
          const la::Vector& tl = t[l];
          la::Vector dg(hidden), dt(hidden);
          for (std::size_t j = 0; j < hidden; ++j) {
            dg[j] = dh[j] * tl[j] * (1.0 - gl[j] * gl[j]);
            dt[j] = dh[j] * (gl[j] - hin[j]) * tl[j] * (1.0 - tl[j]);
          }
          HighwayLayer& grad = glayers[l];
          for (std::size_t j = 0; j < hidden; ++j) {
            double* ghr = grad.wh.RowPtr(j);
            double* gtr = grad.wt.RowPtr(j);
            for (std::size_t kk = 0; kk < hidden; ++kk) {
              ghr[kk] += dg[j] * hin[kk];
              gtr[kk] += dt[j] * hin[kk];
            }
            grad.bh[j] += dg[j];
            grad.bt[j] += dt[j];
          }
          la::Vector dh_in = layers_[l].wh.TransposeMatVec(dg);
          la::Vector dh_in_t = layers_[l].wt.TransposeMatVec(dt);
          for (std::size_t j = 0; j < hidden; ++j) {
            dh_in[j] += dh_in_t[j] + dh[j] * (1.0 - tl[j]);
          }
          dh = std::move(dh_in);
        }
        // Backward through the tanh projection.
        const la::Vector& h0 = h.front();
        const double* xi = x.RowPtr(i);
        for (std::size_t j = 0; j < hidden; ++j) {
          const double dj = dh[j] * (1.0 - h0[j] * h0[j]);
          if (dj == 0.0) continue;
          double* row = gw0.RowPtr(j);
          for (std::size_t dd = 0; dd < input_dim_; ++dd) {
            row[dd] += dj * xi[dd];
          }
          gb0[j] += dj;
        }
      }

      // SGD step with L2 weight decay.
      const double scale = config_.learning_rate /
                           static_cast<double>(end - start);
      const double decay = 1.0 - config_.learning_rate * config_.l2;
      auto apply = [&](la::DenseMatrix* wm, const la::DenseMatrix& gm) {
        std::vector<double>& wd = wm->data();
        const std::vector<double>& gd = gm.data();
        for (std::size_t idx = 0; idx < wd.size(); ++idx) {
          wd[idx] = wd[idx] * decay - scale * gd[idx];
        }
      };
      auto apply_vec = [&](la::Vector* bv, const la::Vector& gbv) {
        for (std::size_t idx = 0; idx < bv->size(); ++idx) {
          (*bv)[idx] -= scale * gbv[idx];
        }
      };
      apply(&w0_, gw0);
      apply_vec(&b0_, gb0);
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        apply(&layers_[l].wh, glayers[l].wh);
        apply(&layers_[l].wt, glayers[l].wt);
        apply_vec(&layers_[l].bh, glayers[l].bh);
        apply_vec(&layers_[l].bt, glayers[l].bt);
      }
      apply(&v_, gv);
      apply_vec(&c_, gc);
    }
  }
}

la::DenseMatrix HighwayMlp::PredictProba(const la::DenseMatrix& x) const {
  TMARK_CHECK_MSG(num_classes_ > 0, "model is not fitted");
  TMARK_CHECK(x.cols() == input_dim_);
  la::DenseMatrix out(x.rows(), num_classes_);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    la::Vector p = Forward(x.RowPtr(i), nullptr, nullptr, nullptr);
    std::copy(p.begin(), p.end(), out.RowPtr(i));
  }
  return out;
}

std::vector<std::size_t> HighwayMlp::Predict(const la::DenseMatrix& x) const {
  const la::DenseMatrix proba = PredictProba(x);
  std::vector<std::size_t> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out[i] = la::ArgMax(proba.Row(i));
  }
  return out;
}

double HighwayMlp::Loss(const la::DenseMatrix& x,
                        const std::vector<std::size_t>& y) const {
  TMARK_CHECK(x.rows() == y.size() && !y.empty());
  double loss = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    la::Vector p = Forward(x.RowPtr(i), nullptr, nullptr, nullptr);
    loss -= std::log(std::max(p[y[i]], 1e-300));
  }
  return loss / static_cast<double>(y.size());
}

}  // namespace tmark::ml
