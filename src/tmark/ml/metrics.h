#ifndef TMARK_ML_METRICS_H_
#define TMARK_ML_METRICS_H_

#include <cstddef>
#include <vector>

#include "tmark/la/dense_matrix.h"

namespace tmark::ml {

/// Fraction of positions where predicted == truth. Requires equal sizes and
/// at least one element.
double Accuracy(const std::vector<std::size_t>& truth,
                const std::vector<std::size_t>& predicted);

/// q x q confusion matrix; entry (t, p) counts samples of true class t
/// predicted as p.
la::DenseMatrix ConfusionMatrix(const std::vector<std::size_t>& truth,
                                const std::vector<std::size_t>& predicted,
                                std::size_t num_classes);

/// Macro-averaged F1 over classes for single-label predictions. Classes
/// absent from both truth and prediction contribute F1 = 0 only if they
/// appear in neither; they are skipped from the average.
double MacroF1(const std::vector<std::size_t>& truth,
               const std::vector<std::size_t>& predicted,
               std::size_t num_classes);

/// Macro-averaged F1 for multi-label predictions: per class, precision and
/// recall over the label sets; classes appearing in neither truth nor
/// prediction are skipped.
double MultiLabelMacroF1(
    const std::vector<std::vector<std::size_t>>& truth,
    const std::vector<std::vector<std::size_t>>& predicted,
    std::size_t num_classes);

/// Micro-averaged F1 for multi-label predictions (global TP/FP/FN pooling).
double MultiLabelMicroF1(
    const std::vector<std::vector<std::size_t>>& truth,
    const std::vector<std::vector<std::size_t>>& predicted);

}  // namespace tmark::ml

#endif  // TMARK_ML_METRICS_H_
