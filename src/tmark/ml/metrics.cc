#include "tmark/ml/metrics.h"

#include <algorithm>

#include "tmark/common/check.h"

namespace tmark::ml {

double Accuracy(const std::vector<std::size_t>& truth,
                const std::vector<std::size_t>& predicted) {
  TMARK_CHECK(truth.size() == predicted.size() && !truth.empty());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

la::DenseMatrix ConfusionMatrix(const std::vector<std::size_t>& truth,
                                const std::vector<std::size_t>& predicted,
                                std::size_t num_classes) {
  TMARK_CHECK(truth.size() == predicted.size());
  la::DenseMatrix cm(num_classes, num_classes);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    TMARK_CHECK(truth[i] < num_classes && predicted[i] < num_classes);
    cm.At(truth[i], predicted[i]) += 1.0;
  }
  return cm;
}

double MacroF1(const std::vector<std::size_t>& truth,
               const std::vector<std::size_t>& predicted,
               std::size_t num_classes) {
  const la::DenseMatrix cm = ConfusionMatrix(truth, predicted, num_classes);
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t c = 0; c < num_classes; ++c) {
    double tp = cm.At(c, c);
    double fp = 0.0;
    double fn = 0.0;
    for (std::size_t o = 0; o < num_classes; ++o) {
      if (o == c) continue;
      fp += cm.At(o, c);
      fn += cm.At(c, o);
    }
    if (tp + fp + fn == 0.0) continue;  // class absent everywhere
    const double f1 = (2.0 * tp) / (2.0 * tp + fp + fn);
    total += f1;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

double MultiLabelMacroF1(
    const std::vector<std::vector<std::size_t>>& truth,
    const std::vector<std::vector<std::size_t>>& predicted,
    std::size_t num_classes) {
  TMARK_CHECK(truth.size() == predicted.size());
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t c = 0; c < num_classes; ++c) {
    double tp = 0.0;
    double fp = 0.0;
    double fn = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      const bool in_truth =
          std::find(truth[i].begin(), truth[i].end(), c) != truth[i].end();
      const bool in_pred = std::find(predicted[i].begin(), predicted[i].end(),
                                     c) != predicted[i].end();
      if (in_truth && in_pred) tp += 1.0;
      if (!in_truth && in_pred) fp += 1.0;
      if (in_truth && !in_pred) fn += 1.0;
    }
    if (tp + fp + fn == 0.0) continue;
    total += (2.0 * tp) / (2.0 * tp + fp + fn);
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

double MultiLabelMicroF1(
    const std::vector<std::vector<std::size_t>>& truth,
    const std::vector<std::vector<std::size_t>>& predicted) {
  TMARK_CHECK(truth.size() == predicted.size());
  double tp = 0.0;
  double fp = 0.0;
  double fn = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    for (std::size_t c : predicted[i]) {
      if (std::find(truth[i].begin(), truth[i].end(), c) != truth[i].end()) {
        tp += 1.0;
      } else {
        fp += 1.0;
      }
    }
    for (std::size_t c : truth[i]) {
      if (std::find(predicted[i].begin(), predicted[i].end(), c) ==
          predicted[i].end()) {
        fn += 1.0;
      }
    }
  }
  if (2.0 * tp + fp + fn == 0.0) return 0.0;
  return (2.0 * tp) / (2.0 * tp + fp + fn);
}

}  // namespace tmark::ml
