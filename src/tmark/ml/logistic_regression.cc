#include "tmark/ml/logistic_regression.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tmark/common/check.h"

namespace tmark::ml {

void SoftmaxInPlace(la::Vector* logits) {
  TMARK_CHECK(logits != nullptr && !logits->empty());
  const double mx = *std::max_element(logits->begin(), logits->end());
  double sum = 0.0;
  for (double& v : *logits) {
    v = std::exp(v - mx);
    sum += v;
  }
  for (double& v : *logits) v /= sum;
}

LogisticRegression::LogisticRegression(LogisticRegressionConfig config)
    : config_(config) {}

la::Vector LogisticRegression::Logits(const la::DenseMatrix& x,
                                      std::size_t row) const {
  la::Vector out(num_classes_, 0.0);
  const double* xr = x.RowPtr(row);
  for (std::size_t c = 0; c < num_classes_; ++c) {
    const double* wc = w_.RowPtr(c);
    double s = b_[c];
    for (std::size_t d = 0; d < x.cols(); ++d) s += wc[d] * xr[d];
    out[c] = s;
  }
  return out;
}

void LogisticRegression::Fit(const la::DenseMatrix& x,
                             const std::vector<std::size_t>& y,
                             std::size_t num_classes) {
  TMARK_CHECK(x.rows() == y.size());
  TMARK_CHECK(num_classes >= 2);
  for (std::size_t t : y) TMARK_CHECK(t < num_classes);
  num_classes_ = num_classes;
  const std::size_t d = x.cols();
  const std::size_t n = x.rows();
  w_ = la::DenseMatrix(num_classes_, d);
  b_ = la::Vector(num_classes_, 0.0);

  Rng rng(config_.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (std::size_t start = 0; start < n; start += config_.batch_size) {
      const std::size_t end = std::min(n, start + config_.batch_size);
      la::DenseMatrix gw(num_classes_, d);
      la::Vector gb(num_classes_, 0.0);
      for (std::size_t b = start; b < end; ++b) {
        const std::size_t i = order[b];
        la::Vector p = Logits(x, i);
        SoftmaxInPlace(&p);
        p[y[i]] -= 1.0;  // gradient of cross-entropy w.r.t. logits
        const double* xi = x.RowPtr(i);
        for (std::size_t c = 0; c < num_classes_; ++c) {
          if (p[c] == 0.0) continue;
          double* gwc = gw.RowPtr(c);
          for (std::size_t dd = 0; dd < d; ++dd) gwc[dd] += p[c] * xi[dd];
          gb[c] += p[c];
        }
      }
      const double scale = config_.learning_rate /
                           static_cast<double>(end - start);
      const double decay = config_.learning_rate * config_.l2;
      for (std::size_t c = 0; c < num_classes_; ++c) {
        double* wc = w_.RowPtr(c);
        const double* gwc = gw.RowPtr(c);
        for (std::size_t dd = 0; dd < d; ++dd) {
          wc[dd] -= scale * gwc[dd] + decay * wc[dd];
        }
        b_[c] -= scale * gb[c];
      }
    }
  }
}

la::DenseMatrix LogisticRegression::PredictProba(
    const la::DenseMatrix& x) const {
  TMARK_CHECK_MSG(num_classes_ > 0, "model is not fitted");
  TMARK_CHECK(x.cols() == w_.cols());
  la::DenseMatrix out(x.rows(), num_classes_);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    la::Vector p = Logits(x, i);
    SoftmaxInPlace(&p);
    std::copy(p.begin(), p.end(), out.RowPtr(i));
  }
  return out;
}

std::vector<std::size_t> LogisticRegression::Predict(
    const la::DenseMatrix& x) const {
  const la::DenseMatrix proba = PredictProba(x);
  std::vector<std::size_t> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out[i] = la::ArgMax(proba.Row(i));
  }
  return out;
}

double LogisticRegression::Loss(const la::DenseMatrix& x,
                                const std::vector<std::size_t>& y) const {
  TMARK_CHECK(x.rows() == y.size() && !y.empty());
  double loss = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    la::Vector p = Logits(x, i);
    SoftmaxInPlace(&p);
    loss -= std::log(std::max(p[y[i]], 1e-300));
  }
  loss /= static_cast<double>(y.size());
  double reg = 0.0;
  for (double v : w_.data()) reg += v * v;
  return loss + 0.5 * config_.l2 * reg;
}

}  // namespace tmark::ml
