#ifndef TMARK_ML_OPTIMIZER_H_
#define TMARK_ML_OPTIMIZER_H_

#include <cstddef>
#include <vector>

namespace tmark::ml {

/// First-order optimizer over a flat parameter vector. Implementations keep
/// their own slot state (momentum/Adam moments) sized to the parameter count
/// given at construction.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update: params -= step(grads). Both vectors must have the
  /// size declared at construction.
  virtual void Step(const std::vector<double>& grads,
                    std::vector<double>* params) = 0;

  /// Resets internal state (moments, step counter).
  virtual void Reset() = 0;
};

/// Stochastic gradient descent with classical momentum.
class SgdOptimizer : public Optimizer {
 public:
  SgdOptimizer(std::size_t num_params, double learning_rate,
               double momentum = 0.0);

  void Step(const std::vector<double>& grads,
            std::vector<double>* params) override;
  void Reset() override;

 private:
  double learning_rate_;
  double momentum_;
  std::vector<double> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(std::size_t num_params, double learning_rate,
                double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);

  void Step(const std::vector<double>& grads,
            std::vector<double>* params) override;
  void Reset() override;

 private:
  double learning_rate_;
  double beta1_;
  double beta2_;
  double epsilon_;
  long t_;
  std::vector<double> m_;
  std::vector<double> v_;
};

}  // namespace tmark::ml

#endif  // TMARK_ML_OPTIMIZER_H_
