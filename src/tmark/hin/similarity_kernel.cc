#include "tmark/hin/similarity_kernel.h"

#include "tmark/common/check.h"

namespace tmark::hin {

std::string ToString(SimilarityKernel kernel) {
  switch (kernel) {
    case SimilarityKernel::kCosine:
      return "cosine";
    case SimilarityKernel::kBinaryCosine:
      return "binary-cosine";
    case SimilarityKernel::kTfIdfCosine:
      return "tfidf-cosine";
    case SimilarityKernel::kDotProduct:
      return "dot-product";
  }
  TMARK_CHECK_MSG(false, "unhandled SimilarityKernel");
}

SimilarityKernel SimilarityKernelFromString(const std::string& name) {
  const std::optional<SimilarityKernel> kernel =
      TryParseSimilarityKernel(name);
  TMARK_CHECK_MSG(kernel.has_value(), "unknown similarity kernel: " << name);
  return *kernel;
}

std::optional<SimilarityKernel> TryParseSimilarityKernel(
    const std::string& name) {
  if (name == "cosine") return SimilarityKernel::kCosine;
  if (name == "binary-cosine") return SimilarityKernel::kBinaryCosine;
  if (name == "tfidf-cosine") return SimilarityKernel::kTfIdfCosine;
  if (name == "dot-product") return SimilarityKernel::kDotProduct;
  return std::nullopt;
}

}  // namespace tmark::hin
