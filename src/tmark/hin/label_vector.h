#ifndef TMARK_HIN_LABEL_VECTOR_H_
#define TMARK_HIN_LABEL_VECTOR_H_

#include <cstddef>
#include <vector>

#include "tmark/hin/hin.h"
#include "tmark/la/vector_ops.h"

namespace tmark::hin {

/// The initial restart vector l of Eq. (11): uniform probability 1/n_c over
/// the labeled nodes that carry class c, zero elsewhere. Requires at least
/// one labeled node of class c.
la::Vector InitialLabelVector(const Hin& hin,
                              const std::vector<std::size_t>& labeled,
                              std::size_t c);

/// The ICA-updated restart vector of Eq. (12): uniform over the union of
/// (a) labeled nodes carrying class c and (b) unlabeled nodes whose current
/// stationary confidence x_i exceeds the *relative* threshold
/// lambda * max(x over unlabeled nodes). Group (b) holds the "highly
/// confident" predictions the ICA mechanism accepts between iterations; the
/// threshold is relative to the unlabeled maximum because labeled nodes
/// carry the restart mass and would dominate an absolute cutoff.
la::Vector UpdatedLabelVector(const Hin& hin,
                              const std::vector<std::size_t>& labeled,
                              std::size_t c, const la::Vector& x,
                              double lambda);

/// UpdatedLabelVector into a caller-owned vector. `known` is caller-owned
/// scratch for the labeled-node mask; both are resized as needed and fully
/// overwritten, so warm calls (the ICA refresh inside the fit loop)
/// allocate nothing.
void UpdatedLabelVectorInto(const Hin& hin,
                            const std::vector<std::size_t>& labeled,
                            std::size_t c, const la::Vector& x, double lambda,
                            la::Vector* l, std::vector<bool>* known);

}  // namespace tmark::hin

#endif  // TMARK_HIN_LABEL_VECTOR_H_
