#ifndef TMARK_HIN_SIMILARITY_KERNEL_H_
#define TMARK_HIN_SIMILARITY_KERNEL_H_

#include <optional>
#include <string>

namespace tmark::hin {

/// Node-similarity kernels for the feature-based transition operator W
/// (Sec. 4.2 notes that "many distance metrics have been developed" —
/// cosine is the paper's choice; the others below are the factorizable
/// alternatives that keep W applicable in O(nnz(F)) without materializing
/// the n x n matrix).
enum class SimilarityKernel {
  /// cos(f_i, f_j) on raw counts — the paper's metric (default).
  kCosine,
  /// Cosine on binarized features (word presence only); robust when counts
  /// are bursty.
  kBinaryCosine,
  /// Cosine after IDF column re-weighting; down-weights ubiquitous words
  /// (the Movies "popular tag" failure mode).
  kTfIdfCosine,
  /// Plain inner product of raw counts; favours long documents.
  kDotProduct,
};

/// Human-readable kernel name ("cosine", "binary-cosine", ...).
std::string ToString(SimilarityKernel kernel);

/// Parses ToString's output back; throws CheckError on unknown names.
SimilarityKernel SimilarityKernelFromString(const std::string& name);

/// Non-throwing parse for untrusted input (model files, CLI flags):
/// nullopt on unknown names.
std::optional<SimilarityKernel> TryParseSimilarityKernel(
    const std::string& name);

}  // namespace tmark::hin

#endif  // TMARK_HIN_SIMILARITY_KERNEL_H_
