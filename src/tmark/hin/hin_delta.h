#ifndef TMARK_HIN_HIN_DELTA_H_
#define TMARK_HIN_HIN_DELTA_H_

// Batched HIN mutations for the incremental-update path.
//
// A HinDelta names a batch of edge mutations (add / remove / reweight),
// full feature-row replacements, and label additions. Hin::ApplyDelta
// validates the whole batch against the pre-mutation network first —
// unknown node/relation/class/feature ids, non-finite or non-positive
// weights, and duplicate ops in one batch are rejected with a typed Status
// (docs/ERRORS.md) before anything mutates — then applies it through the
// CSR row-edit path, so downstream operators can patch instead of rebuild
// (core::PreparedOperators::ApplyDelta). Deltas also round-trip through a
// line-oriented text format ("# tmark-delta v1"), making the loader an
// untrusted-input boundary like hin_io.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "tmark/common/status.h"
#include "tmark/hin/hin.h"

namespace tmark::hin {

/// One edge mutation. Follows the tensor convention of Sec. 3.1: the edge
/// is entry A[dst, src, relation] (column = source, row = destination).
struct EdgeOp {
  enum class Kind { kAdd, kRemove, kReweight };
  Kind kind;
  std::size_t relation;
  std::size_t dst;
  std::size_t src;
  double weight;  ///< New weight for kAdd/kReweight; unused for kRemove.
};

/// Full replacement of one node's feature row. Entries may arrive in any
/// order but dims must be unique; explicit zeros are dropped on apply.
struct FeatureRowUpdate {
  std::size_t node;
  std::vector<std::pair<std::size_t, double>> entries;  ///< (dim, value).
};

/// Adds class `cls` to a node's label set.
struct LabelAdd {
  std::size_t node;
  std::size_t cls;
};

/// An ordered batch of mutations, assembled through the builder methods and
/// consumed by Hin::ApplyDelta / TMarkClassifier::Update.
class HinDelta {
 public:
  HinDelta() = default;

  /// Records A[dst, src, relation] = weight for an edge that must not
  /// already exist (argument order mirrors HinBuilder::AddDirectedEdge).
  void AddEdge(std::size_t relation, std::size_t src, std::size_t dst,
               double weight);

  /// Removes an existing edge.
  void RemoveEdge(std::size_t relation, std::size_t src, std::size_t dst);

  /// Overwrites an existing edge's weight.
  void ReweightEdge(std::size_t relation, std::size_t src, std::size_t dst,
                    double weight);

  /// Replaces `node`'s entire feature row.
  void UpdateFeatureRow(std::size_t node,
                        std::vector<std::pair<std::size_t, double>> entries);

  /// Adds class `cls` to `node`'s label set (must not already carry it).
  void AddLabel(std::size_t node, std::size_t cls);

  const std::vector<EdgeOp>& edge_ops() const { return edge_ops_; }
  const std::vector<FeatureRowUpdate>& feature_updates() const {
    return feature_updates_;
  }
  const std::vector<LabelAdd>& label_adds() const { return label_adds_; }

  bool empty() const {
    return edge_ops_.empty() && feature_updates_.empty() &&
           label_adds_.empty();
  }
  std::size_t size() const {
    return edge_ops_.size() + feature_updates_.size() + label_adds_.size();
  }

  /// Validates the batch against the PRE-mutation network. Returns (with
  /// the io.errors counters incremented):
  ///   * kInvalidArgument — out-of-range node/relation/class/feature id,
  ///     non-finite or non-positive edge weight, non-finite or negative
  ///     feature value, or duplicate ops on one key within the batch;
  ///   * kNotFound — remove/reweight of an edge that does not exist;
  ///   * kFailedPrecondition — add of an edge or label already present.
  Status Validate(const Hin& hin) const;

 private:
  std::vector<EdgeOp> edge_ops_;
  std::vector<FeatureRowUpdate> feature_updates_;
  std::vector<LabelAdd> label_adds_;
};

/// Serializes `delta` to a line-oriented text format:
///
///   # tmark-delta v1
///   add_edge <k> <dst> <src> <w>
///   remove_edge <k> <dst> <src>
///   reweight_edge <k> <dst> <src> <w>
///   feat <node> <dim>:<value> [<dim>:<value> ...]
///   label <node> <c>
///
/// Edge directives use the same <k> <dst> <src> order as the tmark-hin
/// format; weights round-trip exactly.
void SaveHinDelta(const HinDelta& delta, std::ostream& out);

/// Writes the SaveHinDelta format to `path`. kNotFound when the file cannot
/// be created, kDataLoss when the write fails midway.
Status SaveHinDeltaToFile(const HinDelta& delta, const std::string& path);

/// Parses the format written by SaveHinDelta. Untrusted-input boundary:
/// every malformed construct — missing header, unknown directive,
/// non-numeric or overflowing index, NaN/inf/non-positive weight, negative
/// feature value, duplicate ops on one key — yields a kParseError carrying
/// the offending line number. Range checks against a concrete network
/// happen later, in HinDelta::Validate.
Result<HinDelta> LoadHinDelta(std::istream& in);

/// LoadHinDelta from `path`; kNotFound when the file cannot be opened, and
/// the path is prepended as context to any parse error.
Result<HinDelta> LoadHinDeltaFromFile(const std::string& path);

}  // namespace tmark::hin

#endif  // TMARK_HIN_HIN_DELTA_H_
