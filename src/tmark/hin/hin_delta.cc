#include "tmark/hin/hin_delta.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "tmark/common/check.h"
#include "tmark/common/strict_parse.h"
#include "tmark/common/string_util.h"
#include "tmark/la/sparse_matrix.h"
#include "tmark/obs/metrics.h"

namespace tmark::hin {
namespace {

constexpr char kHeader[] = "# tmark-delta v1";

/// Splits a stripped line on runs of ASCII whitespace.
std::vector<std::string> Fields(const std::string& line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    std::size_t j = i;
    while (j < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[j]))) {
      ++j;
    }
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string LineCtx(std::size_t line_no) {
  return "line " + std::to_string(line_no);
}

Status AtLine(std::size_t line_no, const Status& status) {
  return status.WithContext(LineCtx(line_no));
}

template <typename T>
Result<T> AtLine(std::size_t line_no, Result<T> result) {
  if (result.ok()) return result;
  return result.status().WithContext(LineCtx(line_no));
}

/// Records the failure in the io.errors{code} counters (obs is a no-op
/// branch while the metrics registry is disabled).
Status CountIoError(Status status) {
  if (!status.ok()) {
    obs::IncrCounter("io.errors");
    obs::IncrCounter(std::string("io.errors.") +
                     std::string(StatusCodeMetricSuffix(status.code())));
  }
  return status;
}

const char* KindName(EdgeOp::Kind kind) {
  switch (kind) {
    case EdgeOp::Kind::kAdd:
      return "add_edge";
    case EdgeOp::Kind::kRemove:
      return "remove_edge";
    case EdgeOp::Kind::kReweight:
      return "reweight_edge";
  }
  return "edge";
}

std::string EdgeKey(const EdgeOp& op) {
  return "(" + std::to_string(op.relation) + ", " + std::to_string(op.dst) +
         ", " + std::to_string(op.src) + ")";
}

Result<HinDelta> LoadHinDeltaImpl(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || Strip(line) != kHeader) {
    return ParseError(std::string("line 1: missing '") + kHeader +
                      "' header");
  }
  std::size_t line_no = 1;
  HinDelta delta;
  // Batch-level duplicate detection happens while parsing — a duplicate op
  // in one file is a malformed file (kParseError), whereas a duplicate fed
  // through the builder API surfaces later as kInvalidArgument in Validate.
  std::set<std::tuple<std::size_t, std::size_t, std::size_t>> seen_edges;
  std::set<std::size_t> seen_feat_nodes;
  std::set<std::pair<std::size_t, std::size_t>> seen_labels;

  while (std::getline(in, line)) {
    ++line_no;
    const std::string stripped = Strip(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const std::vector<std::string> f = Fields(stripped);
    const std::string& directive = f[0];
    if (directive == "add_edge" || directive == "reweight_edge") {
      if (f.size() != 5) {
        return AtLine(line_no, ParseError("expected '" + directive +
                                          " <k> <dst> <src> <w>'"));
      }
      EdgeOp op{};
      TMARK_ASSIGN_OR_RETURN(op.relation, AtLine(line_no, ParseIndex(f[1])));
      TMARK_ASSIGN_OR_RETURN(op.dst, AtLine(line_no, ParseIndex(f[2])));
      TMARK_ASSIGN_OR_RETURN(op.src, AtLine(line_no, ParseIndex(f[3])));
      TMARK_ASSIGN_OR_RETURN(op.weight,
                             AtLine(line_no, ParsePositiveFiniteDouble(f[4])));
      if (!seen_edges.emplace(op.relation, op.dst, op.src).second) {
        return AtLine(line_no,
                      ParseError("duplicate edge op on " + EdgeKey(op)));
      }
      if (directive == "add_edge") {
        delta.AddEdge(op.relation, op.src, op.dst, op.weight);
      } else {
        delta.ReweightEdge(op.relation, op.src, op.dst, op.weight);
      }
    } else if (directive == "remove_edge") {
      if (f.size() != 4) {
        return AtLine(line_no,
                      ParseError("expected 'remove_edge <k> <dst> <src>'"));
      }
      EdgeOp op{};
      TMARK_ASSIGN_OR_RETURN(op.relation, AtLine(line_no, ParseIndex(f[1])));
      TMARK_ASSIGN_OR_RETURN(op.dst, AtLine(line_no, ParseIndex(f[2])));
      TMARK_ASSIGN_OR_RETURN(op.src, AtLine(line_no, ParseIndex(f[3])));
      if (!seen_edges.emplace(op.relation, op.dst, op.src).second) {
        return AtLine(line_no,
                      ParseError("duplicate edge op on " + EdgeKey(op)));
      }
      delta.RemoveEdge(op.relation, op.src, op.dst);
    } else if (directive == "feat") {
      if (f.size() < 2) {
        return AtLine(
            line_no, ParseError("expected 'feat <node> <dim>:<value> ...'"));
      }
      std::size_t node = 0;
      TMARK_ASSIGN_OR_RETURN(node, AtLine(line_no, ParseIndex(f[1])));
      if (!seen_feat_nodes.insert(node).second) {
        return AtLine(line_no, ParseError("duplicate feat row for node " +
                                          std::to_string(node)));
      }
      std::vector<std::pair<std::size_t, double>> entries;
      std::set<std::size_t> seen_dims;
      for (std::size_t t = 2; t < f.size(); ++t) {
        const std::string& tok = f[t];
        const std::size_t colon = tok.find(':');
        if (colon == std::string::npos) {
          return AtLine(line_no, ParseError("malformed feat token '" + tok +
                                            "' (expected <dim>:<value>)"));
        }
        TMARK_ASSIGN_OR_RETURN(
            const std::size_t dim,
            AtLine(line_no, ParseIndex(tok.substr(0, colon))));
        TMARK_ASSIGN_OR_RETURN(
            const double value,
            AtLine(line_no, ParseFiniteDouble(tok.substr(colon + 1))));
        if (value < 0.0) {
          return AtLine(line_no,
                        ParseError("negative feature value in '" + tok +
                                   "' (features are non-negative counts)"));
        }
        if (!seen_dims.insert(dim).second) {
          return AtLine(line_no, ParseError("duplicate feature dim " +
                                            std::to_string(dim)));
        }
        entries.emplace_back(dim, value);
      }
      delta.UpdateFeatureRow(node, std::move(entries));
    } else if (directive == "label") {
      if (f.size() != 3) {
        return AtLine(line_no, ParseError("expected 'label <node> <c>'"));
      }
      std::size_t node = 0;
      std::size_t cls = 0;
      TMARK_ASSIGN_OR_RETURN(node, AtLine(line_no, ParseIndex(f[1])));
      TMARK_ASSIGN_OR_RETURN(cls, AtLine(line_no, ParseIndex(f[2])));
      if (!seen_labels.emplace(node, cls).second) {
        return AtLine(line_no,
                      ParseError("duplicate label (" + std::to_string(node) +
                                 ", " + std::to_string(cls) + ")"));
      }
      delta.AddLabel(node, cls);
    } else {
      return AtLine(line_no,
                    ParseError("unknown directive '" + directive + "'"));
    }
  }
  if (in.bad()) {
    return DataLossError("read failed at " + LineCtx(line_no));
  }
  return delta;
}

}  // namespace

void HinDelta::AddEdge(std::size_t relation, std::size_t src, std::size_t dst,
                       double weight) {
  edge_ops_.push_back(
      EdgeOp{EdgeOp::Kind::kAdd, relation, dst, src, weight});
}

void HinDelta::RemoveEdge(std::size_t relation, std::size_t src,
                          std::size_t dst) {
  edge_ops_.push_back(EdgeOp{EdgeOp::Kind::kRemove, relation, dst, src, 0.0});
}

void HinDelta::ReweightEdge(std::size_t relation, std::size_t src,
                            std::size_t dst, double weight) {
  edge_ops_.push_back(
      EdgeOp{EdgeOp::Kind::kReweight, relation, dst, src, weight});
}

void HinDelta::UpdateFeatureRow(
    std::size_t node, std::vector<std::pair<std::size_t, double>> entries) {
  feature_updates_.push_back(FeatureRowUpdate{node, std::move(entries)});
}

void HinDelta::AddLabel(std::size_t node, std::size_t cls) {
  label_adds_.push_back(LabelAdd{node, cls});
}

Status HinDelta::Validate(const Hin& hin) const {
  const std::size_t n = hin.num_nodes();
  std::set<std::tuple<std::size_t, std::size_t, std::size_t>> seen_edges;
  for (const EdgeOp& op : edge_ops_) {
    const char* name = KindName(op.kind);
    if (op.relation >= hin.num_relations()) {
      return CountIoError(InvalidArgumentError(
          std::string(name) + ": relation " + std::to_string(op.relation) +
          " out of range [0, " + std::to_string(hin.num_relations()) + ")"));
    }
    if (op.dst >= n || op.src >= n) {
      return CountIoError(InvalidArgumentError(
          std::string(name) + " " + EdgeKey(op) +
          ": endpoint out of range [0, " + std::to_string(n) + ")"));
    }
    if (op.kind != EdgeOp::Kind::kRemove &&
        !(std::isfinite(op.weight) && op.weight > 0.0)) {
      return CountIoError(InvalidArgumentError(
          std::string(name) + " " + EdgeKey(op) +
          ": weight must be finite and > 0"));
    }
    if (!seen_edges.emplace(op.relation, op.dst, op.src).second) {
      return CountIoError(InvalidArgumentError(
          "duplicate edge op on " + EdgeKey(op) + " in one batch"));
    }
    const bool exists =
        hin.relation(op.relation).FindEntry(op.dst, op.src) !=
        la::SparseMatrix::npos;
    if (op.kind == EdgeOp::Kind::kAdd && exists) {
      return CountIoError(FailedPreconditionError(
          "add_edge " + EdgeKey(op) + ": edge already exists"));
    }
    if (op.kind != EdgeOp::Kind::kAdd && !exists) {
      return CountIoError(NotFoundError(std::string(name) + " " +
                                        EdgeKey(op) + ": no such edge"));
    }
  }
  std::set<std::size_t> seen_feat_nodes;
  for (const FeatureRowUpdate& u : feature_updates_) {
    if (u.node >= n) {
      return CountIoError(InvalidArgumentError(
          "feat: node " + std::to_string(u.node) + " out of range [0, " +
          std::to_string(n) + ")"));
    }
    if (!seen_feat_nodes.insert(u.node).second) {
      return CountIoError(InvalidArgumentError(
          "duplicate feature update for node " + std::to_string(u.node) +
          " in one batch"));
    }
    std::set<std::size_t> seen_dims;
    for (const auto& [dim, value] : u.entries) {
      if (dim >= hin.feature_dim()) {
        return CountIoError(InvalidArgumentError(
            "feat node " + std::to_string(u.node) + ": dim " +
            std::to_string(dim) + " out of range [0, " +
            std::to_string(hin.feature_dim()) + ")"));
      }
      if (!(std::isfinite(value) && value >= 0.0)) {
        return CountIoError(InvalidArgumentError(
            "feat node " + std::to_string(u.node) + ": value at dim " +
            std::to_string(dim) + " must be finite and non-negative"));
      }
      if (!seen_dims.insert(dim).second) {
        return CountIoError(InvalidArgumentError(
            "feat node " + std::to_string(u.node) + ": duplicate dim " +
            std::to_string(dim)));
      }
    }
  }
  std::set<std::pair<std::size_t, std::size_t>> seen_labels;
  for (const LabelAdd& l : label_adds_) {
    if (l.node >= n) {
      return CountIoError(InvalidArgumentError(
          "label: node " + std::to_string(l.node) + " out of range [0, " +
          std::to_string(n) + ")"));
    }
    if (l.cls >= hin.num_classes()) {
      return CountIoError(InvalidArgumentError(
          "label node " + std::to_string(l.node) + ": class " +
          std::to_string(l.cls) + " out of range [0, " +
          std::to_string(hin.num_classes()) + ")"));
    }
    if (!seen_labels.emplace(l.node, l.cls).second) {
      return CountIoError(InvalidArgumentError(
          "duplicate label (" + std::to_string(l.node) + ", " +
          std::to_string(l.cls) + ") in one batch"));
    }
    if (hin.HasLabel(l.node, l.cls)) {
      return CountIoError(FailedPreconditionError(
          "label node " + std::to_string(l.node) + " already carries class " +
          std::to_string(l.cls)));
    }
  }
  return Status::Ok();
}

Status Hin::ApplyDelta(const HinDelta& delta) {
  TMARK_RETURN_IF_ERROR(delta.Validate(*this));

  // Edges: group ops per relation per destination row, splice each touched
  // row once through the CSR row-edit path.
  std::map<std::size_t, std::map<std::size_t, std::vector<const EdgeOp*>>>
      by_rel_row;
  for (const EdgeOp& op : delta.edge_ops()) {
    by_rel_row[op.relation][op.dst].push_back(&op);
  }
  for (auto& [k, rows] : by_rel_row) {
    la::SparseMatrix& rel = relations_[k];
    std::vector<la::RowEdit> edits;
    edits.reserve(rows.size());
    for (auto& [i, ops] : rows) {
      la::RowEdit e;
      e.row = i;
      const std::size_t begin = rel.row_ptr()[i];
      const std::size_t end = rel.row_ptr()[i + 1];
      e.cols.assign(rel.col_idx().begin() + begin,
                    rel.col_idx().begin() + end);
      e.values.assign(rel.values().begin() + begin,
                      rel.values().begin() + end);
      for (const EdgeOp* op : ops) {
        const auto c = static_cast<std::uint32_t>(op->src);
        const auto it = std::lower_bound(e.cols.begin(), e.cols.end(), c);
        const std::size_t pos =
            static_cast<std::size_t>(it - e.cols.begin());
        switch (op->kind) {
          case EdgeOp::Kind::kAdd:
            e.cols.insert(it, c);
            e.values.insert(e.values.begin() +
                                static_cast<std::ptrdiff_t>(pos),
                            op->weight);
            break;
          case EdgeOp::Kind::kRemove:
            e.cols.erase(it);
            e.values.erase(e.values.begin() +
                           static_cast<std::ptrdiff_t>(pos));
            break;
          case EdgeOp::Kind::kReweight:
            e.values[pos] = op->weight;
            break;
        }
      }
      edits.push_back(std::move(e));
    }
    rel.ApplyRowEdits(std::move(edits));
  }

  // Features: each update replaces the node's whole row; explicit zeros are
  // dropped so the stored pattern matches what HinBuilder would produce for
  // the same non-zero content.
  if (!delta.feature_updates().empty()) {
    std::vector<la::RowEdit> edits;
    edits.reserve(delta.feature_updates().size());
    for (const FeatureRowUpdate& u : delta.feature_updates()) {
      std::vector<std::pair<std::size_t, double>> entries = u.entries;
      std::sort(entries.begin(), entries.end());
      la::RowEdit e;
      e.row = u.node;
      e.cols.reserve(entries.size());
      e.values.reserve(entries.size());
      for (const auto& [dim, value] : entries) {
        if (value == 0.0) continue;
        e.cols.push_back(static_cast<std::uint32_t>(dim));
        e.values.push_back(value);
      }
      edits.push_back(std::move(e));
    }
    std::sort(edits.begin(), edits.end(),
              [](const la::RowEdit& a, const la::RowEdit& b) {
                return a.row < b.row;
              });
    features_.ApplyRowEdits(std::move(edits));
  }

  for (const LabelAdd& l : delta.label_adds()) {
    std::vector<std::uint32_t>& ls = labels_[l.node];
    const auto c = static_cast<std::uint32_t>(l.cls);
    ls.insert(std::lower_bound(ls.begin(), ls.end(), c), c);
  }
  return Status::Ok();
}

void SaveHinDelta(const HinDelta& delta, std::ostream& out) {
  out << kHeader << "\n";
  out << std::setprecision(17);
  for (const EdgeOp& op : delta.edge_ops()) {
    out << KindName(op.kind) << " " << op.relation << " " << op.dst << " "
        << op.src;
    if (op.kind != EdgeOp::Kind::kRemove) out << " " << op.weight;
    out << "\n";
  }
  for (const FeatureRowUpdate& u : delta.feature_updates()) {
    out << "feat " << u.node;
    for (const auto& [dim, value] : u.entries) {
      out << " " << dim << ":" << value;
    }
    out << "\n";
  }
  for (const LabelAdd& l : delta.label_adds()) {
    out << "label " << l.node << " " << l.cls << "\n";
  }
}

Status SaveHinDeltaToFile(const HinDelta& delta, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return CountIoError(
        NotFoundError("cannot open " + path + " for writing"));
  }
  SaveHinDelta(delta, out);
  out.flush();
  if (!out) {
    return CountIoError(DataLossError("write to " + path + " failed"));
  }
  return Status::Ok();
}

Result<HinDelta> LoadHinDelta(std::istream& in) {
  Result<HinDelta> result = LoadHinDeltaImpl(in);
  if (!result.ok()) CountIoError(result.status());
  return result;
}

Result<HinDelta> LoadHinDeltaFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return CountIoError(NotFoundError("cannot open " + path));
  }
  Result<HinDelta> result = LoadHinDeltaImpl(in);
  if (!result.ok()) {
    return CountIoError(result.status().WithContext(path));
  }
  return result;
}

}  // namespace tmark::hin
