#ifndef TMARK_HIN_CLASSIFIER_H_
#define TMARK_HIN_CLASSIFIER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tmark/hin/hin.h"
#include "tmark/la/dense_matrix.h"

namespace tmark::hin {

/// Common interface for all collective classifiers (T-Mark, TensorRrCc and
/// every baseline). A classifier is fitted on a HIN together with the index
/// set of labeled (training) nodes, and afterwards exposes an n x q
/// confidence matrix from which single- and multi-label predictions are
/// derived uniformly across methods.
class CollectiveClassifier {
 public:
  virtual ~CollectiveClassifier() = default;

  /// Fits on `hin` using `labeled` as the supervised node set. May be called
  /// again to refit on a different split.
  virtual void Fit(const Hin& hin, const std::vector<std::size_t>& labeled) = 0;

  /// Per-node, per-class confidence scores (n x q); valid after Fit.
  virtual const la::DenseMatrix& Confidences() const = 0;

  /// Display name used in experiment tables.
  virtual std::string Name() const = 0;

  /// Arg-max prediction per node.
  std::vector<std::size_t> PredictSingleLabel() const {
    const la::DenseMatrix& conf = Confidences();
    std::vector<std::size_t> out(conf.rows(), 0);
    for (std::size_t i = 0; i < conf.rows(); ++i) {
      out[i] = la::ArgMax(conf.Row(i));
    }
    return out;
  }

  /// Multi-label prediction: class c is assigned to node i when its
  /// confidence is at least `relative_threshold` times the node's maximum
  /// confidence. The arg-max class is always included.
  std::vector<std::vector<std::size_t>> PredictMultiLabel(
      double relative_threshold) const {
    const la::DenseMatrix& conf = Confidences();
    std::vector<std::vector<std::size_t>> out(conf.rows());
    for (std::size_t i = 0; i < conf.rows(); ++i) {
      const la::Vector row = conf.Row(i);
      const double cutoff = relative_threshold * row[la::ArgMax(row)];
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (row[c] >= cutoff && row[c] > 0.0) out[i].push_back(c);
      }
      if (out[i].empty()) out[i].push_back(la::ArgMax(row));
    }
    return out;
  }
};

}  // namespace tmark::hin

#endif  // TMARK_HIN_CLASSIFIER_H_
