#ifndef TMARK_HIN_HIN_IO_H_
#define TMARK_HIN_HIN_IO_H_

#include <iosfwd>
#include <string>

#include "tmark/common/status.h"
#include "tmark/hin/hin.h"

namespace tmark::hin {

/// Serializes `hin` to a line-oriented text format:
///
///   # tmark-hin v1
///   nodes <n>
///   feature_dim <d>
///   relation <name>            (repeated, in index order)
///   class <name>               (repeated, in index order)
///   edge <k> <dst> <src> <w>   (one per stored tensor entry)
///   label <node> <c> [<c> ...]
///   feat <node> <dim>:<value> [<dim>:<value> ...]
///
/// The format is diff-friendly and round-trips exactly for the weights
/// produced by the library's generators.
void SaveHin(const Hin& hin, std::ostream& out);

/// Writes the SaveHin format to `path`. Returns kNotFound when the file
/// cannot be created and kDataLoss when the write fails midway.
Status SaveHinToFile(const Hin& hin, const std::string& path);

/// Parses the format written by SaveHin. This is an untrusted-input
/// boundary: every malformed construct — missing header, unknown
/// directive, non-numeric or overflowing index, NaN/inf/non-positive edge
/// weight, duplicate (relation, dst, src) edge, out-of-range node/class/
/// feature index — yields a kParseError whose message carries the
/// offending line number. Never throws on bad input.
Result<Hin> LoadHin(std::istream& in);

/// LoadHin from `path`; kNotFound when the file cannot be opened, and the
/// path is prepended as context to any parse error.
Result<Hin> LoadHinFromFile(const std::string& path);

}  // namespace tmark::hin

#endif  // TMARK_HIN_HIN_IO_H_
