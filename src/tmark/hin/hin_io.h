#ifndef TMARK_HIN_HIN_IO_H_
#define TMARK_HIN_HIN_IO_H_

#include <iosfwd>
#include <string>

#include "tmark/hin/hin.h"

namespace tmark::hin {

/// Serializes `hin` to a line-oriented text format:
///
///   # tmark-hin v1
///   nodes <n>
///   feature_dim <d>
///   relation <name>            (repeated, in index order)
///   class <name>               (repeated, in index order)
///   edge <k> <dst> <src> <w>   (one per stored tensor entry)
///   label <node> <c> [<c> ...]
///   feat <node> <dim>:<value> [<dim>:<value> ...]
///
/// The format is diff-friendly and round-trips exactly for the weights
/// produced by the library's generators.
void SaveHin(const Hin& hin, std::ostream& out);

/// Convenience wrapper writing to `path`. Returns false on I/O failure.
bool SaveHinToFile(const Hin& hin, const std::string& path);

/// Parses the format written by SaveHin. Throws CheckError on malformed
/// input (unknown directive, indices out of range, missing header).
Hin LoadHin(std::istream& in);

/// Convenience wrapper reading from `path`. Throws CheckError if the file
/// cannot be opened or parsed.
Hin LoadHinFromFile(const std::string& path);

}  // namespace tmark::hin

#endif  // TMARK_HIN_HIN_IO_H_
