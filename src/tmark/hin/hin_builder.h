#ifndef TMARK_HIN_HIN_BUILDER_H_
#define TMARK_HIN_HIN_BUILDER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tmark/hin/hin.h"

namespace tmark::hin {

/// Incremental assembler for Hin instances.
///
/// Typical use:
///   HinBuilder b(/*num_nodes=*/4, /*feature_dim=*/8);
///   std::size_t k = b.AddRelation("co-author");
///   b.AddUndirectedEdge(k, 0, 1);
///   b.AddClass("DM");
///   b.SetLabel(0, 0);
///   b.AddFeature(0, 3, 1.0);
///   Hin hin = std::move(b).Build();
class HinBuilder {
 public:
  HinBuilder(std::size_t num_nodes, std::size_t feature_dim);

  /// Registers a new relation; returns its index.
  std::size_t AddRelation(const std::string& name);

  /// Registers a new class label; returns its index.
  std::size_t AddClass(const std::string& name);

  /// Pre-sizes relation k's edge buffer for `count` *directed* records
  /// (an undirected edge stores two). Generators that know their edge
  /// budget up front call this to keep assembly O(nodes + edges) with no
  /// reallocation churn at million-node scale.
  void ReserveEdges(std::size_t k, std::size_t count);

  /// Pre-sizes the feature-triplet buffer for `count` records.
  void ReserveFeatures(std::size_t count);

  /// Adds a directed link src -> dst in relation k (tensor entry
  /// A[dst, src, k] += weight, per the column-as-source convention).
  void AddDirectedEdge(std::size_t k, std::size_t src, std::size_t dst,
                       double weight = 1.0);

  /// Adds both directions; self-loops are added once.
  void AddUndirectedEdge(std::size_t k, std::size_t a, std::size_t b,
                         double weight = 1.0);

  /// Attaches class c to `node` (multi-label safe; duplicates ignored).
  void SetLabel(std::size_t node, std::size_t c);

  /// Adds `value` to feature dimension `dim` of `node`.
  void AddFeature(std::size_t node, std::size_t dim, double value);

  /// Number of edge records buffered for relation k so far.
  std::size_t EdgeCount(std::size_t k) const;

  /// Finalizes into an immutable Hin. The builder is consumed.
  Hin Build() &&;

 private:
  std::size_t num_nodes_;
  std::size_t feature_dim_;
  std::vector<std::string> relation_names_;
  std::vector<std::vector<la::Triplet>> edges_;
  std::vector<std::string> class_names_;
  std::vector<la::Triplet> feature_triplets_;
  std::vector<std::vector<std::uint32_t>> labels_;
};

}  // namespace tmark::hin

#endif  // TMARK_HIN_HIN_BUILDER_H_
