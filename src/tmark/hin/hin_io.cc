#include "tmark/hin/hin_io.h"

#include <cctype>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "tmark/common/strict_parse.h"
#include "tmark/common/string_util.h"
#include "tmark/hin/hin_builder.h"
#include "tmark/obs/metrics.h"

namespace tmark::hin {
namespace {

constexpr char kHeader[] = "# tmark-hin v1";

/// Upper bound on the declared node count / feature dimension: caps the
/// memory a hostile header line can make the loader allocate before any
/// real data is read (the edge/label/feat records are bounded by file
/// size; these two directives are not).
constexpr std::size_t kMaxDeclaredDim = std::size_t{1} << 26;  // 67M

/// Splits a stripped line on runs of ASCII whitespace.
std::vector<std::string> Fields(const std::string& line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    std::size_t j = i;
    while (j < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[j]))) {
      ++j;
    }
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string LineCtx(std::size_t line_no) {
  return "line " + std::to_string(line_no);
}

Status AtLine(std::size_t line_no, const Status& status) {
  return status.WithContext(LineCtx(line_no));
}

template <typename T>
Result<T> AtLine(std::size_t line_no, Result<T> result) {
  if (result.ok()) return result;
  return result.status().WithContext(LineCtx(line_no));
}

/// Records the failure in the io.errors{code} counters (obs is a no-op
/// branch while the metrics registry is disabled).
Status CountIoError(Status status) {
  if (!status.ok()) {
    obs::IncrCounter("io.errors");
    obs::IncrCounter(std::string("io.errors.") +
                     std::string(StatusCodeMetricSuffix(status.code())));
  }
  return status;
}

Result<Hin> LoadHinImpl(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || Strip(line) != kHeader) {
    return ParseError(std::string("line 1: missing '") + kHeader +
                      "' header");
  }
  std::size_t line_no = 1;
  std::size_t num_nodes = 0;
  std::size_t feature_dim = 0;
  bool have_nodes = false;
  bool have_dim = false;
  std::vector<std::string> relation_names;
  std::vector<std::string> class_names;
  struct EdgeRec {
    std::size_t k, dst, src;
    double w;
    std::size_t line;
  };
  std::vector<EdgeRec> edge_recs;
  struct LabelRec {
    std::size_t node;
    std::vector<std::size_t> classes;
    std::size_t line;
  };
  std::vector<LabelRec> label_recs;
  struct FeatRec {
    std::size_t node;
    std::vector<std::pair<std::size_t, double>> entries;
    std::size_t line;
  };
  std::vector<FeatRec> feat_recs;

  while (std::getline(in, line)) {
    ++line_no;
    const std::string stripped = Strip(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const std::vector<std::string> f = Fields(stripped);
    const std::string& directive = f[0];
    if (directive == "nodes" || directive == "feature_dim") {
      const bool is_nodes = directive == "nodes";
      if (f.size() != 2) {
        return AtLine(line_no, ParseError("expected '" + directive + " <n>'"));
      }
      if (is_nodes ? have_nodes : have_dim) {
        return AtLine(line_no,
                      ParseError("duplicate '" + directive + "' directive"));
      }
      TMARK_ASSIGN_OR_RETURN(const std::size_t value,
                             AtLine(line_no, ParseIndex(f[1])));
      if (value > kMaxDeclaredDim) {
        return AtLine(line_no, ParseError(directive + " " + f[1] +
                                          " exceeds the supported maximum"));
      }
      (is_nodes ? num_nodes : feature_dim) = value;
      (is_nodes ? have_nodes : have_dim) = true;
    } else if (directive == "relation" || directive == "class") {
      const std::string name = Strip(stripped.substr(directive.size()));
      if (name.empty()) {
        return AtLine(line_no, ParseError("empty " + directive + " name"));
      }
      (directive == "relation" ? relation_names : class_names)
          .push_back(name);
    } else if (directive == "edge") {
      if (f.size() != 5) {
        return AtLine(line_no,
                      ParseError("expected 'edge <k> <dst> <src> <w>'"));
      }
      EdgeRec e{};
      TMARK_ASSIGN_OR_RETURN(e.k, AtLine(line_no, ParseIndex(f[1])));
      TMARK_ASSIGN_OR_RETURN(e.dst, AtLine(line_no, ParseIndex(f[2])));
      TMARK_ASSIGN_OR_RETURN(e.src, AtLine(line_no, ParseIndex(f[3])));
      TMARK_ASSIGN_OR_RETURN(e.w,
                             AtLine(line_no, ParsePositiveFiniteDouble(f[4])));
      e.line = line_no;
      edge_recs.push_back(e);
    } else if (directive == "label") {
      if (f.size() < 2) {
        return AtLine(line_no,
                      ParseError("expected 'label <node> [<c> ...]'"));
      }
      LabelRec rec{};
      TMARK_ASSIGN_OR_RETURN(rec.node, AtLine(line_no, ParseIndex(f[1])));
      for (std::size_t t = 2; t < f.size(); ++t) {
        TMARK_ASSIGN_OR_RETURN(const std::size_t c,
                               AtLine(line_no, ParseIndex(f[t])));
        rec.classes.push_back(c);
      }
      rec.line = line_no;
      label_recs.push_back(std::move(rec));
    } else if (directive == "feat") {
      if (f.size() < 2) {
        return AtLine(
            line_no, ParseError("expected 'feat <node> <dim>:<value> ...'"));
      }
      FeatRec rec{};
      TMARK_ASSIGN_OR_RETURN(rec.node, AtLine(line_no, ParseIndex(f[1])));
      for (std::size_t t = 2; t < f.size(); ++t) {
        const std::string& tok = f[t];
        const std::size_t colon = tok.find(':');
        if (colon == std::string::npos) {
          return AtLine(line_no, ParseError("malformed feat token '" + tok +
                                            "' (expected <dim>:<value>)"));
        }
        TMARK_ASSIGN_OR_RETURN(
            const std::size_t dim,
            AtLine(line_no, ParseIndex(tok.substr(0, colon))));
        TMARK_ASSIGN_OR_RETURN(
            const double value,
            AtLine(line_no, ParseFiniteDouble(tok.substr(colon + 1))));
        if (value < 0.0) {
          return AtLine(line_no,
                        ParseError("negative feature value in '" + tok +
                                   "' (features are non-negative counts)"));
        }
        rec.entries.emplace_back(dim, value);
      }
      rec.line = line_no;
      feat_recs.push_back(std::move(rec));
    } else {
      return AtLine(line_no, ParseError("unknown directive '" + directive +
                                        "'"));
    }
  }
  if (in.bad()) {
    return DataLossError("read failed at " + LineCtx(line_no));
  }
  if (!have_nodes || !have_dim) {
    return ParseError("file missing nodes/feature_dim directives");
  }

  // Cross-record validation: every index is checked against the declared
  // shape here (directives may arrive in any order), so the builder calls
  // below cannot violate a contract.
  std::set<std::tuple<std::size_t, std::size_t, std::size_t>> seen_edges;
  for (const EdgeRec& e : edge_recs) {
    if (e.k >= relation_names.size()) {
      return AtLine(e.line,
                    ParseError("edge relation " + std::to_string(e.k) +
                               " out of range [0, " +
                               std::to_string(relation_names.size()) + ")"));
    }
    if (e.dst >= num_nodes || e.src >= num_nodes) {
      return AtLine(e.line, ParseError("edge endpoint out of range [0, " +
                                       std::to_string(num_nodes) + ")"));
    }
    if (!seen_edges.emplace(e.k, e.dst, e.src).second) {
      return AtLine(e.line,
                    ParseError("duplicate edge (" + std::to_string(e.k) +
                               ", " + std::to_string(e.dst) + ", " +
                               std::to_string(e.src) + ")"));
    }
  }
  for (const LabelRec& rec : label_recs) {
    if (rec.node >= num_nodes) {
      return AtLine(rec.line,
                    ParseError("label node " + std::to_string(rec.node) +
                               " out of range [0, " +
                               std::to_string(num_nodes) + ")"));
    }
    for (std::size_t c : rec.classes) {
      if (c >= class_names.size()) {
        return AtLine(rec.line,
                      ParseError("label class " + std::to_string(c) +
                                 " out of range [0, " +
                                 std::to_string(class_names.size()) + ")"));
      }
    }
  }
  for (const FeatRec& rec : feat_recs) {
    if (rec.node >= num_nodes) {
      return AtLine(rec.line,
                    ParseError("feat node " + std::to_string(rec.node) +
                               " out of range [0, " +
                               std::to_string(num_nodes) + ")"));
    }
    for (const auto& [dim, value] : rec.entries) {
      (void)value;
      if (dim >= feature_dim) {
        return AtLine(rec.line,
                      ParseError("feature dim " + std::to_string(dim) +
                                 " out of range [0, " +
                                 std::to_string(feature_dim) + ")"));
      }
    }
  }

  HinBuilder b(num_nodes, feature_dim);
  for (const std::string& name : relation_names) b.AddRelation(name);
  for (const std::string& name : class_names) b.AddClass(name);
  for (const EdgeRec& e : edge_recs) b.AddDirectedEdge(e.k, e.src, e.dst, e.w);
  for (const LabelRec& rec : label_recs) {
    for (std::size_t c : rec.classes) b.SetLabel(rec.node, c);
  }
  for (const FeatRec& rec : feat_recs) {
    for (const auto& [dim, value] : rec.entries) {
      b.AddFeature(rec.node, dim, value);
    }
  }
  return std::move(b).Build();
}

}  // namespace

void SaveHin(const Hin& hin, std::ostream& out) {
  out << kHeader << "\n";
  out << "nodes " << hin.num_nodes() << "\n";
  out << "feature_dim " << hin.feature_dim() << "\n";
  for (std::size_t k = 0; k < hin.num_relations(); ++k) {
    out << "relation " << hin.relation_name(k) << "\n";
  }
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    out << "class " << hin.class_name(c) << "\n";
  }
  out << std::setprecision(17);
  for (std::size_t k = 0; k < hin.num_relations(); ++k) {
    const la::SparseMatrix& r = hin.relation(k);
    for (std::size_t i = 0; i < r.rows(); ++i) {
      for (std::size_t p = r.row_ptr()[i]; p < r.row_ptr()[i + 1]; ++p) {
        out << "edge " << k << " " << i << " " << r.col_idx()[p] << " "
            << r.values()[p] << "\n";
      }
    }
  }
  for (std::size_t node = 0; node < hin.num_nodes(); ++node) {
    const std::vector<std::uint32_t>& ls = hin.labels(node);
    if (ls.empty()) continue;
    out << "label " << node;
    for (std::uint32_t c : ls) out << " " << c;
    out << "\n";
  }
  const la::SparseMatrix& f = hin.features();
  for (std::size_t node = 0; node < f.rows(); ++node) {
    if (f.row_ptr()[node] == f.row_ptr()[node + 1]) continue;
    out << "feat " << node;
    for (std::size_t p = f.row_ptr()[node]; p < f.row_ptr()[node + 1]; ++p) {
      out << " " << f.col_idx()[p] << ":" << f.values()[p];
    }
    out << "\n";
  }
}

Status SaveHinToFile(const Hin& hin, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return CountIoError(
        NotFoundError("cannot open " + path + " for writing"));
  }
  SaveHin(hin, out);
  out.flush();
  if (!out) {
    return CountIoError(DataLossError("write to " + path + " failed"));
  }
  return Status::Ok();
}

Result<Hin> LoadHin(std::istream& in) {
  Result<Hin> result = LoadHinImpl(in);
  if (!result.ok()) CountIoError(result.status());
  return result;
}

Result<Hin> LoadHinFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return CountIoError(NotFoundError("cannot open " + path));
  }
  Result<Hin> result = LoadHinImpl(in);
  if (!result.ok()) {
    return CountIoError(result.status().WithContext(path));
  }
  return result;
}

}  // namespace tmark::hin
