#include "tmark/hin/hin_io.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "tmark/common/check.h"
#include "tmark/common/string_util.h"
#include "tmark/hin/hin_builder.h"

namespace tmark::hin {
namespace {

constexpr char kHeader[] = "# tmark-hin v1";

}  // namespace

void SaveHin(const Hin& hin, std::ostream& out) {
  out << kHeader << "\n";
  out << "nodes " << hin.num_nodes() << "\n";
  out << "feature_dim " << hin.feature_dim() << "\n";
  for (std::size_t k = 0; k < hin.num_relations(); ++k) {
    out << "relation " << hin.relation_name(k) << "\n";
  }
  for (std::size_t c = 0; c < hin.num_classes(); ++c) {
    out << "class " << hin.class_name(c) << "\n";
  }
  out << std::setprecision(17);
  for (std::size_t k = 0; k < hin.num_relations(); ++k) {
    const la::SparseMatrix& r = hin.relation(k);
    for (std::size_t i = 0; i < r.rows(); ++i) {
      for (std::size_t p = r.row_ptr()[i]; p < r.row_ptr()[i + 1]; ++p) {
        out << "edge " << k << " " << i << " " << r.col_idx()[p] << " "
            << r.values()[p] << "\n";
      }
    }
  }
  for (std::size_t node = 0; node < hin.num_nodes(); ++node) {
    const std::vector<std::uint32_t>& ls = hin.labels(node);
    if (ls.empty()) continue;
    out << "label " << node;
    for (std::uint32_t c : ls) out << " " << c;
    out << "\n";
  }
  const la::SparseMatrix& f = hin.features();
  for (std::size_t node = 0; node < f.rows(); ++node) {
    if (f.row_ptr()[node] == f.row_ptr()[node + 1]) continue;
    out << "feat " << node;
    for (std::size_t p = f.row_ptr()[node]; p < f.row_ptr()[node + 1]; ++p) {
      out << " " << f.col_idx()[p] << ":" << f.values()[p];
    }
    out << "\n";
  }
}

bool SaveHinToFile(const Hin& hin, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  SaveHin(hin, out);
  return static_cast<bool>(out);
}

Hin LoadHin(std::istream& in) {
  std::string line;
  TMARK_CHECK_MSG(std::getline(in, line) && Strip(line) == kHeader,
                  "missing tmark-hin header");
  std::size_t num_nodes = 0;
  std::size_t feature_dim = 0;
  bool have_nodes = false;
  bool have_dim = false;
  std::vector<std::string> relation_names;
  std::vector<std::string> class_names;
  struct EdgeRec {
    std::size_t k, dst, src;
    double w;
  };
  std::vector<EdgeRec> edge_recs;
  struct LabelRec {
    std::size_t node;
    std::vector<std::size_t> classes;
  };
  std::vector<LabelRec> label_recs;
  struct FeatRec {
    std::size_t node;
    std::vector<std::pair<std::size_t, double>> entries;
  };
  std::vector<FeatRec> feat_recs;

  while (std::getline(in, line)) {
    line = Strip(line);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string directive;
    ls >> directive;
    if (directive == "nodes") {
      ls >> num_nodes;
      have_nodes = true;
    } else if (directive == "feature_dim") {
      ls >> feature_dim;
      have_dim = true;
    } else if (directive == "relation") {
      std::string name;
      std::getline(ls, name);
      relation_names.push_back(Strip(name));
    } else if (directive == "class") {
      std::string name;
      std::getline(ls, name);
      class_names.push_back(Strip(name));
    } else if (directive == "edge") {
      EdgeRec e{};
      ls >> e.k >> e.dst >> e.src >> e.w;
      TMARK_CHECK_MSG(!ls.fail(), "malformed edge line: " << line);
      edge_recs.push_back(e);
    } else if (directive == "label") {
      LabelRec rec{};
      ls >> rec.node;
      std::size_t c;
      while (ls >> c) rec.classes.push_back(c);
      label_recs.push_back(std::move(rec));
    } else if (directive == "feat") {
      FeatRec rec{};
      ls >> rec.node;
      std::string tok;
      while (ls >> tok) {
        const std::size_t colon = tok.find(':');
        TMARK_CHECK_MSG(colon != std::string::npos,
                        "malformed feat token: " << tok);
        rec.entries.emplace_back(std::stoul(tok.substr(0, colon)),
                                 std::stod(tok.substr(colon + 1)));
      }
      feat_recs.push_back(std::move(rec));
    } else {
      TMARK_CHECK_MSG(false, "unknown directive: " << directive);
    }
  }
  TMARK_CHECK_MSG(have_nodes && have_dim,
                  "file missing nodes/feature_dim directives");

  HinBuilder b(num_nodes, feature_dim);
  for (const std::string& name : relation_names) b.AddRelation(name);
  for (const std::string& name : class_names) b.AddClass(name);
  for (const EdgeRec& e : edge_recs) {
    TMARK_CHECK_MSG(e.k < relation_names.size(), "edge relation out of range");
    b.AddDirectedEdge(e.k, e.src, e.dst, e.w);
  }
  for (const LabelRec& rec : label_recs) {
    for (std::size_t c : rec.classes) b.SetLabel(rec.node, c);
  }
  for (const FeatRec& rec : feat_recs) {
    for (const auto& [dim, value] : rec.entries) {
      b.AddFeature(rec.node, dim, value);
    }
  }
  return std::move(b).Build();
}

Hin LoadHinFromFile(const std::string& path) {
  std::ifstream in(path);
  TMARK_CHECK_MSG(static_cast<bool>(in), "cannot open " << path);
  return LoadHin(in);
}

}  // namespace tmark::hin
