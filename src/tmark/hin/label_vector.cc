#include "tmark/hin/label_vector.h"

#include <algorithm>

#include "tmark/common/check.h"

namespace tmark::hin {

la::Vector InitialLabelVector(const Hin& hin,
                              const std::vector<std::size_t>& labeled,
                              std::size_t c) {
  TMARK_CHECK(c < hin.num_classes());
  la::Vector l(hin.num_nodes(), 0.0);
  std::size_t count = 0;
  for (std::size_t node : labeled) {
    if (hin.HasLabel(node, c)) {
      l[node] = 1.0;
      ++count;
    }
  }
  TMARK_CHECK_MSG(count > 0,
                  "no labeled node carries class " << hin.class_name(c));
  const double u = 1.0 / static_cast<double>(count);
  for (double& v : l) {
    if (v > 0.0) v = u;
  }
  return l;
}

la::Vector UpdatedLabelVector(const Hin& hin,
                              const std::vector<std::size_t>& labeled,
                              std::size_t c, const la::Vector& x,
                              double lambda) {
  la::Vector l;
  std::vector<bool> known;
  UpdatedLabelVectorInto(hin, labeled, c, x, lambda, &l, &known);
  return l;
}

void UpdatedLabelVectorInto(const Hin& hin,
                            const std::vector<std::size_t>& labeled,
                            std::size_t c, const la::Vector& x, double lambda,
                            la::Vector* l_out, std::vector<bool>* known_out) {
  TMARK_CHECK(l_out != nullptr && known_out != nullptr);
  TMARK_CHECK(c < hin.num_classes());
  TMARK_CHECK(x.size() == hin.num_nodes());
  TMARK_CHECK_MSG(lambda >= 0.0 && lambda <= 1.0,
                  "lambda must lie in [0, 1]");
  la::Vector& l = *l_out;
  std::vector<bool>& known = *known_out;
  l.assign(hin.num_nodes(), 0.0);
  known.assign(hin.num_nodes(), false);
  for (std::size_t node : labeled) known[node] = true;
  std::size_t count = 0;
  for (std::size_t node : labeled) {
    if (hin.HasLabel(node, c)) {
      l[node] = 1.0;
      ++count;
    }
  }
  // Accept highly confident predictions (Eq. 12): the threshold is relative
  // to the strongest *unlabeled* node, since labeled nodes hold most of the
  // restart mass and would otherwise make the cutoff unreachable. Only
  // meaningful when some unlabeled confidence exists (cutoff > 0 guards the
  // degenerate all-zero case).
  double xmax_unlabeled = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!known[i]) xmax_unlabeled = std::max(xmax_unlabeled, x[i]);
  }
  const double cutoff = lambda * xmax_unlabeled;
  if (cutoff > 0.0) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (!known[i] && x[i] > cutoff) {
        l[i] = 1.0;
        ++count;
      }
    }
  }
  TMARK_CHECK(count > 0);
  const double u = 1.0 / static_cast<double>(count);
  for (double& v : l) {
    if (v > 0.0) v = u;
  }
}

}  // namespace tmark::hin
