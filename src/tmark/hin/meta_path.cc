#include "tmark/hin/meta_path.h"

#include "tmark/common/check.h"

namespace tmark::hin {

la::SparseMatrix ComposeMetaPath(const Hin& hin,
                                 const std::vector<std::size_t>& path) {
  TMARK_CHECK_MSG(!path.empty(), "meta-path must have at least one relation");
  la::SparseMatrix out = hin.relation(path[0]);
  for (std::size_t step = 1; step < path.size(); ++step) {
    out = out.MatMul(hin.relation(path[step]));
  }
  return out;
}

la::SparseMatrix BinarizeLinks(const la::SparseMatrix& links) {
  la::SparseMatrix out = links;
  for (double& v : out.mutable_values()) v = v > 0.0 ? 1.0 : 0.0;
  return out;
}

std::vector<la::SparseMatrix> AllLength2MetaPaths(const Hin& hin,
                                                  std::size_t min_links,
                                                  std::size_t max_paths) {
  std::vector<la::SparseMatrix> out;
  for (std::size_t k1 = 0; k1 < hin.num_relations() && out.size() < max_paths;
       ++k1) {
    for (std::size_t k2 = 0;
         k2 < hin.num_relations() && out.size() < max_paths; ++k2) {
      la::SparseMatrix composed =
          hin.relation(k1).MatMul(hin.relation(k2));
      if (composed.NumNonZeros() >= min_links) {
        out.push_back(std::move(composed));
      }
    }
  }
  return out;
}

}  // namespace tmark::hin
