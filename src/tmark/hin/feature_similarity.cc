#include "tmark/hin/feature_similarity.h"

#include <cmath>

#include "tmark/common/check.h"
#include "tmark/obs/metrics.h"
#include "tmark/obs/trace.h"
#include "tmark/parallel/parallel_for.h"

namespace tmark::hin {

FeatureSimilarity FeatureSimilarity::Build(const la::SparseMatrix& features,
                                           SimilarityKernel kernel) {
  TMARK_CHECK_MSG(features.IsNonNegative(),
                  "feature similarity assumes non-negative features");
  obs::TraceSpan span("hin.similarity.build");
  obs::ScopedTimer timer("hin.similarity.build_ms");
  const std::size_t n = features.rows();
  FeatureSimilarity fs;
  fs.kernel_ = kernel;

  // Kernel-specific transform G such that C = G G^T.
  la::SparseMatrix transformed = features;
  if (kernel == SimilarityKernel::kBinaryCosine) {
    for (double& v : transformed.mutable_values()) v = v > 0.0 ? 1.0 : 0.0;
  } else if (kernel == SimilarityKernel::kTfIdfCosine) {
    // idf_j = log(1 + n / df_j) where df_j counts rows containing word j.
    la::Vector df(features.cols(), 0.0);
    for (std::size_t p = 0; p < features.values().size(); ++p) {
      if (features.values()[p] > 0.0) df[features.col_idx()[p]] += 1.0;
    }
    la::Vector idf(features.cols(), 0.0);
    for (std::size_t j = 0; j < features.cols(); ++j) {
      if (df[j] > 0.0) {
        idf[j] = std::log(1.0 + static_cast<double>(n) / df[j]);
      }
    }
    transformed = transformed.ScaleColumns(idf);
  }

  // Row-L2 normalization (skipped for the raw dot-product kernel).
  la::Vector inv_norm(n, 0.0);
  {
    la::Vector sq(n, 0.0);
    // Disjoint per-row squared norms: row-partitioning is bit-identical.
    parallel::ParallelForRanges(
        n, /*grain=*/2048, [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            for (std::size_t p = transformed.row_ptr()[i];
                 p < transformed.row_ptr()[i + 1]; ++p) {
              sq[i] += transformed.values()[p] * transformed.values()[p];
            }
          }
        });
    for (std::size_t i = 0; i < n; ++i) {
      if (sq[i] > 0.0) {
        inv_norm[i] = kernel == SimilarityKernel::kDotProduct
                          ? 1.0
                          : 1.0 / std::sqrt(sq[i]);
      } else {
        fs.dangling_.push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
  fs.fhat_ = transformed.ScaleRows(inv_norm);

  // Column sums of C = F_hat F_hat^T: c = F_hat (F_hat^T 1).
  la::Vector ones(n, 1.0);
  la::Vector t = fs.fhat_.TransposeMatVec(ones);
  fs.col_sums_ = fs.fhat_.MatVec(t);
  // Numerical floor: nodes with features have c_ii = 1, so col sum >= 1.
  for (std::uint32_t j : fs.dangling_) fs.col_sums_[j] = 0.0;
  if (obs::MetricsEnabled()) {
    obs::IncrCounter("hin.similarity.builds");
    obs::SetGauge("hin.similarity.nnz",
                  static_cast<double>(fs.fhat_.NumNonZeros()));
    obs::SetGauge("hin.similarity.dangling_nodes",
                  static_cast<double>(fs.dangling_.size()));
  }
  if (span.active()) {
    span.AddField("nodes", n);
    span.AddField("nnz", fs.fhat_.NumNonZeros());
  }
  return fs;
}

la::Vector FeatureSimilarity::Apply(const la::Vector& x) const {
  const std::size_t n = num_nodes();
  TMARK_CHECK(x.size() == n);
  la::Vector u(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    if (col_sums_[j] > 0.0) u[j] = x[j] / col_sums_[j];
  }
  la::Vector t = fhat_.TransposeMatVec(u);
  la::Vector y = fhat_.MatVec(t);
  // Dangling nodes spread their mass uniformly.
  double dangling_mass = 0.0;
  for (std::uint32_t j : dangling_) dangling_mass += x[j];
  if (dangling_mass != 0.0) {
    const double add = dangling_mass / static_cast<double>(n);
    for (double& v : y) v += add;
  }
  return y;
}

void FeatureSimilarity::ApplyPanel(const la::DenseMatrix& x,
                                   std::size_t width, la::DenseMatrix* y,
                                   la::PanelWorkspace* ws) const {
  const std::size_t n = num_nodes();
  TMARK_CHECK(y != nullptr && ws != nullptr);
  TMARK_CHECK(x.rows() == n && y->rows() == n);
  TMARK_CHECK(x.cols() == y->cols() && width <= x.cols());
  const std::size_t stride = x.cols();
  // Same three steps as Apply, on panels: u = x ./ colsums (0 on dangling
  // columns), t = F_hat^T u, y = F_hat t, then the uniform dangling spread.
  la::DenseMatrix& u = ws->Panel(0, n, stride);
  for (std::size_t j = 0; j < n; ++j) {
    const double* xrow = x.RowPtr(j);
    double* urow = u.RowPtr(j);
    if (col_sums_[j] > 0.0) {
      const double cs = col_sums_[j];
      for (std::size_t c = 0; c < width; ++c) urow[c] = xrow[c] / cs;
    } else {
      for (std::size_t c = 0; c < width; ++c) urow[c] = 0.0;
    }
  }
  la::DenseMatrix& t = ws->Panel(1, fhat_.cols(), stride);
  fhat_.TransposeMatMulPanel(u, width, &t, ws);
  fhat_.MatMulPanel(t, width, y);
  la::Vector& mass = ws->Buffer(0, width);
  bool any = false;
  for (std::uint32_t j : dangling_) {
    const double* xrow = x.RowPtr(j);
    for (std::size_t c = 0; c < width; ++c) {
      mass[c] += xrow[c];
      any |= mass[c] != 0.0;
    }
  }
  if (!any) return;
  // A zero-mass column receives + 0.0, matching Apply's skip.
  for (std::size_t c = 0; c < width; ++c) {
    mass[c] /= static_cast<double>(n);
  }
  for (std::size_t i = 0; i < n; ++i) {
    double* yrow = y->RowPtr(i);
    for (std::size_t c = 0; c < width; ++c) yrow[c] += mass[c];
  }
}

la::DenseMatrix FeatureSimilarity::Dense() const {
  const std::size_t n = num_nodes();
  la::DenseMatrix w(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    la::Vector e(n, 0.0);
    e[j] = 1.0;
    const la::Vector col = Apply(e);
    for (std::size_t i = 0; i < n; ++i) w.At(i, j) = col[i];
  }
  return w;
}

double FeatureSimilarity::Cosine(std::size_t i, std::size_t j) const {
  const std::size_t n = num_nodes();
  TMARK_CHECK(i < n && j < n);
  // Dot product of the two normalized rows (both sorted by column index).
  double s = 0.0;
  std::size_t pi = fhat_.row_ptr()[i];
  std::size_t pj = fhat_.row_ptr()[j];
  const std::size_t ei = fhat_.row_ptr()[i + 1];
  const std::size_t ej = fhat_.row_ptr()[j + 1];
  while (pi < ei && pj < ej) {
    const std::uint32_t ci = fhat_.col_idx()[pi];
    const std::uint32_t cj = fhat_.col_idx()[pj];
    if (ci == cj) {
      s += fhat_.values()[pi] * fhat_.values()[pj];
      ++pi;
      ++pj;
    } else if (ci < cj) {
      ++pi;
    } else {
      ++pj;
    }
  }
  return s;
}

}  // namespace tmark::hin
