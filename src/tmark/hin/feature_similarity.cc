#include "tmark/hin/feature_similarity.h"

#include <algorithm>
#include <cmath>

#include "tmark/common/check.h"
#include "tmark/la/microkernel.h"
#include "tmark/obs/metrics.h"
#include "tmark/obs/prof.h"
#include "tmark/obs/trace.h"
#include "tmark/parallel/parallel_for.h"

namespace tmark::hin {

FeatureSimilarity FeatureSimilarity::Build(const la::SparseMatrix& features,
                                           SimilarityKernel kernel) {
  TMARK_CHECK_MSG(features.IsNonNegative(),
                  "feature similarity assumes non-negative features");
  obs::TraceSpan span("hin.similarity.build");
  obs::ScopedTimer timer("hin.similarity.build_ms");
  const std::size_t n = features.rows();
  FeatureSimilarity fs;
  fs.kernel_ = kernel;

  // Kernel-specific transform G such that C = G G^T. Only the transforming
  // kernels materialize a copy of the feature matrix; kCosine/kDotProduct
  // read `features` directly (the row-scale below makes the one copy).
  la::SparseMatrix transformed;
  const la::SparseMatrix* source = &features;
  if (kernel == SimilarityKernel::kBinaryCosine) {
    transformed = features;
    for (double& v : transformed.mutable_values()) v = v > 0.0 ? 1.0 : 0.0;
    source = &transformed;
  } else if (kernel == SimilarityKernel::kTfIdfCosine) {
    // idf_j = log(1 + n / df_j) where df_j counts rows containing word j.
    la::Vector df(features.cols(), 0.0);
    for (std::size_t p = 0; p < features.values().size(); ++p) {
      if (features.values()[p] > 0.0) df[features.col_idx()[p]] += 1.0;
    }
    la::Vector idf(features.cols(), 0.0);
    for (std::size_t j = 0; j < features.cols(); ++j) {
      if (df[j] > 0.0) {
        idf[j] = std::log(1.0 + static_cast<double>(n) / df[j]);
      }
    }
    transformed = features.ScaleColumns(idf);
    source = &transformed;
  }

  // Row-L2 normalization (skipped for the raw dot-product kernel).
  la::Vector inv_norm(n, 0.0);
  {
    la::Vector sq(n, 0.0);
    // Disjoint per-row squared norms: row-partitioning is bit-identical.
    parallel::ParallelForRanges(
        n, /*grain=*/2048, [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            for (std::size_t p = source->row_ptr()[i];
                 p < source->row_ptr()[i + 1]; ++p) {
              sq[i] += source->values()[p] * source->values()[p];
            }
          }
        });
    for (std::size_t i = 0; i < n; ++i) {
      if (sq[i] > 0.0) {
        inv_norm[i] = kernel == SimilarityKernel::kDotProduct
                          ? 1.0
                          : 1.0 / std::sqrt(sq[i]);
      } else {
        fs.dangling_.push_back(static_cast<std::uint32_t>(i));
      }
    }
  }
  fs.fhat_ = source->ScaleRows(inv_norm);

  // Column sums of C = F_hat F_hat^T: c = F_hat (F_hat^T 1). F_hat^T 1 is
  // just the column sums of F_hat, computed serially in stored order — no
  // temporary ones-vector and thread-count independent.
  la::Vector t = fs.fhat_.ColumnSums();
  fs.col_sums_ = fs.fhat_.MatVec(t);
  // Numerical floor: nodes with features have c_ii = 1, so col sum >= 1.
  for (std::uint32_t j : fs.dangling_) fs.col_sums_[j] = 0.0;
  if (obs::MetricsEnabled()) {
    obs::IncrCounter("hin.similarity.builds");
    obs::SetGauge("hin.similarity.nnz",
                  static_cast<double>(fs.fhat_.NumNonZeros()));
    obs::SetGauge("hin.similarity.dangling_nodes",
                  static_cast<double>(fs.dangling_.size()));
  }
  if (span.active()) {
    span.AddField("nodes", n);
    span.AddField("nnz", fs.fhat_.NumNonZeros());
  }
  return fs;
}

std::size_t FeatureSimilarity::PatchRows(
    const la::SparseMatrix& features,
    const std::vector<std::uint32_t>& rows) {
  TMARK_CHECK_MSG(features.IsNonNegative(),
                  "feature similarity assumes non-negative features");
  const std::size_t n = num_nodes();
  TMARK_CHECK(features.rows() == n && features.cols() == fhat_.cols());
  if (rows.empty()) return 0;
  if (kernel_ == SimilarityKernel::kTfIdfCosine) {
    *this = Build(features, kernel_);
    return rows.size();
  }
  obs::ScopedTimer timer("hin.similarity.patch_ms");
  std::vector<std::uint32_t> targets(rows);
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  std::vector<la::RowEdit> edits;
  edits.reserve(targets.size());
  for (std::uint32_t i : targets) {
    TMARK_CHECK(i < n);
    const std::size_t begin = features.row_ptr()[i];
    const std::size_t end = features.row_ptr()[i + 1];
    la::RowEdit e;
    e.row = i;
    e.cols.assign(features.col_idx().begin() + begin,
                  features.col_idx().begin() + end);
    e.values.reserve(end - begin);
    // Kernel transform + squared norm, in stored order — Build's per-row
    // computation verbatim.
    double sq = 0.0;
    for (std::size_t p = begin; p < end; ++p) {
      double v = features.values()[p];
      if (kernel_ == SimilarityKernel::kBinaryCosine) v = v > 0.0 ? 1.0 : 0.0;
      sq += v * v;
      e.values.push_back(v);
    }
    double inv = 0.0;
    if (sq > 0.0) {
      inv = kernel_ == SimilarityKernel::kDotProduct ? 1.0
                                                     : 1.0 / std::sqrt(sq);
    }
    for (double& v : e.values) v *= inv;
    const bool now_dangling = !(sq > 0.0);
    const auto it = std::lower_bound(dangling_.begin(), dangling_.end(), i);
    const bool was_dangling = it != dangling_.end() && *it == i;
    if (now_dangling && !was_dangling) {
      dangling_.insert(it, i);
    } else if (!now_dangling && was_dangling) {
      dangling_.erase(it);
    }
    edits.push_back(std::move(e));
  }
  fhat_.ApplyRowEdits(std::move(edits));
  // The column sums couple all rows through F_hat^T 1, so they recompute
  // wholesale — one O(nnz F) pass over the patched F_hat, which matches a
  // rebuilt operator bit for bit because F_hat itself does.
  la::Vector t = fhat_.ColumnSums();
  col_sums_ = fhat_.MatVec(t);
  for (std::uint32_t j : dangling_) col_sums_[j] = 0.0;
  if (obs::MetricsEnabled()) {
    obs::SetGauge("hin.similarity.nnz",
                  static_cast<double>(fhat_.NumNonZeros()));
    obs::SetGauge("hin.similarity.dangling_nodes",
                  static_cast<double>(dangling_.size()));
  }
  return targets.size();
}

la::Vector FeatureSimilarity::Apply(const la::Vector& x) const {
  la::PanelWorkspace ws;
  la::Vector y;
  ApplyInto(x, &ws, &y);
  return y;
}

void FeatureSimilarity::ApplyInto(const la::Vector& x, la::PanelWorkspace* ws,
                                  la::Vector* y) const {
  TMARK_PROF_REGION("hin.similarity.apply");
  const std::size_t n = num_nodes();
  TMARK_CHECK(ws != nullptr && y != nullptr && x.size() == n);
  la::Vector& u = ws->Buffer(0, n);
  for (std::size_t j = 0; j < n; ++j) {
    if (col_sums_[j] > 0.0) u[j] = x[j] / col_sums_[j];
  }
  la::Vector& t = ws->Buffer(1, fhat_.cols());
  fhat_.TransposeMatVecInto(u, &t, ws);
  fhat_.MatVecInto(t, y);
  // Dangling nodes spread their mass uniformly.
  double dangling_mass = 0.0;
  for (std::uint32_t j : dangling_) dangling_mass += x[j];
  if (dangling_mass != 0.0) {
    const double add = dangling_mass / static_cast<double>(n);
    for (double& v : *y) v += add;
  }
}

void FeatureSimilarity::ApplyPanel(const la::DenseMatrix& x,
                                   std::size_t width, la::DenseMatrix* y,
                                   la::PanelWorkspace* ws) const {
  TMARK_PROF_REGION("hin.similarity.apply_panel");
  const std::size_t n = num_nodes();
  TMARK_CHECK(y != nullptr && ws != nullptr);
  TMARK_CHECK(x.rows() == n && y->rows() == n);
  TMARK_CHECK(x.cols() == y->cols() && width <= x.cols());
  const std::size_t stride = x.cols();
  // Same three steps as Apply, on panels: u = x ./ colsums (0 on dangling
  // columns), t = F_hat^T u, y = F_hat t, then the uniform dangling spread.
  la::DenseMatrix& u = ws->Panel(0, n, stride);
  for (std::size_t j = 0; j < n; ++j) {
    const double* xrow = x.RowPtr(j);
    double* urow = u.RowPtr(j);
    if (col_sums_[j] > 0.0) {
      la::mk::DivScalar(urow, xrow, col_sums_[j], width);
    } else {
      la::mk::Zero(urow, width);
    }
  }
  la::DenseMatrix& t = ws->Panel(1, fhat_.cols(), stride);
  fhat_.TransposeMatMulPanel(u, width, &t, ws);
  fhat_.MatMulPanel(t, width, y);
  la::Vector& mass = ws->Buffer(0, width);
  for (std::uint32_t j : dangling_) {
    la::mk::Add(mass.data(), x.RowPtr(j), width);
  }
  // Apply tests the fully accumulated dangling mass; the same end-of-sum
  // check here keeps each column's control flow identical to the
  // single-vector path. A zero-mass column receives + 0.0 either way.
  if (!la::mk::AnyNonZero(mass.data(), width)) return;
  for (std::size_t c = 0; c < width; ++c) {
    mass[c] /= static_cast<double>(n);
  }
  for (std::size_t i = 0; i < n; ++i) {
    la::mk::Add(y->RowPtr(i), mass.data(), width);
  }
}

la::DenseMatrix FeatureSimilarity::Dense() const {
  const std::size_t n = num_nodes();
  la::DenseMatrix w(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    la::Vector e(n, 0.0);
    e[j] = 1.0;
    const la::Vector col = Apply(e);
    for (std::size_t i = 0; i < n; ++i) w.At(i, j) = col[i];
  }
  return w;
}

double FeatureSimilarity::Cosine(std::size_t i, std::size_t j) const {
  const std::size_t n = num_nodes();
  TMARK_CHECK(i < n && j < n);
  // Dot product of the two normalized rows (both sorted by column index).
  double s = 0.0;
  std::size_t pi = fhat_.row_ptr()[i];
  std::size_t pj = fhat_.row_ptr()[j];
  const std::size_t ei = fhat_.row_ptr()[i + 1];
  const std::size_t ej = fhat_.row_ptr()[j + 1];
  while (pi < ei && pj < ej) {
    const std::uint32_t ci = fhat_.col_idx()[pi];
    const std::uint32_t cj = fhat_.col_idx()[pj];
    if (ci == cj) {
      s += fhat_.values()[pi] * fhat_.values()[pj];
      ++pi;
      ++pj;
    } else if (ci < cj) {
      ++pi;
    } else {
      ++pj;
    }
  }
  return s;
}

}  // namespace tmark::hin
