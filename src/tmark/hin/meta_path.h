#ifndef TMARK_HIN_META_PATH_H_
#define TMARK_HIN_META_PATH_H_

#include <cstddef>
#include <vector>

#include "tmark/hin/hin.h"
#include "tmark/la/sparse_matrix.h"

namespace tmark::hin {

/// Composes a meta-path over the HIN's relations: the returned matrix is the
/// product relation(path[0]) * relation(path[1]) * ... (left-to-right), so
/// entry (i, j) counts the number of path instances from node j to node i
/// through the given relation sequence. Used by the Hcc baseline (Kong et
/// al. 2012), which views meta-path linkages as additional link types.
la::SparseMatrix ComposeMetaPath(const Hin& hin,
                                 const std::vector<std::size_t>& path);

/// Binarizes a composed meta-path matrix: every positive entry becomes 1.
la::SparseMatrix BinarizeLinks(const la::SparseMatrix& links);

/// All length-2 meta-paths (k1, k2) whose composition has at least
/// `min_links` non-zeros, as composed matrices. Capped at `max_paths`
/// results to keep baseline cost bounded on HINs with many relations.
std::vector<la::SparseMatrix> AllLength2MetaPaths(const Hin& hin,
                                                  std::size_t min_links,
                                                  std::size_t max_paths);

}  // namespace tmark::hin

#endif  // TMARK_HIN_META_PATH_H_
