#ifndef TMARK_HIN_HIN_H_
#define TMARK_HIN_HIN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tmark/common/status.h"
#include "tmark/la/sparse_matrix.h"
#include "tmark/tensor/sparse_tensor3.h"

namespace tmark::hin {

class HinDelta;

/// A Heterogeneous Information Network over one target node type.
///
/// Following the paper's experimental setup, the heterogeneity lives in the
/// links: the network has `n` target nodes (authors, movies, images,
/// publications), `m` *typed* relations among them (one adjacency matrix per
/// link type — conferences, directors, tags, ...), a sparse bag-of-words
/// feature matrix (n x d), and per-node label sets over `q` classes
/// (singleton sets for single-label tasks, larger sets for ACM-style
/// multi-label tasks).
///
/// Instances are assembled with HinBuilder and then stay put, except for
/// ApplyDelta, which splices a validated batch of mutations (hin_delta.h)
/// into the CSR arrays in place.
class Hin {
 public:
  Hin() = default;

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_relations() const { return relations_.size(); }
  std::size_t num_classes() const { return class_names_.size(); }
  std::size_t feature_dim() const { return features_.cols(); }

  /// Adjacency matrix of the k-th relation; entry (i, j) > 0 means node j
  /// links to node i through relation k (column = source, row = destination,
  /// matching the tensor convention of Sec. 3.1).
  const la::SparseMatrix& relation(std::size_t k) const;

  /// Human-readable name of the k-th relation (e.g. "SIGMOD", "co-author").
  const std::string& relation_name(std::size_t k) const;

  /// Human-readable name of class c (e.g. "DB", "thriller").
  const std::string& class_name(std::size_t c) const;

  /// Sparse n x d bag-of-words node features.
  const la::SparseMatrix& features() const { return features_; }

  /// Ground-truth label set of a node (sorted, possibly empty).
  const std::vector<std::uint32_t>& labels(std::size_t node) const;

  /// True if `node` carries class `c`.
  bool HasLabel(std::size_t node, std::size_t c) const;

  /// Primary (first) label of a node; requires a non-empty label set.
  std::uint32_t PrimaryLabel(std::size_t node) const;

  /// Assembles the (n x n x m) adjacency tensor A of Sec. 3.1.
  tensor::SparseTensor3 ToAdjacencyTensor() const;

  /// Single graph summing all relations (used by aggregate-link baselines).
  la::SparseMatrix AggregatedRelation() const;

  /// Total number of stored link entries across all relations.
  std::size_t NumLinks() const;

  /// Indices of nodes whose label set is non-empty.
  std::vector<std::size_t> NodesWithLabels() const;

  /// Applies a mutation batch in place. The batch is validated first
  /// (HinDelta::Validate); on any error the network is left untouched and
  /// the typed Status is returned. Defined in hin_delta.cc.
  Status ApplyDelta(const HinDelta& delta);

 private:
  friend class HinBuilder;

  std::size_t num_nodes_ = 0;
  std::vector<la::SparseMatrix> relations_;
  std::vector<std::string> relation_names_;
  std::vector<std::string> class_names_;
  la::SparseMatrix features_;
  std::vector<std::vector<std::uint32_t>> labels_;
};

}  // namespace tmark::hin

#endif  // TMARK_HIN_HIN_H_
