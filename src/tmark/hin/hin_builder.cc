#include "tmark/hin/hin_builder.h"

#include <algorithm>

#include "tmark/common/check.h"

namespace tmark::hin {

HinBuilder::HinBuilder(std::size_t num_nodes, std::size_t feature_dim)
    : num_nodes_(num_nodes),
      feature_dim_(feature_dim),
      labels_(num_nodes) {}

std::size_t HinBuilder::AddRelation(const std::string& name) {
  relation_names_.push_back(name);
  edges_.emplace_back();
  return relation_names_.size() - 1;
}

std::size_t HinBuilder::AddClass(const std::string& name) {
  class_names_.push_back(name);
  return class_names_.size() - 1;
}

void HinBuilder::ReserveEdges(std::size_t k, std::size_t count) {
  TMARK_CHECK(k < edges_.size());
  edges_[k].reserve(count);
}

void HinBuilder::ReserveFeatures(std::size_t count) {
  feature_triplets_.reserve(count);
}

void HinBuilder::AddDirectedEdge(std::size_t k, std::size_t src,
                                 std::size_t dst, double weight) {
  TMARK_CHECK(k < edges_.size());
  TMARK_CHECK(src < num_nodes_ && dst < num_nodes_);
  TMARK_CHECK_MSG(weight > 0.0, "edge weights must be positive");
  // Tensor convention: A[i, j, k] with j the source; CSR row = i = dst.
  edges_[k].push_back({static_cast<std::uint32_t>(dst),
                       static_cast<std::uint32_t>(src), weight});
}

void HinBuilder::AddUndirectedEdge(std::size_t k, std::size_t a,
                                   std::size_t b, double weight) {
  AddDirectedEdge(k, a, b, weight);
  if (a != b) AddDirectedEdge(k, b, a, weight);
}

void HinBuilder::SetLabel(std::size_t node, std::size_t c) {
  TMARK_CHECK(node < num_nodes_);
  TMARK_CHECK(c < class_names_.size());
  std::vector<std::uint32_t>& ls = labels_[node];
  const auto it = std::lower_bound(ls.begin(), ls.end(),
                                   static_cast<std::uint32_t>(c));
  if (it == ls.end() || *it != c) ls.insert(it, static_cast<std::uint32_t>(c));
}

void HinBuilder::AddFeature(std::size_t node, std::size_t dim, double value) {
  TMARK_CHECK(node < num_nodes_ && dim < feature_dim_);
  feature_triplets_.push_back({static_cast<std::uint32_t>(node),
                               static_cast<std::uint32_t>(dim), value});
}

std::size_t HinBuilder::EdgeCount(std::size_t k) const {
  TMARK_CHECK(k < edges_.size());
  return edges_[k].size();
}

Hin HinBuilder::Build() && {
  Hin hin;
  hin.num_nodes_ = num_nodes_;
  hin.relation_names_ = std::move(relation_names_);
  hin.class_names_ = std::move(class_names_);
  hin.relations_.reserve(edges_.size());
  for (std::vector<la::Triplet>& e : edges_) {
    hin.relations_.push_back(
        la::SparseMatrix::FromTriplets(num_nodes_, num_nodes_, std::move(e)));
  }
  hin.features_ = la::SparseMatrix::FromTriplets(num_nodes_, feature_dim_,
                                                 std::move(feature_triplets_));
  hin.labels_ = std::move(labels_);
  return hin;
}

}  // namespace tmark::hin
