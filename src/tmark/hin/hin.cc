#include "tmark/hin/hin.h"

#include <algorithm>

#include "tmark/common/check.h"

namespace tmark::hin {

const la::SparseMatrix& Hin::relation(std::size_t k) const {
  TMARK_CHECK(k < relations_.size());
  return relations_[k];
}

const std::string& Hin::relation_name(std::size_t k) const {
  TMARK_CHECK(k < relation_names_.size());
  return relation_names_[k];
}

const std::string& Hin::class_name(std::size_t c) const {
  TMARK_CHECK(c < class_names_.size());
  return class_names_[c];
}

const std::vector<std::uint32_t>& Hin::labels(std::size_t node) const {
  TMARK_CHECK(node < labels_.size());
  return labels_[node];
}

bool Hin::HasLabel(std::size_t node, std::size_t c) const {
  const std::vector<std::uint32_t>& ls = labels(node);
  return std::binary_search(ls.begin(), ls.end(),
                            static_cast<std::uint32_t>(c));
}

std::uint32_t Hin::PrimaryLabel(std::size_t node) const {
  const std::vector<std::uint32_t>& ls = labels(node);
  TMARK_CHECK_MSG(!ls.empty(), "node " << node << " has no label");
  return ls.front();
}

tensor::SparseTensor3 Hin::ToAdjacencyTensor() const {
  return tensor::SparseTensor3::FromSlices(relations_);
}

la::SparseMatrix Hin::AggregatedRelation() const {
  la::SparseMatrix agg(num_nodes_, num_nodes_);
  for (const la::SparseMatrix& r : relations_) agg = agg.Add(r);
  return agg;
}

std::size_t Hin::NumLinks() const {
  std::size_t total = 0;
  for (const la::SparseMatrix& r : relations_) total += r.NumNonZeros();
  return total;
}

std::vector<std::size_t> Hin::NodesWithLabels() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    if (!labels_[i].empty()) out.push_back(i);
  }
  return out;
}

}  // namespace tmark::hin
