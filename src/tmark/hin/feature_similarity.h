#ifndef TMARK_HIN_FEATURE_SIMILARITY_H_
#define TMARK_HIN_FEATURE_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "tmark/hin/similarity_kernel.h"
#include "tmark/la/dense_matrix.h"
#include "tmark/la/sparse_matrix.h"
#include "tmark/la/vector_ops.h"

namespace tmark::hin {

/// The feature-based transition operator W of Sec. 4.2: the column-normalized
/// cosine-similarity matrix of node features,
///
///   C[i,j] = cos(f_i, f_j),   W = C * diag(colsums(C))^{-1}.
///
/// The n x n matrix is never materialized. With F_hat the row-L2-normalized
/// feature matrix, C = F_hat * F_hat^T, so
///
///   W x = F_hat * (F_hat^T * (x ./ colsums)),
///
/// two sparse passes costing O(nnz(F)) per application. Column sums are
/// likewise computed once as F_hat * (F_hat^T * 1). Nodes with all-zero
/// features produce zero columns; those are treated as dangling and mapped to
/// the uniform column 1/n, keeping W column-stochastic.
class FeatureSimilarity {
 public:
  /// Builds the operator from a non-negative n x d feature matrix. All
  /// kernels share the factorized form C = G G^T for a (kernel-dependent)
  /// transformed feature matrix G, so Apply stays O(nnz(F)).
  static FeatureSimilarity Build(
      const la::SparseMatrix& features,
      SimilarityKernel kernel = SimilarityKernel::kCosine);

  /// Incrementally refreshes the operator after the listed feature rows
  /// were replaced (`features` is the POST-mutation matrix). The row-local
  /// kernels (cosine, binary cosine, dot product) re-transform and
  /// re-normalize only those F_hat rows and then recompute the column sums
  /// in Build's exact serial accumulation order, so the patched operator is
  /// bit-identical to Build(features, kernel()). The tf-idf kernel's global
  /// document frequencies couple every row, so it falls back to a full
  /// rebuild. Returns the number of F_hat rows rewritten.
  std::size_t PatchRows(const la::SparseMatrix& features,
                        const std::vector<std::uint32_t>& rows);

  std::size_t num_nodes() const { return col_sums_.size(); }

  /// Applies W to x (length n). Maps probability vectors to probability
  /// vectors.
  la::Vector Apply(const la::Vector& x) const;

  /// Apply into a caller-owned vector, drawing the u/t intermediates and
  /// scatter partials from `ws` (warm calls allocate nothing).
  void ApplyInto(const la::Vector& x, la::PanelWorkspace* ws,
                 la::Vector* y) const;

  /// Panel form (la/panel.h): y(:, c) = W x(:, c) for c in [0, width),
  /// streaming F_hat's structure once for all columns; bit-identical per
  /// column to Apply. `ws` supplies the n x q and d x q scratch panels and
  /// the scatter partials.
  void ApplyPanel(const la::DenseMatrix& x, std::size_t width,
                  la::DenseMatrix* y, la::PanelWorkspace* ws) const;

  /// W[i][j] materialized densely — small inputs / tests only.
  la::DenseMatrix Dense() const;

  /// Pairwise similarity under the chosen kernel (exact cosine for the
  /// default kernel; inner product of transformed rows in general).
  double Cosine(std::size_t i, std::size_t j) const;

  /// Node indices whose feature vector is all-zero (dangling columns of W).
  const std::vector<std::uint32_t>& dangling_nodes() const {
    return dangling_;
  }

  /// The kernel this operator was built with.
  SimilarityKernel kernel() const { return kernel_; }

 private:
  FeatureSimilarity() = default;

  SimilarityKernel kernel_ = SimilarityKernel::kCosine;
  la::SparseMatrix fhat_;     ///< Kernel-transformed features G (n x d).
  la::Vector col_sums_;       ///< colsums(C); 0 for dangling nodes.
  std::vector<std::uint32_t> dangling_;
};

}  // namespace tmark::hin

#endif  // TMARK_HIN_FEATURE_SIMILARITY_H_
