#include "tmark/la/dense_matrix.h"

#include <algorithm>
#include <cmath>

#include "tmark/common/check.h"

namespace tmark::la {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double init)
    : rows_(rows), cols_(cols), data_(rows * cols, init) {}

DenseMatrix DenseMatrix::FromRows(
    const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return DenseMatrix();
  DenseMatrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    TMARK_CHECK_MSG(rows[r].size() == m.cols_, "ragged rows in FromRows");
    std::copy(rows[r].begin(), rows[r].end(), m.RowPtr(r));
  }
  return m;
}

DenseMatrix DenseMatrix::Identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Vector DenseMatrix::Row(std::size_t r) const {
  TMARK_CHECK(r < rows_);
  return Vector(RowPtr(r), RowPtr(r) + cols_);
}

Vector DenseMatrix::Col(std::size_t c) const {
  TMARK_CHECK(c < cols_);
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = At(r, c);
  return out;
}

Vector DenseMatrix::MatVec(const Vector& x) const {
  TMARK_CHECK(x.size() == cols_);
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

Vector DenseMatrix::TransposeMatVec(const Vector& x) const {
  TMARK_CHECK(x.size() == rows_);
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

DenseMatrix DenseMatrix::MatMul(const DenseMatrix& other) const {
  TMARK_CHECK(cols_ == other.rows_);
  DenseMatrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = At(r, k);
      if (a == 0.0) continue;
      const double* brow = other.RowPtr(k);
      double* orow = out.RowPtr(r);
      for (std::size_t c = 0; c < other.cols_; ++c) orow[c] += a * brow[c];
    }
  }
  return out;
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.At(c, r) = At(r, c);
  }
  return out;
}

void DenseMatrix::AddInPlace(const DenseMatrix& other) {
  TMARK_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void DenseMatrix::ScaleInPlace(double alpha) {
  for (double& v : data_) v *= alpha;
}

Vector DenseMatrix::ColumnSums() const {
  Vector sums(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = RowPtr(r);
    for (std::size_t c = 0; c < cols_; ++c) sums[c] += row[c];
  }
  return sums;
}

void DenseMatrix::NormalizeColumns(double eps) {
  const Vector sums = ColumnSums();
  for (std::size_t c = 0; c < cols_; ++c) {
    if (sums[c] > eps) {
      const double inv = 1.0 / sums[c];
      for (std::size_t r = 0; r < rows_; ++r) At(r, c) *= inv;
    } else {
      const double u = 1.0 / static_cast<double>(rows_);
      for (std::size_t r = 0; r < rows_; ++r) At(r, c) = u;
    }
  }
}

double DenseMatrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& other) const {
  TMARK_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

}  // namespace tmark::la
