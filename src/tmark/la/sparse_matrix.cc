#include "tmark/la/sparse_matrix.h"

#include <algorithm>
#include <map>

#include "tmark/common/check.h"
#include "tmark/common/simd.h"
#include "tmark/la/microkernel.h"
#include "tmark/obs/prof.h"
#include "tmark/parallel/parallel_for.h"

namespace tmark::la {
namespace {

// Row grains for the parallel kernels. Below one grain of work the loops
// collapse to a single chunk on the calling thread (the exact serial code).
// Scatter/reduction kernels use a large grain and a small chunk cap so the
// ordered per-chunk partial buffers stay cheap; their chunk boundaries are
// fixed by the row count alone, keeping results bit-identical across thread
// counts.
constexpr std::size_t kMatVecGrain = 1024;
constexpr std::size_t kScatterGrain = 8192;
constexpr std::size_t kScatterMaxChunks = 16;
constexpr std::size_t kReduceGrain = SparseMatrix::kBilinearReduceGrain;

}  // namespace

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_ptr_(IndexArray::Zeros(rows + 1)) {}

SparseMatrix SparseMatrix::FromTriplets(std::size_t rows, std::size_t cols,
                                        std::vector<Triplet> triplets) {
  SparseMatrix m(rows, cols);
  for (const Triplet& t : triplets) {
    TMARK_CHECK_MSG(t.row < rows && t.col < cols,
                    "triplet (" << t.row << "," << t.col
                                << ") out of bounds for " << rows << "x"
                                << cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  // Count unique entries per row while summing duplicates. Offsets assemble
  // in a plain 64-bit vector; IndexArray::FromOffsets then picks the
  // narrowest storage that holds nnz.
  std::vector<std::size_t> row_ptr(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  std::size_t i = 0;
  while (i < triplets.size()) {
    const std::uint32_t r = triplets[i].row;
    const std::uint32_t c = triplets[i].col;
    double v = 0.0;
    while (i < triplets.size() && triplets[i].row == r &&
           triplets[i].col == c) {
      v += triplets[i].value;
      ++i;
    }
    m.col_idx_.push_back(c);
    m.values_.push_back(v);
    ++row_ptr[r + 1];
  }
  for (std::size_t r = 0; r < rows; ++r) row_ptr[r + 1] += row_ptr[r];
  m.row_ptr_ = IndexArray::FromOffsets(std::move(row_ptr));
  return m;
}

SparseMatrix SparseMatrix::FromDense(const DenseMatrix& dense, double tol) {
  std::vector<Triplet> trips;
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    for (std::size_t c = 0; c < dense.cols(); ++c) {
      const double v = dense.At(r, c);
      if (std::abs(v) > tol) {
        trips.push_back({static_cast<std::uint32_t>(r),
                         static_cast<std::uint32_t>(c), v});
      }
    }
  }
  return FromTriplets(dense.rows(), dense.cols(), std::move(trips));
}

double SparseMatrix::At(std::size_t r, std::size_t c) const {
  TMARK_CHECK(r < rows_ && c < cols_);
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, static_cast<std::uint32_t>(c));
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

std::size_t SparseMatrix::FindEntry(std::size_t r, std::size_t c) const {
  TMARK_CHECK(r < rows_ && c < cols_);
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, static_cast<std::uint32_t>(c));
  if (it == end || *it != c) return npos;
  return static_cast<std::size_t>(it - col_idx_.begin());
}

void SparseMatrix::ApplyRowEdits(std::vector<RowEdit> edits) {
  if (edits.empty()) return;
  std::sort(edits.begin(), edits.end(),
            [](const RowEdit& a, const RowEdit& b) { return a.row < b.row; });
  std::size_t extra = 0;
  for (std::size_t e = 0; e < edits.size(); ++e) {
    const RowEdit& edit = edits[e];
    TMARK_CHECK(edit.row < rows_ && edit.cols.size() == edit.values.size());
    TMARK_CHECK(e == 0 || edits[e - 1].row < edit.row);
    for (std::size_t p = 0; p < edit.cols.size(); ++p) {
      TMARK_CHECK(edit.cols[p] < cols_);
      TMARK_CHECK(p == 0 || edit.cols[p - 1] < edit.cols[p]);
    }
    extra += edit.cols.size();
  }
  // Gap-copy col_idx/values: bulk-copy the unedited spans, splice the edited
  // rows. Old per-row lengths are captured up front because row_ptr is
  // rewritten afterwards.
  std::vector<std::size_t> old_len(edits.size());
  std::size_t new_nnz = values_.size() + extra;
  for (std::size_t e = 0; e < edits.size(); ++e) {
    old_len[e] = row_ptr_[edits[e].row + 1] - row_ptr_[edits[e].row];
    new_nnz -= old_len[e];
  }
  std::vector<std::uint32_t> new_cols;
  std::vector<double> new_vals;
  new_cols.reserve(new_nnz);
  new_vals.reserve(new_nnz);
  std::size_t src = 0;
  for (const RowEdit& edit : edits) {
    const std::size_t begin = row_ptr_[edit.row];
    const std::size_t end = row_ptr_[edit.row + 1];
    new_cols.insert(new_cols.end(), col_idx_.begin() + src,
                    col_idx_.begin() + begin);
    new_vals.insert(new_vals.end(), values_.begin() + src,
                    values_.begin() + begin);
    new_cols.insert(new_cols.end(), edit.cols.begin(), edit.cols.end());
    new_vals.insert(new_vals.end(), edit.values.begin(), edit.values.end());
    src = end;
  }
  new_cols.insert(new_cols.end(), col_idx_.begin() + src, col_idx_.end());
  new_vals.insert(new_vals.end(), values_.begin() + src, values_.end());
  // Patch row_ptr in place: each offset past an edited row shifts by the
  // cumulative length delta. Reads at index i happen before the write at i,
  // and offsets below the first edited row are untouched.
  std::ptrdiff_t cum = 0;
  std::size_t e = 0;
  for (std::size_t r = edits.front().row + 1; r <= rows_; ++r) {
    while (e < edits.size() && edits[e].row < r) {
      cum += static_cast<std::ptrdiff_t>(edits[e].cols.size()) -
             static_cast<std::ptrdiff_t>(old_len[e]);
      ++e;
    }
    row_ptr_.Set(r, static_cast<std::size_t>(
                        static_cast<std::ptrdiff_t>(row_ptr_[r]) + cum));
  }
  row_ptr_.FitWidth();
  col_idx_ = std::move(new_cols);
  values_ = std::move(new_vals);
}

Vector SparseMatrix::MatVec(const Vector& x) const {
  Vector y;
  MatVecInto(x, &y);
  return y;
}

void SparseMatrix::MatVecInto(const Vector& x, Vector* y) const {
  TMARK_CHECK(y != nullptr && x.size() == cols_);
  y->resize(rows_);
  // Disjoint output rows: row-partitioning is bit-identical to serial.
  parallel::ParallelForRanges(
      rows_, kMatVecGrain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          double s = 0.0;
          for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
            s += values_[p] * x[col_idx_[p]];
          }
          (*y)[r] = s;
        }
      });
}

Vector SparseMatrix::TransposeMatVec(const Vector& x) const {
  PanelWorkspace ws;
  Vector y;
  TransposeMatVecInto(x, &y, &ws);
  return y;
}

void SparseMatrix::TransposeMatVecInto(const Vector& x, Vector* y,
                                       PanelWorkspace* ws) const {
  TMARK_CHECK(y != nullptr && ws != nullptr && x.size() == rows_);
  auto scatter = [this, &x](std::size_t begin, std::size_t end, Vector* out) {
    for (std::size_t r = begin; r < end; ++r) {
      const double xr = x[r];
      if (xr == 0.0) continue;
      for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
        (*out)[col_idx_[p]] += values_[p] * xr;
      }
    }
  };
  y->assign(cols_, 0.0);
  const std::size_t chunks =
      parallel::NumFixedChunks(rows_, kScatterGrain, kScatterMaxChunks);
  if (chunks <= 1) {
    scatter(0, rows_, y);
    return;
  }
  // Colliding scatter targets: accumulate into ordered per-chunk partials
  // and merge them in chunk order. Chunk boundaries depend only on the row
  // count, so every thread count (serial included) sums in the same order.
  ws->PrepareChunks(chunks, cols_);
  parallel::ParallelChunks(
      rows_, chunks, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        scatter(begin, end, &ws->Chunk(chunk));
      });
  for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
    const Vector& partial = ws->Chunk(chunk);
    for (std::size_t c = 0; c < cols_; ++c) (*y)[c] += partial[c];
  }
}

Vector SparseMatrix::RowSums() const {
  Vector sums(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      sums[r] += values_[p];
    }
  }
  return sums;
}

Vector SparseMatrix::ColumnSums() const {
  Vector sums(cols_, 0.0);
  for (std::size_t p = 0; p < values_.size(); ++p) {
    sums[col_idx_[p]] += values_[p];
  }
  return sums;
}

SparseMatrix SparseMatrix::ScaleColumns(const Vector& scale) const {
  TMARK_CHECK(scale.size() == cols_);
  SparseMatrix out(*this);
  for (std::size_t p = 0; p < out.values_.size(); ++p) {
    out.values_[p] *= scale[out.col_idx_[p]];
  }
  return out;
}

SparseMatrix SparseMatrix::ScaleRows(const Vector& scale) const {
  TMARK_CHECK(scale.size() == rows_);
  SparseMatrix out(*this);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      out.values_[p] *= scale[r];
    }
  }
  return out;
}

SparseMatrix SparseMatrix::NormalizeColumnsSparse(
    std::vector<bool>* dangling) const {
  const Vector sums = ColumnSums();
  Vector inv(cols_, 0.0);
  if (dangling != nullptr) dangling->assign(cols_, false);
  for (std::size_t c = 0; c < cols_; ++c) {
    if (sums[c] > 0.0) {
      inv[c] = 1.0 / sums[c];
    } else if (dangling != nullptr) {
      (*dangling)[c] = true;
    }
  }
  return ScaleColumns(inv);
}

SparseMatrix SparseMatrix::Transpose() const {
  std::vector<Triplet> trips;
  trips.reserve(values_.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      trips.push_back({col_idx_[p], static_cast<std::uint32_t>(r), values_[p]});
    }
  }
  return FromTriplets(cols_, rows_, std::move(trips));
}

SparseMatrix SparseMatrix::MatMul(const SparseMatrix& other) const {
  TMARK_CHECK(cols_ == other.rows_);
  std::vector<Triplet> trips;
  // Row-by-row accumulation with a scatter map keyed by column.
  std::map<std::uint32_t, double> acc;
  for (std::size_t r = 0; r < rows_; ++r) {
    acc.clear();
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const std::uint32_t k = col_idx_[p];
      const double v = values_[p];
      for (std::size_t q = other.row_ptr_[k]; q < other.row_ptr_[k + 1]; ++q) {
        acc[other.col_idx_[q]] += v * other.values_[q];
      }
    }
    for (const auto& [c, v] : acc) {
      trips.push_back({static_cast<std::uint32_t>(r), c, v});
    }
  }
  return FromTriplets(rows_, other.cols_, std::move(trips));
}

DenseMatrix SparseMatrix::MatMulDense(const DenseMatrix& dense) const {
  TMARK_CHECK(cols_ == dense.rows());
  DenseMatrix out(rows_, dense.cols());
  for (std::size_t r = 0; r < rows_; ++r) {
    double* orow = out.RowPtr(r);
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const double v = values_[p];
      const double* drow = dense.RowPtr(col_idx_[p]);
      for (std::size_t c = 0; c < dense.cols(); ++c) orow[c] += v * drow[c];
    }
  }
  return out;
}

DenseMatrix SparseMatrix::TransposeMatMulDense(const DenseMatrix& dense) const {
  TMARK_CHECK(rows_ == dense.rows());
  DenseMatrix out(cols_, dense.cols());
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* drow = dense.RowPtr(r);
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const double v = values_[p];
      double* orow = out.RowPtr(col_idx_[p]);
      for (std::size_t c = 0; c < dense.cols(); ++c) orow[c] += v * drow[c];
    }
  }
  return out;
}

SparseMatrix SparseMatrix::Add(const SparseMatrix& other) const {
  TMARK_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  std::vector<Triplet> trips;
  trips.reserve(values_.size() + other.values_.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      trips.push_back({static_cast<std::uint32_t>(r), col_idx_[p], values_[p]});
    }
    for (std::size_t p = other.row_ptr_[r]; p < other.row_ptr_[r + 1]; ++p) {
      trips.push_back(
          {static_cast<std::uint32_t>(r), other.col_idx_[p], other.values_[p]});
    }
  }
  return FromTriplets(rows_, cols_, std::move(trips));
}

DenseMatrix SparseMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      out.At(r, col_idx_[p]) += values_[p];
    }
  }
  return out;
}

double SparseMatrix::Bilinear(const Vector& x, const Vector& y) const {
  TMARK_CHECK(x.size() == rows_ && y.size() == cols_);
  // Per-chunk partial sums folded in chunk order; the fixed chunk layout
  // makes the result identical at every thread count.
  return parallel::ParallelReduce(
      rows_, kReduceGrain, 0.0,
      [&](std::size_t begin, std::size_t end) {
        double s = 0.0;
        for (std::size_t r = begin; r < end; ++r) {
          const double xr = x[r];
          if (xr == 0.0) continue;
          double inner = 0.0;
          for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
            inner += values_[p] * y[col_idx_[p]];
          }
          s += xr * inner;
        }
        return s;
      },
      [](double a, double b) { return a + b; });
}

void SparseMatrix::MatMulPanel(const DenseMatrix& x, std::size_t width,
                               DenseMatrix* y) const {
  TMARK_PROF_REGION("la.mk.matmul_panel");
  TMARK_CHECK(y != nullptr && x.rows() == cols_ && y->rows() == rows_);
  TMARK_CHECK(x.cols() == y->cols() && width <= x.cols());
  // Output rows are disjoint, so any row partition is bit-identical; the
  // grain shrinks with the panel width to keep per-chunk work comparable to
  // the single-vector kernel's.
  const std::size_t grain =
      width > 0 ? std::max<std::size_t>(64, kMatVecGrain / width)
                : kMatVecGrain;
  parallel::ParallelForRanges(
      rows_, grain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          double* yrow = y->RowPtr(r);
          mk::Zero(yrow, width);
          for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
            // Per column: the same v * x products added in the same
            // p-ascending order as MatVec's register accumulation.
            mk::Axpy(yrow, values_[p], x.RowPtr(col_idx_[p]), width);
          }
        }
      });
}

void SparseMatrix::TransposeMatMulPanel(const DenseMatrix& x,
                                        std::size_t width, DenseMatrix* y,
                                        PanelWorkspace* ws) const {
  TMARK_PROF_REGION("la.mk.tmatmul_panel");
  TMARK_CHECK(y != nullptr && ws != nullptr);
  TMARK_CHECK(x.rows() == rows_ && y->rows() == cols_);
  TMARK_CHECK(x.cols() == y->cols() && width <= x.cols());
  // `buf` addresses a cols_ x width target with column stride `stride`.
  // TransposeMatVec skips rows with x[r] == 0; here a row is skipped only
  // when every active column is zero, and a column whose entry is zero
  // receives v * 0.0 adds — which leave its non-negative partials unchanged
  // bit for bit, keeping each column identical to the single-vector kernel.
  // Unlike the gather kernels, the scatter has no register accumulator to
  // reuse across the inner loop — each nnz load-modify-stores a different
  // output row — so the fixed-width block dispatch of mk::Axpy is pure
  // per-nnz overhead here (bench_perf_kernels shows the plain annotated
  // runtime-width loop at parity or ahead at every width). The loop performs
  // the same adds in the same ascending-column order, so each column stays
  // bit-identical to the single-vector kernel.
  auto scatter = [&](std::size_t begin, std::size_t end, double* buf,
                     std::size_t stride) {
    for (std::size_t r = begin; r < end; ++r) {
      const double* xrow = x.RowPtr(r);
      if (!mk::AnyNonZero(xrow, width)) continue;
      for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
        double* out = buf + col_idx_[p] * stride;
        const double v = values_[p];
        TMARK_SIMD
        for (std::size_t c = 0; c < width; ++c) out[c] += v * xrow[c];
      }
    }
  };
  for (std::size_t j = 0; j < cols_; ++j) {
    mk::Zero(y->RowPtr(j), width);
  }
  // Same fixed chunk layout as TransposeMatVec: boundaries depend only on
  // the row count, partials merge in chunk order.
  const std::size_t chunks =
      parallel::NumFixedChunks(rows_, kScatterGrain, kScatterMaxChunks);
  if (chunks <= 1) {
    if (rows_ > 0 && cols_ > 0) scatter(0, rows_, y->RowPtr(0), y->cols());
    return;
  }
  ws->PrepareChunks(chunks, cols_ * width);
  parallel::ParallelChunks(
      rows_, chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        scatter(begin, end, ws->Chunk(chunk).data(), width);
      });
  for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
    const double* partial = ws->Chunk(chunk).data();
    for (std::size_t j = 0; j < cols_; ++j) {
      mk::Add(y->RowPtr(j), partial + j * width, width);
    }
  }
}

void SparseMatrix::BilinearPanel(const DenseMatrix& x, const DenseMatrix& y,
                                 std::size_t width, double* out,
                                 PanelWorkspace* ws) const {
  TMARK_PROF_REGION("la.mk.bilinear_panel");
  TMARK_CHECK(out != nullptr && ws != nullptr);
  TMARK_CHECK(x.rows() == rows_ && y.rows() == cols_);
  TMARK_CHECK(x.cols() == y.cols() && width <= x.cols());
  // Each chunk buffer holds [partial sums | inner scratch], width doubles
  // each. Rows whose panel entries are all zero are skipped as in Bilinear;
  // a zero entry in a live row contributes x * inner = 0.0, leaving that
  // column's partial unchanged (same value the skip produces).
  auto accumulate = [&](std::size_t begin, std::size_t end, double* acc) {
    double* inner = acc + width;
    for (std::size_t r = begin; r < end; ++r) {
      const double* xrow = x.RowPtr(r);
      if (!mk::AnyNonZero(xrow, width)) continue;
      mk::Zero(inner, width);
      for (std::size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
        mk::Axpy(inner, values_[p], y.RowPtr(col_idx_[p]), width);
      }
      mk::MulAdd(acc, xrow, inner, width);
    }
  };
  // Same chunk layout and left-to-right fold as Bilinear's ParallelReduce.
  const std::size_t chunks = parallel::NumFixedChunks(rows_, kReduceGrain);
  const std::size_t buffers = chunks == 0 ? 1 : chunks;
  ws->PrepareChunks(buffers, 2 * width);
  if (chunks <= 1) {
    if (rows_ > 0) accumulate(0, rows_, ws->Chunk(0).data());
  } else {
    parallel::ParallelChunks(
        rows_, chunks,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          accumulate(begin, end, ws->Chunk(chunk).data());
        });
  }
  mk::Zero(out, width);
  for (std::size_t chunk = 0; chunk < buffers; ++chunk) {
    mk::Add(out, ws->Chunk(chunk).data(), width);
  }
}

bool SparseMatrix::IsNonNegative() const {
  for (double v : values_) {
    if (v < 0.0) return false;
  }
  return true;
}

}  // namespace tmark::la
