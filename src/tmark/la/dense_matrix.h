#ifndef TMARK_LA_DENSE_MATRIX_H_
#define TMARK_LA_DENSE_MATRIX_H_

#include <cstddef>
#include <vector>

#include "tmark/la/vector_ops.h"

namespace tmark::la {

/// Row-major dense matrix of doubles.
///
/// Used for small/medium dense workloads: neural-network weights, feature
/// blocks, the reference (non-implicit) construction of the cosine
/// transition matrix W in tests. Storage is contiguous for cache-friendly
/// matvec kernels.
class DenseMatrix {
 public:
  /// Empty 0x0 matrix.
  DenseMatrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix, all entries `init`.
  DenseMatrix(std::size_t rows, std::size_t cols, double init = 0.0);

  /// Builds from nested initializer data (rows of equal length).
  static DenseMatrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static DenseMatrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& At(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double At(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Pointer to the start of row r.
  double* RowPtr(std::size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(std::size_t r) const { return data_.data() + r * cols_; }

  /// Copies row r into a Vector.
  Vector Row(std::size_t r) const;

  /// Copies column c into a Vector.
  Vector Col(std::size_t c) const;

  /// y = this * x. Requires x.size() == cols().
  Vector MatVec(const Vector& x) const;

  /// y = this^T * x. Requires x.size() == rows().
  Vector TransposeMatVec(const Vector& x) const;

  /// this * other. Requires cols() == other.rows().
  DenseMatrix MatMul(const DenseMatrix& other) const;

  /// Transposed copy.
  DenseMatrix Transpose() const;

  /// Element-wise in-place operations.
  void AddInPlace(const DenseMatrix& other);
  void ScaleInPlace(double alpha);

  /// Sum over each column -> vector of length cols().
  Vector ColumnSums() const;

  /// Normalizes each column to sum to one. Columns whose sum is <= `eps` are
  /// replaced by the uniform column 1/rows (the dangling-node convention).
  void NormalizeColumns(double eps = 0.0);

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Maximum absolute element-wise difference against `other` (same shape).
  double MaxAbsDiff(const DenseMatrix& other) const;

  /// Flat data access (row-major), e.g. for optimizer updates.
  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

}  // namespace tmark::la

#endif  // TMARK_LA_DENSE_MATRIX_H_
