#include "tmark/la/panel_f32.h"

#include "tmark/common/check.h"
#include "tmark/la/microkernel.h"

namespace tmark::la {

void PanelF32::Resize(std::size_t rows, std::size_t cols) {
  if (rows == rows_ && cols == cols_) return;
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void DemoteLeadingColumns(const DenseMatrix& src, std::size_t width,
                          PanelF32* dst) {
  TMARK_CHECK(dst != nullptr && dst->rows() == src.rows() &&
              dst->cols() == src.cols() && width <= src.cols());
  for (std::size_t i = 0; i < src.rows(); ++i) {
    mk::Demote(dst->RowPtr(i), src.RowPtr(i), width);
  }
}

}  // namespace tmark::la
