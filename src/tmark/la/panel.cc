#include "tmark/la/panel.h"

#include "tmark/common/check.h"
#include "tmark/la/microkernel.h"
#include "tmark/obs/prof.h"

namespace tmark::la {

void PanelWorkspace::PrepareChunks(std::size_t count, std::size_t size) {
  if (chunks_.size() < count) chunks_.resize(count);
  // assign() reuses each vector's capacity, so steady-state calls with a
  // stable chunk shape allocate nothing.
  for (std::size_t i = 0; i < count; ++i) chunks_[i].assign(size, 0.0);
}

Vector& PanelWorkspace::Buffer(std::size_t slot, std::size_t size) {
  while (buffers_.size() <= slot) buffers_.emplace_back();
  buffers_[slot].assign(size, 0.0);
  return buffers_[slot];
}

DenseMatrix& PanelWorkspace::Panel(std::size_t slot, std::size_t rows,
                                   std::size_t cols) {
  while (panels_.size() <= slot) panels_.emplace_back();
  DenseMatrix& panel = panels_[slot];
  if (panel.rows() != rows || panel.cols() != cols) {
    panel = DenseMatrix(rows, cols);
  }
  return panel;
}

void ScaleLeadingColumns(double alpha, std::size_t width, DenseMatrix* panel) {
  TMARK_CHECK(panel != nullptr && width <= panel->cols());
  for (std::size_t r = 0; r < panel->rows(); ++r) {
    mk::Scale(panel->RowPtr(r), alpha, width);
  }
}

void AxpyLeadingColumns(double alpha, const DenseMatrix& x, std::size_t width,
                        DenseMatrix* y) {
  TMARK_CHECK(y != nullptr && x.rows() == y->rows() && x.cols() == y->cols());
  TMARK_CHECK(width <= y->cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    mk::Axpy(y->RowPtr(r), alpha, x.RowPtr(r), width);
  }
}

void NormalizeLeadingColumnsL1(std::size_t width, DenseMatrix* panel) {
  TMARK_PROF_REGION("la.mk.normalize_l1_panel");
  TMARK_CHECK(panel != nullptr && width <= panel->cols());
  Vector sums;
  LeadingColumnSums(*panel, width, &sums);
  for (std::size_t c = 0; c < width; ++c) {
    TMARK_CHECK_MSG(sums[c] > 0.0,
                    "cannot L1-normalize a zero/negative-sum panel column");
  }
  for (std::size_t c = 0; c < width; ++c) sums[c] = 1.0 / sums[c];
  for (std::size_t r = 0; r < panel->rows(); ++r) {
    mk::Mul(panel->RowPtr(r), sums.data(), width);
  }
}

void LeadingColumnL1Distances(const DenseMatrix& a, const DenseMatrix& b,
                              std::size_t width, Vector* out) {
  TMARK_CHECK(out != nullptr && a.rows() == b.rows() && a.cols() == b.cols());
  TMARK_CHECK(width <= a.cols());
  out->assign(width, 0.0);
  // Row-major sweep accumulates each column's |a - b| in ascending row
  // order, exactly la::L1Distance's element order per column.
  for (std::size_t r = 0; r < a.rows(); ++r) {
    mk::AccumAbsDiff(out->data(), a.RowPtr(r), b.RowPtr(r), width);
  }
}

void LeadingColumnSums(const DenseMatrix& panel, std::size_t width,
                       Vector* out) {
  TMARK_CHECK(out != nullptr && width <= panel.cols());
  out->assign(width, 0.0);
  for (std::size_t r = 0; r < panel.rows(); ++r) {
    mk::Add(out->data(), panel.RowPtr(r), width);
  }
}

void SetColumn(const Vector& v, std::size_t col, DenseMatrix* panel) {
  TMARK_CHECK(panel != nullptr && v.size() == panel->rows());
  TMARK_CHECK(col < panel->cols());
  for (std::size_t r = 0; r < v.size(); ++r) panel->At(r, col) = v[r];
}

void ExtractColumn(const DenseMatrix& panel, std::size_t col, Vector* out) {
  TMARK_CHECK(out != nullptr && col < panel.cols());
  out->resize(panel.rows());
  for (std::size_t r = 0; r < panel.rows(); ++r) (*out)[r] = panel.At(r, col);
}

void MoveColumn(std::size_t from, std::size_t to, DenseMatrix* panel) {
  TMARK_CHECK(panel != nullptr && from < panel->cols() && to < panel->cols());
  if (from == to) return;
  for (std::size_t r = 0; r < panel->rows(); ++r) {
    panel->At(r, to) = panel->At(r, from);
  }
}

void FusedCombineColumns(double rel, double beta, const DenseMatrix& wx,
                         double alpha, const DenseMatrix& l, std::size_t width,
                         DenseMatrix* x, Vector* sums) {
  TMARK_PROF_REGION("la.mk.fused_combine");
  TMARK_CHECK(x != nullptr && sums != nullptr);
  TMARK_CHECK(wx.rows() == x->rows() && wx.cols() == x->cols());
  TMARK_CHECK(l.rows() == x->rows() && l.cols() == x->cols());
  TMARK_CHECK(width <= x->cols());
  sums->assign(width, 0.0);
  for (std::size_t r = 0; r < x->rows(); ++r) {
    mk::FusedCombine(x->RowPtr(r), rel, beta, wx.RowPtr(r), alpha, l.RowPtr(r),
                     sums->data(), width);
  }
}

void FusedNormalizeDistanceColumns(Vector* sums, const DenseMatrix& prev,
                                   std::size_t width, DenseMatrix* panel,
                                   Vector* out) {
  TMARK_PROF_REGION("la.mk.fused_normalize_distance");
  TMARK_CHECK(sums != nullptr && panel != nullptr && out != nullptr);
  TMARK_CHECK(sums->size() >= width && width <= panel->cols());
  TMARK_CHECK(prev.rows() == panel->rows() && prev.cols() == panel->cols());
  for (std::size_t c = 0; c < width; ++c) {
    TMARK_CHECK_MSG((*sums)[c] > 0.0,
                    "cannot L1-normalize a zero/negative-sum panel column");
  }
  // Consume sums: overwrite with reciprocals (exactly the multiply-by-
  // reciprocal normalization of NormalizeLeadingColumnsL1 / la::NormalizeL1).
  for (std::size_t c = 0; c < width; ++c) (*sums)[c] = 1.0 / (*sums)[c];
  out->assign(width, 0.0);
  for (std::size_t r = 0; r < panel->rows(); ++r) {
    mk::FusedScaleAbsDiff(panel->RowPtr(r), sums->data(), prev.RowPtr(r),
                          out->data(), width);
  }
}

}  // namespace tmark::la
