#include "tmark/la/index_array.h"

#include <algorithm>
#include <limits>

namespace tmark::la {
namespace {

bool g_force_wide = false;

}  // namespace

void SetForceWideIndexArrays(bool force) { g_force_wide = force; }

bool ForceWideIndexArrays() { return g_force_wide; }

IndexArray IndexArray::FromOffsets(std::vector<std::size_t> offsets) {
  IndexArray a;
  const std::size_t max_offset =
      offsets.empty() ? 0
                      : *std::max_element(offsets.begin(), offsets.end());
  if (!g_force_wide &&
      max_offset <= std::numeric_limits<std::uint32_t>::max()) {
    a.wide_ = false;
    a.v32_.reserve(offsets.size());
    for (std::size_t v : offsets) {
      a.v32_.push_back(static_cast<std::uint32_t>(v));
    }
  } else {
    a.wide_ = true;
    a.v64_.assign(offsets.begin(), offsets.end());
  }
  return a;
}

IndexArray IndexArray::Zeros(std::size_t count) {
  IndexArray a;
  if (g_force_wide) {
    a.wide_ = true;
    a.v64_.assign(count, 0);
  } else {
    a.v32_.assign(count, 0);
  }
  return a;
}

std::vector<std::size_t> IndexArray::ToVector() const {
  std::vector<std::size_t> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back((*this)[i]);
  return out;
}

void IndexArray::Set(std::size_t i, std::size_t value) {
  if (!wide_) {
    if (value <= std::numeric_limits<std::uint32_t>::max()) {
      v32_[i] = static_cast<std::uint32_t>(value);
      return;
    }
    v64_.assign(v32_.begin(), v32_.end());
    v32_.clear();
    v32_.shrink_to_fit();
    wide_ = true;
  }
  v64_[i] = value;
}

void IndexArray::ShiftTail(std::size_t from, std::ptrdiff_t delta) {
  if (delta == 0) return;
  const std::size_t count = size();
  for (std::size_t i = from; i < count; ++i) {
    Set(i, static_cast<std::size_t>(static_cast<std::ptrdiff_t>((*this)[i]) +
                                    delta));
  }
}

void IndexArray::FitWidth() {
  std::size_t max_offset = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    max_offset = std::max(max_offset, (*this)[i]);
  }
  const bool want_wide =
      g_force_wide || max_offset > std::numeric_limits<std::uint32_t>::max();
  if (want_wide == wide_) return;
  if (want_wide) {
    v64_.assign(v32_.begin(), v32_.end());
    v32_.clear();
    v32_.shrink_to_fit();
  } else {
    v32_.reserve(v64_.size());
    v32_.clear();
    for (std::uint64_t v : v64_) {
      v32_.push_back(static_cast<std::uint32_t>(v));
    }
    v64_.clear();
    v64_.shrink_to_fit();
  }
  wide_ = want_wide;
}

}  // namespace tmark::la
