#include "tmark/la/index_array.h"

#include <algorithm>
#include <limits>

namespace tmark::la {
namespace {

bool g_force_wide = false;

}  // namespace

void SetForceWideIndexArrays(bool force) { g_force_wide = force; }

bool ForceWideIndexArrays() { return g_force_wide; }

IndexArray IndexArray::FromOffsets(std::vector<std::size_t> offsets) {
  IndexArray a;
  const std::size_t max_offset =
      offsets.empty() ? 0
                      : *std::max_element(offsets.begin(), offsets.end());
  if (!g_force_wide &&
      max_offset <= std::numeric_limits<std::uint32_t>::max()) {
    a.wide_ = false;
    a.v32_.reserve(offsets.size());
    for (std::size_t v : offsets) {
      a.v32_.push_back(static_cast<std::uint32_t>(v));
    }
  } else {
    a.wide_ = true;
    a.v64_.assign(offsets.begin(), offsets.end());
  }
  return a;
}

IndexArray IndexArray::Zeros(std::size_t count) {
  IndexArray a;
  if (g_force_wide) {
    a.wide_ = true;
    a.v64_.assign(count, 0);
  } else {
    a.v32_.assign(count, 0);
  }
  return a;
}

std::vector<std::size_t> IndexArray::ToVector() const {
  std::vector<std::size_t> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back((*this)[i]);
  return out;
}

}  // namespace tmark::la
