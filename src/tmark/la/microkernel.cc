#include "tmark/la/microkernel.h"

namespace tmark::la::mk {

const char* SimdAnnotation() { return TMARK_SIMD_FLAVOR; }

}  // namespace tmark::la::mk
