#ifndef TMARK_LA_INDEX_ARRAY_H_
#define TMARK_LA_INDEX_ARRAY_H_

// Adaptive-width offset arrays for CSR-style structures.
//
// A million-node tensor stores one row_ptr offset per (row, slice) plus one
// per merged-view segment; at 8 bytes each those offset arrays rival the
// value payload itself. An IndexArray stores offsets as uint32 whenever the
// largest offset fits (chosen once at build time — CSR offsets are bounded
// by nnz, known when the structure is assembled) and transparently widens to
// uint64 otherwise, halving structure bytes and cache traffic on every
// realistic input while keeping the >4G-nnz case correct.
//
// Reads go through a width branch in operator[]; the panel kernels issue
// only O(1) offset reads per row/segment against O(row nnz) value work, so
// the branch is off the critical path (and perfectly predicted — the width
// never changes after build). Offsets are assembled on a plain
// std::vector<std::size_t> handed to FromOffsets; after construction the
// only mutation is the in-place patch protocol used by incremental HIN
// updates (Set/ShiftTail followed by one FitWidth), which reproduces the
// exact width FromOffsets would have chosen for the patched contents.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tmark::la {

/// Test/bench knob: when set, every subsequently built IndexArray stores
/// 64-bit offsets even when 32-bit would fit. Lets the scaling bench and the
/// bit-identity tests compare compact vs wide structures on the same input.
/// Not thread-safe; flip it only between structure builds.
void SetForceWideIndexArrays(bool force);
bool ForceWideIndexArrays();

/// Immutable offset array, 32- or 64-bit storage chosen at build time.
class IndexArray {
 public:
  /// Empty array (size 0).
  IndexArray() = default;

  /// Takes ownership of `offsets`, storing uint32 when the maximum offset
  /// fits and ForceWideIndexArrays() is off.
  static IndexArray FromOffsets(std::vector<std::size_t> offsets);

  /// `count` zero offsets (always compact unless forced wide).
  static IndexArray Zeros(std::size_t count);

  std::size_t size() const { return wide_ ? v64_.size() : v32_.size(); }
  bool empty() const { return size() == 0; }

  std::size_t operator[](std::size_t i) const {
    return wide_ ? v64_[i] : v32_[i];
  }
  std::size_t front() const { return (*this)[0]; }
  std::size_t back() const { return (*this)[size() - 1]; }

  /// True when offsets are stored as uint32.
  bool is_compact() const { return !wide_; }
  /// Bits per stored offset: 32 or 64.
  std::size_t index_bits() const { return wide_ ? 64 : 32; }
  /// Bytes held by the offset storage (size, not capacity — FromOffsets
  /// shrinks to fit).
  std::size_t StorageBytes() const {
    return wide_ ? v64_.size() * sizeof(std::uint64_t)
                 : v32_.size() * sizeof(std::uint32_t);
  }

  /// Canonical 64-bit copy — fingerprinting and tests; never on a hot path.
  std::vector<std::size_t> ToVector() const;

  /// Overwrites offset i in place, widening the storage on demand when the
  /// value needs 64 bits. Part of the incremental-update patch protocol:
  /// after a batch of Set/ShiftTail calls the caller runs FitWidth() once so
  /// the array ends up byte-identical to a FromOffsets rebuild.
  void Set(std::size_t i, std::size_t value);

  /// Adds `delta` (possibly negative) to every offset in [from, size()).
  /// Callers guarantee no offset goes negative.
  void ShiftTail(std::size_t from, std::ptrdiff_t delta);

  /// Re-picks the storage width for the current contents exactly as
  /// FromOffsets would: compacts to uint32 when the maximum offset fits and
  /// ForceWideIndexArrays() is off, widens otherwise.
  void FitWidth();

 private:
  bool wide_ = false;
  std::vector<std::uint32_t> v32_;
  std::vector<std::uint64_t> v64_;
};

}  // namespace tmark::la

#endif  // TMARK_LA_INDEX_ARRAY_H_
