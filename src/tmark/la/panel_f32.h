#ifndef TMARK_LA_PANEL_F32_H_
#define TMARK_LA_PANEL_F32_H_

// fp32 panel storage for the opt-in reduced-precision gather mode.
//
// The batched tensor product is a gather kernel: per stored entry it reads
// one row of the x panel. At million-node scale those random reads dominate
// the iteration, so storing the gathered panel in fp32 halves the traffic
// the cache misses pay for. Accumulation stays fp64 (la::mk f32-input
// overloads widen each loaded float exactly), so the only rounding relative
// to the fp64 path is the one demotion per stored panel element —
// |x| * 2^-24, checked end to end by the fp32-mode error-bound test. This
// trades bit-identity for bandwidth and is opt-in via
// TMarkConfig::fp32_panels (docs/PERFORMANCE.md "Scaling").

#include <cstddef>
#include <vector>

#include "tmark/la/dense_matrix.h"

namespace tmark::la {

/// Row-major dense float matrix — the fp32 mirror of a panel. Minimal on
/// purpose: the authoritative iteration state stays in the fp64 panel; this
/// mirror only feeds the gather kernels.
class PanelF32 {
 public:
  PanelF32() : rows_(0), cols_(0) {}
  PanelF32(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// Reallocates only when the shape changes; contents are unspecified
  /// afterwards (callers overwrite their active region).
  void Resize(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  float* RowPtr(std::size_t r) { return data_.data() + r * cols_; }
  const float* RowPtr(std::size_t r) const {
    return data_.data() + r * cols_;
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<float> data_;
};

/// dst(i, c) = (float)src(i, c) for c in [0, width), every row — the
/// per-iteration mirror refresh. Requires matching shapes.
void DemoteLeadingColumns(const DenseMatrix& src, std::size_t width,
                          PanelF32* dst);

}  // namespace tmark::la

#endif  // TMARK_LA_PANEL_F32_H_
