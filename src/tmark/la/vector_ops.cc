#include "tmark/la/vector_ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tmark/common/check.h"

namespace tmark::la {

Vector Constant(std::size_t n, double value) { return Vector(n, value); }

Vector Zeros(std::size_t n) { return Vector(n, 0.0); }

Vector UniformProbability(std::size_t n) {
  TMARK_CHECK(n > 0);
  return Vector(n, 1.0 / static_cast<double>(n));
}

double Dot(const Vector& a, const Vector& b) {
  TMARK_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm1(const Vector& v) {
  double s = 0.0;
  for (double x : v) s += std::abs(x);
  return s;
}

double Norm2(const Vector& v) { return std::sqrt(Dot(v, v)); }

double NormInf(const Vector& v) {
  double s = 0.0;
  for (double x : v) s = std::max(s, std::abs(x));
  return s;
}

double Sum(const Vector& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

void Axpy(double alpha, const Vector& x, Vector* y) {
  TMARK_CHECK(y != nullptr && x.size() == y->size());
  for (std::size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, Vector* v) {
  TMARK_CHECK(v != nullptr);
  for (double& x : *v) x *= alpha;
}

Vector Add(const Vector& a, const Vector& b) {
  TMARK_CHECK(a.size() == b.size());
  Vector out(a);
  Axpy(1.0, b, &out);
  return out;
}

Vector Sub(const Vector& a, const Vector& b) {
  TMARK_CHECK(a.size() == b.size());
  Vector out(a);
  Axpy(-1.0, b, &out);
  return out;
}

double L1Distance(const Vector& a, const Vector& b) {
  TMARK_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
  return s;
}

void NormalizeL1(Vector* v) {
  TMARK_CHECK(v != nullptr);
  double s = Sum(*v);
  TMARK_CHECK_MSG(s > 0.0, "cannot L1-normalize a zero/negative-sum vector");
  Scale(1.0 / s, v);
}

std::size_t ArgMax(const Vector& v) {
  TMARK_CHECK(!v.empty());
  return static_cast<std::size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

std::vector<std::size_t> ArgSortDescending(const Vector& v) {
  std::vector<std::size_t> idx(v.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [&v](std::size_t a, std::size_t b) { return v[a] > v[b]; });
  return idx;
}

bool IsProbabilityVector(const Vector& v, double tol) {
  for (double x : v) {
    if (x < -tol) return false;
  }
  return std::abs(Sum(v) - 1.0) <= tol;
}

}  // namespace tmark::la
