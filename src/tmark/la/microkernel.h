#ifndef TMARK_LA_MICROKERNEL_H_
#define TMARK_LA_MICROKERNEL_H_

// Register-blocked SIMD micro-kernels over contiguous column runs.
//
// Every multi-RHS panel kernel (SparseMatrix::*Panel, SparseTensor3::
// Contract*Panel, FeatureSimilarity::ApplyPanel, the la/panel.h column
// helpers) has the same inner shape: a short contiguous run of `width`
// doubles — the active columns of one panel row — updated element-wise.
// The primitives here process that run in fixed-width column blocks of
// 8, then 4, then 2, with a scalar tail, each block a constant-trip-count
// loop annotated with TMARK_SIMD (common/simd.h) so the compiler emits
// straight-line vector code with no runtime length or aliasing checks.
//
// Bit-identity by construction: blocking happens across *columns*, and
// columns are independent per-class chains — no primitive ever combines
// values from two different columns. Column c therefore sees exactly the
// scalar operation sequence of the unblocked loop (and of the per-class
// engine) at every block width, so batched == per_class survives
// vectorization untouched (docs/PERFORMANCE.md).
//
// All pointers reference runs of at least `width` doubles; distinct
// pointer arguments must not alias (panel kernels pass disjoint rows or
// scratch buffers).

#include <cmath>
#include <cstddef>

#include "tmark/common/simd.h"

namespace tmark::la::mk {

/// The descending column-block widths the dispatcher tries, ending in the
/// scalar tail. Exposed for tests and the kernel microbenchmarks.
inline constexpr std::size_t kBlockWidths[] = {8, 4, 2, 1};

/// Human-readable description of the compiled-in SIMD annotation, recorded
/// in bench dumps so committed numbers are attributable.
const char* SimdAnnotation();

namespace detail {

/// Runs Op::Run<W>(c, args...) over [0, width): blocks of 8, then at most
/// one each of 4, 2, and the scalar tail, in ascending column order.
template <typename Op, typename... Args>
inline void Dispatch(std::size_t width, Args... args) {
  std::size_t c = 0;
  for (; c + 8 <= width; c += 8) Op::template Run<8>(c, args...);
  if (c + 4 <= width) {
    Op::template Run<4>(c, args...);
    c += 4;
  }
  if (c + 2 <= width) {
    Op::template Run<2>(c, args...);
    c += 2;
  }
  if (c < width) Op::template Run<1>(c, args...);
}

struct ZeroOp {
  template <std::size_t W>
  static void Run(std::size_t c, double* d) {
    TMARK_SIMD
    for (std::size_t i = 0; i < W; ++i) d[c + i] = 0.0;
  }
};

struct CopyOp {
  template <std::size_t W>
  static void Run(std::size_t c, double* d, const double* s) {
    TMARK_SIMD
    for (std::size_t i = 0; i < W; ++i) d[c + i] = s[c + i];
  }
};

struct ScaleOp {
  template <std::size_t W>
  static void Run(std::size_t c, double* d, double a) {
    TMARK_SIMD
    for (std::size_t i = 0; i < W; ++i) d[c + i] *= a;
  }
};

struct AxpyOp {
  template <std::size_t W>
  static void Run(std::size_t c, double* d, double a, const double* s) {
    TMARK_SIMD
    for (std::size_t i = 0; i < W; ++i) d[c + i] += a * s[c + i];
  }
};

struct AddOp {
  template <std::size_t W>
  static void Run(std::size_t c, double* d, const double* s) {
    TMARK_SIMD
    for (std::size_t i = 0; i < W; ++i) d[c + i] += s[c + i];
  }
};

// f32-input variants of the gather ops: sources are float (the opt-in fp32
// panel-storage mode halves gather traffic), accumulation stays double. The
// widening converts exactly (every float is a double), so the only rounding
// relative to the fp64 path is the one demotion applied when the panel was
// stored — bounded per gather by |x| * 2^-24, the bound the fp32-mode test
// checks end to end.

struct AxpyF32Op {
  template <std::size_t W>
  static void Run(std::size_t c, double* d, double a, const float* s) {
    TMARK_SIMD
    for (std::size_t i = 0; i < W; ++i) {
      d[c + i] += a * static_cast<double>(s[c + i]);
    }
  }
};

struct AddF32Op {
  template <std::size_t W>
  static void Run(std::size_t c, double* d, const float* s) {
    TMARK_SIMD
    for (std::size_t i = 0; i < W; ++i) d[c + i] += static_cast<double>(s[c + i]);
  }
};

struct DemoteOp {
  template <std::size_t W>
  static void Run(std::size_t c, float* d, const double* s) {
    TMARK_SIMD
    for (std::size_t i = 0; i < W; ++i) d[c + i] = static_cast<float>(s[c + i]);
  }
};

struct MulOp {
  template <std::size_t W>
  static void Run(std::size_t c, double* d, const double* s) {
    TMARK_SIMD
    for (std::size_t i = 0; i < W; ++i) d[c + i] *= s[c + i];
  }
};

struct MulAddOp {
  template <std::size_t W>
  static void Run(std::size_t c, double* d, const double* a,
                  const double* b) {
    TMARK_SIMD
    for (std::size_t i = 0; i < W; ++i) d[c + i] += a[c + i] * b[c + i];
  }
};

struct DivScalarOp {
  template <std::size_t W>
  static void Run(std::size_t c, double* d, const double* s, double v) {
    TMARK_SIMD
    for (std::size_t i = 0; i < W; ++i) d[c + i] = s[c + i] / v;
  }
};

struct AccumAbsDiffOp {
  template <std::size_t W>
  static void Run(std::size_t c, double* acc, const double* a,
                  const double* b) {
    TMARK_SIMD
    for (std::size_t i = 0; i < W; ++i) {
      acc[c + i] += std::abs(a[c + i] - b[c + i]);
    }
  }
};

struct FusedCombineOp {
  template <std::size_t W>
  static void Run(std::size_t c, double* x, double rel, double beta,
                  const double* wx, double alpha, const double* l,
                  double* sums) {
    TMARK_SIMD
    for (std::size_t i = 0; i < W; ++i) {
      // The exact per-element sequence of Scale, Axpy(beta, wx),
      // Axpy(alpha, l), then the column-sum accumulation.
      double v = x[c + i] * rel;
      v += beta * wx[c + i];
      v += alpha * l[c + i];
      x[c + i] = v;
      sums[c + i] += v;
    }
  }
};

struct FusedScaleAbsDiffOp {
  template <std::size_t W>
  static void Run(std::size_t c, double* d, const double* inv,
                  const double* prev, double* acc) {
    TMARK_SIMD
    for (std::size_t i = 0; i < W; ++i) {
      const double v = d[c + i] * inv[c + i];
      d[c + i] = v;
      acc[c + i] += std::abs(v - prev[c + i]);
    }
  }
};

}  // namespace detail

/// d[c] = 0 for c in [0, width).
inline void Zero(double* d, std::size_t width) {
  detail::Dispatch<detail::ZeroOp>(width, d);
}

/// d[c] = s[c].
inline void Copy(double* d, const double* s, std::size_t width) {
  detail::Dispatch<detail::CopyOp>(width, d, s);
}

/// d[c] *= a.
inline void Scale(double* d, double a, std::size_t width) {
  detail::Dispatch<detail::ScaleOp>(width, d, a);
}

/// d[c] += a * s[c] — the CSR inner multiply-add of every panel kernel.
inline void Axpy(double* d, double a, const double* s, std::size_t width) {
  detail::Dispatch<detail::AxpyOp>(width, d, a, s);
}

/// d[c] += s[c] — ordered per-chunk partial merges, dangling spreads.
inline void Add(double* d, const double* s, std::size_t width) {
  detail::Dispatch<detail::AddOp>(width, d, s);
}

/// d[c] += a * s[c] with a float source, accumulated in double — the fp32
/// panel-storage gather (overload keeps the shared kernel templates width-
/// agnostic).
inline void Axpy(double* d, double a, const float* s, std::size_t width) {
  detail::Dispatch<detail::AxpyF32Op>(width, d, a, s);
}

/// d[c] += s[c] with a float source, accumulated in double.
inline void Add(double* d, const float* s, std::size_t width) {
  detail::Dispatch<detail::AddF32Op>(width, d, s);
}

/// d[c] = (float)s[c] — the per-iteration fp32 panel mirror refresh.
inline void Demote(float* d, const double* s, std::size_t width) {
  detail::Dispatch<detail::DemoteOp>(width, d, s);
}

/// d[c] *= s[c] — the per-column normalization apply.
inline void Mul(double* d, const double* s, std::size_t width) {
  detail::Dispatch<detail::MulOp>(width, d, s);
}

/// d[c] += a[c] * b[c] — bilinear accumulations, z(k,c) * acc(c) terms.
inline void MulAdd(double* d, const double* a, const double* b,
                   std::size_t width) {
  detail::Dispatch<detail::MulAddOp>(width, d, a, b);
}

/// d[c] = s[c] / v — kept as a true division to match the per-class
/// element order bit for bit (no reciprocal rewrite).
inline void DivScalar(double* d, const double* s, double v,
                      std::size_t width) {
  detail::Dispatch<detail::DivScalarOp>(width, d, s, v);
}

/// acc[c] += |a[c] - b[c]| — the residual-distance row step.
inline void AccumAbsDiff(double* acc, const double* a, const double* b,
                         std::size_t width) {
  detail::Dispatch<detail::AccumAbsDiffOp>(width, acc, a, b);
}

/// x[c] = rel*x[c] + beta*wx[c] + alpha*l[c]; sums[c] += x[c]. One row step
/// of the fused combine pass (la::FusedCombineColumns).
inline void FusedCombine(double* x, double rel, double beta, const double* wx,
                         double alpha, const double* l, double* sums,
                         std::size_t width) {
  detail::Dispatch<detail::FusedCombineOp>(width, x, rel, beta, wx, alpha, l,
                                           sums);
}

/// d[c] *= inv[c]; acc[c] += |d[c] - prev[c]|. One row step of the fused
/// normalize + residual pass (la::FusedNormalizeDistanceColumns).
inline void FusedScaleAbsDiff(double* d, const double* inv, const double* prev,
                              double* acc, std::size_t width) {
  detail::Dispatch<detail::FusedScaleAbsDiffOp>(width, d, inv, prev, acc);
}

/// True when any of s[0..width) is non-zero. Early exit is safe: callers
/// only branch on the boolean, never on how it was computed.
inline bool AnyNonZero(const double* s, std::size_t width) {
  for (std::size_t c = 0; c < width; ++c) {
    if (s[c] != 0.0) return true;
  }
  return false;
}

}  // namespace tmark::la::mk

#endif  // TMARK_LA_MICROKERNEL_H_
