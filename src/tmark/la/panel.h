#ifndef TMARK_LA_PANEL_H_
#define TMARK_LA_PANEL_H_

// Multi-RHS "panel" support for the batched fit engine.
//
// A panel is a row-major DenseMatrix whose leading `width` columns are
// active: column c holds the vector of one independent per-class chain, and
// the batched kernels (SparseMatrix::MatMulPanel, SparseTensor3::
// ContractMode1Panel, ...) stream the sparse structure once while updating
// all active columns with a contiguous inner loop. Every panel kernel
// performs, per column, exactly the floating-point operations of its
// single-vector counterpart in the same order, so batched results are
// bit-identical to the per-class ones (docs/PERFORMANCE.md). The inner
// column runs are executed by the register-blocked SIMD micro-kernels of
// la/microkernel.h; blocking across columns never mixes columns, so the
// guarantee survives vectorization.
//
// PanelWorkspace owns the reusable scratch buffers (per-chunk partials for
// the scatter/reduction kernels, small per-call accumulators) so a fit
// allocates them once, not once per iteration. A workspace serves one
// kernel invocation at a time: kernels prepare it on the calling thread and
// chunk workers touch disjoint buffers.

#include <cstddef>
#include <deque>
#include <vector>

#include "tmark/la/dense_matrix.h"
#include "tmark/la/vector_ops.h"

namespace tmark::la {

/// Reusable scratch storage for the panel kernels. Buffers grow on demand
/// and keep their capacity across invocations, so steady-state iterations
/// allocate nothing.
class PanelWorkspace {
 public:
  /// Zeroes and returns `count` buffers of `size` doubles each, one per
  /// chunk of a parallel kernel. Call on the coordinating thread before the
  /// parallel region; workers then use Chunk(i) exclusively.
  void PrepareChunks(std::size_t count, std::size_t size);

  /// Chunk buffer `i` of the last PrepareChunks call.
  Vector& Chunk(std::size_t i) { return chunks_[i]; }

  /// Zeroed small per-call accumulator (column sums, dangling masses, ...).
  /// Slots are scoped to a single kernel invocation; different slots may be
  /// alive at the same time within one call (deque storage keeps earlier
  /// references valid while later slots are fetched).
  Vector& Buffer(std::size_t slot, std::size_t size);

  /// Dense scratch panel `slot`, reallocated only when the shape changes.
  /// Contents are unspecified; kernels overwrite their active region.
  DenseMatrix& Panel(std::size_t slot, std::size_t rows, std::size_t cols);

 private:
  std::vector<Vector> chunks_;
  std::deque<Vector> buffers_;
  std::deque<DenseMatrix> panels_;
};

// Column-wise helpers on the leading `width` columns of a panel. Each one
// matches the per-vector op in vector_ops.h per column (same element order).

/// panel(:, c) *= alpha for c in [0, width).
void ScaleLeadingColumns(double alpha, std::size_t width, DenseMatrix* panel);

/// y(:, c) += alpha * x(:, c) for c in [0, width).
void AxpyLeadingColumns(double alpha, const DenseMatrix& x, std::size_t width,
                        DenseMatrix* y);

/// L1-normalizes each leading column in place; requires a positive column
/// sum (the probability-simplex projection of la::NormalizeL1).
void NormalizeLeadingColumnsL1(std::size_t width, DenseMatrix* panel);

/// out[c] = ||a(:, c) - b(:, c)||_1 for c in [0, width).
void LeadingColumnL1Distances(const DenseMatrix& a, const DenseMatrix& b,
                              std::size_t width, Vector* out);

/// out[c] = sum_i panel(i, c) for c in [0, width); matches la::Sum's
/// left-to-right accumulation per column.
void LeadingColumnSums(const DenseMatrix& panel, std::size_t width,
                       Vector* out);

/// panel(:, col) = v.
void SetColumn(const Vector& v, std::size_t col, DenseMatrix* panel);

/// out = panel(:, col), reusing out's storage.
void ExtractColumn(const DenseMatrix& panel, std::size_t col, Vector* out);

/// panel(:, to) = panel(:, from) (the active-column compaction move).
void MoveColumn(std::size_t from, std::size_t to, DenseMatrix* panel);

// Fused per-iteration passes of the batched fit engine. Each replaces a
// sequence of the single-purpose sweeps above with one traversal of the
// panels, performing per column exactly the same floating-point operations
// in the same order — so fused results are bit-identical to the unfused
// sequence (and hence to the per-class engine).

/// The fused x-combine pass:
///
///   x(i, c) = rel * x(i, c) + beta * wx(i, c) + alpha * l(i, c)
///   sums[c] = sum_i x(i, c)   (accumulated in ascending row order)
///
/// for c in [0, width), in ONE traversal — replacing ScaleLeadingColumns +
/// two AxpyLeadingColumns + the LeadingColumnSums pass of the subsequent L1
/// normalization (four sweeps -> one). Per element the operation sequence
/// is scale, +beta*wx, +alpha*l, then the sum accumulation: exactly the
/// unfused order. `sums` is assigned (size width).
void FusedCombineColumns(double rel, double beta, const DenseMatrix& wx,
                         double alpha, const DenseMatrix& l, std::size_t width,
                         DenseMatrix* x, Vector* sums);

/// The fused normalize + residual pass:
///
///   panel(i, c) /= sums[c]        (as multiplication by the reciprocal,
///                                  exactly NormalizeLeadingColumnsL1)
///   out[c] = ||panel(:, c) - prev(:, c)||_1   (over normalized values)
///
/// in ONE traversal — replacing the NormalizeLeadingColumnsL1 apply sweep +
/// LeadingColumnL1Distances (two sweeps -> one). Requires sums[c] > 0 for
/// every leading column. `sums` is consumed: it is overwritten with the
/// reciprocals. `out` is assigned (size width).
void FusedNormalizeDistanceColumns(Vector* sums, const DenseMatrix& prev,
                                   std::size_t width, DenseMatrix* panel,
                                   Vector* out);

}  // namespace tmark::la

#endif  // TMARK_LA_PANEL_H_
