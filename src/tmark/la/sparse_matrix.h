#ifndef TMARK_LA_SPARSE_MATRIX_H_
#define TMARK_LA_SPARSE_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tmark/la/dense_matrix.h"
#include "tmark/la/index_array.h"
#include "tmark/la/panel.h"
#include "tmark/la/vector_ops.h"

namespace tmark::la {

/// One (row, col, value) entry used when assembling sparse matrices.
struct Triplet {
  std::uint32_t row;
  std::uint32_t col;
  double value;
};

/// Full replacement of one row's stored entries, applied through
/// SparseMatrix::ApplyRowEdits. Columns must be ascending, unique, and in
/// range; an empty edit clears the row.
struct RowEdit {
  std::size_t row;
  std::vector<std::uint32_t> cols;
  std::vector<double> values;  ///< One per column.
};

/// Compressed Sparse Row matrix of doubles.
///
/// The workhorse for HIN adjacency slices and bag-of-words feature matrices.
/// Duplicate triplets are summed during assembly; entries within a row are
/// sorted by column index.
class SparseMatrix {
 public:
  /// Row grain of the Bilinear / BilinearPanel reductions. Public so fused
  /// multi-slice kernels (SparseTensor3::ContractMode3Panel) can reproduce
  /// the exact per-chunk partial-sum boundaries — the fold order is part of
  /// the bit-identity contract, not just the grouping of work.
  static constexpr std::size_t kBilinearReduceGrain = 8192;

  /// Empty 0x0 matrix.
  SparseMatrix() : rows_(0), cols_(0), row_ptr_(IndexArray::Zeros(1)) {}

  /// All-zero rows x cols matrix.
  SparseMatrix(std::size_t rows, std::size_t cols);

  /// Assembles from triplets, summing duplicates.
  static SparseMatrix FromTriplets(std::size_t rows, std::size_t cols,
                                   std::vector<Triplet> triplets);

  /// Converts a dense matrix, dropping entries with |v| <= tol.
  static SparseMatrix FromDense(const DenseMatrix& dense, double tol = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t NumNonZeros() const { return values_.size(); }

  /// CSR internals (read-only). row_ptr has rows()+1 entries and stores
  /// 32-bit offsets whenever nnz permits (see la/index_array.h).
  const IndexArray& row_ptr() const { return row_ptr_; }
  const std::vector<std::uint32_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  /// Bytes held by the CSR structure (row_ptr + col_idx + values). The
  /// scaling bench compares this across index widths; peak RSS cannot
  /// distinguish them within one process (the high-water mark is monotone).
  std::size_t StructureBytes() const {
    return row_ptr_.StorageBytes() + col_idx_.size() * sizeof(std::uint32_t) +
           values_.size() * sizeof(double);
  }

  /// Value at (r, c); zero when not stored. O(log nnz-in-row).
  double At(std::size_t r, std::size_t c) const;

  /// Sentinel for FindEntry: entry not stored.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Entry-storage position of (r, c) in col_idx()/values(), or npos when
  /// the entry is not stored. O(log nnz-in-row).
  std::size_t FindEntry(std::size_t r, std::size_t c) const;

  /// Replaces the stored entries of each listed row (at most one edit per
  /// row). col_idx/values are spliced through a single gap-copy pass and
  /// row_ptr is patched in place through the IndexArray mutators, leaving
  /// the matrix byte-identical to a from-scratch assembly of the same
  /// contents. O(nnz + sum of edited-row sizes).
  void ApplyRowEdits(std::vector<RowEdit> edits);

  /// y = this * x. Requires x.size() == cols().
  Vector MatVec(const Vector& x) const;

  /// MatVec into a caller-owned vector: y is resized to rows() and every
  /// entry overwritten. Steady-state calls with a warm y allocate nothing.
  void MatVecInto(const Vector& x, Vector* y) const;

  /// y = this^T * x. Requires x.size() == rows().
  Vector TransposeMatVec(const Vector& x) const;

  /// TransposeMatVec into a caller-owned vector, with the ordered per-chunk
  /// scatter partials drawn from `ws` instead of a fresh allocation. Same
  /// chunk layout and merge order as TransposeMatVec — bit-identical.
  void TransposeMatVecInto(const Vector& x, Vector* y,
                           PanelWorkspace* ws) const;

  /// Sum over each row -> vector of length rows().
  Vector RowSums() const;

  /// Sum over each column -> vector of length cols().
  Vector ColumnSums() const;

  /// Returns a copy with every stored column c scaled by scale[c].
  SparseMatrix ScaleColumns(const Vector& scale) const;

  /// Returns a copy with every stored row r scaled by scale[r].
  SparseMatrix ScaleRows(const Vector& scale) const;

  /// Column-stochastic copy: each column with positive sum is divided by its
  /// sum. Columns with zero sum stay zero (callers handle dangling columns;
  /// see tensor::TransitionTensors). `dangling`, when non-null, receives a
  /// flag per column telling whether its sum was zero.
  SparseMatrix NormalizeColumnsSparse(std::vector<bool>* dangling) const;

  /// Transposed copy (CSR of the transpose).
  SparseMatrix Transpose() const;

  /// this * other (sparse-sparse product). Requires cols() == other.rows().
  SparseMatrix MatMul(const SparseMatrix& other) const;

  /// this * dense (sparse-dense product). Requires cols() == dense.rows().
  DenseMatrix MatMulDense(const DenseMatrix& dense) const;

  /// this^T * dense. Requires rows() == dense.rows().
  DenseMatrix TransposeMatMulDense(const DenseMatrix& dense) const;

  /// Element-wise sum of two same-shape matrices.
  SparseMatrix Add(const SparseMatrix& other) const;

  /// Densified copy (small matrices / tests only).
  DenseMatrix ToDense() const;

  /// Sum_{(i,j) stored} value(i,j) * x[i] * y[j]; the bilinear form x^T A y.
  double Bilinear(const Vector& x, const Vector& y) const;

  // Multi-RHS panel kernels (see la/panel.h). Each operates on the leading
  // `width` columns of its row-major panels (physical column stride =
  // panel.cols()) and streams the CSR structure once for all columns. Per
  // column they run exactly the float ops of the single-vector kernel in
  // the same order, so results are bit-identical to `width` separate calls.

  /// y(:, c) = this * x(:, c) for c in [0, width). Requires
  /// x.rows() == cols(), y->rows() == rows(), matching column strides.
  void MatMulPanel(const DenseMatrix& x, std::size_t width,
                   DenseMatrix* y) const;

  /// y(:, c) = this^T * x(:, c) for c in [0, width). Requires
  /// x.rows() == rows(), y->rows() == cols(). Uses `ws` for the ordered
  /// per-chunk scatter partials (same chunk layout as TransposeMatVec).
  void TransposeMatMulPanel(const DenseMatrix& x, std::size_t width,
                            DenseMatrix* y, PanelWorkspace* ws) const;

  /// out[c] = x(:, c)^T * this * y(:, c) for c in [0, width). `out` must
  /// hold at least `width` doubles. Uses `ws` for the ordered per-chunk
  /// reduction partials (same chunk layout as Bilinear).
  void BilinearPanel(const DenseMatrix& x, const DenseMatrix& y,
                     std::size_t width, double* out, PanelWorkspace* ws) const;

  /// True if every stored value is >= 0.
  bool IsNonNegative() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  IndexArray row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace tmark::la

#endif  // TMARK_LA_SPARSE_MATRIX_H_
