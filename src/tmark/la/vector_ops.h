#ifndef TMARK_LA_VECTOR_OPS_H_
#define TMARK_LA_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace tmark::la {

/// Dense column vector of doubles. A plain alias keeps interop with the STL
/// trivial; the free functions below supply the numeric kernels.
using Vector = std::vector<double>;

/// Returns a vector of length n filled with `value`.
Vector Constant(std::size_t n, double value);

/// Returns the all-zero vector of length n.
Vector Zeros(std::size_t n);

/// Returns the uniform probability vector (1/n, ..., 1/n). Requires n > 0.
Vector UniformProbability(std::size_t n);

/// Dot product. Requires equal sizes.
double Dot(const Vector& a, const Vector& b);

/// L1 norm: sum of absolute values.
double Norm1(const Vector& v);

/// L2 norm.
double Norm2(const Vector& v);

/// Maximum absolute entry.
double NormInf(const Vector& v);

/// Sum of entries.
double Sum(const Vector& v);

/// y += alpha * x. Requires equal sizes.
void Axpy(double alpha, const Vector& x, Vector* y);

/// v *= alpha.
void Scale(double alpha, Vector* v);

/// Returns a + b.
Vector Add(const Vector& a, const Vector& b);

/// Returns a - b.
Vector Sub(const Vector& a, const Vector& b);

/// ||a - b||_1. Requires equal sizes.
double L1Distance(const Vector& a, const Vector& b);

/// Normalizes v in place so its entries sum to one. Requires Sum(v) > 0 and
/// all entries non-negative (a probability-vector projection).
void NormalizeL1(Vector* v);

/// Index of the maximum entry (first on ties). Requires non-empty.
std::size_t ArgMax(const Vector& v);

/// Returns indices of v sorted by decreasing value (stable on ties).
std::vector<std::size_t> ArgSortDescending(const Vector& v);

/// True if every entry is >= -tol and the entries sum to 1 within tol.
bool IsProbabilityVector(const Vector& v, double tol = 1e-9);

}  // namespace tmark::la

#endif  // TMARK_LA_VECTOR_OPS_H_
