#include "tmark/common/strict_parse.h"

#include <charconv>
#include <cmath>
#include <string>

namespace tmark {
namespace {

std::string Quoted(std::string_view token) {
  std::string out = "'";
  // Clamp hostile tokens so error messages stay one line and bounded.
  constexpr std::size_t kMaxEcho = 64;
  if (token.size() > kMaxEcho) {
    out.append(token.substr(0, kMaxEcho));
    out += "...";
  } else {
    out.append(token);
  }
  out += "'";
  return out;
}

}  // namespace

Result<std::size_t> ParseIndex(std::string_view token) {
  if (token.empty()) return ParseError("empty index token");
  // from_chars already rejects '+', whitespace, and hex prefixes for
  // unsigned parses, but a leading '-' would parse via wraparound on some
  // implementations; reject any non-digit up front.
  for (char c : token) {
    if (c < '0' || c > '9') {
      return ParseError("invalid index " + Quoted(token) +
                        " (expected digits only)");
    }
  }
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec == std::errc::result_out_of_range) {
    return ParseError("index " + Quoted(token) + " overflows");
  }
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return ParseError("invalid index " + Quoted(token));
  }
  return value;
}

Result<std::size_t> ParseBoundedIndex(std::string_view token,
                                      std::size_t bound,
                                      std::string_view what) {
  TMARK_ASSIGN_OR_RETURN(const std::size_t value, ParseIndex(token));
  if (value >= bound) {
    return ParseError(std::string(what) + " " + std::to_string(value) +
                      " out of range [0, " + std::to_string(bound) + ")");
  }
  return value;
}

Result<double> ParseFiniteDouble(std::string_view token) {
  if (token.empty()) return ParseError("empty number token");
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(
      token.data(), token.data() + token.size(), value,
      std::chars_format::general);
  if (ec == std::errc::result_out_of_range) {
    // The standard leaves `value` unmodified here (libstdc++ does), so the
    // magnitude is unknowable; reject overflow and underflow alike.
    return ParseError("number " + Quoted(token) + " is out of range");
  }
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return ParseError("invalid number " + Quoted(token));
  }
  if (!std::isfinite(value)) {
    return ParseError("non-finite number " + Quoted(token));
  }
  return value;
}

Result<double> ParsePositiveFiniteDouble(std::string_view token) {
  TMARK_ASSIGN_OR_RETURN(const double value, ParseFiniteDouble(token));
  if (!(value > 0.0)) {
    return ParseError("expected a positive weight, got " + Quoted(token));
  }
  return value;
}

}  // namespace tmark
