#include "tmark/common/random.h"

#include <cmath>
#include <numeric>

#include "tmark/common/check.h"

namespace tmark {

double Rng::Uniform() {
  // 53 random bits into the mantissa for a uniform double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  TMARK_CHECK(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  TMARK_CHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return v % n;
}

double Rng::Normal() {
  // Box-Muller; draw until u1 > 0 to avoid log(0).
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Poisson(double mean) {
  TMARK_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    double prod = Uniform();
    int k = 0;
    while (prod > limit) {
      prod *= Uniform();
      ++k;
    }
    return k;
  }
  // Normal approximation for large means; clamp to non-negative.
  const double v = Normal(mean, std::sqrt(mean));
  return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  TMARK_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    TMARK_CHECK_MSG(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  TMARK_CHECK_MSG(total > 0.0, "categorical weights must not all be zero");
  double target = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack: return the last index.
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  TMARK_CHECK(k <= n);
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  // Partial Fisher-Yates: the first k positions become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(UniformInt(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::Fork() { return Rng((*this)() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace tmark
