#ifndef TMARK_COMMON_SIMD_H_
#define TMARK_COMMON_SIMD_H_

// Portable vectorization annotation for the register-blocked micro-kernels
// (la/microkernel.h).
//
// TMARK_SIMD marks the loop that follows as having independent iterations —
// no loop-carried dependence, no aliasing between the streamed operands —
// so the compiler may vectorize it without emitting a runtime dependence
// check. It maps to the strongest hint each supported compiler honors
// without extra build flags:
//
//   clang  ->  #pragma clang loop vectorize(enable) interleave(enable)
//   GCC    ->  #pragma GCC ivdep
//   other  ->  (nothing; the loop still compiles, just unannotated)
//
// The annotation never changes results: the micro-kernels block across
// *columns* of a panel, and columns are independent per-class chains, so any
// vector width executes each column's scalar operation sequence unchanged
// (the bit-identity argument in docs/PERFORMANCE.md). Deliberately NOT
// `#pragma omp simd`: that spelling warns under -Wall without -fopenmp-simd
// and would tie the build to an OpenMP flag for no extra effect.

#if defined(__clang__)
#define TMARK_SIMD _Pragma("clang loop vectorize(enable) interleave(enable)")
#define TMARK_SIMD_FLAVOR "clang-loop-vectorize"
#elif defined(__GNUC__)
#define TMARK_SIMD _Pragma("GCC ivdep")
#define TMARK_SIMD_FLAVOR "gcc-ivdep"
#else
#define TMARK_SIMD
#define TMARK_SIMD_FLAVOR "none"
#endif

#endif  // TMARK_COMMON_SIMD_H_
