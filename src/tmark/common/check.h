#ifndef TMARK_COMMON_CHECK_H_
#define TMARK_COMMON_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

// POLICY (docs/ERRORS.md): TMARK_CHECK is strictly for *internal contract
// violations* — a caller broke a documented precondition of an in-process
// API, which is a bug in the calling code. Failures caused by untrusted
// input (files, CLI flags, anything a user or the network controls) must
// NOT use TMARK_CHECK; they return tmark::Status / tmark::Result<T>
// (common/status.h) so callers can handle them without exceptions.

namespace tmark {

/// Error thrown when a TMARK_CHECK contract is violated. Deriving from
/// std::logic_error makes violations testable with EXPECT_THROW while still
/// aborting unittested code paths loudly.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace internal {

[[noreturn]] inline void CheckFail(const char* expr, const char* file,
                                   int line, const std::string& msg) {
  std::ostringstream os;
  os << "TMARK_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace internal
}  // namespace tmark

/// Contract check: evaluates `cond`; on failure throws tmark::CheckError with
/// file/line context. Used for preconditions on public APIs.
#define TMARK_CHECK(cond)                                             \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::tmark::internal::CheckFail(#cond, __FILE__, __LINE__, "");    \
    }                                                                 \
  } while (false)

/// Contract check with an explanatory message (any streamable expression).
#define TMARK_CHECK_MSG(cond, msg)                                    \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::ostringstream tmark_check_os_;                             \
      tmark_check_os_ << msg;                                         \
      ::tmark::internal::CheckFail(#cond, __FILE__, __LINE__,         \
                                   tmark_check_os_.str());            \
    }                                                                 \
  } while (false)

#endif  // TMARK_COMMON_CHECK_H_
