#ifndef TMARK_COMMON_STATUS_H_
#define TMARK_COMMON_STATUS_H_

// Typed error layer for untrusted-input boundaries.
//
// The library distinguishes two failure families (docs/ERRORS.md):
//
//   * Contract violations — a caller broke a documented precondition on an
//     in-process API (index out of range, unfitted classifier, ...). These
//     are programmer errors; TMARK_CHECK (common/check.h) throws CheckError.
//   * Untrusted-input failures — a file, flag, or network payload the
//     process does not control is malformed or unreadable. These are
//     expected at production rates and must be *values*, not exceptions:
//     every Load/Save boundary returns tmark::Status or tmark::Result<T>.
//
// Status carries a code from a small closed taxonomy plus a human-readable
// message; WithContext prepends location context ("line 42: ...") as errors
// propagate outward. Result<T> is the value-or-Status sum type used by
// loaders; the TMARK_RETURN_IF_ERROR / TMARK_ASSIGN_OR_RETURN macros keep
// propagation one line per call.

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "tmark/common/check.h"

namespace tmark {

/// Closed error-code taxonomy. Codes are part of the public API surface:
/// tests assert them, tmark_cli maps them to exit codes, and the obs layer
/// exports per-code `io.errors.*` counters.
enum class StatusCode {
  kOk = 0,
  /// A caller-supplied value is out of the documented domain (bad flag
  /// value, unknown preset, dimensions too large to allocate).
  kInvalidArgument,
  /// Untrusted byte stream does not conform to its format (bad directive,
  /// non-numeric token, NaN weight, duplicate edge, short row).
  kParseError,
  /// A named resource (file path, preset, kernel name) does not exist or
  /// cannot be opened.
  kNotFound,
  /// The operation requires state the system is not in (e.g. model data
  /// before its `shape` line).
  kFailedPrecondition,
  /// An I/O write or read failed midway; bytes may be missing or torn.
  kDataLoss,
  /// A bounded resource is full (serving admission queue, frame size
  /// limit). The request was refused before doing work; retrying after
  /// backoff is legitimate, unlike for the codes above.
  kResourceExhausted,
  /// A bug inside the library surfaced at an input boundary; file an issue.
  kInternal,
};

/// Stable upper-snake name of `code` ("PARSE_ERROR", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Lower-snake metric suffix of `code` ("parse_error", ...), used for the
/// per-code `io.errors.<suffix>` counters.
std::string_view StatusCodeMetricSuffix(StatusCode code);

/// A status code plus a human-readable message. Cheap to move; an OK status
/// carries no message.
class Status {
 public:
  /// Default-constructed status is OK.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "PARSE_ERROR: line 3: bad edge" (or "OK").
  std::string ToString() const;

  /// Returns a copy with `context` prepended to the message, so errors read
  /// outermost-context first: Status(kParseError, "bad weight")
  /// .WithContext("line 7").WithContext("net.hin") yields
  /// "net.hin: line 7: bad weight". No-op on OK statuses.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Factory helpers, one per non-OK code.
Status InvalidArgumentError(std::string_view message);
Status ParseError(std::string_view message);
Status NotFoundError(std::string_view message);
Status FailedPreconditionError(std::string_view message);
Status DataLossError(std::string_view message);
Status ResourceExhaustedError(std::string_view message);
Status InternalError(std::string_view message);

/// Exception form of a non-OK Status, thrown only by the *OrThrow
/// compatibility shims (and never by the canonical Status-returning APIs).
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.ToString()), status_(std::move(status)) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// [[noreturn]] helper behind the shims.
[[noreturn]] inline void ThrowStatus(Status status) {
  throw StatusError(std::move(status));
}

/// Value-or-Status: the return type of every canonical loader. Holds either
/// a T (then status() is OK) or a non-OK Status. Accessing value() on an
/// error Result is a contract violation (TMARK_CHECK).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : value_(std::move(value)) {}

  /// Implicit from a non-OK status (failure). Passing an OK status here is
  /// a contract violation: OK must carry a value.
  Result(Status status) : status_(std::move(status)) {
    TMARK_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    TMARK_CHECK_MSG(ok(), "Result::value() on error: " << status_.ToString());
    return *value_;
  }
  T& value() & {
    TMARK_CHECK_MSG(ok(), "Result::value() on error: " << status_.ToString());
    return *value_;
  }
  T&& value() && {
    TMARK_CHECK_MSG(ok(), "Result::value() on error: " << status_.ToString());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Shim helper: unwraps or throws StatusError. Consumes the Result.
  T ValueOrThrow() && {
    if (!ok()) ThrowStatus(std::move(status_));
    return *std::move(value_);
  }

 private:
  Status status_;  ///< OK iff value_ holds a T.
  std::optional<T> value_;
};

}  // namespace tmark

/// Propagates a non-OK Status from an expression evaluating to Status.
#define TMARK_RETURN_IF_ERROR(expr)                        \
  do {                                                     \
    ::tmark::Status tmark_status_if_error_ = (expr);       \
    if (!tmark_status_if_error_.ok()) {                    \
      return tmark_status_if_error_;                       \
    }                                                      \
  } while (false)

#define TMARK_STATUS_CONCAT_INNER_(a, b) a##b
#define TMARK_STATUS_CONCAT_(a, b) TMARK_STATUS_CONCAT_INNER_(a, b)

#define TMARK_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                 \
  if (!result.ok()) {                                    \
    return result.status();                              \
  }                                                      \
  lhs = *std::move(result)

/// `TMARK_ASSIGN_OR_RETURN(auto v, ParseIndex(tok));` — evaluates `rexpr`
/// (a Result<T>), returns its Status on error, otherwise assigns the value.
#define TMARK_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  TMARK_ASSIGN_OR_RETURN_IMPL_(                                             \
      TMARK_STATUS_CONCAT_(tmark_result_, __LINE__), lhs, rexpr)

#endif  // TMARK_COMMON_STATUS_H_
