#ifndef TMARK_COMMON_STRING_UTIL_H_
#define TMARK_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace tmark {

/// Splits `s` on the single character `sep`. Empty fields are preserved, so
/// `Split(",a,", ',')` yields {"", "a", ""}.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string Strip(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Returns true if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats `value` with `digits` places after the decimal point (fixed).
std::string FormatDouble(double value, int digits);

}  // namespace tmark

#endif  // TMARK_COMMON_STRING_UTIL_H_
