#include "tmark/common/string_util.h"

#include <cctype>
#include <sstream>

namespace tmark {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Strip(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  return os.str();
}

}  // namespace tmark
