#include "tmark/common/status.h"

namespace tmark {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string_view StatusCodeMetricSuffix(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kDataLoss:
      return "data_loss";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string message(context);
  message += ": ";
  message += message_;
  return Status(code_, std::move(message));
}

Status InvalidArgumentError(std::string_view message) {
  return Status(StatusCode::kInvalidArgument, std::string(message));
}

Status ParseError(std::string_view message) {
  return Status(StatusCode::kParseError, std::string(message));
}

Status NotFoundError(std::string_view message) {
  return Status(StatusCode::kNotFound, std::string(message));
}

Status FailedPreconditionError(std::string_view message) {
  return Status(StatusCode::kFailedPrecondition, std::string(message));
}

Status DataLossError(std::string_view message) {
  return Status(StatusCode::kDataLoss, std::string(message));
}

Status ResourceExhaustedError(std::string_view message) {
  return Status(StatusCode::kResourceExhausted, std::string(message));
}

Status InternalError(std::string_view message) {
  return Status(StatusCode::kInternal, std::string(message));
}

}  // namespace tmark
