#ifndef TMARK_COMMON_RANDOM_H_
#define TMARK_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace tmark {

/// Deterministic, fast pseudo-random generator (SplitMix64 core).
///
/// Every stochastic component in the library (dataset generation, train/test
/// splits, SGD shuffling, weight init) draws from an explicitly seeded Rng so
/// that experiments are bit-reproducible across runs and platforms. The
/// generator satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value (SplitMix64).
  result_type operator()() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Standard normal variate (Box-Muller, no caching — deterministic).
  double Normal();

  /// Normal variate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Poisson draw with the given mean (Knuth for small, normal approx large).
  int Poisson(double mean);

  /// Draws an index in [0, weights.size()) proportionally to `weights`
  /// (non-negative, not all zero).
  std::size_t Categorical(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Returns `k` distinct indices sampled uniformly from [0, n).
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Derives an independent child generator; useful for giving each trial or
  /// each worker its own stream without correlation.
  Rng Fork();

 private:
  std::uint64_t state_;
};

}  // namespace tmark

#endif  // TMARK_COMMON_RANDOM_H_
