#ifndef TMARK_COMMON_STRICT_PARSE_H_
#define TMARK_COMMON_STRICT_PARSE_H_

// Strict numeric parsers for untrusted text input.
//
// std::stoul / std::stod are unfit for an input boundary: they accept
// garbage suffixes ("3abc" parses as 3), silently wrap negative integers
// into huge size_t values, and happily return NaN / infinity — all of which
// would poison the column-stochastic invariants of the transition tensors
// O and R (Eqs. 6–7). These helpers parse the *entire* token or fail with a
// typed Status, check overflow, and reject non-finite doubles. They are the
// only numeric-parsing entry points the format parsers (hin_io, model_io)
// and dataset preset plumbing are allowed to use — enforced by
// scripts/check_error_policy.py.

#include <cstddef>
#include <string_view>

#include "tmark/common/status.h"

namespace tmark {

/// Parses a non-negative base-10 index. The whole token must be digits
/// (no sign, no whitespace, no hex, no exponent); values that overflow
/// std::size_t are rejected. Errors are kParseError naming the token.
Result<std::size_t> ParseIndex(std::string_view token);

/// ParseIndex with an exclusive upper bound: the parsed index must be
/// < `bound`, otherwise kParseError ("<what> 12 out of range [0, 5)").
Result<std::size_t> ParseBoundedIndex(std::string_view token,
                                      std::size_t bound,
                                      std::string_view what);

/// Parses a finite double. The whole token must match (fixed or scientific
/// notation, optional leading '-'); "nan", "inf", values overflowing to
/// infinity, and empty tokens are all kParseError.
Result<double> ParseFiniteDouble(std::string_view token);

/// ParseFiniteDouble restricted to values > 0 — the domain of edge weights,
/// whose sign and finiteness the O/R stochasticity invariants depend on.
Result<double> ParsePositiveFiniteDouble(std::string_view token);

}  // namespace tmark

#endif  // TMARK_COMMON_STRICT_PARSE_H_
