#ifndef TMARK_EVAL_EXPERIMENT_H_
#define TMARK_EVAL_EXPERIMENT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tmark/common/random.h"
#include "tmark/hin/classifier.h"
#include "tmark/hin/hin.h"

namespace tmark::eval {

/// Protocol of a training-fraction sweep (the paper's Tables 3, 4, 8, 11).
struct SweepConfig {
  std::vector<double> train_fractions = {0.1, 0.2, 0.3, 0.4, 0.5,
                                         0.6, 0.7, 0.8, 0.9};
  int trials = 3;          ///< Random splits averaged per cell (paper: 10).
  std::uint64_t seed = 77;
  bool multi_label = false;        ///< Macro-F1 on label sets instead of accuracy.
  double multi_label_threshold = 0.5;  ///< Relative confidence cutoff.
  /// T-Mark family parameters forwarded to the registry.
  double alpha = 0.8;
  double gamma = 0.6;
  double lambda = 0.7;  ///< ICA acceptance threshold; ~1 disables it.
};

/// One table cell: mean and standard deviation over trials.
struct SweepCell {
  double mean = 0.0;
  double stddev = 0.0;
};

/// One method's row of cells, aligned with SweepConfig::train_fractions.
struct MethodSweep {
  std::string method;
  std::vector<SweepCell> cells;
};

/// Stratified sample of labeled training nodes: `fraction` of each class's
/// labeled nodes (at least one per class). Deterministic given *rng.
std::vector<std::size_t> StratifiedSplit(const hin::Hin& hin, double fraction,
                                         Rng* rng);

/// Fits `classifier` on the split and scores it on the held-out labeled
/// nodes: accuracy of the primary label (single-label) or macro-F1 over
/// label sets (multi-label).
double EvaluateClassifier(const hin::Hin& hin,
                          hin::CollectiveClassifier* classifier,
                          const std::vector<std::size_t>& labeled,
                          bool multi_label, double multi_label_threshold);

/// Runs the full sweep for one registry method name.
MethodSweep RunSweep(const hin::Hin& hin, const std::string& method,
                     const SweepConfig& config);

/// Environment-driven scaling for benches: TMARK_BENCH_TRIALS overrides the
/// trial count (default `default_trials`), TMARK_BENCH_SCALE scales node
/// counts multiplicatively (default 1.0).
int BenchTrials(int default_trials);
double BenchScale();

}  // namespace tmark::eval

#endif  // TMARK_EVAL_EXPERIMENT_H_
