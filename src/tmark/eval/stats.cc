#include "tmark/eval/stats.h"

#include <cmath>

#include "tmark/common/check.h"

namespace tmark::eval {

double Mean(const std::vector<double>& sample) {
  TMARK_CHECK(!sample.empty());
  double sum = 0.0;
  for (double v : sample) sum += v;
  return sum / static_cast<double>(sample.size());
}

double SampleStdDev(const std::vector<double>& sample) {
  if (sample.size() < 2) return 0.0;
  const double mean = Mean(sample);
  double ss = 0.0;
  for (double v : sample) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(sample.size() - 1));
}

double NormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

namespace {

double TwoSidedP(double t) {
  return 2.0 * (1.0 - NormalCdf(std::abs(t)));
}

}  // namespace

TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b) {
  TMARK_CHECK(a.size() >= 2 && b.size() >= 2);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double va = SampleStdDev(a) * SampleStdDev(a);
  const double vb = SampleStdDev(b) * SampleStdDev(b);
  const double se2 = va / na + vb / nb;
  TTestResult result;
  if (se2 == 0.0) {
    // Zero variance in both samples: means either match exactly or differ
    // with certainty.
    result.t_statistic = Mean(a) == Mean(b) ? 0.0 : INFINITY;
    result.p_value = Mean(a) == Mean(b) ? 1.0 : 0.0;
    result.degrees_of_freedom = na + nb - 2.0;
    return result;
  }
  result.t_statistic = (Mean(a) - Mean(b)) / std::sqrt(se2);
  // Welch-Satterthwaite degrees of freedom.
  const double num = se2 * se2;
  const double den = (va / na) * (va / na) / (na - 1.0) +
                     (vb / nb) * (vb / nb) / (nb - 1.0);
  result.degrees_of_freedom = den > 0.0 ? num / den : na + nb - 2.0;
  result.p_value = TwoSidedP(result.t_statistic);
  return result;
}

TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b) {
  TMARK_CHECK(a.size() == b.size() && a.size() >= 2);
  std::vector<double> diff(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) diff[i] = a[i] - b[i];
  const double sd = SampleStdDev(diff);
  TTestResult result;
  result.degrees_of_freedom = static_cast<double>(a.size() - 1);
  if (sd == 0.0) {
    result.t_statistic = Mean(diff) == 0.0 ? 0.0 : INFINITY;
    result.p_value = Mean(diff) == 0.0 ? 1.0 : 0.0;
    return result;
  }
  result.t_statistic =
      Mean(diff) / (sd / std::sqrt(static_cast<double>(a.size())));
  result.p_value = TwoSidedP(result.t_statistic);
  return result;
}

std::vector<std::vector<std::size_t>> KFoldIndices(std::size_t count,
                                                   std::size_t folds) {
  TMARK_CHECK(folds >= 2 && folds <= count);
  std::vector<std::vector<std::size_t>> out(folds);
  const std::size_t base = count / folds;
  const std::size_t extra = count % folds;
  std::size_t next = 0;
  for (std::size_t f = 0; f < folds; ++f) {
    const std::size_t size = base + (f < extra ? 1 : 0);
    for (std::size_t i = 0; i < size; ++i) out[f].push_back(next++);
  }
  return out;
}

}  // namespace tmark::eval
