#include "tmark/eval/experiment.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "tmark/baselines/registry.h"
#include "tmark/common/check.h"
#include "tmark/core/prepared_operators.h"
#include "tmark/core/tmark.h"
#include "tmark/ml/metrics.h"
#include "tmark/obs/logging.h"
#include "tmark/obs/metrics.h"
#include "tmark/obs/trace.h"

namespace tmark::eval {

std::vector<std::size_t> StratifiedSplit(const hin::Hin& hin, double fraction,
                                         Rng* rng) {
  TMARK_CHECK(rng != nullptr);
  TMARK_CHECK(fraction > 0.0 && fraction < 1.0);
  std::vector<std::vector<std::size_t>> by_class(hin.num_classes());
  for (std::size_t node : hin.NodesWithLabels()) {
    by_class[hin.PrimaryLabel(node)].push_back(node);
  }
  std::vector<std::size_t> labeled;
  for (std::vector<std::size_t>& pool : by_class) {
    if (pool.empty()) continue;
    const std::size_t take = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(fraction * static_cast<double>(pool.size()))));
    rng->Shuffle(&pool);
    labeled.insert(labeled.end(), pool.begin(),
                   pool.begin() + static_cast<std::ptrdiff_t>(
                                      std::min(take, pool.size())));
  }
  std::sort(labeled.begin(), labeled.end());
  return labeled;
}

double EvaluateClassifier(const hin::Hin& hin,
                          hin::CollectiveClassifier* classifier,
                          const std::vector<std::size_t>& labeled,
                          bool multi_label, double multi_label_threshold) {
  TMARK_CHECK(classifier != nullptr);
  // Per-method fit/predict wall-clock; the sweep span (RunSweep) carries
  // the per-fraction breakdown.
  const bool timed = obs::MetricsEnabled();
  {
    obs::Stopwatch watch;
    classifier->Fit(hin, labeled);
    if (timed) {
      obs::ObserveHistogram("eval.fit_ms." + classifier->Name(),
                            watch.ElapsedMs());
    }
  }
  obs::Stopwatch predict_watch;
  std::vector<bool> is_labeled(hin.num_nodes(), false);
  for (std::size_t node : labeled) is_labeled[node] = true;
  std::vector<std::size_t> test;
  for (std::size_t node : hin.NodesWithLabels()) {
    if (!is_labeled[node]) test.push_back(node);
  }
  TMARK_CHECK_MSG(!test.empty(), "no held-out labeled nodes to score");

  if (!multi_label) {
    const std::vector<std::size_t> pred = classifier->PredictSingleLabel();
    if (timed) {
      obs::ObserveHistogram("eval.predict_ms." + classifier->Name(),
                            predict_watch.ElapsedMs());
    }
    std::vector<std::size_t> truth_v, pred_v;
    truth_v.reserve(test.size());
    pred_v.reserve(test.size());
    for (std::size_t node : test) {
      truth_v.push_back(hin.PrimaryLabel(node));
      pred_v.push_back(pred[node]);
    }
    return ml::Accuracy(truth_v, pred_v);
  }
  const std::vector<std::vector<std::size_t>> pred =
      classifier->PredictMultiLabel(multi_label_threshold);
  if (timed) {
    obs::ObserveHistogram("eval.predict_ms." + classifier->Name(),
                          predict_watch.ElapsedMs());
  }
  std::vector<std::vector<std::size_t>> truth_v, pred_v;
  truth_v.reserve(test.size());
  pred_v.reserve(test.size());
  for (std::size_t node : test) {
    std::vector<std::size_t> t(hin.labels(node).begin(),
                               hin.labels(node).end());
    truth_v.push_back(std::move(t));
    pred_v.push_back(pred[node]);
  }
  return ml::MultiLabelMacroF1(truth_v, pred_v, hin.num_classes());
}

MethodSweep RunSweep(const hin::Hin& hin, const std::string& method,
                     const SweepConfig& config) {
  MethodSweep sweep;
  sweep.method = method;
  obs::TraceSpan sweep_span("eval.sweep");
  sweep_span.AddField("method", method);
  // The HIN is fixed across every fraction x trial cell, so all T-Mark
  // variants in this sweep share one prepared-operator build per kernel.
  core::OperatorCache operator_cache;
  Rng master(config.seed);
  for (double fraction : config.train_fractions) {
    obs::TraceSpan cell_span("eval.sweep.cell");
    cell_span.AddField("method", method);
    cell_span.AddField("fraction", fraction);
    obs::LogDebug("eval.sweep.cell", {{"method", method},
                                      {"fraction", fraction},
                                      {"trials", config.trials}});
    std::vector<double> scores;
    scores.reserve(static_cast<std::size_t>(config.trials));
    Rng rng = master.Fork();
    for (int trial = 0; trial < config.trials; ++trial) {
      const std::vector<std::size_t> labeled =
          StratifiedSplit(hin, fraction, &rng);
      auto classifier =
          baselines::MakeClassifier(method, config.alpha, config.gamma,
                                    config.lambda);
      if (auto* tmark =
              dynamic_cast<core::TMarkClassifier*>(classifier.get())) {
        tmark->SetPreparedOperators(
            operator_cache.GetOrBuild(hin, tmark->config().similarity));
      }
      scores.push_back(EvaluateClassifier(hin, classifier.get(), labeled,
                                          config.multi_label,
                                          config.multi_label_threshold));
    }
    SweepCell cell;
    for (double s : scores) cell.mean += s;
    cell.mean /= static_cast<double>(scores.size());
    for (double s : scores) {
      cell.stddev += (s - cell.mean) * (s - cell.mean);
    }
    cell.stddev = scores.size() > 1
                      ? std::sqrt(cell.stddev /
                                  static_cast<double>(scores.size() - 1))
                      : 0.0;
    sweep.cells.push_back(cell);
  }
  return sweep;
}

int BenchTrials(int default_trials) {
  const char* env = std::getenv("TMARK_BENCH_TRIALS");
  if (env == nullptr) return default_trials;
  const int v = std::atoi(env);
  return v > 0 ? v : default_trials;
}

double BenchScale() {
  const char* env = std::getenv("TMARK_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

}  // namespace tmark::eval
