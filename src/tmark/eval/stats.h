#ifndef TMARK_EVAL_STATS_H_
#define TMARK_EVAL_STATS_H_

#include <cstddef>
#include <vector>

namespace tmark::eval {

/// Sample mean. Requires a non-empty sample.
double Mean(const std::vector<double>& sample);

/// Unbiased sample standard deviation (n-1 denominator); 0 for n < 2.
double SampleStdDev(const std::vector<double>& sample);

/// Result of a two-sample location test.
struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  /// Two-sided p-value (normal approximation of the t distribution —
  /// adequate for the >= 10-trial comparisons the harness runs).
  double p_value = 1.0;
};

/// Welch's unequal-variance t-test for the difference of means between two
/// independent samples (e.g. per-trial accuracies of two methods).
/// Requires both samples to have >= 2 elements.
TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Paired t-test on per-trial differences (same splits, two methods).
/// Requires >= 2 pairs and equal sizes. Degenerate all-equal differences
/// yield p = 1.
TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Standard normal CDF (used by the t approximations; exposed for tests).
double NormalCdf(double z);

/// Splits `count` items into `folds` contiguous index folds of near-equal
/// size for cross-validation; every index lands in exactly one fold.
/// Requires 2 <= folds <= count.
std::vector<std::vector<std::size_t>> KFoldIndices(std::size_t count,
                                                   std::size_t folds);

}  // namespace tmark::eval

#endif  // TMARK_EVAL_STATS_H_
