#ifndef TMARK_EVAL_TABLE_PRINTER_H_
#define TMARK_EVAL_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace tmark::eval {

/// Minimal fixed-width table formatter for the bench binaries; prints rows
/// aligned under a header, in the layout of the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders header, separator and rows to `out`.
  void Print(std::ostream& out) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tmark::eval

#endif  // TMARK_EVAL_TABLE_PRINTER_H_
