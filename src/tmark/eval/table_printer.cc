#include "tmark/eval/table_printer.h"

#include <algorithm>
#include <ostream>

#include "tmark/common/check.h"

namespace tmark::eval {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  TMARK_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  TMARK_CHECK_MSG(cells.size() == headers_.size(),
                  "row has " << cells.size() << " cells, expected "
                             << headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const std::vector<std::string>& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ") << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) {
        out << ' ';
      }
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  for (std::size_t i = 0; i < total; ++i) out << '-';
  out << '\n';
  for (const std::vector<std::string>& row : rows_) print_row(row);
}

}  // namespace tmark::eval
