#!/usr/bin/env python3
"""Gate for the scaling bench (docs/PERFORMANCE.md "Scaling").

Reads a TMARK_BENCH_JSON dump from bench_perf_scaling and asserts, for
every (n, threads) cell of the "scaling curve" table:

  * both dispatch rows ("sharded" and "fixed") are present,
  * their iteration counts agree (the dispatches are bit-identical, so a
    mismatch means two different workloads were timed),
  * the sharded dispatch's ms_per_iter does not exceed the fixed dispatch's
    by more than --slack (default 1.5x — deliberately generous, like
    check_fit_engine.py: the gate catches a sharded path that regressed to
    uselessness, not timing noise on a loaded CI machine),

and, for every row of the "scaling memory" table, that the compact
(adaptive 32-bit) structures are strictly smaller than the forced-wide
64-bit ones — for the CSR slices and the merged view alike. The memory
comparison is analytic byte accounting, so it is exact and noise-free.

Usage: check_scaling_bench.py FILE [--slack 1.5]
"""

import argparse
import collections
import json
import sys

CURVE_TITLE = "scaling curve"
MEMORY_TITLE = "scaling memory"


def fail(message):
    print(f"check_scaling_bench: {message}", file=sys.stderr)
    return 1


def find_table(doc, title, path):
    table = next((t for t in doc.get("tables", [])
                  if t.get("title") == title), None)
    if table is None:
        raise KeyError(f"{path}: no '{title}' table "
                       "(bench_perf_scaling out of date?)")
    return table


def columns(table, names, path):
    headers = table["headers"]
    try:
        return [headers.index(name) for name in names]
    except ValueError as e:
        raise KeyError(f"{path}: table missing column: {e}")


def check_curve(table, slack, path):
    n_col, t_col, d_col, iter_col, per_col = columns(
        table, ["n", "threads", "dispatch", "iterations", "ms_per_iter"],
        path)
    cells = collections.defaultdict(dict)
    for row in table["rows"]:
        cells[(row[n_col], row[t_col])][row[d_col]] = (
            int(row[iter_col]), float(row[per_col]))
    if not cells:
        raise ValueError(f"{path}: '{CURVE_TITLE}' table has no rows")
    for (n, threads), by_dispatch in sorted(cells.items()):
        where = f"n={n} threads={threads}"
        for dispatch in ("sharded", "fixed"):
            if dispatch not in by_dispatch:
                raise ValueError(f"{path}: {where}: no '{dispatch}' row")
        sharded_iters, sharded = by_dispatch["sharded"]
        fixed_iters, fixed = by_dispatch["fixed"]
        if sharded_iters != fixed_iters:
            raise ValueError(
                f"{path}: {where}: iteration counts differ (sharded "
                f"{sharded_iters} vs fixed {fixed_iters}) — dispatches "
                "diverged?")
        if sharded > fixed * slack:
            raise ValueError(
                f"{path}: {where}: sharded dispatch is too slow: "
                f"{sharded:.5f} ms/iter vs fixed {fixed:.5f} ms/iter "
                f"(allowed up to {fixed * slack:.5f} with slack {slack})")
        print(f"check_scaling_bench: {where}: sharded {sharded:.5f} "
              f"vs fixed {fixed:.5f} ms/iter")


def check_memory(table, path):
    cols = columns(
        table,
        ["n", "csr_compact_bytes", "csr_wide_bytes",
         "merged_compact_bytes", "merged_wide_bytes"], path)
    if not table["rows"]:
        raise ValueError(f"{path}: '{MEMORY_TITLE}' table has no rows")
    for row in table["rows"]:
        n, csr_c, csr_w, mv_c, mv_w = (row[c] for c in cols)
        for label, compact, wide in (("csr", int(csr_c), int(csr_w)),
                                     ("merged", int(mv_c), int(mv_w))):
            if compact >= wide:
                raise ValueError(
                    f"{path}: n={n}: compact {label} structures are not "
                    f"smaller than wide ones ({compact} vs {wide} bytes)")
        print(f"check_scaling_bench: n={n}: csr {csr_c}/{csr_w} "
              f"merged {mv_c}/{mv_w} compact/wide bytes")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    parser.add_argument("--slack", type=float, default=1.5,
                        help="allowed sharded/fixed ms_per_iter ratio")
    args = parser.parse_args()

    try:
        with open(args.file, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot read {args.file}: {e}")

    try:
        check_curve(find_table(doc, CURVE_TITLE, args.file), args.slack,
                    args.file)
        check_memory(find_table(doc, MEMORY_TITLE, args.file), args.file)
    except (KeyError, ValueError) as e:
        return fail(str(e).strip("'"))

    print(f"check_scaling_bench: ok (slack {args.slack})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
