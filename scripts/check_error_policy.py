#!/usr/bin/env python3
"""Lint for the error-handling policy (docs/ERRORS.md).

Two rules, both cheap and both load-bearing:

1. The format parsers and dataset plumbing must use the strict parsers in
   common/strict_parse.h — std::stoul / std::stod / atof accept garbage
   suffixes, wrap negatives, and return NaN, so their reappearance in an
   input boundary silently reopens fixed holes.

2. The public Load/Save APIs in the I/O headers must go through the typed
   Status layer: Load* returns tmark::Result<...>, *ToFile returns
   tmark::Status. The transitional *OrThrow shims are gone; a declaration
   with that suffix is itself a violation.

Usage: check_error_policy.py --repo-root DIR
"""

import argparse
import os
import re
import sys

# Files where the banned lenient parsers must never reappear.
BOUNDARY_SOURCES = [
    "src/tmark/hin/hin_io.cc",
    "src/tmark/core/model_io.cc",
    "src/tmark/serve/protocol.cc",
    "tools/tmark_cli.cc",
    "tools/tmark_served.cc",
]
BOUNDARY_GLOB_DIRS = ["src/tmark/datasets"]

BANNED = re.compile(r"std::stoul|std::stod|std::stoi|std::stof|"
                    r"\batof\s*\(|\batoi\s*\(|\bstrtod\s*\(|\bstrtoul\s*\(")

# Headers whose Load/Save declarations must use the Status layer.
IO_HEADERS = ["src/tmark/hin/hin_io.h", "src/tmark/core/model_io.h"]

DECL = re.compile(
    r"^\s*([A-Za-z_][\w:<>&,\s]*?)\s+((?:Load|Save)\w*)\s*\(", re.MULTILINE)


def strip_comments(text):
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)


def check_banned_parsers(root, failures):
    files = list(BOUNDARY_SOURCES)
    for rel_dir in BOUNDARY_GLOB_DIRS:
        full_dir = os.path.join(root, rel_dir)
        for name in sorted(os.listdir(full_dir)):
            if name.endswith((".cc", ".h")):
                files.append(os.path.join(rel_dir, name))
    for rel in files:
        path = os.path.join(root, rel)
        with open(path, encoding="utf-8") as fh:
            code = strip_comments(fh.read())
        for match in BANNED.finditer(code):
            failures.append(
                f"{rel}: lenient parser '{match.group(0).strip('(').strip()}'"
                " in an input boundary; use tmark::ParseIndex /"
                " ParseFiniteDouble (common/strict_parse.h)")


def check_status_signatures(root, failures):
    for rel in IO_HEADERS:
        path = os.path.join(root, rel)
        with open(path, encoding="utf-8") as fh:
            code = strip_comments(fh.read())
        declarations = DECL.findall(code)
        if not declarations:
            failures.append(f"{rel}: no Load/Save declarations found "
                            "(lint out of date?)")
        for return_type, name in declarations:
            return_type = " ".join(return_type.split())
            if name.endswith("OrThrow"):
                failures.append(
                    f"{rel}: {name} reintroduces a throwing shim; the "
                    "*OrThrow transition is over — return tmark::Result/"
                    "Status (docs/ERRORS.md)")
                continue
            if name.startswith("Load") and "Result<" not in return_type:
                failures.append(
                    f"{rel}: {name} returns '{return_type}', must return "
                    "tmark::Result<...> (docs/ERRORS.md)")
            if name.endswith("ToFile") and not return_type.endswith("Status"):
                failures.append(
                    f"{rel}: {name} returns '{return_type}', must return "
                    "tmark::Status (docs/ERRORS.md)")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--repo-root", required=True)
    args = parser.parse_args()

    failures = []
    check_banned_parsers(args.repo_root, failures)
    check_status_signatures(args.repo_root, failures)

    if failures:
        print(f"FAIL: {len(failures)} error-policy violations:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("ok: error policy holds (no lenient parsers in boundaries; "
          "Load/Save signatures typed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
