#!/usr/bin/env python3
"""Smoke gate for the batched fit engine (docs/PERFORMANCE.md).

Reads a TMARK_BENCH_JSON dump from bench_perf_tmark, finds the
"fit-engine comparison" table, and asserts the batched engine's
per-iteration wall time does not exceed the per-class engine's by more
than --slack (default 1.5x — deliberately generous: the gate exists to
catch a batched path that has regressed to uselessness, not to certify a
speedup on a loaded CI machine; docs/PERFORMANCE.md quotes the real
numbers from quiet-machine runs).

Usage: check_fit_engine.py FILE [--slack 1.5]
"""

import argparse
import json
import sys

TABLE_TITLE = "fit-engine comparison"


def fail(message):
    print(f"check_fit_engine: {message}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    parser.add_argument("--slack", type=float, default=1.5,
                        help="allowed batched/per_class ms_per_iter ratio")
    args = parser.parse_args()

    try:
        with open(args.file, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot read {args.file}: {e}")

    table = next((t for t in doc.get("tables", [])
                  if t.get("title") == TABLE_TITLE), None)
    if table is None:
        return fail(f"{args.file}: no '{TABLE_TITLE}' table "
                    "(bench_perf_tmark out of date?)")

    headers = table["headers"]
    try:
        engine_col = headers.index("engine")
        iter_col = headers.index("ms_per_iter")
        count_col = headers.index("iterations")
    except ValueError as e:
        return fail(f"{args.file}: comparison table missing column: {e}")

    per_iter = {row[engine_col]: float(row[iter_col])
                for row in table["rows"]}
    iterations = {row[engine_col]: int(row[count_col])
                  for row in table["rows"]}
    for engine in ("per_class", "batched"):
        if engine not in per_iter:
            return fail(f"{args.file}: no '{engine}' row in the "
                        "comparison table")

    # Bit-identical engines must agree on the total column-iteration count;
    # a mismatch means the comparison timed two different workloads.
    if iterations["batched"] != iterations["per_class"]:
        return fail(f"{args.file}: iteration counts differ "
                    f"(batched {iterations['batched']} vs per_class "
                    f"{iterations['per_class']}) — engines diverged?")

    limit = per_iter["per_class"] * args.slack
    if per_iter["batched"] > limit:
        return fail(
            f"{args.file}: batched engine is too slow: "
            f"{per_iter['batched']:.5f} ms/iter vs per_class "
            f"{per_iter['per_class']:.5f} ms/iter "
            f"(allowed up to {limit:.5f} with slack {args.slack})")

    print(f"check_fit_engine: ok — batched {per_iter['batched']:.5f} "
          f"ms/iter vs per_class {per_iter['per_class']:.5f} ms/iter "
          f"(slack {args.slack})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
