#!/usr/bin/env python3
"""Integration check for tmark_cli's error contract (docs/ERRORS.md).

Drives the real binary against the checked-in malformed-input corpus and a
freshly generated good file, asserting the contract every subcommand must
honor:

  * unreadable or malformed --hin / --model files  ->  exit code 2 and
    exactly one `error: ...` line on stderr (no stack trace, no abort);
  * --metrics-json written even on failure, with the io.errors counters;
  * well-formed input -> exit code 0 and nothing on stderr.

Usage: check_cli_errors.py --cli PATH --corpus DIR
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

FAILURES = []


def fail(label, message):
    FAILURES.append(f"{label}: {message}")


def run(cli, argv, timeout=120):
    proc = subprocess.run(
        [cli] + argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        timeout=timeout,
        text=True,
    )
    return proc


def expect_error(cli, argv, label):
    """The single-line `error:` contract: exit 2, one stderr line."""
    proc = run(cli, argv)
    if proc.returncode != 2:
        fail(label, f"expected exit code 2, got {proc.returncode} "
                    f"(stderr: {proc.stderr!r})")
        return
    lines = [l for l in proc.stderr.splitlines() if l]
    if len(lines) != 1:
        fail(label, f"expected exactly one stderr line, got {lines!r}")
        return
    if not lines[0].startswith("error: "):
        fail(label, f"stderr line must start with 'error: ': {lines[0]!r}")


def expect_usage_error(cli, argv, label):
    """Flag errors additionally print usage; still exit 2, error: first."""
    proc = run(cli, argv)
    if proc.returncode != 2:
        fail(label, f"expected exit code 2, got {proc.returncode}")
        return
    lines = [l for l in proc.stderr.splitlines() if l]
    if not lines or not lines[0].startswith("error: "):
        fail(label, f"first stderr line must start with 'error: ': {lines!r}")


def expect_ok(cli, argv, label):
    proc = run(cli, argv)
    if proc.returncode != 0:
        fail(label, f"expected exit code 0, got {proc.returncode} "
                    f"(stderr: {proc.stderr!r})")
    if proc.stderr.strip():
        fail(label, f"expected empty stderr, got {proc.stderr!r}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--cli", required=True, help="path to tmark_cli")
    parser.add_argument("--corpus", required=True,
                        help="tests/hin/corrupt directory")
    args = parser.parse_args()

    hin_corpus = sorted(
        f for f in os.listdir(args.corpus) if f.endswith(".hin"))
    model_corpus = sorted(
        f for f in os.listdir(args.corpus) if f.endswith(".tmm"))
    if not hin_corpus or not model_corpus:
        print(f"FAIL: no corpus files under {args.corpus}", file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory(prefix="tmark_cli_errors.") as tmp:
        good = os.path.join(tmp, "good.hin")

        # Well-formed path: generate then read back, all exit 0.
        expect_ok(args.cli,
                  ["generate", "--preset", "example", "--out", good],
                  "generate example")
        expect_ok(args.cli, ["info", "--hin", good], "info good")
        expect_ok(args.cli,
                  ["classify", "--hin", good, "--train-fraction", "0.5"],
                  "classify good")

        # Every subcommand that reads --hin must honor the contract on every
        # corpus file.
        for name in hin_corpus:
            path = os.path.join(args.corpus, name)
            for command in ("info", "classify", "rank"):
                expect_error(args.cli, [command, "--hin", path],
                             f"{command} {name}")

        # Corrupt and missing model files through `rank --model`.
        for name in model_corpus:
            expect_error(
                args.cli,
                ["rank", "--hin", good,
                 "--model", os.path.join(args.corpus, name)],
                f"rank model {name}")
        expect_error(args.cli,
                     ["info", "--hin", os.path.join(tmp, "missing.hin")],
                     "info missing file")
        expect_error(args.cli,
                     ["rank", "--hin", good,
                      "--model", os.path.join(tmp, "missing.tmm")],
                     "rank missing model")

        # Flag-level input errors.
        expect_usage_error(args.cli,
                           ["generate", "--preset", "atlantis",
                            "--out", os.path.join(tmp, "x.hin")],
                           "generate unknown preset")
        expect_usage_error(args.cli,
                           ["classify", "--hin", good,
                            "--train-fraction", "nan"],
                           "classify nan fraction")
        expect_usage_error(args.cli, ["info"], "info without --hin")
        # Unknown profiling flags must hit the flag-error contract, not be
        # silently swallowed by a prefix match on --profile-json.
        expect_usage_error(args.cli,
                           ["classify", "--hin", good,
                            "--profile-mode", "fast"],
                           "classify unknown --profile-mode")
        expect_usage_error(args.cli,
                           ["info", "--hin", good, "--profile-counters", "1"],
                           "info unknown --profile-counters")

        # Serving flags honor the same contract: a serve command that cannot
        # start must exit 2 with a single error line, not hang or abort.
        expect_usage_error(args.cli, ["serve", "--hin", good],
                           "serve without --serve-socket")
        sock = os.path.join(tmp, "serve.sock")
        expect_usage_error(args.cli,
                           ["serve", "--hin", good, "--serve-socket", sock,
                            "--batch-window-us", "fast"],
                           "serve non-numeric --batch-window-us")
        expect_usage_error(args.cli,
                           ["serve", "--hin", good, "--serve-socket", sock,
                            "--max-queue", "0"],
                           "serve zero --max-queue")
        expect_error(args.cli,
                     ["serve", "--hin", os.path.join(tmp, "missing.hin"),
                      "--serve-socket", sock],
                     "serve missing hin")

        # Observability sinks compose: one run may write the span tree as
        # both tmark JSON and a Chrome trace, plus the profile document.
        trace_json = os.path.join(tmp, "trace.json")
        trace_chrome = os.path.join(tmp, "trace_chrome.json")
        profile_json = os.path.join(tmp, "profile.json")
        expect_ok(args.cli,
                  ["classify", "--hin", good, "--train-fraction", "0.5",
                   "--trace-json", trace_json,
                   "--trace-chrome", trace_chrome,
                   "--profile-json", profile_json],
                  "classify with composed sinks")
        for path, label in ((trace_json, "trace json"),
                            (trace_chrome, "chrome trace"),
                            (profile_json, "profile json")):
            if not os.path.exists(path):
                fail("composed sinks", f"{label} file was not written")
                continue
            with open(path, encoding="utf-8") as fh:
                try:
                    doc = json.load(fh)
                except json.JSONDecodeError as e:
                    fail("composed sinks", f"{label} is not valid JSON: {e}")
                    continue
            if path == trace_chrome:
                events = doc.get("traceEvents")
                if not isinstance(events, list) or not events:
                    fail("composed sinks", "chrome trace has no events")
                elif any(e.get("ph") != "X" for e in events):
                    fail("composed sinks",
                         "chrome trace events must all be complete ('X')")
            if path == profile_json:
                if doc.get("schema") != "tmark-profile-v1":
                    fail("composed sinks",
                         f"profile schema is {doc.get('schema')!r}")

        # Telemetry on failure: the metrics dump must still be written and
        # must carry the io.errors counters for the failed load.
        metrics = os.path.join(tmp, "metrics.json")
        corrupt = os.path.join(args.corpus, hin_corpus[0])
        proc = run(args.cli,
                   ["info", "--hin", corrupt, "--metrics-json", metrics])
        if proc.returncode != 2:
            fail("metrics on failure",
                 f"expected exit code 2, got {proc.returncode}")
        elif not os.path.exists(metrics):
            fail("metrics on failure", "--metrics-json file was not written")
        else:
            with open(metrics, encoding="utf-8") as fh:
                doc = json.load(fh)
            counters = {c["name"]: c["value"]
                        for c in doc.get("counters", [])}
            if counters.get("io.errors", 0) < 1:
                fail("metrics on failure",
                     f"io.errors counter missing or zero: {counters}")
            if not any(name.startswith("io.errors.") for name in counters):
                fail("metrics on failure",
                     f"per-code io.errors.<code> counter missing: {counters}")

    if FAILURES:
        print(f"FAIL: {len(FAILURES)} CLI error-contract violations:",
              file=sys.stderr)
        for failure in FAILURES:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("ok: tmark_cli error contract holds "
          f"({len(hin_corpus)} hin + {len(model_corpus)} model corpus files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
