#!/usr/bin/env python3
"""Gate for the closed-loop serving bench (docs/SERVING.md "Throughput").

Reads a TMARK_BENCH_JSON dump from bench_perf_serving and asserts, on the
"serving latency" table's DBLP rows:

  * coalescing pays: the per-request cost (wall_ms / requests) at width 8
    is at least 2x lower than at width 1, divided by --slack headroom
    (default 1.5x — generous on purpose, like check_update_bench.py: the
    gate catches a scheduler that stopped coalescing into panels, not
    timing noise on a loaded CI machine),
  * every row is sane: positive qps and per-request cost, and latency
    percentiles that are positive and ordered p50 <= p95 <= p99 (p99 is
    the number the serving docs quote for sustained load).

Usage: check_serving_bench.py FILE [--slack 1.5]
"""

import argparse
import json
import sys

TABLE_TITLE = "serving latency"
CLAIMED_COST_RATIO = 2.0  # width-1 cost / width-8 cost
CLAIM_DATASET = "dblp"
CLAIM_WIDE = 8
CLAIM_NARROW = 1


def fail(message):
    print(f"check_serving_bench: {message}", file=sys.stderr)
    return 1


def find_table(doc, title, path):
    table = next((t for t in doc.get("tables", [])
                  if t.get("title") == title), None)
    if table is None:
        raise KeyError(f"{path}: no '{title}' table "
                       "(bench_perf_serving out of date?)")
    return table


def columns(table, names, path):
    headers = table["headers"]
    try:
        return [headers.index(name) for name in names]
    except ValueError as e:
        raise KeyError(f"{path}: table missing column: {e}")


def check_serving(table, slack, path):
    cols = columns(
        table,
        ["dataset", "width", "qps", "cost_ms_per_req", "p50_ms", "p95_ms",
         "p99_ms"], path)
    if not table["rows"]:
        raise ValueError(f"{path}: '{TABLE_TITLE}' table has no rows")
    cost_by_width = {}
    for row in table["rows"]:
        dataset, width, qps, cost, p50, p95, p99 = (row[c] for c in cols)
        width = int(width)
        qps, cost = float(qps), float(cost)
        p50, p95, p99 = float(p50), float(p95), float(p99)
        where = f"{dataset} width={width}"
        if qps <= 0.0 or cost <= 0.0:
            raise ValueError(f"{path}: {where}: non-positive qps ({qps}) "
                             f"or per-request cost ({cost})")
        if not 0.0 < p50 <= p95 <= p99:
            raise ValueError(
                f"{path}: {where}: latency percentiles are not positive "
                f"and ordered: p50={p50} p95={p95} p99={p99}")
        if dataset == CLAIM_DATASET:
            cost_by_width[width] = cost
        print(f"check_serving_bench: {where}: {qps:.1f} qps, "
              f"{cost:.4f} ms/req, p50/p95/p99 = "
              f"{p50:.3f}/{p95:.3f}/{p99:.3f} ms")
    for needed_width in (CLAIM_NARROW, CLAIM_WIDE):
        if needed_width not in cost_by_width:
            raise ValueError(
                f"{path}: no '{CLAIM_DATASET}' row at width {needed_width} "
                f"— the {CLAIMED_COST_RATIO}x coalescing claim was never "
                "checked")
    ratio = cost_by_width[CLAIM_NARROW] / cost_by_width[CLAIM_WIDE]
    needed = CLAIMED_COST_RATIO / slack
    if ratio < needed:
        raise ValueError(
            f"{path}: {CLAIM_DATASET}: width-{CLAIM_WIDE} per-request cost "
            f"is only {ratio:.2f}x below width-{CLAIM_NARROW} "
            f"({cost_by_width[CLAIM_NARROW]:.4f} vs "
            f"{cost_by_width[CLAIM_WIDE]:.4f} ms/req); the claimed "
            f"{CLAIMED_COST_RATIO}x is gated at >= {needed:.2f}x with "
            f"slack {slack} — did the scheduler stop coalescing?")
    print(f"check_serving_bench: coalescing ratio "
          f"width{CLAIM_NARROW}/width{CLAIM_WIDE} = {ratio:.2f}x")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    parser.add_argument("--slack", type=float, default=1.5,
                        help="allowed coalescing-ratio headroom")
    args = parser.parse_args()

    try:
        with open(args.file, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot read {args.file}: {e}")

    try:
        check_serving(find_table(doc, TABLE_TITLE, args.file), args.slack,
                      args.file)
    except (KeyError, ValueError) as e:
        return fail(str(e).strip("'"))

    print(f"check_serving_bench: ok (slack {args.slack})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
