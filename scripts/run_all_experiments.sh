#!/usr/bin/env bash
# Rebuilds the project and regenerates every table and figure of the paper,
# teeing outputs next to the build tree. Knobs:
#   TMARK_BENCH_TRIALS  splits averaged per table cell (default 3)
#   TMARK_BENCH_SCALE   node-count multiplier (default 1.0)
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  echo "===== $(basename "$b") =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done
echo "done: test_output.txt, bench_output.txt"
