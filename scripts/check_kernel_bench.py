#!/usr/bin/env python3
"""Regression gate for the blocked panel micro-kernels (docs/PERFORMANCE.md).

Reads a TMARK_BENCH_JSON dump from bench_perf_kernels and asserts:

  * the "kernel microbenchmarks" table covers every kernel at every panel
    width, and no blocked panel kernel exceeds its scalar (single-vector)
    baseline by more than --slack;
  * the "fused-epilogue comparison" table covers every width, and the fused
    passes do not exceed the unfused sweep sequence by more than --slack.

The slack is deliberately generous (default 1.5x, same spirit as
check_fit_engine.py): the gate exists to catch a blocked or fused path that
has regressed past its scalar baseline, not to certify a speedup on a
loaded CI machine. docs/PERFORMANCE.md quotes real quiet-machine numbers.

Usage: check_kernel_bench.py FILE [--slack 1.5]
"""

import argparse
import json
import sys

KERNEL_TABLE = "kernel microbenchmarks"
FUSED_TABLE = "fused-epilogue comparison"
EXPECTED_KERNELS = (
    "matmul_panel",
    "transpose_matmul_panel",
    "bilinear_panel",
    "contract_mode1_panel",
    "similarity_apply_panel",
)
EXPECTED_WIDTHS = ("1", "2", "4", "8", "16")


def fail(message):
    print(f"check_kernel_bench: {message}", file=sys.stderr)
    return 1


def find_table(doc, title, path):
    table = next((t for t in doc.get("tables", []) if t.get("title") == title),
                 None)
    if table is None:
        raise KeyError(f"{path}: no '{title}' table "
                       "(bench_perf_kernels out of date?)")
    return table


def columns(table, names, path):
    headers = table["headers"]
    try:
        return [headers.index(name) for name in names]
    except ValueError as e:
        raise KeyError(f"{path}: '{table['title']}' missing column: {e}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    parser.add_argument("--slack", type=float, default=1.5,
                        help="allowed blocked/scalar ms ratio")
    args = parser.parse_args()

    try:
        with open(args.file, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot read {args.file}: {e}")

    try:
        kernel_table = find_table(doc, KERNEL_TABLE, args.file)
        kernel_col, width_col, scalar_col, blocked_col = columns(
            kernel_table, ("kernel", "width", "scalar_ms", "blocked_ms"),
            args.file)
        fused_table = find_table(doc, FUSED_TABLE, args.file)
        fwidth_col, unfused_col, fused_col = columns(
            fused_table, ("width", "unfused_ms", "fused_ms"), args.file)
    except KeyError as e:
        return fail(str(e).strip("'\""))

    seen = set()
    for row in kernel_table["rows"]:
        kernel, width = row[kernel_col], row[width_col]
        seen.add((kernel, width))
        scalar_ms, blocked_ms = float(row[scalar_col]), float(row[blocked_col])
        if scalar_ms <= 0.0 or blocked_ms <= 0.0:
            return fail(f"{args.file}: non-positive timing for {kernel} "
                        f"width {width}")
        if blocked_ms > scalar_ms * args.slack:
            return fail(
                f"{args.file}: blocked {kernel} too slow at width {width}: "
                f"{blocked_ms:.3f} ms vs scalar {scalar_ms:.3f} ms "
                f"(allowed up to {scalar_ms * args.slack:.3f} with slack "
                f"{args.slack})")
    missing = [(k, w) for k in EXPECTED_KERNELS for w in EXPECTED_WIDTHS
               if (k, w) not in seen]
    if missing:
        return fail(f"{args.file}: kernel table missing rows: {missing}")

    fused_seen = set()
    for row in fused_table["rows"]:
        width = row[fwidth_col]
        fused_seen.add(width)
        unfused_ms, fused_ms = float(row[unfused_col]), float(row[fused_col])
        if unfused_ms <= 0.0 or fused_ms <= 0.0:
            return fail(f"{args.file}: non-positive timing for fused row "
                        f"width {width}")
        if fused_ms > unfused_ms * args.slack:
            return fail(
                f"{args.file}: fused epilogue too slow at width {width}: "
                f"{fused_ms:.3f} ms vs unfused {unfused_ms:.3f} ms "
                f"(allowed up to {unfused_ms * args.slack:.3f} with slack "
                f"{args.slack})")
    missing_widths = [w for w in EXPECTED_WIDTHS if w not in fused_seen]
    if missing_widths:
        return fail(f"{args.file}: fused table missing widths: "
                    f"{missing_widths}")

    print(f"check_kernel_bench: ok — {len(kernel_table['rows'])} kernel rows "
          f"and {len(fused_table['rows'])} fused rows within slack "
          f"{args.slack}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
