#!/usr/bin/env python3
"""Gate for the incremental-update bench (docs/PERFORMANCE.md
"Incremental updates").

Reads a TMARK_BENCH_JSON dump from bench_perf_updates and asserts, for
every row of the "update latency" table:

  * the patched path (operator patch/reuse + warm refresh) is not slower
    than the full rebuild for any delta of at most 1% of the edges, with
    --slack headroom (default 1.5x — generous on purpose, like
    check_scaling_bench.py: the gate catches an Update path that regressed
    to rebuild-equivalent cost, not timing noise on a loaded CI machine),
  * for the "labels" delta kind at the 0.1%-of-edges size — the operators
    are untouched, so Update skips the patch and the warm refresh retires
    almost immediately — the end-to-end speedup clears the 5x the
    performance docs claim, divided by the same slack,
  * the warm refresh does not iterate past the cold fit by more than the
    same slack factor (a renormalized restart vector can cost the warm
    chain a few extra steps, but far more means the warm start was lost).

Usage: check_update_bench.py FILE [--slack 1.5]
"""

import argparse
import json
import sys

TABLE_TITLE = "update latency"
CLAIMED_SPEEDUP = 5.0
CLAIM_KIND = "labels"
CLAIM_PCT = 0.1


def fail(message):
    print(f"check_update_bench: {message}", file=sys.stderr)
    return 1


def find_table(doc, title, path):
    table = next((t for t in doc.get("tables", [])
                  if t.get("title") == title), None)
    if table is None:
        raise KeyError(f"{path}: no '{title}' table "
                       "(bench_perf_updates out of date?)")
    return table


def columns(table, names, path):
    headers = table["headers"]
    try:
        return [headers.index(name) for name in names]
    except ValueError as e:
        raise KeyError(f"{path}: table missing column: {e}")


def check_latency(table, slack, path):
    cols = columns(
        table,
        ["dataset", "delta_kind", "delta_pct", "patch_ms", "rebuild_ms",
         "patch_iters", "rebuild_iters"], path)
    if not table["rows"]:
        raise ValueError(f"{path}: '{TABLE_TITLE}' table has no rows")
    claims_checked = 0
    for row in table["rows"]:
        dataset, kind, pct, patch, rebuild, pit, rit = (row[c] for c in cols)
        pct, patch, rebuild = float(pct), float(patch), float(rebuild)
        pit, rit = int(pit), int(rit)
        where = f"{dataset} {kind} delta={pct}%"
        speedup = rebuild / patch if patch > 0 else float("inf")
        if pct <= 1.0 and patch > rebuild * slack:
            raise ValueError(
                f"{path}: {where}: patched update is slower than a full "
                f"rebuild: {patch:.3f} ms vs {rebuild:.3f} ms (allowed up "
                f"to {rebuild * slack:.3f} with slack {slack})")
        if kind == CLAIM_KIND and pct == CLAIM_PCT:
            claims_checked += 1
            needed = CLAIMED_SPEEDUP / slack
            if speedup < needed:
                raise ValueError(
                    f"{path}: {where}: end-to-end speedup {speedup:.2f}x is "
                    f"below the claimed {CLAIMED_SPEEDUP}x (gated at "
                    f">= {needed:.2f}x with slack {slack})")
        if pit > rit * slack:
            raise ValueError(
                f"{path}: {where}: warm refresh took far more iterations "
                f"than the cold fit ({pit} vs {rit}, allowed up to "
                f"{rit * slack:.0f} with slack {slack}) — warm start lost?")
        print(f"check_update_bench: {where}: patch {patch:.3f} ms vs "
              f"rebuild {rebuild:.3f} ms ({speedup:.2f}x, "
              f"{pit}/{rit} iters)")
    if claims_checked == 0:
        raise ValueError(
            f"{path}: no '{CLAIM_KIND}' row at delta_pct == {CLAIM_PCT} — "
            f"the {CLAIMED_SPEEDUP}x claim was never checked")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    parser.add_argument("--slack", type=float, default=1.5,
                        help="allowed patch/rebuild latency headroom")
    args = parser.parse_args()

    try:
        with open(args.file, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot read {args.file}: {e}")

    try:
        check_latency(find_table(doc, TABLE_TITLE, args.file), args.slack,
                      args.file)
    except (KeyError, ValueError) as e:
        return fail(str(e).strip("'"))

    print(f"check_update_bench: ok (slack {args.slack})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
