#!/usr/bin/env python3
"""Validates a TMARK_PROFILE_JSON dump against the tmark-profile-v1 schema.

Usage: check_profile.py FILE [--max-overhead-pct PCT]
                             [--require-region PREFIX]

The schema is documented in docs/OBSERVABILITY.md ("Profiling"). Exits 0
when FILE is a well-formed document, 1 (with a message on stderr)
otherwise. --max-overhead-pct additionally enforces the disabled-path
overhead gate: the document's estimated_disabled_overhead_pct (per-call
cost of a disabled region, scaled by the run's region calls over its fit
time) must be a number below PCT — the CI wiring runs it at 2%.
--require-region asserts that at least one region whose name starts with
PREFIX accumulated calls, pinning the kernel instrumentation end-to-end.
"""

import argparse
import json
import sys

COUNTER_KEYS = ("cycles", "instructions", "llc_misses", "branch_misses")


class SchemaError(Exception):
    pass


def expect(cond, path, message):
    if not cond:
        raise SchemaError(f"{path}: {message}")


def check_counter_object(value, path):
    expect(isinstance(value, dict), path, "expected an object")
    expect(set(value) == set(COUNTER_KEYS), path,
           f"expected exactly keys {COUNTER_KEYS}, got {sorted(value)}")
    for key, v in value.items():
        expect(isinstance(v, int) and v >= 0, f"{path}.{key}",
               "expected a non-negative integer")


def check_region(region, path):
    expect(isinstance(region, dict), path, "expected an object")
    expect(isinstance(region.get("name"), str) and region["name"],
           f"{path}.name", "expected a non-empty string")
    expect(isinstance(region.get("calls"), int) and region["calls"] > 0,
           f"{path}.calls", "expected a positive integer")
    expect(isinstance(region.get("time_ms"), (int, float))
           and region["time_ms"] >= 0,
           f"{path}.time_ms", "expected a non-negative number")
    for key in COUNTER_KEYS:
        expect(isinstance(region.get(key), int) and region[key] >= 0,
               f"{path}.{key}", "expected a non-negative integer")


def check_attribution_row(row, path):
    expect(isinstance(row, dict), path, "expected an object")
    expect(isinstance(row.get("name"), str), f"{path}.name",
           "expected a string")
    expect(isinstance(row.get("count"), int) and row["count"] > 0,
           f"{path}.count", "expected a positive integer")
    for key in ("total_ms", "self_ms"):
        expect(isinstance(row.get(key), (int, float)) and row[key] >= 0,
               f"{path}.{key}", "expected a non-negative number")
    expect(row["self_ms"] <= row["total_ms"] + 1e-9, path,
           f"self_ms={row['self_ms']} exceeds total_ms={row['total_ms']}")
    expect(("total_counters" in row) == ("self_counters" in row), path,
           "total_counters and self_counters must appear together")
    if "total_counters" in row:
        check_counter_object(row["total_counters"], f"{path}.total_counters")
        check_counter_object(row["self_counters"], f"{path}.self_counters")


def check_document(doc):
    expect(isinstance(doc, dict), "$", "expected a top-level object")
    expect(doc.get("schema") == "tmark-profile-v1", "$.schema",
           f"expected 'tmark-profile-v1', got {doc.get('schema')!r}")
    expect(isinstance(doc.get("binary"), str), "$.binary",
           "expected a string")
    expect(isinstance(doc.get("threads"), int) and doc["threads"] >= 1,
           "$.threads", "expected a positive integer")
    expect(isinstance(doc.get("counters_available"), bool),
           "$.counters_available", "expected a boolean")
    expect(isinstance(doc.get("counter_status"), str)
           and doc["counter_status"],
           "$.counter_status", "expected a non-empty string")
    if not doc["counters_available"]:
        # The time-only fallback must carry the typed reason, never "OK".
        expect(doc["counter_status"] != "OK", "$.counter_status",
               "counters unavailable but status reads OK")

    regions = doc.get("regions")
    expect(isinstance(regions, list), "$.regions", "expected a list")
    names = []
    for i, region in enumerate(regions):
        check_region(region, f"$.regions[{i}]")
        names.append(region["name"])
    expect(names == sorted(names), "$.regions", "regions must sort by name")
    expect(len(set(names)) == len(names), "$.regions",
           "region names must be unique")

    attribution = doc.get("attribution")
    expect(isinstance(attribution, list), "$.attribution", "expected a list")
    for i, row in enumerate(attribution):
        check_attribution_row(row, f"$.attribution[{i}]")

    overhead = doc.get("overhead")
    expect(isinstance(overhead, dict), "$.overhead", "expected an object")
    expect(isinstance(overhead.get("disabled_ns_per_region"), (int, float))
           and overhead["disabled_ns_per_region"] >= 0,
           "$.overhead.disabled_ns_per_region",
           "expected a non-negative number")
    expect(isinstance(overhead.get("region_calls"), int)
           and overhead["region_calls"] >= 0,
           "$.overhead.region_calls", "expected a non-negative integer")
    expect(isinstance(overhead.get("workload_ms"), (int, float)),
           "$.overhead.workload_ms", "expected a number")
    pct = overhead.get("estimated_disabled_overhead_pct")
    expect(pct is None or isinstance(pct, (int, float)),
           "$.overhead.estimated_disabled_overhead_pct",
           "expected a number or null")
    region_calls = sum(r["calls"] for r in regions)
    expect(overhead["region_calls"] == region_calls, "$.overhead.region_calls",
           f"records {overhead['region_calls']} calls but regions sum to "
           f"{region_calls}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    parser.add_argument("--max-overhead-pct", type=float, default=None,
                        metavar="PCT",
                        help="fail unless the estimated disabled-path "
                             "overhead is a number strictly below PCT "
                             "(requires a run with regions and a measured "
                             "workload)")
    parser.add_argument("--require-region", action="append", default=[],
                        metavar="PREFIX",
                        help="fail unless a region whose name starts with "
                             "PREFIX accumulated calls")
    args = parser.parse_args()

    try:
        with open(args.file, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"check_profile: cannot read {args.file}: {e}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as e:
        print(f"check_profile: {args.file} is not valid JSON: {e}",
              file=sys.stderr)
        return 1

    try:
        check_document(doc)
        for prefix in args.require_region:
            expect(any(r["name"].startswith(prefix)
                       for r in doc["regions"]),
                   "$.regions", f"no region named '{prefix}*'")
        if args.max_overhead_pct is not None:
            overhead = doc["overhead"]
            # The gate is only meaningful for a run that actually opened
            # regions and timed a workload; an inert document must fail
            # loudly rather than vacuously pass.
            expect(overhead["region_calls"] > 0, "$.overhead.region_calls",
                   "overhead gate needs a run with region calls")
            expect(isinstance(overhead["workload_ms"], (int, float))
                   and overhead["workload_ms"] > 0,
                   "$.overhead.workload_ms",
                   "overhead gate needs a measured workload")
            pct = overhead["estimated_disabled_overhead_pct"]
            expect(isinstance(pct, (int, float)),
                   "$.overhead.estimated_disabled_overhead_pct",
                   "overhead gate needs a numeric estimate")
            expect(pct < args.max_overhead_pct,
                   "$.overhead.estimated_disabled_overhead_pct",
                   f"disabled-path overhead {pct:.4f}% is not below the "
                   f"{args.max_overhead_pct}% gate")
    except SchemaError as e:
        print(f"check_profile: {args.file}: {e}", file=sys.stderr)
        return 1

    print(f"check_profile: {args.file} conforms to tmark-profile-v1")
    return 0


if __name__ == "__main__":
    sys.exit(main())
