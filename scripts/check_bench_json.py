#!/usr/bin/env python3
"""Validates a TMARK_BENCH_JSON dump against the tmark-bench-v1 schema.

Usage: check_bench_json.py FILE [--require-series PREFIX]
                                [--require-histogram NAME]
                                [--require-gauge NAME]
                                [--require-positive-gauge NAME]
                                [--check-attribution]

The schema is documented in docs/OBSERVABILITY.md. Exits 0 when FILE is a
well-formed document, 1 (with a message on stderr) otherwise. The optional
--require-* flags additionally assert that the metrics snapshot contains a
series whose name starts with PREFIX / a histogram with at least one
observation named NAME / a gauge named NAME — the ctest wiring uses them to
pin the fit telemetry end-to-end. --require-positive-gauge further demands
value > 0; the memory/shard gauges (mem.peak_rss_bytes,
tensor.merged.bytes, tensor.merged.shards) use it, since a zero there means
the instrumentation silently broke.
"""

import argparse
import json
import sys


class SchemaError(Exception):
    pass


def expect(cond, path, message):
    if not cond:
        raise SchemaError(f"{path}: {message}")


def check_number(value, path):
    expect(value is None or isinstance(value, (int, float)), path,
           f"expected number or null, got {type(value).__name__}")


def check_string_list(value, path):
    expect(isinstance(value, list), path, "expected a list")
    for i, item in enumerate(value):
        expect(isinstance(item, str), f"{path}[{i}]", "expected a string")


def check_table(table, path):
    expect(isinstance(table, dict), path, "expected an object")
    expect(isinstance(table.get("title"), str), f"{path}.title",
           "expected a string")
    check_string_list(table.get("headers"), f"{path}.headers")
    rows = table.get("rows")
    expect(isinstance(rows, list), f"{path}.rows", "expected a list")
    width = len(table["headers"])
    for i, row in enumerate(rows):
        check_string_list(row, f"{path}.rows[{i}]")
        expect(len(row) == width, f"{path}.rows[{i}]",
               f"expected {width} cells to match headers, got {len(row)}")


def check_named_value(entry, path):
    expect(isinstance(entry, dict), path, "expected an object")
    expect(isinstance(entry.get("name"), str), f"{path}.name",
           "expected a string")
    check_number(entry.get("value"), f"{path}.value")
    expect(entry.get("value") is not None, f"{path}.value",
           "must not be null")


def check_histogram(hist, path):
    expect(isinstance(hist, dict), path, "expected an object")
    expect(isinstance(hist.get("name"), str), f"{path}.name",
           "expected a string")
    for key in ("count", "sum", "mean", "min", "max", "p50", "p95", "p99"):
        expect(key in hist, path, f"missing key '{key}'")
        check_number(hist[key], f"{path}.{key}")
    if hist.get("count"):
        # Quantile summaries of a populated histogram must be ordered.
        order = [hist[k] for k in ("min", "p50", "p95", "p99", "max")]
        if all(isinstance(v, (int, float)) for v in order):
            for a, b, ka, kb in zip(order, order[1:],
                                    ("min", "p50", "p95", "p99"),
                                    ("p50", "p95", "p99", "max")):
                expect(a <= b + 1e-9, path, f"{ka}={a} exceeds {kb}={b}")
    buckets = hist.get("buckets")
    expect(isinstance(buckets, list), f"{path}.buckets", "expected a list")
    total = 0
    for i, bucket in enumerate(buckets):
        bpath = f"{path}.buckets[{i}]"
        expect(isinstance(bucket, dict), bpath, "expected an object")
        check_number(bucket.get("le"), f"{bpath}.le")  # null = +inf
        expect(isinstance(bucket.get("count"), int), f"{bpath}.count",
               "expected an integer")
        total += bucket["count"]
    expect(total == hist["count"], f"{path}.buckets",
           f"bucket counts sum to {total}, histogram count is "
           f"{hist['count']}")


def check_series(series, path):
    expect(isinstance(series, dict), path, "expected an object")
    expect(isinstance(series.get("name"), str), f"{path}.name",
           "expected a string")
    expect(isinstance(series.get("total_count"), int), f"{path}.total_count",
           "expected an integer")
    values = series.get("values")
    expect(isinstance(values, list), f"{path}.values", "expected a list")
    for i, v in enumerate(values):
        check_number(v, f"{path}.values[{i}]")
    expect(len(values) <= series["total_count"], f"{path}.values",
           "stored values exceed total_count")


COUNTER_KEYS = ("cycles", "instructions", "llc_misses", "branch_misses")


def check_counter_object(value, path):
    expect(isinstance(value, dict), path, "expected an object")
    expect(set(value) == set(COUNTER_KEYS), path,
           f"expected exactly keys {COUNTER_KEYS}, got {sorted(value)}")
    for key, v in value.items():
        expect(isinstance(v, int) and v >= 0, f"{path}.{key}",
               "expected a non-negative integer")


def check_attribution_row(row, path):
    expect(isinstance(row, dict), path, "expected an object")
    expect(isinstance(row.get("name"), str), f"{path}.name",
           "expected a string")
    expect(isinstance(row.get("count"), int) and row["count"] > 0,
           f"{path}.count", "expected a positive integer")
    for key in ("total_ms", "self_ms"):
        expect(isinstance(row.get(key), (int, float)), f"{path}.{key}",
               "expected a number")
        expect(row[key] >= 0, f"{path}.{key}", "must be non-negative")
    expect(row["self_ms"] <= row["total_ms"] + 1e-9, path,
           f"self_ms={row['self_ms']} exceeds total_ms={row['total_ms']}")
    # Counter columns come in pairs, or not at all.
    expect(("total_counters" in row) == ("self_counters" in row), path,
           "total_counters and self_counters must appear together")
    if "total_counters" in row:
        check_counter_object(row["total_counters"],
                             f"{path}.total_counters")
        check_counter_object(row["self_counters"], f"{path}.self_counters")


def check_span(span, path):
    expect(isinstance(span, dict), path, "expected an object")
    expect(isinstance(span.get("name"), str), f"{path}.name",
           "expected a string")
    check_number(span.get("start_ms"), f"{path}.start_ms")
    check_number(span.get("duration_ms"), f"{path}.duration_ms")
    if "counters" in span:
        check_counter_object(span["counters"], f"{path}.counters")
    fields = span.get("fields")
    expect(isinstance(fields, dict), f"{path}.fields", "expected an object")
    for key, value in fields.items():
        expect(isinstance(value, str), f"{path}.fields.{key}",
               "expected a string")
    children = span.get("children")
    expect(isinstance(children, list), f"{path}.children", "expected a list")
    for i, child in enumerate(children):
        check_span(child, f"{path}.children[{i}]")


def check_document(doc):
    expect(isinstance(doc, dict), "$", "expected a top-level object")
    expect(doc.get("schema") == "tmark-bench-v1", "$.schema",
           f"expected 'tmark-bench-v1', got {doc.get('schema')!r}")
    expect(isinstance(doc.get("binary"), str), "$.binary",
           "expected a string")
    tables = doc.get("tables")
    expect(isinstance(tables, list), "$.tables", "expected a list")
    for i, table in enumerate(tables):
        check_table(table, f"$.tables[{i}]")
    metrics = doc.get("metrics")
    expect(isinstance(metrics, dict), "$.metrics", "expected an object")
    for section, checker in (("counters", check_named_value),
                             ("gauges", check_named_value),
                             ("histograms", check_histogram),
                             ("series", check_series)):
        entries = metrics.get(section)
        expect(isinstance(entries, list), f"$.metrics.{section}",
               "expected a list")
        for i, entry in enumerate(entries):
            checker(entry, f"$.metrics.{section}[{i}]")
    spans = doc.get("spans")
    expect(isinstance(spans, list), "$.spans", "expected a list")
    for i, span in enumerate(spans):
        check_span(span, f"$.spans[{i}]")
    if "attribution" in doc:
        rows = doc["attribution"]
        expect(isinstance(rows, list), "$.attribution", "expected a list")
        for i, row in enumerate(rows):
            check_attribution_row(row, f"$.attribution[{i}]")


def check_attribution_consistency(doc):
    """Cross-checks the attribution table against the span tree and the
    fit-timing histogram. In a single-threaded trace the exclusive times
    of all rows must sum to the total root-span time (the table is a
    partition of it); at higher thread counts concurrent sibling spans
    overlap in wall time, so only the lower bound holds (clamping negative
    exclusive times can only inflate the sum, never shrink it). The
    tmark.fit root spans must agree with the tmark.fit.total_ms histogram
    to within 5% at any thread count (both are main-thread wall-clock)."""
    rows = doc.get("attribution")
    expect(isinstance(rows, list) and rows, "$.attribution",
           "expected a non-empty attribution table")
    spans = doc["spans"]
    expect(spans, "$.spans", "attribution check needs recorded spans")
    self_sum = sum(row["self_ms"] for row in rows)
    root_sum = sum(span["duration_ms"] for span in spans)
    threads = next((g["value"] for g in doc["metrics"]["gauges"]
                    if g["name"] == "parallel.threads"), 1)
    slack = max(0.01 * root_sum, 0.05)
    expect(self_sum >= root_sum - slack, "$.attribution",
           f"self_ms sums to {self_sum:.3f}, below the root-span total "
           f"{root_sum:.3f}")
    if threads <= 1:
        expect(self_sum <= root_sum + slack, "$.attribution",
               f"self_ms sums to {self_sum:.3f} but root spans total "
               f"{root_sum:.3f} (single-threaded traces must partition)")
    fit_roots = sum(span["duration_ms"] for span in spans
                    if span["name"] == "tmark.fit")
    fit_hist = next((h for h in doc["metrics"]["histograms"]
                     if h["name"] == "tmark.fit.total_ms"), None)
    if fit_hist is not None and fit_roots > 0:
        expect(abs(fit_roots - fit_hist["sum"]) <= 0.05 * fit_hist["sum"],
               "$.attribution",
               f"tmark.fit root spans total {fit_roots:.3f} ms but the "
               f"tmark.fit.total_ms histogram records "
               f"{fit_hist['sum']:.3f} ms (>5% apart)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    parser.add_argument("--require-series", action="append", default=[],
                        metavar="PREFIX",
                        help="fail unless a non-empty series whose name "
                             "starts with PREFIX is present")
    parser.add_argument("--require-histogram", action="append", default=[],
                        metavar="NAME",
                        help="fail unless histogram NAME has count > 0")
    parser.add_argument("--require-gauge", action="append", default=[],
                        metavar="NAME",
                        help="fail unless gauge NAME is present")
    parser.add_argument("--require-positive-gauge", action="append",
                        default=[], metavar="NAME",
                        help="fail unless gauge NAME is present with "
                             "value > 0")
    parser.add_argument("--check-attribution", action="store_true",
                        help="fail unless a non-empty attribution table is "
                             "present whose exclusive times partition the "
                             "root-span time and agree with the "
                             "tmark.fit.total_ms histogram")
    args = parser.parse_args()

    try:
        with open(args.file, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"check_bench_json: cannot read {args.file}: {e}",
              file=sys.stderr)
        return 1
    except json.JSONDecodeError as e:
        print(f"check_bench_json: {args.file} is not valid JSON: {e}",
              file=sys.stderr)
        return 1

    try:
        check_document(doc)
        series = doc["metrics"]["series"]
        for prefix in args.require_series:
            expect(any(s["name"].startswith(prefix) and s["values"]
                       for s in series),
                   "$.metrics.series",
                   f"no non-empty series named '{prefix}*'")
        histograms = doc["metrics"]["histograms"]
        for name in args.require_histogram:
            expect(any(h["name"] == name and h["count"] > 0
                       for h in histograms),
                   "$.metrics.histograms",
                   f"no populated histogram named '{name}'")
        gauges = doc["metrics"]["gauges"]
        for name in args.require_gauge:
            expect(any(g["name"] == name for g in gauges),
                   "$.metrics.gauges",
                   f"no gauge named '{name}'")
        for name in args.require_positive_gauge:
            expect(any(g["name"] == name and g["value"] > 0
                       for g in gauges),
                   "$.metrics.gauges",
                   f"no gauge named '{name}' with value > 0")
        if args.check_attribution:
            check_attribution_consistency(doc)
    except SchemaError as e:
        print(f"check_bench_json: {args.file}: {e}", file=sys.stderr)
        return 1

    print(f"check_bench_json: {args.file} conforms to tmark-bench-v1")
    return 0


if __name__ == "__main__":
    sys.exit(main())
