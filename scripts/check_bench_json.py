#!/usr/bin/env python3
"""Validates a TMARK_BENCH_JSON dump against the tmark-bench-v1 schema.

Usage: check_bench_json.py FILE [--require-series PREFIX]
                                [--require-histogram NAME]
                                [--require-gauge NAME]

The schema is documented in docs/OBSERVABILITY.md. Exits 0 when FILE is a
well-formed document, 1 (with a message on stderr) otherwise. The optional
--require-* flags additionally assert that the metrics snapshot contains a
series whose name starts with PREFIX / a histogram with at least one
observation named NAME / a gauge named NAME — the ctest wiring uses them to
pin the fit telemetry end-to-end.
"""

import argparse
import json
import sys


class SchemaError(Exception):
    pass


def expect(cond, path, message):
    if not cond:
        raise SchemaError(f"{path}: {message}")


def check_number(value, path):
    expect(value is None or isinstance(value, (int, float)), path,
           f"expected number or null, got {type(value).__name__}")


def check_string_list(value, path):
    expect(isinstance(value, list), path, "expected a list")
    for i, item in enumerate(value):
        expect(isinstance(item, str), f"{path}[{i}]", "expected a string")


def check_table(table, path):
    expect(isinstance(table, dict), path, "expected an object")
    expect(isinstance(table.get("title"), str), f"{path}.title",
           "expected a string")
    check_string_list(table.get("headers"), f"{path}.headers")
    rows = table.get("rows")
    expect(isinstance(rows, list), f"{path}.rows", "expected a list")
    width = len(table["headers"])
    for i, row in enumerate(rows):
        check_string_list(row, f"{path}.rows[{i}]")
        expect(len(row) == width, f"{path}.rows[{i}]",
               f"expected {width} cells to match headers, got {len(row)}")


def check_named_value(entry, path):
    expect(isinstance(entry, dict), path, "expected an object")
    expect(isinstance(entry.get("name"), str), f"{path}.name",
           "expected a string")
    check_number(entry.get("value"), f"{path}.value")
    expect(entry.get("value") is not None, f"{path}.value",
           "must not be null")


def check_histogram(hist, path):
    expect(isinstance(hist, dict), path, "expected an object")
    expect(isinstance(hist.get("name"), str), f"{path}.name",
           "expected a string")
    for key in ("count", "sum", "min", "max", "p50", "p95", "p99"):
        expect(key in hist, path, f"missing key '{key}'")
        check_number(hist[key], f"{path}.{key}")
    buckets = hist.get("buckets")
    expect(isinstance(buckets, list), f"{path}.buckets", "expected a list")
    total = 0
    for i, bucket in enumerate(buckets):
        bpath = f"{path}.buckets[{i}]"
        expect(isinstance(bucket, dict), bpath, "expected an object")
        check_number(bucket.get("le"), f"{bpath}.le")  # null = +inf
        expect(isinstance(bucket.get("count"), int), f"{bpath}.count",
               "expected an integer")
        total += bucket["count"]
    expect(total == hist["count"], f"{path}.buckets",
           f"bucket counts sum to {total}, histogram count is "
           f"{hist['count']}")


def check_series(series, path):
    expect(isinstance(series, dict), path, "expected an object")
    expect(isinstance(series.get("name"), str), f"{path}.name",
           "expected a string")
    expect(isinstance(series.get("total_count"), int), f"{path}.total_count",
           "expected an integer")
    values = series.get("values")
    expect(isinstance(values, list), f"{path}.values", "expected a list")
    for i, v in enumerate(values):
        check_number(v, f"{path}.values[{i}]")
    expect(len(values) <= series["total_count"], f"{path}.values",
           "stored values exceed total_count")


def check_span(span, path):
    expect(isinstance(span, dict), path, "expected an object")
    expect(isinstance(span.get("name"), str), f"{path}.name",
           "expected a string")
    check_number(span.get("start_ms"), f"{path}.start_ms")
    check_number(span.get("duration_ms"), f"{path}.duration_ms")
    fields = span.get("fields")
    expect(isinstance(fields, dict), f"{path}.fields", "expected an object")
    for key, value in fields.items():
        expect(isinstance(value, str), f"{path}.fields.{key}",
               "expected a string")
    children = span.get("children")
    expect(isinstance(children, list), f"{path}.children", "expected a list")
    for i, child in enumerate(children):
        check_span(child, f"{path}.children[{i}]")


def check_document(doc):
    expect(isinstance(doc, dict), "$", "expected a top-level object")
    expect(doc.get("schema") == "tmark-bench-v1", "$.schema",
           f"expected 'tmark-bench-v1', got {doc.get('schema')!r}")
    expect(isinstance(doc.get("binary"), str), "$.binary",
           "expected a string")
    tables = doc.get("tables")
    expect(isinstance(tables, list), "$.tables", "expected a list")
    for i, table in enumerate(tables):
        check_table(table, f"$.tables[{i}]")
    metrics = doc.get("metrics")
    expect(isinstance(metrics, dict), "$.metrics", "expected an object")
    for section, checker in (("counters", check_named_value),
                             ("gauges", check_named_value),
                             ("histograms", check_histogram),
                             ("series", check_series)):
        entries = metrics.get(section)
        expect(isinstance(entries, list), f"$.metrics.{section}",
               "expected a list")
        for i, entry in enumerate(entries):
            checker(entry, f"$.metrics.{section}[{i}]")
    spans = doc.get("spans")
    expect(isinstance(spans, list), "$.spans", "expected a list")
    for i, span in enumerate(spans):
        check_span(span, f"$.spans[{i}]")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    parser.add_argument("--require-series", action="append", default=[],
                        metavar="PREFIX",
                        help="fail unless a non-empty series whose name "
                             "starts with PREFIX is present")
    parser.add_argument("--require-histogram", action="append", default=[],
                        metavar="NAME",
                        help="fail unless histogram NAME has count > 0")
    parser.add_argument("--require-gauge", action="append", default=[],
                        metavar="NAME",
                        help="fail unless gauge NAME is present")
    args = parser.parse_args()

    try:
        with open(args.file, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"check_bench_json: cannot read {args.file}: {e}",
              file=sys.stderr)
        return 1
    except json.JSONDecodeError as e:
        print(f"check_bench_json: {args.file} is not valid JSON: {e}",
              file=sys.stderr)
        return 1

    try:
        check_document(doc)
        series = doc["metrics"]["series"]
        for prefix in args.require_series:
            expect(any(s["name"].startswith(prefix) and s["values"]
                       for s in series),
                   "$.metrics.series",
                   f"no non-empty series named '{prefix}*'")
        histograms = doc["metrics"]["histograms"]
        for name in args.require_histogram:
            expect(any(h["name"] == name and h["count"] > 0
                       for h in histograms),
                   "$.metrics.histograms",
                   f"no populated histogram named '{name}'")
        gauges = doc["metrics"]["gauges"]
        for name in args.require_gauge:
            expect(any(g["name"] == name for g in gauges),
                   "$.metrics.gauges",
                   f"no gauge named '{name}'")
    except SchemaError as e:
        print(f"check_bench_json: {args.file}: {e}", file=sys.stderr)
        return 1

    print(f"check_bench_json: {args.file} conforms to tmark-bench-v1")
    return 0


if __name__ == "__main__":
    sys.exit(main())
