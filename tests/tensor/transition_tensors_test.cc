#include "tmark/tensor/transition_tensors.h"

#include <gtest/gtest.h>

#include "tmark/common/check.h"
#include "tmark/common/random.h"
#include "tmark/datasets/paper_example.h"
#include "tmark/la/vector_ops.h"

namespace tmark::tensor {
namespace {

SparseTensor3 RandomTensor(std::size_t n, std::size_t m, double density,
                           Rng* rng) {
  std::vector<TensorEntry> entries;
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (rng->Bernoulli(density)) {
          entries.push_back({static_cast<std::uint32_t>(i),
                             static_cast<std::uint32_t>(j),
                             static_cast<std::uint32_t>(k),
                             rng->Uniform(0.1, 1.0)});
        }
      }
    }
  }
  return SparseTensor3::FromEntries(n, m, std::move(entries));
}

la::Vector RandomProbability(std::size_t n, Rng* rng) {
  la::Vector v(n);
  for (double& x : v) x = rng->Uniform(0.01, 1.0);
  la::NormalizeL1(&v);
  return v;
}

TEST(TransitionTensorsTest, OColumnsAreStochastic) {
  // Eq. (1): each (j, k) column of O sums to one, including dangling ones.
  Rng rng(1);
  const SparseTensor3 a = RandomTensor(6, 3, 0.25, &rng);
  const TransitionTensors t = TransitionTensors::Build(a);
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t j = 0; j < 6; ++j) {
      double sum = 0.0;
      for (std::size_t i = 0; i < 6; ++i) sum += t.OEntry(i, j, k);
      EXPECT_NEAR(sum, 1.0, 1e-12) << "column (" << j << "," << k << ")";
    }
  }
}

TEST(TransitionTensorsTest, RFibersAreStochastic) {
  // Eq. (2): for every (i, j) pair, sum_k R[i,j,k] = 1 (dangling -> 1/m).
  Rng rng(2);
  const SparseTensor3 a = RandomTensor(5, 4, 0.2, &rng);
  const TransitionTensors t = TransitionTensors::Build(a);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < 4; ++k) sum += t.REntry(i, j, k);
      EXPECT_NEAR(sum, 1.0, 1e-12) << "fiber (" << i << "," << j << ")";
    }
  }
}

TEST(TransitionTensorsTest, PaperExampleRFibersAreStochastic) {
  // Pins the merged-CSR-walk R-normalization on the paper's worked example:
  // every (i, j) fiber of R must still sum to exactly one relation share.
  const hin::Hin hin = datasets::MakePaperExample();
  const TransitionTensors t = TransitionTensors::Build(hin.ToAdjacencyTensor());
  const std::size_t n = hin.num_nodes();
  const std::size_t m = hin.num_relations();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < m; ++k) sum += t.REntry(i, j, k);
      ASSERT_NEAR(sum, 1.0, 1e-12) << "fiber (" << i << "," << j << ")";
    }
  }
}

TEST(TransitionTensorsTest, DanglingColumnIsUniform) {
  // Node 2 has no outgoing link in relation 0 -> its column is 1/n.
  const SparseTensor3 a = SparseTensor3::FromEntries(
      3, 1, {{0, 1, 0, 1.0}, {1, 0, 0, 1.0}});
  const TransitionTensors t = TransitionTensors::Build(a);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(t.OEntry(i, 2, 0), 1.0 / 3.0);
  }
  ASSERT_EQ(t.dangling_columns()[0].size(), 1u);
  EXPECT_EQ(t.dangling_columns()[0][0], 2u);
}

TEST(TransitionTensorsTest, UnlinkedPairIsUniformOverRelations) {
  const SparseTensor3 a = SparseTensor3::FromEntries(
      3, 2, {{0, 1, 0, 1.0}, {0, 1, 1, 3.0}});
  const TransitionTensors t = TransitionTensors::Build(a);
  // Linked pair (0,1): normalized over relations.
  EXPECT_DOUBLE_EQ(t.REntry(0, 1, 0), 0.25);
  EXPECT_DOUBLE_EQ(t.REntry(0, 1, 1), 0.75);
  // Unlinked pair (2,0): uniform 1/m.
  EXPECT_DOUBLE_EQ(t.REntry(2, 0, 0), 0.5);
  EXPECT_DOUBLE_EQ(t.REntry(2, 0, 1), 0.5);
}

TEST(TransitionTensorsTest, ApplyOMatchesDenseReference) {
  Rng rng(3);
  const SparseTensor3 a = RandomTensor(7, 3, 0.2, &rng);
  const TransitionTensors t = TransitionTensors::Build(a);
  const la::Vector x = RandomProbability(7, &rng);
  const la::Vector z = RandomProbability(3, &rng);
  const la::Vector fast = t.ApplyO(x, z);
  for (std::size_t i = 0; i < 7; ++i) {
    double expect = 0.0;
    for (std::size_t j = 0; j < 7; ++j) {
      for (std::size_t k = 0; k < 3; ++k) {
        expect += t.OEntry(i, j, k) * x[j] * z[k];
      }
    }
    EXPECT_NEAR(fast[i], expect, 1e-12);
  }
}

TEST(TransitionTensorsTest, ApplyRMatchesDenseReference) {
  Rng rng(4);
  const SparseTensor3 a = RandomTensor(6, 4, 0.15, &rng);
  const TransitionTensors t = TransitionTensors::Build(a);
  const la::Vector x = RandomProbability(6, &rng);
  const la::Vector fast = t.ApplyR(x, x);
  for (std::size_t k = 0; k < 4; ++k) {
    double expect = 0.0;
    for (std::size_t i = 0; i < 6; ++i) {
      for (std::size_t j = 0; j < 6; ++j) {
        expect += t.REntry(i, j, k) * x[i] * x[j];
      }
    }
    EXPECT_NEAR(fast[k], expect, 1e-12);
  }
}

/// Theorem 1 (simplex preservation), swept over random tensors.
class SimplexPreservationTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexPreservationTest, ApplyOAndApplyRStayOnSimplex) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 4 + rng.UniformInt(8);
  const std::size_t m = 2 + rng.UniformInt(4);
  const SparseTensor3 a = RandomTensor(n, m, 0.15, &rng);
  const TransitionTensors t = TransitionTensors::Build(a);
  la::Vector x = RandomProbability(n, &rng);
  la::Vector z = RandomProbability(m, &rng);
  for (int step = 0; step < 5; ++step) {
    x = t.ApplyO(x, z);
    z = t.ApplyR(x, x);
    EXPECT_TRUE(la::IsProbabilityVector(x, 1e-9));
    EXPECT_TRUE(la::IsProbabilityVector(z, 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexPreservationTest,
                         ::testing::Range(100, 112));

TEST(TransitionTensorsTest, DenseSliceMaterialization) {
  const SparseTensor3 a = SparseTensor3::FromEntries(
      2, 1, {{0, 1, 0, 2.0}, {1, 1, 0, 2.0}});
  const TransitionTensors t = TransitionTensors::Build(a);
  const la::DenseMatrix o = t.DenseOSlice(0);
  // Column 0 dangling -> uniform; column 1 normalized (0.5, 0.5).
  EXPECT_DOUBLE_EQ(o.At(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(o.At(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(o.At(1, 1), 0.5);
  const la::DenseMatrix r = t.DenseRSlice(0);
  EXPECT_DOUBLE_EQ(r.At(0, 1), 1.0);  // only relation on the linked pair
  EXPECT_DOUBLE_EQ(r.At(0, 0), 1.0);  // unlinked -> 1/m with m = 1
}

TEST(TransitionTensorsTest, RejectsNegativeTensor) {
  const SparseTensor3 neg =
      SparseTensor3::FromEntries(2, 1, {{0, 1, 0, -1.0}});
  EXPECT_THROW(TransitionTensors::Build(neg), CheckError);
}

TEST(TransitionTensorsTest, WeightsInfluenceO) {
  // Column (j=0, k=0) has entries 1 and 3 -> probabilities 0.25 / 0.75.
  const SparseTensor3 a = SparseTensor3::FromEntries(
      2, 1, {{0, 0, 0, 1.0}, {1, 0, 0, 3.0}});
  const TransitionTensors t = TransitionTensors::Build(a);
  EXPECT_DOUBLE_EQ(t.OEntry(0, 0, 0), 0.25);
  EXPECT_DOUBLE_EQ(t.OEntry(1, 0, 0), 0.75);
}

}  // namespace
}  // namespace tmark::tensor
