#include "tmark/tensor/matricization.h"

#include <gtest/gtest.h>

#include "tmark/common/random.h"
#include "tmark/datasets/paper_example.h"

namespace tmark::tensor {
namespace {

TEST(MatricizationTest, Mode1ShapeMatchesPaperExample) {
  // Sec. 3.2: the 4-node, 3-relation bibliography HIN has A_(1) of size
  // 4 x 12 and A_(3) of size 3 x 16.
  const SparseTensor3 a =
      datasets::MakePaperExample().ToAdjacencyTensor();
  const la::SparseMatrix a1 = MatricizeMode1(a);
  EXPECT_EQ(a1.rows(), 4u);
  EXPECT_EQ(a1.cols(), 12u);
  const la::SparseMatrix a3 = MatricizeMode3(a);
  EXPECT_EQ(a3.rows(), 3u);
  EXPECT_EQ(a3.cols(), 16u);
}

TEST(MatricizationTest, Mode1ColumnLayout) {
  // Entry (i, j, k) lands at column j + k*n in A_(1).
  const SparseTensor3 a =
      SparseTensor3::FromEntries(3, 2, {{1, 2, 1, 5.0}});
  const la::SparseMatrix a1 = MatricizeMode1(a);
  EXPECT_DOUBLE_EQ(a1.At(1, 2 + 1 * 3), 5.0);
  EXPECT_EQ(a1.NumNonZeros(), 1u);
}

TEST(MatricizationTest, Mode3ColumnLayout) {
  // Entry (i, j, k) lands at row k, column i + j*n in A_(3).
  const SparseTensor3 a =
      SparseTensor3::FromEntries(3, 2, {{1, 2, 1, 5.0}});
  const la::SparseMatrix a3 = MatricizeMode3(a);
  EXPECT_DOUBLE_EQ(a3.At(1, 1 + 2 * 3), 5.0);
  EXPECT_EQ(a3.NumNonZeros(), 1u);
}

TEST(MatricizationTest, Mode1ColumnNormalizationEqualsEq1) {
  // Normalizing columns of A_(1) performs the node-normalization of Eq. (1):
  // check on the paper example that each non-empty column sums to one.
  const SparseTensor3 a =
      datasets::MakePaperExample().ToAdjacencyTensor();
  std::vector<bool> dangling;
  const la::SparseMatrix o1 =
      MatricizeMode1(a).NormalizeColumnsSparse(&dangling);
  const la::Vector colsums = o1.ColumnSums();
  for (std::size_t c = 0; c < o1.cols(); ++c) {
    if (!dangling[c]) EXPECT_NEAR(colsums[c], 1.0, 1e-12);
  }
}

TEST(MatricizationTest, FoldInvertsUnfold) {
  Rng rng(21);
  std::vector<TensorEntry> entries;
  for (int e = 0; e < 40; ++e) {
    entries.push_back({static_cast<std::uint32_t>(rng.UniformInt(6)),
                       static_cast<std::uint32_t>(rng.UniformInt(6)),
                       static_cast<std::uint32_t>(rng.UniformInt(4)),
                       rng.Uniform(0.1, 1.0)});
  }
  const SparseTensor3 a = SparseTensor3::FromEntries(6, 4, entries);
  const SparseTensor3 back = FoldMode1(MatricizeMode1(a), 6, 4);
  EXPECT_EQ(back.NumNonZeros(), a.NumNonZeros());
  for (const TensorEntry& e : a.Entries()) {
    EXPECT_DOUBLE_EQ(back.At(e.i, e.j, e.k), e.value);
  }
}

TEST(MatricizationTest, NonZeroCountsPreserved) {
  const SparseTensor3 a =
      datasets::MakePaperExample().ToAdjacencyTensor();
  EXPECT_EQ(MatricizeMode1(a).NumNonZeros(), a.NumNonZeros());
  EXPECT_EQ(MatricizeMode3(a).NumNonZeros(), a.NumNonZeros());
}

}  // namespace
}  // namespace tmark::tensor
