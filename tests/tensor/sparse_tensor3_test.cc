#include "tmark/tensor/sparse_tensor3.h"

#include <gtest/gtest.h>

#include "tmark/common/check.h"
#include "tmark/common/random.h"

namespace tmark::tensor {
namespace {

SparseTensor3 Sample() {
  // 3 nodes, 2 relations.
  return SparseTensor3::FromEntries(3, 2,
                                    {{0, 1, 0, 1.0},
                                     {1, 0, 0, 2.0},
                                     {2, 1, 1, 3.0},
                                     {0, 2, 1, 4.0}});
}

SparseTensor3 RandomTensor(std::size_t n, std::size_t m, double density,
                           Rng* rng) {
  std::vector<TensorEntry> entries;
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (rng->Bernoulli(density)) {
          entries.push_back({static_cast<std::uint32_t>(i),
                             static_cast<std::uint32_t>(j),
                             static_cast<std::uint32_t>(k),
                             rng->Uniform(0.1, 1.0)});
        }
      }
    }
  }
  return SparseTensor3::FromEntries(n, m, std::move(entries));
}

TEST(SparseTensor3Test, ShapeAndAccess) {
  const SparseTensor3 t = Sample();
  EXPECT_EQ(t.num_nodes(), 3u);
  EXPECT_EQ(t.num_relations(), 2u);
  EXPECT_EQ(t.NumNonZeros(), 4u);
  EXPECT_DOUBLE_EQ(t.At(0, 1, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.At(0, 1, 1), 0.0);
  EXPECT_DOUBLE_EQ(t.At(2, 1, 1), 3.0);
  EXPECT_THROW(t.At(0, 0, 5), CheckError);
}

TEST(SparseTensor3Test, FromEntriesSumsDuplicates) {
  const SparseTensor3 t = SparseTensor3::FromEntries(
      2, 1, {{0, 1, 0, 1.0}, {0, 1, 0, 0.5}});
  EXPECT_EQ(t.NumNonZeros(), 1u);
  EXPECT_DOUBLE_EQ(t.At(0, 1, 0), 1.5);
}

TEST(SparseTensor3Test, FromEntriesOutOfBoundsThrows) {
  EXPECT_THROW(SparseTensor3::FromEntries(2, 1, {{0, 0, 1, 1.0}}),
               CheckError);
}

TEST(SparseTensor3Test, EntriesRoundTrip) {
  const SparseTensor3 t = Sample();
  const SparseTensor3 rebuilt =
      SparseTensor3::FromEntries(3, 2, t.Entries());
  EXPECT_EQ(rebuilt.NumNonZeros(), t.NumNonZeros());
  for (const TensorEntry& e : t.Entries()) {
    EXPECT_DOUBLE_EQ(rebuilt.At(e.i, e.j, e.k), e.value);
  }
}

TEST(SparseTensor3Test, FromSlicesChecksShapes) {
  la::SparseMatrix a(2, 2), b(3, 3);
  EXPECT_THROW(SparseTensor3::FromSlices({a, b}), CheckError);
}

TEST(SparseTensor3Test, SumOverRelations) {
  const SparseTensor3 t = SparseTensor3::FromEntries(
      2, 2, {{0, 1, 0, 1.0}, {0, 1, 1, 2.0}, {1, 0, 1, 4.0}});
  const la::SparseMatrix sum = t.SumOverRelations();
  EXPECT_DOUBLE_EQ(sum.At(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(sum.At(1, 0), 4.0);
}

TEST(SparseTensor3Test, IsNonNegative) {
  EXPECT_TRUE(Sample().IsNonNegative());
  const SparseTensor3 neg =
      SparseTensor3::FromEntries(2, 1, {{0, 1, 0, -1.0}});
  EXPECT_FALSE(neg.IsNonNegative());
}

TEST(SparseTensor3Test, ConnectivityDetectsComponents) {
  // Two disconnected pairs.
  const SparseTensor3 split = SparseTensor3::FromEntries(
      4, 1, {{0, 1, 0, 1.0}, {1, 0, 0, 1.0}, {2, 3, 0, 1.0}, {3, 2, 0, 1.0}});
  EXPECT_FALSE(split.IsConnectedAggregate());
  // Bridge them (even one-directional counts as weakly connected).
  const SparseTensor3 joined = SparseTensor3::FromEntries(
      4, 1, {{0, 1, 0, 1.0}, {1, 2, 0, 1.0}, {2, 3, 0, 1.0}});
  EXPECT_TRUE(joined.IsConnectedAggregate());
}

TEST(SparseTensor3Test, ContractMode1MatchesBruteForce) {
  Rng rng(3);
  const SparseTensor3 t = RandomTensor(7, 3, 0.3, &rng);
  la::Vector x(7), z(3);
  for (double& v : x) v = rng.Uniform(0.0, 1.0);
  for (double& v : z) v = rng.Uniform(0.0, 1.0);
  const la::Vector y = t.ContractMode1(x, z);
  for (std::size_t i = 0; i < 7; ++i) {
    double expect = 0.0;
    for (std::size_t j = 0; j < 7; ++j) {
      for (std::size_t k = 0; k < 3; ++k) {
        expect += t.At(i, j, k) * x[j] * z[k];
      }
    }
    EXPECT_NEAR(y[i], expect, 1e-12);
  }
}

TEST(SparseTensor3Test, ContractMode3MatchesBruteForce) {
  Rng rng(4);
  const SparseTensor3 t = RandomTensor(6, 4, 0.3, &rng);
  la::Vector x(6), y(6);
  for (double& v : x) v = rng.Uniform(0.0, 1.0);
  for (double& v : y) v = rng.Uniform(0.0, 1.0);
  const la::Vector w = t.ContractMode3(x, y);
  for (std::size_t k = 0; k < 4; ++k) {
    double expect = 0.0;
    for (std::size_t i = 0; i < 6; ++i) {
      for (std::size_t j = 0; j < 6; ++j) {
        expect += t.At(i, j, k) * x[i] * y[j];
      }
    }
    EXPECT_NEAR(w[k], expect, 1e-12);
  }
}

TEST(SparseTensor3Test, ContractionSizeChecks) {
  const SparseTensor3 t = Sample();
  EXPECT_THROW(t.ContractMode1(la::Vector(2), la::Vector(2)), CheckError);
  EXPECT_THROW(t.ContractMode3(la::Vector(3), la::Vector(2)), CheckError);
}

}  // namespace
}  // namespace tmark::tensor
