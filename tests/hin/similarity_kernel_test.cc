#include "tmark/hin/similarity_kernel.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tmark/common/check.h"
#include "tmark/hin/feature_similarity.h"
#include "tmark/la/vector_ops.h"

namespace tmark::hin {
namespace {

TEST(SimilarityKernelTest, NamesRoundTrip) {
  for (SimilarityKernel kernel :
       {SimilarityKernel::kCosine, SimilarityKernel::kBinaryCosine,
        SimilarityKernel::kTfIdfCosine, SimilarityKernel::kDotProduct}) {
    EXPECT_EQ(SimilarityKernelFromString(ToString(kernel)), kernel);
  }
}

TEST(SimilarityKernelTest, UnknownNameThrows) {
  EXPECT_THROW(SimilarityKernelFromString("euclidean"), CheckError);
}

la::SparseMatrix CountFeatures() {
  // node 0: word0 x4; node 1: word0 x1; node 2: word1 x2, word2 x2.
  return la::SparseMatrix::FromTriplets(
      3, 3, {{0, 0, 4.0}, {1, 0, 1.0}, {2, 1, 2.0}, {2, 2, 2.0}});
}

TEST(SimilarityKernelTest, BinaryCosineIgnoresCounts) {
  const FeatureSimilarity sim =
      FeatureSimilarity::Build(CountFeatures(), SimilarityKernel::kBinaryCosine);
  // With binarization nodes 0 and 1 are identical.
  EXPECT_NEAR(sim.Cosine(0, 1), 1.0, 1e-12);
  EXPECT_EQ(sim.kernel(), SimilarityKernel::kBinaryCosine);
}

TEST(SimilarityKernelTest, DotProductKeepsMagnitude) {
  const FeatureSimilarity sim =
      FeatureSimilarity::Build(CountFeatures(), SimilarityKernel::kDotProduct);
  // <f0, f1> = 4, <f0, f0> = 16: magnitudes matter.
  EXPECT_NEAR(sim.Cosine(0, 1), 4.0, 1e-12);
  EXPECT_NEAR(sim.Cosine(0, 0), 16.0, 1e-12);
}

TEST(SimilarityKernelTest, TfIdfDownweightsUbiquitousWords) {
  // Word 0 appears in every document (idf small); word 1 in one document.
  const la::SparseMatrix f = la::SparseMatrix::FromTriplets(
      3, 2,
      {{0, 0, 1.0}, {1, 0, 1.0}, {2, 0, 1.0}, {0, 1, 1.0}, {1, 1, 1.0}});
  const FeatureSimilarity tfidf =
      FeatureSimilarity::Build(f, SimilarityKernel::kTfIdfCosine);
  const FeatureSimilarity plain =
      FeatureSimilarity::Build(f, SimilarityKernel::kCosine);
  // Node 2 shares only the ubiquitous word with node 0 -> tf-idf similarity
  // drops below plain cosine.
  EXPECT_LT(tfidf.Cosine(0, 2), plain.Cosine(0, 2));
  // Nodes 0 and 1 share everything -> still 1 under both.
  EXPECT_NEAR(tfidf.Cosine(0, 1), 1.0, 1e-12);
}

TEST(SimilarityKernelTest, AllKernelsPreserveSimplex) {
  const la::SparseMatrix f = CountFeatures();
  for (SimilarityKernel kernel :
       {SimilarityKernel::kCosine, SimilarityKernel::kBinaryCosine,
        SimilarityKernel::kTfIdfCosine, SimilarityKernel::kDotProduct}) {
    const FeatureSimilarity sim = FeatureSimilarity::Build(f, kernel);
    la::Vector x = la::UniformProbability(3);
    for (int step = 0; step < 3; ++step) {
      x = sim.Apply(x);
      EXPECT_TRUE(la::IsProbabilityVector(x, 1e-9)) << ToString(kernel);
    }
  }
}

TEST(SimilarityKernelTest, ApplyMatchesDenseForAllKernels) {
  const la::SparseMatrix f = CountFeatures();
  for (SimilarityKernel kernel :
       {SimilarityKernel::kCosine, SimilarityKernel::kBinaryCosine,
        SimilarityKernel::kTfIdfCosine, SimilarityKernel::kDotProduct}) {
    const FeatureSimilarity sim = FeatureSimilarity::Build(f, kernel);
    const la::Vector x = {0.2, 0.5, 0.3};
    const la::Vector fast = sim.Apply(x);
    const la::Vector slow = sim.Dense().MatVec(x);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_NEAR(fast[i], slow[i], 1e-10) << ToString(kernel);
    }
  }
}

}  // namespace
}  // namespace tmark::hin
