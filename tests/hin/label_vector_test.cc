#include "tmark/hin/label_vector.h"

#include <gtest/gtest.h>

#include "tmark/common/check.h"
#include "tmark/hin/hin_builder.h"

namespace tmark::hin {
namespace {

Hin LabeledHin() {
  HinBuilder b(5, 1);
  b.AddClass("A");
  b.AddClass("B");
  const std::size_t k = b.AddRelation("r");
  b.AddUndirectedEdge(k, 0, 1);
  b.SetLabel(0, 0);
  b.SetLabel(1, 0);
  b.SetLabel(2, 1);
  b.SetLabel(3, 1);
  b.SetLabel(4, 1);
  return std::move(b).Build();
}

TEST(LabelVectorTest, InitialIsUniformOverClassMembers) {
  const Hin hin = LabeledHin();
  const la::Vector l = InitialLabelVector(hin, {0, 1, 2}, 0);
  EXPECT_DOUBLE_EQ(l[0], 0.5);
  EXPECT_DOUBLE_EQ(l[1], 0.5);
  EXPECT_DOUBLE_EQ(l[2], 0.0);
  EXPECT_TRUE(la::IsProbabilityVector(l));
}

TEST(LabelVectorTest, InitialRespectsLabeledSubset) {
  const Hin hin = LabeledHin();
  // Only node 2 of class B is in the labeled set.
  const la::Vector l = InitialLabelVector(hin, {0, 2}, 1);
  EXPECT_DOUBLE_EQ(l[2], 1.0);
  EXPECT_DOUBLE_EQ(l[3], 0.0);
}

TEST(LabelVectorTest, InitialThrowsWhenClassUnrepresented) {
  const Hin hin = LabeledHin();
  EXPECT_THROW(InitialLabelVector(hin, {0, 1}, 1), CheckError);
}

TEST(LabelVectorTest, UpdatedAcceptsConfidentNodes) {
  const Hin hin = LabeledHin();
  // Node 4 is unlabeled-in-training but confident (0.9 of max).
  la::Vector x = {0.5, 0.05, 0.0, 0.0, 0.45};
  const la::Vector l = UpdatedLabelVector(hin, {0, 1}, 0, x, 0.6);
  // Accepted set = {0, 1 (labeled)} + {4 (x > 0.6 * 0.5 = 0.3)}.
  EXPECT_DOUBLE_EQ(l[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(l[1], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(l[4], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(l[2], 0.0);
}

TEST(LabelVectorTest, UpdatedWithHighLambdaKeepsOnlyLabeled) {
  const Hin hin = LabeledHin();
  la::Vector x = {0.5, 0.2, 0.1, 0.1, 0.1};
  const la::Vector l = UpdatedLabelVector(hin, {0, 1}, 0, x, 1.0);
  EXPECT_DOUBLE_EQ(l[0], 0.5);
  EXPECT_DOUBLE_EQ(l[1], 0.5);
  EXPECT_DOUBLE_EQ(l[4], 0.0);
}

TEST(LabelVectorTest, UpdatedIsProbabilityVector) {
  const Hin hin = LabeledHin();
  la::Vector x = {0.2, 0.2, 0.2, 0.2, 0.2};
  const la::Vector l = UpdatedLabelVector(hin, {0, 1, 2}, 1, x, 0.5);
  EXPECT_TRUE(la::IsProbabilityVector(l));
}

TEST(LabelVectorTest, UpdatedLambdaOutOfRangeThrows) {
  const Hin hin = LabeledHin();
  la::Vector x(5, 0.2);
  EXPECT_THROW(UpdatedLabelVector(hin, {0}, 0, x, 1.5), CheckError);
  EXPECT_THROW(UpdatedLabelVector(hin, {0}, 0, x, -0.1), CheckError);
}

TEST(LabelVectorTest, UpdatedHandlesAllZeroConfidence) {
  const Hin hin = LabeledHin();
  la::Vector x(5, 0.0);
  const la::Vector l = UpdatedLabelVector(hin, {0, 1}, 0, x, 0.5);
  EXPECT_DOUBLE_EQ(l[0], 0.5);
  EXPECT_DOUBLE_EQ(l[1], 0.5);
}

}  // namespace
}  // namespace tmark::hin
