#include "tmark/hin/hin_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "tmark/common/status.h"
#include "tmark/datasets/paper_example.h"
#include "tmark/hin/hin_builder.h"

namespace tmark::hin {
namespace {

void ExpectHinEqual(const Hin& a, const Hin& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_relations(), b.num_relations());
  ASSERT_EQ(a.num_classes(), b.num_classes());
  ASSERT_EQ(a.feature_dim(), b.feature_dim());
  for (std::size_t k = 0; k < a.num_relations(); ++k) {
    EXPECT_EQ(a.relation_name(k), b.relation_name(k));
    EXPECT_DOUBLE_EQ(
        a.relation(k).ToDense().MaxAbsDiff(b.relation(k).ToDense()), 0.0);
  }
  for (std::size_t c = 0; c < a.num_classes(); ++c) {
    EXPECT_EQ(a.class_name(c), b.class_name(c));
  }
  for (std::size_t i = 0; i < a.num_nodes(); ++i) {
    EXPECT_EQ(a.labels(i), b.labels(i));
  }
  EXPECT_DOUBLE_EQ(a.features().ToDense().MaxAbsDiff(b.features().ToDense()),
                   0.0);
}

StatusCode LoadCode(const std::string& content) {
  std::stringstream ss(content);
  return LoadHin(ss).status().code();
}

TEST(HinIoTest, RoundTripPaperExample) {
  const Hin hin = datasets::MakePaperExample();
  std::stringstream ss;
  SaveHin(hin, ss);
  Result<Hin> back = LoadHin(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectHinEqual(hin, *back);
}

TEST(HinIoTest, RoundTripWithWeightsAndMultiLabels) {
  HinBuilder b(3, 2);
  b.AddClass("alpha");
  b.AddClass("beta two");  // names keep internal spaces
  const std::size_t k = b.AddRelation("same conference");
  b.AddDirectedEdge(k, 0, 1, 0.123456789012345);
  b.SetLabel(0, 0);
  b.SetLabel(0, 1);
  b.AddFeature(2, 1, 3.25);
  const Hin hin = std::move(b).Build();
  std::stringstream ss;
  SaveHin(hin, ss);
  Result<Hin> back = LoadHin(ss);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectHinEqual(hin, *back);
  EXPECT_EQ(back->class_name(1), "beta two");
  EXPECT_EQ(back->relation_name(0), "same conference");
}

TEST(HinIoTest, MissingHeaderIsParseError) {
  EXPECT_EQ(LoadCode("nodes 3\nfeature_dim 1\n"), StatusCode::kParseError);
}

TEST(HinIoTest, UnknownDirectiveIsParseError) {
  EXPECT_EQ(LoadCode("# tmark-hin v1\nnodes 1\nfeature_dim 1\nbogus x\n"),
            StatusCode::kParseError);
}

TEST(HinIoTest, ParseErrorsCarryLineNumber) {
  std::stringstream ss(
      "# tmark-hin v1\nnodes 2\nfeature_dim 1\nrelation r\n"
      "edge 0 0 1 nan\n");
  const Result<Hin> result = LoadHin(ss);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("line 5"), std::string::npos)
      << result.status().ToString();
}

TEST(HinIoTest, OutOfRangeEdgeIsParseError) {
  EXPECT_EQ(LoadCode("# tmark-hin v1\nnodes 2\nfeature_dim 1\nrelation r\n"
                     "edge 3 0 1 1.0\n"),
            StatusCode::kParseError);
}

TEST(HinIoTest, MalformedFeatureIsParseError) {
  EXPECT_EQ(LoadCode("# tmark-hin v1\nnodes 1\nfeature_dim 1\nfeat 0 "
                     "nocolon\n"),
            StatusCode::kParseError);
}

TEST(HinIoTest, NonFiniteAndNonPositiveWeightsAreParseErrors) {
  const std::string base =
      "# tmark-hin v1\nnodes 3\nfeature_dim 1\nrelation r\n";
  for (const char* weight : {"nan", "inf", "-inf", "0", "-2.5", "1e999"}) {
    EXPECT_EQ(LoadCode(base + "edge 0 0 1 " + weight + "\n"),
              StatusCode::kParseError)
        << weight;
  }
}

TEST(HinIoTest, DuplicateEdgeIsParseError) {
  const std::string base =
      "# tmark-hin v1\nnodes 3\nfeature_dim 1\nrelation r\n"
      "edge 0 1 2 1.0\n";
  EXPECT_EQ(LoadCode(base + "edge 0 1 2 0.5\n"), StatusCode::kParseError);
  // Same endpoints in a different relation are legal.
  EXPECT_EQ(LoadCode("# tmark-hin v1\nnodes 3\nfeature_dim 1\n"
                     "relation r\nrelation s\n"
                     "edge 0 1 2 1.0\nedge 1 1 2 1.0\n"),
            StatusCode::kOk);
}

TEST(HinIoTest, GarbageNumeralSuffixIsParseError) {
  // std::stoul would have accepted "1abc" as 1; the strict parser must not.
  EXPECT_EQ(LoadCode("# tmark-hin v1\nnodes 2\nfeature_dim 1\nrelation r\n"
                     "edge 0 1abc 0 1.0\n"),
            StatusCode::kParseError);
}

TEST(HinIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "# tmark-hin v1\n\n# a comment\nnodes 1\nfeature_dim 1\nclass A\n"
      "label 0 0\n");
  const Result<Hin> hin = LoadHin(ss);
  ASSERT_TRUE(hin.ok()) << hin.status().ToString();
  EXPECT_EQ(hin->num_nodes(), 1u);
  EXPECT_TRUE(hin->HasLabel(0, 0));
}

TEST(HinIoTest, FileRoundTrip) {
  const Hin hin = datasets::MakePaperExample();
  const std::string path = ::testing::TempDir() + "/tmark_io_test.hin";
  ASSERT_TRUE(SaveHinToFile(hin, path).ok());
  Result<Hin> back = LoadHinFromFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectHinEqual(hin, *back);
  std::remove(path.c_str());
}

TEST(HinIoTest, MissingFileIsNotFound) {
  const Result<Hin> result = LoadHinFromFile("/nonexistent/path/x.hin");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(HinIoTest, UnwritablePathIsNotFound) {
  const Hin hin = datasets::MakePaperExample();
  const Status status = SaveHinToFile(hin, "/nonexistent/dir/out.hin");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(HinIoTest, FileParseErrorsCarryPathContext) {
  const std::string path = ::testing::TempDir() + "/tmark_io_corrupt.hin";
  {
    std::ofstream out(path);
    out << "# tmark-hin v1\nnodes 1\nbogus\n";
  }
  const Result<Hin> result = LoadHinFromFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find(path), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tmark::hin
