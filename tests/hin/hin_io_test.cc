#include "tmark/hin/hin_io.h"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "tmark/common/check.h"
#include "tmark/datasets/paper_example.h"
#include "tmark/hin/hin_builder.h"

namespace tmark::hin {
namespace {

void ExpectHinEqual(const Hin& a, const Hin& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_relations(), b.num_relations());
  ASSERT_EQ(a.num_classes(), b.num_classes());
  ASSERT_EQ(a.feature_dim(), b.feature_dim());
  for (std::size_t k = 0; k < a.num_relations(); ++k) {
    EXPECT_EQ(a.relation_name(k), b.relation_name(k));
    EXPECT_DOUBLE_EQ(
        a.relation(k).ToDense().MaxAbsDiff(b.relation(k).ToDense()), 0.0);
  }
  for (std::size_t c = 0; c < a.num_classes(); ++c) {
    EXPECT_EQ(a.class_name(c), b.class_name(c));
  }
  for (std::size_t i = 0; i < a.num_nodes(); ++i) {
    EXPECT_EQ(a.labels(i), b.labels(i));
  }
  EXPECT_DOUBLE_EQ(a.features().ToDense().MaxAbsDiff(b.features().ToDense()),
                   0.0);
}

TEST(HinIoTest, RoundTripPaperExample) {
  const Hin hin = datasets::MakePaperExample();
  std::stringstream ss;
  SaveHin(hin, ss);
  const Hin back = LoadHin(ss);
  ExpectHinEqual(hin, back);
}

TEST(HinIoTest, RoundTripWithWeightsAndMultiLabels) {
  HinBuilder b(3, 2);
  b.AddClass("alpha");
  b.AddClass("beta two");  // names keep internal spaces
  const std::size_t k = b.AddRelation("same conference");
  b.AddDirectedEdge(k, 0, 1, 0.123456789012345);
  b.SetLabel(0, 0);
  b.SetLabel(0, 1);
  b.AddFeature(2, 1, 3.25);
  const Hin hin = std::move(b).Build();
  std::stringstream ss;
  SaveHin(hin, ss);
  const Hin back = LoadHin(ss);
  ExpectHinEqual(hin, back);
  EXPECT_EQ(back.class_name(1), "beta two");
  EXPECT_EQ(back.relation_name(0), "same conference");
}

TEST(HinIoTest, MissingHeaderThrows) {
  std::stringstream ss("nodes 3\nfeature_dim 1\n");
  EXPECT_THROW(LoadHin(ss), CheckError);
}

TEST(HinIoTest, UnknownDirectiveThrows) {
  std::stringstream ss("# tmark-hin v1\nnodes 1\nfeature_dim 1\nbogus x\n");
  EXPECT_THROW(LoadHin(ss), CheckError);
}

TEST(HinIoTest, OutOfRangeEdgeThrows) {
  std::stringstream ss(
      "# tmark-hin v1\nnodes 2\nfeature_dim 1\nrelation r\n"
      "edge 3 0 1 1.0\n");
  EXPECT_THROW(LoadHin(ss), CheckError);
}

TEST(HinIoTest, MalformedFeatureThrows) {
  std::stringstream ss(
      "# tmark-hin v1\nnodes 1\nfeature_dim 1\nfeat 0 nocolon\n");
  EXPECT_THROW(LoadHin(ss), CheckError);
}

TEST(HinIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "# tmark-hin v1\n\n# a comment\nnodes 1\nfeature_dim 1\nclass A\n"
      "label 0 0\n");
  const Hin hin = LoadHin(ss);
  EXPECT_EQ(hin.num_nodes(), 1u);
  EXPECT_TRUE(hin.HasLabel(0, 0));
}

TEST(HinIoTest, FileRoundTrip) {
  const Hin hin = datasets::MakePaperExample();
  const std::string path = ::testing::TempDir() + "/tmark_io_test.hin";
  ASSERT_TRUE(SaveHinToFile(hin, path));
  const Hin back = LoadHinFromFile(path);
  ExpectHinEqual(hin, back);
  std::remove(path.c_str());
}

TEST(HinIoTest, MissingFileThrows) {
  EXPECT_THROW(LoadHinFromFile("/nonexistent/path/x.hin"), CheckError);
}

}  // namespace
}  // namespace tmark::hin
