#include "tmark/hin/feature_similarity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tmark/common/check.h"
#include "tmark/common/random.h"
#include "tmark/la/vector_ops.h"

namespace tmark::hin {
namespace {

la::SparseMatrix RandomFeatures(std::size_t n, std::size_t d, double density,
                                Rng* rng) {
  std::vector<la::Triplet> trips;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      if (rng->Bernoulli(density)) {
        trips.push_back({static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(j),
                         rng->Uniform(0.1, 3.0)});
      }
    }
  }
  return la::SparseMatrix::FromTriplets(n, d, std::move(trips));
}

TEST(FeatureSimilarityTest, CosineOfIdenticalRowsIsOne) {
  const la::SparseMatrix f = la::SparseMatrix::FromTriplets(
      2, 3, {{0, 0, 2.0}, {0, 2, 1.0}, {1, 0, 4.0}, {1, 2, 2.0}});
  const FeatureSimilarity sim = FeatureSimilarity::Build(f);
  EXPECT_NEAR(sim.Cosine(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(sim.Cosine(0, 0), 1.0, 1e-12);
}

TEST(FeatureSimilarityTest, CosineOfOrthogonalRowsIsZero) {
  const la::SparseMatrix f = la::SparseMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0}, {1, 1, 5.0}});
  const FeatureSimilarity sim = FeatureSimilarity::Build(f);
  EXPECT_DOUBLE_EQ(sim.Cosine(0, 1), 0.0);
}

TEST(FeatureSimilarityTest, CosineMatchesClosedForm) {
  // f0 = (1, 1), f1 = (1, 0) -> cos = 1/sqrt(2).
  const la::SparseMatrix f = la::SparseMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}});
  const FeatureSimilarity sim = FeatureSimilarity::Build(f);
  EXPECT_NEAR(sim.Cosine(0, 1), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(FeatureSimilarityTest, DenseColumnsAreStochastic) {
  Rng rng(5);
  const FeatureSimilarity sim =
      FeatureSimilarity::Build(RandomFeatures(9, 6, 0.5, &rng));
  const la::DenseMatrix w = sim.Dense();
  const la::Vector sums = w.ColumnSums();
  for (double s : sums) EXPECT_NEAR(s, 1.0, 1e-10);
}

TEST(FeatureSimilarityTest, ApplyMatchesDense) {
  Rng rng(6);
  const FeatureSimilarity sim =
      FeatureSimilarity::Build(RandomFeatures(11, 7, 0.4, &rng));
  la::Vector x(11);
  for (double& v : x) v = rng.Uniform(0.0, 1.0);
  const la::Vector fast = sim.Apply(x);
  const la::Vector slow = sim.Dense().MatVec(x);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-10);
  }
}

TEST(FeatureSimilarityTest, ApplyPreservesSimplex) {
  Rng rng(7);
  const FeatureSimilarity sim =
      FeatureSimilarity::Build(RandomFeatures(15, 8, 0.3, &rng));
  la::Vector x = la::UniformProbability(15);
  for (int step = 0; step < 4; ++step) {
    x = sim.Apply(x);
    EXPECT_TRUE(la::IsProbabilityVector(x, 1e-9));
  }
}

TEST(FeatureSimilarityTest, ZeroFeatureNodeIsDanglingUniform) {
  // Node 2 has no features.
  const la::SparseMatrix f = la::SparseMatrix::FromTriplets(
      3, 2, {{0, 0, 1.0}, {1, 1, 1.0}});
  const FeatureSimilarity sim = FeatureSimilarity::Build(f);
  ASSERT_EQ(sim.dangling_nodes().size(), 1u);
  EXPECT_EQ(sim.dangling_nodes()[0], 2u);
  // All of node 2's mass is spread uniformly.
  la::Vector e(3, 0.0);
  e[2] = 1.0;
  const la::Vector y = sim.Apply(e);
  for (double v : y) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

TEST(FeatureSimilarityTest, MatchesPaperExampleW) {
  // Sec. 4.3's W for the 4-node example: node pairs (p1, p4) and (p2, p3)
  // are identical, cross pairs orthogonal -> each column is 0.5 on the pair.
  const la::SparseMatrix f = la::SparseMatrix::FromTriplets(
      4, 2, {{0, 0, 1.0}, {3, 0, 1.0}, {1, 1, 1.0}, {2, 1, 1.0}});
  const la::DenseMatrix w = FeatureSimilarity::Build(f).Dense();
  const la::DenseMatrix expected = la::DenseMatrix::FromRows({
      {0.5, 0.0, 0.0, 0.5},
      {0.0, 0.5, 0.5, 0.0},
      {0.0, 0.5, 0.5, 0.0},
      {0.5, 0.0, 0.0, 0.5},
  });
  EXPECT_LT(w.MaxAbsDiff(expected), 1e-12);
}

TEST(FeatureSimilarityTest, RejectsNegativeFeatures) {
  const la::SparseMatrix f =
      la::SparseMatrix::FromTriplets(1, 1, {{0, 0, -1.0}});
  EXPECT_THROW(FeatureSimilarity::Build(f), CheckError);
}

}  // namespace
}  // namespace tmark::hin
