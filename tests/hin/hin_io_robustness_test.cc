// Failure-injection tests for the tmark-hin parser: malformed or hostile
// input must always surface as a typed non-OK Status (or parse cleanly) —
// never crash, hang, throw, or silently mangle data.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "tmark/common/random.h"
#include "tmark/common/status.h"
#include "tmark/hin/hin_io.h"

namespace tmark::hin {
namespace {

void ExpectErrorsOrParses(const std::string& content) {
  std::stringstream ss(content);
  // The canonical loader never throws: hostile bytes yield a Status value.
  const Result<Hin> result = LoadHin(ss);
  if (!result.ok()) {
    EXPECT_NE(result.status().code(), StatusCode::kOk);
    EXPECT_FALSE(result.status().message().empty());
  }
}

TEST(HinIoRobustnessTest, TruncatedHeader) {
  ExpectErrorsOrParses("# tmark-hin");
  ExpectErrorsOrParses("");
  ExpectErrorsOrParses("\n\n\n");
}

TEST(HinIoRobustnessTest, NegativeAndHugeIndices) {
  const std::string base = "# tmark-hin v1\nnodes 3\nfeature_dim 2\n"
                           "relation r\nclass A\n";
  ExpectErrorsOrParses(base + "edge 0 -1 0 1.0\n");
  ExpectErrorsOrParses(base + "edge 0 99999999999 0 1.0\n");
  ExpectErrorsOrParses(base + "label 99999 0\n");
  ExpectErrorsOrParses(base + "feat 0 99:1.0\n");
  ExpectErrorsOrParses(base + "label 0 42\n");
  // Overflows std::size_t: must be a parse error, not a silent wrap.
  std::stringstream overflow(base + "edge 0 99999999999999999999999 0 1.0\n");
  const Result<Hin> result = LoadHin(overflow);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(HinIoRobustnessTest, NonNumericFields) {
  const std::string base = "# tmark-hin v1\nnodes 3\nfeature_dim 2\n"
                           "relation r\nclass A\n";
  ExpectErrorsOrParses(base + "edge zero one two three\n");
  ExpectErrorsOrParses(base + "feat 0 a:b\n");
  ExpectErrorsOrParses(base + "nodes many\n");
}

TEST(HinIoRobustnessTest, ZeroOrNegativeWeightEdge) {
  const std::string base = "# tmark-hin v1\nnodes 3\nfeature_dim 2\n"
                           "relation r\nclass A\n";
  ExpectErrorsOrParses(base + "edge 0 0 1 0.0\n");
  ExpectErrorsOrParses(base + "edge 0 0 1 -2.5\n");
}

TEST(HinIoRobustnessTest, HostileDeclaredDimensions) {
  // A hostile header must not make the loader allocate petabytes.
  ExpectErrorsOrParses("# tmark-hin v1\nnodes 999999999999\nfeature_dim 1\n");
  ExpectErrorsOrParses("# tmark-hin v1\nnodes 1\nfeature_dim 1e18\n");
}

TEST(HinIoRobustnessTest, RandomByteSoup) {
  Rng rng(404);
  for (int round = 0; round < 50; ++round) {
    std::string content = "# tmark-hin v1\n";
    const int lines = 1 + static_cast<int>(rng.UniformInt(10));
    for (int l = 0; l < lines; ++l) {
      const int len = static_cast<int>(rng.UniformInt(40));
      for (int c = 0; c < len; ++c) {
        content.push_back(static_cast<char>(32 + rng.UniformInt(95)));
      }
      content.push_back('\n');
    }
    ExpectErrorsOrParses(content);
  }
}

TEST(HinIoRobustnessTest, RandomValidTokensShuffled) {
  // Lines drawn from the real grammar but in arbitrary order and with
  // arbitrary indices: must parse or fail with a Status, never crash.
  Rng rng(808);
  for (int round = 0; round < 50; ++round) {
    std::string content = "# tmark-hin v1\nnodes 5\nfeature_dim 3\n"
                          "relation r0\nrelation r1\nclass A\nclass B\n";
    const int lines = static_cast<int>(rng.UniformInt(12));
    for (int l = 0; l < lines; ++l) {
      switch (rng.UniformInt(3)) {
        case 0:
          content += "edge " + std::to_string(rng.UniformInt(3)) + " " +
                     std::to_string(rng.UniformInt(7)) + " " +
                     std::to_string(rng.UniformInt(7)) + " 1.0\n";
          break;
        case 1:
          content += "label " + std::to_string(rng.UniformInt(7)) + " " +
                     std::to_string(rng.UniformInt(3)) + "\n";
          break;
        default:
          content += "feat " + std::to_string(rng.UniformInt(7)) + " " +
                     std::to_string(rng.UniformInt(5)) + ":2.0\n";
          break;
      }
    }
    ExpectErrorsOrParses(content);
  }
}

TEST(HinIoRobustnessTest, ValidFileStillParsesAfterTrailingGarbageLineFails) {
  const std::string good = "# tmark-hin v1\nnodes 2\nfeature_dim 1\n"
                           "relation r\nclass A\nedge 0 0 1 1.0\nlabel 0 0\n";
  std::stringstream ok(good);
  EXPECT_TRUE(LoadHin(ok).ok());
  std::stringstream bad(good + "garbage here\n");
  const Result<Hin> result = LoadHin(bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace tmark::hin
